package t3sim

import (
	"t3sim/internal/experiments"
	"t3sim/internal/serving"
)

// Request-level serving simulation: an open-loop, continuous-batching
// inference server layered on the DES (internal/serving). Requests arrive via
// a deterministic Poisson process (or an explicit trace) across weighted
// multi-tenant streams; per-request TTFT/TPOT/E2E latencies feed nearest-rank
// percentile summaries. Runs are bit-identical for a given Config at any
// process parallelism — each simulation owns a private engine.
type (
	// ServingConfig describes one serving workload: tenants, offered load,
	// batching policy, cost model and instrumentation.
	ServingConfig = serving.Config
	// ServingTenant is one request stream with its own prompt/output-length
	// distributions and arrival weight.
	ServingTenant = serving.Tenant
	// ServingRequest is one request's lifecycle record (trace input and
	// per-request result).
	ServingRequest = serving.Request
	// ServingCostModel prices a prefill of a given prompt length and a
	// decode step over a given batch.
	ServingCostModel = serving.CostModel
	// ServingLatency summarizes TTFT/TPOT/E2E percentiles over a request
	// population.
	ServingLatency = serving.Latency
	// ServingResult aggregates one serving run: conservation counts,
	// throughput, and overall plus per-tenant latency summaries.
	ServingResult = serving.Result
)

// RunServing simulates one serving workload to completion.
func RunServing(cfg ServingConfig) (*ServingResult, error) { return serving.Run(cfg) }

// Serving experiments: the capacity question the paper's fixed-iteration
// figures stop short of — how much offered load does T3's fused overlap
// sustain at a p99 TTFT SLO?
type (
	// ServeSweepResult is the QPS-ladder capacity study (catalogue entry
	// "serve-sweep"): latency percentiles per (scheme, QPS) operating point
	// and the max QPS each scheme sustains under the SLO.
	ServeSweepResult = experiments.ServeSweepResult
	// ServeSweepRow is one (scheme, offered QPS) operating point.
	ServeSweepRow = experiments.ServeSweepRow
	// ServeTenantsResult is the per-tenant fairness study at a fixed
	// operating point (catalogue entry "serve-tenants").
	ServeTenantsResult = experiments.ServeTenantsResult
	// ServeTenantRow is one (scheme, tenant) latency summary.
	ServeTenantRow = experiments.ServeTenantRow
	// ServeCost is the bucketed iteration-model cost table the serving
	// experiments price steps from (a ServingCostModel).
	ServeCost = experiments.ServeCost
)

// BuildServeCost prices every prompt-length and batch-size bucket for one
// model/TP from the iteration model, with (t3 = true) or without T3's fused
// GEMM→RS overlap; the T3 pricing runs one memoized DES fused run per
// (sub-layer, bucket).
func BuildServeCost(ev *Evaluator, m Model, tp int, t3 bool) (*ServeCost, error) {
	return experiments.BuildServeCost(ev, m, tp, t3)
}

// ServeSweep runs the serving capacity sweep: throughput and TTFT/TPOT
// percentiles across the QPS ladder, T3 overlap off vs on, reporting the max
// QPS sustained under the p99 TTFT SLO. Setup.ServeQPS and Setup.ServeSLO
// (CLI -qps/-slo) override the ladder and the objective.
func ServeSweep(ev *Evaluator) (*ServeSweepResult, error) { return experiments.ServeSweep(ev) }

// ServeTenants runs the per-tenant latency study at a fixed operating point,
// T3 overlap off vs on.
func ServeTenants(ev *Evaluator) (*ServeTenantsResult, error) { return experiments.ServeTenants(ev) }
