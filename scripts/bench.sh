#!/usr/bin/env bash
# bench.sh — run the benchmark suite and the full experiment catalogue, and
# emit a machine-readable snapshot (BENCH_5.json by default).
#
# The root package's Benchmark* functions replay whole catalogue experiments,
# so they run at ROOT_BENCHTIME (default 1x: one full iteration each). The
# internal packages' benchmarks are microbenchmarks of the transaction hot
# path (channel service, tracker observe/fire, DMA table, trigger chain) and
# run at MICRO_BENCHTIME (default 1000x) so ns/op is meaningful; their
# allocs/op figures are exact at any benchtime.
#
# The multi-device scaling section re-runs the explicit 8-device simulation
# at ParWorkers 0 (sequential single engine) and 2/4/8 (conservative parallel
# cluster) at SCALING_BENCHTIME (default 3x) and records the wall-clock
# speedups; output is byte-identical at every worker count, so only the
# timing moves.
#
# Usage:
#   scripts/bench.sh [output.json]
#   ROOT_BENCHTIME=1x MICRO_BENCHTIME=10000x scripts/bench.sh out.json
#
# No dependencies beyond the go toolchain, bash, and awk.
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_5.json}
root_benchtime=${ROOT_BENCHTIME:-1x}
micro_benchtime=${MICRO_BENCHTIME:-1000x}
scaling_benchtime=${SCALING_BENCHTIME:-3x}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
raw="$workdir/bench.txt"

echo "== benchmarks: root suite (-benchtime $root_benchtime) =="
go test -run '^$' -bench . -benchtime "$root_benchtime" -benchmem . | tee "$raw"
echo "== benchmarks: internal hot-path suites (-benchtime $micro_benchtime) =="
go test -run '^$' -bench . -benchtime "$micro_benchtime" -benchmem ./internal/... | tee -a "$raw"

echo "== multi-device scaling: explicit 8-device run, -par 0/2/4/8 (-benchtime $scaling_benchtime) =="
scaling_raw="$workdir/scaling.txt"
go test -run '^$' -bench 'BenchmarkMultiDevice' -benchtime "$scaling_benchtime" . | tee "$scaling_raw"
scaling_ns() {
    awk -v bench="$1" '$1 ~ "^"bench"-?[0-9]*$" { print $3; exit }' "$scaling_raw"
}
seq_ns=$(scaling_ns BenchmarkMultiDeviceSequential)
w2_ns=$(scaling_ns BenchmarkMultiDeviceWorkers2)
w4_ns=$(scaling_ns BenchmarkMultiDeviceWorkers4)
w8_ns=$(scaling_ns BenchmarkMultiDeviceWorkers8)
echo "multi-device scaling ns/op: seq=$seq_ns w2=$w2_ns w4=$w4_ns w8=$w8_ns"

echo "== experiment catalogue: -exp all -j 1 wall time =="
go build -o "$workdir/t3sim" ./cmd/t3sim
start=$(date +%s.%N)
"$workdir/t3sim" -exp all -j 1 >"$workdir/all.txt"
end=$(date +%s.%N)
exp_all_seconds=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')
echo "-exp all -j 1: ${exp_all_seconds}s ($(wc -l <"$workdir/all.txt") output lines)"

go_version=$(go env GOVERSION)

awk -v go_version="$go_version" \
    -v root_benchtime="$root_benchtime" \
    -v micro_benchtime="$micro_benchtime" \
    -v scaling_benchtime="$scaling_benchtime" \
    -v exp_all_seconds="$exp_all_seconds" \
    -v seq_ns="$seq_ns" -v w2_ns="$w2_ns" -v w4_ns="$w4_ns" -v w8_ns="$w8_ns" '
/^pkg:/ { pkg = $2 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") ns = $(i - 1)
        if ($(i) == "B/op") bytes = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    n++
    rows[n] = sprintf("    {\"pkg\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                      pkg, name, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs)
}
END {
    printf "{\n"
    printf "  \"schema\": \"t3sim-bench/1\",\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"root_benchtime\": \"%s\",\n", root_benchtime
    printf "  \"micro_benchtime\": \"%s\",\n", micro_benchtime
    printf "  \"exp_all_j1_seconds\": %s,\n", exp_all_seconds
    printf "  \"multi_device_scaling\": {\n"
    printf "    \"benchtime\": \"%s\",\n", scaling_benchtime
    printf "    \"devices\": 8,\n"
    printf "    \"sequential_ns_per_op\": %s,\n", seq_ns
    printf "    \"workers2_ns_per_op\": %s,\n", w2_ns
    printf "    \"workers4_ns_per_op\": %s,\n", w4_ns
    printf "    \"workers8_ns_per_op\": %s,\n", w8_ns
    printf "    \"speedup_workers2\": %.3f,\n", seq_ns / w2_ns
    printf "    \"speedup_workers4\": %.3f,\n", seq_ns / w4_ns
    printf "    \"speedup_workers8\": %.3f\n", seq_ns / w8_ns
    printf "  },\n"
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], i < n ? "," : ""
    printf "  ]\n"
    printf "}\n"
}' "$raw" >"$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmark rows)"
