#!/usr/bin/env bash
# bench.sh — run the benchmark suite and the full experiment catalogue, and
# emit a machine-readable snapshot (BENCH_9.json by default).
#
# The root package's Benchmark* functions replay whole catalogue experiments,
# so they run at ROOT_BENCHTIME (default 1x: one full iteration each). The
# internal packages' benchmarks are microbenchmarks of the transaction hot
# path (channel service, tracker observe/fire, DMA table, trigger chain) and
# run at MICRO_BENCHTIME (default 1000x) so ns/op is meaningful; their
# allocs/op figures are exact at any benchtime.
#
# The serving section pulls internal/serving's figures out of the internal
# suite — simulated requests per wall-clock second end-to-end and on the
# isolated arrival/admission path — and fails the run outright if the
# admission hot path reports a nonzero allocs/op (its zero-allocation
# steady state is also pinned by TestSteadyStateAllocFree).
#
# The result-store section replays -exp all twice against one fresh cache
# directory: cold (populating the persistent content-addressed store) and
# warm (served from it). The outputs must be byte-identical to each other
# and to the uncached run, and the warm speedup is gated at >= 5x — the
# store's whole reason to exist; a regression below that fails the run.
#
# The multi-device scaling sections re-run the explicit simulation at
# ParWorkers 0 (sequential single engine) and 2/4/8 (conservative parallel
# cluster with dynamic per-device lookahead): the 8-device shape at
# SCALING_BENCHTIME (default 3x) and the 64-device Fig-20-regime shape at
# SCALING64_BENCHTIME (default 1x), each repeated SCALING_COUNT (default 3)
# times with the per-configuration MINIMUM reported — the least-noise
# estimator on a shared 1-core container whose run-to-run variance can
# exceed the worker-count deltas. The repetitions are interleaved — whole
# seq/w2/w4/w8 cycles, not `go test -count` (which runs one configuration's
# repeats back-to-back) — so a load spike on the host penalizes every
# configuration's sample at that moment equally instead of whichever one
# happened to be running. Output is byte-identical at every worker
# count, so only the timing moves. The 64-device section also records the
# scheduler's window_count and avg_window_width_ps — the lookahead-quality
# metrics: fewer, wider windows mean the per-device horizons are doing their
# job, independent of the host's core count (and exactly repeatable, unlike
# the timings).
#
# The sync-mode section compares the cluster's two coordination protocols —
# windowed (global round barrier, every mailbox drained every round) and
# appointment (per-edge null-message promises, posted mailboxes only) — on
# the 64- and 256-device torus and hierarchy shapes plus the 256-device
# ring, again interleaved whole cycles with per-configuration minima, and
# records the appointment runs' deterministic null-message counts. The
# 256-device ring also anchors the largest scaling point: sequential vs
# 4 workers in each sync mode.
#
# Usage:
#   scripts/bench.sh [output.json]
#   ROOT_BENCHTIME=1x MICRO_BENCHTIME=10000x scripts/bench.sh out.json
#
# No dependencies beyond the go toolchain, bash, and awk.
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_9.json}
root_benchtime=${ROOT_BENCHTIME:-1x}
micro_benchtime=${MICRO_BENCHTIME:-1000x}
scaling_benchtime=${SCALING_BENCHTIME:-3x}
scaling64_benchtime=${SCALING64_BENCHTIME:-1x}
scaling_count=${SCALING_COUNT:-3}
sync_benchtime=${SYNC_BENCHTIME:-1x}
sync_count=${SYNC_COUNT:-5}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
raw="$workdir/bench.txt"

echo "== benchmarks: root suite (-benchtime $root_benchtime) =="
go test -run '^$' -bench . -benchtime "$root_benchtime" -benchmem . | tee "$raw"
echo "== benchmarks: internal hot-path suites (-benchtime $micro_benchtime) =="
go test -run '^$' -bench . -benchtime "$micro_benchtime" -benchmem ./internal/... | tee -a "$raw"

echo "== multi-device scaling: explicit 8-device run, -par 0/2/4/8 (-benchtime $scaling_benchtime, best of $scaling_count interleaved) =="
scaling_raw="$workdir/scaling.txt"
scaling_bin="$workdir/t3sim.test"
go test -c -o "$scaling_bin" .
: >"$scaling_raw"
for _ in $(seq "$scaling_count"); do
    "$scaling_bin" -test.run '^$' -test.bench 'BenchmarkMultiDevice(Sequential|Workers[0-9]+)$' \
        -test.benchtime "$scaling_benchtime" | tee -a "$scaling_raw"
done

echo "== multi-device scaling: explicit 64-device run, -par 0/2/4/8 (-benchtime $scaling64_benchtime, best of $scaling_count interleaved) =="
scaling64_raw="$workdir/scaling64.txt"
: >"$scaling64_raw"
for _ in $(seq "$scaling_count"); do
    "$scaling_bin" -test.run '^$' -test.bench 'BenchmarkMultiDevice64(Sequential|Workers[0-9]+)$' \
        -test.benchtime "$scaling64_benchtime" | tee -a "$scaling64_raw"
done

echo "== sync modes: windowed vs appointment, 64/256-device shapes (-benchtime $sync_benchtime, best of $sync_count interleaved) =="
sync_raw="$workdir/sync.txt"
: >"$sync_raw"
for _ in $(seq "$sync_count"); do
    "$scaling_bin" -test.run '^$' \
        -test.bench 'BenchmarkMultiDevice(64(Torus|Hier)|256(Ring|Torus|Hier))(Windowed|Appointment)4$|BenchmarkMultiDevice256Sequential$' \
        -test.benchtime "$sync_benchtime" | tee -a "$sync_raw"
done

# bench_col FILE BENCH UNIT: the minimum value reported just before UNIT
# across BENCH's repeated rows (-count reruns).
bench_col() {
    awk -v bench="$2" -v unit="$3" '
        $1 ~ "^"bench"-?[0-9]*$" {
            for (i = 2; i <= NF; i++)
                if ($(i) == unit && (best == "" || $(i - 1) + 0 < best + 0))
                    best = $(i - 1)
        }
        END { if (best != "") print best }' "$1"
}
seq_ns=$(bench_col "$scaling_raw" BenchmarkMultiDeviceSequential ns/op)
w2_ns=$(bench_col "$scaling_raw" BenchmarkMultiDeviceWorkers2 ns/op)
w4_ns=$(bench_col "$scaling_raw" BenchmarkMultiDeviceWorkers4 ns/op)
w8_ns=$(bench_col "$scaling_raw" BenchmarkMultiDeviceWorkers8 ns/op)
echo "8-device scaling ns/op: seq=$seq_ns w2=$w2_ns w4=$w4_ns w8=$w8_ns"

seq64_ns=$(bench_col "$scaling64_raw" BenchmarkMultiDevice64Sequential ns/op)
w2_64_ns=$(bench_col "$scaling64_raw" BenchmarkMultiDevice64Workers2 ns/op)
w4_64_ns=$(bench_col "$scaling64_raw" BenchmarkMultiDevice64Workers4 ns/op)
w8_64_ns=$(bench_col "$scaling64_raw" BenchmarkMultiDevice64Workers8 ns/op)
win_count=$(bench_col "$scaling64_raw" BenchmarkMultiDevice64Workers8 windows/op)
win_width=$(bench_col "$scaling64_raw" BenchmarkMultiDevice64Workers8 window-ps/op)
echo "64-device scaling ns/op: seq=$seq64_ns w2=$w2_64_ns w4=$w4_64_ns w8=$w8_64_ns" \
     "(windows=$win_count avg_width=${win_width}ps)"

t64_w_ns=$(bench_col "$sync_raw" BenchmarkMultiDevice64TorusWindowed4 ns/op)
t64_a_ns=$(bench_col "$sync_raw" BenchmarkMultiDevice64TorusAppointment4 ns/op)
t64_a_null=$(bench_col "$sync_raw" BenchmarkMultiDevice64TorusAppointment4 nullmsgs/op)
h64_w_ns=$(bench_col "$sync_raw" BenchmarkMultiDevice64HierWindowed4 ns/op)
h64_a_ns=$(bench_col "$sync_raw" BenchmarkMultiDevice64HierAppointment4 ns/op)
h64_a_null=$(bench_col "$sync_raw" BenchmarkMultiDevice64HierAppointment4 nullmsgs/op)
r256_w_ns=$(bench_col "$sync_raw" BenchmarkMultiDevice256RingWindowed4 ns/op)
r256_a_ns=$(bench_col "$sync_raw" BenchmarkMultiDevice256RingAppointment4 ns/op)
r256_a_null=$(bench_col "$sync_raw" BenchmarkMultiDevice256RingAppointment4 nullmsgs/op)
t256_w_ns=$(bench_col "$sync_raw" BenchmarkMultiDevice256TorusWindowed4 ns/op)
t256_a_ns=$(bench_col "$sync_raw" BenchmarkMultiDevice256TorusAppointment4 ns/op)
t256_a_null=$(bench_col "$sync_raw" BenchmarkMultiDevice256TorusAppointment4 nullmsgs/op)
h256_w_ns=$(bench_col "$sync_raw" BenchmarkMultiDevice256HierWindowed4 ns/op)
h256_a_ns=$(bench_col "$sync_raw" BenchmarkMultiDevice256HierAppointment4 ns/op)
h256_a_null=$(bench_col "$sync_raw" BenchmarkMultiDevice256HierAppointment4 nullmsgs/op)
seq256_ns=$(bench_col "$sync_raw" BenchmarkMultiDevice256Sequential ns/op)
echo "sync modes ns/op (windowed vs appointment):"
echo "  64-torus:  $t64_w_ns vs $t64_a_ns  (null msgs $t64_a_null)"
echo "  64-hier:   $h64_w_ns vs $h64_a_ns  (null msgs $h64_a_null)"
echo "  256-ring:  $r256_w_ns vs $r256_a_ns  (null msgs $r256_a_null)"
echo "  256-torus: $t256_w_ns vs $t256_a_ns  (null msgs $t256_a_null)"
echo "  256-hier:  $h256_w_ns vs $h256_a_ns  (null msgs $h256_a_null)"
echo "256-device ring scaling ns/op: seq=$seq256_ns w4(windowed)=$r256_w_ns w4(appointment)=$r256_a_ns"

# Serving simulator section: the internal suite above already ran
# internal/serving's benchmarks; pull out the simulated-request rate
# (req/s, minimum across repeats — the conservative estimate for a
# throughput metric) and enforce the arrival/admission hot path's
# zero-allocation guarantee, the serving tentpole's alloc pin.
echo "== serving: simulated request rate and hot-path allocation check =="
serve_req_s=$(bench_col "$raw" BenchmarkServe req/s)
admit_req_s=$(bench_col "$raw" BenchmarkArrivalAdmission req/s)
admit_allocs=$(bench_col "$raw" BenchmarkArrivalAdmission allocs/op)
if [ "${admit_allocs:-missing}" != "0" ]; then
    echo "serving arrival/admission hot path allocates (${admit_allocs:-missing} allocs/op, want 0)" >&2
    exit 1
fi
echo "serving: end-to-end $serve_req_s req/s, admission path $admit_req_s req/s at $admit_allocs allocs/op"

echo "== experiment catalogue: -exp all -j 1 wall time =="
go build -o "$workdir/t3sim" ./cmd/t3sim
start=$(date +%s.%N)
"$workdir/t3sim" -exp all -j 1 >"$workdir/all.txt"
end=$(date +%s.%N)
exp_all_seconds=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')
echo "-exp all -j 1: ${exp_all_seconds}s ($(wc -l <"$workdir/all.txt") output lines)"

echo "== result store: cold vs warm -exp all -j 1 =="
cache_dir="$workdir/rcache"
start=$(date +%s.%N)
"$workdir/t3sim" -exp all -j 1 -cache-dir "$cache_dir" >"$workdir/all_cold.txt"
end=$(date +%s.%N)
store_cold_seconds=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')
start=$(date +%s.%N)
"$workdir/t3sim" -exp all -j 1 -cache-dir "$cache_dir" >"$workdir/all_warm.txt"
end=$(date +%s.%N)
store_warm_seconds=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')
cmp "$workdir/all_cold.txt" "$workdir/all_warm.txt"
cmp "$workdir/all.txt" "$workdir/all_warm.txt"
store_warm_speedup=$(awk -v c="$store_cold_seconds" -v w="$store_warm_seconds" \
    'BEGIN { printf "%.1f", c / w }')
if ! awk -v c="$store_cold_seconds" -v w="$store_warm_seconds" 'BEGIN { exit !(c / w >= 5) }'; then
    echo "warm -exp all only ${store_warm_speedup}x faster than cold (want >= 5x)" >&2
    exit 1
fi
echo "cold ${store_cold_seconds}s, warm ${store_warm_seconds}s (${store_warm_speedup}x, byte-identical to the uncached run)"

go_version=$(go env GOVERSION)

awk -v go_version="$go_version" \
    -v root_benchtime="$root_benchtime" \
    -v micro_benchtime="$micro_benchtime" \
    -v scaling_benchtime="$scaling_benchtime" \
    -v scaling64_benchtime="$scaling64_benchtime" \
    -v scaling_count="$scaling_count" \
    -v exp_all_seconds="$exp_all_seconds" \
    -v store_cold_seconds="$store_cold_seconds" \
    -v store_warm_seconds="$store_warm_seconds" \
    -v store_warm_speedup="$store_warm_speedup" \
    -v seq_ns="$seq_ns" -v w2_ns="$w2_ns" -v w4_ns="$w4_ns" -v w8_ns="$w8_ns" \
    -v seq64_ns="$seq64_ns" -v w2_64_ns="$w2_64_ns" \
    -v w4_64_ns="$w4_64_ns" -v w8_64_ns="$w8_64_ns" \
    -v win_count="$win_count" -v win_width="$win_width" \
    -v sync_benchtime="$sync_benchtime" -v sync_count="$sync_count" \
    -v t64_w_ns="$t64_w_ns" -v t64_a_ns="$t64_a_ns" -v t64_a_null="$t64_a_null" \
    -v h64_w_ns="$h64_w_ns" -v h64_a_ns="$h64_a_ns" -v h64_a_null="$h64_a_null" \
    -v r256_w_ns="$r256_w_ns" -v r256_a_ns="$r256_a_ns" -v r256_a_null="$r256_a_null" \
    -v t256_w_ns="$t256_w_ns" -v t256_a_ns="$t256_a_ns" -v t256_a_null="$t256_a_null" \
    -v h256_w_ns="$h256_w_ns" -v h256_a_ns="$h256_a_ns" -v h256_a_null="$h256_a_null" \
    -v seq256_ns="$seq256_ns" \
    -v serve_req_s="$serve_req_s" -v admit_req_s="$admit_req_s" \
    -v admit_allocs="$admit_allocs" '
function shape_row(name, devices, w_ns, a_ns, nullmsgs, comma) {
    printf "      {\"shape\": \"%s\", \"devices\": %d, \"windowed_ns_per_op\": %s, \"appointment_ns_per_op\": %s, \"appointment_speedup\": %s, \"null_messages_per_op\": %s}%s\n",
        name, devices,
        w_ns == "" ? "null" : w_ns,
        a_ns == "" ? "null" : a_ns,
        (w_ns != "" && a_ns != "") ? sprintf("%.3f", w_ns / a_ns) : "null",
        nullmsgs == "" ? "null" : nullmsgs, comma
}
/^pkg:/ { pkg = $2 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") ns = $(i - 1)
        if ($(i) == "B/op") bytes = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    n++
    rows[n] = sprintf("    {\"pkg\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                      pkg, name, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs)
}
END {
    printf "{\n"
    printf "  \"schema\": \"t3sim-bench/1\",\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"root_benchtime\": \"%s\",\n", root_benchtime
    printf "  \"micro_benchtime\": \"%s\",\n", micro_benchtime
    printf "  \"exp_all_j1_seconds\": %s,\n", exp_all_seconds
    printf "  \"result_store\": {\n"
    printf "    \"cold_exp_all_seconds\": %s,\n", store_cold_seconds
    printf "    \"warm_exp_all_seconds\": %s,\n", store_warm_seconds
    printf "    \"warm_speedup\": %s\n", store_warm_speedup
    printf "  },\n"
    printf "  \"multi_device_scaling\": {\n"
    printf "    \"benchtime\": \"%s\",\n", scaling_benchtime
    printf "    \"best_of\": %s,\n", scaling_count
    printf "    \"devices\": 8,\n"
    printf "    \"sequential_ns_per_op\": %s,\n", seq_ns
    printf "    \"workers2_ns_per_op\": %s,\n", w2_ns
    printf "    \"workers4_ns_per_op\": %s,\n", w4_ns
    printf "    \"workers8_ns_per_op\": %s,\n", w8_ns
    printf "    \"speedup_workers2\": %.3f,\n", seq_ns / w2_ns
    printf "    \"speedup_workers4\": %.3f,\n", seq_ns / w4_ns
    printf "    \"speedup_workers8\": %.3f\n", seq_ns / w8_ns
    printf "  },\n"
    printf "  \"multi_device_scaling_64\": {\n"
    printf "    \"benchtime\": \"%s\",\n", scaling64_benchtime
    printf "    \"best_of\": %s,\n", scaling_count
    printf "    \"devices\": 64,\n"
    printf "    \"sequential_ns_per_op\": %s,\n", seq64_ns
    printf "    \"workers2_ns_per_op\": %s,\n", w2_64_ns
    printf "    \"workers4_ns_per_op\": %s,\n", w4_64_ns
    printf "    \"workers8_ns_per_op\": %s,\n", w8_64_ns
    printf "    \"speedup_workers2\": %.3f,\n", seq64_ns / w2_64_ns
    printf "    \"speedup_workers4\": %.3f,\n", seq64_ns / w4_64_ns
    printf "    \"speedup_workers8\": %.3f,\n", seq64_ns / w8_64_ns
    printf "    \"window_count\": %s,\n", win_count == "" ? "null" : win_count
    printf "    \"avg_window_width_ps\": %s\n", win_width == "" ? "null" : win_width
    printf "  },\n"
    printf "  \"multi_device_scaling_256\": {\n"
    printf "    \"benchtime\": \"%s\",\n", sync_benchtime
    printf "    \"best_of\": %s,\n", sync_count
    printf "    \"devices\": 256,\n"
    printf "    \"sequential_ns_per_op\": %s,\n", seq256_ns
    printf "    \"workers4_windowed_ns_per_op\": %s,\n", r256_w_ns
    printf "    \"workers4_appointment_ns_per_op\": %s,\n", r256_a_ns
    printf "    \"speedup_workers4_windowed\": %.3f,\n", seq256_ns / r256_w_ns
    printf "    \"speedup_workers4_appointment\": %.3f\n", seq256_ns / r256_a_ns
    printf "  },\n"
    printf "  \"sync_modes\": {\n"
    printf "    \"benchtime\": \"%s\",\n", sync_benchtime
    printf "    \"best_of\": %s,\n", sync_count
    printf "    \"workers\": 4,\n"
    printf "    \"shapes\": [\n"
    shape_row("torus-8x8", 64, t64_w_ns, t64_a_ns, t64_a_null, ",")
    shape_row("hier-2x32", 64, h64_w_ns, h64_a_ns, h64_a_null, ",")
    shape_row("ring-256", 256, r256_w_ns, r256_a_ns, r256_a_null, ",")
    shape_row("torus-16x16", 256, t256_w_ns, t256_a_ns, t256_a_null, ",")
    shape_row("hier-2x128", 256, h256_w_ns, h256_a_ns, h256_a_null, "")
    printf "    ]\n"
    printf "  },\n"
    printf "  \"serving\": {\n"
    printf "    \"serve_req_per_s\": %s,\n", serve_req_s == "" ? "null" : serve_req_s
    printf "    \"admission_req_per_s\": %s,\n", admit_req_s == "" ? "null" : admit_req_s
    printf "    \"admission_allocs_per_op\": %s\n", admit_allocs == "" ? "null" : admit_allocs
    printf "  },\n"
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], i < n ? "," : ""
    printf "  ]\n"
    printf "}\n"
}' "$raw" >"$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmark rows)"
