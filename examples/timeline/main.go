// Timeline: visualize a fused GEMM→reduce-scatter as an ASCII timeline —
// per-interval event density (stage completions, remote writes, DMA
// triggers, owned-chunk completions), the paper's Figure 7/17 dynamics in
// one view.
//
// Run with:
//
//	go run ./examples/timeline
package main

import (
	"fmt"
	"log"
	"strings"

	"t3sim"
)

func main() {
	grid, err := t3sim.NewGrid(
		t3sim.GEMMShape{M: 8192, N: 4096, K: 1024, ElemBytes: 2},
		t3sim.DefaultTiling())
	if err != nil {
		log.Fatal(err)
	}
	events := &t3sim.FusedEventLog{}
	res, err := t3sim.RunFusedGEMMRS(t3sim.FusedOptions{
		GPU:         t3sim.DefaultGPUConfig(),
		Memory:      t3sim.DefaultMemoryConfig(),
		Link:        t3sim.DefaultLinkConfig(),
		Tracker:     t3sim.TrackerConfig{Sets: 256, Ways: 64, MaxWFsPerWG: 8},
		Devices:     8,
		Grid:        grid,
		Collective:  t3sim.RingReduceScatterCollective,
		Arbitration: t3sim.ArbMCA,
		Events:      events,
	})
	if err != nil {
		log.Fatal(err)
	}

	const buckets = 48
	span := res.Done + 1
	bucket := span / buckets
	type lane struct {
		name string
		kind t3sim.FusedEventKind
		hist [buckets]int
	}
	lanes := []*lane{
		{name: "GEMM stages ", kind: t3sim.EventStageComputed},
		{name: "remote wr   ", kind: t3sim.EventRemoteWrite},
		{name: "DMA trigger ", kind: t3sim.EventDMATriggered},
		{name: "owned done  ", kind: t3sim.EventOwnedTileDone},
	}
	for _, e := range events.Events() {
		for _, l := range lanes {
			if e.Kind == l.kind {
				idx := int(e.At / bucket)
				if idx >= buckets {
					idx = buckets - 1
				}
				l.hist[idx]++
			}
		}
	}
	glyph := func(n, max int) byte {
		switch {
		case n == 0:
			return '.'
		case n <= max/8+1:
			return '-'
		case n <= max/2+1:
			return '+'
		default:
			return '#'
		}
	}

	fmt.Printf("fused GEMM-RS on 8 GPUs: %v output, done at %v (GEMM at %v)\n\n",
		grid.Shape.OutputBytes(), res.Done, res.GEMMDone)
	for _, l := range lanes {
		max := 0
		for _, n := range l.hist {
			if n > max {
				max = n
			}
		}
		var b strings.Builder
		for _, n := range l.hist {
			b.WriteByte(glyph(n, max))
		}
		fmt.Printf("%s |%s|\n", l.name, b.String())
	}
	fmt.Printf("%s 0%sdone\n", strings.Repeat(" ", 12), strings.Repeat(" ", buckets-3))
	fmt.Println("\nreading the lanes: remote writes track the first chunk's production;")
	fmt.Println("DMA triggers follow each phase as local + incoming updates complete;")
	fmt.Println("owned completions cluster at the end, closing the reduce-scatter.")
	g, _ := events.First(t3sim.EventGEMMDone)
	c, _ := events.First(t3sim.EventCollectiveDone)
	fmt.Printf("\nexposed communication after GEMM: %v (%.1f%% of the run)\n",
		c.At-g.At, 100*float64(c.At-g.At)/float64(res.Done))
}
