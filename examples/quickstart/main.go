// Quickstart: fuse a tensor-sliced GEMM with its ring reduce-scatter using
// T3 on a 4-GPU ring and compare against sequential execution.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"t3sim"
)

func main() {
	// A [8192x4096] FP16 GEMM whose K dimension has already been sliced
	// across 4 tensor-parallel devices (K = 2048/4 per device would come
	// from SliceK; here we build the sliced shape directly).
	grid, err := t3sim.NewGrid(
		t3sim.GEMMShape{M: 8192, N: 4096, K: 512, ElemBytes: 2},
		t3sim.DefaultTiling(),
	)
	if err != nil {
		log.Fatal(err)
	}
	const devices = 4

	opts := t3sim.FusedOptions{
		GPU:         t3sim.DefaultGPUConfig(),
		Memory:      t3sim.DefaultMemoryConfig(),
		Link:        t3sim.DefaultLinkConfig(),
		Tracker:     t3sim.TrackerConfig{Sets: 256, Ways: 64, MaxWFsPerWG: 8},
		Devices:     devices,
		Grid:        grid,
		Collective:  t3sim.RingReduceScatterCollective,
		Arbitration: t3sim.ArbMCA, // the paper's T3-MCA configuration
	}
	fused, err := t3sim.RunFusedGEMMRS(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Sequential reference: the same GEMM followed by a standalone RS.
	rs, err := t3sim.AnalyticRingReduceScatterTime(t3sim.AnalyticCollectiveOptions{
		Devices:           devices,
		TotalBytes:        grid.Shape.OutputBytes(),
		Link:              opts.Link,
		MemBandwidth:      opts.Memory.TotalBandwidth,
		CUs:               opts.GPU.CUs,
		PerCUMemBandwidth: 16 * t3sim.GBps,
	})
	if err != nil {
		log.Fatal(err)
	}
	sequential := fused.GEMMDone + rs

	fmt.Printf("GEMM %v on %d devices, output %v, reduce-scatter fused by T3\n",
		grid.Shape, devices, grid.Shape.OutputBytes())
	fmt.Printf("  GEMM finished:           %v\n", fused.GEMMDone)
	fmt.Printf("  fused RS complete:       %v\n", fused.Done)
	fmt.Printf("  sequential GEMM->RS:     %v (estimate)\n", sequential)
	fmt.Printf("  speedup:                 %.2fx\n", float64(sequential)/float64(fused.Done))
	fmt.Printf("  exposed communication:   %v (vs %v serialized)\n", fused.Done-fused.GEMMDone, rs)
	fmt.Printf("  DRAM traffic:            %v (all NMC updates, no collective kernels)\n",
		fused.DRAM.TotalBytes())
	fmt.Printf("  ring link traffic:       %v\n", fused.LinkBytes)
	fmt.Printf("  tracker high-water mark: %d live tiles\n", fused.TrackerMaxLive)
	fmt.Printf("  MCA occupancy threshold: %d\n", fused.MCAThreshold)
}
