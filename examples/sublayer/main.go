// Sublayer: sweep every all-reduce-feeding sub-layer of one Transformer
// (Figure 15/16 style) and print the per-scheme completion times — the
// sequential baseline, T3, T3-MCA, and the ideal overlap bound.
//
// Run with:
//
//	go run ./examples/sublayer [model]
//
// where model is one of Mega-GPT-2, T-NLG, GPT-3, PALM, MT-NLG
// (default T-NLG).
package main

import (
	"fmt"
	"log"
	"os"

	"t3sim"
)

func main() {
	name := "T-NLG"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	model, err := t3sim.ModelByName(name)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := t3sim.NewEvaluator(t3sim.DefaultExperimentSetup())
	if err != nil {
		log.Fatal(err)
	}

	// EvaluateAll fans the sweep out over a worker pool (results come back
	// in input order, identical to one-at-a-time Evaluate calls).
	var cases []t3sim.SubCase
	for _, tp := range model.TPDegrees {
		for _, kind := range t3sim.AllSubLayers() {
			cases = append(cases, t3sim.SubCase{Model: model, Kind: kind, TP: tp})
		}
	}
	rows, err := ev.EvaluateAll(cases)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (hidden %d, %d layers, %d tokens)\n\n",
		model.Name, model.Hidden, model.Layers, model.Tokens())
	fmt.Printf("%-10s %-4s %12s %12s %12s | %8s %8s %8s | %s\n",
		"sub-layer", "TP", "GEMM", "RS", "AG", "T3", "T3-MCA", "ideal", "data moved")
	for i, r := range rows {
		fmt.Printf("%-10v %-4d %12v %12v %12v | %7.2fx %7.2fx %7.2fx | -%.1f%%\n",
			cases[i].Kind, cases[i].TP, r.GEMM, r.RS, r.AG,
			r.SpeedupT3(), r.SpeedupT3MCA(), r.SpeedupIdeal(),
			100*r.DataMovementReduction())
	}
	fmt.Println("\nspeedups are over sequential GEMM->RS->AG; data moved compares DRAM bytes")
}
