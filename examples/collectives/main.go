// Collectives: run every functional collective in the library on real data
// and verify them against the serial reference — including the full T3 fused
// protocol (tracker, address maps, triggered DMAs) moving actual floats.
//
// Run with:
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"t3sim"
)

const (
	devices = 8
	length  = 4096
)

func makeData(seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float32, devices)
	for d := range data {
		arr := make([]float32, length)
		for i := range arr {
			arr[i] = float32(rng.Intn(512)-256) / 8
		}
		data[d] = arr
	}
	return data
}

func maxErr(got, want []float32) float64 {
	worst := 0.0
	for i := range got {
		if e := math.Abs(float64(got[i] - want[i])); e > worst {
			worst = e
		}
	}
	return worst
}

func main() {
	ref, err := t3sim.ReferenceAllReduce(makeData(1))
	if err != nil {
		log.Fatal(err)
	}
	bounds := t3sim.ChunkBounds(length, devices)

	// Ring all-reduce: every device ends with the full sum.
	data := makeData(1)
	if err := t3sim.RingAllReduce(data); err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for d := range data {
		if e := maxErr(data[d], ref); e > worst {
			worst = e
		}
	}
	fmt.Printf("ring all-reduce:             %d devices x %d elems, max error %g\n",
		devices, length, worst)

	// Halving-doubling all-reduce: same postcondition, different algorithm.
	data = makeData(1)
	if err := t3sim.HalvingDoublingAllReduce(data); err != nil {
		log.Fatal(err)
	}
	worst = 0
	for d := range data {
		if e := maxErr(data[d], ref); e > worst {
			worst = e
		}
	}
	fmt.Printf("halving-doubling all-reduce: max error %g\n", worst)

	// Ring reduce-scatter: device d owns chunk d, fully reduced.
	data = makeData(1)
	if err := t3sim.RingReduceScatter(data); err != nil {
		log.Fatal(err)
	}
	worst = 0
	for d := range data {
		b := bounds[t3sim.OwnedChunk(d, devices)]
		if e := maxErr(data[d][b[0]:b[1]], ref[b[0]:b[1]]); e > worst {
			worst = e
		}
	}
	fmt.Printf("ring reduce-scatter:         owned chunks max error %g\n", worst)

	// Direct (fully-connected) reduce-scatter: same owned chunks.
	data = makeData(1)
	if err := t3sim.DirectReduceScatter(data); err != nil {
		log.Fatal(err)
	}
	worst = 0
	for d := range data {
		b := bounds[t3sim.OwnedChunk(d, devices)]
		if e := maxErr(data[d][b[0]:b[1]], ref[b[0]:b[1]]); e > worst {
			worst = e
		}
	}
	fmt.Printf("direct reduce-scatter:       owned chunks max error %g\n", worst)

	// The T3 fused protocol: each device's "GEMM contribution" is reduced
	// through staggered remote writes, in-DRAM updates and tracker-triggered
	// DMAs. The result must match the same reference.
	res, err := t3sim.RunFunctionalFusedReduceScatter(makeData(1), 64, 42)
	if err != nil {
		log.Fatal(err)
	}
	worst = 0
	var fired, dmas int64
	for d := 0; d < devices; d++ {
		b := bounds[t3sim.OwnedChunk(d, devices)]
		if e := maxErr(res.Buffers[d][b[0]:b[1]], ref[b[0]:b[1]]); e > worst {
			worst = e
		}
		fired += res.TrackerFired[d]
		dmas += res.DMATriggered[d]
	}
	fmt.Printf("T3 fused reduce-scatter:     owned chunks max error %g\n", worst)
	fmt.Printf("  tracker fires: %d, triggered DMAs: %d, remote-written tiles: %d\n",
		fired, dmas, res.RemoteWrites[0]*int64(devices))

	// All-to-all on a fresh data set.
	data = makeData(2)
	if err := t3sim.AllToAll(data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-to-all:                  exchanged %d chunks of %d elems\n",
		devices*devices, length/devices)
}
