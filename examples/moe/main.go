// MoE: expert parallelism (§7.2) — a Mixture-of-Experts layer places one
// expert per device and exchanges tokens with an all-to-all before and
// after the expert FFN. T3 fuses the all-to-all with the producer GEMM:
// each output chunk is remote-written to its expert's device as it is
// produced, so the exchange rides on the GEMM's stores.
//
// Run with:
//
//	go run ./examples/moe
package main

import (
	"fmt"
	"log"

	"t3sim"
)

func main() {
	const (
		experts = 8    // one expert per device
		tokens  = 8192 // tokens routed this step
		hidden  = 4096
	)
	// The producer: the pre-exchange projection computing each token's
	// activation, whose output is scattered to the experts.
	grid, err := t3sim.NewGrid(
		t3sim.GEMMShape{M: tokens, N: hidden, K: hidden / experts, ElemBytes: 2},
		t3sim.DefaultTiling())
	if err != nil {
		log.Fatal(err)
	}

	res, err := t3sim.RunFusedGEMMAllToAll(t3sim.FusedOptions{
		GPU:         t3sim.DefaultGPUConfig(),
		Memory:      t3sim.DefaultMemoryConfig(),
		Link:        t3sim.DefaultLinkConfig(),
		Tracker:     t3sim.TrackerConfig{Sets: 256, Ways: 64, MaxWFsPerWG: 8},
		Devices:     experts,
		Grid:        grid,
		Collective:  t3sim.AllToAllCollective,
		Arbitration: t3sim.ArbMCA,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Sequential reference: GEMM then a wire-bound all-to-all of (n-1)/n of
	// the output across the ring links.
	out := grid.Shape.OutputBytes()
	exchanged := out / experts * (experts - 1)
	wire := t3sim.DefaultLinkConfig().LinkBandwidth.TransferTime(exchanged)
	sequential := res.GEMMDone + wire

	fmt.Printf("MoE token exchange: %d experts, %v activations, %v crossing the network\n",
		experts, out, exchanged)
	fmt.Printf("  GEMM finished:        %v\n", res.GEMMDone)
	fmt.Printf("  fused exchange done:  %v\n", res.Done)
	fmt.Printf("  sequential estimate:  %v\n", sequential)
	fmt.Printf("  speedup:              %.2fx\n", float64(sequential)/float64(res.Done))
	fmt.Printf("  local DRAM writes:    %v (only the local expert's chunk, §7.1)\n",
		res.DRAM.Bytes[t3sim.MemoryWrite][0])
	fmt.Printf("  link traffic:         %v\n", res.LinkBytes)

	// The functional layer proves the exchange semantics on real data.
	data := make([][]float32, experts)
	for d := range data {
		arr := make([]float32, experts*16)
		for i := range arr {
			arr[i] = float32(d*1000 + i)
		}
		data[d] = arr
	}
	if err := t3sim.AllToAll(data); err != nil {
		log.Fatal(err)
	}
	// After the exchange, device d's chunk j holds device j's chunk d.
	bounds := t3sim.ChunkBounds(experts*16, experts)
	ok := true
	for d := 0; d < experts && ok; d++ {
		for j := 0; j < experts && ok; j++ {
			b := bounds[j]
			want := float32(j*1000 + bounds[d][0])
			if data[d][b[0]] != want {
				ok = false
			}
		}
	}
	fmt.Printf("  functional all-to-all verified: %v\n", ok)
}
