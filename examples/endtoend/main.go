// Endtoend: estimate full-iteration training and prompt-inference speedups
// for one model (Figure 19 style): the analytical iteration breakdown is
// combined with simulated fused sub-layer times.
//
// Run with:
//
//	go run ./examples/endtoend [model]
package main

import (
	"fmt"
	"log"
	"os"

	"t3sim"
)

func main() {
	name := "Mega-GPT-2"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	model, err := t3sim.ModelByName(name)
	if err != nil {
		log.Fatal(err)
	}
	setup := t3sim.DefaultExperimentSetup()
	ev, err := t3sim.NewEvaluator(setup)
	if err != nil {
		log.Fatal(err)
	}
	hw := t3sim.DefaultHW()

	for _, tp := range model.TPDegrees {
		// Simulate the fused time of every AR-feeding sub-layer once.
		fused := map[t3sim.SubLayerKind]t3sim.Time{}
		for _, kind := range t3sim.AllSubLayers() {
			r, err := ev.Evaluate(t3sim.SubCase{Model: model, Kind: kind, TP: tp})
			if err != nil {
				log.Fatal(err)
			}
			fused[kind] = r.T3MCA - r.AG // fused GEMM-RS; AG stays serialized
		}
		for _, phase := range []t3sim.ExecutionPhase{t3sim.Training, t3sim.PromptInference} {
			it, err := t3sim.NewIterationModel(model, tp, phase, hw)
			if err != nil {
				log.Fatal(err)
			}
			base := it.Total()
			with := it.WithSubLayerTimes(fused)
			fmt.Printf("%s TP=%d %-17v baseline %10v -> T3-MCA %10v (%.1f%% faster, comm was %.0f%% of time)\n",
				model.Name, tp, phase, base, with,
				100*(float64(base)/float64(with)-1), 100*it.CommFraction())
		}
	}
}
