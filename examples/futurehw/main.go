// Futurehw: a §7.5-style what-if — how do T3-MCA's benefits change when
// compute FLOPS scale 2x and 4x faster than the network? Compute-dominated
// sub-layers benefit more from overlap as they get faster; communication-
// bound ones see their exposed communication grow.
//
// Run with:
//
//	go run ./examples/futurehw
package main

import (
	"fmt"
	"log"

	"t3sim"
)

func main() {
	model, err := t3sim.ModelByName("T-NLG")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("T3-MCA speedups for %s sub-layers as compute scales (network fixed)\n\n", model.Name)
	fmt.Printf("%-10s %-4s %10s %10s %10s\n", "sub-layer", "TP", "1x CUs", "2x CUs", "4x CUs")

	for _, kind := range []t3sim.SubLayerKind{t3sim.OutProj, t3sim.FC2} {
		for _, tp := range model.TPDegrees {
			row := fmt.Sprintf("%-10v %-4d", kind, tp)
			for _, scale := range []int{1, 2, 4} {
				setup := t3sim.DefaultExperimentSetup()
				setup.GPU.CUs *= scale
				ev, err := t3sim.NewEvaluator(setup)
				if err != nil {
					log.Fatal(err)
				}
				r, err := ev.Evaluate(t3sim.SubCase{Model: model, Kind: kind, TP: tp})
				if err != nil {
					log.Fatal(err)
				}
				row += fmt.Sprintf(" %9.2fx", r.SpeedupT3MCA())
			}
			fmt.Println(row)
		}
	}
	fmt.Println("\npaper §7.5: larger (FC-2) layers benefit more as compute scales;")
	fmt.Println("balanced (OP) layers see communication exposed on the critical path")
}
