// Command t3sweep runs custom fused GEMM→collective sweeps and emits one
// CSV row per configuration — the quick-experiment companion to cmd/t3sim's
// fixed paper figures.
//
//	t3sweep -m 8192 -n 4096 -k 512 -devices 4,8,16
//	t3sweep -m 8192 -n 4096 -k 512 -devices 8 -links 150,75,37.5 -arb mca
//	t3sweep -collective direct -devices 8
//	t3sweep -collective multi -topo torus -devices 8
//	t3sweep -devices 4,8,16,32 -links 300,150,75 -j 8
//
// Output columns: devices, link_gbps, cus, arbitration, collective,
// gemm_us, collective_done_us, done_us, speedup_vs_sequential, dram_mib,
// link_mib, tracker_high_water.
//
// Parallel multi-device rows (-collective multi -par N) are each followed by
// a `#`-prefixed comment line reporting the cluster scheduler's coordination
// stats (sync mode, rounds, average window width, null messages, stall
// time), so scaling regressions are visible without a profiler. The data
// rows themselves are byte-identical at any -par/-sync; only the comment
// reflects the coordinator. -sync picks the synchronization strategy
// (auto|windowed|appointment).
//
// -serve switches to the serving capacity sweep (internal/serving): one CSV
// row per (scheme, offered QPS) operating point with TTFT/TPOT percentiles,
// T3 overlap off vs on, plus a `#` summary line with each scheme's max QPS
// under the p99 TTFT SLO. -qps overrides the offered-load ladder and -slo
// the objective:
//
//	t3sweep -serve
//	t3sweep -serve -qps 4,8,12,16 -slo 250ms
//
// -cache-dir layers the persistent content-addressed result store under the
// sweep: repeated configurations dedup in memory, and warm re-runs serve
// byte-identical rows from disk instead of re-simulating. A trailing
// `# cache` comment line reports the hit/miss/byte accounting. -cache-mode
// picks rw|ro|off access; -cache-stats and -cache-prune inspect or
// garbage-collect a cache directory and exit without sweeping:
//
//	t3sweep -devices 4,8,16 -cache-dir ~/.cache/t3sim
//	t3sweep -cache-dir ~/.cache/t3sim -cache-stats
//	t3sweep -cache-dir ~/.cache/t3sim -cache-prune
//
// -j fans the cross-product out over concurrent simulations. Rows always
// print in sweep order (cus-major, then links, then devices) and every
// configuration owns a private simulation engine, so the CSV is
// byte-identical at any -j.
//
// -timeline out.json additionally records every configuration's simulation
// as a Perfetto-loadable Chrome trace-event file (one Perfetto process per
// configuration), and -metrics out.json dumps the final counters and gauges;
// both are deterministic at any -j.
//
// Profiling the simulator itself on a custom sweep (same flags as cmd/t3sim):
//
//	t3sweep -devices 8,16,32 -j 1 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"t3sim"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code: early failures return through the deferred
// profile writers instead of bypassing them with os.Exit.
func run() (code int) {
	var (
		m     = flag.Int("m", 8192, "GEMM M (rows of the output)")
		n     = flag.Int("n", 4096, "GEMM N (columns of the output)")
		k     = flag.Int("k", 512, "GEMM K per device (already sliced)")
		elem  = flag.Int("elem", 2, "element size in bytes (2 = FP16)")
		devs  = flag.String("devices", "8", "comma-separated device counts")
		links = flag.String("links", "150", "comma-separated bidirectional link GB/s")
		cus   = flag.String("cus", "80", "comma-separated GPU CU counts")
		arb   = flag.String("arb", "mca", "arbitration: rr | mca | cf")
		coll  = flag.String("collective", "rs", "collective: rs | direct | ag | a2a | multi (explicit N-device rs)")
		topo  = flag.String("topo", "",
			"route -collective multi over this interconnect graph "+
				"(ring|torus|switch|hier); empty keeps the implicit ring")
		hdr   = flag.Bool("header", true, "print the CSV header")
		serve = flag.Bool("serve", false,
			"run the serving capacity sweep instead of a GEMM sweep: one CSV row per "+
				"(scheme, offered QPS) operating point, T3 overlap off vs on")
		qps = flag.String("qps", "",
			"comma-separated offered-load ladder for -serve (requests/s); empty keeps the built-in sweep")
		slo = flag.Duration("slo", 0,
			"p99 TTFT service-level objective for -serve (e.g. 250ms); 0 keeps the built-in default")
		jobs = flag.Int("j", runtime.GOMAXPROCS(0),
			"max concurrent simulations; output order is identical at any -j")
		par = flag.Int("par", 0,
			"worker goroutines per explicit multi-device simulation (-collective multi); "+
				"0 = sequential single-engine path; output is byte-identical at any -par")
		syncFlag = flag.String("sync", "auto",
			"cluster synchronization for -par runs (auto|windowed|appointment); "+
				"auto picks from topology edge density; rows are byte-identical in every mode")
		checkRuns = flag.Bool("check", false,
			"attach the simulation invariant checker to every configuration; violations fail the process")
		timeline = flag.String("timeline", "",
			"write a Perfetto-loadable trace-event timeline of the sweep to this JSON file")
		metricsOut = flag.String("metrics", "",
			"write every configuration's final counters and gauges to this JSON file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		cacheDir   = flag.String("cache-dir", "",
			"persistent result-store directory: warm sweeps serve identical configurations "+
				"from disk with byte-identical rows; empty disables the store")
		cacheMode = flag.String("cache-mode", "rw",
			"result-store access for -cache-dir (rw|ro|off): ro never writes, off ignores the store")
		cacheStats = flag.Bool("cache-stats", false,
			"print the -cache-dir store's contents (entries, bytes, stale versions) and exit")
		cachePrune = flag.Bool("cache-prune", false,
			"remove stale-version entries and leftover temp files from -cache-dir and exit")
	)
	flag.Parse()

	if *cacheStats || *cachePrune {
		return runCacheAdmin(*cacheDir, *cacheStats, *cachePrune)
	}

	// Registered before the CPU profile starts (LIFO): the CPU profile is
	// stopped and flushed first, then the heap profile is written.
	if *memprofile != "" {
		defer func() {
			if err := writeMemProfile(*memprofile); err != nil {
				fmt.Fprintf(os.Stderr, "t3sweep: -memprofile: %v\n", err)
				code = 1
			}
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(fmt.Errorf("-cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("-cpuprofile: %w", err))
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	arbitration, err := parseArb(*arb)
	if err != nil {
		return fail(err)
	}
	syncMode, err := t3sim.ParseSyncMode(*syncFlag)
	if err != nil {
		return fail(err)
	}
	collective, err := parseCollective(*coll)
	if err != nil {
		return fail(err)
	}
	if *topo != "" && *coll != "multi" {
		return fail(fmt.Errorf("-topo %s: only the explicit multi-device run (-collective multi) routes over a graph", *topo))
	}
	deviceList, err := parseInts(*devs)
	if err != nil {
		return fail(fmt.Errorf("bad -devices: %w", err))
	}
	linkList, err := parseFloats(*links)
	if err != nil {
		return fail(fmt.Errorf("bad -links: %w", err))
	}
	cuList, err := parseInts(*cus)
	if err != nil {
		return fail(fmt.Errorf("bad -cus: %w", err))
	}

	grid, err := t3sim.NewGrid(
		t3sim.GEMMShape{M: *m, N: *n, K: *k, ElemBytes: t3sim.Bytes(*elem)},
		t3sim.DefaultTiling())
	if err != nil {
		return fail(err)
	}

	if *jobs < 1 {
		return fail(fmt.Errorf("-j %d: need at least one job", *jobs))
	}

	// One registry collects the whole sweep; every configuration registers
	// under a scope named after its sweep index and parameters, so the
	// exported files are deterministic at any -j.
	var reg *t3sim.MetricsRegistry
	if *timeline != "" || *metricsOut != "" {
		reg = t3sim.NewMetricsRegistry()
		if *timeline != "" {
			reg.EnableTimeline()
		}
	}
	// One checker audits every configuration in the sweep; it is safe to
	// share across the -j workers. Nil stays the zero-cost unchecked path.
	var checker *t3sim.Checker
	if *checkRuns {
		checker = t3sim.NewChecker()
	}

	// A nil memo keeps every call on the direct simulation path; with
	// -cache-dir the sweep dedups within the process and warm-starts from
	// disk. Rows are byte-identical either way.
	var memo *t3sim.ExperimentMemoCache
	if *cacheDir != "" {
		storeMode, off, err := t3sim.ParseResultStoreMode(*cacheMode)
		if err != nil {
			return fail(fmt.Errorf("-cache-mode: %w", err))
		}
		if !off {
			st, err := t3sim.OpenResultStore(*cacheDir, storeMode)
			if err != nil {
				return fail(fmt.Errorf("-cache-dir: %w", err))
			}
			memo = t3sim.NewExperimentMemoCache()
			memo.AttachStore(st)
		}
	}
	// The `# cache` accounting row prints after the sweep body, whichever
	// path it took — including early failures, so a partial sweep still
	// reports what the store absorbed.
	defer func() {
		if memo == nil {
			return
		}
		st := memo.Store()
		st.Flush()
		h, mi := memo.Stats()
		s := st.Stats()
		fmt.Printf("# cache memo_hits=%d memo_misses=%d store_hits=%d store_misses=%d store_corrupt=%d store_puts=%d bytes_read=%d bytes_written=%d\n",
			h, mi, s.Hits, s.Misses, s.Corrupt, s.Puts, s.BytesRead, s.BytesWritten)
	}()

	if *serve {
		return runServe(*qps, *slo, *jobs, *hdr, reg, checker, memo, *timeline, *metricsOut)
	}

	// The sweep cross-product, in output order.
	type config struct {
		devices int
		link    float64
		cus     int
	}
	var sweep []config
	for _, nc := range cuList {
		for _, lg := range linkList {
			for _, nd := range deviceList {
				sweep = append(sweep, config{devices: nd, link: lg, cus: nc})
			}
		}
	}

	if *hdr {
		fmt.Println("devices,link_gbps,cus,arbitration,collective,gemm_us,collective_done_us,done_us,speedup_vs_sequential,dram_mib,link_mib,tracker_high_water")
	}

	// Fan simulations out over -j workers; print rows strictly in sweep
	// order by draining per-index result slots.
	type rowResult struct {
		row string
		err error
	}
	slots := make([]chan rowResult, len(sweep))
	for i := range slots {
		slots[i] = make(chan rowResult, 1)
	}
	idx := make(chan int)
	workers := *jobs
	if workers > len(sweep) {
		workers = len(sweep)
	}
	for w := 0; w < workers; w++ {
		go func() {
			for i := range idx {
				c := sweep[i]
				var sink t3sim.MetricsSink
				if reg != nil {
					sink = reg.Scope(fmt.Sprintf("cfg%03d-dev%d-link%g-cu%d",
						i, c.devices, c.link, c.cus))
				}
				row, err := runOne(grid, c.devices, c.link, c.cus, arbitration, collective, *arb, *coll, *topo, *par, syncMode, sink, checker, memo)
				slots[i] <- rowResult{row: row, err: err}
			}
		}()
	}
	go func() {
		for i := range sweep {
			idx <- i
		}
		close(idx)
	}()
	for i := range sweep {
		r := <-slots[i]
		if r.err != nil {
			return fail(r.err)
		}
		fmt.Print(r.row)
	}

	if reg != nil {
		if memo != nil {
			// Settle pending disk writes so the exported store counters
			// cover the whole sweep, then fold them into the registry.
			memo.Store().Flush()
			memo.PublishMetrics(reg)
		}
		if err := writeExport(*timeline, reg.WriteTrace); err != nil {
			return fail(fmt.Errorf("-timeline: %w", err))
		}
		if err := writeExport(*metricsOut, reg.WriteMetrics); err != nil {
			return fail(fmt.Errorf("-metrics: %w", err))
		}
	}
	if checker != nil {
		if vs := checker.Violations(); len(vs) > 0 {
			for _, v := range vs {
				fmt.Fprintf(os.Stderr, "t3sweep: -check: %s\n", v)
			}
			return 1
		}
	}
	return 0
}

// runServe runs the serving capacity sweep (-serve) and prints one CSV row
// per (scheme, offered QPS) operating point, followed by `#`-prefixed summary
// lines reporting each scheme's max QPS under the p99 TTFT SLO. Rows print in
// sweep order and every simulation is deterministic, so the output is
// byte-identical at any -j/-par.
func runServe(qpsFlag string, slo time.Duration, jobs int, hdr bool,
	reg *t3sim.MetricsRegistry, checker *t3sim.Checker, memo *t3sim.ExperimentMemoCache,
	timeline, metricsOut string) int {
	setup := t3sim.DefaultExperimentSetup()
	setup.Memo = memo
	if qpsFlag != "" {
		ladder, err := parseFloats(qpsFlag)
		if err != nil {
			return fail(fmt.Errorf("bad -qps: %w", err))
		}
		for _, v := range ladder {
			if v <= 0 {
				return fail(fmt.Errorf("bad -qps: QPS %g: must be positive", v))
			}
		}
		setup.ServeQPS = ladder
	}
	if slo < 0 {
		return fail(fmt.Errorf("-slo %v: must be non-negative", slo))
	}
	setup.ServeSLO = t3sim.Time(slo.Nanoseconds()) * t3sim.Nanosecond
	if reg != nil {
		setup.Metrics = reg
	}
	setup.Check = checker

	runner := t3sim.NewExperimentRunner(setup, jobs)
	ev, err := runner.Evaluator()
	if err != nil {
		return fail(err)
	}
	res, err := t3sim.ServeSweep(ev)
	if err != nil {
		return fail(err)
	}

	if hdr {
		fmt.Println("scheme,qps,tput_per_s,ttft_p50_us,ttft_p99_us,tpot_p50_us,tpot_p99_us,e2e_p99_us,slo_met")
	}
	for _, row := range res.Rows {
		met := 0
		if row.SLOMet {
			met = 1
		}
		fmt.Printf("%s,%g,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%d\n",
			row.Scheme, row.QPS, row.Throughput,
			row.TTFTp50.Micros(), row.TTFTp99.Micros(),
			row.TPOTp50.Micros(), row.TPOTp99.Micros(),
			row.E2Ep99.Micros(), met)
	}
	fmt.Printf("# max QPS under p99 TTFT SLO %v: baseline %g, T3-MCA %g\n",
		res.SLO, res.BaselineCapacity, res.T3Capacity)

	if reg != nil {
		if memo != nil {
			memo.Store().Flush()
			memo.PublishMetrics(reg)
		}
		if err := writeExport(timeline, reg.WriteTrace); err != nil {
			return fail(fmt.Errorf("-timeline: %w", err))
		}
		if err := writeExport(metricsOut, reg.WriteMetrics); err != nil {
			return fail(fmt.Errorf("-metrics: %w", err))
		}
	}
	if checker != nil {
		if vs := checker.Violations(); len(vs) > 0 {
			for _, v := range vs {
				fmt.Fprintf(os.Stderr, "t3sweep: -check: %s\n", v)
			}
			return 1
		}
	}
	return 0
}

// runCacheAdmin handles the store administration actions (-cache-stats,
// -cache-prune): inspect or garbage-collect a cache directory without
// running a sweep. Stats opens the store read-only, so it works on
// directories the process cannot write.
func runCacheAdmin(dir string, stats, prune bool) int {
	if dir == "" {
		return fail(fmt.Errorf("-cache-stats/-cache-prune need -cache-dir"))
	}
	mode := t3sim.StoreReadOnly
	if prune {
		mode = t3sim.StoreReadWrite
	}
	st, err := t3sim.OpenResultStore(dir, mode)
	if err != nil {
		return fail(fmt.Errorf("-cache-dir: %w", err))
	}
	if stats {
		ds, err := st.DiskStats()
		if err != nil {
			return fail(fmt.Errorf("-cache-stats: %w", err))
		}
		fmt.Printf("# cache dir=%s version=%s\n", dir, t3sim.ResultStoreVersion())
		fmt.Printf("# cache entries=%d current=%d stale=%d temp=%d bytes=%d\n",
			ds.Entries, ds.Current, ds.Stale, ds.TempFiles, ds.Bytes)
	}
	if prune {
		removed, freed, err := st.Prune()
		if err != nil {
			return fail(fmt.Errorf("-cache-prune: %w", err))
		}
		fmt.Printf("# cache pruned=%d freed_bytes=%d\n", removed, freed)
	}
	return 0
}

// writeMemProfile snapshots the heap allocation profile to path.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialize up-to-date allocation stats
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeExport writes one metrics exporter's output to path; "" skips.
func writeExport(path string, write func(io.Writer) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runOne simulates one configuration and returns its CSV row. A non-nil sink
// receives the run's instruments (spans, counters, gauges); a non-nil checker
// audits the run's conservation/ordering/bound invariants. A non-nil memo
// serves repeated configurations from the in-memory/persistent result cache;
// nil (or an uncacheable configuration — live sink, -par cluster stats) runs
// the simulation directly.
func runOne(grid t3sim.GEMMGrid, devices int, linkGBps float64, cus int,
	arb t3sim.Arbitration, coll t3sim.FusedCollective, arbName, collName, topoName string,
	par int, syncMode t3sim.ClusterSyncMode, sink t3sim.MetricsSink, checker *t3sim.Checker,
	memo *t3sim.ExperimentMemoCache) (string, error) {
	gpu := t3sim.DefaultGPUConfig()
	gpu.CUs = cus
	link := t3sim.DefaultLinkConfig()
	link.LinkBandwidth = t3sim.Bandwidth(linkGBps / 2 * 1e9) // per direction

	var topoSpec t3sim.TopoSpec
	if topoName != "" {
		var err error
		topoSpec, err = t3sim.TopoSpecFor(topoName, devices, link)
		if err != nil {
			return "", err
		}
	}

	opts := t3sim.FusedOptions{
		Topo:        topoSpec,
		GPU:         gpu,
		Memory:      t3sim.DefaultMemoryConfig(),
		Link:        link,
		Tracker:     t3sim.TrackerConfig{Sets: 256, Ways: 64, MaxWFsPerWG: 8},
		Devices:     devices,
		Grid:        grid,
		Collective:  coll,
		Arbitration: arb,
		Metrics:     sink,
		Check:       checker,
		ParWorkers:  par,
		SyncMode:    syncMode,
	}
	var (
		res     t3sim.FusedResult
		err     error
		cluster string
	)
	switch {
	case collName == "multi":
		// Explicit N-device simulation (no mirroring); -par picks the
		// conservative-parallel execution strategy and -sync the cluster
		// coordinator, output is identical either way. The cluster stats
		// out-parameter only matters for -par runs, and requesting it makes
		// the run uncacheable (a hit couldn't report this run's windowing),
		// so sequential rows skip it and stay memoizable.
		var st t3sim.ClusterStats
		if par > 0 {
			opts.ClusterStats = &st
		}
		var multi t3sim.MultiDeviceResult
		multi, err = memo.FusedMulti(opts)
		if err == nil {
			res = t3sim.FusedResult{
				GEMMDone:       maxTime(multi.GEMMDone),
				CollectiveDone: multi.Done,
				Done:           multi.Done,
				DRAM:           multi.DRAM,
				LinkBytes:      multi.LinkBytes,
				TrackerMaxLive: multi.TrackerMaxLive,
			}
			if st.Windows > 0 {
				// The comment row surfaces the coordination-layer stats
				// without touching the CSV data contract.
				cluster = fmt.Sprintf("# cluster devices=%d sync=%s windows=%d engine_windows=%d avg_window_ps=%d null_msgs=%d stall_windows=%d stall_ps=%d\n",
					devices, st.Mode, st.Windows, st.EngineWindows, int64(st.AvgWindowWidth()),
					st.NullMessages, st.StalledEngineWindows, int64(st.StallTime))
			}
		}
	case coll == t3sim.RingAllGatherCollective:
		res, err = memo.FusedAG(opts)
	case coll == t3sim.AllToAllCollective:
		res, err = memo.FusedAllToAll(opts)
	default:
		res, err = memo.FusedRS(opts)
	}
	if err != nil {
		return "", err
	}

	// Sequential reference: isolated GEMM plus the serialized collective.
	seq := res.GEMMDone + sequentialWire(grid, devices, link, coll)

	return fmt.Sprintf("%d,%.1f,%d,%s,%s,%.3f,%.3f,%.3f,%.3f,%.1f,%.1f,%d\n",
		devices, linkGBps, cus, arbName, collName,
		res.GEMMDone.Micros(), res.CollectiveDone.Micros(), res.Done.Micros(),
		float64(seq)/float64(res.Done),
		res.DRAM.TotalBytes().MiBf(), res.LinkBytes.MiBf(),
		res.TrackerMaxLive) + cluster, nil
}

// sequentialWire estimates the serialized collective's wire time.
func sequentialWire(grid t3sim.GEMMGrid, devices int, link t3sim.LinkConfig, coll t3sim.FusedCollective) t3sim.Time {
	out := grid.Shape.OutputBytes()
	switch coll {
	case t3sim.RingAllGatherCollective:
		// Gathering n-1 foreign shards of this size.
		return link.LinkBandwidth.TransferTime(out * t3sim.Bytes(devices-1))
	case t3sim.AllToAllCollective:
		return link.LinkBandwidth.TransferTime(out / t3sim.Bytes(devices) * t3sim.Bytes(devices-1))
	default: // reduce-scatter variants
		return link.LinkBandwidth.TransferTime(out / t3sim.Bytes(devices) * t3sim.Bytes(devices-1))
	}
}

func parseArb(s string) (t3sim.Arbitration, error) {
	switch s {
	case "rr":
		return t3sim.ArbRoundRobin, nil
	case "mca":
		return t3sim.ArbMCA, nil
	case "cf":
		return t3sim.ArbComputeFirst, nil
	default:
		return 0, fmt.Errorf("t3sweep: unknown arbitration %q (rr|mca|cf)", s)
	}
}

func parseCollective(s string) (t3sim.FusedCollective, error) {
	switch s {
	case "rs":
		return t3sim.RingReduceScatterCollective, nil
	case "direct":
		return t3sim.DirectReduceScatterCollective, nil
	case "ag":
		return t3sim.RingAllGatherCollective, nil
	case "a2a":
		return t3sim.AllToAllCollective, nil
	case "multi":
		// Explicit multi-device ring reduce-scatter; runOne dispatches on
		// the name, the option struct still carries the rs collective.
		return t3sim.RingReduceScatterCollective, nil
	default:
		return 0, fmt.Errorf("t3sweep: unknown collective %q (rs|direct|ag|a2a|multi)", s)
	}
}

// maxTime returns the latest of a slice of completion times.
func maxTime(ts []t3sim.Time) t3sim.Time {
	var m t3sim.Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// fail reports err and returns the failing exit code for run to propagate.
func fail(err error) int {
	fmt.Fprintf(os.Stderr, "t3sweep: %v\n", err)
	return 1
}
