// Command t3sim regenerates the paper's tables and figures from the
// simulator. Each experiment prints the same rows/series the paper reports:
//
//	t3sim -exp fig16          # sub-layer speedups (the headline result)
//	t3sim -exp fig18          # data-movement reductions
//	t3sim -exp all            # everything
//	t3sim -exp all -j 1       # fully serial baseline (for timing/profiles)
//	t3sim -exp fig16 -json    # machine-readable rows (times in picoseconds)
//	t3sim -list               # available experiments
//
// The serving experiments (serve-sweep, serve-tenants) accept workload
// overrides: -qps 4,8,12 replaces the offered-load ladder and -slo 250ms the
// p99 TTFT objective. Defaults reproduce the golden snapshots.
//
// Observability (see internal/metrics): -timeline out.json records every
// simulation's spans and instants as a Chrome trace-event file loadable at
// https://ui.perfetto.dev, and -metrics out.json dumps the final counter and
// gauge values. Both files are deterministic at any -j.
//
// Validation (see internal/check): -check attaches the simulation invariant
// checker to every run; any conservation/ordering/bound violation is reported
// on stderr and fails the process.
//
// Caching (see internal/store): -cache-dir layers a persistent
// content-addressed result store under the experiments, so a warm `-exp all`
// replays the whole catalogue byte-identically from disk in well under a
// second instead of re-simulating for tens of seconds:
//
//	t3sim -exp all -cache-dir ~/.cache/t3sim   # cold: populates the store
//	t3sim -exp all -cache-dir ~/.cache/t3sim   # warm: served from disk
//
// -cache-mode picks rw|ro|off access. The store is versioned by build
// identity + result schema, and corrupted/stale/concurrently-written entries
// degrade to a silent miss and recompute — caching never changes output.
// Runs that record observations are never served from cache (-timeline and
// -metrics make every simulation uncacheable; -check blocks the disk tier).
// -time prints the hit/miss accounting to stderr.
//
// Every simulation is deterministic and owns a private engine, so -j only
// changes scheduling, never results: `-exp all -j N` output is byte-identical
// to `-j 1`, and experiments always print in their fixed catalogue order.
// The same catalogue drives the repo's golden regression tests (TestGolden),
// so every experiment's output here is snapshot-pinned in testdata/golden/.
//
// Profiling the simulator itself on the paper experiments:
//
//	t3sim -exp all -j 1 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"t3sim"
)

// writeExport writes one metrics exporter's output to path; "" skips.
func writeExport(path string, write func(io.Writer) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseQPS parses the -qps flag: a comma-separated list of positive
// offered-load points (requests per second).
func parseQPS(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("QPS %g: must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// outcome is one experiment's fully rendered output, produced on a worker
// goroutine and printed by the main goroutine in catalogue order.
type outcome struct {
	out     []byte
	err     error
	elapsed time.Duration
}

// render produces the exact bytes the experiment writes to stdout.
func render(e t3sim.ExperimentCatalogueEntry, runner *t3sim.ExperimentRunner, asJSON bool) outcome {
	start := time.Now()
	res, err := e.Run(runner)
	if err != nil {
		return outcome{err: err, elapsed: time.Since(start)}
	}
	var buf bytes.Buffer
	if asJSON {
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"experiment": e.Name, "result": res}); err != nil {
			return outcome{err: err, elapsed: time.Since(start)}
		}
	} else {
		fmt.Fprintln(&buf, res.Render())
	}
	return outcome{out: buf.Bytes(), elapsed: time.Since(start)}
}

func main() {
	exp := flag.String("exp", "", "experiment to run (see -list); 'all' runs everything")
	list := flag.Bool("list", false, "list available experiments")
	timing := flag.Bool("time", false, "print wall-clock time per experiment")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON (times are picoseconds)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0),
		"max concurrent simulations; 1 = fully serial; output is identical at any -j")
	par := flag.Int("par", 0,
		"worker goroutines per explicit multi-device simulation (conservative parallel DES); "+
			"0 = sequential single-engine path; output is byte-identical at any -par")
	syncMode := flag.String("sync", "auto",
		"cluster synchronization for -par runs (auto|windowed|appointment); "+
			"auto picks from topology edge density; output is byte-identical in every mode")
	checkRuns := flag.Bool("check", false,
		"attach the simulation invariant checker to every run; violations fail the process")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	timeline := flag.String("timeline", "",
		"write a Perfetto-loadable trace-event timeline of the run to this JSON file")
	metricsOut := flag.String("metrics", "",
		"write every simulation's final counters and gauges to this JSON file")
	topo := flag.String("topo", "",
		"restrict the topo-sweep experiment to one interconnect graph "+
			"(ring|torus|switch|hier, 8 devices); empty sweeps all four")
	qps := flag.String("qps", "",
		"comma-separated offered-load ladder for the serving experiments "+
			"(requests/s); empty keeps the built-in sweep")
	slo := flag.Duration("slo", 0,
		"p99 TTFT service-level objective for the serving experiments "+
			"(e.g. 250ms); 0 keeps the built-in default")
	cacheDir := flag.String("cache-dir", "",
		"persistent result-store directory: warm runs serve identical simulations "+
			"from disk with byte-identical output; empty disables the store")
	cacheMode := flag.String("cache-mode", "rw",
		"result-store access for -cache-dir (rw|ro|off): ro never writes, off ignores the store")
	flag.Parse()

	catalogue := t3sim.ExperimentCatalogue()
	if *list || *exp == "" {
		names := make([]string, 0, len(catalogue))
		for _, e := range catalogue {
			names = append(names, fmt.Sprintf("  %-14s %s", e.Name, e.Desc))
		}
		sort.Strings(names)
		fmt.Println("usage: t3sim -exp <name>\n\nexperiments:")
		fmt.Println(strings.Join(names, "\n"))
		fmt.Println("  all            run every experiment")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "t3sim: -j %d: need at least one job\n", *jobs)
		os.Exit(2)
	}

	// One process-wide registry collects every experiment's instruments; each
	// simulation registers under its own scope, so the exported files are
	// deterministic at any -j. Nil stays the zero-cost uninstrumented path.
	var reg *t3sim.MetricsRegistry
	if *timeline != "" || *metricsOut != "" {
		reg = t3sim.NewMetricsRegistry()
		if *timeline != "" {
			reg.EnableTimeline()
		}
	}
	// One process-wide checker: every simulation in every experiment shares
	// it, and violations are reported together after the run. Nil stays the
	// zero-cost unchecked path.
	var checker *t3sim.Checker
	if *checkRuns {
		checker = t3sim.NewChecker()
	}

	// Registered before the CPU profile starts, so on exit (deferred LIFO)
	// the CPU profile is stopped and flushed first, then the heap profile is
	// written, then the process exits.
	exitCode := 0
	defer func() {
		if checker != nil {
			for _, v := range checker.Violations() {
				fmt.Fprintf(os.Stderr, "t3sim: -check: %s\n", v)
				exitCode = 1
			}
		}
		if reg != nil {
			if err := writeExport(*timeline, reg.WriteTrace); err != nil {
				fmt.Fprintf(os.Stderr, "t3sim: -timeline: %v\n", err)
				exitCode = 1
			}
			if err := writeExport(*metricsOut, reg.WriteMetrics); err != nil {
				fmt.Fprintf(os.Stderr, "t3sim: -metrics: %v\n", err)
				exitCode = 1
			}
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "t3sim: -memprofile: %v\n", err)
				os.Exit(1)
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "t3sim: -memprofile: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		os.Exit(exitCode)
	}()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "t3sim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "t3sim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	setup := t3sim.DefaultExperimentSetup()
	if *topo != "" {
		spec, err := t3sim.TopoSpecFor(*topo, 8, setup.Link)
		if err != nil {
			fmt.Fprintf(os.Stderr, "t3sim: -topo: %v\n", err)
			exitCode = 2
			return
		}
		setup.Topo = spec
	}
	if *qps != "" {
		ladder, err := parseQPS(*qps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "t3sim: -qps: %v\n", err)
			exitCode = 2
			return
		}
		setup.ServeQPS = ladder
	}
	if *slo < 0 {
		fmt.Fprintf(os.Stderr, "t3sim: -slo %v: must be non-negative\n", *slo)
		exitCode = 2
		return
	}
	setup.ServeSLO = t3sim.Time(slo.Nanoseconds()) * t3sim.Nanosecond
	if reg != nil {
		setup.Metrics = reg
	}
	setup.Check = checker
	setup.MultiDeviceWorkers = *par
	mode, err := t3sim.ParseSyncMode(*syncMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "t3sim: -sync: %v\n", err)
		exitCode = 2
		return
	}
	setup.SyncMode = mode
	// The persistent result store: a content-addressed second cache tier on
	// disk. A warm -cache-dir serves every identical simulation without
	// running it, with byte-identical output; -check runs bypass the disk
	// tier by design (they must witness real simulations).
	var memo *t3sim.ExperimentMemoCache
	if *cacheDir != "" {
		storeMode, off, err := t3sim.ParseResultStoreMode(*cacheMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "t3sim: -cache-mode: %v\n", err)
			exitCode = 2
			return
		}
		if !off {
			st, err := t3sim.OpenResultStore(*cacheDir, storeMode)
			if err != nil {
				fmt.Fprintf(os.Stderr, "t3sim: -cache-dir: %v\n", err)
				exitCode = 2
				return
			}
			memo = t3sim.NewExperimentMemoCache()
			memo.AttachStore(st)
			setup.Memo = memo
			defer func() {
				st.Flush()
				if reg != nil {
					memo.PublishMetrics(reg)
				}
				if *timing {
					h, m := memo.Stats()
					s := st.Stats()
					fmt.Fprintf(os.Stderr,
						"[cache: %d memo hits, %d misses; store %d hits, %d misses, %d puts, %d corrupt]\n",
						h, m, s.Hits, s.Misses, s.Puts, s.Corrupt)
				}
			}()
		}
	}
	runner := t3sim.NewExperimentRunner(setup, *jobs)
	emit := func(name string, o outcome) bool {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "t3sim: %s: %v\n", name, o.err)
			exitCode = 1
			return false
		}
		os.Stdout.Write(o.out)
		if *timing {
			fmt.Fprintf(os.Stderr, "[%s took %v]\n", name, o.elapsed.Round(time.Millisecond))
		}
		return true
	}

	if *exp == "all" {
		// Fan the catalogue out over -j workers but print strictly in
		// catalogue order: worker i delivers into slot i and the main
		// goroutine drains the slots sequentially, so the byte stream never
		// depends on scheduling. (Per-experiment wall-clocks under -time do
		// vary with -j; they measure concurrent execution.)
		slots := make([]chan outcome, len(catalogue))
		for i := range slots {
			slots[i] = make(chan outcome, 1)
		}
		idx := make(chan int)
		workers := *jobs
		if workers > len(catalogue) {
			workers = len(catalogue)
		}
		for w := 0; w < workers; w++ {
			go func() {
				for i := range idx {
					slots[i] <- render(catalogue[i], runner, *asJSON)
				}
			}()
		}
		go func() {
			for i := range catalogue {
				idx <- i
			}
			close(idx)
		}()
		for i, e := range catalogue {
			if !emit(e.Name, <-slots[i]) {
				return
			}
		}
		return
	}
	if e, ok := t3sim.ExperimentByName(*exp); ok {
		emit(e.Name, render(e, runner, *asJSON))
		return
	}
	fmt.Fprintf(os.Stderr, "t3sim: unknown experiment %q (use -list)\n", *exp)
	exitCode = 2
}
