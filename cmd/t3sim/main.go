// Command t3sim regenerates the paper's tables and figures from the
// simulator. Each experiment prints the same rows/series the paper reports:
//
//	t3sim -exp fig16          # sub-layer speedups (the headline result)
//	t3sim -exp fig18          # data-movement reductions
//	t3sim -exp all            # everything
//	t3sim -exp all -j 1       # fully serial baseline (for timing/profiles)
//	t3sim -exp fig16 -json    # machine-readable rows (times in picoseconds)
//	t3sim -list               # available experiments
//
// Observability (see internal/metrics): -timeline out.json records every
// simulation's spans and instants as a Chrome trace-event file loadable at
// https://ui.perfetto.dev, and -metrics out.json dumps the final counter and
// gauge values. Both files are deterministic at any -j.
//
// Every simulation is deterministic and owns a private engine, so -j only
// changes scheduling, never results: `-exp all -j N` output is byte-identical
// to `-j 1`, and experiments always print in their fixed catalogue order.
//
// Profiling the simulator itself on the paper experiments:
//
//	t3sim -exp all -j 1 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"t3sim"
)

// renderable is any experiment result that can print itself.
type renderable interface{ Render() string }

// textResult wraps plain-text results (the tables) so they fit the same
// interface and JSON shape.
type textResult struct {
	Text string
}

// Render implements renderable.
func (t textResult) Render() string { return t.Text }

// experiment is one runnable unit.
type experiment struct {
	name string
	desc string
	run  func(ctx *context) (renderable, error)
}

// context shares the memoizing evaluator across experiments in one process.
// With -j > 1 experiments run on separate goroutines; the evaluator itself
// is safe for concurrent use and deduplicates racing case evaluations.
type context struct {
	setup    t3sim.ExperimentSetup
	jobs     int
	evalOnce sync.Once
	ev       *t3sim.Evaluator
	evErr    error
}

func (c *context) evaluator() (*t3sim.Evaluator, error) {
	c.evalOnce.Do(func() {
		c.ev, c.evErr = t3sim.NewEvaluator(c.setup)
		if c.ev != nil {
			c.ev.Parallelism = c.jobs
		}
	})
	return c.ev, c.evErr
}

// text adapts a string-producing experiment.
func text(s string) (renderable, error) { return textResult{Text: s}, nil }

// writeExport writes one metrics exporter's output to path; "" skips.
func writeExport(path string, write func(io.Writer) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// wrap adapts a typed result + error to the renderable interface.
func wrap[T renderable](v T, err error) (renderable, error) {
	if err != nil {
		return nil, err
	}
	return v, nil
}

// withEval builds a runner that needs the shared evaluator.
func withEval[T renderable](f func(*t3sim.Evaluator) (T, error)) func(*context) (renderable, error) {
	return func(c *context) (renderable, error) {
		ev, err := c.evaluator()
		if err != nil {
			return nil, err
		}
		return wrap(f(ev))
	}
}

var experimentList = []experiment{
	{"table1", "simulation setup (Table 1)", func(c *context) (renderable, error) {
		return text(t3sim.Table1(c.setup))
	}},
	{"table2", "studied models (Table 2)", func(c *context) (renderable, error) {
		return text(t3sim.Table2())
	}},
	{"table3", "qualitative comparison (Table 3)", func(c *context) (renderable, error) {
		return text(t3sim.Table3())
	}},
	{"fig4", "iteration time breakdown (Figure 4)", func(c *context) (renderable, error) {
		return wrap(t3sim.Fig4(c.setup))
	}},
	{"fig6", "CU-sharing study (Figure 6)", withEval(t3sim.Fig6)},
	{"fig14", "reduce-scatter simulation validation (Figure 14)", func(c *context) (renderable, error) {
		return wrap(t3sim.Fig14(c.setup))
	}},
	{"fig15", "sub-layer runtime distribution (Figure 15)", withEval(t3sim.Fig15)},
	{"fig16", "sub-layer speedups (Figure 16)", withEval(t3sim.Fig16)},
	{"fig16-large", "large-model sub-layer speedups (§6.4)", withEval(t3sim.Fig16Large)},
	{"fig17", "DRAM traffic timelines (Figure 17)", func(c *context) (renderable, error) {
		return wrap(t3sim.Fig17(c.setup))
	}},
	{"fig18", "DRAM access breakdown (Figure 18)", withEval(t3sim.Fig18)},
	{"fig19", "end-to-end speedups (Figure 19)", withEval(t3sim.Fig19)},
	{"fig19-large", "large-model end-to-end speedups (§6.4)", withEval(t3sim.Fig19Large)},
	{"fig20", "future hardware with 2x compute (Figure 20)", withEval(t3sim.Fig20)},
	{"generation", "token-generation phase study (§7.3)", withEval(t3sim.Generation)},
	{"mirror", "mirror-methodology validation (§5.1.1)", func(c *context) (renderable, error) {
		return wrap(t3sim.MirrorValidation(c.setup))
	}},
	{"coarse-overlap", "coarse-grained DP contention study (§3.2.2/§7.2)", func(c *context) (renderable, error) {
		return wrap(t3sim.CoarseOverlap(c.setup))
	}},
	{"layer", "DES vs analytic full-layer cross-validation", func(c *context) (renderable, error) {
		return wrap(t3sim.LayerValidation(c.setup))
	}},
	{"ablation-arb", "MC arbitration policy sweep (§4.5)", withEval(t3sim.AblationArbitration)},
	{"ablation-nmc", "NMC op-and-store cost sweep (§7.4)", withEval(t3sim.AblationNMCCost)},
	{"ablation-dma", "DMA block granularity sweep (§4.2.2)", withEval(t3sim.AblationDMABlock)},
	{"ablation-link", "link bandwidth sweep (§7.8 multi-node regime)", withEval(t3sim.AblationLinkBandwidth)},
	{"ablation-dram", "DRAM timing model fidelity (flat vs bank-group)", withEval(t3sim.AblationDRAMModel)},
	{"ablation-pipeline", "producer stage schedule (read-then-compute vs double-buffered)", withEval(t3sim.AblationGEMMPipeline)},
}

// outcome is one experiment's fully rendered output, produced on a worker
// goroutine and printed by the main goroutine in catalogue order.
type outcome struct {
	out     []byte
	err     error
	elapsed time.Duration
}

// render produces the exact bytes the experiment writes to stdout.
func render(e experiment, ctx *context, asJSON bool) outcome {
	start := time.Now()
	res, err := e.run(ctx)
	if err != nil {
		return outcome{err: err, elapsed: time.Since(start)}
	}
	var buf bytes.Buffer
	if asJSON {
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"experiment": e.name, "result": res}); err != nil {
			return outcome{err: err, elapsed: time.Since(start)}
		}
	} else {
		fmt.Fprintln(&buf, res.Render())
	}
	return outcome{out: buf.Bytes(), elapsed: time.Since(start)}
}

func main() {
	exp := flag.String("exp", "", "experiment to run (see -list); 'all' runs everything")
	list := flag.Bool("list", false, "list available experiments")
	timing := flag.Bool("time", false, "print wall-clock time per experiment")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON (times are picoseconds)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0),
		"max concurrent simulations; 1 = fully serial; output is identical at any -j")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	timeline := flag.String("timeline", "",
		"write a Perfetto-loadable trace-event timeline of the run to this JSON file")
	metricsOut := flag.String("metrics", "",
		"write every simulation's final counters and gauges to this JSON file")
	flag.Parse()

	if *list || *exp == "" {
		names := make([]string, 0, len(experimentList))
		for _, e := range experimentList {
			names = append(names, fmt.Sprintf("  %-14s %s", e.name, e.desc))
		}
		sort.Strings(names)
		fmt.Println("usage: t3sim -exp <name>\n\nexperiments:")
		fmt.Println(strings.Join(names, "\n"))
		fmt.Println("  all            run every experiment")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "t3sim: -j %d: need at least one job\n", *jobs)
		os.Exit(2)
	}

	// One process-wide registry collects every experiment's instruments; each
	// simulation registers under its own scope, so the exported files are
	// deterministic at any -j. Nil stays the zero-cost uninstrumented path.
	var reg *t3sim.MetricsRegistry
	if *timeline != "" || *metricsOut != "" {
		reg = t3sim.NewMetricsRegistry()
		if *timeline != "" {
			reg.EnableTimeline()
		}
	}

	// Registered before the CPU profile starts, so on exit (deferred LIFO)
	// the CPU profile is stopped and flushed first, then the heap profile is
	// written, then the process exits.
	exitCode := 0
	defer func() {
		if reg != nil {
			if err := writeExport(*timeline, reg.WriteTrace); err != nil {
				fmt.Fprintf(os.Stderr, "t3sim: -timeline: %v\n", err)
				exitCode = 1
			}
			if err := writeExport(*metricsOut, reg.WriteMetrics); err != nil {
				fmt.Fprintf(os.Stderr, "t3sim: -metrics: %v\n", err)
				exitCode = 1
			}
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "t3sim: -memprofile: %v\n", err)
				os.Exit(1)
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "t3sim: -memprofile: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		os.Exit(exitCode)
	}()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "t3sim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "t3sim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	setup := t3sim.DefaultExperimentSetup()
	if reg != nil {
		setup.Metrics = reg
	}
	ctx := &context{setup: setup, jobs: *jobs}
	emit := func(name string, o outcome) bool {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "t3sim: %s: %v\n", name, o.err)
			exitCode = 1
			return false
		}
		os.Stdout.Write(o.out)
		if *timing {
			fmt.Fprintf(os.Stderr, "[%s took %v]\n", name, o.elapsed.Round(time.Millisecond))
		}
		return true
	}

	if *exp == "all" {
		// Fan the catalogue out over -j workers but print strictly in
		// catalogue order: worker i delivers into slot i and the main
		// goroutine drains the slots sequentially, so the byte stream never
		// depends on scheduling. (Per-experiment wall-clocks under -time do
		// vary with -j; they measure concurrent execution.)
		slots := make([]chan outcome, len(experimentList))
		for i := range slots {
			slots[i] = make(chan outcome, 1)
		}
		idx := make(chan int)
		workers := *jobs
		if workers > len(experimentList) {
			workers = len(experimentList)
		}
		for w := 0; w < workers; w++ {
			go func() {
				for i := range idx {
					slots[i] <- render(experimentList[i], ctx, *asJSON)
				}
			}()
		}
		go func() {
			for i := range experimentList {
				idx <- i
			}
			close(idx)
		}()
		for i, e := range experimentList {
			if !emit(e.name, <-slots[i]) {
				return
			}
		}
		return
	}
	for _, e := range experimentList {
		if e.name == *exp {
			emit(e.name, render(e, ctx, *asJSON))
			return
		}
	}
	fmt.Fprintf(os.Stderr, "t3sim: unknown experiment %q (use -list)\n", *exp)
	exitCode = 2
}
