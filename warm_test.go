package t3sim_test

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"t3sim"
)

// runCatalogueCached renders every catalogue experiment with a fresh
// MemoCache attached to a persistent store in dir, and returns the outputs in
// catalogue order plus the store's traffic counters. Unlike runCatalogue it
// attaches no invariant checker: the checker deliberately blocks the
// persistent tier (a -check run must really simulate), and this harness
// exists to exercise that tier.
func runCatalogueCached(t *testing.T, dir string, jobs, par int) ([][]byte, t3sim.ResultStoreStats) {
	t.Helper()
	st, err := t3sim.OpenResultStore(dir, t3sim.StoreReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	memo := t3sim.NewExperimentMemoCache()
	memo.AttachStore(st)
	setup := t3sim.DefaultExperimentSetup()
	setup.Memo = memo
	setup.MultiDeviceWorkers = par
	runner := t3sim.NewExperimentRunner(setup, jobs)
	catalogue := t3sim.ExperimentCatalogue()

	outs := make([][]byte, len(catalogue))
	errs := make([]error, len(catalogue))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i := range catalogue {
		wg.Add(1)
		go func(i int, e t3sim.ExperimentCatalogueEntry) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := e.Run(runner)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = []byte(res.Render() + "\n")
		}(i, catalogue[i])
	}
	wg.Wait()
	for i, e := range catalogue {
		if errs[i] != nil {
			t.Fatalf("%s: %v", e.Name, errs[i])
		}
	}
	st.Flush()
	return outs, st.Stats()
}

// TestGoldenWarmReplay pins the persistent result store end to end: a cold
// catalogue run (-j 8, -par 2) populates a fresh store directory, then a warm
// run through a second cache handle (-j 1, -par 4) — a stand-in for a later
// process — serves from disk and must render byte-identical output. Both runs
// are also held against the golden snapshots, so a cache that changed results
// consistently across both runs would still fail. The deliberately different
// jobs/par settings double as the determinism check: execution strategy never
// splits a cache key precisely because the bytes cannot depend on it.
func TestGoldenWarmReplay(t *testing.T) {
	if raceEnabled {
		// Two more full catalogue runs; the package and experiments tests
		// carry the -race burden.
		t.Skip("skipping warm-replay suite under -race")
	}
	if testing.Short() {
		t.Skip("skipping warm-replay suite in -short mode")
	}

	dir := t.TempDir()

	coldOuts, coldStats := runCatalogueCached(t, dir, 8, 2)
	if coldStats.Puts == 0 {
		t.Error("cold run persisted nothing")
	}
	if coldStats.PutErrors != 0 {
		t.Errorf("cold run hit %d put errors", coldStats.PutErrors)
	}

	warmOuts, warmStats := runCatalogueCached(t, dir, 1, 4)
	if warmStats.Hits == 0 {
		t.Error("warm run served nothing from disk")
	}
	if warmStats.Corrupt != 0 {
		t.Errorf("warm run found %d corrupt entries in a store it just wrote", warmStats.Corrupt)
	}
	t.Logf("cold: %d puts (%d bytes); warm: %d disk hits / %d misses (%d bytes)",
		coldStats.Puts, coldStats.BytesWritten, warmStats.Hits, warmStats.Misses, warmStats.BytesRead)

	for i, e := range t3sim.ExperimentCatalogue() {
		if !bytes.Equal(coldOuts[i], warmOuts[i]) {
			t.Errorf("%s: warm replay differs from the cold run", e.Name)
			continue
		}
		want, err := os.ReadFile(filepath.Join(goldenDir, goldenFile(e.Name)))
		if err != nil {
			t.Fatalf("%v (generate snapshots with `go test . -run TestGolden -update-golden`)", err)
		}
		if !bytes.Equal(coldOuts[i], want) {
			reportDiff(t, e.Name, coldOuts[i], want)
		}
	}
}
