package t3sim_test

// One benchmark per paper table/figure: each b.N iteration regenerates the
// full experiment from scratch, so ns/op is the cost of reproducing that
// result. Run them all with:
//
//	go test -bench=. -benchmem
//
// The headline reproduction numbers (speedups, reductions, errors) are
// reported as custom metrics next to the timing.

import (
	"sync"
	"testing"

	"t3sim"
)

// sharedEvaluator amortizes sub-layer simulations across benchmarks that, in
// the paper, share the same runs (Figures 15/16/18/19 all consume the same
// per-sub-layer evaluations).
var (
	evalOnce sync.Once
	evalErr  error
	shared   *t3sim.Evaluator
)

func sharedEval(b *testing.B) *t3sim.Evaluator {
	b.Helper()
	evalOnce.Do(func() {
		shared, evalErr = t3sim.NewEvaluator(t3sim.DefaultExperimentSetup())
	})
	if evalErr != nil {
		b.Fatal(evalErr)
	}
	return shared
}

func BenchmarkTable01Setup(b *testing.B) {
	setup := t3sim.DefaultExperimentSetup()
	for i := 0; i < b.N; i++ {
		if t3sim.Table1(setup) == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable02Models(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t3sim.Table2() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable03Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t3sim.Table3() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig04Breakdown(b *testing.B) {
	setup := t3sim.DefaultExperimentSetup()
	var maxComm float64
	for i := 0; i < b.N; i++ {
		res, err := t3sim.Fig4(setup)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.CommFrac() > maxComm {
				maxComm = row.CommFrac()
			}
		}
	}
	b.ReportMetric(100*maxComm, "max-comm-%")
}

func BenchmarkFig06CUSharing(b *testing.B) {
	ev := sharedEval(b)
	var ideal float64
	for i := 0; i < b.N; i++ {
		res, err := t3sim.Fig6(ev)
		if err != nil {
			b.Fatal(err)
		}
		ideal = res.GeomeanSpeedup["ideal"]
	}
	b.ReportMetric(ideal, "ideal-geomean-x")
}

func BenchmarkFig14Validation(b *testing.B) {
	setup := t3sim.DefaultExperimentSetup()
	var gerr float64
	for i := 0; i < b.N; i++ {
		res, err := t3sim.Fig14(setup)
		if err != nil {
			b.Fatal(err)
		}
		gerr = res.GeomeanErr
	}
	b.ReportMetric(100*gerr, "geomean-err-%")
}

func BenchmarkFig15Distribution(b *testing.B) {
	ev := sharedEval(b)
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.Fig15(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16Speedups(b *testing.B) {
	ev := sharedEval(b)
	var geo, max float64
	for i := 0; i < b.N; i++ {
		res, err := t3sim.Fig16(ev)
		if err != nil {
			b.Fatal(err)
		}
		geo, max = res.GeomeanMCA, res.MaxMCA
	}
	b.ReportMetric(geo, "t3mca-geomean-x")
	b.ReportMetric(max, "t3mca-max-x")
}

func BenchmarkFig16LargeModels(b *testing.B) {
	ev := sharedEval(b)
	var geo float64
	for i := 0; i < b.N; i++ {
		res, err := t3sim.Fig16Large(ev)
		if err != nil {
			b.Fatal(err)
		}
		geo = res.GeomeanMCA
	}
	b.ReportMetric(geo, "t3mca-geomean-x")
}

func BenchmarkFig17Traffic(b *testing.B) {
	setup := t3sim.DefaultExperimentSetup()
	for i := 0; i < b.N; i++ {
		res, err := t3sim.Fig17(setup)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.T3) == 0 {
			b.Fatal("empty timeline")
		}
	}
}

func BenchmarkFig18DataMovement(b *testing.B) {
	ev := sharedEval(b)
	var red float64
	for i := 0; i < b.N; i++ {
		res, err := t3sim.Fig18(ev)
		if err != nil {
			b.Fatal(err)
		}
		red = res.GeomeanReduction
	}
	b.ReportMetric(100*red, "reduction-geomean-%")
}

func BenchmarkFig19EndToEnd(b *testing.B) {
	ev := sharedEval(b)
	var train, infer float64
	for i := 0; i < b.N; i++ {
		res, err := t3sim.Fig19(ev)
		if err != nil {
			b.Fatal(err)
		}
		train, infer = res.MaxTrainMCA, res.MaxInferMCA
	}
	b.ReportMetric(train, "train-max-x")
	b.ReportMetric(infer, "prompt-max-x")
}

func BenchmarkFig20FutureHW(b *testing.B) {
	ev := sharedEval(b)
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.Fig20(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerationPhase(b *testing.B) {
	ev := sharedEval(b)
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.Generation(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMirrorValidation(b *testing.B) {
	setup := t3sim.DefaultExperimentSetup()
	var gerr float64
	for i := 0; i < b.N; i++ {
		res, err := t3sim.MirrorValidation(setup)
		if err != nil {
			b.Fatal(err)
		}
		gerr = res.GeomeanErr
	}
	b.ReportMetric(100*gerr, "geomean-err-%")
}

func BenchmarkCoarseOverlap(b *testing.B) {
	setup := t3sim.DefaultExperimentSetup()
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.CoarseOverlap(setup); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks: the design-choice sweeps DESIGN.md calls out.

func BenchmarkAblationArbitration(b *testing.B) {
	ev := sharedEval(b)
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.AblationArbitration(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNMCCost(b *testing.B) {
	ev := sharedEval(b)
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.AblationNMCCost(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDMABlock(b *testing.B) {
	ev := sharedEval(b)
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.AblationDMABlock(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLinkBandwidth(b *testing.B) {
	ev := sharedEval(b)
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.AblationLinkBandwidth(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDRAMModel(b *testing.B) {
	ev := sharedEval(b)
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.AblationDRAMModel(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGEMMPipeline(b *testing.B) {
	ev := sharedEval(b)
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.AblationGEMMPipeline(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLayerValidation(b *testing.B) {
	setup := t3sim.DefaultExperimentSetup()
	var gerr float64
	for i := 0; i < b.N; i++ {
		res, err := t3sim.LayerValidation(setup)
		if err != nil {
			b.Fatal(err)
		}
		gerr = res.TotalRelError
	}
	b.ReportMetric(100*gerr, "layer-err-%")
}

// Micro-benchmarks of the core mechanisms, for profiling the simulator
// itself rather than regenerating figures.

func BenchmarkFusedGEMMRSRun(b *testing.B) {
	grid, err := t3sim.NewGrid(
		t3sim.GEMMShape{M: 4096, N: 4096, K: 1024, ElemBytes: 2}, t3sim.DefaultTiling())
	if err != nil {
		b.Fatal(err)
	}
	opts := t3sim.FusedOptions{
		GPU:         t3sim.DefaultGPUConfig(),
		Memory:      t3sim.DefaultMemoryConfig(),
		Link:        t3sim.DefaultLinkConfig(),
		Tracker:     t3sim.TrackerConfig{Sets: 256, Ways: 64, MaxWFsPerWG: 8},
		Devices:     8,
		Grid:        grid,
		Collective:  t3sim.RingReduceScatterCollective,
		Arbitration: t3sim.ArbMCA,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.RunFusedGEMMRS(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// multiDeviceOpts is the 8-device explicit-simulation shape the scaling
// benchmarks share: big enough that the per-window coordination cost is
// amortized over real event work.
func multiDeviceOpts(b *testing.B, workers int) t3sim.FusedOptions {
	b.Helper()
	grid, err := t3sim.NewGrid(
		t3sim.GEMMShape{M: 4096, N: 4096, K: 1024, ElemBytes: 2}, t3sim.DefaultTiling())
	if err != nil {
		b.Fatal(err)
	}
	return t3sim.FusedOptions{
		GPU:         t3sim.DefaultGPUConfig(),
		Memory:      t3sim.DefaultMemoryConfig(),
		Link:        t3sim.DefaultLinkConfig(),
		Tracker:     t3sim.TrackerConfig{Sets: 256, Ways: 64, MaxWFsPerWG: 8},
		Devices:     8,
		Grid:        grid,
		Collective:  t3sim.RingReduceScatterCollective,
		Arbitration: t3sim.ArbRoundRobin,
		ParWorkers:  workers,
	}
}

// runMultiDeviceBench is the body shared by the scaling benchmarks: one full
// explicit 8-device simulation per iteration. Output is byte-identical at
// every worker count (pinned by TestMultiDeviceParallelMatchesSequential);
// only wall-clock changes, which is exactly what ns/op reports.
func runMultiDeviceBench(b *testing.B, workers int) {
	opts := multiDeviceOpts(b, workers)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.RunFusedGEMMRSMultiDevice(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiDeviceSequential(b *testing.B) { runMultiDeviceBench(b, 0) }
func BenchmarkMultiDeviceWorkers2(b *testing.B)   { runMultiDeviceBench(b, 2) }
func BenchmarkMultiDeviceWorkers4(b *testing.B)   { runMultiDeviceBench(b, 4) }
func BenchmarkMultiDeviceWorkers8(b *testing.B)   { runMultiDeviceBench(b, 8) }

// multiDevice64Opts is the 64-device Fig-20-regime shape: the scale run
// dynamic per-device lookahead makes routine. Smaller per-device GEMM than
// the 8-device family — the point here is coordination cost across many
// engines, not raw event throughput.
func multiDevice64Opts(b *testing.B, workers int) t3sim.FusedOptions {
	b.Helper()
	grid, err := t3sim.NewGrid(
		t3sim.GEMMShape{M: 2048, N: 2048, K: 512, ElemBytes: 2}, t3sim.DefaultTiling())
	if err != nil {
		b.Fatal(err)
	}
	return t3sim.FusedOptions{
		GPU:         t3sim.DefaultGPUConfig(),
		Memory:      t3sim.DefaultMemoryConfig(),
		Link:        t3sim.DefaultLinkConfig(),
		Tracker:     t3sim.TrackerConfig{Sets: 256, Ways: 64, MaxWFsPerWG: 8},
		Devices:     64,
		Grid:        grid,
		Collective:  t3sim.RingReduceScatterCollective,
		Arbitration: t3sim.ArbRoundRobin,
		ParWorkers:  workers,
	}
}

// runMultiDevice64Bench runs one full explicit 64-device simulation per
// iteration and reports the scheduler's windowing statistics as custom
// metrics: windows/op (coordinator rounds) and window-ps/op (average
// simulated picoseconds one engine advances per window) — the
// lookahead-quality numbers scripts/bench.sh records in BENCH_6.json.
// Skipped under -short so `go test -short ./...` stays fast.
func runMultiDevice64Bench(b *testing.B, workers int) {
	if testing.Short() {
		b.Skip("64-device scaling benchmarks are long; run without -short")
	}
	opts := multiDevice64Opts(b, workers)
	var st t3sim.ClusterStats
	opts.ClusterStats = &st
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.RunFusedGEMMRSMultiDevice(opts); err != nil {
			b.Fatal(err)
		}
	}
	if workers > 0 && st.Windows > 0 {
		b.ReportMetric(float64(st.Windows), "windows/op")
		b.ReportMetric(float64(st.AvgWindowWidth()), "window-ps/op")
	}
}

func BenchmarkMultiDevice64Sequential(b *testing.B) { runMultiDevice64Bench(b, 0) }
func BenchmarkMultiDevice64Workers2(b *testing.B)   { runMultiDevice64Bench(b, 2) }
func BenchmarkMultiDevice64Workers4(b *testing.B)   { runMultiDevice64Bench(b, 4) }
func BenchmarkMultiDevice64Workers8(b *testing.B)   { runMultiDevice64Bench(b, 8) }

// runMultiDeviceTopoBench is the sync-mode × topology scaling family: one
// explicit run per iteration, routed over the named graph at the given
// device count, with the cluster coordinator forced into a specific
// synchronization mode. Reports windows/op, window-ps/op and nullmsgs/op
// (promise refreshes — the appointment coordinator's traffic), the numbers
// scripts/bench.sh records in BENCH_8.json. Results are byte-identical to
// the sequential path in every mode; only coordination cost differs.
func runMultiDeviceTopoBench(b *testing.B, topo string, devices, workers int, mode t3sim.ClusterSyncMode) {
	if testing.Short() {
		b.Skip("topology scaling benchmarks are long; run without -short")
	}
	grid, err := t3sim.NewGrid(
		t3sim.GEMMShape{M: 2048, N: 2048, K: 512, ElemBytes: 2}, t3sim.DefaultTiling())
	if err != nil {
		b.Fatal(err)
	}
	link := t3sim.DefaultLinkConfig()
	spec, err := t3sim.TopoSpecFor(topo, devices, link)
	if err != nil {
		b.Fatal(err)
	}
	opts := t3sim.FusedOptions{
		GPU:         t3sim.DefaultGPUConfig(),
		Memory:      t3sim.DefaultMemoryConfig(),
		Link:        spec.Link,
		Topo:        spec,
		Tracker:     t3sim.TrackerConfig{Sets: 256, Ways: 64, MaxWFsPerWG: 8},
		Devices:     devices,
		Grid:        grid,
		Collective:  t3sim.RingReduceScatterCollective,
		Arbitration: t3sim.ArbRoundRobin,
		ParWorkers:  workers,
		SyncMode:    mode,
	}
	var st t3sim.ClusterStats
	opts.ClusterStats = &st
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.RunFusedGEMMRSMultiDevice(opts); err != nil {
			b.Fatal(err)
		}
	}
	if workers > 0 && st.Windows > 0 {
		b.ReportMetric(float64(st.Windows), "windows/op")
		b.ReportMetric(float64(st.AvgWindowWidth()), "window-ps/op")
		b.ReportMetric(float64(st.NullMessages), "nullmsgs/op")
	}
}

func BenchmarkMultiDevice64TorusWindowed4(b *testing.B) {
	runMultiDeviceTopoBench(b, "torus", 64, 4, t3sim.SyncWindowed)
}
func BenchmarkMultiDevice64TorusAppointment4(b *testing.B) {
	runMultiDeviceTopoBench(b, "torus", 64, 4, t3sim.SyncAppointment)
}
func BenchmarkMultiDevice64HierWindowed4(b *testing.B) {
	runMultiDeviceTopoBench(b, "hier", 64, 4, t3sim.SyncWindowed)
}
func BenchmarkMultiDevice64HierAppointment4(b *testing.B) {
	runMultiDeviceTopoBench(b, "hier", 64, 4, t3sim.SyncAppointment)
}

func BenchmarkMultiDevice256RingWindowed4(b *testing.B) {
	runMultiDeviceTopoBench(b, "ring", 256, 4, t3sim.SyncWindowed)
}
func BenchmarkMultiDevice256RingAppointment4(b *testing.B) {
	runMultiDeviceTopoBench(b, "ring", 256, 4, t3sim.SyncAppointment)
}
func BenchmarkMultiDevice256TorusWindowed4(b *testing.B) {
	runMultiDeviceTopoBench(b, "torus", 256, 4, t3sim.SyncWindowed)
}
func BenchmarkMultiDevice256TorusAppointment4(b *testing.B) {
	runMultiDeviceTopoBench(b, "torus", 256, 4, t3sim.SyncAppointment)
}
func BenchmarkMultiDevice256HierWindowed4(b *testing.B) {
	runMultiDeviceTopoBench(b, "hier", 256, 4, t3sim.SyncWindowed)
}
func BenchmarkMultiDevice256HierAppointment4(b *testing.B) {
	runMultiDeviceTopoBench(b, "hier", 256, 4, t3sim.SyncAppointment)
}
func BenchmarkMultiDevice256Sequential(b *testing.B) {
	runMultiDeviceTopoBench(b, "ring", 256, 0, t3sim.SyncAuto)
}

func BenchmarkFunctionalFusedRS(b *testing.B) {
	data := make([][]float32, 8)
	for d := range data {
		arr := make([]float32, 64*1024)
		for i := range arr {
			arr[i] = float32(d + i)
		}
		data[d] = arr
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := t3sim.RunFunctionalFusedReduceScatter(data, 256, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingAllReduceFunctional(b *testing.B) {
	base := make([][]float32, 8)
	for d := range base {
		arr := make([]float32, 64*1024)
		for i := range arr {
			arr[i] = float32(d*31 + i)
		}
		base[d] = arr
	}
	b.ReportAllocs()
	b.SetBytes(int64(8 * 64 * 1024 * 4))
	for i := 0; i < b.N; i++ {
		data := make([][]float32, len(base))
		for d := range base {
			c := make([]float32, len(base[d]))
			copy(c, base[d])
			data[d] = c
		}
		if err := t3sim.RingAllReduce(data); err != nil {
			b.Fatal(err)
		}
	}
}
