package gpu

import (
	"testing"
	"testing/quick"

	"t3sim/internal/gemm"
	"t3sim/internal/memory"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// TestPropertyStageOutputConservation: for arbitrary shapes, the per-stage
// output shares always sum to exactly the GEMM's output size.
func TestPropertyStageOutputConservation(t *testing.T) {
	f := func(mRaw, nRaw, kRaw uint8) bool {
		s := gemm.Shape{
			M:         int(mRaw)%2000 + 1,
			N:         int(nRaw)%2000 + 1,
			K:         int(kRaw)%512 + 1,
			ElemBytes: 2,
		}
		g, err := gemm.NewGrid(s, gemm.DefaultTiling())
		if err != nil {
			return false
		}
		eng := sim.NewEngine()
		mc, err := memory.NewController(eng, memory.DefaultConfig(), memory.ComputeFirst{})
		if err != nil {
			return false
		}
		k := &GEMMKernel{Eng: eng, Mem: mc, GPU: DefaultConfig(), Grid: g}
		if err := k.Start(nil); err != nil {
			return false
		}
		eng.Run()
		var sum units.Bytes
		for i := range k.Stages() {
			sum += k.StageOutputBytes(i)
		}
		return sum == s.OutputBytes() &&
			mc.Counters().KindBytes(memory.Write) == s.OutputBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyReadsNeverBelowCompulsory: DRAM read traffic is at least the
// operand footprint (compulsory misses) and at most the zero-reuse stream.
func TestPropertyReadsNeverBelowCompulsory(t *testing.T) {
	f := func(mRaw, nRaw, kRaw uint8, bypass bool) bool {
		s := gemm.Shape{
			M:         (int(mRaw)%32 + 1) * 128,
			N:         (int(nRaw)%32 + 1) * 128,
			K:         (int(kRaw)%16 + 1) * 128,
			ElemBytes: 2,
		}
		g, err := gemm.NewGrid(s, gemm.DefaultTiling())
		if err != nil {
			return false
		}
		rm := ReadModel{Grid: g, LLC: 16 * units.MiB, OutputBypassesLLC: bypass}
		stages := g.Stages(160)
		total := rm.TotalReads(stages)
		if total < s.InputBytes() {
			return false
		}
		// Upper bound: A once plus B re-read every stage.
		upper := s.ABytes() + s.BBytes()*units.Bytes(len(stages))
		return total <= upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBypassNeverIncreasesReads: removing output pollution can only
// help input caching.
func TestPropertyBypassNeverIncreasesReads(t *testing.T) {
	f := func(mRaw, nRaw, kRaw uint8) bool {
		s := gemm.Shape{
			M:         (int(mRaw)%32 + 1) * 128,
			N:         (int(nRaw)%32 + 1) * 128,
			K:         (int(kRaw)%16 + 1) * 128,
			ElemBytes: 2,
		}
		g, err := gemm.NewGrid(s, gemm.DefaultTiling())
		if err != nil {
			return false
		}
		stages := g.Stages(160)
		base := ReadModel{Grid: g, LLC: 16 * units.MiB}.TotalReads(stages)
		byp := ReadModel{Grid: g, LLC: 16 * units.MiB, OutputBypassesLLC: true}.TotalReads(stages)
		return byp <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMoreCUsNeverSlower: GEMM duration is non-increasing in the CU
// allocation.
func TestPropertyMoreCUsNeverSlower(t *testing.T) {
	g, err := gemm.NewGrid(gemm.Shape{M: 2048, N: 2048, K: 512, ElemBytes: 2}, gemm.DefaultTiling())
	if err != nil {
		t.Fatal(err)
	}
	run := func(cus int) units.Time {
		eng := sim.NewEngine()
		mc, err := memory.NewController(eng, memory.DefaultConfig(), memory.ComputeFirst{})
		if err != nil {
			t.Fatal(err)
		}
		k := &GEMMKernel{Eng: eng, Mem: mc, GPU: DefaultConfig(), Grid: g, CUs: cus}
		if err := k.Start(nil); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return k.Finished()
	}
	prev := run(8)
	for _, cus := range []int{16, 32, 64, 80} {
		cur := run(cus)
		if cur > prev {
			t.Errorf("%d CUs slower (%v) than fewer CUs (%v)", cus, cur, prev)
		}
		prev = cur
	}
}
