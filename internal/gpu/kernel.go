package gpu

import (
	"fmt"

	"t3sim/internal/gemm"
	"t3sim/internal/memory"
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// WriteStageFunc is a GEMM kernel's output sink: it must move the stage's
// output bytes somewhere (local stores, NMC updates, remote writes over the
// ring, ...) and call onDone when the stage's output is fully accepted. T3's
// fused datapath installs its own sink; the default writes plain local
// stores on the compute stream.
type WriteStageFunc func(stage, wgs int, bytes units.Bytes, onDone sim.Handler)

// GEMMKernel executes one tiled GEMM on the simulator as a sequence of
// stages (waves of workgroups): per stage a read phase fetches the operand
// panels DRAM must supply, a compute phase runs at the launch's MAC
// efficiency, and a bursty write phase emits the stage's output tiles. Stage
// s+1's reads begin as soon as stage s's compute finishes, overlapping
// stage s's writes — the Figure 17(a) traffic shape.
type GEMMKernel struct {
	Eng  *sim.Engine
	Mem  *memory.Controller
	GPU  Config
	Grid gemm.Grid
	// CUs is the compute-unit allocation for this kernel; 0 means all.
	CUs int
	// OutputBypassesLLC marks uncached-output runs (T3/NMC, §4.3): writes
	// stop polluting the LLC, improving input caching.
	OutputBypassesLLC bool
	// Monitor runs the memory controller's MCA intensity window during
	// stage 0, the kernel's isolated execution (§4.5).
	Monitor bool
	// WriteStage overrides the output sink (nil = local plain stores).
	WriteStage WriteStageFunc
	// OnStageComputed, if set, is called when each stage's compute ends,
	// before its writes are issued.
	OnStageComputed func(stage, wgs int)
	// DoubleBuffered prefetches the next stage's operands while the current
	// stage computes (software pipelining): stage s+1's reads issue as soon
	// as stage s's reads complete, so a stage costs max(reads, compute)
	// instead of reads+compute. Real BLAS kernels double-buffer; the default
	// (off) is the conservative read-then-compute pipeline whose traffic
	// shape matches Figure 17(a).
	DoubleBuffered bool
	// Metrics, if non-nil, receives a "gpu" timeline track with one span per
	// stage read and compute phase plus operand/launch counters. Nil costs
	// nothing.
	Metrics metrics.Sink

	stages     []int
	stageReads []units.Bytes
	started    bool
	computeEnd units.Time
	finished   units.Time
	doneFence  *sim.Fence

	mtrack     *metrics.Track
	mReadBytes *metrics.Counter
	mWGs       *metrics.Counter
	mStages    *metrics.Gauge
}

// Validate reports whether the kernel is runnable.
func (k *GEMMKernel) Validate() error {
	if k.Eng == nil || k.Mem == nil {
		return fmt.Errorf("gpu: kernel missing engine or memory controller")
	}
	if err := k.GPU.Validate(); err != nil {
		return err
	}
	if err := k.Grid.Shape.Validate(); err != nil {
		return err
	}
	if err := k.Grid.Tiling.Validate(); err != nil {
		return err
	}
	if k.CUs < 0 || k.CUs > k.GPU.CUs {
		return fmt.Errorf("gpu: CUs = %d outside 0..%d", k.CUs, k.GPU.CUs)
	}
	return nil
}

// cus returns the effective CU allocation.
func (k *GEMMKernel) cus() int {
	if k.CUs == 0 {
		return k.GPU.CUs
	}
	return k.CUs
}

// Stages returns the per-stage WG counts (available after Start).
func (k *GEMMKernel) Stages() []int { return k.stages }

// StageReads returns the per-stage DRAM read bytes (available after Start).
func (k *GEMMKernel) StageReads() []units.Bytes { return k.stageReads }

// ComputeEnd returns when the last stage's compute finished (valid after the
// run completes).
func (k *GEMMKernel) ComputeEnd() units.Time { return k.computeEnd }

// Finished returns the kernel completion time (valid after the run
// completes).
func (k *GEMMKernel) Finished() units.Time { return k.finished }

// StageOutputBytes returns the output bytes stage s is responsible for.
// Stages share the exact output size proportionally to their WG counts, so
// the per-run total always equals Grid.Shape.OutputBytes().
func (k *GEMMKernel) StageOutputBytes(s int) units.Bytes {
	return proportionalShare(k.Grid.Shape.OutputBytes(), k.stages, s)
}

// Start schedules the kernel; onDone runs when every stage's output has been
// accepted by the output sink.
func (k *GEMMKernel) Start(onDone sim.Handler) error {
	if err := k.Validate(); err != nil {
		return err
	}
	if k.started {
		return fmt.Errorf("gpu: kernel already started")
	}
	k.started = true
	k.stages = k.Grid.Stages(k.GPU.StageWGs(k.cus()))
	rm := ReadModel{Grid: k.Grid, LLC: k.GPU.LLCBytes, OutputBypassesLLC: k.OutputBypassesLLC}
	k.stageReads = rm.StageReads(k.stages)
	if m := k.Metrics; m != nil {
		k.mtrack = m.Track("gpu")
		k.mReadBytes = m.Counter("gpu.operand_read_bytes")
		k.mWGs = m.Counter("gpu.wgs_launched")
		k.mStages = m.Gauge("gpu.stages")
		k.mStages.Set(int64(len(k.stages)))
	}

	k.doneFence = sim.NewFence(len(k.stages), func() {
		k.finished = k.Eng.Now()
		if onDone != nil {
			onDone()
		}
	})
	if k.DoubleBuffered {
		k.runPipelined()
	} else {
		k.runStage(0)
	}
	return nil
}

// runPipelined executes the double-buffered schedule. Stage s's compute
// waits on a two-input fence — its own operand reads and the previous
// stage's compute (the CUs free up) — and each stage's completed reads
// immediately prefetch the next stage's operands.
func (k *GEMMKernel) runPipelined() {
	n := len(k.stages)
	eff := gemm.Efficiency(k.Grid)
	// computeStart[s] fires when stage s may begin its MACs: 1 input for
	// stage 0 (just its reads), 2 for the rest (+ previous compute).
	computeStart := make([]*sim.Fence, n)
	for s := n - 1; s >= 0; s-- {
		s := s
		inputs := 2
		if s == 0 {
			inputs = 1
		}
		computeStart[s] = sim.NewFence(inputs, func() {
			compute := k.GPU.ComputeTime(k.Grid.WGFLOPs()*int64(k.stages[s]), k.cus(), eff)
			start := k.Eng.Now()
			k.Eng.After(compute, func() {
				k.computeEnd = k.Eng.Now()
				wgs := k.stages[s]
				k.noteStage(s, wgs, start)
				if k.OnStageComputed != nil {
					k.OnStageComputed(s, wgs)
				}
				if s == 0 && k.Monitor {
					k.Mem.EndMonitor()
				}
				k.writeStage(s, wgs)
				if s+1 < n {
					computeStart[s+1].Done() // the CUs are free
				}
			})
		})
	}
	// Read chain: stage s+1's prefetch issues when stage s's reads land.
	var issue func(s int)
	issue = func(s int) {
		k.issueReads(s, func() {
			computeStart[s].Done()
			if s+1 < n {
				issue(s + 1)
			}
		})
	}
	if k.Monitor {
		k.Mem.BeginMonitor()
	}
	issue(0)
}

func (k *GEMMKernel) runStage(s int) {
	wgs := k.stages[s]
	if s == 0 && k.Monitor {
		k.Mem.BeginMonitor()
	}
	k.issueReads(s, func() {
		eff := gemm.Efficiency(k.Grid)
		flops := k.Grid.WGFLOPs() * int64(wgs)
		compute := k.GPU.ComputeTime(flops, k.cus(), eff)
		start := k.Eng.Now()
		k.Eng.After(compute, func() {
			k.computeEnd = k.Eng.Now()
			k.noteStage(s, wgs, start)
			if k.OnStageComputed != nil {
				k.OnStageComputed(s, wgs)
			}
			if s == 0 && k.Monitor {
				k.Mem.EndMonitor()
			}
			k.writeStage(s, wgs)
			if s+1 < len(k.stages) {
				k.runStage(s + 1)
			}
		})
	})
}

// noteStage records one stage's compute span and WG-wave counters (no-op
// without a metrics sink).
func (k *GEMMKernel) noteStage(s, wgs int, start units.Time) {
	if k.mtrack != nil {
		k.mtrack.Span(fmt.Sprintf("stage%d.compute", s), start, k.Eng.Now())
	}
	k.mWGs.Add(int64(wgs))
}

// issueReads fetches the stage's DRAM-visible operand bytes on the compute
// stream; LLC hits cost nothing.
func (k *GEMMKernel) issueReads(s int, onDone sim.Handler) {
	bytes := k.stageReads[s]
	if bytes <= 0 {
		onDone()
		return
	}
	k.mReadBytes.Add(int64(bytes))
	if k.mtrack != nil {
		start := k.Eng.Now()
		name := fmt.Sprintf("stage%d.read", s)
		inner := onDone
		onDone = func() {
			k.mtrack.Span(name, start, k.Eng.Now())
			inner()
		}
	}
	// A kernel confined to few CUs also sustains less read throughput; model
	// this as issuing the stage's reads no faster than the CU-side rate.
	cuRate := units.Bandwidth(float64(k.GPU.PerCUMemBandwidth) * float64(k.cus()))
	floor := cuRate.TransferTime(bytes)
	fence := sim.NewFence(2, onDone)
	k.Eng.After(floor, fence.Done)
	k.Mem.Transfer(memory.Read, memory.StreamCompute, bytes, memory.Tag{}, fence.Done)
}

func (k *GEMMKernel) writeStage(s, wgs int) {
	bytes := k.StageOutputBytes(s)
	if k.WriteStage != nil {
		k.WriteStage(s, wgs, bytes, k.doneFence.Done)
		return
	}
	k.Mem.Transfer(memory.Write, memory.StreamCompute, bytes, memory.Tag{}, k.doneFence.Done)
}

// proportionalShare splits total across weighted parts with the remainder
// folded into the final part, so shares always sum to total.
func proportionalShare(total units.Bytes, weights []int, i int) units.Bytes {
	sum := 0
	for _, w := range weights {
		sum += w
	}
	if sum == 0 {
		return 0
	}
	if i < len(weights)-1 {
		return units.Bytes(int64(total) * int64(weights[i]) / int64(sum))
	}
	var prior units.Bytes
	for j := 0; j < len(weights)-1; j++ {
		prior += units.Bytes(int64(total) * int64(weights[j]) / int64(sum))
	}
	return total - prior
}
