package gpu

import (
	"math"
	"testing"

	"t3sim/internal/gemm"
	"t3sim/internal/memory"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

func grid(t *testing.T, m, n, k int) gemm.Grid {
	t.Helper()
	g, err := gemm.NewGrid(gemm.Shape{M: m, N: n, K: k, ElemBytes: 2}, gemm.DefaultTiling())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newKernel(t *testing.T, g gemm.Grid) (*sim.Engine, *GEMMKernel) {
	t.Helper()
	eng := sim.NewEngine()
	mc, err := memory.NewController(eng, memory.DefaultConfig(), memory.ComputeFirst{})
	if err != nil {
		t.Fatal(err)
	}
	return eng, &GEMMKernel{Eng: eng, Mem: mc, GPU: DefaultConfig(), Grid: g}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.CUs = 0 },
		func(c *Config) { c.Clock = 0 },
		func(c *Config) { c.FlopsPerCUPerCycle = 0 },
		func(c *Config) { c.MaxWGsPerCU = 0 },
		func(c *Config) { c.LLCBytes = 0 },
		func(c *Config) { c.PerCUMemBandwidth = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPeakFlops(t *testing.T) {
	c := DefaultConfig()
	want := 80.0 * 1024 * 1.4e9 // 114.7 TFLOPs
	if got := c.PeakFlops(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("PeakFlops = %g, want %g", got, want)
	}
}

func TestStageWGs(t *testing.T) {
	c := DefaultConfig()
	if got := c.StageWGs(80); got != 160 {
		t.Errorf("StageWGs(80) = %d, want 160", got)
	}
	if got := c.StageWGs(8); got != 16 {
		t.Errorf("StageWGs(8) = %d, want 16", got)
	}
}

func TestComputeTime(t *testing.T) {
	c := DefaultConfig()
	// 114.7 TFLOP at efficiency 1 on all CUs takes one second.
	flops := int64(c.PeakFlops())
	got := c.ComputeTime(flops, c.CUs, 1.0)
	if rel := math.Abs(float64(got-units.Second)) / float64(units.Second); rel > 1e-6 {
		t.Errorf("ComputeTime = %v, want ~1s", got)
	}
	// Half the CUs doubles the time.
	if got2 := c.ComputeTime(flops, c.CUs/2, 1.0); got2 < 2*got-units.Microsecond {
		t.Errorf("half CUs gave %v, want ~2x %v", got2, got)
	}
}

func TestReadModelColdFirstStage(t *testing.T) {
	g := grid(t, 1024, 1024, 512)
	m := ReadModel{Grid: g, LLC: 16 * units.MiB}
	stages := g.Stages(160)
	reads := m.StageReads(stages)
	if len(reads) != len(stages) {
		t.Fatalf("len = %d, want %d", len(reads), len(stages))
	}
	// First stage reads its A share plus all of B cold.
	wantB := g.Shape.BBytes()
	stageA := units.Bytes(int64(g.Shape.ABytes()) * int64(stages[0]) / int64(g.NumWGs))
	if reads[0] != stageA+wantB {
		t.Errorf("stage 0 reads = %v, want %v", reads[0], stageA+wantB)
	}
}

func TestReadModelLLCResidentGEMMReadsOnceTotal(t *testing.T) {
	// An OP-like GEMM whose inputs fit in the LLC streams each operand once.
	g := grid(t, 8192, 3072, 256) // A 4MiB, B 1.5MiB
	m := ReadModel{Grid: g, LLC: 16 * units.MiB}
	total := m.TotalReads(g.Stages(160))
	want := g.Shape.InputBytes()
	if total != want {
		t.Errorf("total reads = %v, want %v (inputs once)", total, want)
	}
}

func TestReadModelBypassReducesReads(t *testing.T) {
	// A large FC-like GEMM: baseline write pollution causes B re-read
	// misses; bypassing the LLC for output removes them.
	g := grid(t, 8192, 4352, 2176) // T-NLG FC-2-like
	base := ReadModel{Grid: g, LLC: 16 * units.MiB}
	bypass := ReadModel{Grid: g, LLC: 16 * units.MiB, OutputBypassesLLC: true}
	stages := g.Stages(160)
	b := base.TotalReads(stages)
	p := bypass.TotalReads(stages)
	if p >= b {
		t.Errorf("bypass reads %v not below baseline %v", p, b)
	}
	if p < g.Shape.InputBytes() {
		t.Errorf("bypass reads %v below compulsory %v", p, g.Shape.InputBytes())
	}
}

func TestGEMMKernelCompletesAndConservesOutput(t *testing.T) {
	g := grid(t, 2048, 2048, 512)
	eng, k := newKernel(t, g)
	done := false
	if err := k.Start(func() { done = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Fatal("kernel never completed")
	}
	wantStages := len(g.Stages(160))
	if len(k.Stages()) != wantStages {
		t.Errorf("stages = %d, want %d", len(k.Stages()), wantStages)
	}
	// All output bytes were written exactly once.
	writes := k.Mem.Counters().KindBytes(memory.Write)
	if writes != g.Shape.OutputBytes() {
		t.Errorf("writes = %v, want %v", writes, g.Shape.OutputBytes())
	}
	var sum units.Bytes
	for s := range k.Stages() {
		sum += k.StageOutputBytes(s)
	}
	if sum != g.Shape.OutputBytes() {
		t.Errorf("stage output sum = %v, want %v", sum, g.Shape.OutputBytes())
	}
	if k.Finished() <= 0 || k.ComputeEnd() <= 0 || k.ComputeEnd() > k.Finished() {
		t.Errorf("times: computeEnd=%v finished=%v", k.ComputeEnd(), k.Finished())
	}
}

func TestGEMMDurationNearAnalytic(t *testing.T) {
	// Compute-bound GEMM duration should be close to flops/(peak*eff).
	g := grid(t, 8192, 4096, 2048)
	eng, k := newKernel(t, g)
	if err := k.Start(nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	eff := gemm.Efficiency(g)
	want := units.FromSeconds(float64(g.Shape.FLOPs()) / (k.GPU.PeakFlops() * eff))
	got := k.Finished()
	rel := float64(got-want) / float64(want)
	if rel < -0.02 || rel > 0.30 {
		t.Errorf("duration %v vs analytic %v (%.1f%%)", got, want, rel*100)
	}
}

func TestGEMMSlowerWithFewerCUs(t *testing.T) {
	g := grid(t, 4096, 4096, 1024)
	eng80, k80 := newKernel(t, g)
	if err := k80.Start(nil); err != nil {
		t.Fatal(err)
	}
	eng80.Run()

	eng64, k64 := newKernel(t, g)
	k64.CUs = 64
	_ = eng64
	if err := k64.Start(nil); err != nil {
		t.Fatal(err)
	}
	k64.Eng.Run()

	ratio := float64(k64.Finished()) / float64(k80.Finished())
	// 64/80 CUs: ~1.25x slower (paper reports ~21% geomean for this split).
	if ratio < 1.1 || ratio > 1.45 {
		t.Errorf("64-CU slowdown = %.2fx, want ~1.25x", ratio)
	}
}

func TestGEMMCustomWriteSink(t *testing.T) {
	g := grid(t, 1024, 1024, 256)
	eng, k := newKernel(t, g)
	var sunk units.Bytes
	calls := 0
	k.WriteStage = func(stage, wgs int, bytes units.Bytes, onDone sim.Handler) {
		calls++
		sunk += bytes
		onDone()
	}
	if err := k.Start(nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if sunk != g.Shape.OutputBytes() {
		t.Errorf("sink got %v, want %v", sunk, g.Shape.OutputBytes())
	}
	if calls != len(k.Stages()) {
		t.Errorf("sink called %d times, want %d", calls, len(k.Stages()))
	}
	// No local writes happened.
	if w := k.Mem.Counters().KindBytes(memory.Write); w != 0 {
		t.Errorf("unexpected local writes: %v", w)
	}
}

func TestGEMMStageHookAndOrder(t *testing.T) {
	g := grid(t, 2048, 1024, 256)
	eng, k := newKernel(t, g)
	var seen []int
	k.OnStageComputed = func(stage, wgs int) { seen = append(seen, stage) }
	if err := k.Start(nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(seen) != len(k.Stages()) {
		t.Fatalf("hook ran %d times, want %d", len(seen), len(k.Stages()))
	}
	for i, s := range seen {
		if s != i {
			t.Errorf("stage order: got %v", seen)
			break
		}
	}
}

func TestGEMMMonitorCalibratesMCA(t *testing.T) {
	g := grid(t, 4096, 4096, 2048)
	eng := sim.NewEngine()
	mca := memory.NewMCA(memory.DefaultMCAConfig())
	mc, err := memory.NewController(eng, memory.DefaultConfig(), mca)
	if err != nil {
		t.Fatal(err)
	}
	k := &GEMMKernel{Eng: eng, Mem: mc, GPU: DefaultConfig(), Grid: g, Monitor: true}
	if err := k.Start(nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !mca.Calibrated() {
		t.Error("MCA not calibrated by monitor window")
	}
}

func TestGEMMKernelValidation(t *testing.T) {
	g := grid(t, 1024, 1024, 256)
	_, k := newKernel(t, g)
	k.CUs = 999
	if err := k.Start(nil); err == nil {
		t.Error("CUs > GPU.CUs: expected error")
	}
	_, k2 := newKernel(t, g)
	k2.Eng = nil
	if err := k2.Start(nil); err == nil {
		t.Error("nil engine: expected error")
	}
	eng3, k3 := newKernel(t, g)
	if err := k3.Start(nil); err != nil {
		t.Fatal(err)
	}
	if err := k3.Start(nil); err == nil {
		t.Error("double start: expected error")
	}
	eng3.Run()
}

func TestProportionalShare(t *testing.T) {
	weights := []int{3, 3, 1}
	var sum units.Bytes
	for i := range weights {
		sum += proportionalShare(700, weights, i)
	}
	if sum != 700 {
		t.Errorf("shares sum to %v, want 700", sum)
	}
	if proportionalShare(700, weights, 0) != 300 {
		t.Errorf("share 0 = %v, want 300", proportionalShare(700, weights, 0))
	}
	if proportionalShare(100, nil, 0) != 0 {
		t.Error("empty weights should give 0")
	}
}

func TestDoubleBufferedNeverSlower(t *testing.T) {
	// Prefetching operands can only hide read time: the pipelined schedule
	// completes no later than the serial read-then-compute one, and both
	// conserve output bytes.
	for _, shapeDims := range [][3]int{{2048, 2048, 512}, {8192, 4352, 2176}, {1024, 1024, 128}} {
		g := grid(t, shapeDims[0], shapeDims[1], shapeDims[2])
		engSerial, kSerial := newKernel(t, g)
		if err := kSerial.Start(nil); err != nil {
			t.Fatal(err)
		}
		engSerial.Run()

		engPipe, kPipe := newKernel(t, g)
		kPipe.DoubleBuffered = true
		if err := kPipe.Start(nil); err != nil {
			t.Fatal(err)
		}
		engPipe.Run()

		if kPipe.Finished() > kSerial.Finished() {
			t.Errorf("%v: pipelined %v slower than serial %v",
				shapeDims, kPipe.Finished(), kSerial.Finished())
		}
		if w := kPipe.Mem.Counters().KindBytes(memory.Write); w != g.Shape.OutputBytes() {
			t.Errorf("%v: pipelined writes %v, want %v", shapeDims, w, g.Shape.OutputBytes())
		}
		if r := kPipe.Mem.Counters().KindBytes(memory.Read); r != kSerial.Mem.Counters().KindBytes(memory.Read) {
			t.Errorf("%v: read traffic differs between schedules", shapeDims)
		}
	}
}

func TestDoubleBufferedHidesReads(t *testing.T) {
	// For a read-heavy GEMM the pipelined schedule should show a real
	// saving: total ~ reads + compute (serial) vs ~ max per stage (pipelined).
	g := grid(t, 8192, 4352, 2176) // large B re-reads: substantial read time
	engSerial, kSerial := newKernel(t, g)
	if err := kSerial.Start(nil); err != nil {
		t.Fatal(err)
	}
	engSerial.Run()

	engPipe, kPipe := newKernel(t, g)
	kPipe.DoubleBuffered = true
	if err := kPipe.Start(nil); err != nil {
		t.Fatal(err)
	}
	engPipe.Run()

	saving := 1 - float64(kPipe.Finished())/float64(kSerial.Finished())
	if saving < 0.02 {
		t.Errorf("pipelining saved only %.1f%%, want a visible read-hiding benefit", 100*saving)
	}
}

func TestDoubleBufferedStageHookOrder(t *testing.T) {
	g := grid(t, 2048, 1024, 256)
	eng, k := newKernel(t, g)
	k.DoubleBuffered = true
	var seen []int
	k.OnStageComputed = func(stage, wgs int) { seen = append(seen, stage) }
	if err := k.Start(nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(seen) != len(k.Stages()) {
		t.Fatalf("hook ran %d times, want %d", len(seen), len(k.Stages()))
	}
	for i, s := range seen {
		if s != i {
			t.Errorf("stage order: %v", seen)
			break
		}
	}
}
