package gpu

import (
	"t3sim/internal/gemm"
	"t3sim/internal/units"
)

// ReadModel computes the DRAM read traffic a staged GEMM generates under a
// simple last-level-cache reuse model:
//
//   - the A operand streams once: each stage's WGs read fresh A panel rows
//     (row-major WG scheduling over a column-major output, §4.2.1), so A
//     contributes its footprint exactly once, spread across stages;
//   - the B operand is re-read every stage (each row sweep touches all
//     active columns); whether those re-reads hit the LLC depends on whether
//     B survives between stages, competing with the stage's streaming A
//     panels and — unless the output bypasses the LLC — the stage's freshly
//     written output tiles (write-allocate pollution, §6.2);
//   - LLC hits cost no DRAM traffic.
//
// This reproduces the paper's cache observations: OP-layer GEMMs are small
// enough to live in the LLC (tiny sequential read traffic, §6.1.2), large FC
// GEMMs thrash in the baseline, and T3's uncached-output bypass gives the
// inputs the whole cache back (GEMM read reductions in Figure 18).
type ReadModel struct {
	Grid gemm.Grid
	// LLC is the cache capacity available to this kernel.
	LLC units.Bytes
	// OutputBypassesLLC marks T3/NMC runs whose stores are uncached (§4.3).
	OutputBypassesLLC bool
}

// StageReads returns the DRAM read bytes of each stage for the given stage
// WG counts (from Grid.Stages).
func (m ReadModel) StageReads(stages []int) []units.Bytes {
	g := m.Grid
	out := make([]units.Bytes, len(stages))
	bBytes := g.Shape.BBytes()
	// A streams exactly once: apportion it cumulatively so shares conserve
	// the footprint despite integer division.
	var cumWGs int64
	var cumA units.Bytes
	for i, wgs := range stages {
		cumWGs += int64(wgs)
		nextA := units.Bytes(int64(g.Shape.ABytes()) * cumWGs / int64(g.NumWGs))
		stageA := nextA - cumA
		cumA = nextA
		// Fraction of B this stage touches: a full row sweep covers all of
		// B; smaller stages cover proportionally fewer columns.
		coverage := 1.0
		if wgs < g.WGsN {
			coverage = float64(wgs) / float64(g.WGsN)
		}
		stageB := units.Bytes(float64(bBytes) * coverage)
		if i == 0 {
			// Cold: everything misses.
			out[i] = stageA + stageB
			continue
		}
		out[i] = stageA + units.Bytes(float64(stageB)*m.bMissFraction(wgs))
	}
	return out
}

// TotalReads sums StageReads.
func (m ReadModel) TotalReads(stages []int) units.Bytes {
	var t units.Bytes
	for _, r := range m.StageReads(stages) {
		t += r
	}
	return t
}

// bMissFraction estimates the fraction of B's inter-stage re-reads that miss
// the LLC: B competes with the stage's streamed A panels and, in the
// baseline, with the stage's written output tiles.
func (m ReadModel) bMissFraction(stageWGs int) float64 {
	g := m.Grid
	footprint := g.Shape.BBytes() +
		units.Bytes(int64(g.Shape.ABytes())*int64(stageWGs)/int64(g.NumWGs))
	if !m.OutputBypassesLLC {
		footprint += units.Bytes(stageWGs) * g.WGTileBytes()
	}
	over := footprint - m.LLC
	if over <= 0 {
		return 0
	}
	miss := float64(over) / float64(g.Shape.BBytes())
	if miss > 1 {
		miss = 1
	}
	return miss
}
