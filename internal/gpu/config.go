// Package gpu models one GPU's execution of tiled GEMM kernels at stage
// (wave) granularity on the discrete-event simulator: each stage reads its
// operand panels from the memory system, computes for a time set by the
// launch's MAC efficiency, and emits a bursty write phase — the §2.5 /
// Figure 17(a) execution shape T3's overlap is built around.
package gpu

import (
	"fmt"

	"t3sim/internal/units"
)

// Config describes the modeled GPU, mirroring Table 1 of the paper plus the
// throughput constants the paper inherits from its Accel-Sim setup.
type Config struct {
	// CUs is the compute-unit count (80 in Table 1).
	CUs int
	// Clock is the core clock (1.4 GHz in Table 1).
	Clock units.Frequency
	// FlopsPerCUPerCycle is peak FP16 FLOPs (2·MACs) per CU per cycle.
	FlopsPerCUPerCycle int
	// MaxWGsPerCU bounds concurrent workgroups per CU for the modeled
	// register/LDS-heavy GEMM kernels; a stage holds CUs·MaxWGsPerCU WGs.
	MaxWGsPerCU int
	// LLCBytes is the last-level cache capacity (16 MiB in Table 1).
	LLCBytes units.Bytes
	// PerCUMemBandwidth is the memory throughput one CU sustains; it bounds
	// what a kernel confined to few CUs can move (§3.2.1).
	PerCUMemBandwidth units.Bandwidth
}

// DefaultConfig mirrors Table 1.
func DefaultConfig() Config {
	return Config{
		CUs:                80,
		Clock:              1.4 * units.GHz,
		FlopsPerCUPerCycle: 1024,
		MaxWGsPerCU:        2,
		LLCBytes:           16 * units.MiB,
		PerCUMemBandwidth:  16 * units.GBps,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.CUs <= 0:
		return fmt.Errorf("gpu: CUs = %d", c.CUs)
	case c.Clock <= 0:
		return fmt.Errorf("gpu: Clock = %v", c.Clock)
	case c.FlopsPerCUPerCycle <= 0:
		return fmt.Errorf("gpu: FlopsPerCUPerCycle = %d", c.FlopsPerCUPerCycle)
	case c.MaxWGsPerCU <= 0:
		return fmt.Errorf("gpu: MaxWGsPerCU = %d", c.MaxWGsPerCU)
	case c.LLCBytes <= 0:
		return fmt.Errorf("gpu: LLCBytes = %v", c.LLCBytes)
	case c.PerCUMemBandwidth <= 0:
		return fmt.Errorf("gpu: PerCUMemBandwidth = %v", c.PerCUMemBandwidth)
	}
	return nil
}

// PeakFlops returns the GPU's peak FP16 throughput in FLOP/s.
func (c Config) PeakFlops() float64 {
	return float64(c.CUs) * float64(c.FlopsPerCUPerCycle) * float64(c.Clock)
}

// StageWGs returns how many WGs one stage (wave) holds on cus compute units.
func (c Config) StageWGs(cus int) int {
	if cus <= 0 {
		panic("gpu: non-positive CU count")
	}
	return cus * c.MaxWGsPerCU
}

// ComputeTime returns the duration of flops worth of MAC work on cus CUs at
// the given sustained efficiency.
func (c Config) ComputeTime(flops int64, cus int, efficiency float64) units.Time {
	if cus <= 0 || efficiency <= 0 {
		panic("gpu: non-positive CUs or efficiency")
	}
	rate := float64(cus) * float64(c.FlopsPerCUPerCycle) * float64(c.Clock) * efficiency
	return units.FromSeconds(float64(flops) / rate)
}
