package rng

import (
	"math"
	"testing"
)

// TestFixedSeedStreams pins the exact head of several fixed-seed streams.
// These values are load-bearing: the serving golden snapshots depend on every
// draw, so a change here is a change to every serving experiment's output.
// Never "refresh" these constants to make the test pass — a mismatch means
// the generator algorithm changed, which is a breaking change.
func TestFixedSeedStreams(t *testing.T) {
	cases := []struct {
		seed uint64
		want [4]uint32
	}{
		{seed: 0, want: headOf(0)},
		{seed: 1, want: headOf(1)},
		{seed: 42, want: headOf(42)},
	}
	// First, structural pins: regenerating must reproduce itself exactly.
	for _, c := range cases {
		r := New(c.seed)
		for i, w := range c.want {
			if g := r.Uint32(); g != w {
				t.Errorf("seed %d draw %d: got %d, want %d", c.seed, i, g, w)
			}
		}
	}
	// Second, hard-coded pins for seed 42 so the stream can never drift
	// silently between builds (headOf would follow a drifting algorithm).
	r := New(42)
	got := [4]uint32{r.Uint32(), r.Uint32(), r.Uint32(), r.Uint32()}
	want := [4]uint32{4252926801, 1148020438, 1582319135, 142375219}
	if got != want {
		t.Fatalf("seed 42 stream head changed: got %v, want %v — this breaks every serving golden", got, want)
	}
}

func headOf(seed uint64) [4]uint32 {
	r := New(seed)
	return [4]uint32{r.Uint32(), r.Uint32(), r.Uint32(), r.Uint32()}
}

func TestMixDeterministicAndSpread(t *testing.T) {
	if Mix(7, 3) != Mix(7, 3) {
		t.Fatal("Mix not deterministic")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		v := Mix(12345, i)
		if seen[v] {
			t.Fatalf("Mix collision at stream %d", i)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestExpMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exp produced %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.98 || mean > 1.02 {
		t.Fatalf("Exp mean = %v, want ~1", mean)
	}
}

func TestIntRanges(t *testing.T) {
	r := New(5)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		if v == 3 {
			seenLo = true
		}
		if v == 7 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Error("IntRange never hit an endpoint in 10k draws")
	}
	for i := 0; i < 10000; i++ {
		v := r.LogIntRange(16, 1024)
		if v < 16 || v > 1024 {
			t.Fatalf("LogIntRange out of bounds: %d", v)
		}
	}
	if got := r.LogIntRange(8, 8); got != 8 {
		t.Fatalf("degenerate LogIntRange = %d", got)
	}
}

// TestUniformity is a coarse chi-squared-free sanity check: each of 16
// buckets of Uint32 should hold roughly 1/16 of the draws.
func TestUniformity(t *testing.T) {
	r := New(77)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[r.Uint32()>>28]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if frac < 0.055 || frac > 0.07 {
			t.Errorf("bucket %d holds %.4f of draws, want ~0.0625", i, frac)
		}
	}
}

func TestAllocFree(t *testing.T) {
	r := New(1)
	allocs := testing.AllocsPerRun(1000, func() {
		_ = r.Uint64()
		_ = r.Float64()
		_ = r.Exp()
		_ = r.IntRange(1, 10)
	})
	if allocs != 0 {
		t.Fatalf("Rand draws allocate: %v allocs/run", allocs)
	}
}
