// Package rng provides the small deterministic pseudo-random generator the
// serving simulator's stochastic processes run on: PCG-XSH-RR 32 over a
// 64-bit LCG state, seeded through the splitmix64 mixer.
//
// Determinism is the whole point. Go's math/rand makes no cross-version
// stream guarantee and its global functions are locked; this generator is a
// frozen algorithm whose streams are pinned by a fixed-seed regression test
// (TestFixedSeedStreams), so Poisson arrivals and length sampling are
// byte-identical at any -j/-par, on any platform, forever. Each simulated
// request derives a private stream from (seed, request index) via Mix, which
// keeps every request's random draws independent of how many requests came
// before it — the property the serving monotonicity tests rely on (scaling
// the offered QPS rescales arrival times without resampling anything else).
//
// A Rand is a 16-byte value with no heap state: keep it in a struct field or
// a local and the hot path allocates nothing.
package rng

import "math"

// Mix is the splitmix64 finalizer over seed ⊕ f(stream): a cheap, well-mixed
// way to derive independent substream seeds from one experiment seed. Equal
// (seed, stream) pairs always produce the same value.
func Mix(seed, stream uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a PCG-XSH-RR 32 generator. The zero value is a valid (if
// conventionally seeded) generator; use New to seed it properly.
type Rand struct {
	state uint64
	inc   uint64 // always odd
}

// pcgMult is the 64-bit LCG multiplier from the PCG reference implementation.
const pcgMult = 6364136223846793005

// New returns a generator seeded from seed. Distinct seeds yield
// uncorrelated streams (both the state and the stream-selection increment
// are derived through splitmix64).
func New(seed uint64) Rand {
	r := Rand{
		state: Mix(seed, 0),
		inc:   Mix(seed, 1)<<1 | 1, // stream selector must be odd
	}
	r.Uint32() // advance past the seed-correlated first state
	return r
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	// XSH-RR output function: xorshift high bits, then random rotate.
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns the next 64 uniformly distributed bits (two draws).
func (r *Rand) Uint64() uint64 {
	hi := uint64(r.Uint32())
	return hi<<32 | uint64(r.Uint32())
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an Exponential(1) variate by inversion. Divide by a rate to
// get Poisson-process inter-arrival gaps: gap = r.Exp() / qps.
func (r *Rand) Exp() float64 {
	// 1-Float64() is in (0, 1], so the log argument is never zero.
	return -math.Log(1 - r.Float64())
}

// Intn returns a uniform int in [0, n). It panics when n <= 0. The modulo
// bias over a 64-bit draw is < 2^-11 for any n this repository uses —
// irrelevant for simulation workloads, and the frozen streams matter more
// than the last bias bit.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics when
// hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// LogIntRange returns an int in [lo, hi] inclusive, log-uniformly
// distributed — the conventional shape for request prompt/output length
// distributions, where doubling a length is equally likely anywhere in the
// range. It panics when lo <= 0 or hi < lo.
func (r *Rand) LogIntRange(lo, hi int) int {
	if lo <= 0 {
		panic("rng: LogIntRange with non-positive lo")
	}
	if hi < lo {
		panic("rng: LogIntRange with hi < lo")
	}
	if lo == hi {
		return lo
	}
	v := math.Exp(math.Log(float64(lo)) + r.Float64()*(math.Log(float64(hi)+1)-math.Log(float64(lo))))
	n := int(v)
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}
