package trace

import (
	"testing"

	"t3sim/internal/memory"
	"t3sim/internal/units"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero bucket: expected error")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative bucket: expected error")
	}
}

func TestBucketing(t *testing.T) {
	tr, err := New(1 * units.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	tr.OnIssue(100*units.Nanosecond, &memory.Request{Kind: memory.Read, Stream: memory.StreamCompute, Bytes: 10})
	tr.OnIssue(900*units.Nanosecond, &memory.Request{Kind: memory.Write, Stream: memory.StreamCompute, Bytes: 20})
	tr.OnIssue(1500*units.Nanosecond, &memory.Request{Kind: memory.Update, Stream: memory.StreamComm, Bytes: 30})
	tr.OnIssue(2500*units.Nanosecond, &memory.Request{Kind: memory.Read, Stream: memory.StreamComm, Bytes: 40})

	s := tr.Samples()
	if len(s) != 3 {
		t.Fatalf("samples = %d, want 3", len(s))
	}
	if s[0].ComputeRead != 10 || s[0].ComputeWrite != 20 {
		t.Errorf("bucket 0 = %+v", s[0])
	}
	if s[1].CommWrite != 30 {
		t.Errorf("bucket 1 = %+v", s[1])
	}
	if s[2].CommRead != 40 {
		t.Errorf("bucket 2 = %+v", s[2])
	}
	if s[1].Start != 1*units.Microsecond {
		t.Errorf("bucket 1 start = %v", s[1].Start)
	}
	if tr.TotalBytes() != 100 {
		t.Errorf("total = %v, want 100", tr.TotalBytes())
	}
	if got := tr.PeakBucket(); got.Total() != 40 {
		t.Errorf("peak = %+v", got)
	}
	if tr.Bucket() != 1*units.Microsecond {
		t.Errorf("Bucket = %v", tr.Bucket())
	}
}

func TestGapsAreZeroFilled(t *testing.T) {
	tr, _ := New(1 * units.Microsecond)
	tr.OnIssue(5500*units.Nanosecond, &memory.Request{Kind: memory.Read, Stream: memory.StreamCompute, Bytes: 1})
	if len(tr.Samples()) != 6 {
		t.Fatalf("samples = %d, want 6", len(tr.Samples()))
	}
	for i := 0; i < 5; i++ {
		if tr.Samples()[i].Total() != 0 {
			t.Errorf("bucket %d not empty", i)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	tr, _ := New(units.Microsecond)
	if tr.TotalBytes() != 0 || tr.PeakBucket().Total() != 0 || len(tr.Samples()) != 0 {
		t.Error("empty trace should be zeroed")
	}
}
