// Package trace captures DRAM traffic timelines from the memory controller,
// backing the paper's Figure 17 (per-interval read/write/update bytes for
// the baseline GEMM versus the fused T3 run).
//
// The trace is a thin consumer of the metrics subsystem: each of Figure 17's
// four traffic classes is one metrics.TimeSeries, and the Sample view is
// reconstructed from the series on demand. NewRegistered additionally
// registers the series on a metrics.Sink so they appear in -metrics output.
package trace

import (
	"fmt"

	"t3sim/internal/memory"
	"t3sim/internal/metrics"
	"t3sim/internal/units"
)

// Sample is one time bucket of DRAM traffic, split the way Figure 17 plots
// it: producer (compute-stream) reads and writes versus communication
// (comm-stream) reads and updates.
type Sample struct {
	Start units.Time
	// ComputeRead/ComputeWrite are the producer kernel's bytes (GEMM reads,
	// GEMM writes or NMC updates).
	ComputeRead  units.Bytes
	ComputeWrite units.Bytes
	// CommRead is collective/DMA read traffic; CommWrite is incoming
	// staging/update traffic.
	CommRead  units.Bytes
	CommWrite units.Bytes
}

// Total returns all bytes in the bucket.
func (s Sample) Total() units.Bytes {
	return s.ComputeRead + s.ComputeWrite + s.CommRead + s.CommWrite
}

// Trace aggregates issued memory requests into fixed-width buckets, one
// metrics.TimeSeries per Figure 17 traffic class. It implements
// memory.Observer.
type Trace struct {
	bucket units.Time
	// cells holds the four traffic classes in Sample field order.
	computeRead  *metrics.TimeSeries
	computeWrite *metrics.TimeSeries
	commRead     *metrics.TimeSeries
	commWrite    *metrics.TimeSeries
}

// New returns a trace with the given bucket width.
func New(bucket units.Time) (*Trace, error) {
	if bucket <= 0 {
		return nil, fmt.Errorf("trace: bucket = %v", bucket)
	}
	t := &Trace{bucket: bucket}
	for _, cell := range []**metrics.TimeSeries{
		&t.computeRead, &t.computeWrite, &t.commRead, &t.commWrite,
	} {
		s, err := metrics.NewTimeSeries(bucket)
		if err != nil {
			return nil, err
		}
		*cell = s
	}
	return t, nil
}

// NewRegistered returns a trace whose four series are registered on m under
// "trace.compute_read_bytes", "trace.compute_write_bytes",
// "trace.comm_read_bytes" and "trace.comm_write_bytes", so the Figure 17
// timeline rides along in a -metrics export. A nil sink is equivalent to New.
func NewRegistered(m metrics.Sink, bucket units.Time) (*Trace, error) {
	if m == nil {
		return New(bucket)
	}
	if bucket <= 0 {
		return nil, fmt.Errorf("trace: bucket = %v", bucket)
	}
	t := &Trace{bucket: bucket}
	t.computeRead = m.Series("trace.compute_read_bytes", bucket)
	t.computeWrite = m.Series("trace.compute_write_bytes", bucket)
	t.commRead = m.Series("trace.comm_read_bytes", bucket)
	t.commWrite = m.Series("trace.comm_write_bytes", bucket)
	return t, nil
}

// OnIssue implements memory.Observer.
func (t *Trace) OnIssue(now units.Time, r *memory.Request) {
	switch {
	case r.Stream == memory.StreamCompute && r.Kind == memory.Read:
		t.computeRead.Add(now, int64(r.Bytes))
	case r.Stream == memory.StreamCompute:
		t.computeWrite.Add(now, int64(r.Bytes))
	case r.Kind == memory.Read:
		t.commRead.Add(now, int64(r.Bytes))
	default:
		t.commWrite.Add(now, int64(r.Bytes))
	}
}

// Samples returns the bucketed timeline, reconstructed from the four series
// (zero-filled to the longest one).
func (t *Trace) Samples() []Sample {
	n := t.computeRead.Len()
	for _, l := range []int{t.computeWrite.Len(), t.commRead.Len(), t.commWrite.Len()} {
		if l > n {
			n = l
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{
			Start:        units.Time(i) * t.bucket,
			ComputeRead:  units.Bytes(t.computeRead.BucketValue(i)),
			ComputeWrite: units.Bytes(t.computeWrite.BucketValue(i)),
			CommRead:     units.Bytes(t.commRead.BucketValue(i)),
			CommWrite:    units.Bytes(t.commWrite.BucketValue(i)),
		}
	}
	return out
}

// Bucket returns the bucket width.
func (t *Trace) Bucket() units.Time { return t.bucket }

// TotalBytes sums the whole trace.
func (t *Trace) TotalBytes() units.Bytes {
	var total units.Bytes
	for _, s := range t.Samples() {
		total += s.Total()
	}
	return total
}

// PeakBucket returns the sample with the most traffic (zero value if empty).
func (t *Trace) PeakBucket() Sample {
	var peak Sample
	for _, s := range t.Samples() {
		if s.Total() > peak.Total() {
			peak = s
		}
	}
	return peak
}
