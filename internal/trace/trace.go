// Package trace captures DRAM traffic timelines from the memory controller,
// backing the paper's Figure 17 (per-interval read/write/update bytes for
// the baseline GEMM versus the fused T3 run).
package trace

import (
	"fmt"

	"t3sim/internal/memory"
	"t3sim/internal/units"
)

// Sample is one time bucket of DRAM traffic, split the way Figure 17 plots
// it: producer (compute-stream) reads and writes versus communication
// (comm-stream) reads and updates.
type Sample struct {
	Start units.Time
	// ComputeRead/ComputeWrite are the producer kernel's bytes (GEMM reads,
	// GEMM writes or NMC updates).
	ComputeRead  units.Bytes
	ComputeWrite units.Bytes
	// CommRead is collective/DMA read traffic; CommWrite is incoming
	// staging/update traffic.
	CommRead  units.Bytes
	CommWrite units.Bytes
}

// Total returns all bytes in the bucket.
func (s Sample) Total() units.Bytes {
	return s.ComputeRead + s.ComputeWrite + s.CommRead + s.CommWrite
}

// Trace aggregates issued memory requests into fixed-width buckets. It
// implements memory.Observer.
type Trace struct {
	bucket  units.Time
	samples []Sample
}

// New returns a trace with the given bucket width.
func New(bucket units.Time) (*Trace, error) {
	if bucket <= 0 {
		return nil, fmt.Errorf("trace: bucket = %v", bucket)
	}
	return &Trace{bucket: bucket}, nil
}

// OnIssue implements memory.Observer.
func (t *Trace) OnIssue(now units.Time, r *memory.Request) {
	idx := int(now / t.bucket)
	for len(t.samples) <= idx {
		t.samples = append(t.samples, Sample{Start: units.Time(len(t.samples)) * t.bucket})
	}
	s := &t.samples[idx]
	switch {
	case r.Stream == memory.StreamCompute && r.Kind == memory.Read:
		s.ComputeRead += r.Bytes
	case r.Stream == memory.StreamCompute:
		s.ComputeWrite += r.Bytes
	case r.Kind == memory.Read:
		s.CommRead += r.Bytes
	default:
		s.CommWrite += r.Bytes
	}
}

// Samples returns the bucketed timeline.
func (t *Trace) Samples() []Sample { return t.samples }

// Bucket returns the bucket width.
func (t *Trace) Bucket() units.Time { return t.bucket }

// TotalBytes sums the whole trace.
func (t *Trace) TotalBytes() units.Bytes {
	var total units.Bytes
	for _, s := range t.samples {
		total += s.Total()
	}
	return total
}

// PeakBucket returns the sample with the most traffic (zero value if empty).
func (t *Trace) PeakBucket() Sample {
	var peak Sample
	for _, s := range t.samples {
		if s.Total() > peak.Total() {
			peak = s
		}
	}
	return peak
}
