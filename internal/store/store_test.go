package store

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type payload struct {
	A int64
	B float64
	C []int64
	S string
}

func testPayload(i int) payload {
	return payload{A: int64(i), B: float64(i) / 3, C: []int64{1, 2, int64(i)}, S: "entry"}
}

func testKey(i int) Key {
	var k Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	return k
}

func open(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	if o.Version == "" {
		o.Version = "v-test"
	}
	s, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// entryFile locates the single on-disk entry after one put (fatal unless
// exactly one exists).
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	var files []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	if len(files) != 1 {
		t.Fatalf("want exactly 1 entry on disk, found %d", len(files))
	}
	return files[0]
}

func TestStoreRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	want := testPayload(7)

	var got payload
	if s.Get("space", testKey(7), &got) {
		t.Fatal("Get on an empty store hit")
	}
	s.Put("space", testKey(7), want)
	s.Flush()
	if !s.Get("space", testKey(7), &got) {
		t.Fatal("Get after Put+Flush missed")
	}
	if got.A != want.A || got.B != want.B || got.S != want.S || len(got.C) != len(want.C) {
		t.Fatalf("round trip corrupted the payload: got %+v want %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.PutErrors != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put", st)
	}
	if st.BytesRead == 0 || st.BytesWritten == 0 {
		t.Fatalf("byte counters did not move: %+v", st)
	}
}

// TestStoreTruncation proves a truncated entry — a crashed or torn write at
// ANY byte boundary — reads as a silent miss, never an error or a wrong
// value.
func TestStoreTruncation(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	s.Put("space", testKey(1), testPayload(1))
	s.Flush()
	path := entryFile(t, dir)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(full); n++ {
		if err := os.WriteFile(path, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		fresh := open(t, dir, Options{})
		var got payload
		if fresh.Get("space", testKey(1), &got) {
			t.Fatalf("truncation to %d/%d bytes served a hit", n, len(full))
		}
		if st := fresh.Stats(); st.Corrupt != 1 || st.Misses != 1 {
			t.Fatalf("truncation to %d bytes: stats %+v, want 1 corrupt miss", n, st)
		}
	}
}

// TestStoreCorruption flips every byte of a valid entry in turn; each
// corruption must be a silent miss (the checksum or framing catches it).
func TestStoreCorruption(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	s.Put("space", testKey(1), testPayload(1))
	s.Flush()
	path := entryFile(t, dir)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(full); n++ {
		bad := bytes.Clone(full)
		bad[n] ^= 0xa5
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		var got payload
		if open(t, dir, Options{}).Get("space", testKey(1), &got) {
			t.Fatalf("flipped byte %d/%d still served a hit", n, len(full))
		}
	}
	// Whole-file garbage, much larger than the original.
	if err := os.WriteFile(path, bytes.Repeat([]byte{0x5a}, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	if open(t, dir, Options{}).Get("space", testKey(1), &got) {
		t.Fatal("garbage file served a hit")
	}
}

// TestStoreVersionMismatch proves entries written by one code identity are
// invisible to another, and Prune reclaims them.
func TestStoreVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	old := open(t, dir, Options{Version: "v-old"})
	old.Put("space", testKey(1), testPayload(1))
	old.Flush()

	cur := open(t, dir, Options{Version: "v-new"})
	var got payload
	if cur.Get("space", testKey(1), &got) {
		t.Fatal("an entry from another build version served a hit")
	}
	cur.Put("space", testKey(1), testPayload(2))
	cur.Flush()
	if !cur.Get("space", testKey(1), &got) || got.A != 2 {
		t.Fatal("the new version's own entry is unreadable")
	}
	// Both versions coexist until pruned.
	ds, err := cur.DiskStats()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Entries != 2 || ds.Current != 1 || ds.Stale != 1 {
		t.Fatalf("disk stats %+v, want 2 entries / 1 current / 1 stale", ds)
	}
	removed, freed, err := cur.Prune()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || freed == 0 {
		t.Fatalf("Prune removed %d entries (%d bytes), want the 1 stale entry", removed, freed)
	}
	if !cur.Get("space", testKey(1), &got) || got.A != 2 {
		t.Fatal("Prune removed the current version's entry")
	}
	if !old.Get("space", testKey(1), &got) || got.A != 1 {
		// Not pruned yet from old's view? It must be: the file is gone.
		t.Log("old entry pruned as expected")
	}
}

// TestStoreConcurrentWriters hammers one directory from many goroutines and
// two independent Store handles (standing in for separate processes) under
// the race detector: concurrent last-writer-wins publishes must never yield
// a torn read.
func TestStoreConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, Options{})
	b := open(t, dir, Options{})
	const keys = 8
	const writersPerKey = 4

	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		for w := 0; w < writersPerKey; w++ {
			wg.Add(1)
			go func(k, w int) {
				defer wg.Done()
				s := a
				if w%2 == 1 {
					s = b
				}
				s.Put("space", testKey(k), testPayload(k))
				var got payload
				if s.Get("space", testKey(k), &got) && got.A != int64(k) {
					t.Errorf("key %d read another key's payload (%d)", k, got.A)
				}
			}(k, w)
		}
	}
	wg.Wait()
	a.Flush()
	b.Flush()
	for k := 0; k < keys; k++ {
		var got payload
		if !a.Get("space", testKey(k), &got) {
			t.Fatalf("key %d missing after concurrent writes", k)
		}
		if got.A != int64(k) {
			t.Fatalf("key %d = %d after concurrent writes", k, got.A)
		}
	}
	if st := a.Stats(); st.PutErrors != 0 {
		t.Fatalf("concurrent writers hit put errors: %+v", st)
	}
}

// TestStoreUnwritableDir proves write failures are silent: results still
// flow, errors are only counted. A regular file stands in for the cache
// directory (unlike chmod, it blocks root too).
func TestStoreUnwritableDir(t *testing.T) {
	dir := t.TempDir()
	blocked := filepath.Join(dir, "cache")
	if err := os.WriteFile(blocked, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(blocked, Options{Version: "v", Mode: ReadWrite}); err == nil {
		t.Fatal("Open(ReadWrite) on a non-directory must fail")
	}
	// ReadOnly opens fine and treats everything as a miss.
	s, err := Open(blocked, Options{Version: "v", Mode: ReadOnly})
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if s.Get("space", testKey(1), &got) {
		t.Fatal("read-only store over a non-directory served a hit")
	}

	// A store whose directory is swept away mid-run drops writes silently.
	gone := open(t, filepath.Join(dir, "gone"), Options{})
	if err := os.RemoveAll(filepath.Join(dir, "gone")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "gone"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	gone.Put("space", testKey(1), testPayload(1))
	gone.Flush()
	if st := gone.Stats(); st.PutErrors != 1 || st.Puts != 0 {
		t.Fatalf("blocked write not counted as PutError: %+v", st)
	}
}

func TestStoreReadOnlyMode(t *testing.T) {
	dir := t.TempDir()
	rw := open(t, dir, Options{})
	rw.Put("space", testKey(1), testPayload(1))
	rw.Flush()

	ro := open(t, dir, Options{Mode: ReadOnly})
	var got payload
	if !ro.Get("space", testKey(1), &got) {
		t.Fatal("read-only store missed an existing entry")
	}
	ro.Put("space", testKey(2), testPayload(2))
	ro.Flush()
	if ro.Get("space", testKey(2), &got) {
		t.Fatal("read-only store persisted a Put")
	}
	if st := ro.Stats(); st.PutSkipped != 1 || st.Puts != 0 {
		t.Fatalf("read-only stats %+v, want 1 skipped put", st)
	}
}

func TestStoreNilSafety(t *testing.T) {
	var s *Store
	var got payload
	if s.Get("space", testKey(1), &got) {
		t.Fatal("nil store hit")
	}
	s.Put("space", testKey(1), testPayload(1))
	s.Flush()
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil store stats %+v", st)
	}
	if ds, err := s.DiskStats(); err != nil || ds != (DiskStats{}) {
		t.Fatalf("nil store disk stats %+v, %v", ds, err)
	}
	if n, b, err := s.Prune(); n != 0 || b != 0 || err != nil {
		t.Fatal("nil store prune did something")
	}
	if s.Dir() != "" || s.Version() != "" {
		t.Fatal("nil store has identity")
	}
}

// TestStoreSpacesIsolate proves one key in two spaces names two entries.
func TestStoreSpacesIsolate(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	s.Put("a", testKey(1), testPayload(1))
	s.Put("b", testKey(1), testPayload(2))
	s.Flush()
	var got payload
	if !s.Get("a", testKey(1), &got) || got.A != 1 {
		t.Fatal("space a lost its entry")
	}
	if !s.Get("b", testKey(1), &got) || got.A != 2 {
		t.Fatal("space b lost its entry")
	}
}

// TestStoreTempLeftovers proves crashed writers' temp files are invisible to
// reads, reported by DiskStats, and reclaimed by Prune.
func TestStoreTempLeftovers(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	s.Put("space", testKey(1), testPayload(1))
	s.Flush()
	leftover := filepath.Join(dir, "space", tmpPrefix+"crashed")
	if err := os.WriteFile(leftover, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := s.DiskStats()
	if err != nil {
		t.Fatal(err)
	}
	if ds.TempFiles != 1 || ds.Entries != 1 {
		t.Fatalf("disk stats %+v, want 1 temp file + 1 entry", ds)
	}
	removed, _, err := s.Prune()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("Prune removed %d files, want the 1 temp leftover", removed)
	}
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Fatal("temp leftover survived Prune")
	}
}

func TestBuildIdentityDeterministic(t *testing.T) {
	a, b := BuildIdentity(), BuildIdentity()
	if a == "" || a != b {
		t.Fatalf("BuildIdentity unstable: %q vs %q", a, b)
	}
}

// Benchmark sanity: the hot path should not explode allocation-wise, but the
// store is off the simulation hot path, so this is informational only.
func BenchmarkStoreGetHit(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{Version: "v"})
	if err != nil {
		b.Fatal(err)
	}
	s.Put("space", testKey(1), testPayload(1))
	s.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got payload
		if !s.Get("space", testKey(1), &got) {
			b.Fatal("miss")
		}
	}
}
