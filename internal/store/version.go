package store

import "runtime/debug"

// fallbackIdentity keys builds with no usable build info — notably `go test`
// binaries, which carry no VCS stamp. It is deterministic so tests sharing a
// directory interoperate, and distinct from any real revision string so a
// test-populated cache never shadows a released binary's entries.
const fallbackIdentity = "dev"

// BuildIdentity derives the code-identity component of a store version from
// the running binary's build info: the VCS revision (plus a dirty marker)
// when the binary was built from a checkout, else the module version, else
// a deterministic fallback. Callers compose it with their own schema
// fingerprint; nothing is hand-bumped.
func BuildIdentity() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return fallbackIdentity
	}
	var revision, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if revision != "" {
		if modified == "true" {
			return revision + "+dirty"
		}
		return revision
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return fallbackIdentity
}
