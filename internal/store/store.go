// Package store implements the persistent content-addressed result store:
// a concurrent-safe on-disk map from canonical simulation keys to
// gob-encoded results, shared by every t3sim/t3sweep process pointed at the
// same directory.
//
// The store is the second tier under the in-memory memo cache
// (internal/experiments/memo.go): reads are read-through (memory miss →
// disk probe → compute), writes are write-behind (the computing caller
// returns immediately; a background goroutine encodes and persists).
//
// Design rules, in priority order:
//
//   - A cache must never change results. Every key folds in the store's
//     code-identity version string, so entries written by a different build
//     self-invalidate (they are simply never looked up), and every payload
//     carries a checksum, so a torn, truncated or corrupted file reads as a
//     miss — never as a wrong result.
//   - A cache must never turn a working run into a failing one. No read or
//     write path returns an error to the simulation: unreadable entries are
//     misses, failed writes are counted and dropped. Only Open can fail, and
//     only when the cache directory itself cannot be created.
//   - Concurrent use is the normal case. Within a process the memo layer's
//     singleflight already collapses duplicate computations; across
//     processes, writers publish with an atomic write-to-temp + rename, so
//     racing writers are last-writer-wins and readers always observe a
//     complete file or none.
//
// On-disk layout: dir/<space>/<hh>/<hash>.t3r, where <hash> is the hex
// SHA-256 of (version, space, key) and <hh> its first two characters — a
// two-level fan-out that keeps directories small under large sweeps.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// Key is a collision-resistant content digest, produced by the caller's
// canonical hasher (the experiments memoKey converts directly).
type Key [sha256.Size]byte

// Mode selects how a store treats the directory it was opened on.
type Mode int

const (
	// ReadWrite serves hits and persists new results (the default).
	ReadWrite Mode = iota
	// ReadOnly serves hits but never writes: Put is a counted no-op. The
	// directory may not even exist — every Get is then a miss.
	ReadOnly
)

// Options configures Open.
type Options struct {
	// Version is the code-identity string hashed into every entry's on-disk
	// name. Entries written under any other version are invisible (and
	// reclaimable via Prune). Must be non-empty.
	Version string
	// Mode is ReadWrite or ReadOnly.
	Mode Mode
}

// Stats counts store traffic. All failure modes are counted, none are
// surfaced as errors.
type Stats struct {
	// Hits / Misses count Get outcomes. A corrupt or stale entry is a miss.
	Hits, Misses int64
	// Corrupt counts Get probes that found a file but could not use it
	// (truncated, bad checksum, wrong version header, undecodable payload).
	// Each is also counted as a miss.
	Corrupt int64
	// Puts counts successfully persisted entries; PutErrors counts writes
	// that failed (full disk, read-only directory, ...) and were dropped;
	// PutSkipped counts Put calls ignored because the store is ReadOnly.
	Puts, PutErrors, PutSkipped int64
	// BytesRead / BytesWritten count payload traffic of hits and
	// successful puts.
	BytesRead, BytesWritten int64
}

// Store is a handle on one cache directory. Methods are safe for concurrent
// use and safe on a nil receiver (every Get misses, every Put is dropped),
// so callers can thread an optional store without guarding call sites.
type Store struct {
	dir     string
	version string
	mode    Mode

	wg sync.WaitGroup // outstanding write-behind goroutines

	hits, misses, corrupt       atomic.Int64
	puts, putErrors, putSkipped atomic.Int64
	bytesRead, bytesWritten     atomic.Int64
}

// File format: header, gob payload, trailing checksum. The version string is
// already folded into the file name; it is repeated in the header so Prune
// and DiskStats can attribute entries to builds without reversing the hash.
const (
	fileMagic  = "t3rstor1"
	fileSuffix = ".t3r"
	tmpPrefix  = "tmp-"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Open returns a store over dir, creating it (mode ReadWrite) if needed.
// The only failure is an unusable directory in ReadWrite mode.
func Open(dir string, o Options) (*Store, error) {
	if o.Mode == ReadWrite {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{dir: dir, version: o.Version, mode: o.Mode}, nil
}

// Dir returns the store's directory ("" on nil).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Version returns the code-identity string ("" on nil).
func (s *Store) Version() string {
	if s == nil {
		return ""
	}
	return s.version
}

// entryPath is the final on-disk location of (space, key) under the store's
// version.
func (s *Store) entryPath(space string, key Key) string {
	h := sha256.New()
	io.WriteString(h, s.version)
	h.Write([]byte{0})
	io.WriteString(h, space)
	h.Write([]byte{0})
	h.Write(key[:])
	name := hex.EncodeToString(h.Sum(nil))
	return filepath.Join(s.dir, space, name[:2], name+fileSuffix)
}

// Get decodes the stored entry for (space, key) into v, reporting whether it
// succeeded. Every failure mode — absent, truncated, corrupted, stale
// version, undecodable — is a miss, never an error: the caller recomputes.
func (s *Store) Get(space string, key Key, v any) bool {
	if s == nil {
		return false
	}
	raw, err := os.ReadFile(s.entryPath(space, key))
	if err != nil {
		s.misses.Add(1)
		return false
	}
	payload, ok := s.decodeFile(raw)
	if ok {
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
			ok = false
		}
	}
	if !ok {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return false
	}
	s.hits.Add(1)
	s.bytesRead.Add(int64(len(payload)))
	return true
}

// decodeFile validates raw's framing and returns the gob payload.
func (s *Store) decodeFile(raw []byte) ([]byte, bool) {
	rest := raw
	if len(rest) < len(fileMagic) || string(rest[:len(fileMagic)]) != fileMagic {
		return nil, false
	}
	rest = rest[len(fileMagic):]
	version, rest, ok := takeBlock(rest)
	if !ok || string(version) != s.version {
		return nil, false
	}
	payload, rest, ok := takeBlock(rest)
	if !ok || len(rest) != 4 {
		return nil, false
	}
	sum := binary.LittleEndian.Uint32(rest)
	if crc32.Checksum(raw[:len(raw)-4], crcTable) != sum {
		return nil, false
	}
	return payload, true
}

// takeBlock splits a length-prefixed block off the front of b.
func takeBlock(b []byte) (block, rest []byte, ok bool) {
	if len(b) < 4 {
		return nil, nil, false
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return nil, nil, false
	}
	return b[:n], b[n:], true
}

// Put persists v under (space, key) asynchronously. The caller returns
// immediately; encoding and I/O happen on a background goroutine (call Flush
// to wait for them). Failures are counted, never surfaced. On a nil or
// ReadOnly store, Put drops the value.
func (s *Store) Put(space string, key Key, v any) {
	if s == nil {
		return
	}
	if s.mode == ReadOnly {
		s.putSkipped.Add(1)
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.putSync(space, key, v)
	}()
}

func (s *Store) putSync(space string, key Key, v any) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		s.putErrors.Add(1)
		return
	}
	var buf bytes.Buffer
	buf.Grow(len(fileMagic) + 8 + len(s.version) + payload.Len() + 8)
	buf.WriteString(fileMagic)
	writeBlock(&buf, []byte(s.version))
	writeBlock(&buf, payload.Bytes())
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(buf.Bytes(), crcTable))
	buf.Write(sum[:])

	final := s.entryPath(space, key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		s.putErrors.Add(1)
		return
	}
	// Atomic publish: racing writers each rename a private temp file onto
	// the final path; last writer wins, readers never see a partial file.
	tmp, err := os.CreateTemp(filepath.Dir(final), tmpPrefix)
	if err != nil {
		s.putErrors.Add(1)
		return
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return
	}
	s.puts.Add(1)
	s.bytesWritten.Add(int64(payload.Len()))
}

func writeBlock(buf *bytes.Buffer, b []byte) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(b)))
	buf.Write(n[:])
	buf.Write(b)
}

// Flush blocks until every write-behind goroutine started by earlier Put
// calls has finished. Call it before reading Stats for exact put counts, and
// before process exit so the last results land on disk.
func (s *Store) Flush() {
	if s == nil {
		return
	}
	s.wg.Wait()
}

// Stats returns a snapshot of the store's traffic counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Corrupt:      s.corrupt.Load(),
		Puts:         s.puts.Load(),
		PutErrors:    s.putErrors.Load(),
		PutSkipped:   s.putSkipped.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
}

// DiskStats summarizes the cache directory's contents.
type DiskStats struct {
	// Entries / Bytes count all complete entries on disk; Current counts
	// those readable under the store's own version, Stale the rest
	// (other builds, unreadable headers).
	Entries, Current, Stale int
	Bytes                   int64
	// TempFiles counts leftover write-temp files (crashed writers).
	TempFiles int
}

// DiskStats walks the cache directory. A missing directory is an empty
// cache, not an error.
func (s *Store) DiskStats() (DiskStats, error) {
	var ds DiskStats
	if s == nil {
		return ds, nil
	}
	err := s.walkEntries(func(path string, info fs.FileInfo, stale bool) error {
		if strings.HasPrefix(filepath.Base(path), tmpPrefix) {
			ds.TempFiles++
			return nil
		}
		ds.Entries++
		ds.Bytes += info.Size()
		if stale {
			ds.Stale++
		} else {
			ds.Current++
		}
		return nil
	})
	return ds, err
}

// Prune removes every entry not readable under the store's current version —
// stale builds, corrupt files — plus leftover write-temp files, and returns
// how many entries were removed and how many bytes were freed. Run it as an
// offline admin operation (concurrent writers' live temp files would be
// swept too).
func (s *Store) Prune() (removed int, freed int64, err error) {
	if s == nil {
		return 0, 0, nil
	}
	err = s.walkEntries(func(path string, info fs.FileInfo, stale bool) error {
		if !stale && !strings.HasPrefix(filepath.Base(path), tmpPrefix) {
			return nil
		}
		if err := os.Remove(path); err != nil {
			return err
		}
		removed++
		freed += info.Size()
		return nil
	})
	return removed, freed, err
}

// walkEntries visits every regular file under the store directory, flagging
// whether it fails to validate under the current version.
func (s *Store) walkEntries(fn func(path string, info fs.FileInfo, stale bool) error) error {
	return filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if path == s.dir && os.IsNotExist(err) {
				return filepath.SkipAll
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		stale := true
		if !strings.HasPrefix(filepath.Base(path), tmpPrefix) {
			if raw, err := os.ReadFile(path); err == nil {
				_, ok := s.decodeFile(raw)
				stale = !ok
			}
		}
		return fn(path, info, stale)
	})
}
