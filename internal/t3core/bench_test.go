package t3core

import (
	"testing"

	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// triggerHarness wires the §4 datapath the fused runner exercises per
// produced tile — NMC store bursts observed at the memory controller, the
// tracker counting them, the DMA table firing, the triggered block read,
// the ring send, and the mirrored remote update — with every callback
// prebuilt, so a steady-state burst through the whole chain can be pinned
// at zero allocations.
type triggerHarness struct {
	eng   *sim.Engine
	mem   *memory.Controller
	trk   *Tracker
	table *DMATable
	link  *interconnect.Link

	tiles     int
	tileBytes units.Bytes
	fired     int
	mirrored  int
	err       error

	readDone func()      // triggered block read complete → ring send
	sent     sim.Handler // ring delivery → mirrored NMC update
}

// mirrorWGBase offsets the mirrored updates' tile identities out of the
// tracked domain, so the harness models the arriving neighbor traffic
// without retriggering itself.
const mirrorWGBase = 1 << 16

func newTriggerHarness(tb testing.TB, tiles int) *triggerHarness {
	tb.Helper()
	h := &triggerHarness{tiles: tiles, tileBytes: 4 * units.KiB}
	h.eng = sim.NewEngine()
	cfg := memory.DefaultConfig()
	cfg.Channels = 4
	cfg.TotalBandwidth = 4 * units.GBps
	cfg.RequestGranularity = 1 * units.KiB
	cfg.QueueDepth = 8
	mc, err := memory.NewController(h.eng, cfg, &memory.RoundRobin{})
	if err != nil {
		tb.Fatal(err)
	}
	h.mem = mc
	h.link, err = interconnect.NewLink(h.eng, interconnect.DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	h.trk, err = NewTracker(TrackerConfig{Sets: 64, Ways: 8, MaxWFsPerWG: 8})
	if err != nil {
		tb.Fatal(err)
	}
	h.table = NewDMATable()
	for g := 0; g < tiles; g++ {
		if err := h.table.Program(TileID{WG: g / 8, WF: g % 8},
			DMACommand{DestDevice: 1, Op: memory.Update, Bytes: h.tileBytes}); err != nil {
			tb.Fatal(err)
		}
	}
	h.readDone = func() { h.link.Send(h.tileBytes, h.sent) }
	h.sent = func() {
		h.mirrored++
		h.mem.Transfer(memory.Update, memory.StreamComm, h.tileBytes,
			memory.Tag{WG: mirrorWGBase, WF: 0}, nil)
	}
	if err := h.trk.SetProgram(Program{
		WFTileBytes:       h.tileBytes,
		UpdatesPerElement: 1,
		OnReady: func(id TileID) {
			cmd, ok := h.table.MarkReady(id)
			if !ok {
				return
			}
			h.fired++
			h.mem.Transfer(memory.Read, memory.StreamComm, cmd.Bytes,
				memory.Tag{WG: id.WG, WF: id.WF}, h.readDone)
			// Rearm the entry so the next burst triggers again.
			if err := h.table.Program(id, cmd); err != nil {
				h.err = err
			}
		},
	}); err != nil {
		tb.Fatal(err)
	}
	mc.SetObserver(memory.ObserverFunc(func(_ units.Time, r *memory.Request) {
		if r.Kind != memory.Update || r.Tag.WG >= mirrorWGBase {
			return
		}
		if err := h.trk.Observe(TileID{WG: r.Tag.WG, WF: r.Tag.WF}, r.Bytes); err != nil {
			h.err = err
		}
	}))
	return h
}

// burst produces every tile once and services the whole chain to quiescence.
func (h *triggerHarness) burst() {
	for g := 0; g < h.tiles; g++ {
		h.mem.Transfer(memory.Update, memory.StreamCompute, h.tileBytes,
			memory.Tag{WG: g / 8, WF: g % 8}, nil)
	}
	h.eng.Run()
}

// BenchmarkTriggerHotPath measures one steady-state burst through the full
// store→track→fire→read→send→mirror chain; allocs/op must be zero.
func BenchmarkTriggerHotPath(b *testing.B) {
	h := newTriggerHarness(b, 16)
	h.burst() // reach pools' and tables' high-water marks
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.burst()
	}
	if h.err != nil {
		b.Fatal(h.err)
	}
}

// TestTriggerSteadyStateAllocFree pins the fused inner loop's zero-alloc
// guarantee end to end: after one warmup burst, producing and servicing
// further bursts — tracker counting, DMA triggering, pooled transfers, link
// delivery, mirrored updates — allocates nothing.
func TestTriggerSteadyStateAllocFree(t *testing.T) {
	h := newTriggerHarness(t, 16)
	h.burst()
	if avg := testing.AllocsPerRun(50, h.burst); avg != 0 {
		t.Fatalf("steady-state burst allocates %.1f objects, want 0", avg)
	}
	if h.err != nil {
		t.Fatal(h.err)
	}
	if h.fired != 52*16 || h.mirrored != h.fired {
		t.Fatalf("fired %d triggers, mirrored %d deliveries; want 832 each", h.fired, h.mirrored)
	}
}

// BenchmarkTrackerObserveFire measures the tracker's own per-tile cycle:
// allocate on first touch, count to threshold, fire, retire.
func BenchmarkTrackerObserveFire(b *testing.B) {
	trk, err := NewTracker(TrackerConfig{Sets: 64, Ways: 8, MaxWFsPerWG: 8})
	if err != nil {
		b.Fatal(err)
	}
	fired := 0
	if err := trk.SetProgram(Program{
		WFTileBytes:       4 * units.KiB,
		UpdatesPerElement: 2,
		OnReady:           func(TileID) { fired++ },
	}); err != nil {
		b.Fatal(err)
	}
	id := TileID{WG: 5, WF: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Two observes per fire: the local store and its mirrored update.
		if err := trk.Observe(id, 4*units.KiB); err != nil {
			b.Fatal(err)
		}
		if err := trk.Observe(id, 4*units.KiB); err != nil {
			b.Fatal(err)
		}
	}
	if fired != b.N {
		b.Fatalf("fired %d, want %d", fired, b.N)
	}
}

// BenchmarkDMATableSetGet measures the dense command table's program/trigger
// cycle on the trigger path's probe pattern.
func BenchmarkDMATableSetGet(b *testing.B) {
	table := NewDMATable()
	cmd := DMACommand{DestDevice: 1, Op: memory.Update, Bytes: 4 * units.KiB}
	id := TileID{WG: 37, WF: 5}
	if err := table.Program(id, cmd); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, ok := table.MarkReady(id)
		if !ok {
			b.Fatal("programmed command missing")
		}
		if err := table.Program(id, got); err != nil {
			b.Fatal(err)
		}
	}
}
