package t3core

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"t3sim/internal/check"
	"t3sim/internal/gemm"
	"t3sim/internal/gpu"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
)

// parOptions builds a multi-device configuration for the parallel-DES tests.
func parOptions(t *testing.T, m, n, k, devices int) FusedOptions {
	t.Helper()
	g, err := gemm.NewGrid(gemm.Shape{M: m, N: n, K: k, ElemBytes: 2}, gemm.DefaultTiling())
	if err != nil {
		t.Fatal(err)
	}
	return FusedOptions{
		GPU:         gpu.DefaultConfig(),
		Memory:      memory.DefaultConfig(),
		Link:        interconnect.DefaultConfig(),
		Tracker:     TrackerConfig{Sets: 256, Ways: 64, MaxWFsPerWG: 8},
		Devices:     devices,
		Grid:        g,
		Collective:  RingReduceScatter,
		Arbitration: ArbRoundRobin,
	}
}

// TestMultiDeviceParallelMatchesSequential is the load-bearing equivalence
// test of the conservative parallel layer: the cluster path must reproduce
// the legacy shared-engine result exactly — every per-device completion
// time, every DRAM counter, every link byte — at every worker count.
func TestMultiDeviceParallelMatchesSequential(t *testing.T) {
	for _, devices := range []int{2, 3, 4, 8} {
		o := parOptions(t, 512, 512, 256, devices)
		want, err := RunFusedGEMMRSMultiDevice(o)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, devices} {
			po := o
			po.ParWorkers = workers
			chk := check.New()
			po.Check = chk
			got, err := RunFusedGEMMRSMultiDevice(po)
			if err != nil {
				t.Fatalf("devices=%d workers=%d: %v", devices, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("devices=%d workers=%d: parallel result diverged from sequential\n got: %+v\nwant: %+v",
					devices, workers, got, want)
			}
			if !chk.Ok() {
				t.Errorf("devices=%d workers=%d: violations: %v", devices, workers, chk.Violations())
			}
		}
	}
}

// TestPropertyParallelWorkersInvariant: for random tile-aligned shapes the
// explicit run's result is a pure function of the model — identical at
// workers 1, 2 and N, and identical to the sequential path.
func TestPropertyParallelWorkersInvariant(t *testing.T) {
	f := func(mRaw, nRaw uint8, devRaw uint8) bool {
		m := (int(mRaw)%4 + 2) * 128
		n := (int(nRaw)%4 + 2) * 128
		devices := []int{2, 4}[int(devRaw)%2]
		g, err := gemm.NewGrid(gemm.Shape{M: m, N: n, K: 256, ElemBytes: 2}, gemm.DefaultTiling())
		if err != nil || g.NumWFs() < devices {
			return err == nil
		}
		o := FusedOptions{
			GPU:         gpu.DefaultConfig(),
			Memory:      memory.DefaultConfig(),
			Link:        interconnect.DefaultConfig(),
			Tracker:     TrackerConfig{Sets: 256, Ways: 64, MaxWFsPerWG: 8},
			Devices:     devices,
			Grid:        g,
			Collective:  RingReduceScatter,
			Arbitration: ArbRoundRobin,
		}
		want, err := RunFusedGEMMRSMultiDevice(o)
		if err != nil {
			return false
		}
		for _, workers := range []int{1, 2, devices} {
			o.ParWorkers = workers
			got, err := RunFusedGEMMRSMultiDevice(o)
			if err != nil || !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// TestMultiDevice64ParallelMatchesSequential extends the byte-identity proof
// to the Fig-20 scale regime: 64 explicit devices, per-device horizons doing
// real work (devices run far past the global window between ring phases),
// and still every field of the result must DeepEqual the shared-engine
// reference at every worker count. Skipped under -short: it simulates 64
// devices five times over.
func TestMultiDevice64ParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("64-device equivalence sweep is long; run without -short")
	}
	o := parOptions(t, 1024, 1024, 256, 64)
	want, err := RunFusedGEMMRSMultiDevice(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		po := o
		po.ParWorkers = workers
		chk := check.New()
		po.Check = chk
		var st sim.ClusterStats
		po.ClusterStats = &st
		got, err := RunFusedGEMMRSMultiDevice(po)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: 64-device parallel result diverged from sequential", workers)
		}
		if !chk.Ok() {
			t.Errorf("workers=%d: violations: %v", workers, chk.Violations())
		}
		if st.Windows == 0 || st.EngineWindows == 0 {
			t.Errorf("workers=%d: cluster stats not populated: %+v", workers, st)
		}
		if st.AvgWindowWidth() < o.Link.LinkLatency {
			t.Errorf("workers=%d: average window %v narrower than the link latency %v — dynamic lookahead is not engaging",
				workers, st.AvgWindowWidth(), o.Link.LinkLatency)
		}
	}
}

// TestMultiDeviceZeroLatencyFallsBack pins the documented fallback: with a
// zero link latency there is no lookahead, so ParWorkers must silently use
// the sequential path and still succeed.
func TestMultiDeviceZeroLatencyFallsBack(t *testing.T) {
	o := parOptions(t, 256, 256, 128, 2)
	o.Link.LinkLatency = 0
	want, err := RunFusedGEMMRSMultiDevice(o)
	if err != nil {
		t.Fatal(err)
	}
	o.ParWorkers = 2
	got, err := RunFusedGEMMRSMultiDevice(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("zero-latency fallback diverged:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestMultiDeviceResultIndependentOfSink is the satellite regression test:
// per-device GEMMDone/CollectiveDone and DRAM counters are collected
// unconditionally — attaching a metrics sink must not change (or be required
// for) any of them, in either execution mode, and Skew() must be a real
// number computed from real completion times.
func TestMultiDeviceResultIndependentOfSink(t *testing.T) {
	for _, workers := range []int{0, 2} {
		o := parOptions(t, 512, 512, 256, 4)
		o.ParWorkers = workers
		bare, err := RunFusedGEMMRSMultiDevice(o)
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry()
		o.Metrics = reg
		sunk, err := RunFusedGEMMRSMultiDevice(o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bare, sunk) {
			t.Errorf("workers=%d: result depends on metrics sink\n bare: %+v\n sunk: %+v",
				workers, bare, sunk)
		}
		if len(bare.GEMMDone) != 4 || len(bare.CollectiveDone) != 4 || len(bare.PerDeviceDRAM) != 4 {
			t.Fatalf("workers=%d: per-device slices not fully populated: %+v", workers, bare)
		}
		for d := 0; d < 4; d++ {
			if bare.GEMMDone[d] <= 0 || bare.CollectiveDone[d] < bare.GEMMDone[d] {
				t.Errorf("workers=%d device %d: implausible times gemm=%v collective=%v",
					workers, d, bare.GEMMDone[d], bare.CollectiveDone[d])
			}
			if bare.PerDeviceDRAM[d].TotalBytes() == 0 {
				t.Errorf("workers=%d device %d: no DRAM traffic collected", workers, d)
			}
		}
		if bare.Skew() < 0 {
			t.Errorf("workers=%d: negative skew %v", workers, bare.Skew())
		}
		// The mirror methodology cross-check: the explicit run's completion
		// stays within the mirror tolerance whether or not a sink is attached.
		mo := parOptions(t, 512, 512, 256, 4)
		mirror, err := RunFusedGEMMRS(mo)
		if err != nil {
			t.Fatal(err)
		}
		rel := (float64(bare.Done) - float64(mirror.CollectiveDone)) / float64(bare.Done)
		if rel < -0.05 || rel > 0.05 {
			t.Errorf("workers=%d: explicit run drifted %v%% from mirror", workers, 100*rel)
		}
	}
}

// TestMultiDeviceTimelineMergeDeterministic is the timeline-merge satellite:
// the merged Perfetto trace — one track per device, stable ordering — must
// be byte-identical between the sequential path and the cluster path at any
// worker count.
func TestMultiDeviceTimelineMergeDeterministic(t *testing.T) {
	export := func(workers int) []byte {
		o := parOptions(t, 512, 512, 256, 4)
		o.ParWorkers = workers
		reg := metrics.NewRegistry()
		o.Metrics = reg
		if _, err := RunFusedGEMMRSMultiDevice(o); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := export(0)
	if len(want) == 0 {
		t.Fatal("empty trace from sequential run")
	}
	for _, workers := range []int{1, 2, 4} {
		if got := export(workers); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: merged timeline not byte-identical to sequential (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// TestMultiDeviceParallelStress hammers the window barrier and mailboxes
// through the full model — many devices, maximal workers — and doubles as
// the -race exercise for the whole t3core cluster path.
func TestMultiDeviceParallelStress(t *testing.T) {
	o := parOptions(t, 512, 512, 128, 8)
	want, err := RunFusedGEMMRSMultiDevice(o)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		po := o
		po.ParWorkers = 8
		got, err := RunFusedGEMMRSMultiDevice(po)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rep %d: nondeterministic parallel result", rep)
		}
	}
}
