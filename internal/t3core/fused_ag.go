package t3core

import (
	"fmt"

	"t3sim/internal/check"
	"t3sim/internal/gpu"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// This file implements the §7.1 collective variants of the fused runner:
// ring all-gather (a column-parallel producer's shard is distributed to all
// devices, no reductions) and all-to-all (the expert-parallel exchange of
// §7.2, where chunk j of the producer's output belongs to device j).
//
// Both reuse the single-GPU mirror methodology of RunFusedGEMMRS: the run
// models device 0 and generates incoming traffic by mirroring its own sends.

// RunFusedGEMMAG executes a fused GEMM→ring-all-gather: o.Grid is the
// producer's local shard (a column-parallel slice); as the GEMM produces
// shard tiles they are stored locally and remote-written to the next
// device, and every received tile is staged and forwarded hop by hop until
// all devices hold all shards. Stores are plain writes — the tracker's
// trigger condition is a single update per element (§7.1).
func RunFusedGEMMAG(o FusedOptions) (FusedResult, error) {
	if o.Collective != RingAllGather {
		return FusedResult{}, fmt.Errorf("t3core: RunFusedGEMMAG needs Collective=RingAllGather, got %v", o.Collective)
	}
	if err := validateFusedCommon(o); err != nil {
		return FusedResult{}, err
	}
	if !o.Topo.IsZero() && o.Topo.Kind != interconnect.TopoRing {
		return FusedResult{}, fmt.Errorf("t3core: single-GPU mirror runs model the ring implicitly; got a %v topology", o.Topo.Kind)
	}
	r := &agRun{o: o, eng: sim.NewEngine()}
	return r.run()
}

// RunFusedGEMMAllToAll executes a fused GEMM→all-to-all: chunk j of the
// producer's output is remote-written directly to device j as it is
// produced; the owned chunk is stored locally; nothing is reduced or
// forwarded (§7.1, §7.2 expert parallelism).
func RunFusedGEMMAllToAll(o FusedOptions) (FusedResult, error) {
	if o.Collective != AllToAll {
		return FusedResult{}, fmt.Errorf("t3core: RunFusedGEMMAllToAll needs Collective=AllToAll, got %v", o.Collective)
	}
	if err := validateFusedCommon(o); err != nil {
		return FusedResult{}, err
	}
	if !o.Topo.IsZero() && o.Topo.Kind != interconnect.TopoRing {
		return FusedResult{}, fmt.Errorf("t3core: single-GPU mirror runs model the ring implicitly; got a %v topology", o.Topo.Kind)
	}
	r := &a2aRun{o: o, eng: sim.NewEngine()}
	return r.run()
}

// validateFusedCommon checks the option fields shared by all fused runners.
func validateFusedCommon(o FusedOptions) error {
	if err := o.GPU.Validate(); err != nil {
		return err
	}
	if err := o.Memory.Validate(); err != nil {
		return err
	}
	if err := o.Link.Validate(); err != nil {
		return err
	}
	if err := o.Tracker.Validate(); err != nil {
		return err
	}
	if o.Devices < 2 {
		return fmt.Errorf("t3core: fused run needs >= 2 devices, got %d", o.Devices)
	}
	if err := o.Grid.Shape.Validate(); err != nil {
		return err
	}
	if err := o.Grid.Tiling.Validate(); err != nil {
		return err
	}
	if o.Grid.Tiling.SplitK != 1 {
		return fmt.Errorf("t3core: fused all-gather/all-to-all support SplitK=1 only")
	}
	tiles := o.Grid.NumWFs()
	if tiles < o.Devices {
		return fmt.Errorf("t3core: %d wavefront tiles cannot chunk across %d devices", tiles, o.Devices)
	}
	return o.validateTopo()
}

// validateTopo checks the optional topology spec against the run's shape.
// The zero spec (the legacy-ring sentinel) is always valid.
func (o FusedOptions) validateTopo() error {
	if o.Topo.IsZero() {
		return nil
	}
	if err := o.Topo.Validate(); err != nil {
		return err
	}
	if o.Topo.Devices != o.Devices {
		return fmt.Errorf("t3core: %d-device topology for a %d-device run", o.Topo.Devices, o.Devices)
	}
	return nil
}

// newArbiter builds the configured arbitration policy.
func newArbiter(a Arbitration) (memory.Arbiter, error) {
	switch a {
	case ArbRoundRobin:
		return &memory.RoundRobin{}, nil
	case ArbMCA:
		return memory.NewMCA(memory.DefaultMCAConfig()), nil
	case ArbComputeFirst:
		return memory.ComputeFirst{}, nil
	default:
		return nil, fmt.Errorf("t3core: unknown arbitration %v", a)
	}
}

// agRun is the fused all-gather mirror run. The producer's shard has T
// tiles; hop h ∈ 1..n-1 of tile t is the copy of some shard arriving after
// h ring hops. Virtual tile ids t + h·T keep the hops distinct in the
// tracker and DMA table.
type agRun struct {
	o    FusedOptions
	eng  *sim.Engine
	mem  *memory.Controller
	link *interconnect.Link
	trk  *Tracker
	dma  *DMATable

	tileBytes  units.Bytes
	shardTiles int
	wgCursor   int

	done   *sim.Fence
	result FusedResult
	err    error

	ledger *check.Ledger // wire-byte conservation witness (nil-safe)

	tilesBuf []int   // writeStage scratch, reused across stages
	agOps    []*agOp // freelist for link-delivery callbacks
}

// agOp carries one tile across a link delivery: production sends arrive as
// hop 1, forwarded DMAs as hop+1. Pooled; see fused_ops.go for the pattern.
type agOp struct {
	r         *agRun
	t, hop    int
	bytes     units.Bytes
	readDone  sim.Handler // prebuilt: forward-read complete → inject + send
	delivered sim.Handler // prebuilt: delivery → arrive(t, hop)
}

func (op *agOp) onRead() {
	r := op.r
	r.ledger.Add(int64(op.bytes))
	r.link.Send(op.bytes, op.delivered)
}

func (op *agOp) onDelivered() {
	r := op.r
	r.ledger.Sub(r.eng.Now(), int64(op.bytes))
	r.arrive(op.t, op.hop)
	r.agOps = append(r.agOps, op)
}

func (r *agRun) getAgOp(t, hop int, bytes units.Bytes) *agOp {
	if ln := len(r.agOps); ln > 0 {
		op := r.agOps[ln-1]
		r.agOps[ln-1] = nil
		r.agOps = r.agOps[:ln-1]
		op.t, op.hop, op.bytes = t, hop, bytes
		return op
	}
	op := &agOp{r: r, t: t, hop: hop, bytes: bytes}
	op.readDone = op.onRead
	op.delivered = op.onDelivered
	return op
}

// Complete implements memory.Completion: one hop's arriving tile has been
// staged in local memory; the tag carries its virtual (hop-encoded) id.
func (r *agRun) Complete(tag memory.Tag) {
	id := TileID{WG: tag.WG, WF: tag.WF}
	if err := r.trk.Observe(id, r.tileBytes); err != nil && r.err == nil {
		r.err = err
	}
	r.done.Done()
}

func (r *agRun) run() (FusedResult, error) {
	o := r.o
	if o.Metrics != nil && o.Memory.Metrics == nil {
		o.Memory.Metrics = o.Metrics
	}
	if o.Check != nil && o.Memory.Check == nil {
		o.Memory.Check = o.Check
	}
	r.eng.AttachChecker(o.Check)
	if o.Check != nil {
		r.ledger = o.Check.Ledger("t3core.ag.ring")
	}
	arb, err := newArbiter(o.Arbitration)
	if err != nil {
		return FusedResult{}, err
	}
	mc, err := memory.NewController(r.eng, o.Memory, arb)
	if err != nil {
		return FusedResult{}, err
	}
	r.mem = mc
	if o.Observer != nil {
		mc.SetObserver(o.Observer)
	}
	link, err := interconnect.NewLink(r.eng, o.Link)
	if err != nil {
		return FusedResult{}, err
	}
	link.AttachMetrics(o.Metrics, "fwd0")
	if o.Check != nil {
		link.AttachChecker(o.Check, "fwd0")
	}
	r.link = link

	r.tileBytes = o.Grid.WFTileBytes()
	r.shardTiles = o.Grid.NumWFs()
	n := o.Devices

	trk, err := NewTracker(o.Tracker)
	if err != nil {
		return FusedResult{}, err
	}
	r.trk = trk
	r.dma = NewDMATable()
	// Hops 1..n-2 forward onward; hop n-1 is final. All stores are writes
	// with one expected update per element (§7.1).
	for h := 1; h < n-1; h++ {
		for t := 0; t < r.shardTiles; t++ {
			id := r.tileID(t, h)
			if err := r.dma.Program(id, DMACommand{
				DestDevice: 1, Op: memory.Write, Bytes: r.tileBytes,
			}); err != nil {
				return FusedResult{}, err
			}
		}
	}
	if err := trk.SetProgram(Program{
		WFTileBytes:       r.tileBytes,
		UpdatesPerElement: 1,
		OnReady:           r.onReady,
	}); err != nil {
		return FusedResult{}, err
	}

	// Completion: every hop's arrivals staged — (n-1) shards of T tiles.
	r.done = sim.NewFence((n-1)*r.shardTiles, func() {
		r.result.CollectiveDone = r.eng.Now()
		r.mem.WhenIdle(memory.StreamComm, func() { r.result.Done = r.eng.Now() })
	})

	kernel := &gpu.GEMMKernel{
		Eng:               r.eng,
		Mem:               mc,
		GPU:               o.GPU,
		Grid:              o.Grid,
		CUs:               o.GEMMCUs,
		OutputBypassesLLC: true,
		Monitor:           o.Arbitration == ArbMCA,
		WriteStage:        r.writeStage,
		DoubleBuffered:    o.DoubleBufferedGEMM,
		Metrics:           o.Metrics,
	}
	if err := kernel.Start(func() { r.result.GEMMDone = r.eng.Now() }); err != nil {
		return FusedResult{}, err
	}
	wall := r.eng.Run()
	r.endChecks(wall)
	if r.err != nil {
		return FusedResult{}, r.err
	}
	if !r.done.Fired() {
		return FusedResult{}, fmt.Errorf("t3core: fused all-gather stalled: %d arrivals outstanding", r.done.Remaining())
	}
	r.result.DRAM = *mc.Counters()
	r.result.LinkBytes = link.SentBytes()
	r.result.TrackerMaxLive = trk.MaxLive()
	r.result.DMATriggered = r.dma.Triggered()
	if mca, ok := arb.(*memory.MCA); ok {
		r.result.MCAThreshold = mca.Threshold()
	}
	r.result.StageReads = kernel.StageReads()
	return r.result, nil
}

// endChecks applies the all-gather's end-of-run laws.
func (r *agRun) endChecks(wall units.Time) {
	c := r.o.Check
	if !c.Enabled() {
		return
	}
	r.ledger.Close(wall)
	if live := r.trk.Live(); live != 0 {
		c.Violationf(wall, "t3core.ag.tracker", check.RuleConservation+"/drain",
			"%d live entries after drain, want 0", live)
	}
	if fired, want := r.trk.Fired(), int64((r.o.Devices-1)*r.shardTiles); fired != want {
		c.Violationf(wall, "t3core.ag.tracker", check.RuleConservation+"/fired",
			"%d tiles fired, want %d", fired, want)
	}
	if ml, limit := r.trk.MaxLive(), r.trk.Capacity(); ml > limit {
		c.Violationf(wall, "t3core.ag.tracker", check.RuleBound+"/occupancy",
			"%d live entries exceed sets×ways = %d", ml, limit)
	}
	if r.result.Done < r.result.CollectiveDone {
		c.Violationf(wall, "t3core.ag.spans", check.RuleOrdering+"/nesting",
			"drain done %v before collective done %v", r.result.Done, r.result.CollectiveDone)
	}
	if busy := r.link.BusyTime(); busy > wall {
		c.Violationf(wall, "t3core.ag.link", check.RuleBound+"/busy-time",
			"link busy %v exceeds wall time %v", busy, wall)
	}
}

func (r *agRun) tileID(t, hop int) TileID {
	g := hop*r.shardTiles + t
	return TileID{WG: g / 8, WF: g % 8}
}

// writeStage routes the producer's shard tiles: store locally (the shard is
// part of the device's own gathered output) and remote-write to the next
// device. The mirrored delivery is the previous neighbor's shard arriving
// as hop 1.
func (r *agRun) writeStage(_, wgs int, _ units.Bytes, onDone sim.Handler) {
	til := r.o.Grid.Tiling
	w0 := r.wgCursor
	r.wgCursor += wgs
	tiles := r.tilesBuf[:0]
	for w := w0; w < w0+wgs; w++ {
		for wf := 0; wf < til.WFPerWG; wf++ {
			if t := w*til.WFPerWG + wf; t < r.shardTiles {
				tiles = append(tiles, t)
			}
		}
	}
	r.tilesBuf = tiles
	fence := sim.NewFence(len(tiles), onDone)
	cb := &fenceCB{fence: fence} // one per stage, amortized over its tiles
	for _, t := range tiles {
		r.mem.TransferTo(memory.Write, memory.StreamCompute, r.tileBytes,
			memory.Tag{WG: t / 8, WF: t % 8}, cb)
		r.ledger.Add(int64(r.tileBytes))
		op := r.getAgOp(t, 1, r.tileBytes)
		r.link.Send(r.tileBytes, op.delivered)
	}
}

// arrive stages one hop's arriving tile; the Complete receiver lets the
// tracker trigger the forward.
func (r *agRun) arrive(t, hop int) {
	id := r.tileID(t, hop)
	r.mem.TransferTo(memory.Write, memory.StreamComm, r.tileBytes,
		memory.Tag{WG: id.WG, WF: id.WF}, r)
}

// onReady forwards a staged tile to the next device (hops 1..n-2); the
// mirrored delivery is the same tile arriving here as hop+1.
func (r *agRun) onReady(id TileID) {
	cmd, ok := r.dma.MarkReady(id)
	if !ok {
		return // final hop: nothing to forward
	}
	g := id.WG*8 + id.WF
	hop := g / r.shardTiles
	t := g % r.shardTiles
	op := r.getAgOp(t, hop+1, cmd.Bytes)
	r.mem.Transfer(memory.Read, memory.StreamComm, cmd.Bytes,
		memory.Tag{WG: id.WG, WF: id.WF}, op.readDone)
}

// a2aRun is the fused all-to-all mirror run: chunk j of the output goes to
// device j; no reductions, no forwarding.
type a2aRun struct {
	o    FusedOptions
	eng  *sim.Engine
	mem  *memory.Controller
	link *interconnect.Link

	tileBytes  units.Bytes
	totalTiles int
	phaseStart []int
	wgCursor   int

	done   *sim.Fence
	result FusedResult

	ledger *check.Ledger // wire-byte conservation witness (nil-safe)

	tilesBuf []int    // writeStage scratch, reused across stages
	a2aOps   []*a2aOp // freelist for link-delivery callbacks
}

// a2aOp carries one remote-written tile across its link delivery.
type a2aOp struct {
	r         *a2aRun
	t         int
	delivered sim.Handler
}

func (op *a2aOp) onDelivered() {
	r := op.r
	r.ledger.Sub(r.eng.Now(), int64(r.tileBytes))
	r.mem.TransferTo(memory.Write, memory.StreamComm, r.tileBytes,
		memory.Tag{WG: op.t / 8, WF: op.t % 8}, r)
	r.a2aOps = append(r.a2aOps, op)
}

func (r *a2aRun) getA2AOp(t int) *a2aOp {
	if ln := len(r.a2aOps); ln > 0 {
		op := r.a2aOps[ln-1]
		r.a2aOps[ln-1] = nil
		r.a2aOps = r.a2aOps[:ln-1]
		op.t = t
		return op
	}
	op := &a2aOp{r: r, t: t}
	op.delivered = op.onDelivered
	return op
}

// Complete implements memory.Completion: a mirrored peer tile for my chunk
// has been written locally.
func (r *a2aRun) Complete(memory.Tag) { r.done.Done() }

// a2aStageCB completes one stage's owned-chunk local stores: each store
// credits the stage fence and the run's completion fence.
type a2aStageCB struct {
	r     *a2aRun
	fence *sim.Fence
}

// Complete implements memory.Completion.
func (s *a2aStageCB) Complete(memory.Tag) {
	s.fence.Done()
	s.r.done.Done()
}

func (r *a2aRun) run() (FusedResult, error) {
	o := r.o
	if o.Metrics != nil && o.Memory.Metrics == nil {
		o.Memory.Metrics = o.Metrics
	}
	if o.Check != nil && o.Memory.Check == nil {
		o.Memory.Check = o.Check
	}
	r.eng.AttachChecker(o.Check)
	if o.Check != nil {
		r.ledger = o.Check.Ledger("t3core.a2a.ring")
	}
	arb, err := newArbiter(o.Arbitration)
	if err != nil {
		return FusedResult{}, err
	}
	mc, err := memory.NewController(r.eng, o.Memory, arb)
	if err != nil {
		return FusedResult{}, err
	}
	r.mem = mc
	if o.Observer != nil {
		mc.SetObserver(o.Observer)
	}
	link, err := interconnect.NewLink(r.eng, o.Link)
	if err != nil {
		return FusedResult{}, err
	}
	link.AttachMetrics(o.Metrics, "fwd0")
	if o.Check != nil {
		link.AttachChecker(o.Check, "fwd0")
	}
	r.link = link

	r.tileBytes = o.Grid.WFTileBytes()
	r.totalTiles = o.Grid.NumWFs()
	n := o.Devices
	r.phaseStart = make([]int, n+1)
	for p := 0; p <= n; p++ {
		r.phaseStart[p] = p * r.totalTiles / n
	}
	// Completion: the owned chunk stored + every peer's chunk received.
	owned := r.phaseStart[n] - r.phaseStart[n-1]
	incoming := r.totalTiles - owned
	r.done = sim.NewFence(owned+incoming, func() {
		r.result.CollectiveDone = r.eng.Now()
		r.mem.WhenIdle(memory.StreamComm, func() { r.result.Done = r.eng.Now() })
	})

	kernel := &gpu.GEMMKernel{
		Eng:               r.eng,
		Mem:               mc,
		GPU:               o.GPU,
		Grid:              o.Grid,
		CUs:               o.GEMMCUs,
		OutputBypassesLLC: true,
		Monitor:           o.Arbitration == ArbMCA,
		WriteStage:        r.writeStage,
		DoubleBuffered:    o.DoubleBufferedGEMM,
		Metrics:           o.Metrics,
	}
	if err := kernel.Start(func() { r.result.GEMMDone = r.eng.Now() }); err != nil {
		return FusedResult{}, err
	}
	wall := r.eng.Run()
	r.endChecks(wall)
	if !r.done.Fired() {
		return FusedResult{}, fmt.Errorf("t3core: fused all-to-all stalled: %d outstanding", r.done.Remaining())
	}
	r.result.DRAM = *mc.Counters()
	r.result.LinkBytes = link.SentBytes()
	if mca, ok := arb.(*memory.MCA); ok {
		r.result.MCAThreshold = mca.Threshold()
	}
	r.result.StageReads = kernel.StageReads()
	return r.result, nil
}

// endChecks applies the all-to-all's end-of-run laws (no tracker: nothing is
// reduced or forwarded, so only the wire ledger and timing laws apply).
func (r *a2aRun) endChecks(wall units.Time) {
	c := r.o.Check
	if !c.Enabled() {
		return
	}
	r.ledger.Close(wall)
	if r.result.Done < r.result.CollectiveDone {
		c.Violationf(wall, "t3core.a2a.spans", check.RuleOrdering+"/nesting",
			"drain done %v before collective done %v", r.result.Done, r.result.CollectiveDone)
	}
	if busy := r.link.BusyTime(); busy > wall {
		c.Violationf(wall, "t3core.a2a.link", check.RuleBound+"/busy-time",
			"link busy %v exceeds wall time %v", busy, wall)
	}
}

// writeStage routes each tile: the last chunk (production order) stays
// local ("the owned chunk is produced last", mirroring the RS staggering);
// every other chunk's tiles are remote-written to their owner, and the
// mirrored delivery is a peer's tile for my chunk arriving.
func (r *a2aRun) writeStage(_, wgs int, _ units.Bytes, onDone sim.Handler) {
	til := r.o.Grid.Tiling
	n := r.o.Devices
	w0 := r.wgCursor
	r.wgCursor += wgs
	tiles := r.tilesBuf[:0]
	for w := w0; w < w0+wgs; w++ {
		for wf := 0; wf < til.WFPerWG; wf++ {
			if t := w*til.WFPerWG + wf; t < r.totalTiles {
				tiles = append(tiles, t)
			}
		}
	}
	r.tilesBuf = tiles
	local := 0
	for _, t := range tiles {
		if t >= r.phaseStart[n-1] {
			local++
		}
	}
	fence := sim.NewFence(local, onDone)
	cb := &a2aStageCB{r: r, fence: fence} // one per stage, amortized
	for _, t := range tiles {
		if t >= r.phaseStart[n-1] {
			// Owned chunk: plain local store.
			r.mem.TransferTo(memory.Write, memory.StreamCompute, r.tileBytes,
				memory.Tag{WG: t / 8, WF: t % 8}, cb)
			continue
		}
		// Remote-mapped: not written locally at all (§7.1). The mirror is a
		// peer's tile for my inbound region arriving as a comm-stream write.
		r.ledger.Add(int64(r.tileBytes))
		op := r.getA2AOp(t)
		r.link.Send(r.tileBytes, op.delivered)
	}
}
