package t3core

import (
	"testing"

	"t3sim/internal/units"
)

func TestEventLogBasics(t *testing.T) {
	l := &EventLog{}
	l.Record(Event{At: 10, Kind: EventStageComputed, Stage: 0})
	l.Record(Event{At: 20, Kind: EventDMATriggered, Tile: TileID{WG: 1}})
	l.Record(Event{At: 30, Kind: EventDMATriggered, Tile: TileID{WG: 2}})
	if l.Count(EventDMATriggered) != 2 || l.Count(EventGEMMDone) != 0 {
		t.Error("Count wrong")
	}
	if e, ok := l.First(EventDMATriggered); !ok || e.At != 20 {
		t.Errorf("First = %+v %v", e, ok)
	}
	if e, ok := l.Last(EventDMATriggered); !ok || e.At != 30 {
		t.Errorf("Last = %+v %v", e, ok)
	}
	if _, ok := l.First(EventGEMMDone); ok {
		t.Error("First should miss")
	}
	if _, ok := l.Last(EventGEMMDone); ok {
		t.Error("Last should miss")
	}
	if len(l.Events()) != 3 {
		t.Error("Events wrong")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EventStageComputed, EventRemoteWrite, EventDMATriggered,
		EventOwnedTileDone, EventGEMMDone, EventCollectiveDone, EventKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for %d", int(k))
		}
	}
}

func TestFusedRunEmitsCoherentEvents(t *testing.T) {
	o := fusedOpts(t, 4)
	log := &EventLog{}
	o.Events = log
	res, err := RunFusedGEMMRS(o)
	if err != nil {
		t.Fatal(err)
	}
	tiles := o.Grid.NumWFs()

	// Structural counts: one stage event per stage, remote writes for phase
	// 0's tiles, DMA triggers for phases 1..n-2, owned completions for the
	// last phase, and exactly one GEMM/collective completion each.
	if got := log.Count(EventRemoteWrite); got != tiles/4 {
		t.Errorf("remote writes = %d, want %d", got, tiles/4)
	}
	if got := log.Count(EventDMATriggered); got != tiles/2 {
		t.Errorf("DMA triggers = %d, want %d", got, tiles/2)
	}
	if got := log.Count(EventOwnedTileDone); got != tiles/4 {
		t.Errorf("owned completions = %d, want %d", got, tiles/4)
	}
	if log.Count(EventGEMMDone) != 1 || log.Count(EventCollectiveDone) != 1 {
		t.Error("completion events wrong")
	}

	// Temporal coherence: events are monotone; the first remote write
	// precedes the first DMA; completions match the result times.
	var prev units.Time
	for i, e := range log.Events() {
		if e.At < prev {
			t.Fatalf("event %d went back in time: %v < %v", i, e.At, prev)
		}
		prev = e.At
	}
	fw, _ := log.First(EventRemoteWrite)
	fd, ok := log.First(EventDMATriggered)
	if !ok || fw.At > fd.At {
		t.Errorf("first remote write %v after first DMA %v", fw.At, fd.At)
	}
	if g, _ := log.First(EventGEMMDone); g.At != res.GEMMDone {
		t.Errorf("GEMM event at %v, result says %v", g.At, res.GEMMDone)
	}
	if c, _ := log.First(EventCollectiveDone); c.At != res.CollectiveDone {
		t.Errorf("collective event at %v, result says %v", c.At, res.CollectiveDone)
	}
	// DMA trigger count matches the result's counter.
	if int64(log.Count(EventDMATriggered)) != res.DMATriggered {
		t.Error("event count disagrees with result counter")
	}
}

func TestFusedRunWithoutEventLog(t *testing.T) {
	// No sink attached: runs fine, nothing recorded.
	o := fusedOpts(t, 4)
	if _, err := RunFusedGEMMRS(o); err != nil {
		t.Fatal(err)
	}
}
