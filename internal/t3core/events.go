package t3core

import (
	"fmt"

	"t3sim/internal/units"
)

// EventKind classifies fused-run events for observability.
type EventKind int

// Event kinds, in the rough order they occur per phase.
const (
	// EventStageComputed fires when a GEMM stage's MACs finish.
	EventStageComputed EventKind = iota
	// EventRemoteWrite fires when a remote-mapped tile leaves on the link.
	EventRemoteWrite
	// EventDMATriggered fires when the tracker triggers a tile's DMA.
	EventDMATriggered
	// EventOwnedTileDone fires when an owned-chunk tile completes.
	EventOwnedTileDone
	// EventGEMMDone fires when the producer kernel finishes.
	EventGEMMDone
	// EventCollectiveDone fires when the device's collective completes.
	EventCollectiveDone
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventStageComputed:
		return "stage-computed"
	case EventRemoteWrite:
		return "remote-write"
	case EventDMATriggered:
		return "dma-triggered"
	case EventOwnedTileDone:
		return "owned-tile-done"
	case EventGEMMDone:
		return "gemm-done"
	case EventCollectiveDone:
		return "collective-done"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one observability record from a fused run.
type Event struct {
	At   units.Time
	Kind EventKind
	// Stage is the GEMM stage (EventStageComputed only).
	Stage int
	// Tile identifies the wavefront tile (tile-scoped events).
	Tile TileID
}

// EventLog collects fused-run events. It implements the FusedOptions
// EventSink contract and offers simple summaries.
type EventLog struct {
	events []Event
}

// Record appends one event.
func (l *EventLog) Record(e Event) { l.events = append(l.events, e) }

// Events returns the recorded sequence.
func (l *EventLog) Events() []Event { return l.events }

// Count returns how many events of a kind were recorded.
func (l *EventLog) Count(kind EventKind) int {
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// First returns the earliest event of a kind (ok=false if none).
func (l *EventLog) First(kind EventKind) (Event, bool) {
	for _, e := range l.events {
		if e.Kind == kind {
			return e, true
		}
	}
	return Event{}, false
}

// Last returns the latest event of a kind (ok=false if none).
func (l *EventLog) Last(kind EventKind) (Event, bool) {
	for i := len(l.events) - 1; i >= 0; i-- {
		if l.events[i].Kind == kind {
			return l.events[i], true
		}
	}
	return Event{}, false
}
