package t3core

import (
	"fmt"
	"math/rand"

	"t3sim/internal/collective"
	"t3sim/internal/units"
)

// FunctionalResult reports what the functional fused run did, so tests can
// check the hardware-budget and protocol invariants alongside the data.
type FunctionalResult struct {
	// Buffers are the per-device NMC accumulation buffers after the run;
	// device d's owned chunk region holds the fully reduced data.
	Buffers [][]float32
	// TrackerMaxLive is the per-device high-water mark of live tracker
	// entries (must stay within the 19 KB hardware budget).
	TrackerMaxLive []int
	// TrackerFired counts completed tiles per device.
	TrackerFired []int64
	// DMATriggered counts DMA commands consumed per device.
	DMATriggered []int64
	// RemoteWrites counts remote-mapped tile stores per device.
	RemoteWrites []int64
}

// funcDevice is one device's state in the functional protocol run.
type funcDevice struct {
	id      int
	amap    AddressMap
	tracker *Tracker
	dma     *DMATable
	buffer  []float32
	// phaseOfChunk inverts the address map: which phase produces a chunk.
	phaseOfChunk []int
	// tileBase[p] is the production-order index of phase p's first tile.
	tileBase []int
}

// RunFunctionalFusedReduceScatter executes the complete T3 fused
// GEMM→ring-reduce-scatter protocol on real data: every device "produces"
// its contribution tile by tile in the §4.4 staggered phase order; stores
// are routed by the address map (remote_map for phase 0, local NMC updates
// otherwise); the per-device trackers count local and incoming updates; and
// triggered DMAs forward partially reduced tiles around the ring. Tile
// production order within each phase is shuffled by seed to exercise
// order-independence.
//
// contributions[d] is device d's partial GEMM output (full length). After
// the run, device d's buffer holds the complete sum over its owned chunk —
// the reduce-scatter postcondition, verified against
// collective.ReferenceAllReduce by the tests.
func RunFunctionalFusedReduceScatter(contributions [][]float32, tileElems int, seed int64) (*FunctionalResult, error) {
	n := len(contributions)
	if n < 2 {
		return nil, fmt.Errorf("t3core: need >= 2 devices, got %d", n)
	}
	length := len(contributions[0])
	for d, c := range contributions {
		if len(c) != length {
			return nil, fmt.Errorf("t3core: device %d has %d elements, want %d", d, len(c), length)
		}
	}
	if tileElems <= 0 {
		return nil, fmt.Errorf("t3core: tileElems = %d", tileElems)
	}
	bounds := collective.ChunkBounds(length, n)
	rng := rand.New(rand.NewSource(seed))

	devs := make([]*funcDevice, n)
	for d := 0; d < n; d++ {
		fd, err := newFuncDevice(d, n, bounds, tileElems)
		if err != nil {
			return nil, err
		}
		devs[d] = fd
	}
	// Wire each tracker's trigger to its DMA table and the ring.
	var protoErr error
	fail := func(err error) {
		if protoErr == nil && err != nil {
			protoErr = err
		}
	}
	res := &FunctionalResult{
		Buffers:        make([][]float32, n),
		TrackerMaxLive: make([]int, n),
		TrackerFired:   make([]int64, n),
		DMATriggered:   make([]int64, n),
		RemoteWrites:   make([]int64, n),
	}
	for d := 0; d < n; d++ {
		d := d
		fd := devs[d]
		fd.tracker.prog.OnReady = func(id TileID) {
			cmd, ok := fd.dma.MarkReady(id)
			if !ok {
				return // owned-chunk tile: completion, nothing to forward
			}
			fail(deliverTile(devs, d, cmd.DestDevice, id, bounds, tileElems))
		}
	}

	// Produce: phases advance in lockstep; within a phase, devices and tiles
	// interleave in shuffled order (the protocol is order-independent).
	for p := 0; p < n; p++ {
		type job struct{ dev, tile int }
		var jobs []job
		for d := 0; d < n; d++ {
			for i := 0; i < devs[d].tilesInPhase(p, bounds, tileElems); i++ {
				jobs = append(jobs, job{d, i})
			}
		}
		rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
		for _, j := range jobs {
			if err := produceTile(devs, contributions, j.dev, p, j.tile, bounds, tileElems, res); err != nil {
				return nil, err
			}
			if protoErr != nil {
				return nil, protoErr
			}
		}
	}
	if protoErr != nil {
		return nil, protoErr
	}

	for d := 0; d < n; d++ {
		res.Buffers[d] = devs[d].buffer
		res.TrackerMaxLive[d] = devs[d].tracker.MaxLive()
		res.TrackerFired[d] = devs[d].tracker.Fired()
		res.DMATriggered[d] = devs[d].dma.Triggered()
		if pending := devs[d].dma.Pending(); pending != 0 {
			return nil, fmt.Errorf("t3core: device %d finished with %d DMA commands pending", d, pending)
		}
		if live := devs[d].tracker.Live(); live != 0 {
			return nil, fmt.Errorf("t3core: device %d finished with %d live tracker entries", d, live)
		}
	}
	return res, nil
}

func newFuncDevice(d, n int, bounds [][2]int, tileElems int) (*funcDevice, error) {
	amap := RingReduceScatterMap(d, n)
	if err := amap.Validate(); err != nil {
		return nil, err
	}
	tr, err := NewTracker(DefaultTrackerConfig())
	if err != nil {
		return nil, err
	}
	length := bounds[len(bounds)-1][1]
	fd := &funcDevice{
		id:           d,
		amap:         amap,
		tracker:      tr,
		dma:          NewDMATable(),
		buffer:       make([]float32, length),
		phaseOfChunk: make([]int, n),
		tileBase:     make([]int, n+1),
	}
	// UpdatesPerElement is uniform (2) across tracked phases for ring-RS;
	// boundary tiles get their exact driver-computed size.
	if err := tr.SetProgram(Program{
		WFTileBytes:       units.Bytes(tileElems) * 4, // float32 elements
		UpdatesPerElement: 2,
		TileBytes: func(id TileID) units.Bytes {
			p, i := fd.tileLoc(id)
			lo, hi := tileRange(bounds[fd.amap.Phases[p].Chunk], i, tileElems)
			return units.Bytes(hi-lo) * 4
		},
	}); err != nil {
		return nil, err
	}
	for _, pm := range amap.Phases {
		fd.phaseOfChunk[pm.Chunk] = pm.Phase
	}
	for p := 0; p < n; p++ {
		fd.tileBase[p+1] = fd.tileBase[p] + fd.tilesInPhase(p, bounds, tileElems)
	}
	// Pre-program the DMA commands for dma_mapped phases (§4.4 setup).
	for _, pm := range amap.Phases {
		if pm.Treatment != TreatDMA {
			continue
		}
		for i := 0; i < fd.tilesInPhase(pm.Phase, bounds, tileElems); i++ {
			lo, hi := tileRange(bounds[pm.Chunk], i, tileElems)
			err := fd.dma.Program(fd.tileID(pm.Phase, i), DMACommand{
				DestDevice: pm.Dest,
				Op:         pm.Op,
				Bytes:      units.Bytes(hi-lo) * 4,
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return fd, nil
}

// tilesInPhase returns how many tiles the phase's chunk splits into.
func (fd *funcDevice) tilesInPhase(p int, bounds [][2]int, tileElems int) int {
	b := bounds[fd.amap.Phases[p].Chunk]
	sz := b[1] - b[0]
	return (sz + tileElems - 1) / tileElems
}

// tileID maps a (phase, tile) to the device's production-order tracker
// identity: consecutive tiles fill the 8 wavefront slots of successive WGs.
func (fd *funcDevice) tileID(p, i int) TileID {
	g := fd.tileBase[p] + i
	return TileID{WG: g / 8, WF: g % 8}
}

// tileLoc inverts tileID.
func (fd *funcDevice) tileLoc(id TileID) (phase, tile int) {
	g := id.WG*8 + id.WF
	p := 0
	for fd.tileBase[p+1] <= g {
		p++
	}
	return p, g - fd.tileBase[p]
}

// tileRange returns the element range of tile i within a chunk's bounds.
func tileRange(b [2]int, i, tileElems int) (lo, hi int) {
	lo = b[0] + i*tileElems
	hi = lo + tileElems
	if hi > b[1] {
		hi = b[1]
	}
	return lo, hi
}

// produceTile models device d's GEMM writing one tile of its phase-p chunk.
func produceTile(devs []*funcDevice, contributions [][]float32, d, p, i int, bounds [][2]int, tileElems int, res *FunctionalResult) error {
	fd := devs[d]
	pm := fd.amap.Phases[p]
	lo, hi := tileRange(bounds[pm.Chunk], i, tileElems)
	switch pm.Treatment {
	case TreatRemote:
		// remote_map: stores update the peer's memory directly; the peer's
		// tracker counts them against the peer's own tile identity.
		res.RemoteWrites[d]++
		dst := devs[pm.Dest]
		for e := lo; e < hi; e++ {
			dst.buffer[e] += contributions[d][e]
		}
		q := dst.phaseOfChunk[pm.Chunk]
		return dst.tracker.Observe(dst.tileID(q, i), units.Bytes(hi-lo)*4)
	case TreatDMA, TreatLocalFinal:
		// Local NMC update; the local tracker counts it.
		for e := lo; e < hi; e++ {
			fd.buffer[e] += contributions[d][e]
		}
		return fd.tracker.Observe(fd.tileID(p, i), units.Bytes(hi-lo)*4)
	default:
		return fmt.Errorf("t3core: unknown treatment %v", pm.Treatment)
	}
}

// deliverTile performs a triggered DMA: the partially reduced tile in the
// source buffer updates the destination's memory, and the destination's
// tracker counts the incoming update.
func deliverTile(devs []*funcDevice, src, dst int, id TileID, bounds [][2]int, tileElems int) error {
	fd := devs[src]
	p, i := fd.tileLoc(id)
	chunk := fd.amap.Phases[p].Chunk
	lo, hi := tileRange(bounds[chunk], i, tileElems)

	dd := devs[dst]
	for e := lo; e < hi; e++ {
		dd.buffer[e] += fd.buffer[e]
	}
	q := dd.phaseOfChunk[chunk]
	return dd.tracker.Observe(dd.tileID(q, i), units.Bytes(hi-lo)*4)
}
