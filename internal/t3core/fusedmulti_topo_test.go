package t3core

import (
	"strings"
	"testing"

	"t3sim/internal/interconnect"
)

// topoFusedOpts returns the standard 8-device fused options routed over spec.
func topoFusedOpts(t *testing.T, spec interconnect.TopoSpec) FusedOptions {
	t.Helper()
	o := fusedOpts(t, spec.Devices)
	o.Topo = spec
	return o
}

// topoTestSpecs is the graph ladder the multi-device topo tests sweep.
func topoTestSpecs(t *testing.T) []interconnect.TopoSpec {
	t.Helper()
	link := interconnect.DefaultConfig()
	inter := link
	inter.LinkBandwidth = link.LinkBandwidth / 3
	inter.LinkLatency = 4 * link.LinkLatency
	return []interconnect.TopoSpec{
		interconnect.RingTopo(8, link),
		interconnect.TorusTopo(2, 4, link),
		interconnect.SwitchTopo(8, link),
		interconnect.HierarchicalTopo(2, 4, link, inter),
	}
}

func TestMultiDeviceTopoRingMatchesLegacy(t *testing.T) {
	// An explicit ring TopoSpec must reproduce the legacy implicit-ring run
	// exactly: same routes, same link order, same arbitration — the
	// byte-identity the zero-value Topo contract promises.
	legacy, err := RunFusedGEMMRSMultiDevice(fusedOpts(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	ring, err := RunFusedGEMMRSMultiDevice(topoFusedOpts(t, interconnect.RingTopo(8, interconnect.DefaultConfig())))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Done != ring.Done || legacy.LinkBytes != ring.LinkBytes {
		t.Fatalf("explicit ring differs from legacy: done %v vs %v, link bytes %v vs %v",
			legacy.Done, ring.Done, legacy.LinkBytes, ring.LinkBytes)
	}
	for d := range legacy.CollectiveDone {
		if legacy.CollectiveDone[d] != ring.CollectiveDone[d] {
			t.Fatalf("device %d: collective done %v vs %v", d, legacy.CollectiveDone[d], ring.CollectiveDone[d])
		}
	}
}

func TestMultiDeviceTopoParallelMatchesSequential(t *testing.T) {
	// On every graph, the conservative-parallel cluster run must be
	// byte-identical to the sequential shared-engine run at every worker
	// count.
	for _, spec := range topoTestSpecs(t) {
		o := topoFusedOpts(t, spec)
		seq, err := RunFusedGEMMRSMultiDevice(o)
		if err != nil {
			t.Fatalf("%v: %v", spec.Kind, err)
		}
		for _, workers := range []int{1, 2, 4} {
			o.ParWorkers = workers
			par, err := RunFusedGEMMRSMultiDevice(o)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", spec.Kind, workers, err)
			}
			if par.Done != seq.Done || par.LinkBytes != seq.LinkBytes {
				t.Errorf("%v workers=%d: done %v vs %v, link bytes %v vs %v",
					spec.Kind, workers, par.Done, seq.Done, par.LinkBytes, seq.LinkBytes)
			}
			for d := range seq.CollectiveDone {
				if par.CollectiveDone[d] != seq.CollectiveDone[d] {
					t.Errorf("%v workers=%d device %d: %v vs %v",
						spec.Kind, workers, d, par.CollectiveDone[d], seq.CollectiveDone[d])
					break
				}
			}
		}
	}
}

func TestMultiDeviceTopoTransitTraffic(t *testing.T) {
	// Multi-hop graphs relay neighbor sends through intermediate devices, so
	// their per-link byte counters must sum to at least the single-hop
	// (ring/switch) total, and strictly more on the torus and hierarchy
	// whose diameters exceed one hop for some schedule pairs.
	ring, err := RunFusedGEMMRSMultiDevice(fusedOpts(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range topoTestSpecs(t) {
		res, err := RunFusedGEMMRSMultiDevice(topoFusedOpts(t, spec))
		if err != nil {
			t.Fatalf("%v: %v", spec.Kind, err)
		}
		if res.LinkBytes < ring.LinkBytes {
			t.Errorf("%v: link bytes %v below the single-hop total %v", spec.Kind, res.LinkBytes, ring.LinkBytes)
		}
		if (spec.Kind == interconnect.TopoTorus || spec.Kind == interconnect.TopoHierarchical) &&
			res.LinkBytes <= ring.LinkBytes {
			t.Errorf("%v: expected transit hops to add traffic above %v, got %v", spec.Kind, ring.LinkBytes, res.LinkBytes)
		}
	}
}

func TestMirrorRunsRejectNonRingTopo(t *testing.T) {
	// Single-GPU mirror runs model the ring implicitly; a non-ring topology
	// must be rejected, not silently ignored.
	spec := interconnect.SwitchTopo(8, interconnect.DefaultConfig())
	o := topoFusedOpts(t, spec)
	if _, err := RunFusedGEMMRS(o); err == nil || !strings.Contains(err.Error(), "mirror") {
		t.Errorf("RunFusedGEMMRS accepted a switch topology: err=%v", err)
	}
	o.Collective = RingAllGather
	if _, err := RunFusedGEMMAG(o); err == nil || !strings.Contains(err.Error(), "mirror") {
		t.Errorf("RunFusedGEMMAG accepted a switch topology: err=%v", err)
	}
	o.Collective = AllToAll
	if _, err := RunFusedGEMMAllToAll(o); err == nil || !strings.Contains(err.Error(), "mirror") {
		t.Errorf("RunFusedGEMMAllToAll accepted a switch topology: err=%v", err)
	}
}

func TestMultiDeviceTopoDeviceCountMismatch(t *testing.T) {
	o := fusedOpts(t, 8)
	o.Topo = interconnect.RingTopo(4, interconnect.DefaultConfig())
	if _, err := RunFusedGEMMRSMultiDevice(o); err == nil {
		t.Error("4-device topology accepted for an 8-device run")
	}
}
