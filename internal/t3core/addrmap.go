package t3core

import (
	"fmt"

	"t3sim/internal/memory"
)

// Treatment says how a device's stores to one output chunk are handled,
// set by the §4.4 address-space configuration calls.
type Treatment int

// Treatments.
const (
	// TreatRemote is a remote_map chunk: the producer's stores go straight
	// to the peer's memory over the link (step-1 of Figure 7).
	TreatRemote Treatment = iota
	// TreatDMA is a dma_map chunk: stores update local memory, the tracker
	// counts them, and a pre-programmed DMA forwards the reduced chunk once
	// the expected updates complete (steady-state steps of Figure 7).
	TreatDMA
	// TreatLocalFinal is the owned chunk: stores update local memory and the
	// chunk's completion ends the device's collective; nothing is forwarded.
	TreatLocalFinal
)

// String implements fmt.Stringer.
func (t Treatment) String() string {
	switch t {
	case TreatRemote:
		return "remote_map"
	case TreatDMA:
		return "dma_map"
	case TreatLocalFinal:
		return "local"
	default:
		return fmt.Sprintf("Treatment(%d)", int(t))
	}
}

// Collective enumerates the fused collectives T3 supports (§4.4, §7.1).
type Collective int

// Collectives.
const (
	RingReduceScatter Collective = iota
	RingAllGather
	DirectReduceScatter
	AllToAll
)

// String implements fmt.Stringer.
func (c Collective) String() string {
	switch c {
	case RingReduceScatter:
		return "ring-reduce-scatter"
	case RingAllGather:
		return "ring-all-gather"
	case DirectReduceScatter:
		return "direct-reduce-scatter"
	case AllToAll:
		return "all-to-all"
	default:
		return fmt.Sprintf("Collective(%d)", int(c))
	}
}

// PhaseMap is the treatment of the chunk a device produces in one
// production phase. Producers generate chunks in a staggered order across
// devices (§4.4) so that every phase, each chunk is being produced by
// exactly one device.
type PhaseMap struct {
	// Phase is the production order index (0 = produced first).
	Phase int
	// Chunk is the output chunk index this phase produces.
	Chunk int
	// Treatment selects remote_map / dma_map / local handling.
	Treatment Treatment
	// Dest is the peer device for TreatRemote and TreatDMA.
	Dest int
	// Op is the access kind performed at the destination (and locally for
	// dma_map chunks): Update for reductions, Write for data movement.
	Op memory.AccessKind
	// UpdatesPerElement is the tracker trigger condition: how many updates
	// each element must see before the chunk is ready (§4.2.1).
	UpdatesPerElement int
}

// AddressMap is one device's §4.4 output configuration: a treatment per
// production phase. It corresponds to Figures 11 and 12 of the paper.
type AddressMap struct {
	Collective Collective
	Device     int
	Devices    int
	Phases     []PhaseMap
}

// Validate checks structural invariants: one entry per phase, chunks form a
// permutation, destinations on-ring.
func (m AddressMap) Validate() error {
	if m.Devices < 2 {
		return fmt.Errorf("t3core: address map needs >= 2 devices, got %d", m.Devices)
	}
	if m.Device < 0 || m.Device >= m.Devices {
		return fmt.Errorf("t3core: device %d out of range", m.Device)
	}
	if len(m.Phases) != m.Devices {
		return fmt.Errorf("t3core: %d phases for %d devices", len(m.Phases), m.Devices)
	}
	seen := make([]bool, m.Devices)
	for i, p := range m.Phases {
		if p.Phase != i {
			return fmt.Errorf("t3core: phase %d recorded as %d", i, p.Phase)
		}
		if p.Chunk < 0 || p.Chunk >= m.Devices || seen[p.Chunk] {
			return fmt.Errorf("t3core: chunk assignment not a permutation at phase %d", i)
		}
		seen[p.Chunk] = true
		if p.Treatment != TreatLocalFinal && (p.Dest < 0 || p.Dest >= m.Devices || p.Dest == m.Device) {
			return fmt.Errorf("t3core: phase %d dest %d invalid", i, p.Dest)
		}
		if p.UpdatesPerElement <= 0 {
			return fmt.Errorf("t3core: phase %d UpdatesPerElement = %d", i, p.UpdatesPerElement)
		}
	}
	return nil
}

// RingReduceScatterMap builds the §4.4 configuration for device d of n in a
// fused GEMM→ring-reduce-scatter, using the forward-ring convention of the
// collective package (chunk c starts at device c+1 and ends, fully reduced,
// at device c):
//
//   - phase 0 produces chunk (d−1) and remote-writes it into device d+1's
//     memory as NMC updates while the GEMM runs;
//   - phases 1..n−2 produce chunks (d−1−p) as local NMC updates; each
//     element expects 2 updates (local + incoming), after which the tracker
//     triggers a DMA update to device d+1;
//   - phase n−1 produces the owned chunk d; its completion (local + final
//     incoming DMA) ends the device's reduce-scatter.
func RingReduceScatterMap(device, devices int) AddressMap {
	m := AddressMap{Collective: RingReduceScatter, Device: device, Devices: devices}
	next := (device + 1) % devices
	for p := 0; p < devices; p++ {
		pm := PhaseMap{
			Phase:             p,
			Chunk:             mod(device-1-p, devices),
			Dest:              next,
			Op:                memory.Update,
			UpdatesPerElement: 2,
		}
		switch {
		case p == 0:
			pm.Treatment = TreatRemote
			pm.UpdatesPerElement = 1 // producer-side: not tracked locally
		case p == devices-1:
			pm.Treatment = TreatLocalFinal
		default:
			pm.Treatment = TreatDMA
		}
		m.Phases = append(m.Phases, pm)
	}
	return m
}

// RingAllGatherMap builds the fused GEMM→ring-all-gather configuration
// (§7.1): the device produces only its owned shard, which is remote-written
// to the next device and forwarded hop by hop; stores are plain writes (no
// reduction) and every element expects a single update.
func RingAllGatherMap(device, devices int) AddressMap {
	m := AddressMap{Collective: RingAllGather, Device: device, Devices: devices}
	next := (device + 1) % devices
	for p := 0; p < devices; p++ {
		pm := PhaseMap{
			Phase:             p,
			Chunk:             mod(device-p, devices),
			Dest:              next,
			Op:                memory.Write,
			UpdatesPerElement: 1,
		}
		switch {
		case p == 0:
			// The produced shard: written locally and remote-written onward.
			pm.Treatment = TreatRemote
		case p == devices-1:
			pm.Treatment = TreatLocalFinal
		default:
			pm.Treatment = TreatDMA
		}
		m.Phases = append(m.Phases, pm)
	}
	return m
}

// DirectReduceScatterMap builds the fully-connected-topology configuration
// (§7.1): every GEMM stage's output is sliced across the peers and
// remote-written directly to each owner; the collective needs no memory
// reads or DMAs of its own. The owned slice is the only locally stored one.
func DirectReduceScatterMap(device, devices int) AddressMap {
	m := AddressMap{Collective: DirectReduceScatter, Device: device, Devices: devices}
	for p := 0; p < devices; p++ {
		chunk := mod(device-p, devices)
		pm := PhaseMap{
			Phase:             p,
			Chunk:             chunk,
			Dest:              chunk, // chunk c is reduced at device c
			Op:                memory.Update,
			UpdatesPerElement: devices, // all contributions land in place
		}
		if chunk == device {
			pm.Treatment = TreatLocalFinal
		} else {
			pm.Treatment = TreatRemote
		}
		m.Phases = append(m.Phases, pm)
	}
	return m
}

// AllToAllMap builds the fused all-to-all configuration (§7.1): chunk j of
// the producer's output is remote-written to device j (and the owned chunk
// stored locally); nothing is reduced and nothing is forwarded.
func AllToAllMap(device, devices int) AddressMap {
	m := AddressMap{Collective: AllToAll, Device: device, Devices: devices}
	for p := 0; p < devices; p++ {
		chunk := mod(device-p, devices)
		pm := PhaseMap{
			Phase:             p,
			Chunk:             chunk,
			Dest:              chunk,
			Op:                memory.Write,
			UpdatesPerElement: 1,
		}
		if chunk == device {
			pm.Treatment = TreatLocalFinal
		} else {
			pm.Treatment = TreatRemote
		}
		m.Phases = append(m.Phases, pm)
	}
	return m
}

func mod(a, n int) int { return ((a % n) + n) % n }
