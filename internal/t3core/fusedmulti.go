package t3core

import (
	"fmt"

	"t3sim/internal/collective"
	"t3sim/internal/gpu"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// MultiDeviceResult reports an explicit N-device fused run. It exists to
// validate the single-GPU mirror methodology (§5.1.1): under homogeneous
// execution every device should complete at (nearly) the same time, and
// that time should match the mirror run.
type MultiDeviceResult struct {
	// GEMMDone / CollectiveDone per device.
	GEMMDone       []units.Time
	CollectiveDone []units.Time
	// Done is the latest device completion plus communication drain.
	Done units.Time
	// DRAM aggregates all devices' traffic.
	DRAM memory.Counters
	// PerDeviceDRAM is each device's own traffic.
	PerDeviceDRAM []memory.Counters
	// LinkBytes sums all forward-ring traffic.
	LinkBytes units.Bytes
	// TrackerMaxLive is the largest per-device high-water mark.
	TrackerMaxLive int
}

// Skew returns the spread between the earliest and latest device
// completion — a direct check of the homogeneity assumption.
func (r *MultiDeviceResult) Skew() units.Time {
	if len(r.CollectiveDone) == 0 {
		return 0
	}
	lo, hi := r.CollectiveDone[0], r.CollectiveDone[0]
	for _, t := range r.CollectiveDone[1:] {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return hi - lo
}

// multiDevice is one device's state in the explicit run. Every field is
// device-local: in cluster mode all of a device's handlers run on its own
// engine, so no two goroutines ever touch the same multiDevice.
type multiDevice struct {
	id   int
	run  *multiRun
	eng  *sim.Engine // the engine this device's handlers run on
	mem  *memory.Controller
	trk  *Tracker
	dma  *DMATable
	amap AddressMap
	sink metrics.Sink // per-device "dev<i>" scope; nil without a run sink

	phaseOfChunk []int
	wgCursor     int
	ownedFence   *sim.Fence

	gemmDone       units.Time
	collectiveDone units.Time
	err            error // first model error on this device (single-writer)
}

// multiRun owns the shared state of the explicit N-device simulation. The
// mutable pieces are all per-device (in devs); everything here is read-only
// after setup, so the cluster's worker goroutines share it freely.
type multiRun struct {
	o    FusedOptions
	eng  *sim.Engine            // sequential mode: the one shared engine (nil in cluster mode)
	cl   *sim.Cluster           // cluster mode: one engine per device (nil in sequential mode)
	ring *interconnect.Ring     // legacy interconnect (zero o.Topo)
	topo *interconnect.Topology // graph interconnect (non-zero o.Topo)
	devs []*multiDevice

	tileBytes  units.Bytes
	totalTiles int
	chunkStart []int // address-space tile index where each chunk begins

	result MultiDeviceResult
}

// engOf returns the engine device d's handlers run on.
func (r *multiRun) engOf(d int) *sim.Engine {
	if r.cl != nil {
		return r.cl.Engine(d)
	}
	return r.eng
}

// send moves n bytes from src to dst over the run's interconnect: the
// topology routes over its deterministic shortest paths (store-and-forward
// at intermediate hops); the legacy ring path is the src forward link, whose
// only neighbor is dst by construction.
func (r *multiRun) send(src, dst int, n units.Bytes, onDelivered sim.Handler) {
	if r.topo != nil {
		r.topo.Send(src, dst, n, onDelivered)
		return
	}
	r.ring.ForwardLink(src).Send(n, onDelivered)
}

// RunFusedGEMMRSMultiDevice executes the fused GEMM→ring-reduce-scatter
// with every device simulated explicitly: per-device memory systems,
// trackers and DMA tables, staggered production orders (§4.4), and real
// cross-device deliveries over the interconnect — no mirroring. A non-zero
// o.Topo replaces the implicit ring with an arbitrary topology graph: the
// ring schedule's neighbor sends are routed over the graph's deterministic
// shortest paths (store-and-forwarding at intermediate hops), which is how
// the topology sweep asks whether tracker-triggered overlap still wins on a
// torus, a switch, or a two-level hierarchy.
//
// With o.ParWorkers > 0 (and a positive minimum link latency) each device is
// simulated on its own engine inside a sim.Cluster, advanced in conservative
// windows one lookahead wide; the result is byte-identical to the
// sequential run at every worker count.
func RunFusedGEMMRSMultiDevice(o FusedOptions) (MultiDeviceResult, error) {
	if o.Collective != RingReduceScatter {
		return MultiDeviceResult{}, fmt.Errorf("t3core: multi-device run supports ring reduce-scatter, got %v", o.Collective)
	}
	if err := validateFusedCommon(o); err != nil {
		return MultiDeviceResult{}, err
	}
	if o.Grid.Tiling.SplitK != 1 {
		return MultiDeviceResult{}, fmt.Errorf("t3core: multi-device run supports SplitK=1 only")
	}
	r := &multiRun{o: o}
	n := o.Devices
	// A zero-latency link admits no conservative window (the lookahead must
	// be positive), so such configurations fall back to the shared engine.
	// With a topology the lookahead is the slowest-case-safe minimum link
	// latency over the whole graph.
	minLat := o.Link.LinkLatency
	if !o.Topo.IsZero() {
		minLat = o.Topo.MinLinkLatency()
	}
	parallel := o.ParWorkers > 0 && minLat > 0
	var ring *interconnect.Ring
	var err error
	switch {
	case !o.Topo.IsZero() && parallel:
		r.cl = sim.NewCluster(n, minLat)
		r.cl.SetSyncMode(o.SyncMode)
		r.cl.AttachChecker(o.Check)
		r.topo, err = o.Topo.BuildCluster(r.cl)
	case !o.Topo.IsZero():
		r.eng = sim.NewEngine()
		r.eng.AttachChecker(o.Check)
		r.topo, err = o.Topo.Build(r.eng)
	case parallel:
		r.cl = sim.NewCluster(n, minLat)
		r.cl.SetSyncMode(o.SyncMode)
		r.cl.AttachChecker(o.Check)
		ring, err = interconnect.NewClusterRing(r.cl, o.Link)
	default:
		r.eng = sim.NewEngine()
		r.eng.AttachChecker(o.Check)
		ring, err = interconnect.NewRing(r.eng, n, o.Link)
	}
	if err != nil {
		return MultiDeviceResult{}, err
	}
	if r.topo != nil {
		r.topo.AttachChecker(o.Check)
	}
	r.tileBytes = o.Grid.WFTileBytes()
	r.totalTiles = o.Grid.NumWFs()
	bounds := collective.ChunkBounds(r.totalTiles, n)
	r.chunkStart = make([]int, n+1)
	for c := 0; c < n; c++ {
		r.chunkStart[c] = bounds[c][0]
	}
	r.chunkStart[n] = r.totalTiles

	if o.Metrics != nil {
		if r.topo != nil {
			r.topo.AttachMetrics(o.Metrics)
		} else {
			ring.AttachMetrics(o.Metrics)
		}
	}
	r.ring = ring

	r.devs = make([]*multiDevice, n)
	for d := 0; d < n; d++ {
		md, err := r.newDevice(d)
		if err != nil {
			return MultiDeviceResult{}, err
		}
		r.devs[d] = md
	}
	// Launch every device's GEMM at t=0 (§4.4: staggering is in the WG→tile
	// mapping, not the launch time).
	for d := 0; d < n; d++ {
		md := r.devs[d]
		kernel := &gpu.GEMMKernel{
			Eng:               md.eng,
			Mem:               md.mem,
			GPU:               o.GPU,
			Grid:              o.Grid,
			CUs:               o.GEMMCUs,
			OutputBypassesLLC: true,
			Monitor:           o.Arbitration == ArbMCA,
			WriteStage:        md.writeStage,
			DoubleBuffered:    o.DoubleBufferedGEMM,
			Metrics:           md.sink,
		}
		if err := kernel.Start(func() { md.gemmDone = md.eng.Now() }); err != nil {
			return MultiDeviceResult{}, err
		}
	}
	if parallel {
		r.cl.Run(o.ParWorkers)
		if o.ClusterStats != nil {
			*o.ClusterStats = r.cl.Stats()
		}
		if o.Metrics != nil {
			// Coordination-layer summary for the -metrics JSON: how the
			// cluster synchronized, not what the model computed. Values are
			// identical at every worker count; NullMessages is zero in
			// windowed mode by definition.
			st := r.cl.Stats()
			cs := o.Metrics.Scope("cluster")
			cs.Counter("windows").Add(int64(st.Windows))
			cs.Counter("engine_windows").Add(int64(st.EngineWindows))
			cs.Counter("advance_ps").Add(int64(st.Advance))
			cs.Counter("null_messages").Add(int64(st.NullMessages))
			cs.Counter("stalled_engine_windows").Add(int64(st.StalledEngineWindows))
			cs.Counter("stall_ps").Add(int64(st.StallTime))
			cs.Counter("sync_mode").Add(int64(st.Mode))
		}
	} else {
		r.eng.Run()
		if o.ClusterStats != nil {
			*o.ClusterStats = sim.ClusterStats{}
		}
	}
	stalled := 0
	for _, md := range r.devs {
		if md.err != nil {
			return MultiDeviceResult{}, md.err
		}
		if !md.ownedFence.Fired() {
			stalled++
		}
	}
	if stalled > 0 {
		return MultiDeviceResult{}, fmt.Errorf("t3core: multi-device run stalled: %d devices incomplete", stalled)
	}
	res := &r.result
	for d := 0; d < n; d++ {
		md := r.devs[d]
		res.GEMMDone = append(res.GEMMDone, md.gemmDone)
		res.CollectiveDone = append(res.CollectiveDone, md.collectiveDone)
		cnt := md.mem.Counters()
		res.PerDeviceDRAM = append(res.PerDeviceDRAM, *cnt)
		for k := 0; k < 3; k++ {
			for s := 0; s < 2; s++ {
				res.DRAM.Bytes[k][s] += cnt.Bytes[k][s]
				res.DRAM.Requests[k][s] += cnt.Requests[k][s]
			}
		}
		if r.topo == nil {
			res.LinkBytes += ring.ForwardLink(d).SentBytes()
		}
		if ml := md.trk.MaxLive(); ml > res.TrackerMaxLive {
			res.TrackerMaxLive = ml
		}
		if md.collectiveDone > res.Done {
			res.Done = md.collectiveDone
		}
	}
	if r.topo != nil {
		// Transit hops count once per traversed link, like the per-device
		// forward-link counters would on the ring.
		res.LinkBytes = r.topo.SentBytes()
	}
	return *res, nil
}

func (r *multiRun) newDevice(d int) (*multiDevice, error) {
	o := r.o
	arb, err := newArbiter(o.Arbitration)
	if err != nil {
		return nil, err
	}
	// Each device gets its own "dev<i>" scope so per-channel counter names
	// and timeline tracks stay distinct across the N memory systems.
	var sink metrics.Sink
	if o.Metrics != nil {
		sink = o.Metrics.Scope(fmt.Sprintf("dev%d", d))
		o.Memory.Metrics = sink
	}
	if o.Check != nil && o.Memory.Check == nil {
		o.Memory.Check = o.Check
	}
	eng := r.engOf(d)
	mc, err := memory.NewController(eng, o.Memory, arb)
	if err != nil {
		return nil, err
	}
	md := &multiDevice{id: d, run: r, eng: eng, mem: mc, sink: sink, amap: RingReduceScatterMap(d, o.Devices)}
	if err := md.amap.Validate(); err != nil {
		return nil, err
	}
	md.phaseOfChunk = make([]int, o.Devices)
	for _, pm := range md.amap.Phases {
		md.phaseOfChunk[pm.Chunk] = pm.Phase
	}
	trk, err := NewTracker(o.Tracker)
	if err != nil {
		return nil, err
	}
	md.trk = trk
	md.dma = NewDMATable()
	// Program DMA commands for dma_mapped phases.
	next := (d + 1) % o.Devices
	for _, pm := range md.amap.Phases {
		if pm.Treatment != TreatDMA {
			continue
		}
		c := pm.Chunk
		for t := r.chunkStart[c]; t < r.chunkStart[c+1]; t++ {
			if err := md.dma.Program(tileIDFor(t), DMACommand{
				DestDevice: next, Op: memory.Update, Bytes: r.tileBytes,
			}); err != nil {
				return nil, err
			}
		}
	}
	if err := trk.SetProgram(Program{
		WFTileBytes:       r.tileBytes,
		UpdatesPerElement: 2,
		OnReady:           md.onReady,
	}); err != nil {
		return nil, err
	}
	ownedChunk := md.amap.Phases[o.Devices-1].Chunk
	ownedTiles := r.chunkStart[ownedChunk+1] - r.chunkStart[ownedChunk]
	md.ownedFence = sim.NewFence(ownedTiles, func() {
		md.collectiveDone = md.eng.Now()
	})
	return md, nil
}

// tileIDFor maps an address-space tile index to its tracker identity. Tile
// identities are addresses, shared by all devices: the §4.2.2 DMA metadata
// translation (source wg/wf → destination wg/wf) is the identity map here
// because our model indexes tiles by output position on every device.
func tileIDFor(t int) TileID { return TileID{WG: t / 8, WF: t % 8} }

// prodTile converts a device's production-order index into the address-space
// tile it writes: phase p covers the chunk the address map assigns it.
func (md *multiDevice) prodTile(g int) (tile int, pm PhaseMap, ok bool) {
	r := md.run
	off := g
	for _, pm := range md.amap.Phases {
		c := pm.Chunk
		sz := r.chunkStart[c+1] - r.chunkStart[c]
		if off < sz {
			return r.chunkStart[c] + off, pm, true
		}
		off -= sz
	}
	return 0, PhaseMap{}, false
}

// writeStage routes one stage's production per the device's address map.
func (md *multiDevice) writeStage(_, wgs int, _ units.Bytes, onDone sim.Handler) {
	r := md.run
	til := r.o.Grid.Tiling
	g0 := md.wgCursor * til.WFPerWG
	md.wgCursor += wgs
	count := wgs * til.WFPerWG

	type job struct {
		tile int
		pm   PhaseMap
	}
	var jobs []job
	for i := 0; i < count; i++ {
		tile, pm, ok := md.prodTile(g0 + i)
		if !ok {
			continue
		}
		jobs = append(jobs, job{tile, pm})
	}
	local := 0
	for _, j := range jobs {
		if j.pm.Treatment != TreatRemote {
			local++
		}
	}
	fence := sim.NewFence(local, onDone)
	for _, j := range jobs {
		tile := j.tile
		switch j.pm.Treatment {
		case TreatRemote:
			// Peer store: over the interconnect into the next device's
			// memory as an NMC update.
			dest := r.devs[j.pm.Dest]
			r.send(md.id, j.pm.Dest, r.tileBytes, func() {
				dest.stageIncoming(tile)
			})
		default:
			md.mem.Transfer(memory.Update, memory.StreamCompute, r.tileBytes,
				memory.Tag{WG: tile / 8, WF: tile % 8}, func() {
					md.observe(tile)
					fence.Done()
				})
		}
	}
}

// stageIncoming applies an arriving update (peer store or DMA) to local
// memory and lets the tracker count it.
func (md *multiDevice) stageIncoming(tile int) {
	r := md.run
	md.mem.Transfer(memory.Update, memory.StreamComm, r.tileBytes,
		memory.Tag{WG: tile / 8, WF: tile % 8}, func() { md.observe(tile) })
}

func (md *multiDevice) observe(tile int) {
	if err := md.trk.Observe(tileIDFor(tile), md.run.tileBytes); err != nil && md.err == nil {
		md.err = err
	}
}

// onReady fires when a tile's local and incoming updates complete: forward
// dma_mapped tiles, count owned ones.
func (md *multiDevice) onReady(id TileID) {
	r := md.run
	cmd, ok := md.dma.MarkReady(id)
	if !ok {
		md.ownedFence.Done()
		return
	}
	tile := id.WG*8 + id.WF
	dest := r.devs[cmd.DestDevice]
	md.mem.Transfer(memory.Read, memory.StreamComm, cmd.Bytes,
		memory.Tag{WG: id.WG, WF: id.WF}, func() {
			r.send(md.id, cmd.DestDevice, cmd.Bytes, func() {
				dest.stageIncoming(tile)
			})
		})
}
