package t3core

import (
	"reflect"
	"strings"
	"testing"

	"t3sim/internal/check"
)

// Falsifiability and zero-cost tests for the invariant checker as wired into
// the fused runners. A checker that never fires proves nothing — so one test
// injects a real conservation bug (a silently dropped mirrored update, via
// the testDropIncoming hook) and demands the checker catch it; the others pin
// that attaching or omitting the checker cannot change a single timing bit.

// TestCheckerCatchesDroppedUpdate drops one incoming mirrored update and
// asserts the end-of-run conservation laws flag the run. The drop starves a
// tracker entry of its last expected write, so the run stalls with live
// tracker state — exactly the class of model bug the checker exists for.
func TestCheckerCatchesDroppedUpdate(t *testing.T) {
	o := fusedOpts(t, 4)
	c := check.New()
	o.Check = c
	r, err := newFusedRun(o)
	if err != nil {
		t.Fatal(err)
	}
	r.testDropIncoming = 1
	if _, err := r.run(); err == nil {
		t.Error("run with a dropped update completed without error")
	}
	vs := c.Violations()
	if len(vs) == 0 {
		t.Fatal("checker recorded no violations for a dropped update")
	}
	conservation := false
	for _, v := range vs {
		if strings.HasPrefix(v.Rule, check.RuleConservation+"/") {
			conservation = true
		}
	}
	if !conservation {
		t.Errorf("no conservation violation among %d recorded: %v", len(vs), vs)
	}
}

// TestCheckerDoesNotPerturbTimings runs the same fused collective with no
// checker and with a recording checker and requires bit-identical results:
// the checker is a pure observer, so every timing, byte count and diagnostic
// must match exactly — any drift means a check is steering the simulation.
func TestCheckerDoesNotPerturbTimings(t *testing.T) {
	for _, tc := range []struct {
		name string
		coll Collective
		run  func(FusedOptions) (FusedResult, error)
	}{
		{"rs", RingReduceScatter, RunFusedGEMMRS},
		{"ag", RingAllGather, RunFusedGEMMAG},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plain := fusedOpts(t, 4)
			plain.Collective = tc.coll
			bare, err := tc.run(plain)
			if err != nil {
				t.Fatal(err)
			}

			checked := plain
			c := check.New()
			checked.Check = c
			audited, err := tc.run(checked)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range c.Violations() {
				t.Errorf("invariant violation: %s", v)
			}

			if !reflect.DeepEqual(bare, audited) {
				t.Errorf("checker perturbed the run:\n  nil checker: %+v\n  checked:     %+v", bare, audited)
			}
		})
	}
}
