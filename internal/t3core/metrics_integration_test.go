package t3core

import (
	"encoding/json"
	"strings"
	"testing"

	"t3sim/internal/metrics"
)

// TestFusedRunMetricsCoverage is the observability acceptance check: one
// fused run with a timeline-enabled sink must record spans on tracks from
// all four timing models (gpu, memory, interconnect, t3core), mirror the
// EventLog into timeline instants, and export a parseable Chrome trace.
func TestFusedRunMetricsCoverage(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.EnableTimeline()
	var events EventLog
	o := fusedOpts(t, 4)
	o.Metrics = reg
	o.Events = &events
	res, err := RunFusedGEMMRS(o)
	if err != nil {
		t.Fatal(err)
	}

	for _, track := range []string{"gpu", "memory", "link.fwd0", "t3core"} {
		found := false
		for _, name := range reg.TrackNames() {
			if name == track {
				found = true
			}
		}
		if !found {
			t.Errorf("no %q timeline track recorded; have %v", track, reg.TrackNames())
		}
	}

	// Counters registered by each model must agree with the run's result.
	if got := reg.CounterValue("t3core.tracker.triggers"); got != res.DMATriggered {
		t.Errorf("t3core.tracker.triggers = %d, want %d", got, res.DMATriggered)
	}
	if got := reg.GaugeValue("t3core.tracker.max_live"); got != int64(res.TrackerMaxLive) {
		t.Errorf("t3core.tracker.max_live = %d, want %d", got, res.TrackerMaxLive)
	}
	var chanBytes int64
	for _, name := range reg.CounterNames() {
		if strings.HasPrefix(name, "memory.chan") && strings.HasSuffix(name, "_bytes") {
			chanBytes += reg.CounterValue(name)
		}
	}
	if chanBytes != int64(res.DRAM.TotalBytes()) {
		t.Errorf("per-channel byte counters sum to %d, DRAM counters say %d",
			chanBytes, int64(res.DRAM.TotalBytes()))
	}
	if got := reg.CounterValue("interconnect.fwd0.sent_bytes"); got != int64(res.LinkBytes) {
		t.Errorf("interconnect.fwd0.sent_bytes = %d, want %d", got, int64(res.LinkBytes))
	}

	// Satellite: every EventLog record shows up as a timeline instant, so the
	// trace JSON must mention each event kind that fired.
	var trace strings.Builder
	if err := reg.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(trace.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events.Events()) == 0 {
		t.Fatal("event log empty")
	}
	for _, kind := range []EventKind{EventDMATriggered, EventGEMMDone, EventCollectiveDone} {
		if !strings.Contains(trace.String(), kind.String()) {
			t.Errorf("trace missing instants for %v", kind)
		}
	}
}

// TestFusedRunNilSinkUnchanged guards the zero-cost contract at the system
// level: attaching no sink must leave the simulation's results bit-identical
// to a run that never heard of metrics (it trivially does — this pins the
// plumbing never alters timing).
func TestFusedRunNilSinkUnchanged(t *testing.T) {
	plain, err := RunFusedGEMMRS(fusedOpts(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	reg.EnableTimeline()
	o := fusedOpts(t, 4)
	o.Metrics = reg
	instrumented, err := RunFusedGEMMRS(o)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Done != instrumented.Done || plain.GEMMDone != instrumented.GEMMDone ||
		plain.CollectiveDone != instrumented.CollectiveDone {
		t.Errorf("instrumentation changed timing: %+v vs %+v", plain, instrumented)
	}
}
