package t3core

import (
	"math"
	"testing"

	"t3sim/internal/collective"
	"t3sim/internal/units"
)

// FuzzFusedRSProtocol feeds the full T3 fused reduce-scatter protocol
// arbitrary device counts, lengths, tile sizes, contributions and production
// orders, and checks the owned-chunk postcondition against the serial
// reference.
func FuzzFusedRSProtocol(f *testing.F) {
	f.Add(uint8(2), uint8(16), uint8(4), int64(1), []byte{1, 2, 3})
	f.Add(uint8(5), uint8(100), uint8(7), int64(9), []byte{})
	f.Add(uint8(7), uint8(255), uint8(1), int64(-3), []byte{255, 0, 128})
	f.Fuzz(func(t *testing.T, nRaw, lenRaw, tileRaw uint8, seed int64, vals []byte) {
		n := int(nRaw)%7 + 2
		length := int(lenRaw)%200 + n
		tile := int(tileRaw)%32 + 1
		data := make([][]float32, n)
		idx := 0
		for d := range data {
			arr := make([]float32, length)
			for i := range arr {
				if idx < len(vals) {
					arr[i] = float32(int(vals[idx])-128) / 8
					idx++
				} else {
					arr[i] = float32((d*13 + i*7) % 23)
				}
			}
			data[d] = arr
		}
		ref, err := collective.ReferenceAllReduce(data)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunFunctionalFusedReduceScatter(data, tile, seed)
		if err != nil {
			t.Fatal(err)
		}
		bounds := collective.ChunkBounds(length, n)
		for d := 0; d < n; d++ {
			b := bounds[collective.OwnedChunk(d, n)]
			for i := b[0]; i < b[1]; i++ {
				if math.Abs(float64(res.Buffers[d][i]-ref[i])) > 1e-2 {
					t.Fatalf("n=%d len=%d tile=%d: device %d elem %d = %v, want %v",
						n, length, tile, d, i, res.Buffers[d][i], ref[i])
				}
			}
		}
	})
}

// FuzzTrackerNeverMiscounts drives the tracker with arbitrary interleavings
// of partial updates and checks it fires exactly once per tile, at exactly
// the threshold.
func FuzzTrackerNeverMiscounts(f *testing.F) {
	f.Add(uint8(3), uint8(2), []byte{1, 0, 2, 1, 0, 2})
	f.Add(uint8(1), uint8(1), []byte{0})
	f.Fuzz(func(t *testing.T, tilesRaw, chunksRaw uint8, order []byte) {
		tiles := int(tilesRaw)%16 + 1
		divisor := []int64{1, 2, 4, 8}[int(chunksRaw)%4] // partial accesses per update
		tr, err := NewTracker(DefaultTrackerConfig())
		if err != nil {
			t.Fatal(err)
		}
		const tileBytes = 64
		fired := map[TileID]int{}
		if err := tr.SetProgram(Program{
			WFTileBytes:       tileBytes,
			UpdatesPerElement: 2,
			OnReady:           func(id TileID) { fired[id]++ },
		}); err != nil {
			t.Fatal(err)
		}
		// Each tile expects 2 updates of tileBytes, delivered as
		// 2*divisor partial accesses of tileBytes/divisor. The fuzz input
		// permutes which tile receives the next access.
		remaining := make([]int, tiles)
		for i := range remaining {
			remaining[i] = int(2 * divisor)
		}
		left := tiles * int(2*divisor)
		oi := 0
		for left > 0 {
			pick := 0
			if len(order) > 0 {
				pick = int(order[oi%len(order)]) % tiles
				oi++
			}
			// Find the next tile with accesses remaining, starting at pick.
			for remaining[pick] == 0 {
				pick = (pick + 1) % tiles
			}
			id := TileID{WG: pick / 8, WF: pick % 8}
			if err := tr.Observe(id, tileBytes/units.Bytes(divisor)); err != nil {
				t.Fatal(err)
			}
			remaining[pick]--
			left--
		}
		for i := 0; i < tiles; i++ {
			id := TileID{WG: i / 8, WF: i % 8}
			if fired[id] != 1 {
				t.Fatalf("tile %d fired %d times", i, fired[id])
			}
		}
		if tr.Live() != 0 {
			t.Fatalf("%d live entries left", tr.Live())
		}
	})
}
