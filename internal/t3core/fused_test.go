package t3core

import (
	"testing"

	"t3sim/internal/gemm"
	"t3sim/internal/gpu"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/units"
)

func fusedOpts(t *testing.T, devices int) FusedOptions {
	t.Helper()
	g, err := gemm.NewGrid(gemm.Shape{M: 2048, N: 2048, K: 512, ElemBytes: 2}, gemm.DefaultTiling())
	if err != nil {
		t.Fatal(err)
	}
	return FusedOptions{
		GPU:         gpu.DefaultConfig(),
		Memory:      memory.DefaultConfig(),
		Link:        interconnect.DefaultConfig(),
		Tracker:     DefaultTrackerConfig(),
		Devices:     devices,
		Grid:        g,
		Arbitration: ArbRoundRobin,
		Collective:  RingReduceScatter,
	}
}

func TestFusedRunCompletes(t *testing.T) {
	res, err := RunFusedGEMMRS(fusedOpts(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.GEMMDone <= 0 || res.CollectiveDone <= 0 || res.Done <= 0 {
		t.Fatalf("missing times: %+v", res)
	}
	if res.CollectiveDone < res.GEMMDone {
		// The owned chunk needs the GEMM's last phase, so it cannot finish
		// before the GEMM's local stores.
		t.Errorf("collective done %v before GEMM done %v", res.CollectiveDone, res.GEMMDone)
	}
	if res.Done < res.CollectiveDone {
		t.Errorf("done %v before collective done %v", res.Done, res.CollectiveDone)
	}
}

func TestFusedTrafficAccounting(t *testing.T) {
	n := 4
	o := fusedOpts(t, n)
	res, err := RunFusedGEMMRS(o)
	if err != nil {
		t.Fatal(err)
	}
	tiles := o.Grid.NumWFs()
	tileBytes := o.Grid.WFTileBytes()
	total := units.Bytes(tiles) * tileBytes
	chunk := total / units.Bytes(n) // phases are equal here (tiles % n == 0)

	// GEMM local updates: phases 1..n-1 = (n-1)/n of the output.
	wantLocal := chunk * units.Bytes(n-1)
	gotLocal := res.DRAM.Bytes[memory.Update][memory.StreamCompute]
	if gotLocal != wantLocal {
		t.Errorf("local updates = %v, want %v", gotLocal, wantLocal)
	}
	// Incoming updates: 1 remote-written chunk + n-2 DMA chunks = (n-1)/n.
	wantIn := chunk * units.Bytes(n-1)
	gotIn := res.DRAM.Bytes[memory.Update][memory.StreamComm]
	if gotIn != wantIn {
		t.Errorf("incoming updates = %v, want %v", gotIn, wantIn)
	}
	// DMA reads: n-2 chunks.
	wantRead := chunk * units.Bytes(n-2)
	gotRead := res.DRAM.Bytes[memory.Read][memory.StreamComm]
	if gotRead != wantRead {
		t.Errorf("DMA reads = %v, want %v", gotRead, wantRead)
	}
	// Link: phase-0 remote writes + n-2 DMA chunks = (n-1)/n of the output.
	wantLink := chunk * units.Bytes(n-1)
	if res.LinkBytes != wantLink {
		t.Errorf("link bytes = %v, want %v", res.LinkBytes, wantLink)
	}
	// No plain writes anywhere: everything is NMC updates (§4.3).
	if w := res.DRAM.KindBytes(memory.Write); w != 0 {
		t.Errorf("unexpected plain writes: %v", w)
	}
	// DMA triggers: tiles of phases 1..n-2.
	wantDMA := int64(tiles) * int64(n-2) / int64(n)
	if res.DMATriggered != wantDMA {
		t.Errorf("DMA triggered = %d, want %d", res.DMATriggered, wantDMA)
	}
}

func TestFusedVsSequentialDataMovement(t *testing.T) {
	// T3's whole-point check: the fused run moves far fewer DRAM bytes for
	// the collective than the baseline's 2(n-1)+1 chunk reads and n chunk
	// writes (Figure 10 / Figure 18).
	n := 8
	o := fusedOpts(t, n)
	res, err := RunFusedGEMMRS(o)
	if err != nil {
		t.Fatal(err)
	}
	total := units.Bytes(o.Grid.NumWFs()) * o.Grid.WFTileBytes()
	chunk := total / units.Bytes(n)
	baselineRSReads := chunk * units.Bytes(2*(n-1)-1+2)
	fusedCollectiveReads := res.DRAM.Bytes[memory.Read][memory.StreamComm]
	ratio := float64(baselineRSReads) / float64(fusedCollectiveReads)
	// (2n-1)/(n-2): 2.5x for n=8 (the paper's RS read reduction at TP=8).
	if ratio < 2.3 || ratio > 2.7 {
		t.Errorf("RS read reduction = %.2fx, want ~2.5x", ratio)
	}
}

func TestFusedTrackerWithinBudget(t *testing.T) {
	res, err := RunFusedGEMMRS(fusedOpts(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := NewTracker(DefaultTrackerConfig())
	if res.TrackerMaxLive > tr.Capacity() {
		t.Errorf("tracker high-water %d exceeds hardware capacity %d", res.TrackerMaxLive, tr.Capacity())
	}
	if res.TrackerMaxLive == 0 {
		t.Error("tracker never used")
	}
}

func TestFusedMCACalibrates(t *testing.T) {
	o := fusedOpts(t, 4)
	o.Arbitration = ArbMCA
	res, err := RunFusedGEMMRS(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.MCAThreshold == 0 {
		t.Error("MCA threshold not calibrated")
	}
}

func TestFusedMCANotSlowerThanRoundRobin(t *testing.T) {
	// MCA exists to prevent communication bursts from stalling the GEMM; it
	// must not lose to round-robin.
	base := fusedOpts(t, 8)
	rr, err := RunFusedGEMMRS(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Arbitration = ArbMCA
	mca, err := RunFusedGEMMRS(base)
	if err != nil {
		t.Fatal(err)
	}
	if float64(mca.Done) > float64(rr.Done)*1.02 {
		t.Errorf("MCA (%v) slower than round-robin (%v)", mca.Done, rr.Done)
	}
}

func TestFusedDirectRS(t *testing.T) {
	o := fusedOpts(t, 4)
	o.Collective = DirectReduceScatter
	res, err := RunFusedGEMMRS(o)
	if err != nil {
		t.Fatal(err)
	}
	// §7.1: direct-RS is orchestrated entirely by GEMM stores — the
	// collective issues no memory reads and no DMAs.
	if r := res.DRAM.Bytes[memory.Read][memory.StreamComm]; r != 0 {
		t.Errorf("direct-RS issued %v collective reads, want 0", r)
	}
	if res.DMATriggered != 0 {
		t.Errorf("direct-RS triggered %d DMAs, want 0", res.DMATriggered)
	}
	if res.Done <= 0 {
		t.Error("no completion time")
	}
	// All n-1 slices of every tile cross the links.
	total := units.Bytes(o.Grid.NumWFs()) * o.Grid.WFTileBytes()
	want := total / units.Bytes(o.Devices) * units.Bytes(o.Devices-1)
	if res.LinkBytes != want {
		t.Errorf("link bytes = %v, want %v", res.LinkBytes, want)
	}
}

func TestFusedSplitK(t *testing.T) {
	o := fusedOpts(t, 4)
	til := gemm.DefaultTiling()
	til.SplitK = 2
	g, err := gemm.NewGrid(gemm.Shape{M: 2048, N: 2048, K: 2048, ElemBytes: 2}, til)
	if err != nil {
		t.Fatal(err)
	}
	o.Grid = g
	res, err := RunFusedGEMMRS(o)
	if err != nil {
		t.Fatal(err)
	}
	// Split-K doubles the local update volume for phases 1..n-1 (§7.7).
	tiles := g.NumWFs() / 2
	tileBytes := g.WFTileBytes()
	chunk := units.Bytes(tiles) * tileBytes / 4
	wantLocal := 2 * chunk * 3
	if got := res.DRAM.Bytes[memory.Update][memory.StreamCompute]; got != wantLocal {
		t.Errorf("split-K local updates = %v, want %v", got, wantLocal)
	}
}

func TestFusedValidation(t *testing.T) {
	cases := []func(*FusedOptions){
		func(o *FusedOptions) { o.Devices = 1 },
		func(o *FusedOptions) { o.GPU.CUs = 0 },
		func(o *FusedOptions) { o.Memory.Channels = 0 },
		func(o *FusedOptions) { o.Link.PacketSize = 0 },
		func(o *FusedOptions) { o.Tracker.Sets = 0 },
		func(o *FusedOptions) { o.Grid.Shape.M = 0 },
		func(o *FusedOptions) { o.Collective = RingAllGather }, // not in timing model
		func(o *FusedOptions) { o.Devices = 1 << 20 },          // more devices than tiles
	}
	for i, mutate := range cases {
		o := fusedOpts(t, 4)
		mutate(&o)
		if _, err := RunFusedGEMMRS(o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFusedOverlapBeatsSequentialShape(t *testing.T) {
	// The fused completion should exceed the GEMM by much less than a full
	// serialized reduce-scatter would add: the communication hides behind
	// compute except for a per-chunk tail.
	o := fusedOpts(t, 8)
	res, err := RunFusedGEMMRS(o)
	if err != nil {
		t.Fatal(err)
	}
	exposure := res.Done - res.GEMMDone
	// A serialized ring-RS of this output at link speed:
	total := units.Bytes(o.Grid.NumWFs()) * o.Grid.WFTileBytes()
	wire := o.Link.LinkBandwidth.TransferTime(total * 7 / 8)
	if exposure >= wire {
		t.Errorf("exposed communication %v not below serialized wire time %v", exposure, wire)
	}
}

func TestArbitrationStrings(t *testing.T) {
	if ArbRoundRobin.String() != "round-robin" || ArbMCA.String() != "mca" ||
		ArbComputeFirst.String() != "compute-first" || Arbitration(9).String() == "" {
		t.Error("arbitration strings wrong")
	}
}
