package t3core

import (
	"testing"

	"t3sim/internal/memory"
)

func TestRingReduceScatterMapStructure(t *testing.T) {
	n := 4
	for d := 0; d < n; d++ {
		m := RingReduceScatterMap(d, n)
		if err := m.Validate(); err != nil {
			t.Fatalf("device %d: %v", d, err)
		}
		if m.Phases[0].Treatment != TreatRemote {
			t.Errorf("device %d phase 0 = %v, want remote_map", d, m.Phases[0].Treatment)
		}
		if m.Phases[n-1].Treatment != TreatLocalFinal {
			t.Errorf("device %d last phase = %v, want local", d, m.Phases[n-1].Treatment)
		}
		for p := 1; p < n-1; p++ {
			pm := m.Phases[p]
			if pm.Treatment != TreatDMA {
				t.Errorf("device %d phase %d = %v, want dma_map", d, p, pm.Treatment)
			}
			if pm.UpdatesPerElement != 2 {
				t.Errorf("device %d phase %d updates = %d, want 2 (ring-RS, §4.2.1)",
					d, p, pm.UpdatesPerElement)
			}
			if pm.Op != memory.Update {
				t.Errorf("device %d phase %d op = %v, want update", d, p, pm.Op)
			}
			if pm.Dest != (d+1)%n {
				t.Errorf("device %d phase %d dest = %d, want next neighbor", d, p, pm.Dest)
			}
		}
		// Owned chunk is produced last.
		if m.Phases[n-1].Chunk != d {
			t.Errorf("device %d owns chunk %d, want %d", d, m.Phases[n-1].Chunk, d)
		}
	}
}

func TestRingRSMapStaggering(t *testing.T) {
	// In every phase, each chunk is produced by exactly one device — the
	// §4.4 staggered schedule.
	n := 8
	for p := 0; p < n; p++ {
		seen := make([]bool, n)
		for d := 0; d < n; d++ {
			c := RingReduceScatterMap(d, n).Phases[p].Chunk
			if seen[c] {
				t.Fatalf("phase %d: chunk %d produced twice", p, c)
			}
			seen[c] = true
		}
	}
}

func TestRingAllGatherMap(t *testing.T) {
	n := 4
	for d := 0; d < n; d++ {
		m := RingAllGatherMap(d, n)
		if err := m.Validate(); err != nil {
			t.Fatalf("device %d: %v", d, err)
		}
		for _, pm := range m.Phases {
			if pm.Op != memory.Write {
				t.Errorf("AG phase %d op = %v, want write (no reductions, §7.1)", pm.Phase, pm.Op)
			}
			if pm.UpdatesPerElement != 1 {
				t.Errorf("AG phase %d updates = %d, want 1", pm.Phase, pm.UpdatesPerElement)
			}
		}
		if m.Phases[0].Chunk != d {
			t.Errorf("device %d produces chunk %d first, want own shard", d, m.Phases[0].Chunk)
		}
	}
}

func TestDirectReduceScatterMap(t *testing.T) {
	n := 4
	for d := 0; d < n; d++ {
		m := DirectReduceScatterMap(d, n)
		if err := m.Validate(); err != nil {
			t.Fatalf("device %d: %v", d, err)
		}
		locals, remotes := 0, 0
		for _, pm := range m.Phases {
			switch pm.Treatment {
			case TreatLocalFinal:
				locals++
				if pm.Chunk != d {
					t.Errorf("device %d keeps chunk %d, want %d", d, pm.Chunk, d)
				}
			case TreatRemote:
				remotes++
				if pm.Dest != pm.Chunk {
					t.Errorf("chunk %d scattered to %d, want owner", pm.Chunk, pm.Dest)
				}
			default:
				t.Errorf("direct-RS has treatment %v; it needs no DMAs (§7.1)", pm.Treatment)
			}
			if pm.UpdatesPerElement != n {
				t.Errorf("direct-RS updates = %d, want %d", pm.UpdatesPerElement, n)
			}
		}
		if locals != 1 || remotes != n-1 {
			t.Errorf("device %d: %d local + %d remote, want 1 + %d", d, locals, remotes, n-1)
		}
	}
}

func TestAllToAllMap(t *testing.T) {
	n := 4
	for d := 0; d < n; d++ {
		m := AllToAllMap(d, n)
		if err := m.Validate(); err != nil {
			t.Fatalf("device %d: %v", d, err)
		}
		for _, pm := range m.Phases {
			if pm.Op != memory.Write {
				t.Errorf("all-to-all op = %v, want write", pm.Op)
			}
			if pm.Treatment == TreatRemote && pm.Dest != pm.Chunk {
				t.Errorf("chunk %d sent to %d", pm.Chunk, pm.Dest)
			}
		}
	}
}

func TestAddressMapValidateRejects(t *testing.T) {
	good := RingReduceScatterMap(0, 4)
	cases := []func(*AddressMap){
		func(m *AddressMap) { m.Devices = 1 },
		func(m *AddressMap) { m.Device = 9 },
		func(m *AddressMap) { m.Phases = m.Phases[:2] },
		func(m *AddressMap) { m.Phases[1].Phase = 3 },
		func(m *AddressMap) { m.Phases[1].Chunk = m.Phases[2].Chunk },
		func(m *AddressMap) { m.Phases[1].Dest = 0 }, // self
		func(m *AddressMap) { m.Phases[1].UpdatesPerElement = 0 },
	}
	for i, mutate := range cases {
		m := good
		m.Phases = append([]PhaseMap(nil), good.Phases...)
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestStringers(t *testing.T) {
	if TreatRemote.String() != "remote_map" || TreatDMA.String() != "dma_map" ||
		TreatLocalFinal.String() != "local" {
		t.Error("treatment strings wrong")
	}
	if RingReduceScatter.String() != "ring-reduce-scatter" || AllToAll.String() != "all-to-all" {
		t.Error("collective strings wrong")
	}
	if Treatment(9).String() == "" || Collective(9).String() == "" {
		t.Error("unknown values should render")
	}
}
