package t3core

import (
	"reflect"
	"testing"

	"t3sim/internal/check"
	"t3sim/internal/interconnect"
	"t3sim/internal/sim"
)

// TestMultiDeviceSyncModesMatch is the t3core-level cross-mode oracle the
// ISSUE names: on ring, torus and hierarchy graphs, forcing the cluster into
// windowed or appointment synchronization must reproduce the sequential
// shared-engine result exactly — every field, every device — at workers
// 1/2/4/8, with the invariant checker clean throughout.
func TestMultiDeviceSyncModesMatch(t *testing.T) {
	link := interconnect.DefaultConfig()
	inter := link
	inter.LinkBandwidth = link.LinkBandwidth / 3
	inter.LinkLatency = 4 * link.LinkLatency
	specs := []interconnect.TopoSpec{
		{}, // zero spec: the legacy implicit ring
		interconnect.RingTopo(8, link),
		interconnect.TorusTopo(2, 4, link),
		interconnect.HierarchicalTopo(2, 4, link, inter),
	}
	for _, spec := range specs {
		o := fusedOpts(t, 8)
		o.Topo = spec
		want, err := RunFusedGEMMRSMultiDevice(o)
		if err != nil {
			t.Fatalf("%v: %v", spec.Kind, err)
		}
		for _, mode := range []sim.ClusterSyncMode{sim.SyncWindowed, sim.SyncAppointment} {
			for _, workers := range []int{1, 2, 4, 8} {
				po := o
				po.ParWorkers = workers
				po.SyncMode = mode
				chk := check.New()
				po.Check = chk
				var st sim.ClusterStats
				po.ClusterStats = &st
				got, err := RunFusedGEMMRSMultiDevice(po)
				if err != nil {
					t.Fatalf("%v mode=%v workers=%d: %v", spec.Kind, mode, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%v mode=%v workers=%d: result diverged from sequential",
						spec.Kind, mode, workers)
				}
				if !chk.Ok() {
					t.Errorf("%v mode=%v workers=%d: violations: %v", spec.Kind, mode, workers, chk.Violations())
				}
				if st.Mode != mode {
					t.Errorf("%v mode=%v workers=%d: cluster resolved to %v", spec.Kind, mode, workers, st.Mode)
				}
				if mode == sim.SyncAppointment && st.NullMessages == 0 {
					t.Errorf("%v workers=%d: appointment run published no promises", spec.Kind, workers)
				}
			}
		}
	}
}

// TestMultiDeviceSyncStatsAgree pins the cross-mode stats contract: aside
// from Mode and NullMessages (mode-defined by construction), the coordination
// summary — rounds, engine-windows, simulated advance, stall accounting — is
// identical whichever coordinator computed the fixpoint.
func TestMultiDeviceSyncStatsAgree(t *testing.T) {
	o := fusedOpts(t, 8)
	o.Topo = interconnect.TorusTopo(2, 4, interconnect.DefaultConfig())
	o.ParWorkers = 2
	stats := func(mode sim.ClusterSyncMode) sim.ClusterStats {
		po := o
		po.SyncMode = mode
		var st sim.ClusterStats
		po.ClusterStats = &st
		if _, err := RunFusedGEMMRSMultiDevice(po); err != nil {
			t.Fatal(err)
		}
		return st
	}
	win := stats(sim.SyncWindowed)
	app := stats(sim.SyncAppointment)
	if app.NullMessages == 0 {
		t.Error("appointment run counted no null messages")
	}
	win.Mode, app.Mode = 0, 0
	win.NullMessages, app.NullMessages = 0, 0
	if win != app {
		t.Errorf("coordination stats diverged across modes\nwindowed:    %+v\nappointment: %+v", win, app)
	}
}

// TestMultiDeviceAppointmentStress reruns the full-model stress under forced
// appointment mode with maximal workers — the -race exercise for the
// promise-refresh path through the whole t3core datapath.
func TestMultiDeviceAppointmentStress(t *testing.T) {
	o := parOptions(t, 512, 512, 128, 8)
	o.Topo = interconnect.TorusTopo(2, 4, interconnect.DefaultConfig())
	want, err := RunFusedGEMMRSMultiDevice(o)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		po := o
		po.ParWorkers = 8
		po.SyncMode = sim.SyncAppointment
		got, err := RunFusedGEMMRSMultiDevice(po)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("rep=%d: appointment stress run diverged", rep)
		}
	}
}
