package t3core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"t3sim/internal/collective"
)

func contributions(n, length int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for d := range out {
		arr := make([]float32, length)
		for i := range arr {
			arr[i] = float32(rng.Intn(2000)-1000) / 16
		}
		out[d] = arr
	}
	return out
}

func checkOwnedChunks(t *testing.T, n, length int, data [][]float32, res *FunctionalResult) {
	t.Helper()
	ref, err := collective.ReferenceAllReduce(data)
	if err != nil {
		t.Fatal(err)
	}
	bounds := collective.ChunkBounds(length, n)
	for d := 0; d < n; d++ {
		b := bounds[collective.OwnedChunk(d, n)]
		for e := b[0]; e < b[1]; e++ {
			if math.Abs(float64(res.Buffers[d][e]-ref[e])) > 1e-3 {
				t.Fatalf("n=%d device %d elem %d = %v, want %v", n, d, e, res.Buffers[d][e], ref[e])
			}
		}
	}
}

func TestFusedRSMatchesReference(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		for _, length := range []int{64, 97, 1024} {
			data := contributions(n, length, int64(n*7+length))
			res, err := RunFunctionalFusedReduceScatter(data, 16, 1)
			if err != nil {
				t.Fatalf("n=%d len=%d: %v", n, length, err)
			}
			checkOwnedChunks(t, n, length, data, res)
		}
	}
}

func TestFusedRSOrderIndependence(t *testing.T) {
	// The protocol must produce the same result under any production order.
	n, length := 4, 512
	data := contributions(n, length, 99)
	for seed := int64(0); seed < 8; seed++ {
		res, err := RunFunctionalFusedReduceScatter(data, 8, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkOwnedChunks(t, n, length, data, res)
	}
}

func TestFusedRSProperty(t *testing.T) {
	f := func(nRaw, lenRaw uint8, seed int64) bool {
		n := int(nRaw)%6 + 2
		length := int(lenRaw)%400 + n // at least one element per chunk
		data := contributions(n, length, seed)
		res, err := RunFunctionalFusedReduceScatter(data, 8, seed)
		if err != nil {
			return false
		}
		ref, _ := collective.ReferenceAllReduce(data)
		bounds := collective.ChunkBounds(length, n)
		for d := 0; d < n; d++ {
			b := bounds[collective.OwnedChunk(d, n)]
			for e := b[0]; e < b[1]; e++ {
				if math.Abs(float64(res.Buffers[d][e]-ref[e])) > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFusedRSProtocolCounts(t *testing.T) {
	n, length, tile := 4, 1024, 32
	data := contributions(n, length, 5)
	res, err := RunFunctionalFusedReduceScatter(data, tile, 1)
	if err != nil {
		t.Fatal(err)
	}
	tilesPerChunk := (length / n) / tile // 8
	for d := 0; d < n; d++ {
		// Tracked tiles: phases 1..n-1, one fire each.
		wantFired := int64((n - 1) * tilesPerChunk)
		if res.TrackerFired[d] != wantFired {
			t.Errorf("device %d fired %d, want %d", d, res.TrackerFired[d], wantFired)
		}
		// DMA triggers: phases 1..n-2 only.
		wantDMA := int64((n - 2) * tilesPerChunk)
		if res.DMATriggered[d] != wantDMA {
			t.Errorf("device %d DMA %d, want %d", d, res.DMATriggered[d], wantDMA)
		}
		// Remote writes: phase 0 only.
		if res.RemoteWrites[d] != int64(tilesPerChunk) {
			t.Errorf("device %d remote writes %d, want %d", d, res.RemoteWrites[d], tilesPerChunk)
		}
	}
}

func TestFusedRSStaysWithinTrackerBudget(t *testing.T) {
	// Even for a large array the live-entry high-water mark must fit the
	// 19 KB hardware structure (256 sets × 8 ways).
	n, length := 8, 64*1024
	data := contributions(n, length, 11)
	res, err := RunFunctionalFusedReduceScatter(data, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := NewTracker(DefaultTrackerConfig())
	for d := 0; d < n; d++ {
		if res.TrackerMaxLive[d] > tr.Capacity() {
			t.Errorf("device %d tracker high-water %d exceeds capacity %d",
				d, res.TrackerMaxLive[d], tr.Capacity())
		}
	}
}

func TestFusedRSInputValidation(t *testing.T) {
	if _, err := RunFunctionalFusedReduceScatter(nil, 8, 1); err == nil {
		t.Error("nil input: expected error")
	}
	if _, err := RunFunctionalFusedReduceScatter([][]float32{{1}}, 8, 1); err == nil {
		t.Error("single device: expected error")
	}
	if _, err := RunFunctionalFusedReduceScatter([][]float32{{1}, {1, 2}}, 8, 1); err == nil {
		t.Error("ragged input: expected error")
	}
	if _, err := RunFunctionalFusedReduceScatter(contributions(2, 16, 1), 0, 1); err == nil {
		t.Error("zero tile: expected error")
	}
}
