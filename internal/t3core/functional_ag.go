package t3core

import (
	"fmt"
	"math/rand"

	"t3sim/internal/memory"
	"t3sim/internal/units"
)

// agDevice is one device's state in the functional fused all-gather run.
type agDevice struct {
	id      int
	tracker *Tracker
	dma     *DMATable
	buffer  []float32
}

// RunFunctionalFusedAllGather executes the §7.1 fused GEMM→ring-all-gather
// protocol on real data: shards[d] is device d's produced slice of the
// output (a column-parallel GEMM shard). Stores are plain writes; the
// producer stores its shard locally and remote-writes it to the next
// device; each arriving tile is staged, counted by the tracker (one update
// per element), and the triggered DMA forwards it hop by hop until all
// devices hold all shards.
//
// The returned buffers must equal the concatenation of all shards on every
// device — verified against the functional collective layer by the tests.
func RunFunctionalFusedAllGather(shards [][]float32, tileElems int, seed int64) (*FunctionalResult, error) {
	n := len(shards)
	if n < 2 {
		return nil, fmt.Errorf("t3core: need >= 2 devices, got %d", n)
	}
	shardLen := len(shards[0])
	for d, s := range shards {
		if len(s) != shardLen {
			return nil, fmt.Errorf("t3core: shard %d has %d elements, want %d", d, len(s), shardLen)
		}
	}
	if shardLen == 0 {
		return nil, fmt.Errorf("t3core: empty shards")
	}
	if tileElems <= 0 {
		return nil, fmt.Errorf("t3core: tileElems = %d", tileElems)
	}
	tilesPerShard := (shardLen + tileElems - 1) / tileElems
	total := n * shardLen
	rng := rand.New(rand.NewSource(seed))

	devs := make([]*agDevice, n)
	res := &FunctionalResult{
		Buffers:        make([][]float32, n),
		TrackerMaxLive: make([]int, n),
		TrackerFired:   make([]int64, n),
		DMATriggered:   make([]int64, n),
		RemoteWrites:   make([]int64, n),
	}
	var protoErr error
	fail := func(err error) {
		if protoErr == nil && err != nil {
			protoErr = err
		}
	}

	// deliver forwards one (shard, tile, hop) arrival into device d.
	var deliver func(d, shard, tile, hop int)

	// Tile identity: hops of each shard's tiles are distinct tracker rows.
	tileID := func(shard, tile, hop int) TileID {
		g := (hop*n+shard)*tilesPerShard + tile
		return TileID{WG: g / 8, WF: g % 8}
	}
	tileRangeOf := func(shard, tile int) (lo, hi int) {
		lo = shard*shardLen + tile*tileElems
		hi = lo + tileElems
		if end := (shard + 1) * shardLen; hi > end {
			hi = end
		}
		return lo, hi
	}

	for d := 0; d < n; d++ {
		tr, err := NewTracker(TrackerConfig{Sets: 256, Ways: 64, MaxWFsPerWG: 8})
		if err != nil {
			return nil, err
		}
		dev := &agDevice{id: d, tracker: tr, dma: NewDMATable(), buffer: make([]float32, total)}
		devs[d] = dev
		// Program the forwarding DMAs: hops 1..n-2 of every foreign shard.
		for hop := 1; hop < n-1; hop++ {
			shard := mod(d-hop, n) // the shard arriving at d after `hop` hops
			for tile := 0; tile < tilesPerShard; tile++ {
				lo, hi := tileRangeOf(shard, tile)
				if err := dev.dma.Program(tileID(shard, tile, hop), DMACommand{
					DestDevice: (d + 1) % n,
					Op:         memory.Write,
					Bytes:      units.Bytes(hi-lo) * 4,
				}); err != nil {
					return nil, err
				}
			}
		}
		d := d
		if err := tr.SetProgram(Program{
			WFTileBytes:       units.Bytes(tileElems) * 4,
			UpdatesPerElement: 1, // plain writes: a single update completes a tile
			TileBytes: func(id TileID) units.Bytes {
				g := id.WG*8 + id.WF
				shard := (g / tilesPerShard) % n
				tile := g % tilesPerShard
				lo, hi := tileRangeOf(shard, tile)
				return units.Bytes(hi-lo) * 4
			},
			OnReady: func(id TileID) {
				cmd, ok := devs[d].dma.MarkReady(id)
				if !ok {
					return // final hop: nothing to forward
				}
				g := id.WG*8 + id.WF
				hop := g / (n * tilesPerShard)
				shard := (g / tilesPerShard) % n
				tile := g % tilesPerShard
				deliver(cmd.DestDevice, shard, tile, hop+1)
			},
		}); err != nil {
			return nil, err
		}
	}

	deliver = func(d, shard, tile, hop int) {
		lo, hi := tileRangeOf(shard, tile)
		copy(devs[d].buffer[lo:hi], shards[shard][lo-shard*shardLen:hi-shard*shardLen])
		fail(devs[d].tracker.Observe(tileID(shard, tile, hop), units.Bytes(hi-lo)*4))
	}

	// Production: every device stores its shard locally and remote-writes it
	// to the next device, tile by tile in shuffled order.
	type job struct{ dev, tile int }
	var jobs []job
	for d := 0; d < n; d++ {
		for tile := 0; tile < tilesPerShard; tile++ {
			jobs = append(jobs, job{d, tile})
		}
	}
	rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	for _, j := range jobs {
		d := j.dev
		lo, hi := tileRangeOf(d, j.tile)
		copy(devs[d].buffer[lo:hi], shards[d][lo-d*shardLen:hi-d*shardLen])
		res.RemoteWrites[d]++
		deliver((d+1)%n, d, j.tile, 1)
		if protoErr != nil {
			return nil, protoErr
		}
	}
	if protoErr != nil {
		return nil, protoErr
	}

	for d := 0; d < n; d++ {
		res.Buffers[d] = devs[d].buffer
		res.TrackerMaxLive[d] = devs[d].tracker.MaxLive()
		res.TrackerFired[d] = devs[d].tracker.Fired()
		res.DMATriggered[d] = devs[d].dma.Triggered()
		if pending := devs[d].dma.Pending(); pending != 0 {
			return nil, fmt.Errorf("t3core: device %d finished with %d DMA commands pending", d, pending)
		}
		if live := devs[d].tracker.Live(); live != 0 {
			return nil, fmt.Errorf("t3core: device %d finished with %d live tracker entries", d, live)
		}
	}
	return res, nil
}
