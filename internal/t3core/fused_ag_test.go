package t3core

import (
	"testing"

	"t3sim/internal/gemm"
	"t3sim/internal/memory"
	"t3sim/internal/units"
)

func agOpts(t *testing.T, devices int) FusedOptions {
	t.Helper()
	o := fusedOpts(t, devices)
	// The grid is the producer's local shard for all-gather.
	g, err := gemm.NewGrid(gemm.Shape{M: 2048, N: 512, K: 1024, ElemBytes: 2}, gemm.DefaultTiling())
	if err != nil {
		t.Fatal(err)
	}
	o.Grid = g
	o.Collective = RingAllGather
	return o
}

func TestFusedAGCompletes(t *testing.T) {
	res, err := RunFusedGEMMAG(agOpts(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.GEMMDone <= 0 || res.CollectiveDone <= 0 || res.Done < res.CollectiveDone {
		t.Fatalf("times: %+v", res)
	}
}

func TestFusedAGTrafficAccounting(t *testing.T) {
	n := 4
	o := agOpts(t, n)
	res, err := RunFusedGEMMAG(o)
	if err != nil {
		t.Fatal(err)
	}
	shard := units.Bytes(o.Grid.NumWFs()) * o.Grid.WFTileBytes()

	// Local writes: own shard (compute stream) + n-1 staged shards (comm).
	if got := res.DRAM.Bytes[memory.Write][memory.StreamCompute]; got != shard {
		t.Errorf("own shard writes = %v, want %v", got, shard)
	}
	if got := res.DRAM.Bytes[memory.Write][memory.StreamComm]; got != shard*units.Bytes(n-1) {
		t.Errorf("staged writes = %v, want %v", got, shard*units.Bytes(n-1))
	}
	// Forward reads: hops 1..n-2 re-read staged shards.
	if got := res.DRAM.Bytes[memory.Read][memory.StreamComm]; got != shard*units.Bytes(n-2) {
		t.Errorf("forward reads = %v, want %v", got, shard*units.Bytes(n-2))
	}
	// No reductions anywhere: zero NMC updates (§7.1).
	if got := res.DRAM.KindBytes(memory.Update); got != 0 {
		t.Errorf("all-gather produced %v updates, want 0", got)
	}
	// Link: own shard + n-2 forwards.
	if res.LinkBytes != shard*units.Bytes(n-1) {
		t.Errorf("link bytes = %v, want %v", res.LinkBytes, shard*units.Bytes(n-1))
	}
	// DMA triggers: hops 1..n-2 per tile.
	wantDMA := int64(o.Grid.NumWFs()) * int64(n-2)
	if res.DMATriggered != wantDMA {
		t.Errorf("DMA triggered = %d, want %d", res.DMATriggered, wantDMA)
	}
}

func TestFusedAGOverlapShape(t *testing.T) {
	// The gather of n-1 shards should largely hide behind the producer:
	// exposure is bounded by roughly one shard's wire time per residual hop,
	// far below the full serialized all-gather.
	o := agOpts(t, 8)
	res, err := RunFusedGEMMAG(o)
	if err != nil {
		t.Fatal(err)
	}
	shard := units.Bytes(o.Grid.NumWFs()) * o.Grid.WFTileBytes()
	serialized := o.Link.LinkBandwidth.TransferTime(shard * 7)
	exposure := res.Done - res.GEMMDone
	if exposure >= serialized {
		t.Errorf("exposed %v not below serialized AG %v", exposure, serialized)
	}
}

func TestFusedAGValidation(t *testing.T) {
	o := agOpts(t, 4)
	o.Collective = RingReduceScatter
	if _, err := RunFusedGEMMAG(o); err == nil {
		t.Error("wrong collective: expected error")
	}
	o = agOpts(t, 4)
	o.Grid.Tiling.SplitK = 2
	if _, err := RunFusedGEMMAG(o); err == nil {
		t.Error("split-K all-gather: expected error")
	}
	o = agOpts(t, 1)
	if _, err := RunFusedGEMMAG(o); err == nil {
		t.Error("single device: expected error")
	}
}

func a2aOpts(t *testing.T, devices int) FusedOptions {
	t.Helper()
	o := fusedOpts(t, devices)
	o.Collective = AllToAll
	return o
}

func TestFusedAllToAllCompletes(t *testing.T) {
	res, err := RunFusedGEMMAllToAll(a2aOpts(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.GEMMDone <= 0 || res.Done <= 0 {
		t.Fatalf("times: %+v", res)
	}
}

func TestFusedAllToAllTraffic(t *testing.T) {
	n := 4
	o := a2aOpts(t, n)
	res, err := RunFusedGEMMAllToAll(o)
	if err != nil {
		t.Fatal(err)
	}
	total := units.Bytes(o.Grid.NumWFs()) * o.Grid.WFTileBytes()
	chunk := total / units.Bytes(n)

	// Owned chunk stored locally; remote-mapped output not written locally
	// at all (§7.1).
	if got := res.DRAM.Bytes[memory.Write][memory.StreamCompute]; got != chunk {
		t.Errorf("local writes = %v, want %v (owned chunk only)", got, chunk)
	}
	// Incoming: n-1 chunks staged.
	if got := res.DRAM.Bytes[memory.Write][memory.StreamComm]; got != chunk*units.Bytes(n-1) {
		t.Errorf("incoming writes = %v, want %v", got, chunk*units.Bytes(n-1))
	}
	// No collective reads, no updates, no forwarding.
	if got := res.DRAM.Bytes[memory.Read][memory.StreamComm]; got != 0 {
		t.Errorf("collective reads = %v, want 0", got)
	}
	if got := res.DRAM.KindBytes(memory.Update); got != 0 {
		t.Errorf("updates = %v, want 0", got)
	}
	if res.LinkBytes != chunk*units.Bytes(n-1) {
		t.Errorf("link bytes = %v, want %v", res.LinkBytes, chunk*units.Bytes(n-1))
	}
}

func TestFusedAllToAllValidation(t *testing.T) {
	o := a2aOpts(t, 4)
	o.Collective = RingAllGather
	if _, err := RunFusedGEMMAllToAll(o); err == nil {
		t.Error("wrong collective: expected error")
	}
}
