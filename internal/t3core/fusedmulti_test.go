package t3core

import (
	"testing"

	"t3sim/internal/memory"
	"t3sim/internal/units"
)

func TestMultiDeviceCompletes(t *testing.T) {
	o := fusedOpts(t, 4)
	res, err := RunFusedGEMMRSMultiDevice(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GEMMDone) != 4 || len(res.CollectiveDone) != 4 {
		t.Fatalf("per-device slices: %+v", res)
	}
	for d := 0; d < 4; d++ {
		if res.GEMMDone[d] <= 0 || res.CollectiveDone[d] < res.GEMMDone[d] {
			t.Errorf("device %d: gemm=%v coll=%v", d, res.GEMMDone[d], res.CollectiveDone[d])
		}
	}
}

func TestMultiDeviceHomogeneity(t *testing.T) {
	// The §5.1.1 mirror methodology assumes all devices behave identically;
	// the explicit simulation must bear that out: completion skew across
	// devices should be negligible relative to the run length.
	res, err := RunFusedGEMMRSMultiDevice(fusedOpts(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	skew := res.Skew()
	if float64(skew) > 0.01*float64(res.Done) {
		t.Errorf("completion skew %v is %.2f%% of run %v, want < 1%%",
			skew, 100*float64(skew)/float64(res.Done), res.Done)
	}
	for d := 1; d < 4; d++ {
		if res.GEMMDone[d] != res.GEMMDone[0] {
			t.Errorf("GEMM completion differs across devices: %v", res.GEMMDone)
			break
		}
	}
}

func TestMultiDeviceMatchesMirror(t *testing.T) {
	// The headline validation: the explicit N-device simulation and the
	// single-GPU mirror run must agree closely on completion time.
	for _, n := range []int{2, 4, 8} {
		o := fusedOpts(t, n)
		mirror, err := RunFusedGEMMRS(o)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := RunFusedGEMMRSMultiDevice(o)
		if err != nil {
			t.Fatal(err)
		}
		rel := (float64(multi.Done) - float64(mirror.CollectiveDone)) / float64(multi.Done)
		if rel < -0.05 || rel > 0.05 {
			t.Errorf("n=%d: multi %v vs mirror %v (%.2f%%)", n, multi.Done, mirror.CollectiveDone, 100*rel)
		}
	}
}

func TestMultiDeviceTrafficMatchesMirror(t *testing.T) {
	// Per-device traffic must match the mirror's accounting exactly when
	// chunks divide evenly.
	o := fusedOpts(t, 4)
	mirror, err := RunFusedGEMMRS(o)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunFusedGEMMRSMultiDevice(o)
	if err != nil {
		t.Fatal(err)
	}
	for d, cnt := range multi.PerDeviceDRAM {
		for _, k := range []memory.AccessKind{memory.Read, memory.Write, memory.Update} {
			for _, s := range []memory.Stream{memory.StreamCompute, memory.StreamComm} {
				if cnt.Bytes[k][s] != mirror.DRAM.Bytes[k][s] {
					t.Errorf("device %d %v/%v = %v, mirror %v",
						d, k, s, cnt.Bytes[k][s], mirror.DRAM.Bytes[k][s])
				}
			}
		}
	}
	// Total link traffic: n devices, each pushing (n-1)/n of the output.
	if multi.LinkBytes != mirror.LinkBytes*units.Bytes(o.Devices) {
		t.Errorf("link bytes = %v, want %v", multi.LinkBytes, mirror.LinkBytes*4)
	}
}

func TestMultiDeviceUnevenChunks(t *testing.T) {
	// 3 devices over a tile count not divisible by 3 still completes, with
	// every tile fired exactly once.
	o := fusedOpts(t, 3)
	res, err := RunFusedGEMMRSMultiDevice(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done <= 0 {
		t.Error("no completion")
	}
}

func TestMultiDeviceValidation(t *testing.T) {
	o := fusedOpts(t, 4)
	o.Collective = DirectReduceScatter
	if _, err := RunFusedGEMMRSMultiDevice(o); err == nil {
		t.Error("direct-RS multi: expected error")
	}
	o = fusedOpts(t, 4)
	o.Grid.Tiling.SplitK = 2
	if _, err := RunFusedGEMMRSMultiDevice(o); err == nil {
		t.Error("split-K multi: expected error")
	}
}
