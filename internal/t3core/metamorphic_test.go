package t3core

import (
	"fmt"
	"testing"

	"t3sim/internal/check"
	"t3sim/internal/gemm"
	"t3sim/internal/gpu"
	"t3sim/internal/memory"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// Metamorphic tests for the fused runners: instead of pinning absolute
// timings, they assert relations that must hold between runs whose inputs
// stand in a known relation (bounds against isolated executions, monotonicity
// in problem size and link speed). Every run carries the invariant checker,
// so each metamorphic case doubles as a conservation/ordering/bound audit.

// runIsolatedGEMM times the same GEMM alone on an identical machine: private
// engine, full CU allocation, no collective sharing the memory system.
func runIsolatedGEMM(t *testing.T, o FusedOptions) units.Time {
	t.Helper()
	eng := sim.NewEngine()
	mc, err := memory.NewController(eng, o.Memory, memory.ComputeFirst{})
	if err != nil {
		t.Fatal(err)
	}
	k := &gpu.GEMMKernel{Eng: eng, Mem: mc, GPU: o.GPU, Grid: o.Grid}
	if err := k.Start(nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	return k.Finished()
}

// checkedOpts returns the options with a fresh recording checker attached.
func checkedOpts(o FusedOptions) (FusedOptions, *check.Checker) {
	c := check.New()
	o.Check = c
	return o, c
}

func assertClean(t *testing.T, c *check.Checker, label string) {
	t.Helper()
	for _, v := range c.Violations() {
		t.Errorf("%s: invariant violation: %s", label, v)
	}
}

// TestMetamorphicFusedBounds brackets every fused collective between its two
// isolated references: the run can finish no earlier than its own wire
// serialization allows (all link bytes cross the device's forward link), and
// no later than the fully serialized schedule — isolated GEMM followed by the
// whole collective at link speed — since overlap may only hide work, never
// invent it.
func TestMetamorphicFusedBounds(t *testing.T) {
	base := fusedOpts(t, 4)
	isolated := runIsolatedGEMM(t, base)
	for _, tc := range []struct {
		name string
		coll Collective
		run  func(FusedOptions) (FusedResult, error)
	}{
		{"rs", RingReduceScatter, RunFusedGEMMRS},
		{"direct-rs", DirectReduceScatter, RunFusedGEMMRS},
		{"ag", RingAllGather, RunFusedGEMMAG},
		{"a2a", AllToAll, RunFusedGEMMAllToAll},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o := base
			o.Collective = tc.coll
			o, c := checkedOpts(o)
			res, err := tc.run(o)
			if err != nil {
				t.Fatal(err)
			}
			assertClean(t, c, tc.name)

			// Lower bound: ring and all-to-all devices serialize their sends
			// through one forward link; direct-RS scatters over n-1 links.
			links := 1
			if tc.coll == DirectReduceScatter {
				links = o.Devices - 1
			}
			wireFloor := o.Link.LinkBandwidth.TransferTime(res.LinkBytes / units.Bytes(links))
			if res.Done < wireFloor {
				t.Errorf("done %v beats the wire serialization floor %v for %v over %d link(s)",
					res.Done, wireFloor, res.LinkBytes, links)
			}

			// Upper bound: the serialized schedule. The fused run also drains
			// its staged updates through DRAM, so charge the serial schedule
			// the same DRAM drain allowance (total traffic at full bandwidth).
			serialWire := o.Link.LinkBandwidth.TransferTime(res.LinkBytes/units.Bytes(links)) +
				units.Time(o.Devices)*o.Link.LinkLatency
			dramDrain := o.Memory.TotalBandwidth.TransferTime(res.DRAM.TotalBytes())
			ceiling := isolated + serialWire + dramDrain
			if res.Done > ceiling {
				t.Errorf("done %v exceeds the serialized ceiling %v (isolated GEMM %v + wire %v + drain %v)",
					res.Done, ceiling, isolated, serialWire, dramDrain)
			}
		})
	}
}

// TestMetamorphicFusedMonotoneInSize grows the GEMM's M dimension and checks
// that completion times and traffic only grow with it.
func TestMetamorphicFusedMonotoneInSize(t *testing.T) {
	var prev *FusedResult
	var prevM int
	for _, m := range []int{1024, 2048, 4096} {
		g, err := gemm.NewGrid(gemm.Shape{M: m, N: 2048, K: 512, ElemBytes: 2}, gemm.DefaultTiling())
		if err != nil {
			t.Fatal(err)
		}
		o := fusedOpts(t, 4)
		o.Grid = g
		o, c := checkedOpts(o)
		res, err := RunFusedGEMMRS(o)
		if err != nil {
			t.Fatal(err)
		}
		assertClean(t, c, fmt.Sprintf("M=%d", m))
		if prev != nil {
			if res.Done < prev.Done {
				t.Errorf("M=%d done %v earlier than M=%d done %v", m, res.Done, prevM, prev.Done)
			}
			if res.GEMMDone < prev.GEMMDone {
				t.Errorf("M=%d GEMM done %v earlier than M=%d %v", m, res.GEMMDone, prevM, prev.GEMMDone)
			}
			if res.LinkBytes <= prev.LinkBytes {
				t.Errorf("M=%d link bytes %v not above M=%d %v", m, res.LinkBytes, prevM, prev.LinkBytes)
			}
			if res.DRAM.TotalBytes() <= prev.DRAM.TotalBytes() {
				t.Errorf("M=%d DRAM bytes %v not above M=%d %v", m, res.DRAM.TotalBytes(), prevM, prev.DRAM.TotalBytes())
			}
		}
		r := res
		prev, prevM = &r, m
	}
}

// TestMetamorphicFusedMonotoneInLink speeds the ring up and checks the fused
// run never slows down: with identical compute and memory, a faster link can
// only remove wire time from the critical path.
func TestMetamorphicFusedMonotoneInLink(t *testing.T) {
	var prev units.Time
	var prevBW units.Bandwidth
	for _, bw := range []units.Bandwidth{37*units.GBps + units.Bandwidth(500e6), 75 * units.GBps, 150 * units.GBps} {
		o := fusedOpts(t, 4)
		o.Link.LinkBandwidth = bw
		o, c := checkedOpts(o)
		res, err := RunFusedGEMMRS(o)
		if err != nil {
			t.Fatal(err)
		}
		assertClean(t, c, bw.String())
		if prev != 0 && res.Done > prev {
			t.Errorf("link %v done %v slower than link %v done %v", bw, res.Done, prevBW, prev)
		}
		prev, prevBW = res.Done, bw
	}
}
