package t3core

import (
	"testing"

	"t3sim/internal/memory"
	"t3sim/internal/units"
)

func TestFusedDMABlockGranularity(t *testing.T) {
	// Larger DMA blocks must preserve byte conservation and completion
	// while reducing trigger count.
	base := fusedOpts(t, 4)
	r1, err := RunFusedGEMMRS(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		o := fusedOpts(t, 4)
		o.DMATilesPerBlock = k
		rk, err := RunFusedGEMMRS(o)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Same total DMA read volume and incoming update volume.
		if rk.DRAM.Bytes[memory.Read][memory.StreamComm] != r1.DRAM.Bytes[memory.Read][memory.StreamComm] {
			t.Errorf("k=%d: DMA read bytes %v != %v", k,
				rk.DRAM.Bytes[memory.Read][memory.StreamComm],
				r1.DRAM.Bytes[memory.Read][memory.StreamComm])
		}
		if rk.LinkBytes != r1.LinkBytes {
			t.Errorf("k=%d: link bytes %v != %v", k, rk.LinkBytes, r1.LinkBytes)
		}
		if rk.Done <= 0 {
			t.Errorf("k=%d: no completion", k)
		}
		// Completion time may differ slightly (burstier), but not wildly.
		rel := float64(rk.Done)/float64(r1.Done) - 1
		if rel < -0.2 || rel > 0.2 {
			t.Errorf("k=%d: Done %v vs %v (%.1f%%)", k, rk.Done, r1.Done, 100*rel)
		}
	}
}

func TestFusedDMABlockUnevenChunks(t *testing.T) {
	// Chunk sizes that are not multiples of the block size still complete.
	o := fusedOpts(t, 3)
	o.DMATilesPerBlock = 7
	res, err := RunFusedGEMMRS(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done <= 0 {
		t.Error("no completion")
	}
}

func TestFusedCustomArbiterFixedThresholds(t *testing.T) {
	// The §6.1.3 fixed-threshold sweep: every pinned threshold completes,
	// and the pinned value survives the monitor window.
	for _, th := range []int{5, 10, 30, -1} {
		o := fusedOpts(t, 8)
		mca := memory.NewMCA(memory.DefaultMCAConfig())
		mca.SetThreshold(th)
		o.CustomArbiter = mca
		o.Arbitration = ArbMCA // still runs the monitor window
		res, err := RunFusedGEMMRS(o)
		if err != nil {
			t.Fatalf("threshold %d: %v", th, err)
		}
		if res.MCAThreshold != th {
			t.Errorf("threshold %d overridden to %d", th, res.MCAThreshold)
		}
		if res.Done <= 0 {
			t.Errorf("threshold %d: no completion", th)
		}
	}
}

func TestMCAPinnedThresholdIgnoresMonitor(t *testing.T) {
	mca := memory.NewMCA(memory.DefaultMCAConfig())
	mca.SetThreshold(30)
	mca.SetIntensity(0.95) // would map to 5
	if mca.Threshold() != 30 {
		t.Errorf("pinned threshold overridden: %d", mca.Threshold())
	}
	if !mca.Calibrated() {
		t.Error("pinned MCA should report calibrated")
	}
}

func TestFusedDMABlockTriggerCounts(t *testing.T) {
	// With k tiles per block the number of link sends shrinks ~k-fold; the
	// tracker still fires once per tile.
	o := fusedOpts(t, 4)
	o.DMATilesPerBlock = 4
	res, err := RunFusedGEMMRS(o)
	if err != nil {
		t.Fatal(err)
	}
	tiles := o.Grid.NumWFs()
	wantFires := int64(tiles) * 3 / 4 // phases 1..3 of 4 fire
	if res.DMATriggered != int64(tiles)/2 {
		// DMA table consumed once per tile of phases 1..2 (n-2 chunks).
		t.Errorf("DMA table consumed %d, want %d", res.DMATriggered, tiles/2)
	}
	_ = wantFires
	// Byte conservation: incoming updates still (n-1)/n of the output.
	total := units.Bytes(tiles) * o.Grid.WFTileBytes()
	want := total / 4 * 3
	if got := res.DRAM.Bytes[memory.Update][memory.StreamComm]; got != want {
		t.Errorf("incoming updates %v, want %v", got, want)
	}
}
