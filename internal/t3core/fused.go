package t3core

import (
	"fmt"

	"t3sim/internal/check"
	"t3sim/internal/gemm"
	"t3sim/internal/gpu"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// Arbitration selects the memory-controller policy for a fused run (§5.3's
// T3 vs T3-MCA configurations).
type Arbitration int

// Arbitration policies.
const (
	// ArbRoundRobin is the baseline round-robin-with-fallback policy (the
	// plain T3 configuration).
	ArbRoundRobin Arbitration = iota
	// ArbMCA is the communication-aware dynamic policy of §4.5 (T3-MCA).
	ArbMCA
	// ArbComputeFirst always prioritizes the compute stream (ablation).
	ArbComputeFirst
)

// String implements fmt.Stringer.
func (a Arbitration) String() string {
	switch a {
	case ArbRoundRobin:
		return "round-robin"
	case ArbMCA:
		return "mca"
	case ArbComputeFirst:
		return "compute-first"
	default:
		return fmt.Sprintf("Arbitration(%d)", int(a))
	}
}

// FusedOptions parameterizes a fused GEMM→collective timing run.
type FusedOptions struct {
	GPU     gpu.Config
	Memory  memory.Config
	Link    interconnect.Config
	Tracker TrackerConfig
	// Topo, when non-zero, generalizes the interconnect of the explicit
	// multi-device run (RunFusedGEMMRSMultiDevice) from the implicit
	// bidirectional ring to an arbitrary topology graph — ring, 2D torus,
	// fully-connected switch, or hierarchical two-level network. Every
	// neighbor send is routed over the graph's deterministic shortest
	// paths, store-and-forwarding at intermediate hops, and the cluster
	// path's conservative lookahead becomes the topology's minimum link
	// latency. The zero spec is the legacy ring, byte-identical to the
	// pre-topology simulator. Single-GPU mirror runs model the ring
	// implicitly and reject a non-ring Topo.
	Topo interconnect.TopoSpec
	// Devices is the tensor-parallel degree (ring size).
	Devices int
	// Grid is the (already K-sliced) producer GEMM.
	Grid gemm.Grid
	// Arbitration picks the MC policy; ArbMCA also enables the §4.5 monitor
	// window during the GEMM's first stage.
	Arbitration Arbitration
	// Collective selects the fused collective; RingReduceScatter and
	// DirectReduceScatter are supported by the timing model.
	Collective Collective
	// GEMMCUs restricts the producer's CU allocation (0 = all). T3 itself
	// never steals CUs; this exists for ablations.
	GEMMCUs int
	// Observer, if non-nil, receives every memory-controller issue (used to
	// capture the Figure 17 DRAM traffic timeline).
	Observer memory.Observer
	// CustomArbiter, if non-nil, overrides Arbitration with a caller-built
	// policy (fixed-threshold MCA ablations, §6.1.3).
	CustomArbiter memory.Arbiter
	// DMATilesPerBlock sets the DMA block granularity in wavefront tiles
	// (§4.2.2: "the granularity of the DMA block/table entry is set to be
	// equal to or larger than the Tracker granularity"). 0 or 1 means one
	// tile per DMA; larger blocks make communication burstier.
	DMATilesPerBlock int
	// Events, if non-nil, receives the run's observability events.
	Events *EventLog
	// DoubleBufferedGEMM runs the producer with operand prefetching
	// (software pipelining) instead of the conservative read-then-compute
	// stage schedule.
	DoubleBufferedGEMM bool
	// Metrics, if non-nil, is threaded through every model in the run: the
	// memory controller, the producer kernel, and the ring links register
	// their instruments on it, and the run adds a "t3core" timeline track
	// with gemm/reduce-scatter/drain spans plus one instant per EventLog
	// event. A nil sink records nothing and costs nothing. If
	// Memory.Metrics is already set it wins for the controller.
	Metrics metrics.Sink
	// ParWorkers selects the execution strategy for the explicit
	// multi-device run (RunFusedGEMMRSMultiDevice only; single-GPU mirror
	// runs ignore it). 0 — the default — simulates all devices on one
	// shared engine, the legacy sequential path. Any positive value runs
	// each device on its own sim.Cluster engine, advanced in conservative
	// windows of one link latency, using up to ParWorkers goroutines per
	// window. Results are byte-identical at every value — the knob trades
	// wall-clock time only — so it is excluded from the experiment memo key
	// (policySkip). Falls back to the sequential path when LinkLatency is
	// zero, since a zero lookahead admits no conservative window.
	ParWorkers int
	// SyncMode selects the cluster coordinator's synchronization strategy
	// for the parallel multi-device path (ParWorkers > 0): windowed
	// full-recompute rounds, appointment-based (null-message) incremental
	// rounds, or — the zero default — automatic selection from the
	// topology's edge density. Both modes compute the identical per-round
	// horizon fixpoint, so results are byte-identical across every mode and
	// worker count; like ParWorkers it trades wall-clock time only and is
	// excluded from the experiment memo key (policySkip). The sequential
	// path (ParWorkers = 0) ignores it.
	SyncMode sim.ClusterSyncMode
	// ClusterStats, if non-nil, receives the scheduler's windowing summary
	// after an explicit multi-device run on the cluster path (ParWorkers > 0
	// with a positive link latency): round count, engine-window executions,
	// and total simulated time advanced, from which the benchmark harness
	// derives the average window width — the lookahead-quality metric tracked
	// across PRs. The sequential path zeroes it. The stats describe the
	// coordination layer, not the model, and are deliberately not part of
	// MultiDeviceResult: results stay byte-identical at every worker count,
	// while window shapes are an implementation detail of the scheduler.
	ClusterStats *sim.ClusterStats
	// Check, if non-nil, is threaded through every model the same way
	// Metrics is: the engine witnesses event-time monotonicity, the memory
	// channels witness service non-overlap and queue-depth bounds, the ring
	// links witness serialization non-overlap, and the run itself closes the
	// books at the end — ring bytes delivered equal bytes injected, the
	// tracker drained to zero live entries and fired once per tile within
	// its sets×ways budget, each DMA triggered exactly once per tile, spans
	// nest (GEMMDone ≤ CollectiveDone ≤ Done), and no link was busy longer
	// than the wall clock. A nil checker records nothing and costs nothing
	// (pinned by the nil-cost integration test). If Memory.Check is already
	// set it wins for the controller.
	Check *check.Checker
}

// emit records an observability event when a log is attached.
func (o FusedOptions) emit(at units.Time, kind EventKind, stage int, tile TileID) {
	if o.Events != nil {
		o.Events.Record(Event{At: at, Kind: kind, Stage: stage, Tile: tile})
	}
}

// Validate reports whether the options are usable.
func (o FusedOptions) Validate() error {
	if err := o.GPU.Validate(); err != nil {
		return err
	}
	if err := o.Memory.Validate(); err != nil {
		return err
	}
	if err := o.Link.Validate(); err != nil {
		return err
	}
	if err := o.Tracker.Validate(); err != nil {
		return err
	}
	if o.Devices < 2 {
		return fmt.Errorf("t3core: fused run needs >= 2 devices, got %d", o.Devices)
	}
	if err := o.Grid.Shape.Validate(); err != nil {
		return err
	}
	if err := o.Grid.Tiling.Validate(); err != nil {
		return err
	}
	if o.Collective != RingReduceScatter && o.Collective != DirectReduceScatter {
		return fmt.Errorf("t3sim: timing model supports ring and direct reduce-scatter, not %v", o.Collective)
	}
	if err := o.validateTopo(); err != nil {
		return err
	}
	if !o.Topo.IsZero() && o.Topo.Kind != interconnect.TopoRing {
		return fmt.Errorf("t3core: single-GPU mirror runs model the ring implicitly; use RunFusedGEMMRSMultiDevice for a %v topology", o.Topo.Kind)
	}
	tiles := o.Grid.NumWFs() / o.Grid.Tiling.SplitK
	if tiles < o.Devices {
		return fmt.Errorf("t3core: %d wavefront tiles cannot chunk across %d devices", tiles, o.Devices)
	}
	return nil
}

// FusedResult reports a fused run's timing and traffic.
type FusedResult struct {
	// GEMMDone is when the producer kernel finished (all stores accepted).
	GEMMDone units.Time
	// CollectiveDone is when the device's owned chunk completed (its
	// reduce-scatter postcondition held).
	CollectiveDone units.Time
	// Done is CollectiveDone plus the communication-stream drain at the
	// kernel boundary (§4.5).
	Done units.Time
	// DRAM is the device's memory traffic.
	DRAM memory.Counters
	// LinkBytes is the traffic the device pushed onto its forward ring link.
	LinkBytes units.Bytes
	// TrackerMaxLive is the tracker's live-entry high-water mark.
	TrackerMaxLive int
	// DMATriggered counts triggered DMA commands.
	DMATriggered int64
	// MCAThreshold is the calibrated occupancy limit (0 if not MCA; -1 if
	// unlimited).
	MCAThreshold int
	// StageReads echoes the GEMM's per-stage DRAM read bytes.
	StageReads []units.Bytes
}

// fusedRun is the single-GPU mirror simulation of §5.1.1: all devices in a
// tensor-parallel group execute identically, so the run models device 0 and
// generates its incoming traffic by mirroring its own outgoing sends — each
// delivered send also stands for the identical send of the previous
// neighbor arriving here, targeting the next production phase's chunk.
type fusedRun struct {
	o       FusedOptions
	eng     *sim.Engine
	mem     *memory.Controller
	links   []*interconnect.Link // 1 for ring; n-1 dedicated for direct-RS
	tracker *Tracker
	dma     *DMATable

	tileBytes  units.Bytes
	totalTiles int
	phaseStart []int // tile index where each phase's chunk begins

	wgCursor int // production cursor for the GEMM sink

	// blockFill counts fired tiles per DMA block when DMATilesPerBlock > 1.
	// Blocks are dense: blockOff[p] is phase p's first block index, so block
	// b of phase p lives at blockFill[blockOff[p]+b] — a flat array probe on
	// the trigger path instead of the map the counts used to live in.
	blockFill []int
	blockOff  []int

	// Direct-RS slice geometry, fixed per run (see sendDirect).
	sliceBytes units.Bytes
	localSlice units.Bytes
	dirLocal   *obsCB // completion for the locally-kept slice
	dirSlice   *obsCB // completion for an arriving peer slice

	// Freelists for the pooled per-event callbacks of the trigger/forward
	// path; steady state allocates nothing (see fused_ops.go).
	dmaOps    []*dmaOp
	remoteOps []*remoteOp
	directOps []*directOp
	stageCBs  []*stageCB

	updatesBuf []int // writeStage scratch, reused across stages

	ownedFence *sim.Fence
	result     FusedResult
	err        error

	kernel *gpu.GEMMKernel
	arb    memory.Arbiter

	mtrack   *metrics.Track   // "t3core" timeline (nil-safe)
	mTrigger *metrics.Counter // tracker-fired DMA triggers
	mRemote  *metrics.Counter // remote-mapped production stores

	// Invariant-checker handles (nil-safe; nil without FusedOptions.Check).
	chkRing *check.Ledger // wire bytes: injected into ring links vs delivered
	chkDMA  *check.Once   // one triggered DMA per dma_mapped tile

	// testDropIncoming, when positive, silently discards that many mirrored
	// incoming updates — a deliberately injected conservation bug used by the
	// checker's falsifiability test. Never set outside tests.
	testDropIncoming int
}

// emit records an observability event to the attached EventLog and mirrors
// it onto the "t3core" timeline as a thread-scoped instant, so tracker fires
// and DMA triggers show up in Perfetto next to the model spans.
func (r *fusedRun) emit(kind EventKind, stage int, tile TileID) {
	at := r.eng.Now()
	r.o.emit(at, kind, stage, tile)
	if r.mtrack != nil {
		r.mtrack.Instant(kind.String(), at)
	}
}

// RunFusedGEMMRS executes a fused GEMM→reduce-scatter and returns its
// timing and traffic. This is the paper's T3 (Arbitration=ArbRoundRobin) or
// T3-MCA (ArbMCA) configuration for one sub-layer.
func RunFusedGEMMRS(o FusedOptions) (FusedResult, error) {
	r, err := newFusedRun(o)
	if err != nil {
		return FusedResult{}, err
	}
	return r.run()
}

// newFusedRun validates the options and builds the run: engine, memory
// controller, ring links, tracker/DMA programming, and the producer kernel —
// everything except starting the simulation. Tests construct runs directly to
// inject faults before run().
func newFusedRun(o FusedOptions) (*fusedRun, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.Metrics != nil && o.Memory.Metrics == nil {
		o.Memory.Metrics = o.Metrics
	}
	if o.Check != nil && o.Memory.Check == nil {
		o.Memory.Check = o.Check
	}
	r := &fusedRun{o: o, eng: sim.NewEngine()}
	r.eng.AttachChecker(o.Check)
	if m := o.Metrics; m != nil {
		r.mtrack = m.Track("t3core")
		r.mTrigger = m.Counter("t3core.tracker.triggers")
		r.mRemote = m.Counter("t3core.remote_write_tiles")
	}
	if c := o.Check; c != nil {
		r.chkRing = c.Ledger("t3core.ring")
		r.chkDMA = c.Once("t3core.dma")
	}

	r.arb = o.CustomArbiter
	if r.arb == nil {
		var err error
		if r.arb, err = newArbiter(o.Arbitration); err != nil {
			return nil, err
		}
	}
	mc, err := memory.NewController(r.eng, o.Memory, r.arb)
	if err != nil {
		return nil, err
	}
	r.mem = mc
	if o.Observer != nil {
		mc.SetObserver(o.Observer)
	}
	nLinks := 1
	if o.Collective == DirectReduceScatter {
		nLinks = o.Devices - 1 // fully-connected: a dedicated link per peer
	}
	for i := 0; i < nLinks; i++ {
		link, err := interconnect.NewLink(r.eng, o.Link)
		if err != nil {
			return nil, err
		}
		name := "fwd0"
		if o.Collective == DirectReduceScatter {
			name = fmt.Sprintf("link%d", i)
		}
		if o.Metrics != nil {
			link.AttachMetrics(o.Metrics, name)
		}
		if o.Check != nil {
			link.AttachChecker(o.Check, name)
		}
		r.links = append(r.links, link)
	}

	if err := r.setupTiles(); err != nil {
		return nil, err
	}
	if err := r.setupTracker(); err != nil {
		return nil, err
	}

	r.kernel = &gpu.GEMMKernel{
		Eng:               r.eng,
		Mem:               mc,
		GPU:               o.GPU,
		Grid:              o.Grid,
		CUs:               o.GEMMCUs,
		OutputBypassesLLC: true, // §4.3: fused outputs are uncached
		Monitor:           o.Arbitration == ArbMCA,
		WriteStage:        r.writeStage,
		DoubleBuffered:    o.DoubleBufferedGEMM,
		Metrics:           o.Metrics,
		OnStageComputed: func(stage, _ int) {
			r.emit(EventStageComputed, stage, TileID{})
		},
	}
	return r, nil
}

// run starts the producer, drains the engine, applies the end-of-run
// invariant checks, and assembles the result.
func (r *fusedRun) run() (FusedResult, error) {
	o := r.o
	if err := r.kernel.Start(func() {
		r.result.GEMMDone = r.eng.Now()
		r.emit(EventGEMMDone, 0, TileID{})
		if r.mtrack != nil {
			r.mtrack.Span("gemm", 0, r.eng.Now())
		}
	}); err != nil {
		return FusedResult{}, err
	}
	wall := r.eng.Run()
	// End-of-run laws are checked before the stall/error returns below: a
	// stalled run is exactly the kind the violations explain.
	r.endChecks(wall)
	if r.err != nil {
		return FusedResult{}, r.err
	}
	if !r.ownedFence.Fired() {
		return FusedResult{}, fmt.Errorf("t3core: fused run stalled: %d owned tiles outstanding",
			r.ownedFence.Remaining())
	}
	r.result.DRAM = *r.mem.Counters()
	for _, l := range r.links {
		r.result.LinkBytes += l.SentBytes()
	}
	r.result.TrackerMaxLive = r.tracker.MaxLive()
	r.result.DMATriggered = r.dma.Triggered()
	if mca, ok := r.arb.(*memory.MCA); ok {
		r.result.MCAThreshold = mca.Threshold()
	}
	r.result.StageReads = r.kernel.StageReads()
	if m := o.Metrics; m != nil {
		m.Gauge("t3core.tracker.max_live").Set(int64(r.result.TrackerMaxLive))
		m.Gauge("t3core.dma.triggered").Set(r.result.DMATriggered)
	}
	return r.result, nil
}

// endChecks applies the laws that only hold once the simulation has drained.
func (r *fusedRun) endChecks(wall units.Time) {
	c := r.o.Check
	if !c.Enabled() {
		return
	}
	r.chkRing.Close(wall)
	if live := r.tracker.Live(); live != 0 {
		c.Violationf(wall, "t3core.tracker", check.RuleConservation+"/drain",
			"%d live entries after drain, want 0", live)
	}
	if fired, want := r.tracker.Fired(), int64(r.trackedTiles()); fired != want {
		c.Violationf(wall, "t3core.tracker", check.RuleConservation+"/fired",
			"%d tiles fired, want %d", fired, want)
	}
	if ml, limit := r.tracker.MaxLive(), r.tracker.Capacity(); ml > limit {
		c.Violationf(wall, "t3core.tracker", check.RuleBound+"/occupancy",
			"%d live entries exceed sets×ways = %d", ml, limit)
	}
	if r.result.CollectiveDone < r.result.GEMMDone {
		c.Violationf(wall, "t3core.spans", check.RuleOrdering+"/nesting",
			"collective done %v before gemm done %v", r.result.CollectiveDone, r.result.GEMMDone)
	}
	if r.result.Done < r.result.CollectiveDone {
		c.Violationf(wall, "t3core.spans", check.RuleOrdering+"/nesting",
			"drain done %v before collective done %v", r.result.Done, r.result.CollectiveDone)
	}
	for i, l := range r.links {
		if busy := l.BusyTime(); busy > wall {
			c.Violationf(wall, fmt.Sprintf("t3core.link%d", i), check.RuleBound+"/busy-time",
				"link busy %v exceeds wall time %v", busy, wall)
		}
	}
}

// setupTiles chunks the wavefront-tile space across devices.
func (r *fusedRun) setupTiles() error {
	g := r.o.Grid
	r.tileBytes = g.WFTileBytes()
	r.totalTiles = g.NumWFs() / g.Tiling.SplitK
	n := r.o.Devices
	r.phaseStart = make([]int, n+1)
	for p := 0; p <= n; p++ {
		r.phaseStart[p] = p * r.totalTiles / n
	}
	if k := r.o.DMATilesPerBlock; k > 1 {
		// Block-granular DMA: lay the per-block fill counters out densely,
		// one run of ceil(phaseSize/k) blocks per phase.
		r.blockOff = make([]int, n+1)
		for p := 0; p < n; p++ {
			r.blockOff[p+1] = r.blockOff[p] + (r.phaseSize(p)+k-1)/k
		}
		r.blockFill = make([]int, r.blockOff[n])
	}
	if r.o.Collective == DirectReduceScatter {
		r.sliceBytes = r.tileBytes / units.Bytes(n)
		r.localSlice = r.tileBytes - units.Bytes(n-1)*r.sliceBytes // absorbs remainder
		r.dirLocal = &obsCB{r: r, bytes: r.localSlice}
		r.dirSlice = &obsCB{r: r, bytes: r.sliceBytes}
	}
	return nil
}

func (r *fusedRun) phaseOf(tile int) int {
	// Phases are near-equal contiguous ranges; derive then fix up rounding.
	n := r.o.Devices
	p := tile * n / r.totalTiles
	for p > 0 && tile < r.phaseStart[p] {
		p--
	}
	for p < n-1 && tile >= r.phaseStart[p+1] {
		p++
	}
	return p
}

func (r *fusedRun) phaseSize(p int) int { return r.phaseStart[p+1] - r.phaseStart[p] }

// setupTracker programs the tracker and DMA table per the §4.4 address map.
func (r *fusedRun) setupTracker() error {
	tr, err := NewTracker(r.o.Tracker)
	if err != nil {
		return err
	}
	r.tracker = tr
	r.dma = NewDMATable()
	n := r.o.Devices
	updates := 1 + r.o.Grid.Tiling.SplitK // incoming + one local per K-slice (§7.7)
	if r.o.Collective == DirectReduceScatter {
		// Direct-RS: only the owned 1/n slice of each tile lands in local
		// memory, but it arrives from all n devices (and SplitK K-slices),
		// totaling exactly SplitK tile footprints at the controller.
		updates = r.o.Grid.Tiling.SplitK
	}
	err = tr.SetProgram(Program{
		WFTileBytes:       r.tileBytes,
		UpdatesPerElement: updates,
		OnReady:           r.onTileReady,
	})
	if err != nil {
		return err
	}
	if r.o.Collective == RingReduceScatter {
		// dma_map phases 1..n-2 forward to the next neighbor.
		next := 1 % n // device 0's forward neighbor
		for p := 1; p < n-1; p++ {
			for t := r.phaseStart[p]; t < r.phaseStart[p+1]; t++ {
				err := r.dma.Program(r.tileIDOf(t), DMACommand{
					DestDevice: next,
					Op:         memory.Update,
					Bytes:      r.tileBytes,
				})
				if err != nil {
					return err
				}
			}
		}
	}
	r.ownedFence = sim.NewFence(r.ownedTiles(), func() {
		r.result.CollectiveDone = r.eng.Now()
		r.emit(EventCollectiveDone, 0, TileID{})
		if r.mtrack != nil {
			r.mtrack.Span("reduce-scatter", 0, r.eng.Now())
		}
		// §4.5: the communication stream drains at the kernel boundary.
		r.mem.WhenIdle(memory.StreamComm, func() {
			r.result.Done = r.eng.Now()
			if r.mtrack != nil {
				r.mtrack.Span("drain", r.result.CollectiveDone, r.eng.Now())
			}
		})
	})
	return nil
}

// trackedTiles returns how many tiles the local tracker must fire over a full
// run. Ring-RS phase-0 tiles are remote-mapped — their stores leave over the
// link without touching the local tracker — so only phases 1..n-1 count;
// direct-RS observes every tile's owned slice locally.
func (r *fusedRun) trackedTiles() int {
	if r.o.Collective == DirectReduceScatter {
		return r.totalTiles
	}
	return r.totalTiles - r.phaseSize(0)
}

// ownedTiles returns how many tiles the device's owned region holds: the
// last production phase for ring-RS; every tile's owned slice for direct-RS.
func (r *fusedRun) ownedTiles() int {
	if r.o.Collective == DirectReduceScatter {
		return r.totalTiles
	}
	return r.phaseSize(r.o.Devices - 1)
}

func (r *fusedRun) tileIDOf(t int) TileID {
	return TileID{WG: t / 8, WF: t % 8}
}

func (r *fusedRun) tileOf(id TileID) int { return id.WG*8 + id.WF }

// writeStage is the GEMM's output sink: it routes each of the stage's
// wavefront-tile updates per the address-space configuration. With split-K,
// consecutive K-slice WGs update the same tile, each writing the full tile
// footprint of partial sums (§7.7). onDone runs when the stage's local
// stores are accepted (remote stores are fire-and-forget peer writes).
func (r *fusedRun) writeStage(_, wgs int, _ units.Bytes, onDone sim.Handler) {
	til := r.o.Grid.Tiling
	w0 := r.wgCursor
	r.wgCursor += wgs

	updates := r.updatesBuf[:0] // one entry per tile update this stage performs
	for w := w0; w < w0+wgs; w++ {
		base := (w / til.SplitK) * til.WFPerWG
		for wf := 0; wf < til.WFPerWG; wf++ {
			if t := base + wf; t < r.totalTiles {
				updates = append(updates, t)
			}
		}
	}
	r.updatesBuf = updates
	local := 0
	for _, t := range updates {
		if !r.treatRemote(t) {
			local++
		}
	}
	if local == 0 {
		// Matches NewFence(0, onDone)'s fire-at-creation: the stage callback
		// runs before the remote sends are issued.
		onDone()
		for _, t := range updates {
			r.sendRemote(t)
		}
		return
	}
	cb := r.getStageCB(local, onDone)
	for _, t := range updates {
		if r.treatRemote(t) {
			r.sendRemote(t)
			continue
		}
		r.mem.TransferTo(memory.Update, memory.StreamCompute, r.tileBytes,
			memory.Tag{WG: t / 8, WF: t % 8}, cb)
	}
}

// treatRemote reports whether a tile's production stores are remote-mapped.
func (r *fusedRun) treatRemote(t int) bool {
	if r.o.Collective == DirectReduceScatter {
		// All stores are sliced across peers; the local share is handled in
		// sendRemote's accounting. Treat every tile as remote-ish and model
		// the owned fraction separately.
		return true
	}
	return r.phaseOf(t) == 0
}

// sendRemote models one remote-mapped tile store: it goes over the link as
// the GEMM produces it; by mirror symmetry each delivery also represents the
// previous neighbor's identical store arriving here.
func (r *fusedRun) sendRemote(t int) {
	if r.o.Collective == DirectReduceScatter {
		r.sendDirect(t)
		return
	}
	r.mRemote.Inc()
	r.emit(EventRemoteWrite, 0, r.tileIDOf(t))
	r.chkRing.Add(int64(r.tileBytes))
	op := r.getRemoteOp(t)
	r.links[0].Send(r.tileBytes, op.delivered)
}

// sendDirect models one direct-RS tile store: (n-1)/n of the tile scatters
// to peers over dedicated links, 1/n stays local; by mirror symmetry each
// remote delivery is a peer's slice of my owned region arriving. The tile's
// owned slice completes when all n contributions land — exactly one tile
// footprint at the controller.
func (r *fusedRun) sendDirect(t int) {
	n := r.o.Devices
	r.mem.TransferTo(memory.Update, memory.StreamCompute, r.localSlice,
		memory.Tag{WG: t / 8, WF: t % 8}, r.dirLocal)
	if r.sliceBytes == 0 {
		return
	}
	for p := 1; p < n; p++ {
		r.chkRing.Add(int64(r.sliceBytes))
		op := r.getDirectOp(t)
		r.links[p-1].Send(r.sliceBytes, op.delivered)
	}
}

// mirrorTargets maps my tile of phase p to the corresponding tile(s) of
// phase p+1, the region my neighbor's identical send updates here. Boundary
// rounding can leave the last target tile without a source (or vice versa):
// a source fragment with no target yields no entries, and when the source
// phase is smaller than the target the last source tile also carries the
// target's final fragment.
// The result is returned by value ([2]int plus a count) so the per-delivery
// call allocates nothing.
func (r *fusedRun) mirrorTargets(t, p int) (targets [2]int, n int) {
	i := t - r.phaseStart[p]
	nextSize := r.phaseSize(p + 1)
	if i >= nextSize {
		return targets, 0
	}
	targets[0] = r.phaseStart[p+1] + i
	n = 1
	if i == r.phaseSize(p)-1 && nextSize > r.phaseSize(p) {
		targets[1] = r.phaseStart[p+1] + nextSize - 1
		n = 2
	}
	return targets, n
}

// incomingUpdate stages an arriving (mirrored) update in local memory on the
// communication stream and lets the tracker count it.
func (r *fusedRun) incomingUpdate(target int) {
	if r.testDropIncoming > 0 {
		r.testDropIncoming--
		return
	}
	r.mem.TransferTo(memory.Update, memory.StreamComm, r.tileBytes,
		memory.Tag{WG: target / 8, WF: target % 8}, r)
}

func (r *fusedRun) observe(id TileID) { r.observeBytes(id, r.tileBytes) }

func (r *fusedRun) observeBytes(id TileID, b units.Bytes) {
	if err := r.tracker.Observe(id, b); err != nil && r.err == nil {
		r.err = err
	}
}

// onTileReady is the tracker trigger: forward dma_mapped tiles, count owned
// ones.
func (r *fusedRun) onTileReady(id TileID) {
	t := r.tileOf(id)
	if r.o.Collective == DirectReduceScatter {
		// Completion of a tile means its owned slice (and mirrored peers')
		// finished; no forwarding exists in direct-RS.
		r.ownedFence.Done()
		return
	}
	p := r.phaseOf(t)
	if p == r.o.Devices-1 {
		r.emit(EventOwnedTileDone, 0, id)
		r.ownedFence.Done()
		return
	}
	cmd, ok := r.dma.MarkReady(id)
	if !ok {
		r.err = fmt.Errorf("t3core: tile %+v (phase %d) ready but no DMA command", id, p)
		return
	}
	r.chkDMA.Mark(r.eng.Now(), t)
	r.mTrigger.Inc()
	r.emit(EventDMATriggered, 0, id)
	k := r.o.DMATilesPerBlock
	if k <= 1 {
		r.dmaSend(p, t, 1, cmd.Bytes)
		return
	}
	// Block-granular DMA (§4.2.2): the completing tile marks its block
	// entry; the block transfers once every member tile has fired. Block
	// member tiles are contiguous, so the block is just (first, count).
	i := t - r.phaseStart[p]
	b := i / k
	idx := r.blockOff[p] + b
	r.blockFill[idx]++
	first := r.phaseStart[p] + b*k
	last := first + k
	if end := r.phaseStart[p+1]; last > end {
		last = end
	}
	if r.blockFill[idx] < last-first {
		return
	}
	r.blockFill[idx] = 0
	r.dmaSend(p, first, last-first, units.Bytes(last-first)*r.tileBytes)
}

// dmaSend performs one triggered DMA over the contiguous block of count
// tiles starting at first: read the reduced tiles locally, push them over
// the ring; the mirrored delivery is the neighbor's DMA arriving for my next
// phase, updating memory and crediting each target tile.
func (r *fusedRun) dmaSend(p, first, count int, total units.Bytes) {
	op := r.getDMAOp(p, first, count, total)
	r.mem.Transfer(memory.Read, memory.StreamComm, total,
		memory.Tag{WG: first / 8, WF: first % 8}, op.readDone)
}
