package t3core

import (
	"fmt"

	"t3sim/internal/memory"
	"t3sim/internal/units"
)

// DMACommand is one pre-programmed transfer in the §4.2.2 command table:
// when the tracker marks its region ready, the DMA engine reads the data
// locally and performs Op at the destination device. The engine generates
// the member addresses itself from the region's start address and geometry;
// the model carries only the byte count.
type DMACommand struct {
	DestDevice int
	Op         memory.AccessKind
	Bytes      units.Bytes
}

// DMATable is the pre-programmed command table the driver fills during the
// §4.4 setup. Commands are keyed by the producing tile, the same identity
// the tracker fires with; marking an entry ready consumes it, so each tile
// DMAs exactly once.
type DMATable struct {
	commands map[TileID]DMACommand
	ready    int64
}

// NewDMATable returns an empty table.
func NewDMATable() *DMATable {
	return &DMATable{commands: make(map[TileID]DMACommand)}
}

// Program installs the command for a tile. Reprogramming a live entry is an
// error: the setup writes each entry once per launch.
func (t *DMATable) Program(id TileID, cmd DMACommand) error {
	if cmd.Bytes <= 0 {
		return fmt.Errorf("t3core: DMA command with %v bytes", cmd.Bytes)
	}
	if cmd.Op != memory.Write && cmd.Op != memory.Update {
		return fmt.Errorf("t3core: DMA command op %v", cmd.Op)
	}
	if _, dup := t.commands[id]; dup {
		return fmt.Errorf("t3core: duplicate DMA command for %+v", id)
	}
	t.commands[id] = cmd
	return nil
}

// MarkReady consumes and returns the command for a tile. The second result
// is false when no command is programmed (the tile is not dma_mapped).
func (t *DMATable) MarkReady(id TileID) (DMACommand, bool) {
	cmd, ok := t.commands[id]
	if !ok {
		return DMACommand{}, false
	}
	delete(t.commands, id)
	t.ready++
	return cmd, true
}

// Pending returns the number of programmed, not-yet-triggered commands.
func (t *DMATable) Pending() int { return len(t.commands) }

// Triggered returns how many commands have been consumed.
func (t *DMATable) Triggered() int64 { return t.ready }
