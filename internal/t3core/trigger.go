package t3core

import (
	"fmt"

	"t3sim/internal/memory"
	"t3sim/internal/units"
)

// DMACommand is one pre-programmed transfer in the §4.2.2 command table:
// when the tracker marks its region ready, the DMA engine reads the data
// locally and performs Op at the destination device. The engine generates
// the member addresses itself from the region's start address and geometry;
// the model carries only the byte count.
type DMACommand struct {
	DestDevice int
	Op         memory.AccessKind
	Bytes      units.Bytes
}

// dmaWFStride is the number of wavefront slots per workgroup in a tile
// identity: every TileID producer in this package maps a linear tile index g
// to {WG: g/8, WF: g%8}, so (WG, WF) flattens densely as WG*8+WF. The
// tracker enforces the matching bound (TrackerConfig.MaxWFsPerWG <= 8).
const dmaWFStride = 8

// DMATable is the pre-programmed command table the driver fills during the
// §4.4 setup. Commands are keyed by the producing tile, the same identity
// the tracker fires with; marking an entry ready consumes it, so each tile
// DMAs exactly once.
//
// The table is a dense array indexed by the flattened (WG, WF) identity —
// the trigger check runs once per produced tile on the simulator's hottest
// path, and an array probe is both allocation-free and an order of magnitude
// cheaper than the map lookup it replaces.
type DMATable struct {
	commands []DMACommand // slot per tile; Bytes == 0 marks an empty slot
	pending  int
	ready    int64
}

// NewDMATable returns an empty table.
func NewDMATable() *DMATable {
	return &DMATable{}
}

// slot flattens a tile identity to its table index, or -1 when the identity
// is outside the dense (WG, WF) domain.
func (t *DMATable) slot(id TileID) int {
	if id.WG < 0 || id.WF < 0 || id.WF >= dmaWFStride {
		return -1
	}
	return id.WG*dmaWFStride + id.WF
}

// Program installs the command for a tile. Reprogramming a live entry is an
// error: the setup writes each entry once per launch.
func (t *DMATable) Program(id TileID, cmd DMACommand) error {
	if cmd.Bytes <= 0 {
		return fmt.Errorf("t3core: DMA command with %v bytes", cmd.Bytes)
	}
	if cmd.Op != memory.Write && cmd.Op != memory.Update {
		return fmt.Errorf("t3core: DMA command op %v", cmd.Op)
	}
	i := t.slot(id)
	if i < 0 {
		return fmt.Errorf("t3core: DMA command for out-of-domain tile %+v", id)
	}
	for i >= len(t.commands) {
		// Grown only during setup (Program), with append's amortized
		// doubling; the trigger path never grows.
		t.commands = append(t.commands, DMACommand{})
	}
	if t.commands[i].Bytes != 0 {
		return fmt.Errorf("t3core: duplicate DMA command for %+v", id)
	}
	t.commands[i] = cmd
	t.pending++
	return nil
}

// MarkReady consumes and returns the command for a tile. The second result
// is false when no command is programmed (the tile is not dma_mapped).
func (t *DMATable) MarkReady(id TileID) (DMACommand, bool) {
	i := t.slot(id)
	if i < 0 || i >= len(t.commands) || t.commands[i].Bytes == 0 {
		return DMACommand{}, false
	}
	cmd := t.commands[i]
	t.commands[i] = DMACommand{}
	t.pending--
	t.ready++
	return cmd, true
}

// Pending returns the number of programmed, not-yet-triggered commands.
func (t *DMATable) Pending() int { return t.pending }

// Triggered returns how many commands have been consumed.
func (t *DMATable) Triggered() int64 { return t.ready }
