// Package t3core implements the paper's contribution: the Track & Trigger
// mechanism at the memory controller (§4.2), the producer output
// address-space configuration (§4.4), and the fused producer-collective
// orchestration (§4.1) that overlaps a GEMM with its consumer collective
// without occupying any compute units.
package t3core

import (
	"fmt"

	"t3sim/internal/units"
)

// TileID identifies one wavefront's output tile by its producing workgroup
// and wavefront — the identity the paper's tracker is keyed by (§4.2.1).
// Memory accesses carry it as metadata.
type TileID struct {
	WG int
	WF int
}

// TrackerConfig sizes the hardware structure.
type TrackerConfig struct {
	// Sets is the number of direct-indexed entries (256 in the paper,
	// indexed by the WG id's low bits).
	Sets int
	// Ways bounds the set associativity. The paper's budget (19 KB) allows
	// 8 tagged ways per set: one per possible wavefront id.
	Ways int
	// MaxWFsPerWG bounds the wavefront id width (3 bits → 8).
	MaxWFsPerWG int
}

// DefaultTrackerConfig mirrors §4.2.1.
func DefaultTrackerConfig() TrackerConfig {
	return TrackerConfig{Sets: 256, Ways: 8, MaxWFsPerWG: 8}
}

// Validate reports whether the configuration is usable.
func (c TrackerConfig) Validate() error {
	switch {
	case c.Sets <= 0:
		return fmt.Errorf("t3core: Sets = %d", c.Sets)
	case c.Ways <= 0:
		return fmt.Errorf("t3core: Ways = %d", c.Ways)
	case c.MaxWFsPerWG <= 0 || c.MaxWFsPerWG > 8:
		return fmt.Errorf("t3core: MaxWFsPerWG = %d, must be 1..8 (3-bit wf_id)", c.MaxWFsPerWG)
	}
	return nil
}

// Program is what the driver writes into the tracker ahead of a fused
// launch (§4.4): the per-wavefront tile size, how many updates each element
// must see before the tile is ready (2 for ring reduce-scatter: one local,
// one remote/DMA), and the trigger callback — the pre-programmed DMA.
type Program struct {
	WFTileBytes       units.Bytes
	UpdatesPerElement int
	// TileBytes, if non-nil, overrides WFTileBytes per tile. The driver uses
	// it for ragged boundary tiles, whose sizes it already computes when
	// filling the DMA command table (§4.2.2).
	TileBytes func(t TileID) units.Bytes
	// OnReady fires exactly once per tile, when its expected bytes have all
	// been observed at the memory controller.
	OnReady func(t TileID)
}

// Validate reports whether the program is usable.
func (p Program) Validate() error {
	if p.WFTileBytes <= 0 {
		return fmt.Errorf("t3core: WFTileBytes = %v", p.WFTileBytes)
	}
	if p.UpdatesPerElement <= 0 {
		return fmt.Errorf("t3core: UpdatesPerElement = %d", p.UpdatesPerElement)
	}
	return nil
}

// threshold returns the byte count that completes one tile.
func (p Program) threshold(id TileID) units.Bytes {
	size := p.WFTileBytes
	if p.TileBytes != nil {
		size = p.TileBytes(id)
	}
	return size * units.Bytes(p.UpdatesPerElement)
}

// entry is one live tracker row.
type entry struct {
	tag     uint32 // (wg_msb << 3) | wf_id
	counter units.Bytes
}

// Tracker is the §4.2.1 structure: a set-associative counter table at the
// memory controller. Accesses tagged with (wg, wf) increment the matching
// entry; when a tile's counter reaches wf_tile_size × updates-per-element,
// the entry retires and the trigger fires. Tracker checks happen after
// requests enqueue at the controller, off the critical path, so the tracker
// itself adds no latency in the timing model.
type Tracker struct {
	cfg  TrackerConfig
	prog Program
	sets [][]entry

	live     int
	maxLive  int
	observed units.Bytes
	fired    int64
}

// NewTracker builds an empty tracker.
func NewTracker(cfg TrackerConfig) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{cfg: cfg, sets: make([][]entry, cfg.Sets)}, nil
}

// SetProgram installs the launch configuration. It panics if entries are
// still live: reprogramming mid-launch would corrupt counters.
func (t *Tracker) SetProgram(p Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if t.live != 0 {
		return fmt.Errorf("t3core: reprogramming tracker with %d live entries", t.live)
	}
	t.prog = p
	return nil
}

// Observe accounts bytes of one update (local store, remote store, or DMA
// update) against a tile. It allocates the entry on first touch and fires
// the program's trigger when the tile completes.
func (t *Tracker) Observe(id TileID, bytes units.Bytes) error {
	if t.prog.WFTileBytes == 0 {
		return fmt.Errorf("t3core: tracker not programmed")
	}
	if id.WG < 0 || id.WF < 0 || id.WF >= t.cfg.MaxWFsPerWG {
		return fmt.Errorf("t3core: bad tile id %+v", id)
	}
	if bytes <= 0 {
		return fmt.Errorf("t3core: observed %v bytes", bytes)
	}
	setIdx := id.WG % t.cfg.Sets
	tag := uint32(id.WG/t.cfg.Sets)<<3 | uint32(id.WF)
	set := t.sets[setIdx]
	slot := -1
	for i := range set {
		if set[i].tag == tag && set[i].counter > 0 {
			slot = i
			break
		}
	}
	if slot == -1 {
		// Allocate: reuse a retired way or append.
		for i := range set {
			if set[i].counter == 0 {
				slot = i
				set[i].tag = tag
				break
			}
		}
		if slot == -1 {
			if len(set) >= t.cfg.Ways {
				return fmt.Errorf("t3core: tracker set %d over capacity (%d ways)", setIdx, t.cfg.Ways)
			}
			set = append(set, entry{tag: tag})
			t.sets[setIdx] = set
			slot = len(set) - 1
		}
		t.live++
		if t.live > t.maxLive {
			t.maxLive = t.live
		}
	}
	t.observed += bytes
	set[slot].counter += bytes
	th := t.prog.threshold(id)
	if set[slot].counter > th {
		return fmt.Errorf("t3core: tile %+v over-updated: %v > threshold %v", id, set[slot].counter, th)
	}
	if set[slot].counter == th {
		set[slot].counter = 0 // retire the way
		t.live--
		t.fired++
		if t.prog.OnReady != nil {
			t.prog.OnReady(id)
		}
	}
	return nil
}

// Live returns the number of currently tracked (incomplete) tiles.
func (t *Tracker) Live() int { return t.live }

// MaxLive returns the high-water mark of concurrently tracked tiles; staying
// within Sets×Ways validates the paper's 19 KB hardware budget.
func (t *Tracker) MaxLive() int { return t.maxLive }

// Fired returns how many tiles have completed and triggered.
func (t *Tracker) Fired() int64 { return t.fired }

// ObservedBytes returns the total bytes accounted.
func (t *Tracker) ObservedBytes() units.Bytes { return t.observed }

// Capacity returns Sets×Ways, the hardware slot budget.
func (t *Tracker) Capacity() int { return t.cfg.Sets * t.cfg.Ways }
