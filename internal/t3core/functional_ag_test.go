package t3core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func shardsFor(n, shardLen int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for d := range out {
		arr := make([]float32, shardLen)
		for i := range arr {
			arr[i] = float32(rng.Intn(2000)-1000) / 16
		}
		out[d] = arr
	}
	return out
}

func checkGathered(t *testing.T, shards [][]float32, res *FunctionalResult) {
	t.Helper()
	n := len(shards)
	shardLen := len(shards[0])
	for d := 0; d < n; d++ {
		for s := 0; s < n; s++ {
			for i := 0; i < shardLen; i++ {
				if res.Buffers[d][s*shardLen+i] != shards[s][i] {
					t.Fatalf("device %d shard %d elem %d = %v, want %v",
						d, s, i, res.Buffers[d][s*shardLen+i], shards[s][i])
				}
			}
		}
	}
}

func TestFunctionalFusedAGGathersAllShards(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		for _, shardLen := range []int{16, 37, 256} {
			shards := shardsFor(n, shardLen, int64(n*100+shardLen))
			res, err := RunFunctionalFusedAllGather(shards, 8, 1)
			if err != nil {
				t.Fatalf("n=%d len=%d: %v", n, shardLen, err)
			}
			checkGathered(t, shards, res)
		}
	}
}

func TestFunctionalFusedAGProtocolCounts(t *testing.T) {
	n, shardLen, tile := 4, 64, 8
	shards := shardsFor(n, shardLen, 3)
	res, err := RunFunctionalFusedAllGather(shards, tile, 2)
	if err != nil {
		t.Fatal(err)
	}
	tiles := shardLen / tile
	for d := 0; d < n; d++ {
		// Tracked: every arriving hop of every foreign shard.
		wantFired := int64((n - 1) * tiles)
		if res.TrackerFired[d] != wantFired {
			t.Errorf("device %d fired %d, want %d", d, res.TrackerFired[d], wantFired)
		}
		// Forwards: hops 1..n-2.
		wantDMA := int64((n - 2) * tiles)
		if res.DMATriggered[d] != wantDMA {
			t.Errorf("device %d DMA %d, want %d", d, res.DMATriggered[d], wantDMA)
		}
		if res.RemoteWrites[d] != int64(tiles) {
			t.Errorf("device %d remote writes %d, want %d", d, res.RemoteWrites[d], tiles)
		}
	}
}

func TestFunctionalFusedAGOrderIndependence(t *testing.T) {
	shards := shardsFor(4, 96, 9)
	for seed := int64(0); seed < 6; seed++ {
		res, err := RunFunctionalFusedAllGather(shards, 16, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkGathered(t, shards, res)
	}
}

func TestFunctionalFusedAGProperty(t *testing.T) {
	f := func(nRaw, lenRaw uint8, seed int64) bool {
		n := int(nRaw)%6 + 2
		shardLen := int(lenRaw)%200 + 1
		shards := shardsFor(n, shardLen, seed)
		res, err := RunFunctionalFusedAllGather(shards, 8, seed)
		if err != nil {
			return false
		}
		for d := 0; d < n; d++ {
			for s := 0; s < n; s++ {
				for i := 0; i < shardLen; i++ {
					if res.Buffers[d][s*shardLen+i] != shards[s][i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFunctionalFusedAGValidation(t *testing.T) {
	if _, err := RunFunctionalFusedAllGather(nil, 8, 1); err == nil {
		t.Error("nil shards: expected error")
	}
	if _, err := RunFunctionalFusedAllGather([][]float32{{1}}, 8, 1); err == nil {
		t.Error("single device: expected error")
	}
	if _, err := RunFunctionalFusedAllGather([][]float32{{1}, {1, 2}}, 8, 1); err == nil {
		t.Error("ragged shards: expected error")
	}
	if _, err := RunFunctionalFusedAllGather([][]float32{{}, {}}, 8, 1); err == nil {
		t.Error("empty shards: expected error")
	}
	if _, err := RunFunctionalFusedAllGather(shardsFor(2, 8, 1), 0, 1); err == nil {
		t.Error("zero tile: expected error")
	}
}
