package t3core

import (
	"t3sim/internal/memory"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// This file holds the fused runner's pooled callback objects. The inner
// loops of the run — production stores, tracker triggers, DMA forwards and
// mirrored deliveries — used to capture their context in a fresh closure per
// event, a steady allocation stream second only to the request path itself.
// Each object below carries that context in pooled struct fields instead and
// implements memory.Completion (or pre-builds its one link-delivery closure
// at construction), so a steady-state burst allocates nothing. Objects are
// returned to their freelist at the end of their final callback; the
// callbacks run on the engine's single goroutine, so the freelists need no
// locking.

// Complete implements memory.Completion for the runner itself: a full-tile
// mirrored update has landed in local memory, credit the tracker. Used by
// incomingUpdate, where the tag's (WG, WF) is exactly the target tile.
func (r *fusedRun) Complete(tag memory.Tag) {
	r.observe(TileID{WG: tag.WG, WF: tag.WF})
}

// fenceCB adapts a fence to memory.Completion: each completed transfer is
// one Done. One allocation per stage, amortized over the stage's tiles.
type fenceCB struct{ fence *sim.Fence }

// Complete implements memory.Completion.
func (c *fenceCB) Complete(memory.Tag) { c.fence.Done() }

// obsCB observes a fixed byte count against the tagged tile. Two long-lived
// instances per direct-RS run cover the locally-kept slice and an arriving
// peer slice.
type obsCB struct {
	r     *fusedRun
	bytes units.Bytes
}

// Complete implements memory.Completion.
func (o *obsCB) Complete(tag memory.Tag) {
	o.r.observeBytes(TileID{WG: tag.WG, WF: tag.WF}, o.bytes)
}

// stageCB completes one GEMM stage's local production stores: each store
// credits its tile and the stage fence; the kernel's stage callback fires
// when the last store lands. The fence and its callback closure are built
// once per pooled object and rearmed with Reset on reuse.
type stageCB struct {
	r      *fusedRun
	fence  *sim.Fence
	onDone sim.Handler // kernel stage completion, set per use
}

// Complete implements memory.Completion for one production store.
func (s *stageCB) Complete(tag memory.Tag) {
	s.r.observe(TileID{WG: tag.WG, WF: tag.WF})
	s.fence.Done()
}

// fenceDone runs when the stage's last local store has been observed. The
// object is recycled only after the kernel callback returns: the callback
// may start the next stage, and releasing first would let that stage rearm
// this fence mid-unwind.
func (s *stageCB) fenceDone() {
	onDone := s.onDone
	s.onDone = nil
	onDone()
	s.r.stageCBs = append(s.r.stageCBs, s)
}

// getStageCB returns a stage completion armed for n local stores (n > 0).
func (r *fusedRun) getStageCB(n int, onDone sim.Handler) *stageCB {
	if ln := len(r.stageCBs); ln > 0 {
		s := r.stageCBs[ln-1]
		r.stageCBs[ln-1] = nil
		r.stageCBs = r.stageCBs[:ln-1]
		s.fence.Reset(n)
		s.onDone = onDone
		return s
	}
	s := &stageCB{r: r, onDone: onDone}
	s.fence = sim.NewFence(n, s.fenceDone)
	return s
}

// remoteOp carries one remote-mapped production store across its link
// delivery: the mirrored incoming updates are staged when the send lands.
type remoteOp struct {
	r         *fusedRun
	t         int
	delivered sim.Handler // prebuilt onDelivered closure
}

func (op *remoteOp) onDelivered() {
	r := op.r
	r.chkRing.Sub(r.eng.Now(), int64(r.tileBytes))
	// Mirror: the neighbor's phase-0 store of the chunk I produce in
	// phase 1 arrives now, as an NMC update on the comm stream.
	targets, n := r.mirrorTargets(op.t, 0)
	for i := 0; i < n; i++ {
		r.incomingUpdate(targets[i])
	}
	r.remoteOps = append(r.remoteOps, op)
}

func (r *fusedRun) getRemoteOp(t int) *remoteOp {
	if ln := len(r.remoteOps); ln > 0 {
		op := r.remoteOps[ln-1]
		r.remoteOps[ln-1] = nil
		r.remoteOps = r.remoteOps[:ln-1]
		op.t = t
		return op
	}
	op := &remoteOp{r: r, t: t}
	op.delivered = op.onDelivered
	return op
}

// directOp carries one direct-RS slice send across its link delivery.
type directOp struct {
	r         *fusedRun
	t         int
	delivered sim.Handler
}

func (op *directOp) onDelivered() {
	r := op.r
	r.chkRing.Sub(r.eng.Now(), int64(r.sliceBytes))
	r.mem.TransferTo(memory.Update, memory.StreamComm, r.sliceBytes,
		memory.Tag{WG: op.t / 8, WF: op.t % 8}, r.dirSlice)
	r.directOps = append(r.directOps, op)
}

func (r *fusedRun) getDirectOp(t int) *directOp {
	if ln := len(r.directOps); ln > 0 {
		op := r.directOps[ln-1]
		r.directOps[ln-1] = nil
		r.directOps = r.directOps[:ln-1]
		op.t = t
		return op
	}
	op := &directOp{r: r, t: t}
	op.delivered = op.onDelivered
	return op
}

// dmaOp carries one triggered DMA — a contiguous block of count tiles
// starting at first in phase p — through its three stages: local read, ring
// send, mirrored remote update.
type dmaOp struct {
	r        *fusedRun
	p        int
	first    int
	count    int
	total    units.Bytes
	readDone sim.Handler // prebuilt: local read complete → inject into ring
	sent     sim.Handler // prebuilt: delivery → mirrored memory update
}

// onRead: the partially reduced block has been read; push it onto the ring.
func (op *dmaOp) onRead() {
	r := op.r
	r.chkRing.Add(int64(op.total))
	r.links[0].Send(op.total, op.sent)
}

// onSent: the mirrored neighbor DMA arrives; stage it in local memory.
func (op *dmaOp) onSent() {
	r := op.r
	r.chkRing.Sub(r.eng.Now(), int64(op.total))
	r.mem.TransferTo(memory.Update, memory.StreamComm, op.total,
		memory.Tag{WG: op.first / 8, WF: op.first % 8}, op)
}

// Complete implements memory.Completion: the mirrored update landed; credit
// every target tile of the block.
func (op *dmaOp) Complete(memory.Tag) {
	r := op.r
	for t := op.first; t < op.first+op.count; t++ {
		targets, n := r.mirrorTargets(t, op.p)
		for i := 0; i < n; i++ {
			r.observe(r.tileIDOf(targets[i]))
		}
	}
	r.dmaOps = append(r.dmaOps, op)
}

func (r *fusedRun) getDMAOp(p, first, count int, total units.Bytes) *dmaOp {
	if ln := len(r.dmaOps); ln > 0 {
		op := r.dmaOps[ln-1]
		r.dmaOps[ln-1] = nil
		r.dmaOps = r.dmaOps[:ln-1]
		op.p, op.first, op.count, op.total = p, first, count, total
		return op
	}
	op := &dmaOp{r: r, p: p, first: first, count: count, total: total}
	op.readDone = op.onRead
	op.sent = op.onSent
	return op
}
