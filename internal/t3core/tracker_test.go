package t3core

import (
	"testing"

	"t3sim/internal/memory"
	"t3sim/internal/units"
)

func newTestTracker(t *testing.T, tileBytes units.Bytes, updates int) *Tracker {
	t.Helper()
	tr, err := NewTracker(DefaultTrackerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetProgram(Program{WFTileBytes: tileBytes, UpdatesPerElement: updates}); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrackerConfigValidate(t *testing.T) {
	if err := DefaultTrackerConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []TrackerConfig{
		{Sets: 0, Ways: 8, MaxWFsPerWG: 8},
		{Sets: 256, Ways: 0, MaxWFsPerWG: 8},
		{Sets: 256, Ways: 8, MaxWFsPerWG: 0},
		{Sets: 256, Ways: 8, MaxWFsPerWG: 9}, // 3-bit wf_id
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
		if _, err := NewTracker(cfg); err == nil {
			t.Errorf("case %d: NewTracker should fail", i)
		}
	}
}

func TestTrackerFiresAtExactThreshold(t *testing.T) {
	tile := units.Bytes(8192)
	var fired []TileID
	tr := newTestTracker(t, tile, 2)
	tr.prog.OnReady = func(id TileID) { fired = append(fired, id) }

	id := TileID{WG: 42, WF: 3}
	// Local update in four partial accesses, then a remote update in one.
	for i := 0; i < 4; i++ {
		if err := tr.Observe(id, tile/4); err != nil {
			t.Fatal(err)
		}
	}
	if len(fired) != 0 {
		t.Fatal("fired after only local updates")
	}
	if err := tr.Observe(id, tile); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != id {
		t.Fatalf("fired = %v, want [%v]", fired, id)
	}
	if tr.Live() != 0 {
		t.Errorf("Live = %d after completion", tr.Live())
	}
	if tr.Fired() != 1 {
		t.Errorf("Fired = %d", tr.Fired())
	}
	if tr.ObservedBytes() != 2*tile {
		t.Errorf("ObservedBytes = %v", tr.ObservedBytes())
	}
}

func TestTrackerIndependentTiles(t *testing.T) {
	tile := units.Bytes(1024)
	fired := map[TileID]int{}
	tr := newTestTracker(t, tile, 2)
	tr.prog.OnReady = func(id TileID) { fired[id]++ }

	ids := []TileID{{0, 0}, {0, 1}, {256, 0}, {1, 7}} // {0,0} and {256,0} share a set
	for _, id := range ids {
		if err := tr.Observe(id, tile); err != nil {
			t.Fatal(err)
		}
	}
	if len(fired) != 0 {
		t.Fatal("premature fire")
	}
	if tr.Live() != len(ids) {
		t.Errorf("Live = %d, want %d", tr.Live(), len(ids))
	}
	for _, id := range ids {
		if err := tr.Observe(id, tile); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		if fired[id] != 1 {
			t.Errorf("tile %v fired %d times", id, fired[id])
		}
	}
	if tr.MaxLive() != len(ids) {
		t.Errorf("MaxLive = %d, want %d", tr.MaxLive(), len(ids))
	}
}

func TestTrackerOverUpdateRejected(t *testing.T) {
	tile := units.Bytes(1024)
	tr := newTestTracker(t, tile, 1)
	id := TileID{WG: 1, WF: 1}
	if err := tr.Observe(id, tile/2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(id, tile); err == nil {
		t.Error("over-update: expected error")
	}
}

func TestTrackerSetOverflow(t *testing.T) {
	cfg := TrackerConfig{Sets: 4, Ways: 2, MaxWFsPerWG: 8}
	tr, err := NewTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetProgram(Program{WFTileBytes: 100, UpdatesPerElement: 2}); err != nil {
		t.Fatal(err)
	}
	// Three incomplete tiles hitting set 0 exceed 2 ways.
	if err := tr.Observe(TileID{WG: 0, WF: 0}, 50); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(TileID{WG: 4, WF: 0}, 50); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(TileID{WG: 8, WF: 0}, 50); err == nil {
		t.Error("expected set-capacity error")
	}
}

func TestTrackerWayReuseAfterRetire(t *testing.T) {
	cfg := TrackerConfig{Sets: 4, Ways: 1, MaxWFsPerWG: 8}
	tr, _ := NewTracker(cfg)
	if err := tr.SetProgram(Program{WFTileBytes: 100, UpdatesPerElement: 1}); err != nil {
		t.Fatal(err)
	}
	// Complete a tile, then a different tile in the same set fits the way.
	if err := tr.Observe(TileID{WG: 0, WF: 0}, 100); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(TileID{WG: 4, WF: 1}, 100); err != nil {
		t.Fatal(err)
	}
	if tr.Fired() != 2 {
		t.Errorf("Fired = %d, want 2", tr.Fired())
	}
	if tr.MaxLive() != 1 {
		t.Errorf("MaxLive = %d, want 1", tr.MaxLive())
	}
}

func TestTrackerErrors(t *testing.T) {
	tr, _ := NewTracker(DefaultTrackerConfig())
	if err := tr.Observe(TileID{0, 0}, 10); err == nil {
		t.Error("unprogrammed tracker: expected error")
	}
	if err := tr.SetProgram(Program{WFTileBytes: 0, UpdatesPerElement: 1}); err == nil {
		t.Error("zero tile size: expected error")
	}
	if err := tr.SetProgram(Program{WFTileBytes: 10, UpdatesPerElement: 0}); err == nil {
		t.Error("zero updates: expected error")
	}
	if err := tr.SetProgram(Program{WFTileBytes: 10, UpdatesPerElement: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(TileID{WG: -1, WF: 0}, 5); err == nil {
		t.Error("negative WG: expected error")
	}
	if err := tr.Observe(TileID{WG: 0, WF: 8}, 5); err == nil {
		t.Error("WF out of range: expected error")
	}
	if err := tr.Observe(TileID{WG: 0, WF: 0}, 0); err == nil {
		t.Error("zero bytes: expected error")
	}
	// Reprogramming with live entries fails.
	if err := tr.Observe(TileID{WG: 0, WF: 0}, 5); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetProgram(Program{WFTileBytes: 10, UpdatesPerElement: 1}); err == nil {
		t.Error("reprogram with live entries: expected error")
	}
}

func TestTrackerCapacity(t *testing.T) {
	tr, _ := NewTracker(DefaultTrackerConfig())
	if tr.Capacity() != 256*8 {
		t.Errorf("Capacity = %d, want 2048", tr.Capacity())
	}
}

func TestDMATable(t *testing.T) {
	tbl := NewDMATable()
	id := TileID{WG: 3, WF: 2}
	cmd := DMACommand{DestDevice: 1, Op: memory.Update, Bytes: 8192}
	if err := tbl.Program(id, cmd); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Program(id, cmd); err == nil {
		t.Error("duplicate program: expected error")
	}
	if tbl.Pending() != 1 {
		t.Errorf("Pending = %d", tbl.Pending())
	}
	got, ok := tbl.MarkReady(id)
	if !ok || got != cmd {
		t.Errorf("MarkReady = %+v, %v", got, ok)
	}
	if _, ok := tbl.MarkReady(id); ok {
		t.Error("second MarkReady should miss")
	}
	if tbl.Triggered() != 1 || tbl.Pending() != 0 {
		t.Errorf("Triggered = %d Pending = %d", tbl.Triggered(), tbl.Pending())
	}
}

func TestDMATableProgramValidation(t *testing.T) {
	tbl := NewDMATable()
	if err := tbl.Program(TileID{}, DMACommand{Op: memory.Update, Bytes: 0}); err == nil {
		t.Error("zero bytes: expected error")
	}
	if err := tbl.Program(TileID{}, DMACommand{Op: memory.Read, Bytes: 10}); err == nil {
		t.Error("read op: expected error")
	}
}
