package t3core

import (
	"testing"
	"testing/quick"

	"t3sim/internal/gemm"
	"t3sim/internal/gpu"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/units"
)

// TestPropertyFusedRSInvariants: for random sliced GEMM shapes and device
// counts, the fused run completes with exact traffic invariants:
//
//   - GEMM local updates = tiles of phases 1..n-1;
//   - incoming updates mirror outgoing link traffic;
//   - DMA reads = tiles of phases 1..n-2;
//   - collective ordering GEMMDone <= CollectiveDone <= Done.
func TestPropertyFusedRSInvariants(t *testing.T) {
	f := func(mRaw, nRaw, kRaw uint8, devRaw uint8) bool {
		m := (int(mRaw)%8 + 2) * 128 // 256..1152, tile-aligned
		n := (int(nRaw)%8 + 2) * 128
		k := (int(kRaw)%8 + 1) * 64
		devices := []int{2, 3, 4, 8}[int(devRaw)%4]
		g, err := gemm.NewGrid(gemm.Shape{M: m, N: n, K: k, ElemBytes: 2}, gemm.DefaultTiling())
		if err != nil {
			return false
		}
		if g.NumWFs() < devices {
			return true // vacuous: grid too small to chunk
		}
		o := FusedOptions{
			GPU:         gpu.DefaultConfig(),
			Memory:      memory.DefaultConfig(),
			Link:        interconnect.DefaultConfig(),
			Tracker:     TrackerConfig{Sets: 256, Ways: 64, MaxWFsPerWG: 8},
			Devices:     devices,
			Grid:        g,
			Collective:  RingReduceScatter,
			Arbitration: ArbRoundRobin,
		}
		res, err := RunFusedGEMMRS(o)
		if err != nil {
			return false
		}
		if res.GEMMDone <= 0 || res.CollectiveDone < res.GEMMDone || res.Done < res.CollectiveDone {
			return false
		}
		// Tile accounting. Phases split the tile space contiguously.
		tiles := g.NumWFs()
		tileBytes := g.WFTileBytes()
		phase0 := tiles / devices // phaseStart[1]
		lastStart := (devices - 1) * tiles / devices
		localTiles := tiles - phase0
		if got := res.DRAM.Bytes[memory.Update][memory.StreamCompute]; got != units.Bytes(localTiles)*tileBytes {
			return false
		}
		// Incoming updates correspond to phases 1..n-1, minus boundary
		// fragments dropped by the mirror (at most one tile per phase edge).
		gotIn := res.DRAM.Bytes[memory.Update][memory.StreamComm]
		wantIn := units.Bytes(localTiles) * tileBytes
		slack := units.Bytes(devices) * tileBytes
		if gotIn > wantIn || gotIn < wantIn-slack {
			return false
		}
		// DMA reads: phases 1..n-2.
		dmaTiles := lastStart - phase0
		if got := res.DRAM.Bytes[memory.Read][memory.StreamComm]; got != units.Bytes(dmaTiles)*tileBytes {
			return false
		}
		// No plain writes under NMC.
		return res.DRAM.KindBytes(memory.Write) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMirrorMatchesMultiDevice: across random tile-aligned shapes,
// the mirror run and the explicit multi-device run agree on completion time
// within a small tolerance.
func TestPropertyMirrorMatchesMultiDevice(t *testing.T) {
	f := func(mRaw, nRaw uint8, devRaw uint8) bool {
		m := (int(mRaw)%4 + 2) * 128
		n := (int(nRaw)%4 + 2) * 128
		devices := []int{2, 4}[int(devRaw)%2]
		g, err := gemm.NewGrid(gemm.Shape{M: m, N: n, K: 256, ElemBytes: 2}, gemm.DefaultTiling())
		if err != nil || g.NumWFs() < devices {
			return err == nil
		}
		o := FusedOptions{
			GPU:         gpu.DefaultConfig(),
			Memory:      memory.DefaultConfig(),
			Link:        interconnect.DefaultConfig(),
			Tracker:     TrackerConfig{Sets: 256, Ways: 64, MaxWFsPerWG: 8},
			Devices:     devices,
			Grid:        g,
			Collective:  RingReduceScatter,
			Arbitration: ArbRoundRobin,
		}
		mirror, err := RunFusedGEMMRS(o)
		if err != nil {
			return false
		}
		multi, err := RunFusedGEMMRSMultiDevice(o)
		if err != nil {
			return false
		}
		rel := (float64(multi.Done) - float64(mirror.CollectiveDone)) / float64(multi.Done)
		return rel > -0.05 && rel < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestFusedPaperTrackerBudgetFailure: failure injection — running a
// communication-bound sub-layer with the paper's 256x8 tracker overflows a
// set and surfaces an error instead of silently corrupting state.
func TestFusedPaperTrackerBudgetFailure(t *testing.T) {
	g, err := gemm.NewGrid(gemm.Shape{M: 16384, N: 3072, K: 384, ElemBytes: 2}, gemm.DefaultTiling())
	if err != nil {
		t.Fatal(err)
	}
	o := FusedOptions{
		GPU:         gpu.DefaultConfig(),
		Memory:      memory.DefaultConfig(),
		Link:        interconnect.DefaultConfig(),
		Tracker:     DefaultTrackerConfig(), // the paper's 2048-slot budget
		Devices:     8,
		Grid:        g,
		Collective:  RingReduceScatter,
		Arbitration: ArbRoundRobin,
	}
	if _, err := RunFusedGEMMRS(o); err == nil {
		t.Error("expected tracker-capacity error for Mega-GPT-2 OP with the paper's budget")
	}
}
