package interconnect

import (
	"fmt"

	"t3sim/internal/check"
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// TopoKind enumerates the supported topology families.
type TopoKind int

const (
	// TopoRing is the Table 1 network: a bidirectional ring, one forward and
	// one backward link per device.
	TopoRing TopoKind = iota
	// TopoTorus is a 2D bidirectional torus with row-major device ids:
	// device r*Cols+c links to its east/west/south/north wrap-around
	// neighbors.
	TopoTorus
	// TopoSwitch is a fully-connected switch: one direct link per ordered
	// device pair, the non-blocking crossbar abstraction.
	TopoSwitch
	// TopoHierarchical is a two-level network: every node is an internal
	// full-mesh of fast intra-node links, and node leaders (device
	// node*PerNode) form a full mesh of slower inter-node links.
	TopoHierarchical
)

// String names the kind the way the CLIs and experiment tables spell it.
func (k TopoKind) String() string {
	switch k {
	case TopoRing:
		return "ring"
	case TopoTorus:
		return "torus"
	case TopoSwitch:
		return "switch"
	case TopoHierarchical:
		return "hier"
	}
	return fmt.Sprintf("TopoKind(%d)", int(k))
}

// TopoSpec is a pure description of an interconnect graph: which devices
// exist and which directed links join them, with per-link bandwidth and
// latency. A spec carries no simulation state; Build / BuildCluster
// instantiate live links on an engine or a cluster. The zero TopoSpec is
// "unset" (IsZero), which every consumer treats as the legacy ring path.
type TopoSpec struct {
	Kind TopoKind
	// Devices is the total device count (Rows*Cols for a torus,
	// Nodes*PerNode for a hierarchical network).
	Devices int
	// Rows, Cols shape a TopoTorus.
	Rows, Cols int
	// Nodes, PerNode shape a TopoHierarchical network.
	Nodes, PerNode int
	// Link configures every link (TopoHierarchical: the intra-node links).
	Link Config
	// InterLink configures TopoHierarchical's inter-node leader links; the
	// zero value falls back to Link. Other kinds ignore it.
	InterLink Config
}

// RingTopo describes a bidirectional ring of n devices.
func RingTopo(n int, cfg Config) TopoSpec {
	return TopoSpec{Kind: TopoRing, Devices: n, Link: cfg}
}

// TorusTopo describes a rows x cols bidirectional 2D torus.
func TorusTopo(rows, cols int, cfg Config) TopoSpec {
	return TopoSpec{Kind: TopoTorus, Devices: rows * cols, Rows: rows, Cols: cols, Link: cfg}
}

// SwitchTopo describes a fully-connected switch over n devices.
func SwitchTopo(n int, cfg Config) TopoSpec {
	return TopoSpec{Kind: TopoSwitch, Devices: n, Link: cfg}
}

// HierarchicalTopo describes nodes x perNode devices: full-mesh intra links
// inside each node, full-mesh inter links between node leaders.
func HierarchicalTopo(nodes, perNode int, intra, inter Config) TopoSpec {
	return TopoSpec{Kind: TopoHierarchical, Devices: nodes * perNode,
		Nodes: nodes, PerNode: perNode, Link: intra, InterLink: inter}
}

// IsZero reports whether the spec is unset (the legacy-ring sentinel).
func (s TopoSpec) IsZero() bool { return s == TopoSpec{} }

// interConfig returns the inter-node link configuration with the Link
// fallback applied.
func (s TopoSpec) interConfig() Config {
	if s.InterLink == (Config{}) {
		return s.Link
	}
	return s.InterLink
}

// Validate reports whether the spec describes a buildable topology.
func (s TopoSpec) Validate() error {
	if err := s.Link.Validate(); err != nil {
		return err
	}
	switch s.Kind {
	case TopoRing:
		if s.Devices < 2 {
			return fmt.Errorf("interconnect: ring needs >= 2 devices, got %d", s.Devices)
		}
	case TopoTorus:
		if s.Rows < 2 || s.Cols < 2 {
			return fmt.Errorf("interconnect: torus needs >= 2 rows and cols, got %dx%d", s.Rows, s.Cols)
		}
		if s.Devices != s.Rows*s.Cols {
			return fmt.Errorf("interconnect: torus %dx%d disagrees with %d devices", s.Rows, s.Cols, s.Devices)
		}
	case TopoSwitch:
		if s.Devices < 2 {
			return fmt.Errorf("interconnect: switch needs >= 2 devices, got %d", s.Devices)
		}
	case TopoHierarchical:
		if s.Nodes < 2 || s.PerNode < 1 {
			return fmt.Errorf("interconnect: hierarchical needs >= 2 nodes of >= 1 devices, got %dx%d", s.Nodes, s.PerNode)
		}
		if s.Devices != s.Nodes*s.PerNode {
			return fmt.Errorf("interconnect: hierarchical %dx%d disagrees with %d devices", s.Nodes, s.PerNode, s.Devices)
		}
		if err := s.interConfig().Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("interconnect: unknown topology kind %d", int(s.Kind))
	}
	return nil
}

// edgeSpec is one directed link of the graph description.
type edgeSpec struct {
	src, dst int
	cfg      Config
}

// edges returns the directed link list in the canonical order: device-major,
// then a fixed per-device out-edge order. This order is a determinism
// contract — BuildCluster registers one mailbox per edge in exactly this
// order, which fixes the cluster's barrier drain order (and therefore the
// cross-engine delivery order) for every worker count. For TopoRing it is
// forward-then-backward per device, byte-identical to the pre-topology
// NewClusterRing registration order.
func (s TopoSpec) edges() []edgeSpec {
	var out []edgeSpec
	n := s.Devices
	switch s.Kind {
	case TopoRing:
		for d := 0; d < n; d++ {
			out = append(out,
				edgeSpec{d, (d + 1) % n, s.Link},
				edgeSpec{d, (d - 1 + n) % n, s.Link})
		}
	case TopoTorus:
		at := func(r, c int) int {
			return ((r+s.Rows)%s.Rows)*s.Cols + (c+s.Cols)%s.Cols
		}
		for r := 0; r < s.Rows; r++ {
			for c := 0; c < s.Cols; c++ {
				d := at(r, c)
				out = append(out,
					edgeSpec{d, at(r, c+1), s.Link}, // east
					edgeSpec{d, at(r, c-1), s.Link}, // west
					edgeSpec{d, at(r+1, c), s.Link}, // south
					edgeSpec{d, at(r-1, c), s.Link}) // north
			}
		}
	case TopoSwitch:
		for d := 0; d < n; d++ {
			for p := 0; p < n; p++ {
				if p != d {
					out = append(out, edgeSpec{d, p, s.Link})
				}
			}
		}
	case TopoHierarchical:
		inter := s.interConfig()
		for d := 0; d < n; d++ {
			node := d / s.PerNode
			for p := node * s.PerNode; p < (node+1)*s.PerNode; p++ {
				if p != d {
					out = append(out, edgeSpec{d, p, s.Link})
				}
			}
			if d == node*s.PerNode { // node leader
				for peer := 0; peer < s.Nodes; peer++ {
					if peer != node {
						out = append(out, edgeSpec{d, peer * s.PerNode, inter})
					}
				}
			}
		}
	}
	return out
}

// Neighbors returns device d's out-neighbors in canonical edge order.
func (s TopoSpec) Neighbors(d int) []int {
	var out []int
	for _, e := range s.edges() {
		if e.src == d {
			out = append(out, e.dst)
		}
	}
	return out
}

// EdgeConfig returns the configuration of the (first) direct link src → dst
// and whether such a link exists.
func (s TopoSpec) EdgeConfig(src, dst int) (Config, bool) {
	for _, e := range s.edges() {
		if e.src == src && e.dst == dst {
			return e.cfg, true
		}
	}
	return Config{}, false
}

// MinLinkLatency returns the smallest propagation latency over every link —
// the widest conservative lookahead a cluster hosting this topology admits.
func (s TopoSpec) MinLinkLatency() units.Time {
	es := s.edges()
	if len(es) == 0 {
		return 0
	}
	min := es[0].cfg.LinkLatency
	for _, e := range es[1:] {
		if e.cfg.LinkLatency < min {
			min = e.cfg.LinkLatency
		}
	}
	return min
}

// Topology is a built interconnect graph: the spec plus one live Link per
// directed edge and a precomputed deterministic next-hop table. Multi-hop
// Sends store-and-forward at message granularity: each intermediate hop
// re-serializes on its own outgoing link, with forwarding scheduled on the
// receiving device's engine (so cluster topologies parallelize exactly like
// cluster rings).
type Topology struct {
	spec    TopoSpec
	edges   []edgeSpec
	links   []*Link
	first   map[[2]int]int // (src,dst) -> index of first direct edge
	nexthop []int          // n*n next-hop table; -1 on the diagonal
}

// Build instantiates the topology's links on one shared engine.
func (s TopoSpec) Build(eng *sim.Engine) (*Topology, error) {
	return s.build(func(e edgeSpec) (*Link, error) { return NewLink(eng, e.cfg) })
}

// BuildCluster instantiates the topology across a cluster's per-device
// engines: each link serializes on its source device's engine and delivers
// into its destination's mailbox, registered as an attributed link edge with
// the link's own latency — the per-link lookahead the dynamic horizons feed
// on. Mailboxes are registered in canonical edge order (see edges), which
// fixes drain order for every worker count. Every link latency must cover
// the cluster's lookahead; build the cluster with MinLinkLatency.
func (s TopoSpec) BuildCluster(cl *sim.Cluster) (*Topology, error) {
	if n := len(cl.Engines()); n != s.Devices {
		return nil, fmt.Errorf("interconnect: %d-device topology on %d-engine cluster", s.Devices, n)
	}
	return s.build(func(e edgeSpec) (*Link, error) { return NewClusterLink(cl, e.src, e.dst, e.cfg) })
}

func (s TopoSpec) build(mk func(edgeSpec) (*Link, error)) (*Topology, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{spec: s, edges: s.edges(), first: make(map[[2]int]int)}
	t.links = make([]*Link, len(t.edges))
	for i, e := range t.edges {
		l, err := mk(e)
		if err != nil {
			return nil, err
		}
		t.links[i] = l
		key := [2]int{e.src, e.dst}
		if _, ok := t.first[key]; !ok {
			t.first[key] = i
		}
	}
	t.routeAll()
	return t, nil
}

// routeAll fills the next-hop table: breadth-first search from every source
// over out-edges in canonical order, so ties between equal-length paths
// always break toward the earliest-listed edge — the deterministic-routing
// contract the differential tests and the analytic model both rely on.
func (t *Topology) routeAll() {
	n := t.spec.Devices
	t.nexthop = make([]int, n*n)
	adj := make([][]int, n) // out-neighbor lists in edge order, deduplicated
	for _, e := range t.edges {
		seen := false
		for _, d := range adj[e.src] {
			if d == e.dst {
				seen = true
				break
			}
		}
		if !seen {
			adj[e.src] = append(adj[e.src], e.dst)
		}
	}
	prev := make([]int, n)
	queue := make([]int, 0, n)
	for src := 0; src < n; src++ {
		for i := range prev {
			prev[i] = -1
		}
		prev[src] = src
		queue = append(queue[:0], src)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if prev[v] == -1 {
					prev[v] = u
					queue = append(queue, v)
				}
			}
		}
		for dst := 0; dst < n; dst++ {
			if dst == src {
				t.nexthop[src*n+dst] = -1
				continue
			}
			// Walk back from dst to the hop adjacent to src.
			hop := dst
			for prev[hop] != src {
				hop = prev[hop]
			}
			t.nexthop[src*n+dst] = hop
		}
	}
}

// Spec returns the graph description.
func (t *Topology) Spec() TopoSpec { return t.spec }

// Devices returns the device count.
func (t *Topology) Devices() int { return t.spec.Devices }

// NumLinks returns the number of directed links.
func (t *Topology) NumLinks() int { return len(t.links) }

// LinkAt returns the i-th link in canonical edge order.
func (t *Topology) LinkAt(i int) *Link { return t.links[i] }

// Link returns the (first) direct link src → dst, or nil when the devices
// are not adjacent.
func (t *Topology) Link(src, dst int) *Link {
	if i, ok := t.first[[2]int{src, dst}]; ok {
		return t.links[i]
	}
	return nil
}

// NextHop returns the first hop of the deterministic shortest route
// src → dst (-1 when src == dst).
func (t *Topology) NextHop(src, dst int) int {
	return t.nexthop[src*t.spec.Devices+dst]
}

// Hops returns the length of the deterministic route src → dst.
func (t *Topology) Hops(src, dst int) int {
	h := 0
	for src != dst {
		src = t.NextHop(src, dst)
		h++
	}
	return h
}

// Route returns the deterministic shortest route src → dst as the hop
// sequence after src (ending in dst). Empty when src == dst.
func (t *Topology) Route(src, dst int) []int {
	var out []int
	for src != dst {
		src = t.NextHop(src, dst)
		out = append(out, src)
	}
	return out
}

// Send routes n bytes from src to dst along the deterministic shortest
// path, store-and-forwarding the whole message at each intermediate hop;
// onDelivered (may be nil) runs when the final hop delivers. On a cluster
// every forward runs on the forwarding device's own engine. Sending to
// yourself is a routing bug, not a transfer.
func (t *Topology) Send(src, dst int, n units.Bytes, onDelivered sim.Handler) {
	if src == dst {
		panic("interconnect: topology send to self")
	}
	hop := t.NextHop(src, dst)
	link := t.Link(src, hop)
	if hop == dst {
		link.Send(n, onDelivered)
		return
	}
	link.Send(n, func() { t.Send(hop, dst, n, onDelivered) })
}

// AttachMetrics registers every link's instruments on m, named
// "e<i>.<src>-<dst>" in canonical edge order. A nil sink detaches.
func (t *Topology) AttachMetrics(m metrics.Sink) {
	for i, e := range t.edges {
		t.links[i].AttachMetrics(m, fmt.Sprintf("e%d.%d-%d", i, e.src, e.dst))
	}
}

// AttachChecker registers every link's serialization witness on c, named
// like AttachMetrics. A nil checker detaches.
func (t *Topology) AttachChecker(c *check.Checker) {
	for i, e := range t.edges {
		t.links[i].AttachChecker(c, fmt.Sprintf("e%d.%d-%d", i, e.src, e.dst))
	}
}

// SentBytes sums every link's accepted bytes (transit hops count once per
// traversed link, like the hardware counters would).
func (t *Topology) SentBytes() units.Bytes {
	var total units.Bytes
	for _, l := range t.links {
		total += l.SentBytes()
	}
	return total
}
