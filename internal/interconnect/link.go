// Package interconnect models the inter-GPU network of Table 1: a ring of
// point-to-point links with 150 GB/s bidirectional bandwidth (75 GB/s per
// direction) and 500 ns latency. A link serializes transfers at its
// bandwidth and delivers them after an additional propagation latency, the
// same "simple link bandwidth and latency model" the paper uses (§5.1.1).
package interconnect

import (
	"fmt"

	"t3sim/internal/check"
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// Config describes the network.
type Config struct {
	// LinkBandwidth is the per-direction bandwidth of each ring link.
	LinkBandwidth units.Bandwidth
	// LinkLatency is the propagation latency added to every delivery.
	LinkLatency units.Time
	// PacketSize bounds the serialization unit; transfers larger than this
	// are pipelined packet by packet so concurrent transfers share a link
	// fairly.
	PacketSize units.Bytes
}

// DefaultConfig mirrors Table 1: a 150 GB/s bidirectional ring (75 GB/s per
// direction) with 500 ns link latency.
func DefaultConfig() Config {
	return Config{
		LinkBandwidth: 75 * units.GBps,
		LinkLatency:   500 * units.Nanosecond,
		PacketSize:    2 * units.KiB,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.LinkBandwidth <= 0:
		return fmt.Errorf("interconnect: LinkBandwidth = %v, must be positive", c.LinkBandwidth)
	case c.LinkLatency < 0:
		return fmt.Errorf("interconnect: LinkLatency = %v, must be non-negative", c.LinkLatency)
	case c.PacketSize <= 0:
		return fmt.Errorf("interconnect: PacketSize = %v, must be positive", c.PacketSize)
	}
	return nil
}

// Link is one unidirectional point-to-point link. Transfers are packetized
// and serialized in FIFO order; each packet is delivered LinkLatency after
// its serialization completes, so back-to-back packets pipeline.
type Link struct {
	eng *sim.Engine
	cfg Config

	// post, when non-nil, replaces eng.At for scheduling deliveries at the
	// far end. Cluster links set it to a sim.Mailbox.Post so a delivery
	// lands on the destination device's engine instead of the sender's —
	// serialization timing still reads the sender's clock, so a link behaves
	// identically whether both ends share one engine or not.
	post func(units.Time, sim.Handler)

	busyUntil units.Time
	sentBytes units.Bytes
	busyTime  units.Time // cumulative serializer occupancy

	// Instrument handles (nil-safe; installed by AttachMetrics).
	mtrack *metrics.Track   // one span per Send, serialization window
	mSent  *metrics.Counter // cumulative bytes accepted
	mBusy  *metrics.Counter // picoseconds of serializer occupancy

	// Invariant-checker handle (nil-safe; installed by AttachChecker). Each
	// send's serialization window [serializeStart, busyUntil] must abut or
	// follow the previous one — the serializer is a serially-reused resource.
	chkSerial *check.NonOverlap
}

// NewLink returns an idle link.
func NewLink(eng *sim.Engine, cfg Config) (*Link, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Link{eng: eng, cfg: cfg}, nil
}

// NewClusterLink returns a link whose ends live on different engines of a
// cluster: serialization runs on device src's engine, deliveries post to
// device dst's mailbox and fire on dst's engine at the next round boundary.
// The mailbox is registered as the attributed link src → dst with this link's
// propagation latency, which is what feeds the scheduler's per-device
// horizons: dst may run ahead until the earliest instant src's pending events
// could reach it over this latency, rather than stalling at the global
// window. The link latency must cover the cluster's lookahead — that is
// exactly the conservative-window guarantee — so a shorter latency is
// rejected.
func NewClusterLink(cl *sim.Cluster, src, dst int, cfg Config) (*Link, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LinkLatency < cl.Lookahead() {
		return nil, fmt.Errorf("interconnect: LinkLatency %v below cluster lookahead %v",
			cfg.LinkLatency, cl.Lookahead())
	}
	return &Link{eng: cl.Engine(src), cfg: cfg, post: cl.LinkMailbox(src, dst, cfg.LinkLatency).Post}, nil
}

// deliver schedules a far-end callback: on the shared engine directly, or
// through the cluster mailbox when the ends live on different engines.
func (l *Link) deliver(at units.Time, fn sim.Handler) {
	if l.post != nil {
		l.post(at, fn)
		return
	}
	l.eng.At(at, fn)
}

// AttachMetrics registers the link's observability instruments under the
// given name (e.g. "fwd0"): counters "interconnect.<name>.sent_bytes" and
// "interconnect.<name>.busy_ps", and a timeline track "link.<name>" with one
// span per Send covering its serialization window. A nil sink detaches.
func (l *Link) AttachMetrics(m metrics.Sink, name string) {
	if m == nil {
		l.mtrack, l.mSent, l.mBusy = nil, nil, nil
		return
	}
	l.mtrack = m.Track("link." + name)
	l.mSent = m.Counter("interconnect." + name + ".sent_bytes")
	l.mBusy = m.Counter("interconnect." + name + ".busy_ps")
}

// Send queues a transfer of n bytes. onDelivered (may be nil) runs when the
// last packet arrives at the far end.
func (l *Link) Send(n units.Bytes, onDelivered sim.Handler) {
	l.SendWith(n, nil, onDelivered)
}

// SendWith queues a transfer of n bytes, invoking onPacket(size) as each
// packet of at most PacketSize bytes arrives at the far end (so receivers can
// pipeline work behind the wire) and onDelivered once after the final packet.
// Either callback may be nil. Zero-byte sends deliver after just the
// propagation latency.
func (l *Link) SendWith(n units.Bytes, onPacket func(units.Bytes), onDelivered sim.Handler) {
	if n < 0 {
		panic("interconnect: negative send size")
	}
	now := l.eng.Now()
	if l.busyUntil < now {
		l.busyUntil = now
	}
	serializeStart := l.busyUntil
	l.sentBytes += n
	remaining := n
	for {
		pkt := remaining
		if pkt > l.cfg.PacketSize {
			pkt = l.cfg.PacketSize
		}
		l.busyUntil += l.cfg.LinkBandwidth.TransferTime(pkt)
		remaining -= pkt
		deliver := l.busyUntil + l.cfg.LinkLatency
		last := remaining == 0
		if onPacket != nil && pkt > 0 {
			size := pkt
			l.deliver(deliver, func() { onPacket(size) })
		}
		if last {
			if onDelivered != nil {
				l.deliver(deliver, onDelivered)
			}
			break
		}
	}
	l.busyTime += l.busyUntil - serializeStart
	l.chkSerial.Window(serializeStart, l.busyUntil)
	l.mSent.Add(int64(n))
	l.mBusy.Add(int64(l.busyUntil - serializeStart))
	if l.mtrack != nil && l.busyUntil > serializeStart {
		l.mtrack.Span("send", serializeStart, l.busyUntil)
	}
}

// AttachChecker registers the link's invariant witness under the given name
// (e.g. "fwd0"): serialization windows must never overlap. A nil checker
// detaches.
func (l *Link) AttachChecker(c *check.Checker, name string) {
	l.chkSerial = c.NonOverlap("interconnect." + name + ".serialize")
}

// BusyUntil returns the time at which the link's serializer frees up.
func (l *Link) BusyUntil() units.Time { return l.busyUntil }

// BusyTime returns the cumulative time the serializer has been occupied. In
// any simulation it is bounded above by the wall-clock span of the run — the
// bound the invariant checker asserts at end of run.
func (l *Link) BusyTime() units.Time { return l.busyTime }

// SentBytes returns the cumulative bytes accepted by the link.
func (l *Link) SentBytes() units.Bytes { return l.sentBytes }

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }
