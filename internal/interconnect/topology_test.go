package interconnect

import (
	"reflect"
	"testing"

	"t3sim/internal/sim"
	"t3sim/internal/units"
)

func topoCfg() Config {
	return Config{LinkBandwidth: 75 * units.GBps, LinkLatency: 500 * units.Nanosecond, PacketSize: 2 * units.KiB}
}

func TestTopoSpecValidate(t *testing.T) {
	cfg := topoCfg()
	good := []TopoSpec{
		RingTopo(2, cfg),
		RingTopo(8, cfg),
		TorusTopo(2, 4, cfg),
		TorusTopo(3, 3, cfg),
		SwitchTopo(4, cfg),
		HierarchicalTopo(2, 4, cfg, cfg),
		HierarchicalTopo(4, 1, cfg, Config{}),
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%v/%d: unexpected error %v", s.Kind, s.Devices, err)
		}
	}
	bad := []TopoSpec{
		{},                   // unknown/unset link
		RingTopo(1, cfg),     // too small
		TorusTopo(1, 4, cfg), // degenerate row
		{Kind: TopoTorus, Devices: 9, Rows: 2, Cols: 4, Link: cfg}, // count mismatch
		SwitchTopo(1, cfg),
		HierarchicalTopo(1, 4, cfg, cfg),
		{Kind: TopoHierarchical, Devices: 8, Nodes: 2, PerNode: 4, Link: cfg,
			InterLink: Config{LinkBandwidth: -1, LinkLatency: 1, PacketSize: 1}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%v/%d: expected validation error", s.Kind, s.Devices)
		}
	}
}

// TestRingTopoEdgeOrder pins the canonical edge order of the ring: forward
// then backward per device — the cluster mailbox registration order the
// legacy NewClusterRing used, which the byte-identity of the golden suite
// rests on.
func TestRingTopoEdgeOrder(t *testing.T) {
	s := RingTopo(4, topoCfg())
	var got [][2]int
	for _, e := range s.edges() {
		got = append(got, [2]int{e.src, e.dst})
	}
	want := [][2]int{{0, 1}, {0, 3}, {1, 2}, {1, 0}, {2, 3}, {2, 1}, {3, 0}, {3, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ring edge order = %v, want %v", got, want)
	}
}

func TestTopoNeighbors(t *testing.T) {
	cfg := topoCfg()
	cases := []struct {
		name string
		spec TopoSpec
		dev  int
		want []int
	}{
		{"ring", RingTopo(4, cfg), 1, []int{2, 0}},
		{"torus-corner", TorusTopo(2, 4, cfg), 0, []int{1, 3, 4, 4}},
		{"torus-mid", TorusTopo(3, 3, cfg), 4, []int{5, 3, 7, 1}},
		{"switch", SwitchTopo(4, cfg), 2, []int{0, 1, 3}},
		{"hier-leader", HierarchicalTopo(2, 4, cfg, cfg), 0, []int{1, 2, 3, 4}},
		{"hier-member", HierarchicalTopo(2, 4, cfg, cfg), 5, []int{4, 6, 7}},
	}
	for _, tc := range cases {
		if got := tc.spec.Neighbors(tc.dev); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: Neighbors(%d) = %v, want %v", tc.name, tc.dev, got, tc.want)
		}
	}
}

// TestTopoRoutes checks the deterministic shortest-path routing on each
// kind, including the two-level route through node leaders.
func TestTopoRoutes(t *testing.T) {
	cfg := topoCfg()
	slow := cfg
	slow.LinkBandwidth = 25 * units.GBps
	eng := sim.NewEngine()
	cases := []struct {
		name     string
		spec     TopoSpec
		src, dst int
		want     []int
	}{
		{"ring-fwd", RingTopo(4, cfg), 0, 1, []int{1}},
		{"ring-2hop", RingTopo(5, cfg), 0, 2, []int{1, 2}},
		{"ring-back", RingTopo(5, cfg), 0, 4, []int{4}},
		{"torus-row", TorusTopo(2, 4, cfg), 0, 2, []int{1, 2}},
		{"torus-wrap", TorusTopo(2, 4, cfg), 3, 0, []int{0}},
		{"torus-diag", TorusTopo(2, 4, cfg), 0, 5, []int{1, 5}},
		{"switch-direct", SwitchTopo(8, cfg), 3, 6, []int{6}},
		{"hier-intra", HierarchicalTopo(2, 4, cfg, slow), 1, 3, []int{3}},
		{"hier-inter", HierarchicalTopo(2, 4, cfg, slow), 1, 6, []int{0, 4, 6}},
		{"hier-leaders", HierarchicalTopo(2, 4, cfg, slow), 0, 4, []int{4}},
	}
	for _, tc := range cases {
		topo, err := tc.spec.Build(eng)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := topo.Route(tc.src, tc.dst); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: Route(%d,%d) = %v, want %v", tc.name, tc.src, tc.dst, got, tc.want)
		}
		if got, want := topo.Hops(tc.src, tc.dst), len(tc.want); got != want {
			t.Errorf("%s: Hops(%d,%d) = %d, want %d", tc.name, tc.src, tc.dst, got, want)
		}
	}
}

// TestTopoSendMultiHop times a 2-hop send against the store-and-forward
// model: serialize + latency per hop.
func TestTopoSendMultiHop(t *testing.T) {
	cfg := topoCfg()
	eng := sim.NewEngine()
	topo, err := RingTopo(5, cfg).Build(eng)
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 64 * units.KiB
	var done units.Time
	topo.Send(0, 2, bytes, func() { done = eng.Now() })
	eng.Run()
	// The link serializes packet by packet, rounding each packet's transfer
	// to whole picoseconds, so the expectation sums per-packet times.
	var serialize units.Time
	for left := units.Bytes(bytes); left > 0; left -= cfg.PacketSize {
		pkt := cfg.PacketSize
		if left < pkt {
			pkt = left
		}
		serialize += cfg.LinkBandwidth.TransferTime(pkt)
	}
	perHop := serialize + cfg.LinkLatency
	if want := 2 * perHop; done != want {
		t.Fatalf("2-hop send delivered at %v, want %v", done, want)
	}
}

// TestTopoClusterMatchesShared drives the same multi-hop sends on a shared
// engine and on a cluster and expects identical delivery times — the
// byte-identity contract every topology inherits from the ring.
func TestTopoClusterMatchesShared(t *testing.T) {
	cfg := topoCfg()
	inter := cfg
	inter.LinkBandwidth = 25 * units.GBps
	inter.LinkLatency = 2 * units.Microsecond
	specs := []TopoSpec{
		RingTopo(6, cfg),
		TorusTopo(2, 4, cfg),
		SwitchTopo(6, cfg),
		HierarchicalTopo(2, 4, cfg, inter),
	}
	type msg struct {
		src, dst int
		bytes    units.Bytes
	}
	for _, spec := range specs {
		var msgs []msg
		n := spec.Devices
		for d := 0; d < n; d++ {
			msgs = append(msgs, msg{d, (d + n/2) % n, units.Bytes(16+d) * units.KiB})
		}
		runShared := func() []units.Time {
			eng := sim.NewEngine()
			topo, err := spec.Build(eng)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]units.Time, len(msgs))
			for i, m := range msgs {
				i, m := i, m
				topo.Send(m.src, m.dst, m.bytes, func() { out[i] = eng.Now() })
			}
			eng.Run()
			return out
		}
		runCluster := func(workers int) []units.Time {
			cl := sim.NewCluster(n, spec.MinLinkLatency())
			topo, err := spec.BuildCluster(cl)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]units.Time, len(msgs))
			for i, m := range msgs {
				i, m := i, m
				dst := m.dst
				topo.Send(m.src, m.dst, m.bytes, func() { out[i] = cl.Engine(dst).Now() })
			}
			cl.Run(workers)
			return out
		}
		want := runShared()
		for _, workers := range []int{1, 2, 4} {
			if got := runCluster(workers); !reflect.DeepEqual(got, want) {
				t.Errorf("%v: cluster(workers=%d) deliveries %v != shared %v", spec.Kind, workers, got, want)
			}
		}
	}
}

// TestClusterTopoRejectsShortLatency pins the conservative-window guarantee:
// a link whose latency undercuts the cluster lookahead must be rejected.
func TestClusterTopoRejectsShortLatency(t *testing.T) {
	cfg := topoCfg()
	cl := sim.NewCluster(8, cfg.LinkLatency)
	inter := cfg
	inter.LinkLatency = cfg.LinkLatency / 2
	if _, err := HierarchicalTopo(2, 4, inter, cfg).BuildCluster(cl); err == nil {
		t.Fatal("expected short intra-node latency to be rejected")
	}
	if _, err := HierarchicalTopo(2, 4, cfg, inter).BuildCluster(cl); err == nil {
		t.Fatal("expected short inter-node latency to be rejected")
	}
	cl2 := sim.NewCluster(8, inter.LinkLatency)
	if _, err := HierarchicalTopo(2, 4, cfg, inter).BuildCluster(cl2); err != nil {
		t.Fatalf("lookahead = min link latency must build: %v", err)
	}
}

// TestRingViewMatchesTopology checks the Ring facade exposes exactly the
// topology's canonical edges.
func TestRingViewMatchesTopology(t *testing.T) {
	eng := sim.NewEngine()
	r, err := NewRing(eng, 4, topoCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if r.ForwardLink(i) != r.Topo().Link(i, r.Next(i)) {
			t.Errorf("forward link %d is not the topology's %d->%d edge", i, i, r.Next(i))
		}
		if r.BackwardLink(i) != r.Topo().Link(i, r.Prev(i)) {
			t.Errorf("backward link %d is not the topology's %d->%d edge", i, i, r.Prev(i))
		}
	}
}
