package interconnect

import (
	"testing"

	"t3sim/internal/sim"
	"t3sim/internal/units"
)

func testCfg() Config {
	return Config{
		LinkBandwidth: 1 * units.GBps, // 1 byte/ns
		LinkLatency:   500 * units.Nanosecond,
		PacketSize:    1 * units.KiB,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	bad := []Config{
		{LinkBandwidth: 0, LinkLatency: 1, PacketSize: 1},
		{LinkBandwidth: 1, LinkLatency: -1, PacketSize: 1},
		{LinkBandwidth: 1, LinkLatency: 1, PacketSize: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	eng := sim.NewEngine()
	if _, err := NewLink(eng, bad[0]); err == nil {
		t.Error("NewLink with bad config: expected error")
	}
}

func TestSendSerializationPlusLatency(t *testing.T) {
	eng := sim.NewEngine()
	l, err := NewLink(eng, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	var done units.Time
	l.Send(10*units.KiB, func() { done = eng.Now() })
	eng.Run()
	// 10 KiB at 1 B/ns = 10240 ns serialization + 500 ns latency.
	want := units.Time(10240+500) * units.Nanosecond
	if done != want {
		t.Errorf("delivered at %v, want %v", done, want)
	}
	if l.SentBytes() != 10*units.KiB {
		t.Errorf("SentBytes = %v", l.SentBytes())
	}
}

func TestBackToBackSendsSerialize(t *testing.T) {
	eng := sim.NewEngine()
	l, _ := NewLink(eng, testCfg())
	var d1, d2 units.Time
	l.Send(1*units.KiB, func() { d1 = eng.Now() })
	l.Send(1*units.KiB, func() { d2 = eng.Now() })
	eng.Run()
	// Second send waits for the first's serialization but the propagation
	// latency pipelines: d2 = 2*1024ns + 500ns.
	if d1 != (1024+500)*units.Nanosecond {
		t.Errorf("d1 = %v", d1)
	}
	if d2 != (2048+500)*units.Nanosecond {
		t.Errorf("d2 = %v, want 2548ns", d2)
	}
}

func TestSendWithPacketCallbacks(t *testing.T) {
	eng := sim.NewEngine()
	l, _ := NewLink(eng, testCfg())
	var pkts []units.Bytes
	var firstAt, lastAt units.Time
	l.SendWith(2560, func(n units.Bytes) {
		if firstAt == 0 {
			firstAt = eng.Now()
		}
		lastAt = eng.Now()
		pkts = append(pkts, n)
	}, nil)
	eng.Run()
	if len(pkts) != 3 || pkts[0] != 1024 || pkts[1] != 1024 || pkts[2] != 512 {
		t.Errorf("packets = %v, want [1024 1024 512]", pkts)
	}
	// First packet arrives after its own serialization + latency, well before
	// the full message would.
	if firstAt != (1024+500)*units.Nanosecond {
		t.Errorf("first packet at %v", firstAt)
	}
	if lastAt != (2560+500)*units.Nanosecond {
		t.Errorf("last packet at %v", lastAt)
	}
}

func TestZeroByteSend(t *testing.T) {
	eng := sim.NewEngine()
	l, _ := NewLink(eng, testCfg())
	var done units.Time
	called := 0
	l.SendWith(0, func(units.Bytes) { called++ }, func() { done = eng.Now() })
	eng.Run()
	if done != 500*units.Nanosecond {
		t.Errorf("zero-byte delivered at %v, want 500ns", done)
	}
	if called != 0 {
		t.Errorf("onPacket called %d times for zero bytes", called)
	}
}

func TestNegativeSendPanics(t *testing.T) {
	eng := sim.NewEngine()
	l, _ := NewLink(eng, testCfg())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	l.Send(-1, nil)
}

func TestRingTopology(t *testing.T) {
	eng := sim.NewEngine()
	r, err := NewRing(eng, 4, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Devices() != 4 {
		t.Errorf("Devices = %d", r.Devices())
	}
	if r.Next(3) != 0 || r.Prev(0) != 3 || r.Next(1) != 2 || r.Prev(2) != 1 {
		t.Error("neighbor arithmetic wrong")
	}
	seen := map[*Link]bool{}
	for i := 0; i < 4; i++ {
		for _, l := range []*Link{r.ForwardLink(i), r.BackwardLink(i)} {
			if l == nil {
				t.Fatalf("nil link at %d", i)
			}
			if seen[l] {
				t.Fatalf("link %d shared between devices", i)
			}
			seen[l] = true
		}
	}
}

func TestRingErrors(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewRing(eng, 1, testCfg()); err == nil {
		t.Error("1-device ring: expected error")
	}
	if _, err := NewRing(eng, 4, Config{}); err == nil {
		t.Error("invalid config: expected error")
	}
}

func TestRingBandwidthIndependence(t *testing.T) {
	// Traffic on different devices' links does not serialize against each
	// other: all four forward links can deliver at the same time.
	eng := sim.NewEngine()
	r, _ := NewRing(eng, 4, testCfg())
	var times []units.Time
	for i := 0; i < 4; i++ {
		r.ForwardLink(i).Send(1*units.KiB, func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	for _, tm := range times {
		if tm != (1024+500)*units.Nanosecond {
			t.Errorf("delivery at %v, want 1524ns", tm)
		}
	}
	if len(times) != 4 {
		t.Errorf("%d deliveries, want 4", len(times))
	}
}
