package interconnect

import (
	"fmt"

	"t3sim/internal/metrics"
	"t3sim/internal/sim"
)

// Ring is a bidirectional ring of N devices — the Table 1 network, now a
// view over the general Topology graph (RingTopo). ForwardLink(i) carries
// traffic from device i to device (i+1) mod N; BackwardLink(i) from device i
// to device (i-1+N) mod N. Ring collectives in this repository use the
// forward direction. The ring's links are the topology's edges in canonical
// order (forward then backward per device), so cluster mailbox registration —
// and with it the deterministic drain order — is unchanged from the
// pre-topology implementation.
type Ring struct {
	topo *Topology
	n    int
	cfg  Config
}

// NewRing builds a ring of n >= 2 devices on eng.
func NewRing(eng *sim.Engine, n int, cfg Config) (*Ring, error) {
	t, err := RingTopo(n, cfg).Build(eng)
	if err != nil {
		return nil, err
	}
	return &Ring{topo: t, n: n, cfg: cfg}, nil
}

// NewClusterRing builds a ring whose devices live on the per-device engines
// of a cluster: link i serializes on device i's engine and delivers into its
// neighbor's mailbox. Mailboxes are registered in device order (forward then
// backward per device), which fixes the barrier drain order and therefore
// the cross-engine delivery order for every worker count.
func NewClusterRing(cl *sim.Cluster, cfg Config) (*Ring, error) {
	n := len(cl.Engines())
	if n < 2 {
		return nil, fmt.Errorf("interconnect: ring needs >= 2 devices, got %d", n)
	}
	t, err := RingTopo(n, cfg).BuildCluster(cl)
	if err != nil {
		return nil, err
	}
	return &Ring{topo: t, n: n, cfg: cfg}, nil
}

// AttachMetrics registers every ring link's instruments on m: forward links
// as "fwd<i>", backward links as "bwd<i>" (see Link.AttachMetrics).
func (r *Ring) AttachMetrics(m metrics.Sink) {
	for i := 0; i < r.n; i++ {
		r.ForwardLink(i).AttachMetrics(m, fmt.Sprintf("fwd%d", i))
		r.BackwardLink(i).AttachMetrics(m, fmt.Sprintf("bwd%d", i))
	}
}

// Topo returns the underlying topology graph.
func (r *Ring) Topo() *Topology { return r.topo }

// Devices returns the number of devices on the ring.
func (r *Ring) Devices() int { return r.n }

// Config returns the link configuration.
func (r *Ring) Config() Config { return r.cfg }

// Next returns the forward neighbor of device i.
func (r *Ring) Next(i int) int { return (i + 1) % r.n }

// Prev returns the backward neighbor of device i.
func (r *Ring) Prev(i int) int { return (i - 1 + r.n) % r.n }

// ForwardLink returns the link from device i to Next(i) — topology edge 2i.
func (r *Ring) ForwardLink(i int) *Link { return r.topo.LinkAt(2 * i) }

// BackwardLink returns the link from device i to Prev(i) — topology edge
// 2i+1.
func (r *Ring) BackwardLink(i int) *Link { return r.topo.LinkAt(2*i + 1) }
