package interconnect

import (
	"fmt"

	"t3sim/internal/metrics"
	"t3sim/internal/sim"
)

// Ring is a bidirectional ring of N devices. ForwardLink(i) carries traffic
// from device i to device (i+1) mod N; BackwardLink(i) from device i to
// device (i-1+N) mod N. Ring collectives in this repository use the forward
// direction.
type Ring struct {
	n        int
	cfg      Config
	forward  []*Link
	backward []*Link
}

// NewRing builds a ring of n >= 2 devices on eng.
func NewRing(eng *sim.Engine, n int, cfg Config) (*Ring, error) {
	if n < 2 {
		return nil, fmt.Errorf("interconnect: ring needs >= 2 devices, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Ring{n: n, cfg: cfg}
	r.forward = make([]*Link, n)
	r.backward = make([]*Link, n)
	for i := 0; i < n; i++ {
		fl, err := NewLink(eng, cfg)
		if err != nil {
			return nil, err
		}
		bl, err := NewLink(eng, cfg)
		if err != nil {
			return nil, err
		}
		r.forward[i] = fl
		r.backward[i] = bl
	}
	return r, nil
}

// NewClusterRing builds a ring whose devices live on the per-device engines
// of a cluster: link i serializes on device i's engine and delivers into its
// neighbor's mailbox. Mailboxes are registered in device order (forward then
// backward per device), which fixes the barrier drain order and therefore
// the cross-engine delivery order for every worker count.
func NewClusterRing(cl *sim.Cluster, cfg Config) (*Ring, error) {
	n := len(cl.Engines())
	if n < 2 {
		return nil, fmt.Errorf("interconnect: ring needs >= 2 devices, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Ring{n: n, cfg: cfg}
	r.forward = make([]*Link, n)
	r.backward = make([]*Link, n)
	for i := 0; i < n; i++ {
		fl, err := NewClusterLink(cl, i, (i+1)%n, cfg)
		if err != nil {
			return nil, err
		}
		bl, err := NewClusterLink(cl, i, (i-1+n)%n, cfg)
		if err != nil {
			return nil, err
		}
		r.forward[i] = fl
		r.backward[i] = bl
	}
	return r, nil
}

// AttachMetrics registers every ring link's instruments on m: forward links
// as "fwd<i>", backward links as "bwd<i>" (see Link.AttachMetrics).
func (r *Ring) AttachMetrics(m metrics.Sink) {
	for i := 0; i < r.n; i++ {
		r.forward[i].AttachMetrics(m, fmt.Sprintf("fwd%d", i))
		r.backward[i].AttachMetrics(m, fmt.Sprintf("bwd%d", i))
	}
}

// Devices returns the number of devices on the ring.
func (r *Ring) Devices() int { return r.n }

// Config returns the link configuration.
func (r *Ring) Config() Config { return r.cfg }

// Next returns the forward neighbor of device i.
func (r *Ring) Next(i int) int { return (i + 1) % r.n }

// Prev returns the backward neighbor of device i.
func (r *Ring) Prev(i int) int { return (i - 1 + r.n) % r.n }

// ForwardLink returns the link from device i to Next(i).
func (r *Ring) ForwardLink(i int) *Link { return r.forward[i] }

// BackwardLink returns the link from device i to Prev(i).
func (r *Ring) BackwardLink(i int) *Link { return r.backward[i] }
