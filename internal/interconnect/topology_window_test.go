package interconnect

import (
	"reflect"
	"testing"

	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// hierWindowProbe runs a fixed multi-round traffic pattern over a 2x4
// hierarchy on a cluster and returns the delivery times plus the run stats.
// The spec's per-edge latencies are taken as given; the cluster lookahead is
// always the spec's MinLinkLatency (the unattributed-mailbox floor).
func hierWindowProbe(t *testing.T, spec TopoSpec, mode sim.ClusterSyncMode, workers int) ([]units.Time, sim.ClusterStats) {
	t.Helper()
	n := spec.Devices
	cl := sim.NewCluster(n, spec.MinLinkLatency())
	cl.SetSyncMode(mode)
	topo, err := spec.BuildCluster(cl)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 6
	out := make([]units.Time, n*rounds)
	for d := 0; d < n; d++ {
		d := d
		var round int
		var kick func()
		kick = func() {
			r := round
			round++
			// Alternate an intra-node hop with a cross-node hop so every
			// device's horizon depends on both link classes.
			dst := (d + 1) % 4
			if d >= 4 {
				dst += 4
			}
			if r%2 == 1 {
				dst = (d + 4) % n
			}
			topo.Send(d, dst, units.Bytes(8+d)*units.KiB, func() {
				out[d*rounds+r] = cl.Engine(dst).Now()
				if round < rounds {
					cl.Engine(d).After(spec.Link.LinkLatency, kick)
				}
			})
		}
		cl.Engine(d).At(units.Time(d)*100, kick)
	}
	cl.Run(workers)
	return out, cl.Stats()
}

// TestHierarchyPerEdgeWindows is the regression test for the global-floor
// bug: cluster lookahead used to be the single MinLinkLatency over the whole
// graph, so a 3x-slower inter-node link dragged every intra-node window down
// to the same floor. With per-edge latencies flowing into per-edge bounds
// (and, in appointment mode, per-edge promises), the same workload on the
// asymmetric hierarchy must synchronize in strictly wider windows than the
// all-links-at-the-floor variant — in both sync modes — while staying
// byte-identical at every worker count.
func TestHierarchyPerEdgeWindows(t *testing.T) {
	intra := topoCfg()
	inter := intra
	inter.LinkBandwidth = intra.LinkBandwidth / 3
	inter.LinkLatency = 3 * intra.LinkLatency
	asym := HierarchicalTopo(2, 4, intra, inter)
	// The floor variant models the old behaviour: identical graph, but every
	// edge clamped to the global minimum latency (bandwidths kept, so only
	// the lookahead differs).
	floorInter := inter
	floorInter.LinkLatency = intra.LinkLatency
	floored := HierarchicalTopo(2, 4, intra, floorInter)

	for _, mode := range []sim.ClusterSyncMode{sim.SyncWindowed, sim.SyncAppointment} {
		_, asymStats := hierWindowProbe(t, asym, mode, 1)
		_, floorStats := hierWindowProbe(t, floored, mode, 1)
		if asymStats.EngineWindows == 0 || floorStats.EngineWindows == 0 {
			t.Fatalf("mode=%v: probe ran no windows (asym %+v, floor %+v)", mode, asymStats, floorStats)
		}
		if aw, fw := asymStats.AvgWindowWidth(), floorStats.AvgWindowWidth(); aw <= fw {
			t.Errorf("mode=%v: asymmetric hierarchy windows (%v) not wider than global-floor windows (%v)",
				mode, aw, fw)
		}
	}

	// Identity rides along: the asymmetric spec must deliver at the same
	// times in both modes at every worker count.
	want, _ := hierWindowProbe(t, asym, sim.SyncWindowed, 1)
	for _, mode := range []sim.ClusterSyncMode{sim.SyncWindowed, sim.SyncAppointment} {
		for _, workers := range []int{1, 2, 4} {
			if got, _ := hierWindowProbe(t, asym, mode, workers); !reflect.DeepEqual(got, want) {
				t.Errorf("mode=%v workers=%d: deliveries diverged on asymmetric hierarchy", mode, workers)
			}
		}
	}
}
