package interconnect

import (
	"fmt"
	"testing"

	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// clusterCfg is small enough that packetization exercises multiple packets
// per send without slowing the test.
func clusterCfg() Config {
	return Config{
		LinkBandwidth: 1 * units.GBps,
		LinkLatency:   500 * units.Nanosecond,
		PacketSize:    2 * units.KiB,
	}
}

// TestClusterLinkMatchesSharedEngineLink drives the same send schedule over
// a shared-engine link and over a cluster link, and requires identical
// packet and completion delivery times — the link model must not be able to
// tell whether its far end lives on another engine.
func TestClusterLinkMatchesSharedEngineLink(t *testing.T) {
	sends := []units.Bytes{0, 1, 2 * units.KiB, 5*units.KiB + 7, 64 * units.KiB}

	type delivery struct {
		at   units.Time
		size units.Bytes
		last bool
	}
	drive := func(eng *sim.Engine, farNow func() units.Time, l *Link) []delivery {
		var log []delivery
		for i, n := range sends {
			n := n
			eng.At(units.Time(i)*units.Microsecond, func() {
				l.SendWith(n,
					func(size units.Bytes) { log = append(log, delivery{farNow(), size, false}) },
					func() { log = append(log, delivery{farNow(), n, true}) })
			})
		}
		return log
	}

	shared := sim.NewEngine()
	sl, err := NewLink(shared, clusterCfg())
	if err != nil {
		t.Fatal(err)
	}
	wantLog := drive(shared, shared.Now, sl)
	shared.Run()

	for _, workers := range []int{1, 2} {
		cl := sim.NewCluster(2, clusterCfg().LinkLatency)
		ll, err := NewClusterLink(cl, 0, 1, clusterCfg())
		if err != nil {
			t.Fatal(err)
		}
		gotLog := drive(cl.Engine(0), cl.Engine(1).Now, ll)
		cl.Run(workers)
		if fmt.Sprint(gotLog) != fmt.Sprint(wantLog) {
			t.Errorf("workers=%d: cluster link deliveries diverged\n got: %v\nwant: %v",
				workers, gotLog, wantLog)
		}
		if sl.SentBytes() != ll.SentBytes() || sl.BusyTime() != ll.BusyTime() {
			t.Errorf("workers=%d: link accounting diverged: sent %v vs %v, busy %v vs %v",
				workers, ll.SentBytes(), sl.SentBytes(), ll.BusyTime(), sl.BusyTime())
		}
	}
}

func TestClusterLinkRejectsShortLatency(t *testing.T) {
	cl := sim.NewCluster(2, 500*units.Nanosecond)
	cfg := clusterCfg()
	cfg.LinkLatency = 499 * units.Nanosecond
	if _, err := NewClusterLink(cl, 0, 1, cfg); err == nil {
		t.Fatal("LinkLatency below the cluster lookahead was accepted")
	}
}

// TestClusterRingTopology pins that the cluster ring wires the same
// neighbor relation as the shared-engine ring and that every link rides its
// owner's engine.
func TestClusterRingTopology(t *testing.T) {
	const n = 4
	cl := sim.NewCluster(n, clusterCfg().LinkLatency)
	r, err := NewClusterRing(cl, clusterCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Devices() != n {
		t.Fatalf("Devices = %d, want %d", r.Devices(), n)
	}
	for i := 0; i < n; i++ {
		if r.Next(i) != (i+1)%n || r.Prev(i) != (i-1+n)%n {
			t.Errorf("neighbor relation broken at %d", i)
		}
		if r.ForwardLink(i).eng != cl.Engine(i) || r.BackwardLink(i).eng != cl.Engine(i) {
			t.Errorf("device %d link serializes on a foreign engine", i)
		}
	}
}
