package memory

import "t3sim/internal/units"

// ChannelView is the snapshot of one channel's state an arbitration policy
// sees when deciding what to issue next.
type ChannelView struct {
	Now            units.Time
	DRAMOccupancy  int // requests sitting in the DRAM command queue
	QueueDepth     int // DRAM command queue capacity
	ComputePending int // un-issued compute-stream requests
	CommPending    int // un-issued communication-stream requests
	LastCommIssue  units.Time
}

// Arbiter selects which stream a channel issues from next. Returning ok=false
// stalls issue until the channel state changes (new arrival or a completion).
//
// Implementations must only select a stream with pending requests.
type Arbiter interface {
	Next(v ChannelView) (s Stream, ok bool)
}

// RoundRobin alternates between the two streams, falling back to the other
// stream when the preferred one is empty. This is the baseline policy the
// paper shows causes producer slowdowns (§4.5): bursty communication traffic
// freely occupies the DRAM queues.
type RoundRobin struct {
	last Stream
}

// Next implements Arbiter.
func (r *RoundRobin) Next(v ChannelView) (Stream, bool) {
	first := StreamCompute
	if r.last == StreamCompute {
		first = StreamComm
	}
	for _, s := range [...]Stream{first, other(first)} {
		if pending(v, s) > 0 {
			r.last = s
			return s, true
		}
	}
	return 0, false
}

// ComputeFirst always prefers the compute stream and issues communication
// only when compute is empty, with no occupancy limit. The paper notes this
// is insufficient because previously issued communication bursts already
// occupy the DRAM queue when compute accesses arrive.
type ComputeFirst struct{}

// Next implements Arbiter.
func (ComputeFirst) Next(v ChannelView) (Stream, bool) {
	if v.ComputePending > 0 {
		return StreamCompute, true
	}
	if v.CommPending > 0 {
		return StreamComm, true
	}
	return 0, false
}

// MCAConfig parameterizes the paper's dynamic memory-controller arbitration
// policy (§4.5).
type MCAConfig struct {
	// Thresholds are the candidate DRAM-queue occupancy limits for issuing
	// communication traffic, from most to least restrictive. The paper uses
	// {5, 10, 30, no-limit}.
	Thresholds []int
	// StarvationLimit bounds how long the communication stream may go
	// without an issue while it has pending requests.
	StarvationLimit units.Time
}

// DefaultMCAConfig returns the paper's values.
func DefaultMCAConfig() MCAConfig {
	return MCAConfig{
		Thresholds:      []int{5, 10, 30},
		StarvationLimit: 2 * units.Microsecond,
	}
}

// MCA is the communication-aware arbitration policy of §4.5:
//
//   - compute-stream accesses always have priority;
//   - communication issues only when the DRAM queue occupancy is below a
//     threshold, leaving room for future compute accesses;
//   - the threshold is chosen dynamically from the memory intensity the
//     controller observed while the producer kernel ran in isolation (its
//     first stage, before any overlapped communication exists);
//   - a starvation bound guarantees communication forward progress.
//
// The zero threshold state (before any monitor window completes) is the
// most restrictive, which is safe for memory-intensive kernels.
type MCA struct {
	cfg       MCAConfig
	threshold int  // current occupancy limit; <0 means unlimited
	haveLimit bool // a monitor window has run
	pinned    bool // threshold fixed by SetThreshold; monitors are ignored
}

// NewMCA returns an MCA policy with cfg. Invalid configs fall back to
// DefaultMCAConfig values.
func NewMCA(cfg MCAConfig) *MCA {
	if len(cfg.Thresholds) == 0 {
		cfg.Thresholds = DefaultMCAConfig().Thresholds
	}
	if cfg.StarvationLimit <= 0 {
		cfg.StarvationLimit = DefaultMCAConfig().StarvationLimit
	}
	return &MCA{cfg: cfg, threshold: cfg.Thresholds[0], haveLimit: false}
}

// Next implements Arbiter.
func (m *MCA) Next(v ChannelView) (Stream, bool) {
	if v.CommPending > 0 && v.Now-v.LastCommIssue > m.cfg.StarvationLimit {
		return StreamComm, true
	}
	if v.ComputePending > 0 {
		return StreamCompute, true
	}
	if v.CommPending > 0 && (m.threshold < 0 || v.DRAMOccupancy < m.threshold) {
		return StreamComm, true
	}
	return 0, false
}

// Threshold returns the current occupancy limit (<0 means unlimited).
func (m *MCA) Threshold() int { return m.threshold }

// SetIntensity installs the occupancy threshold for the observed memory
// intensity of the running producer kernel. Intensity is the mean DRAM queue
// occupancy during the kernel's isolated execution, normalized to queue
// depth (0..1): the more memory-intensive the kernel, the smaller the
// occupancy budget left for communication. Pinned thresholds win.
func (m *MCA) SetIntensity(intensity float64) {
	if m.pinned {
		return
	}
	m.haveLimit = true
	th := m.cfg.Thresholds
	switch {
	case intensity > 0.60:
		m.threshold = th[0]
	case intensity > 0.25:
		m.threshold = th[min(1, len(th)-1)]
	case intensity > 0.05:
		m.threshold = th[min(2, len(th)-1)]
	default:
		m.threshold = -1 // compute barely touches DRAM: no limit
	}
}

// SetThreshold pins the occupancy limit directly (used by the fixed-
// threshold ablation; -1 means unlimited). It marks the policy calibrated
// so monitor windows do not override it.
func (m *MCA) SetThreshold(threshold int) {
	m.threshold = threshold
	m.haveLimit = true
	m.pinned = true
}

// Calibrated reports whether a monitor window has set the threshold.
func (m *MCA) Calibrated() bool { return m.haveLimit }

func pending(v ChannelView, s Stream) int {
	if s == StreamCompute {
		return v.ComputePending
	}
	return v.CommPending
}

func other(s Stream) Stream {
	if s == StreamCompute {
		return StreamComm
	}
	return StreamCompute
}
