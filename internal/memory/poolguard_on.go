//go:build race || t3debug

package memory

// poolGuard enables use-after-free detection for pooled requests. It is on
// in race builds (CI runs `go test -race ./...`) and under `-tags t3debug`,
// and compiled out entirely otherwise so the guarded branches cost nothing
// in normal runs.
const poolGuard = true

// poisonBytes is the size written into a freed pooled request. It is
// negative, so any freed request that leaks back into Access or a service
// computation trips a panic or produces loudly-wrong traffic totals.
const poisonBytes = -1 << 40

// poisonRequest marks r freed and overwrites its payload fields with
// sentinel values.
func poisonRequest(r *Request) {
	r.freed = true
	r.Bytes = poisonBytes
	r.Tag = Tag{WG: -1, WF: -1, Region: -1}
	r.Kind = -1
	r.Stream = -1
}

// unpoisonRequest clears the freed mark when a request leaves the pool.
func unpoisonRequest(r *Request) {
	r.freed = false
}

// poisoned reports whether r is currently freed-and-poisoned. Test hook.
func poisoned(r *Request) bool { return r.freed }
