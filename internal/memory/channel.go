package memory

import (
	"t3sim/internal/check"
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// channel is one HBM channel: two stream queues feeding a finite DRAM
// command queue through the arbiter, and a single service stage draining the
// DRAM queue at the channel's share of the stack bandwidth.
type channel struct {
	ctrl *Controller
	id   int

	streams          [numStreams]reqRing // waiting, pre-arbitration
	dramq            reqRing             // issued, waiting for service
	busy             bool                // service stage occupied
	inService        *Request            // request occupying the stage
	svcDone          sim.Handler         // preallocated service-completion handler
	bw               units.Bandwidth
	lastComm         units.Time      // last time a comm request was issued (starvation)
	inflightByStream [numStreams]int // enqueued but not yet fully serviced
	banks            *bankTimer      // nil = flat service model

	// occupancy statistics for the MCA monitor window
	occSamples int64
	occSum     int64

	// Per-channel instrument handles (nil-safe; nil without a metrics sink).
	mBytes    [3][2]*metrics.Counter // serviced bytes by [kind][stream]
	mBusy     *metrics.Counter       // picoseconds the service stage was occupied
	mIssued   Stream                 // stream of the last DRAM-queue issue
	mAnyIssue bool                   // whether mIssued is meaningful yet

	// Invariant-checker handles (nil-safe; nil without Config.Check).
	chkServe *check.NonOverlap // service-stage busy windows
	chkDepth *check.Bound      // DRAM command-queue occupancy vs QueueDepth
}

// enqueue places a request on its stream queue and kicks arbitration.
func (ch *channel) enqueue(r *Request) {
	r.enqueuedAt = ch.ctrl.eng.Now()
	ch.streams[r.Stream].push(r)
	ch.inflightByStream[r.Stream]++
	ch.arbitrate()
}

// arbitrate moves requests from stream queues into the DRAM queue while the
// policy allows, then kicks the service stage.
func (ch *channel) arbitrate() {
	for ch.dramq.len() < ch.ctrl.cfg.QueueDepth {
		s, ok := ch.ctrl.arbiter.Next(ch.view())
		if !ok {
			break
		}
		if ch.streams[s].len() == 0 {
			panic("memory: arbiter selected empty stream")
		}
		r := ch.streams[s].pop()
		ch.dramq.push(r)
		ch.chkDepth.Observe(ch.ctrl.eng.Now(), int64(ch.dramq.len()))
		if s == StreamComm {
			ch.lastComm = ch.ctrl.eng.Now()
		}
		ch.ctrl.mIssues[s].Inc()
		if ch.mAnyIssue && ch.mIssued != s {
			ch.ctrl.mSwitches.Inc()
		}
		ch.mIssued, ch.mAnyIssue = s, true
		ch.ctrl.notifyEnqueue(r)
	}
	ch.service()
}

// service drains the DRAM queue head if the stage is free.
func (ch *channel) service() {
	if ch.busy || ch.dramq.len() == 0 {
		return
	}
	r := ch.dramq.pop()
	ch.busy = true
	ch.inService = r

	var t units.Time
	if ch.banks != nil {
		now := ch.ctrl.eng.Now()
		t = ch.banks.service(now, r) - now
	} else {
		t = ch.bw.TransferTime(r.Bytes)
		if r.Kind == Update {
			t = units.Time(float64(t) * ch.ctrl.cfg.UpdateFactor)
		}
	}
	ch.sampleOccupancy()
	if ch.chkServe != nil {
		now := ch.ctrl.eng.Now()
		ch.chkServe.Window(now, now+t)
	}
	ch.ctrl.counters.add(r.Kind, r.Stream, r.Bytes, ch.ctrl.eng.Now()-r.enqueuedAt)
	ch.mBytes[r.Kind][r.Stream].Add(int64(r.Bytes))
	ch.mBusy.Add(int64(t))
	ch.ctrl.eng.After(t, ch.svcDone)
}

// serviceDone is the single completion handler behind svcDone: the channel
// services one request at a time, so the request it applies to is always
// inService and no per-service closure is needed.
func (ch *channel) serviceDone() {
	r := ch.inService
	ch.inService = nil
	ch.busy = false
	ch.inflightByStream[r.Stream]--
	ch.complete(r)
	// Freeing the service stage may unblock arbitration (queue depth).
	ch.arbitrate()
	ch.ctrl.checkIdle()
}

// complete delivers a serviced request's completion. Pooled requests
// (created by Transfer/TransferTo) are recycled here, before their fence
// completion is delivered or scheduled — any observer holding the pointer
// past OnIssue is in violation of the retention contract.
func (ch *channel) complete(r *Request) {
	if x := r.xf; x != nil {
		isRead := r.Kind == Read
		ch.ctrl.putReq(r)
		if isRead && ch.ctrl.cfg.ReadLatency > 0 {
			ch.ctrl.eng.AfterFence(ch.ctrl.cfg.ReadLatency, x.fence)
		} else {
			x.fence.Done()
		}
		return
	}
	if r.OnDone == nil {
		return
	}
	if r.Kind == Read && ch.ctrl.cfg.ReadLatency > 0 {
		ch.ctrl.eng.After(ch.ctrl.cfg.ReadLatency, r.OnDone)
	} else {
		r.OnDone()
	}
}

// inFlight reports whether the channel has any work anywhere.
func (ch *channel) inFlight() bool {
	return ch.busy || ch.dramq.len() > 0 ||
		ch.streams[StreamCompute].len() > 0 || ch.streams[StreamComm].len() > 0
}

func (ch *channel) sampleOccupancy() {
	ch.occSamples++
	ch.occSum += int64(ch.dramq.len())
}

// view builds the arbiter's snapshot of this channel.
func (ch *channel) view() ChannelView {
	return ChannelView{
		Now:            ch.ctrl.eng.Now(),
		DRAMOccupancy:  ch.dramq.len(),
		QueueDepth:     ch.ctrl.cfg.QueueDepth,
		ComputePending: ch.streams[StreamCompute].len(),
		CommPending:    ch.streams[StreamComm].len(),
		LastCommIssue:  ch.lastComm,
	}
}
