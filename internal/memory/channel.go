package memory

import (
	"t3sim/internal/check"
	"t3sim/internal/metrics"
	"t3sim/internal/units"
)

// channel is one HBM channel: two stream queues feeding a finite DRAM
// command queue through the arbiter, and a single service stage draining the
// DRAM queue at the channel's share of the stack bandwidth.
type channel struct {
	ctrl *Controller
	id   int

	streams          [numStreams][]*Request // waiting, pre-arbitration
	dramq            []*Request             // issued, waiting for service
	busy             bool                   // service stage occupied
	bw               units.Bandwidth
	lastComm         units.Time      // last time a comm request was issued (starvation)
	inflightByStream [numStreams]int // enqueued but not yet fully serviced
	banks            *bankTimer      // nil = flat service model

	// occupancy statistics for the MCA monitor window
	occSamples int64
	occSum     int64

	// Per-channel instrument handles (nil-safe; nil without a metrics sink).
	mBytes    [3][2]*metrics.Counter // serviced bytes by [kind][stream]
	mBusy     *metrics.Counter       // picoseconds the service stage was occupied
	mIssued   Stream                 // stream of the last DRAM-queue issue
	mAnyIssue bool                   // whether mIssued is meaningful yet

	// Invariant-checker handles (nil-safe; nil without Config.Check).
	chkServe *check.NonOverlap // service-stage busy windows
	chkDepth *check.Bound      // DRAM command-queue occupancy vs QueueDepth
}

// enqueue places a request on its stream queue and kicks arbitration.
func (ch *channel) enqueue(r *Request) {
	r.enqueuedAt = ch.ctrl.eng.Now()
	ch.streams[r.Stream] = append(ch.streams[r.Stream], r)
	ch.inflightByStream[r.Stream]++
	ch.arbitrate()
}

// arbitrate moves requests from stream queues into the DRAM queue while the
// policy allows, then kicks the service stage.
func (ch *channel) arbitrate() {
	for len(ch.dramq) < ch.ctrl.cfg.QueueDepth {
		s, ok := ch.ctrl.arbiter.Next(ch.view())
		if !ok {
			break
		}
		q := ch.streams[s]
		if len(q) == 0 {
			panic("memory: arbiter selected empty stream")
		}
		r := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		ch.streams[s] = q[:len(q)-1]
		ch.dramq = append(ch.dramq, r)
		ch.chkDepth.Observe(ch.ctrl.eng.Now(), int64(len(ch.dramq)))
		if s == StreamComm {
			ch.lastComm = ch.ctrl.eng.Now()
		}
		ch.ctrl.mIssues[s].Inc()
		if ch.mAnyIssue && ch.mIssued != s {
			ch.ctrl.mSwitches.Inc()
		}
		ch.mIssued, ch.mAnyIssue = s, true
		ch.ctrl.notifyEnqueue(r)
	}
	ch.service()
}

// service drains the DRAM queue head if the stage is free.
func (ch *channel) service() {
	if ch.busy || len(ch.dramq) == 0 {
		return
	}
	r := ch.dramq[0]
	copy(ch.dramq, ch.dramq[1:])
	ch.dramq[len(ch.dramq)-1] = nil
	ch.dramq = ch.dramq[:len(ch.dramq)-1]
	ch.busy = true

	var t units.Time
	if ch.banks != nil {
		now := ch.ctrl.eng.Now()
		t = ch.banks.service(now, r) - now
	} else {
		t = ch.bw.TransferTime(r.Bytes)
		if r.Kind == Update {
			t = units.Time(float64(t) * ch.ctrl.cfg.UpdateFactor)
		}
	}
	ch.sampleOccupancy()
	if ch.chkServe != nil {
		now := ch.ctrl.eng.Now()
		ch.chkServe.Window(now, now+t)
	}
	ch.ctrl.counters.add(r.Kind, r.Stream, r.Bytes, ch.ctrl.eng.Now()-r.enqueuedAt)
	ch.mBytes[r.Kind][r.Stream].Add(int64(r.Bytes))
	ch.mBusy.Add(int64(t))
	ch.ctrl.eng.After(t, func() {
		ch.busy = false
		ch.inflightByStream[r.Stream]--
		ch.complete(r)
		// Freeing the service stage may unblock arbitration (queue depth).
		ch.arbitrate()
		ch.ctrl.checkIdle()
	})
}

func (ch *channel) complete(r *Request) {
	if r.OnDone == nil {
		return
	}
	if r.Kind == Read && ch.ctrl.cfg.ReadLatency > 0 {
		ch.ctrl.eng.After(ch.ctrl.cfg.ReadLatency, r.OnDone)
	} else {
		r.OnDone()
	}
}

// inFlight reports whether the channel has any work anywhere.
func (ch *channel) inFlight() bool {
	return ch.busy || len(ch.dramq) > 0 ||
		len(ch.streams[StreamCompute]) > 0 || len(ch.streams[StreamComm]) > 0
}

func (ch *channel) sampleOccupancy() {
	ch.occSamples++
	ch.occSum += int64(len(ch.dramq))
}

// view builds the arbiter's snapshot of this channel.
func (ch *channel) view() ChannelView {
	return ChannelView{
		Now:            ch.ctrl.eng.Now(),
		DRAMOccupancy:  len(ch.dramq),
		QueueDepth:     ch.ctrl.cfg.QueueDepth,
		ComputePending: len(ch.streams[StreamCompute]),
		CommPending:    len(ch.streams[StreamComm]),
		LastCommIssue:  ch.lastComm,
	}
}
