//go:build !race && !t3debug

package memory

// poolGuard is off in regular builds: the pooled-request poisoning branches
// compile away. See poolguard_on.go for the guarded variant.
const poolGuard = false

func poisonRequest(r *Request)   {}
func unpoisonRequest(r *Request) {}

func poisoned(r *Request) bool { return false }
