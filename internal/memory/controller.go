package memory

import (
	"fmt"

	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// Observer is notified when a request is issued into a DRAM command queue.
// The T3 tracker registers itself here: the paper checks the tracker "once
// the accesses are enqueued in the memory controller queue" so the check is
// off the critical path (§4.2.1). The DRAM traffic trace (Figure 17) is also
// an observer.
//
// Retention contract: the *Request is only valid for the duration of the
// OnIssue call. Requests created by Transfer/TransferTo are pooled and
// recycled as soon as they finish service, so an observer must read (copy)
// the fields it needs synchronously and must never store the pointer. Race
// and `-tags t3debug` builds poison freed requests to catch violations.
type Observer interface {
	OnIssue(now units.Time, r *Request)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(now units.Time, r *Request)

// OnIssue implements Observer.
func (f ObserverFunc) OnIssue(now units.Time, r *Request) { f(now, r) }

// Controller is one GPU's HBM stack: a set of channels fed through a shared
// arbitration policy. Transfers are striped across channels round-robin,
// which models the address interleaving real stacks use.
type Controller struct {
	eng      *sim.Engine
	cfg      Config
	arbiter  Arbiter
	channels []*channel
	counters Counters
	observer Observer

	nextChannel int // striping cursor

	// Freelists for the transaction hot path: every Transfer-created request
	// and per-transfer fence record is recycled here, so steady-state traffic
	// allocates nothing (see pool.go and the Request retention contract).
	reqFree []*Request
	xfFree  []*xfer

	idleWaiters   []idleWaiter
	monitorActive bool

	// Observability handles (all nil-safe; nil when Config.Metrics is nil).
	mtrack     *metrics.Track      // "memory" timeline: one span per Transfer
	mIssues    [2]*metrics.Counter // per-stream DRAM-queue issues
	mSwitches  *metrics.Counter    // arbitration stream switches
	mThreshold *metrics.Gauge      // calibrated MCA occupancy threshold
}

// transferSpanName labels Transfer spans on the "memory" timeline track by
// [kind][stream], e.g. "update/comm" for an incoming NMC reduction.
var transferSpanName = [3][2]string{
	Read:   {StreamCompute: "read/compute", StreamComm: "read/comm"},
	Write:  {StreamCompute: "write/compute", StreamComm: "write/comm"},
	Update: {StreamCompute: "update/compute", StreamComm: "update/comm"},
}

type idleWaiter struct {
	stream Stream
	all    bool
	fn     sim.Handler
}

// NewController builds a memory system on eng with cfg and policy arb.
func NewController(eng *sim.Engine, cfg Config, arb Arbiter) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if arb == nil {
		return nil, fmt.Errorf("memory: nil arbiter")
	}
	c := &Controller{eng: eng, cfg: cfg, arbiter: arb}
	perChannel := units.Bandwidth(float64(cfg.TotalBandwidth) / float64(cfg.Channels))
	c.channels = make([]*channel, cfg.Channels)
	for i := range c.channels {
		ch := &channel{ctrl: c, id: i, bw: perChannel}
		ch.svcDone = ch.serviceDone // one closure per channel, reused forever
		if cfg.Banks != nil {
			ch.banks = newBankTimer(*cfg.Banks)
		}
		c.channels[i] = ch
	}
	if m := cfg.Metrics; m != nil {
		c.mtrack = m.Track("memory")
		c.mIssues[StreamCompute] = m.Counter("memory.arb.compute_issues")
		c.mIssues[StreamComm] = m.Counter("memory.arb.comm_issues")
		c.mSwitches = m.Counter("memory.arb.stream_switches")
		c.mThreshold = m.Gauge("memory.mca.threshold")
		for i, ch := range c.channels {
			for k := Read; k <= Update; k++ {
				for s := StreamCompute; s < numStreams; s++ {
					ch.mBytes[k][s] = m.Counter(fmt.Sprintf("memory.chan%d.%s.%s_bytes", i, s, k))
				}
			}
			ch.mBusy = m.Counter(fmt.Sprintf("memory.chan%d.busy_ps", i))
		}
	}
	if ck := cfg.Check; ck != nil {
		for i, ch := range c.channels {
			ch.chkServe = ck.NonOverlap(fmt.Sprintf("memory.chan%d.service", i))
			ch.chkDepth = ck.Bound(fmt.Sprintf("memory.chan%d.dramq", i), int64(cfg.QueueDepth))
		}
	}
	return c, nil
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Counters returns the accumulated traffic counters.
func (c *Controller) Counters() *Counters { return &c.counters }

// SetObserver installs the issue observer (nil clears it).
func (c *Controller) SetObserver(o Observer) { c.observer = o }

// Arbiter returns the installed arbitration policy.
func (c *Controller) Arbiter() Arbiter { return c.arbiter }

// Access submits a single request of at most RequestGranularity bytes.
// Requests submitted here are caller-owned (never pooled); the controller
// uses the pointer until service completes but does not recycle it.
func (c *Controller) Access(r *Request) {
	if poolGuard && r.freed {
		panic("memory: access of a freed pooled request (retained past its completion)")
	}
	if r.Bytes <= 0 {
		panic("memory: access with non-positive size")
	}
	if r.Bytes > c.cfg.RequestGranularity {
		panic(fmt.Sprintf("memory: request of %v exceeds granularity %v; use Transfer",
			r.Bytes, c.cfg.RequestGranularity))
	}
	ch := c.channels[c.nextChannel]
	c.nextChannel = (c.nextChannel + 1) % len(c.channels)
	ch.enqueue(r)
}

// Transfer splits a transfer of total bytes into granularity-sized requests
// striped across channels and runs onDone when every request has completed.
// The tag is attached to each request. onDone may be nil.
func (c *Controller) Transfer(kind AccessKind, stream Stream, total units.Bytes, tag Tag, onDone func()) {
	if total <= 0 {
		if onDone != nil {
			onDone()
		}
		return
	}
	c.transfer(kind, stream, total, tag, nil, onDone)
}

// TransferTo is Transfer with a Completion receiver instead of a func()
// callback: cb.Complete(tag) runs when the whole transfer has finished.
// Callers on the hot path use it with a pooled or long-lived receiver so
// that issuing a transfer allocates nothing. cb may be nil.
func (c *Controller) TransferTo(kind AccessKind, stream Stream, total units.Bytes, tag Tag, cb Completion) {
	if total <= 0 {
		if cb != nil {
			cb.Complete(tag)
		}
		return
	}
	c.transfer(kind, stream, total, tag, cb, nil)
}

// transfer issues the granularity-sized pooled requests for one transfer.
// total must be positive; exactly one of cb/fn is the completion (both may
// be nil for fire-and-forget traffic).
func (c *Controller) transfer(kind AccessKind, stream Stream, total units.Bytes, tag Tag, cb Completion, fn func()) {
	g := c.cfg.RequestGranularity
	n := int(units.CeilDiv(int64(total), int64(g)))
	x := c.getXfer(n)
	x.tag, x.cb, x.fn = tag, cb, fn
	if c.mtrack != nil {
		x.track = c.mtrack
		x.name = transferSpanName[kind][stream]
		x.start = c.eng.Now()
	}
	remaining := total
	for i := 0; i < n; i++ {
		sz := g
		if remaining < g {
			sz = remaining
		}
		remaining -= sz
		r := c.getReq()
		r.Kind = kind
		r.Stream = stream
		r.Bytes = sz
		r.Tag = tag
		r.xf = x
		c.Access(r)
	}
}

// RequestsFor returns how many granularity-sized requests a transfer of
// total bytes will produce.
func (c *Controller) RequestsFor(total units.Bytes) int {
	if total <= 0 {
		return 0
	}
	return int(units.CeilDiv(int64(total), int64(c.cfg.RequestGranularity)))
}

// WhenIdle schedules fn to run when the given stream has no queued requests
// anywhere in the controller (the paper drains the communication stream at
// producer kernel boundaries, §4.5). The condition is checked on every
// completion; if already idle, fn runs immediately.
func (c *Controller) WhenIdle(stream Stream, fn sim.Handler) {
	if !c.streamBusy(stream) {
		fn()
		return
	}
	c.idleWaiters = append(c.idleWaiters, idleWaiter{stream: stream, fn: fn})
}

// WhenAllIdle schedules fn for when the entire memory system has drained.
func (c *Controller) WhenAllIdle(fn sim.Handler) {
	if !c.anyBusy() {
		fn()
		return
	}
	c.idleWaiters = append(c.idleWaiters, idleWaiter{all: true, fn: fn})
}

// BeginMonitor starts an MCA intensity-monitoring window (the producer
// kernel's isolated first stage). It is a no-op for non-MCA arbiters.
func (c *Controller) BeginMonitor() {
	if _, ok := c.arbiter.(*MCA); !ok {
		return
	}
	c.monitorActive = true
	for _, ch := range c.channels {
		ch.occSamples = 0
		ch.occSum = 0
	}
}

// EndMonitor closes the monitoring window and installs the measured memory
// intensity into the MCA policy.
func (c *Controller) EndMonitor() {
	mca, ok := c.arbiter.(*MCA)
	if !ok || !c.monitorActive {
		return
	}
	c.monitorActive = false
	var samples, sum int64
	for _, ch := range c.channels {
		samples += ch.occSamples
		sum += ch.occSum
	}
	if samples == 0 {
		mca.SetIntensity(0)
	} else {
		mean := float64(sum) / float64(samples)
		mca.SetIntensity(mean / float64(c.cfg.QueueDepth))
	}
	c.mThreshold.Set(int64(mca.Threshold()))
	c.mtrack.Instant("mca-window-end", c.eng.Now())
}

func (c *Controller) notifyEnqueue(r *Request) {
	if c.observer != nil {
		c.observer.OnIssue(c.eng.Now(), r)
	}
}

func (c *Controller) streamBusy(s Stream) bool {
	for _, ch := range c.channels {
		if ch.inflightByStream[s] > 0 {
			return true
		}
	}
	return false
}

func (c *Controller) anyBusy() bool {
	for _, ch := range c.channels {
		if ch.inFlight() {
			return true
		}
	}
	return false
}

// checkIdle runs pending idle waiters whose condition now holds.
func (c *Controller) checkIdle() {
	if len(c.idleWaiters) == 0 {
		return
	}
	kept := c.idleWaiters[:0]
	var ready []sim.Handler
	for _, w := range c.idleWaiters {
		done := false
		if w.all {
			done = !c.anyBusy()
		} else {
			done = !c.streamBusy(w.stream)
		}
		if done {
			ready = append(ready, w.fn)
		} else {
			kept = append(kept, w)
		}
	}
	c.idleWaiters = kept
	for _, fn := range ready {
		fn()
	}
}
