package memory

import (
	"math/rand"
	"testing"
	"testing/quick"

	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// TestPropertyByteConservation: any batch of transfers across random kinds,
// streams, and sizes is fully serviced — counters account every byte, every
// completion callback runs, and the engine drains.
func TestPropertyByteConservation(t *testing.T) {
	f := func(seed int64, nOpsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nOps := int(nOpsRaw)%40 + 1
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.Channels = 4
		cfg.TotalBandwidth = 64 * units.GBps
		arbs := []Arbiter{&RoundRobin{}, ComputeFirst{}, NewMCA(DefaultMCAConfig())}
		c, err := NewController(eng, cfg, arbs[rng.Intn(len(arbs))])
		if err != nil {
			return false
		}
		var want units.Bytes
		completions := 0
		for i := 0; i < nOps; i++ {
			kind := AccessKind(rng.Intn(3))
			stream := Stream(rng.Intn(2))
			size := units.Bytes(rng.Intn(64*1024) + 1)
			want += size
			c.Transfer(kind, stream, size, Tag{}, func() { completions++ })
		}
		eng.Run()
		return completions == nOps && c.Counters().TotalBytes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyIdleWaitersAlwaysFire: WhenIdle/WhenAllIdle callbacks fire for
// any traffic pattern.
func TestPropertyIdleWaitersAlwaysFire(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.Channels = 2
		cfg.TotalBandwidth = 8 * units.GBps
		c, err := NewController(eng, cfg, NewMCA(DefaultMCAConfig()))
		if err != nil {
			return false
		}
		for i := 0; i < rng.Intn(10)+1; i++ {
			c.Transfer(AccessKind(rng.Intn(3)), Stream(rng.Intn(2)),
				units.Bytes(rng.Intn(8192)+1), Tag{}, nil)
		}
		fired := 0
		c.WhenIdle(StreamCompute, func() { fired++ })
		c.WhenIdle(StreamComm, func() { fired++ })
		c.WhenAllIdle(func() { fired++ })
		eng.Run()
		return fired == 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMCANeverStallsForever: with mixed pending traffic under any
// occupancy threshold, the system always drains (no arbitration deadlock).
func TestPropertyMCANeverStallsForever(t *testing.T) {
	for _, th := range []int{1, 5, 64, -1} {
		mca := NewMCA(DefaultMCAConfig())
		mca.SetThreshold(th)
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.Channels = 1
		cfg.TotalBandwidth = 1 * units.GBps
		cfg.QueueDepth = 4
		c, err := NewController(eng, cfg, mca)
		if err != nil {
			t.Fatal(err)
		}
		done := 0
		for i := 0; i < 50; i++ {
			c.Transfer(Write, StreamComm, 2048, Tag{}, func() { done++ })
		}
		for i := 0; i < 50; i++ {
			c.Transfer(Read, StreamCompute, 2048, Tag{}, func() { done++ })
		}
		eng.Run()
		if done != 100 {
			t.Errorf("threshold %d: %d/100 completed", th, done)
		}
	}
}

// TestPropertyServiceOrderWithinStream: compute-stream requests on a single
// channel complete in submission order under every policy (FIFO per stream).
func TestPropertyServiceOrderWithinStream(t *testing.T) {
	for _, arb := range []Arbiter{&RoundRobin{}, ComputeFirst{}, NewMCA(DefaultMCAConfig())} {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.Channels = 1
		cfg.TotalBandwidth = 1 * units.GBps
		c, err := NewController(eng, cfg, arb)
		if err != nil {
			t.Fatal(err)
		}
		var order []int
		for i := 0; i < 20; i++ {
			i := i
			c.Access(&Request{Kind: Write, Stream: StreamCompute, Bytes: 512,
				OnDone: func() { order = append(order, i) }})
		}
		eng.Run()
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				t.Fatalf("%T: out-of-order completion %v", arb, order)
			}
		}
	}
}

// TestWaitStatistics: queueing delay is zero for an uncontended request and
// grows when a stream is stuck behind a burst.
func TestWaitStatistics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.TotalBandwidth = 1 * units.GBps
	eng := sim.NewEngine()
	c, err := NewController(eng, cfg, ComputeFirst{})
	if err != nil {
		t.Fatal(err)
	}
	// A lone request: no wait.
	c.Access(&Request{Kind: Read, Stream: StreamCompute, Bytes: 1024})
	eng.Run()
	if w := c.Counters().MeanWait(StreamCompute); w != 0 {
		t.Errorf("lone request waited %v, want 0", w)
	}

	// A comm burst behind a long compute queue must accumulate wait.
	eng2 := sim.NewEngine()
	c2, err := NewController(eng2, cfg, ComputeFirst{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		c2.Access(&Request{Kind: Read, Stream: StreamCompute, Bytes: 2048})
	}
	for i := 0; i < 4; i++ {
		c2.Access(&Request{Kind: Write, Stream: StreamComm, Bytes: 2048})
	}
	eng2.Run()
	commWait := c2.Counters().MeanWait(StreamComm)
	computeWait := c2.Counters().MeanWait(StreamCompute)
	if commWait <= computeWait {
		t.Errorf("comm wait %v not above compute wait %v under compute-first", commWait, computeWait)
	}
	if commWait <= 0 {
		t.Error("comm burst accumulated no wait")
	}
}
