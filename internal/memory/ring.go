package memory

// reqRing is a FIFO of requests backed by a power-of-two circular buffer.
// It replaces the earlier slice queues whose dequeue was a copy(q, q[1:])
// shift — O(queue length) per issued request on the hottest loop in the
// simulator. Push and pop here are O(1), and once the buffer has grown to
// the episode's high-water mark the queue allocates nothing.
type reqRing struct {
	buf  []*Request // len(buf) is zero or a power of two
	head int        // index of the oldest element
	n    int        // number of queued elements
}

// len returns the number of queued requests.
func (q *reqRing) len() int { return q.n }

// push appends r at the tail, growing the buffer if full.
func (q *reqRing) push(r *Request) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = r
	q.n++
}

// pop removes and returns the oldest request. It panics on an empty ring,
// mirroring a slice-queue's out-of-range panic.
func (q *reqRing) pop() *Request {
	if q.n == 0 {
		panic("memory: pop from empty ring")
	}
	r := q.buf[q.head]
	q.buf[q.head] = nil // drop the reference for the GC and the pool guard
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return r
}

// grow doubles the buffer, unwrapping the live window to the front.
func (q *reqRing) grow() {
	cap2 := len(q.buf) * 2
	if cap2 == 0 {
		cap2 = 8
	}
	nb := make([]*Request, cap2)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}
