package memory

import (
	"testing"

	"t3sim/internal/sim"
	"t3sim/internal/units"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Channels = 4
	cfg.TotalBandwidth = 4 * units.GBps // 1 GB/s per channel: 1 byte/ns
	cfg.RequestGranularity = 1 * units.KiB
	cfg.QueueDepth = 8
	cfg.ReadLatency = 0
	return cfg
}

func newTestController(t *testing.T, cfg Config, arb Arbiter) (*sim.Engine, *Controller) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := NewController(eng, cfg, arb)
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.TotalBandwidth = 0 },
		func(c *Config) { c.RequestGranularity = 0 },
		func(c *Config) { c.QueueDepth = 0 },
		func(c *Config) { c.ReadLatency = -1 },
		func(c *Config) { c.UpdateFactor = 0.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	eng := sim.NewEngine()
	if _, err := NewController(eng, DefaultConfig(), nil); err == nil {
		t.Error("nil arbiter: expected error")
	}
}

func TestTransferBandwidthAsymptote(t *testing.T) {
	// Moving 4 MiB at 4 GB/s should take ~1.048 ms (4 MiB / 4e9 B/s), within
	// a small tolerance for request rounding.
	eng, c := newTestController(t, testConfig(), ComputeFirst{})
	total := 4 * units.MiB
	var done units.Time
	c.Transfer(Read, StreamCompute, total, Tag{}, func() { done = eng.Now() })
	eng.Run()
	want := (4 * units.GBps).TransferTime(total)
	if done < want || done > want+want/100 {
		t.Errorf("transfer finished at %v, want about %v", done, want)
	}
	if got := c.Counters().KindBytes(Read); got != total {
		t.Errorf("read bytes = %v, want %v", got, total)
	}
}

func TestUpdateFactorSlowsService(t *testing.T) {
	cfg := testConfig()
	engW, cW := newTestController(t, cfg, ComputeFirst{})
	var doneW units.Time
	cW.Transfer(Write, StreamCompute, 1*units.MiB, Tag{}, func() { doneW = engW.Now() })
	engW.Run()

	engU, cU := newTestController(t, cfg, ComputeFirst{})
	var doneU units.Time
	cU.Transfer(Update, StreamCompute, 1*units.MiB, Tag{}, func() { doneU = engU.Now() })
	engU.Run()

	ratio := float64(doneU) / float64(doneW)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("update/write time ratio = %.3f, want about %v", ratio, cfg.UpdateFactor)
	}
}

func TestReadLatencyAddsToCompletion(t *testing.T) {
	cfg := testConfig()
	cfg.ReadLatency = 100 * units.Nanosecond
	eng, c := newTestController(t, cfg, ComputeFirst{})
	var done units.Time
	c.Access(&Request{Kind: Read, Stream: StreamCompute, Bytes: 1024,
		OnDone: func() { done = eng.Now() }})
	eng.Run()
	// 1024 B at 1 B/ns service = 1024 ns + 100 ns latency (+1 for ceil).
	want := units.Time(1024+100) * units.Nanosecond
	if done < want || done > want+units.Nanosecond {
		t.Errorf("read completed at %v, want about %v", done, want)
	}
}

func TestComputeFirstPriority(t *testing.T) {
	// Saturate a single channel with comm, then submit compute: the compute
	// request must overtake all still-queued comm requests.
	cfg := testConfig()
	cfg.Channels = 1
	cfg.TotalBandwidth = 1 * units.GBps
	cfg.QueueDepth = 2
	eng, c := newTestController(t, cfg, ComputeFirst{})

	var order []string
	for i := 0; i < 8; i++ {
		c.Access(&Request{Kind: Read, Stream: StreamComm, Bytes: 1024,
			OnDone: func() { order = append(order, "comm") }})
	}
	var computeDone int
	eng.After(1, func() {
		c.Access(&Request{Kind: Read, Stream: StreamCompute, Bytes: 1024,
			OnDone: func() {
				order = append(order, "compute")
				computeDone = len(order)
			}})
	})
	eng.Run()
	// QueueDepth 2 comm requests were already issued before compute arrived;
	// at most one more is in service. Compute must finish no later than 4th.
	if computeDone == 0 || computeDone > 4 {
		t.Errorf("compute completed at position %d of %v, want <= 4", computeDone, order)
	}
}

func TestRoundRobinAlternates(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 1
	cfg.QueueDepth = 1
	eng, c := newTestController(t, cfg, &RoundRobin{})
	var order []Stream
	submit := func(s Stream) {
		c.Access(&Request{Kind: Read, Stream: s, Bytes: 1024,
			OnDone: func() { order = append(order, s) }})
	}
	for i := 0; i < 3; i++ {
		submit(StreamCompute)
		submit(StreamComm)
	}
	eng.Run()
	if len(order) != 6 {
		t.Fatalf("completed %d, want 6", len(order))
	}
	// With queue depth 1 and both queues loaded the policy must alternate.
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Errorf("round robin did not alternate at %d: %v", i, order)
			break
		}
	}
}

func TestMCAThresholdBlocksComm(t *testing.T) {
	// With an MCA threshold of 0-ish restrictiveness, comm issues only when
	// the DRAM queue has room below the threshold even though compute is idle.
	cfg := testConfig()
	cfg.Channels = 1
	cfg.QueueDepth = 8
	mca := NewMCA(DefaultMCAConfig())
	mca.SetIntensity(0.9) // most restrictive threshold = 5
	if mca.Threshold() != 5 {
		t.Fatalf("threshold = %d, want 5", mca.Threshold())
	}
	eng, c := newTestController(t, cfg, mca)
	issued := 0
	c.SetObserver(ObserverFunc(func(now units.Time, r *Request) {
		if r.Stream == StreamComm {
			issued++
		}
	}))
	for i := 0; i < 20; i++ {
		c.Access(&Request{Kind: Write, Stream: StreamComm, Bytes: 1024})
	}
	// Immediately after submission, at most threshold requests may be in the
	// DRAM queue (issue stops at occupancy 5); one more can issue each time
	// the service stage pops the queue.
	if issued > mca.Threshold()+1 {
		t.Errorf("issued %d comm requests at t=0, want <= %d", issued, mca.Threshold()+1)
	}
	eng.Run()
	if issued != 20 {
		t.Errorf("total issued = %d, want 20 (no request lost)", issued)
	}
}

func TestMCAStarvationBound(t *testing.T) {
	// Keep the compute stream permanently full; comm must still issue within
	// the starvation limit.
	cfg := testConfig()
	cfg.Channels = 1
	cfg.QueueDepth = 4
	mcfg := DefaultMCAConfig()
	mcfg.StarvationLimit = 10 * units.Microsecond
	mca := NewMCA(mcfg)
	mca.SetIntensity(0.9)
	eng, c := newTestController(t, cfg, mca)

	var commIssue units.Time
	c.SetObserver(ObserverFunc(func(now units.Time, r *Request) {
		if r.Stream == StreamComm && commIssue == 0 {
			commIssue = now
		}
	}))
	// Feed compute continuously: each completion enqueues another.
	var feed func()
	remaining := 200
	feed = func() {
		if remaining == 0 {
			return
		}
		remaining--
		c.Access(&Request{Kind: Read, Stream: StreamCompute, Bytes: 1024, OnDone: feed})
	}
	for i := 0; i < 8; i++ {
		feed()
	}
	c.Access(&Request{Kind: Write, Stream: StreamComm, Bytes: 1024})
	eng.Run()
	if commIssue == 0 {
		t.Fatal("comm request never issued")
	}
	if commIssue > mcfg.StarvationLimit+20*units.Microsecond {
		t.Errorf("comm issued at %v, want within starvation bound %v", commIssue, mcfg.StarvationLimit)
	}
}

func TestMCAIntensityMapping(t *testing.T) {
	cases := []struct {
		intensity float64
		want      int
	}{
		{0.9, 5}, {0.7, 5}, {0.5, 10}, {0.3, 10}, {0.2, 30}, {0.1, 30}, {0.01, -1}, {0, -1},
	}
	for _, cse := range cases {
		m := NewMCA(DefaultMCAConfig())
		m.SetIntensity(cse.intensity)
		if m.Threshold() != cse.want {
			t.Errorf("SetIntensity(%v): threshold = %d, want %d", cse.intensity, m.Threshold(), cse.want)
		}
		if !m.Calibrated() {
			t.Errorf("SetIntensity(%v): not calibrated", cse.intensity)
		}
	}
	if NewMCA(MCAConfig{}).Threshold() != 5 {
		t.Error("zero-config MCA should start at the most restrictive threshold")
	}
}

func TestMonitorWindowCalibratesMCA(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 1
	mca := NewMCA(DefaultMCAConfig())
	eng, c := newTestController(t, cfg, mca)
	c.BeginMonitor()
	// A heavy burst keeps DRAM queue occupancy high during the window.
	for i := 0; i < 200; i++ {
		c.Access(&Request{Kind: Read, Stream: StreamCompute, Bytes: 1024})
	}
	eng.Run()
	c.EndMonitor()
	if !mca.Calibrated() {
		t.Fatal("monitor window did not calibrate MCA")
	}
	if mca.Threshold() != 5 && mca.Threshold() != 10 {
		t.Errorf("threshold after heavy window = %d, want restrictive (5 or 10)", mca.Threshold())
	}

	// An idle window maps to the unlimited threshold.
	mca2 := NewMCA(DefaultMCAConfig())
	_, c2 := newTestController(t, cfg, mca2)
	c2.BeginMonitor()
	c2.EndMonitor()
	if mca2.Threshold() != -1 {
		t.Errorf("threshold after idle window = %d, want -1", mca2.Threshold())
	}
}

func TestWhenIdle(t *testing.T) {
	eng, c := newTestController(t, testConfig(), ComputeFirst{})
	var commIdleAt, allIdleAt units.Time
	c.Transfer(Write, StreamComm, 64*units.KiB, Tag{}, nil)
	c.Transfer(Read, StreamCompute, 128*units.KiB, Tag{}, nil)
	c.WhenIdle(StreamComm, func() { commIdleAt = eng.Now() })
	c.WhenAllIdle(func() { allIdleAt = eng.Now() })
	eng.Run()
	if commIdleAt == 0 || allIdleAt == 0 {
		t.Fatalf("idle callbacks did not run: comm=%v all=%v", commIdleAt, allIdleAt)
	}
	if commIdleAt > allIdleAt {
		t.Errorf("comm idle (%v) after all idle (%v)", commIdleAt, allIdleAt)
	}
	// Already-idle controller runs callback immediately.
	ran := false
	c.WhenIdle(StreamComm, func() { ran = true })
	if !ran {
		t.Error("WhenIdle on idle controller should run immediately")
	}
}

func TestCounters(t *testing.T) {
	eng, c := newTestController(t, testConfig(), ComputeFirst{})
	c.Transfer(Read, StreamCompute, 10*units.KiB, Tag{}, nil)
	c.Transfer(Write, StreamComm, 6*units.KiB, Tag{}, nil)
	c.Transfer(Update, StreamComm, 4*units.KiB, Tag{}, nil)
	eng.Run()
	cnt := c.Counters()
	if got := cnt.KindBytes(Read); got != 10*units.KiB {
		t.Errorf("read bytes = %v", got)
	}
	if got := cnt.StreamBytes(StreamComm); got != 10*units.KiB {
		t.Errorf("comm bytes = %v", got)
	}
	if got := cnt.TotalBytes(); got != 20*units.KiB {
		t.Errorf("total bytes = %v", got)
	}
	if cnt.Requests[Read][StreamCompute] != 10 {
		t.Errorf("read requests = %d, want 10", cnt.Requests[Read][StreamCompute])
	}
}

func TestTransferZeroBytesCompletesImmediately(t *testing.T) {
	_, c := newTestController(t, testConfig(), ComputeFirst{})
	ran := false
	c.Transfer(Read, StreamCompute, 0, Tag{}, func() { ran = true })
	if !ran {
		t.Error("zero-byte transfer should complete synchronously")
	}
}

func TestAccessPanics(t *testing.T) {
	_, c := newTestController(t, testConfig(), ComputeFirst{})
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero bytes", func() { c.Access(&Request{Kind: Read, Bytes: 0}) })
	mustPanic("oversized", func() {
		c.Access(&Request{Kind: Read, Bytes: c.Config().RequestGranularity + 1})
	})
}

func TestRequestsFor(t *testing.T) {
	_, c := newTestController(t, testConfig(), ComputeFirst{})
	g := c.Config().RequestGranularity
	cases := []struct {
		in   units.Bytes
		want int
	}{{0, 0}, {1, 1}, {g, 1}, {g + 1, 2}, {10 * g, 10}}
	for _, cse := range cases {
		if got := c.RequestsFor(cse.in); got != cse.want {
			t.Errorf("RequestsFor(%v) = %d, want %d", cse.in, got, cse.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Update.String() != "update" {
		t.Error("AccessKind strings wrong")
	}
	if StreamCompute.String() != "compute" || StreamComm.String() != "comm" {
		t.Error("Stream strings wrong")
	}
	if AccessKind(9).String() == "" || Stream(9).String() == "" {
		t.Error("unknown values should still render")
	}
}
