//go:build race || t3debug

package memory

// Guarded-build tests for the Request retention contract: pooled requests
// are poisoned the moment they are recycled, so an observer that retains one
// past its OnIssue call is detected on the next use rather than silently
// reading another transfer's fields. These run in CI both under -race (the
// regular race job) and under -tags t3debug.

import (
	"testing"

	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// TestRetainedRequestIsPoisoned retains the pooled requests an observer saw
// and checks each is poisoned after its service completed — the retention
// violation is observable, not silent.
func TestRetainedRequestIsPoisoned(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Channels = 2
	cfg.TotalBandwidth = 2 * units.GBps
	cfg.RequestGranularity = 1 * units.KiB
	cfg.QueueDepth = 8
	c, err := NewController(eng, cfg, ComputeFirst{})
	if err != nil {
		t.Fatal(err)
	}
	var retained []*Request
	c.SetObserver(ObserverFunc(func(_ units.Time, r *Request) {
		retained = append(retained, r) // contract violation on purpose
	}))
	c.Transfer(Write, StreamCompute, 8*units.KiB, Tag{WG: 1}, nil)
	eng.Run()

	if len(retained) == 0 {
		t.Fatal("observer saw no requests")
	}
	for i, r := range retained {
		if !poisoned(r) {
			t.Errorf("request %d retained past completion is not poisoned", i)
		}
	}
}

// TestAccessOfFreedRequestPanics pins the enforcement: resubmitting a
// retained pooled request panics instead of corrupting another transfer.
func TestAccessOfFreedRequestPanics(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.TotalBandwidth = 1 * units.GBps
	cfg.RequestGranularity = 1 * units.KiB
	cfg.QueueDepth = 8
	c, err := NewController(eng, cfg, ComputeFirst{})
	if err != nil {
		t.Fatal(err)
	}
	var retained *Request
	c.SetObserver(ObserverFunc(func(_ units.Time, r *Request) {
		retained = r
	}))
	c.Transfer(Write, StreamCompute, 1*units.KiB, Tag{}, nil)
	eng.Run()
	if retained == nil {
		t.Fatal("observer saw no requests")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Access of a freed pooled request did not panic")
		}
	}()
	c.Access(retained)
}
