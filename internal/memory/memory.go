// Package memory models the GPU's local HBM stack at the granularity T3's
// mechanisms operate on. The model is a set of independent channels, each
// with a two-stream memory-controller queue (a compute stream for producer
// kernels and a communication stream for collective/DMA traffic, §4.5 of the
// paper), a finite DRAM command queue whose occupancy the arbitration policy
// observes, and a service stage whose rate gives the stack its aggregate
// bandwidth (Table 1: 1 TB/s HBM2).
//
// Near-memory compute (§4.3) is modeled as an "update" access kind: an
// op-and-store serviced like a write but at the doubled column-command
// spacing (CCDWL = 2×CCDL) the paper takes from memory-vendor PIM proposals.
package memory

import (
	"fmt"

	"t3sim/internal/check"
	"t3sim/internal/metrics"
	"t3sim/internal/units"
)

// AccessKind classifies a DRAM request.
type AccessKind int

// Access kinds.
const (
	Read   AccessKind = iota // data read
	Write                    // plain store
	Update                   // NMC op-and-store (atomic reduce at the bank)
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Update:
		return "update"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// Stream identifies which memory-controller stream a request arrives on.
// The paper's MCA policy arbitrates between exactly these two.
type Stream int

// Streams.
const (
	StreamCompute Stream = iota // producer (GEMM) kernel accesses
	StreamComm                  // collective/DMA accesses
	numStreams
)

// String implements fmt.Stringer.
func (s Stream) String() string {
	switch s {
	case StreamCompute:
		return "compute"
	case StreamComm:
		return "comm"
	default:
		return fmt.Sprintf("Stream(%d)", int(s))
	}
}

// Tag carries the metadata the paper adds to memory accesses so the Tracker
// can attribute them (§4.2.1): the producing workgroup and wavefront, and an
// opaque region identifier assigned by the address-space configuration.
type Tag struct {
	WG     int
	WF     int
	Region int
}

// Request is one memory transaction. Large transfers are split into requests
// of at most Config.RequestGranularity bytes by Controller.Transfer.
//
// Retention contract: requests created internally by Transfer/TransferTo are
// pooled — the controller recycles them the instant their service completes,
// so any code handed a *Request (Observer.OnIssue, metrics, checker hooks)
// must copy the fields it needs and must not hold the pointer past the
// callback. Requests a caller constructs itself and submits via Access are
// caller-owned and never pooled.
type Request struct {
	Kind   AccessKind
	Stream Stream
	Bytes  units.Bytes
	Tag    Tag
	// OnDone, if non-nil, runs when the request finishes service (plus the
	// fixed completion latency for reads).
	OnDone func()

	enqueuedAt units.Time // set by the controller; feeds the wait statistics
	xf         *xfer      // owning transfer; non-nil marks a pooled request
	freed      bool       // pool-guard poison mark (race / t3debug builds)
}

// Config describes an HBM stack.
type Config struct {
	// Channels is the number of independent channels; aggregate bandwidth is
	// split evenly across them.
	Channels int
	// TotalBandwidth is the peak aggregate bandwidth (Table 1: 1 TB/s).
	TotalBandwidth units.Bandwidth
	// RequestGranularity is the largest single DRAM transaction; transfers
	// are chopped into requests of at most this size.
	RequestGranularity units.Bytes
	// QueueDepth is the per-channel DRAM command queue capacity; arbitration
	// thresholds are expressed against its occupancy.
	QueueDepth int
	// ReadLatency is the fixed access latency added to a read's completion
	// (it does not occupy the channel; service is pipelined behind it).
	ReadLatency units.Time
	// UpdateFactor is the service-time multiplier for NMC op-and-store
	// relative to a plain write (CCDWL/CCDL = 2 per the paper). Used by the
	// flat service model only.
	UpdateFactor float64
	// Banks, if non-nil, replaces the flat bytes/bandwidth service model
	// with the bank-group-level timing model (column bursts spaced by
	// CCDL/CCDWL, row reopenings). See BankConfig.
	Banks *BankConfig
	// Metrics, if non-nil, is where the controller registers its
	// observability instruments: per-channel traffic counters
	// ("memory.chan0.comm.read_bytes"), arbitration counters, the MCA
	// threshold gauge, and a "memory" timeline track with one span per
	// Transfer. A nil sink records nothing and costs nothing.
	Metrics metrics.Sink
	// Check, if non-nil, attaches the invariant checker: per-channel service
	// windows must never overlap (the stage is serially reused) and DRAM
	// queue occupancy must never exceed QueueDepth. Like Metrics, a nil
	// checker records nothing and costs nothing.
	Check *check.Checker
}

// DefaultConfig mirrors Table 1 of the paper.
func DefaultConfig() Config {
	return Config{
		Channels:           32,
		TotalBandwidth:     1 * units.TBps,
		RequestGranularity: 2 * units.KiB,
		QueueDepth:         64,
		ReadLatency:        60 * units.Nanosecond,
		UpdateFactor:       2.0,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("memory: Channels = %d, must be positive", c.Channels)
	case c.TotalBandwidth <= 0:
		return fmt.Errorf("memory: TotalBandwidth = %v, must be positive", c.TotalBandwidth)
	case c.RequestGranularity <= 0:
		return fmt.Errorf("memory: RequestGranularity = %v, must be positive", c.RequestGranularity)
	case c.QueueDepth <= 0:
		return fmt.Errorf("memory: QueueDepth = %d, must be positive", c.QueueDepth)
	case c.ReadLatency < 0:
		return fmt.Errorf("memory: ReadLatency = %v, must be non-negative", c.ReadLatency)
	case c.UpdateFactor < 1:
		return fmt.Errorf("memory: UpdateFactor = %v, must be >= 1", c.UpdateFactor)
	}
	if c.Banks != nil {
		if err := c.Banks.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Counters aggregates DRAM traffic by access kind and stream. It backs the
// data-movement results (paper Figures 17 and 18). WaitTime accumulates how
// long requests sat queued before service began — the direct measure of the
// §3.2.2 contention the MCA policy manages.
type Counters struct {
	Bytes    [3][2]units.Bytes // [kind][stream]
	Requests [3][2]int64
	WaitTime [3][2]units.Time
}

func (c *Counters) add(k AccessKind, s Stream, b units.Bytes, wait units.Time) {
	c.Bytes[k][s] += b
	c.Requests[k][s]++
	c.WaitTime[k][s] += wait
}

// MeanWait returns the average queueing delay of one stream's requests.
func (c *Counters) MeanWait(s Stream) units.Time {
	var wait units.Time
	var n int64
	for k := 0; k < 3; k++ {
		wait += c.WaitTime[k][s]
		n += c.Requests[k][s]
	}
	if n == 0 {
		return 0
	}
	return wait / units.Time(n)
}

// TotalBytes returns all bytes moved to or from DRAM.
func (c *Counters) TotalBytes() units.Bytes {
	var t units.Bytes
	for k := range c.Bytes {
		for s := range c.Bytes[k] {
			t += c.Bytes[k][s]
		}
	}
	return t
}

// KindBytes returns bytes moved for one access kind across both streams.
func (c *Counters) KindBytes(k AccessKind) units.Bytes {
	return c.Bytes[k][StreamCompute] + c.Bytes[k][StreamComm]
}

// StreamBytes returns bytes moved on one stream across all kinds.
func (c *Counters) StreamBytes(s Stream) units.Bytes {
	return c.Bytes[Read][s] + c.Bytes[Write][s] + c.Bytes[Update][s]
}
