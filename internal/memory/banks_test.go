package memory

import (
	"testing"

	"t3sim/internal/sim"
	"t3sim/internal/units"
)

func bankedConfig() Config {
	cfg := DefaultConfig()
	cfg.Channels = 1
	cfg.TotalBandwidth = 32 * units.GBps
	banks := DefaultBankConfig()
	cfg.Banks = &banks
	return cfg
}

func TestBankConfigValidate(t *testing.T) {
	if err := DefaultBankConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*BankConfig){
		func(c *BankConfig) { c.Groups = 0 },
		func(c *BankConfig) { c.BanksPerGroup = 0 },
		func(c *BankConfig) { c.Clock = 0 },
		func(c *BankConfig) { c.BurstBytes = 0 },
		func(c *BankConfig) { c.BurstCycles = 0 },
		func(c *BankConfig) { c.CCDLCycles = 0 },
		func(c *BankConfig) { c.CCDWLCycles = 1 }, // below CCDL
		func(c *BankConfig) { c.RowBytes = 0 },
		func(c *BankConfig) { c.RowMissCycles = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultBankConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// An invalid bank config fails the controller config too.
	c := DefaultConfig()
	banks := DefaultBankConfig()
	banks.Groups = 0
	c.Banks = &banks
	if err := c.Validate(); err == nil {
		t.Error("invalid bank config accepted")
	}
}

func TestBankPeakBandwidth(t *testing.T) {
	// 64 B per 2 cycles at 1 GHz = 32 GB/s.
	got := DefaultBankConfig().PeakBandwidth()
	if got < 31.9*units.GBps || got > 32.1*units.GBps {
		t.Errorf("PeakBandwidth = %v, want ~32 GB/s", got)
	}
}

func TestBankedStreamingNearPeak(t *testing.T) {
	// Interleaved streaming reads should sustain close to the data-bus
	// peak: row reopenings hide behind the other banks.
	eng := sim.NewEngine()
	c, err := NewController(eng, bankedConfig(), ComputeFirst{})
	if err != nil {
		t.Fatal(err)
	}
	total := 4 * units.MiB
	var done units.Time
	c.Transfer(Read, StreamCompute, total, Tag{}, func() { done = eng.Now() })
	eng.Run()
	ideal := DefaultBankConfig().PeakBandwidth().TransferTime(total)
	ratio := float64(done) / float64(ideal)
	if ratio < 1.0 || ratio > 1.25 {
		t.Errorf("streaming reads at %.2fx the bus-ideal time, want 1.0..1.25", ratio)
	}
}

func TestBankedUpdatesCheaperThanFlat2x(t *testing.T) {
	// The headline fidelity point: with bursts interleaved across the four
	// bank groups, CCDWL overlaps other groups' bursts and NMC updates cost
	// much less than the flat model's uniform 2x — the paper's claim that
	// NMC ops issue without significant DRAM-timing increase.
	run := func(kind AccessKind) units.Time {
		eng := sim.NewEngine()
		c, err := NewController(eng, bankedConfig(), ComputeFirst{})
		if err != nil {
			t.Fatal(err)
		}
		var done units.Time
		c.Transfer(kind, StreamCompute, 4*units.MiB, Tag{}, func() { done = eng.Now() })
		eng.Run()
		return done
	}
	write := run(Write)
	update := run(Update)
	ratio := float64(update) / float64(write)
	if ratio < 1.0 || ratio > 1.3 {
		t.Errorf("banked update/write = %.2fx, want 1.0..1.3 (interleaving hides CCDWL)", ratio)
	}
}

func TestBankedRowMissesCostSomething(t *testing.T) {
	// Shrinking the row buffer to one burst forces a reopen per access and
	// must slow the stream.
	run := func(rowBytes units.Bytes) units.Time {
		cfg := bankedConfig()
		banks := DefaultBankConfig()
		banks.RowBytes = rowBytes
		banks.BanksPerGroup = 1 // few banks: reopens cannot hide
		cfg.Banks = &banks
		eng := sim.NewEngine()
		c, err := NewController(eng, cfg, ComputeFirst{})
		if err != nil {
			t.Fatal(err)
		}
		var done units.Time
		c.Transfer(Read, StreamCompute, 256*units.KiB, Tag{}, func() { done = eng.Now() })
		eng.Run()
		return done
	}
	bigRows := run(DefaultBankConfig().RowBytes)
	tinyRows := run(64)
	if tinyRows <= bigRows {
		t.Errorf("per-burst row reopens (%v) not slower than streaming rows (%v)", tinyRows, bigRows)
	}
}

func TestBankedFlatAgreeOnStreaming(t *testing.T) {
	// The flat model was calibrated to the same peak; plain streaming loads
	// land within ~25% between the two models.
	flat := DefaultConfig()
	flat.Channels = 1
	flat.TotalBandwidth = 32 * units.GBps
	engF := sim.NewEngine()
	cF, err := NewController(engF, flat, ComputeFirst{})
	if err != nil {
		t.Fatal(err)
	}
	var doneF units.Time
	cF.Transfer(Read, StreamCompute, 4*units.MiB, Tag{}, func() { doneF = engF.Now() })
	engF.Run()

	engB := sim.NewEngine()
	cB, err := NewController(engB, bankedConfig(), ComputeFirst{})
	if err != nil {
		t.Fatal(err)
	}
	var doneB units.Time
	cB.Transfer(Read, StreamCompute, 4*units.MiB, Tag{}, func() { doneB = engB.Now() })
	engB.Run()

	ratio := float64(doneB) / float64(doneF)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("banked/flat streaming ratio = %.2f, want 0.8..1.25", ratio)
	}
}
