package memory

import (
	"math/rand"
	"testing"

	"t3sim/internal/units"
)

// sliceQueue is the reference model: the pre-ring FIFO, a plain slice with
// shift-dequeue. The property test drives it and reqRing with the same
// operation sequence and demands operation-for-operation equivalence.
type sliceQueue struct {
	q []*Request
}

func (s *sliceQueue) len() int { return len(s.q) }

func (s *sliceQueue) push(r *Request) { s.q = append(s.q, r) }

func (s *sliceQueue) pop() *Request {
	r := s.q[0]
	copy(s.q, s.q[1:])
	s.q = s.q[:len(s.q)-1]
	return r
}

// TestPropertyRingEquivalentToSliceQueue drives randomized push/pop
// sequences through the ring and the slice model: every pop must return the
// same request, and the lengths must agree after every operation. The
// sequences are long enough to force repeated growth, wraparound, and
// drain-to-empty episodes.
func TestPropertyRingEquivalentToSliceQueue(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var ring reqRing
		var ref sliceQueue
		// A pool of distinct identities so pointer equality is meaningful.
		reqs := make([]*Request, 64)
		for i := range reqs {
			reqs[i] = &Request{Bytes: units.Bytes(i + 1)}
		}
		// Phases with different push/pop bias exercise growth (push-heavy),
		// wraparound (balanced), and drain (pop-heavy).
		for phase, pushBias := range []int{8, 5, 2} {
			for op := 0; op < 4000; op++ {
				if ring.len() != ref.len() {
					t.Fatalf("seed %d phase %d op %d: len %d != reference %d",
						seed, phase, op, ring.len(), ref.len())
				}
				if rng.Intn(10) < pushBias || ref.len() == 0 {
					r := reqs[rng.Intn(len(reqs))]
					ring.push(r)
					ref.push(r)
				} else {
					got, want := ring.pop(), ref.pop()
					if got != want {
						t.Fatalf("seed %d phase %d op %d: pop %p, reference %p",
							seed, phase, op, got, want)
					}
				}
			}
		}
		// Drain both completely: the tails must agree too.
		for ref.len() > 0 {
			if got, want := ring.pop(), ref.pop(); got != want {
				t.Fatalf("seed %d drain: pop %p, reference %p", seed, got, want)
			}
		}
		if ring.len() != 0 {
			t.Fatalf("seed %d: ring holds %d after reference drained", seed, ring.len())
		}
	}
}

// TestRingPopEmptyPanics pins the contract pop shares with the old slice
// queue: dequeueing from empty is a programming error, not a nil.
func TestRingPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pop from empty ring did not panic")
		}
	}()
	var ring reqRing
	ring.pop()
}

// TestRingGrowUnwraps forces growth while the live window wraps the buffer
// edge and checks FIFO order survives the copy.
func TestRingGrowUnwraps(t *testing.T) {
	var ring reqRing
	reqs := make([]*Request, 64)
	for i := range reqs {
		reqs[i] = &Request{}
	}
	// Advance head so the window wraps, then grow under load.
	for i := 0; i < 6; i++ {
		ring.push(reqs[i])
	}
	for i := 0; i < 6; i++ {
		if ring.pop() != reqs[i] {
			t.Fatal("warmup order broken")
		}
	}
	for i := 0; i < len(reqs); i++ { // forces multiple doublings past head
		ring.push(reqs[i])
	}
	for i := 0; i < len(reqs); i++ {
		if got := ring.pop(); got != reqs[i] {
			t.Fatalf("after grow: pop %d out of order", i)
		}
	}
}
