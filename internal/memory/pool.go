package memory

import (
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// Completion receives a transfer's completion together with the transfer's
// tag. It is the allocation-free alternative to Transfer's func() callback:
// a caller that serves many transfers implements Complete once on a pooled
// or long-lived receiver and recovers per-transfer context from the tag,
// instead of capturing it in a fresh closure per call.
type Completion interface {
	Complete(tag Tag)
}

// xfer is the pooled per-Transfer state: the fence counting outstanding
// requests and the completion to deliver when it drains. The fence and its
// onDone closure are allocated once per xfer object and rearmed with
// Fence.Reset on reuse, so a steady-state transfer costs zero allocations.
type xfer struct {
	ctrl  *Controller
	fence *sim.Fence
	tag   Tag
	cb    Completion
	fn    func()

	// Metrics span state, captured at issue when a track is attached.
	track *metrics.Track
	name  string
	start units.Time
}

// finish runs when the transfer's last request completes. It records the
// metrics span, delivers the completion, and only then returns the xfer to
// the pool — releasing before the callback would let a nested Transfer
// started by the callback rearm this fence while its Done is still
// unwinding.
func (x *xfer) finish() {
	if x.track != nil {
		x.track.Span(x.name, x.start, x.ctrl.eng.Now())
		x.track = nil
	}
	cb, fn, tag := x.cb, x.fn, x.tag
	x.cb, x.fn = nil, nil
	if cb != nil {
		cb.Complete(tag)
	} else if fn != nil {
		fn()
	}
	x.ctrl.xfFree = append(x.ctrl.xfFree, x)
}

// getXfer returns a transfer record with its fence armed for n completions,
// reusing a pooled one when available. n must be positive.
func (c *Controller) getXfer(n int) *xfer {
	if ln := len(c.xfFree); ln > 0 {
		x := c.xfFree[ln-1]
		c.xfFree[ln-1] = nil
		c.xfFree = c.xfFree[:ln-1]
		x.fence.Reset(n)
		return x
	}
	x := &xfer{ctrl: c}
	x.fence = sim.NewFence(n, x.finish)
	return x
}

// getReq returns a zeroed pooled request. Requests obtained here are owned
// by the controller: they are recycled the moment their service completes,
// so observers and instruments must copy what they need (see Observer).
func (c *Controller) getReq() *Request {
	if n := len(c.reqFree); n > 0 {
		r := c.reqFree[n-1]
		c.reqFree[n-1] = nil
		c.reqFree = c.reqFree[:n-1]
		if poolGuard {
			unpoisonRequest(r)
		}
		return r
	}
	return &Request{}
}

// putReq recycles a pooled request. In guarded builds (-race or -tags
// t3debug) the request is poisoned so that a retained pointer is detected on
// its next use instead of silently reading recycled fields.
func (c *Controller) putReq(r *Request) {
	r.OnDone = nil
	r.xf = nil
	if poolGuard {
		poisonRequest(r)
	}
	c.reqFree = append(c.reqFree, r)
}
