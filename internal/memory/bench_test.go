package memory

import (
	"testing"

	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// burstController builds a small controller plus a burst function that
// enqueues one mixed read/write/update burst on both streams and services it
// to completion — the transaction hot path end to end.
func burstController() (*sim.Engine, *Controller, func(), error) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Channels = 4
	cfg.TotalBandwidth = 4 * units.GBps
	cfg.RequestGranularity = 1 * units.KiB
	cfg.QueueDepth = 8
	c, err := NewController(eng, cfg, &RoundRobin{})
	if err != nil {
		return nil, nil, nil, err
	}
	burst := func() {
		c.Transfer(Read, StreamCompute, 32*units.KiB, Tag{WG: 1}, nil)
		c.Transfer(Update, StreamComm, 32*units.KiB, Tag{WG: 2}, nil)
		c.Transfer(Write, StreamCompute, 16*units.KiB, Tag{WG: 3}, nil)
		eng.Run()
	}
	return eng, c, burst, nil
}

// BenchmarkChannelEnqueueService measures one serviced burst through the
// request pools and ring queues: enqueue, arbitrate, per-channel service,
// fence completion. The interesting number is allocs/op, which must be zero
// in steady state.
func BenchmarkChannelEnqueueService(b *testing.B) {
	_, _, burst, err := burstController()
	if err != nil {
		b.Fatal(err)
	}
	burst() // warm the pools and ring buffers to the burst's high-water mark
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		burst()
	}
}

// TestTransferSteadyStateAllocFree pins the tentpole guarantee: once pools
// and rings have reached a burst's high-water mark, servicing further bursts
// allocates nothing — not per transfer, not per request, not per completion.
func TestTransferSteadyStateAllocFree(t *testing.T) {
	_, _, burst, err := burstController()
	if err != nil {
		t.Fatal(err)
	}
	burst() // reach steady state
	if avg := testing.AllocsPerRun(50, burst); avg != 0 {
		t.Fatalf("steady-state burst allocates %.1f objects, want 0", avg)
	}
}

// TestTransferToSteadyStateAllocFree pins the same property for the
// Completion-receiver path the fused runner uses, including read-latency
// fence delivery.
func TestTransferToSteadyStateAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Channels = 2
	cfg.TotalBandwidth = 2 * units.GBps
	cfg.RequestGranularity = 1 * units.KiB
	cfg.QueueDepth = 8
	cfg.ReadLatency = 100 * units.Nanosecond
	c, err := NewController(eng, cfg, ComputeFirst{})
	if err != nil {
		t.Fatal(err)
	}
	done := &countCompletion{}
	burst := func() {
		c.TransferTo(Read, StreamComm, 8*units.KiB, Tag{WG: 7, WF: 3}, done)
		eng.Run()
	}
	burst()
	if avg := testing.AllocsPerRun(50, burst); avg != 0 {
		t.Fatalf("steady-state TransferTo burst allocates %.1f objects, want 0", avg)
	}
	if done.n != 52 {
		t.Fatalf("completions = %d, want 52", done.n)
	}
}

type countCompletion struct{ n int }

func (c *countCompletion) Complete(Tag) { c.n++ }
