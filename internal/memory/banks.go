package memory

import (
	"fmt"

	"t3sim/internal/units"
)

// BankConfig enables the bank-group-level DRAM timing model the paper's
// Table 1 specifies (HBM2 at 1 GHz, 4 bank groups, CCDWL = 2×CCDL for NMC
// op-and-store, remaining timings after Chatterjee et al.). When attached
// to a Config, each request's service time is derived from its column
// commands — burst transfers spaced by the bank-group column-to-column
// constraints — instead of the flat bytes/bandwidth model.
//
// The detailed model captures an effect the flat model over-approximates:
// back-to-back NMC updates pay CCDWL only within one bank group, so a
// stream interleaved across all four groups sustains nearly full write
// bandwidth (the paper's §5.1.1 premise that NMC ops issue "without a
// significant increase in DRAM timings"), while the flat model charges
// every update 2× service.
type BankConfig struct {
	// Groups is the bank-group count (Table 1: 4).
	Groups int
	// BanksPerGroup is the banks within one group (HBM2: 4).
	BanksPerGroup int
	// Clock is the DRAM command clock (Table 1: 1 GHz).
	Clock units.Frequency
	// BurstBytes is one column command's data (HBM2 pseudo-channel: 64 B).
	BurstBytes units.Bytes
	// BurstCycles is the data-bus occupancy of one burst (BL4 DDR: 2).
	BurstCycles int
	// CCDLCycles is the same-group column-to-column spacing (4).
	CCDLCycles int
	// CCDSCycles is the cross-group spacing (2).
	CCDSCycles int
	// CCDWLCycles is the same-group spacing after an NMC op-and-store
	// (2×CCDL per the paper).
	CCDWLCycles int
	// RowBytes is the row-buffer size; streaming past it reopens a row.
	RowBytes units.Bytes
	// RowMissCycles is the activate+precharge penalty on a row reopen
	// (hidden when other banks keep the bus busy).
	RowMissCycles int
}

// DefaultBankConfig mirrors Table 1's HBM2 row.
func DefaultBankConfig() BankConfig {
	return BankConfig{
		Groups:        4,
		BanksPerGroup: 4,
		Clock:         1 * units.GHz,
		BurstBytes:    64,
		BurstCycles:   2,
		CCDLCycles:    4,
		CCDSCycles:    2,
		CCDWLCycles:   8,
		RowBytes:      1024,
		RowMissCycles: 14,
	}
}

// Validate reports whether the configuration is usable.
func (c BankConfig) Validate() error {
	switch {
	case c.Groups <= 0 || c.BanksPerGroup <= 0:
		return fmt.Errorf("memory: bank geometry %dx%d", c.Groups, c.BanksPerGroup)
	case c.Clock <= 0:
		return fmt.Errorf("memory: bank clock %v", c.Clock)
	case c.BurstBytes <= 0 || c.BurstCycles <= 0:
		return fmt.Errorf("memory: burst %v/%d", c.BurstBytes, c.BurstCycles)
	case c.CCDLCycles <= 0 || c.CCDSCycles <= 0 || c.CCDWLCycles < c.CCDLCycles:
		return fmt.Errorf("memory: CCD timings %d/%d/%d", c.CCDLCycles, c.CCDSCycles, c.CCDWLCycles)
	case c.RowBytes <= 0 || c.RowMissCycles < 0:
		return fmt.Errorf("memory: row model %v/%d", c.RowBytes, c.RowMissCycles)
	}
	return nil
}

// PeakBandwidth returns the channel's data-bus limit under this timing.
func (c BankConfig) PeakBandwidth() units.Bandwidth {
	bytesPerSecond := float64(c.BurstBytes) * float64(c.Clock) / float64(c.BurstCycles)
	return units.Bandwidth(bytesPerSecond)
}

// bankTimer tracks one channel's bank-group state across requests. The
// channel still serializes request service; the timer computes how long a
// request's column commands occupy the channel given CCD spacing, row
// reopenings, and the lingering CCDWL after update bursts.
type bankTimer struct {
	cfg    BankConfig
	period units.Time

	// groupNextCol is when each group may accept its next column command.
	groupNextCol []units.Time
	// bankReady is when each bank (group-major) finishes its current row
	// activity.
	bankReady []units.Time
	// bankRowLeft is how many bytes remain in each bank's open row.
	bankRowLeft []units.Bytes
	// cursor round-robins column commands across banks, modeling the
	// controller's address interleaving.
	cursor int
}

func newBankTimer(cfg BankConfig) *bankTimer {
	n := cfg.Groups * cfg.BanksPerGroup
	return &bankTimer{
		cfg:          cfg,
		period:       cfg.Clock.Period(),
		groupNextCol: make([]units.Time, cfg.Groups),
		bankReady:    make([]units.Time, n),
		bankRowLeft:  make([]units.Bytes, n),
	}
}

// cycles converts a cycle count to time.
func (b *bankTimer) cycles(n int) units.Time { return units.Time(n) * b.period }

// service plays out the request's column commands starting no earlier than
// `start` and returns when its last burst finishes.
func (b *bankTimer) service(start units.Time, r *Request) units.Time {
	cfg := b.cfg
	bursts := int(units.CeilDiv(int64(r.Bytes), int64(cfg.BurstBytes)))
	busFree := start
	end := start
	for i := 0; i < bursts; i++ {
		// Group-major interleaving: consecutive column commands rotate
		// across bank groups so CCDL/CCDWL spacing overlaps other groups'
		// bursts — the reason bank groups exist.
		group := b.cursor % cfg.Groups
		bankInGroup := (b.cursor / cfg.Groups) % cfg.BanksPerGroup
		bank := group*cfg.BanksPerGroup + bankInGroup
		b.cursor = (b.cursor + 1) % len(b.bankReady)

		issue := maxT(busFree, b.groupNextCol[group], b.bankReady[bank])
		// Row management: reopen when the open row is exhausted.
		if b.bankRowLeft[bank] < cfg.BurstBytes {
			// The activate can start as soon as the bank is free; it only
			// delays the burst if the bank was touched too recently.
			rowReady := b.bankReady[bank] + b.cycles(cfg.RowMissCycles)
			issue = maxT(issue, rowReady)
			b.bankRowLeft[bank] = cfg.RowBytes
		}
		b.bankRowLeft[bank] -= cfg.BurstBytes

		done := issue + b.cycles(cfg.BurstCycles)
		busFree = done
		b.bankReady[bank] = done

		// Column-to-column spacing for this group: CCDWL after an NMC
		// op-and-store, CCDL otherwise; other groups only respect CCDS,
		// modeled by the bus/burst pacing plus their own group clocks.
		gap := cfg.CCDLCycles
		if r.Kind == Update {
			gap = cfg.CCDWLCycles
		}
		if gap < cfg.CCDSCycles {
			gap = cfg.CCDSCycles
		}
		b.groupNextCol[group] = issue + b.cycles(gap)
		if done > end {
			end = done
		}
	}
	return end
}

func maxT(ts ...units.Time) units.Time {
	m := ts[0]
	for _, t := range ts[1:] {
		if t > m {
			m = t
		}
	}
	return m
}
