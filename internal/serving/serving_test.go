package serving

import (
	"reflect"
	"testing"

	"t3sim/internal/check"
	"t3sim/internal/metrics"
	"t3sim/internal/units"
)

// linCost is a transparent synthetic cost model: prefill linear in prompt
// tokens, decode affine in batch size. Tests can predict every step time.
type linCost struct {
	perPromptTok units.Time
	decodeBase   units.Time
	perSeq       units.Time
}

func (c linCost) Prefill(p int) units.Time    { return c.perPromptTok * units.Time(p) }
func (c linCost) DecodeStep(b int) units.Time { return c.decodeBase + c.perSeq*units.Time(b) }

func testCost() linCost {
	return linCost{
		perPromptTok: 10 * units.Microsecond,
		decodeBase:   100 * units.Microsecond,
		perSeq:       10 * units.Microsecond,
	}
}

func oneTenant() []Tenant {
	return []Tenant{{Name: "chat", PromptMin: 64, PromptMax: 512, OutputMin: 16, OutputMax: 128, Weight: 1}}
}

func TestSingleRequestLifecycle(t *testing.T) {
	cost := testCost()
	ck := check.NewStrict()
	res, err := Run(Config{
		Tenants:  oneTenant(),
		Trace:    []Request{{Tenant: 0, Prompt: 10, Output: 3, Arrive: 5 * units.Millisecond}},
		MaxBatch: 4,
		Cost:     cost,
		Checker:  ck,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != 1 || res.Completed != 1 || res.QueuedAtEnd != 0 || res.ActiveAtEnd != 0 {
		t.Fatalf("counts = %+v", res)
	}
	// Prefill starts immediately (idle server), first token after the prefill
	// step, then two decode steps of batch 1.
	wantFirst := 5*units.Millisecond + cost.Prefill(10)
	wantDone := wantFirst + 2*cost.DecodeStep(1)
	if res.Overall.TTFTp50 != cost.Prefill(10) {
		t.Errorf("TTFT = %v, want %v", res.Overall.TTFTp50, cost.Prefill(10))
	}
	if res.End != wantDone {
		t.Errorf("End = %v, want %v", res.End, wantDone)
	}
	if res.Overall.TPOTp50 != cost.DecodeStep(1) {
		t.Errorf("TPOT = %v, want %v", res.Overall.TPOTp50, cost.DecodeStep(1))
	}
	if res.Steps != 3 || res.Prefills != 1 || res.DecodeTokens != 2 {
		t.Errorf("steps/prefills/decode = %d/%d/%d, want 3/1/2", res.Steps, res.Prefills, res.DecodeTokens)
	}
}

// TestPrefillDecodeInterleave pins the continuous-batching step semantics: a
// request arriving mid-step waits for the step boundary, and its prefill step
// also advances the already-running sequence by one decode token.
func TestPrefillDecodeInterleave(t *testing.T) {
	cost := testCost()
	trace := []Request{
		{Tenant: 0, Prompt: 10, Output: 3, Arrive: 0},
		{Tenant: 0, Prompt: 20, Output: 2, Arrive: 10 * units.Microsecond}, // inside A's prefill
	}
	s, err := New(Config{Tenants: oneTenant(), Trace: trace, MaxBatch: 4, Cost: cost, Checker: check.NewStrict()})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Completed != 2 {
		t.Fatalf("completed = %d, want 2", res.Completed)
	}
	var a, b *Request
	for _, r := range s.completed {
		if r.ID == 0 {
			a = r
		} else {
			b = r
		}
	}
	// A prefills over [0, 100us).
	if a.PrefillStart != 0 || a.FirstToken != cost.Prefill(10) {
		t.Fatalf("A milestones = %+v", *a)
	}
	// B is admitted at the first step boundary; that step runs B's prefill
	// plus a decode for A (batch of 1 already active).
	step2 := cost.Prefill(20) + cost.DecodeStep(1)
	if b.PrefillStart != a.FirstToken {
		t.Errorf("B admitted at %v, want %v", b.PrefillStart, a.FirstToken)
	}
	if b.FirstToken != a.FirstToken+step2 {
		t.Errorf("B first token at %v, want %v", b.FirstToken, a.FirstToken+step2)
	}
	// Step 3 decodes both (A's third token, B's second): both finish there.
	done := a.FirstToken + step2 + cost.DecodeStep(2)
	if a.Done != done || b.Done != done {
		t.Errorf("done = %v/%v, want %v", a.Done, b.Done, done)
	}
}

func TestPoissonModeConservationAndChecker(t *testing.T) {
	ck := check.New()
	reg := metrics.NewRegistry()
	res, err := Run(Config{
		Tenants:  oneTenant(),
		QPS:      200,
		Horizon:  500 * units.Millisecond,
		MaxBatch: 8,
		Seed:     7,
		Cost:     testCost(),
		Checker:  ck,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Arrived == 0 {
		t.Fatal("no arrivals over a 500ms horizon at 200 QPS")
	}
	if res.Arrived != res.Completed+res.QueuedAtEnd+res.ActiveAtEnd {
		t.Fatalf("conservation: %d != %d+%d+%d", res.Arrived, res.Completed, res.QueuedAtEnd, res.ActiveAtEnd)
	}
	if got := reg.CounterValue("serve/arrived"); got != int64(res.Arrived) {
		t.Errorf("arrived counter = %d, want %d", got, res.Arrived)
	}
	if got := reg.GaugeValue("serve/batch_max"); got < 1 || got > 8 {
		t.Errorf("batch_max gauge = %d, want in [1,8]", got)
	}
	if res.Overall.N != res.Completed {
		t.Errorf("Overall.N = %d, want %d", res.Overall.N, res.Completed)
	}
}

func TestDrainCompletesEverything(t *testing.T) {
	res, err := Run(Config{
		Tenants:     oneTenant(),
		QPS:         500,
		NumRequests: 300,
		MaxBatch:    8,
		Seed:        3,
		Cost:        testCost(),
		Checker:     check.NewStrict(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != 300 || res.Completed != 300 || res.QueuedAtEnd != 0 || res.ActiveAtEnd != 0 {
		t.Fatalf("drain left work behind: %+v", res)
	}
	if res.Throughput <= 0 {
		t.Error("zero throughput")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{
		Tenants: []Tenant{
			{Name: "chat", PromptMin: 64, PromptMax: 512, OutputMin: 16, OutputMax: 128, Weight: 3},
			{Name: "batch", PromptMin: 256, PromptMax: 1024, OutputMin: 64, OutputMax: 256, Weight: 1},
		},
		QPS:         150,
		NumRequests: 200,
		MaxBatch:    16,
		Seed:        42,
		Cost:        testCost(),
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestMultiTenantSplit(t *testing.T) {
	cfg := Config{
		Tenants: []Tenant{
			{Name: "heavy", PromptMin: 256, PromptMax: 1024, OutputMin: 64, OutputMax: 256, Weight: 1},
			{Name: "light", PromptMin: 32, PromptMax: 128, OutputMin: 4, OutputMax: 16, Weight: 3},
		},
		QPS:         100,
		NumRequests: 400,
		MaxBatch:    16,
		Seed:        1,
		Cost:        testCost(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTenant) != 2 {
		t.Fatalf("PerTenant = %d entries", len(res.PerTenant))
	}
	if res.PerTenant[0].N+res.PerTenant[1].N != res.Completed {
		t.Fatalf("tenant split %d+%d != %d", res.PerTenant[0].N, res.PerTenant[1].N, res.Completed)
	}
	// Weight 3:1 — the light tenant should dominate (loose 2:1 bound).
	if res.PerTenant[1].N < 2*res.PerTenant[0].N {
		t.Errorf("weights ignored: heavy %d vs light %d", res.PerTenant[0].N, res.PerTenant[1].N)
	}
	// The heavy tenant's E2E should exceed the light one's (longer outputs).
	if res.PerTenant[0].E2Ep50 <= res.PerTenant[1].E2Ep50 {
		t.Errorf("heavy p50 E2E %v <= light %v", res.PerTenant[0].E2Ep50, res.PerTenant[1].E2Ep50)
	}
}

func TestConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{Tenants: oneTenant(), QPS: 10, Horizon: units.Second, MaxBatch: 4, Cost: testCost()}
	}
	good := base()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Cost = nil },
		func(c *Config) { c.MaxBatch = 0 },
		func(c *Config) { c.Tenants = nil },
		func(c *Config) { c.Tenants[0].PromptMin = 0 },
		func(c *Config) { c.Tenants[0].OutputMax = c.Tenants[0].OutputMin - 1 },
		func(c *Config) { c.Tenants[0].Weight = 0 },
		func(c *Config) { c.QPS = 0 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.MaxPrefillsPerStep = -1 },
		func(c *Config) { c.Trace = []Request{{Tenant: 5, Prompt: 1, Output: 1}} },
		func(c *Config) {
			c.Trace = []Request{{Tenant: 0, Prompt: 1, Output: 1, Arrive: 5}, {Tenant: 0, Prompt: 1, Output: 1, Arrive: 2}}
		},
	}
	for i, mutate := range bad {
		c := base()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestQPSRescalesWithoutResampling pins the per-request substream property:
// the same seed yields the same request population (tenants, lengths) at any
// QPS — only arrival times change.
func TestQPSRescalesWithoutResampling(t *testing.T) {
	shape := func(qps float64) map[int][3]int {
		cfg := Config{
			Tenants: []Tenant{
				{Name: "a", PromptMin: 64, PromptMax: 512, OutputMin: 16, OutputMax: 64, Weight: 1},
				{Name: "b", PromptMin: 16, PromptMax: 64, OutputMin: 2, OutputMax: 8, Weight: 1},
			},
			QPS: qps, NumRequests: 100, MaxBatch: 8, Seed: 99, Cost: testCost(),
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		out := map[int][3]int{}
		for _, r := range s.completed {
			out[r.ID] = [3]int{r.Tenant, r.Prompt, r.Output}
		}
		return out
	}
	if a, b := shape(10), shape(1000); !reflect.DeepEqual(a, b) {
		t.Fatal("changing QPS resampled the request population")
	}
}
