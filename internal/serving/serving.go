// Package serving is the open-loop request-level inference-serving simulator:
// the deployment layer above the iteration-level models, answering the
// question the paper never asks — how much serving capacity does fine-grained
// compute/collective overlap buy at a fixed latency SLO?
//
// Requests arrive via a deterministic Poisson process at a configured
// aggregate QPS (or from an explicit trace), each drawn from one of several
// tenant streams with its own prompt/output-length distribution. A
// continuous-batching scheduler admits them FIFO into a shared decode batch
// with prefill/decode interleave; a CostModel — typically built from
// internal/transformer iteration costs with or without T3's fused overlap —
// prices each step. Per-request TTFT, TPOT and end-to-end latency feed
// percentile summaries (internal/stats) and per-tenant timeline tracks
// (internal/metrics); internal/check witnesses request conservation,
// milestone ordering and the batch-occupancy bound.
//
// Determinism: every stochastic draw for request i comes from a private
// rng.Rand seeded by Mix(Seed, i), so the sampled workload is byte-identical
// at any worker count, and changing the offered QPS only rescales arrival
// times — tenant choice and lengths never resample, which is what makes TTFT
// comparisons across a QPS ladder meaningful (and monotone, see the property
// tests). The simulation itself runs on one private sim.Engine.
//
// Allocation: the arrival/admission hot path is allocation-free in steady
// state — request records come from a freelist, the waiting queue is a
// growable ring, the batch is compacted in place, and the arrival/step
// handlers are prebound closures (guarded by TestSteadyStateAllocFree).
package serving

import (
	"fmt"
	"sort"

	"t3sim/internal/check"
	"t3sim/internal/metrics"
	"t3sim/internal/rng"
	"t3sim/internal/sim"
	"t3sim/internal/stats"
	"t3sim/internal/units"
)

// CostModel prices the two step types of continuous batching. Durations must
// be positive.
type CostModel interface {
	// Prefill returns the time to process one request's full prompt.
	Prefill(promptTokens int) units.Time
	// DecodeStep returns the time for one decode iteration generating one
	// token for each of batch sequences.
	DecodeStep(batch int) units.Time
}

// Tenant is one request stream: a workload class with its own length
// distributions and a relative share of the aggregate arrival rate.
type Tenant struct {
	Name string
	// Prompt lengths are log-uniform in [PromptMin, PromptMax].
	PromptMin, PromptMax int
	// Output lengths are log-uniform in [OutputMin, OutputMax].
	OutputMin, OutputMax int
	// Weight is the tenant's relative share of arrivals (need not sum to 1).
	Weight float64
}

// Request is one inference request's full lifecycle record.
type Request struct {
	ID     int
	Tenant int // index into Config.Tenants
	Prompt int // prompt tokens
	Output int // output tokens to generate (>= 1; the first comes from prefill)

	Arrive       units.Time
	PrefillStart units.Time
	FirstToken   units.Time
	Done         units.Time

	tokensOut int // generation progress
}

// TTFT returns the time-to-first-token: admission wait plus prefill.
func (r *Request) TTFT() units.Time { return r.FirstToken - r.Arrive }

// E2E returns the end-to-end latency.
func (r *Request) E2E() units.Time { return r.Done - r.Arrive }

// TPOT returns the time-per-output-token over the decode phase, and false
// for single-token requests (which have no decode phase).
func (r *Request) TPOT() (units.Time, bool) {
	if r.Output <= 1 {
		return 0, false
	}
	return (r.Done - r.FirstToken) / units.Time(r.Output-1), true
}

// Config parameterizes one serving run.
type Config struct {
	Tenants []Tenant
	// QPS is the aggregate offered load in requests per second (all tenants
	// combined). Ignored when Trace is set.
	QPS float64
	// NumRequests, when positive, samples exactly this many arrivals and
	// drains them all: the same request population is replayed at every QPS,
	// which is the mode the sweep experiments and the monotonicity property
	// tests use. When zero, arrivals are generated while they fall inside
	// [0, Horizon) — the truncated open-loop mode.
	NumRequests int
	// Horizon bounds arrival times in the NumRequests==0 mode. Unless Drain
	// is set, no new step starts at or after Horizon either (requests still
	// waiting then are reported as queued).
	Horizon units.Time
	// Drain keeps the scheduler stepping past Horizon until every admitted
	// and queued request completes. NumRequests and Trace modes always drain.
	Drain bool
	// MaxBatch caps the decode-batch occupancy (prefilling and decoding
	// sequences combined).
	MaxBatch int
	// MaxPrefillsPerStep caps how many waiting requests one step may admit
	// (bounding step-time inflation from prefill bursts). 0 means MaxBatch.
	MaxPrefillsPerStep int
	// Seed selects the sampled workload; request i draws from
	// rng.New(rng.Mix(Seed, i)).
	Seed uint64
	// Trace, when non-nil, replaces sampling: requests arrive exactly as
	// listed (ID is reassigned from position; Arrive must be non-decreasing).
	Trace []Request

	Cost    CostModel
	Metrics metrics.Sink   // optional
	Checker *check.Checker // optional
}

// Validate reports the first configuration error.
func (c *Config) Validate() error {
	if c.Cost == nil {
		return fmt.Errorf("serving: nil CostModel")
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("serving: MaxBatch = %d, must be >= 1", c.MaxBatch)
	}
	if c.MaxPrefillsPerStep < 0 {
		return fmt.Errorf("serving: negative MaxPrefillsPerStep")
	}
	if c.Trace != nil {
		for i := range c.Trace {
			r := &c.Trace[i]
			if r.Tenant < 0 || r.Tenant >= len(c.Tenants) {
				return fmt.Errorf("serving: trace[%d] tenant %d out of range", i, r.Tenant)
			}
			if r.Prompt < 1 || r.Output < 1 {
				return fmt.Errorf("serving: trace[%d] needs positive prompt/output lengths", i)
			}
			if i > 0 && r.Arrive < c.Trace[i-1].Arrive {
				return fmt.Errorf("serving: trace arrivals not sorted at [%d]", i)
			}
		}
		if len(c.Tenants) == 0 {
			return fmt.Errorf("serving: no tenants")
		}
		return nil
	}
	if len(c.Tenants) == 0 {
		return fmt.Errorf("serving: no tenants")
	}
	for i, t := range c.Tenants {
		if t.PromptMin < 1 || t.PromptMax < t.PromptMin {
			return fmt.Errorf("serving: tenant %d (%s) prompt range [%d,%d] invalid", i, t.Name, t.PromptMin, t.PromptMax)
		}
		if t.OutputMin < 1 || t.OutputMax < t.OutputMin {
			return fmt.Errorf("serving: tenant %d (%s) output range [%d,%d] invalid", i, t.Name, t.OutputMin, t.OutputMax)
		}
		if t.Weight <= 0 {
			return fmt.Errorf("serving: tenant %d (%s) weight %v, must be positive", i, t.Name, t.Weight)
		}
	}
	if c.QPS <= 0 {
		return fmt.Errorf("serving: QPS = %v, must be positive", c.QPS)
	}
	if c.NumRequests == 0 && c.Horizon <= 0 {
		return fmt.Errorf("serving: need NumRequests or a positive Horizon")
	}
	return nil
}

// reqQueue is a growable ring buffer of waiting requests: FIFO, amortized
// allocation-free.
type reqQueue struct {
	buf  []*Request
	head int
	n    int
}

func (q *reqQueue) push(r *Request) {
	if q.n == len(q.buf) {
		grown := make([]*Request, maxInt(4, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = r
	q.n++
}

func (q *reqQueue) pop() *Request {
	r := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return r
}

// Sim is one serving simulation instance. Build with New, execute with Run.
type Sim struct {
	cfg         Config
	eng         *sim.Engine
	cumW        []float64 // normalized cumulative tenant weights
	maxPrefills int

	queue     reqQueue
	active    []*Request
	free      []*Request
	completed []*Request

	stepBusy bool
	nDecode  int // decode participants of the running step

	// Arrival generation: the next request is fully sampled into staged
	// before its arrival event is scheduled.
	staged     Request
	nextIdx    int
	lastArrive units.Time
	arrived    int

	steps, prefills, decodeTokens int64

	onArrive  sim.Handler
	onStepEnd sim.Handler

	// instruments (nil-safe)
	queueDepth                   *metrics.Gauge
	batchMax                     *metrics.Gauge
	arrivedC, completedC, stepsC *metrics.Counter
	prefillsC, decodeTokC        *metrics.Counter
	tenantTracks                 []*metrics.Track

	// invariant witnesses (nil-safe)
	ckReq   *check.Requests
	ckMile  *check.Milestones
	ckBound *check.Bound
}

// New validates cfg and builds a simulation.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg, eng: sim.NewEngine(), maxPrefills: cfg.MaxPrefillsPerStep}
	if s.maxPrefills == 0 {
		s.maxPrefills = cfg.MaxBatch
	}
	total := 0.0
	for _, t := range cfg.Tenants {
		total += t.Weight
	}
	acc := 0.0
	s.cumW = make([]float64, len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		acc += t.Weight / total
		s.cumW[i] = acc
	}
	s.cumW[len(s.cumW)-1] = 1 // close the top bucket against rounding
	s.active = make([]*Request, 0, cfg.MaxBatch)
	s.onArrive = s.arrive
	s.onStepEnd = s.stepEnd

	if m := cfg.Metrics; m != nil {
		sc := m.Scope("serve")
		s.queueDepth = sc.Gauge("queue_depth")
		s.batchMax = sc.Gauge("batch_max")
		s.arrivedC = sc.Counter("arrived")
		s.completedC = sc.Counter("completed")
		s.stepsC = sc.Counter("steps")
		s.prefillsC = sc.Counter("prefills")
		s.decodeTokC = sc.Counter("decode_tokens")
		s.tenantTracks = make([]*metrics.Track, len(cfg.Tenants))
		for i, t := range cfg.Tenants {
			s.tenantTracks[i] = sc.Track(t.Name)
		}
	}
	s.eng.AttachChecker(cfg.Checker)
	s.ckReq = cfg.Checker.Requests("serving.requests")
	s.ckMile = cfg.Checker.Milestones("serving.milestones")
	s.ckBound = cfg.Checker.Bound("serving.batch", int64(cfg.MaxBatch))
	return s, nil
}

// Run executes the simulation to completion and aggregates the result.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// Run executes the simulation and aggregates the result. Call once.
func (s *Sim) Run() *Result {
	s.scheduleNextArrival()
	end := s.eng.Run()
	s.ckReq.Close(end, int64(s.queue.n), int64(len(s.active)))
	return s.buildResult(end)
}

// scheduleNextArrival samples request nextIdx into staged and schedules its
// arrival event, unless the arrival process is exhausted.
func (s *Sim) scheduleNextArrival() {
	i := s.nextIdx
	if s.cfg.Trace != nil {
		if i >= len(s.cfg.Trace) {
			return
		}
		s.staged = s.cfg.Trace[i]
		s.staged.ID = i
		s.staged.tokensOut = 0
		s.nextIdx++
		s.eng.At(s.staged.Arrive, s.onArrive)
		return
	}
	if s.cfg.NumRequests > 0 && i >= s.cfg.NumRequests {
		return
	}
	// Draw order is frozen (goldens pin it): gap, tenant, prompt, output.
	r := rng.New(rng.Mix(s.cfg.Seed, uint64(i)))
	at := s.lastArrive + units.FromSeconds(r.Exp()/s.cfg.QPS)
	if s.cfg.NumRequests == 0 && at >= s.cfg.Horizon {
		return
	}
	tenant := s.pickTenant(r.Float64())
	t := &s.cfg.Tenants[tenant]
	s.staged = Request{
		ID:     i,
		Tenant: tenant,
		Prompt: r.LogIntRange(t.PromptMin, t.PromptMax),
		Output: r.LogIntRange(t.OutputMin, t.OutputMax),
		Arrive: at,
	}
	s.lastArrive = at
	s.nextIdx++
	s.eng.At(at, s.onArrive)
}

// pickTenant maps a uniform draw to a tenant index via the cumulative
// weights.
func (s *Sim) pickTenant(u float64) int {
	for i, c := range s.cumW {
		if u < c {
			return i
		}
	}
	return len(s.cumW) - 1
}

// arrive materializes the staged request, enqueues it, schedules the next
// arrival, and kicks the scheduler if it is idle.
func (s *Sim) arrive() {
	req := s.alloc()
	*req = s.staged
	s.arrived++
	s.ckReq.Arrive()
	s.arrivedC.Inc()
	s.queue.push(req)
	s.queueDepth.Add(1)
	s.scheduleNextArrival()
	if !s.stepBusy {
		s.startStep()
	}
}

// startStep admits waiting requests FIFO up to the batch and prefill caps and
// schedules the step's completion. No-op when there is nothing to run or the
// horizon has passed in non-drain mode.
func (s *Sim) startStep() {
	now := s.eng.Now()
	if s.cfg.Trace == nil && s.cfg.NumRequests == 0 && !s.cfg.Drain && now >= s.cfg.Horizon {
		return
	}
	s.nDecode = len(s.active)
	var cost units.Time
	admitted := 0
	for len(s.active) < s.cfg.MaxBatch && admitted < s.maxPrefills && s.queue.n > 0 {
		req := s.queue.pop()
		s.queueDepth.Add(-1)
		req.PrefillStart = now
		s.active = append(s.active, req)
		cost += s.cfg.Cost.Prefill(req.Prompt)
		admitted++
	}
	if len(s.active) == 0 {
		return // idle until the next arrival
	}
	if s.nDecode > 0 {
		cost += s.cfg.Cost.DecodeStep(s.nDecode)
	}
	s.prefills += int64(admitted)
	s.prefillsC.Add(int64(admitted))
	s.steps++
	s.stepsC.Inc()
	s.ckBound.Observe(now, int64(len(s.active)))
	s.batchMax.SetMax(int64(len(s.active)))
	s.stepBusy = true
	s.eng.After(cost, s.onStepEnd)
}

// stepEnd advances every batch member by one token — prefilled requests emit
// their first token, decode participants their next — retires finished
// requests in place, and starts the next step.
func (s *Sim) stepEnd() {
	now := s.eng.Now()
	s.stepBusy = false
	w := 0
	for i, req := range s.active {
		if i < s.nDecode {
			req.tokensOut++
			s.decodeTokens++
			s.decodeTokC.Inc()
		} else {
			req.FirstToken = now
			req.tokensOut = 1
		}
		if req.tokensOut >= req.Output {
			req.Done = now
			s.complete(req)
		} else {
			s.active[w] = req
			w++
		}
	}
	for i := w; i < len(s.active); i++ {
		s.active[i] = nil
	}
	s.active = s.active[:w]
	s.startStep()
}

// complete retires one finished request.
func (s *Sim) complete(req *Request) {
	s.ckReq.Complete(req.Done)
	s.ckMile.Observe(req.ID, req.Arrive, req.PrefillStart, req.FirstToken, req.Done)
	s.completedC.Inc()
	if s.tenantTracks != nil {
		tr := s.tenantTracks[req.Tenant]
		tr.Span("wait", req.Arrive, req.PrefillStart)
		tr.Span("generate", req.PrefillStart, req.Done)
	}
	s.completed = append(s.completed, req)
}

// alloc takes a request record from the freelist (or the heap).
func (s *Sim) alloc() *Request {
	if n := len(s.free); n > 0 {
		r := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return r
	}
	return &Request{}
}

// recycle returns completed records to the freelist and truncates the
// completed list — the steady-state reuse hook the allocation tests drive.
func (s *Sim) recycle() {
	s.free = append(s.free, s.completed...)
	for i := range s.completed {
		s.completed[i] = nil
	}
	s.completed = s.completed[:0]
}

// Latency is one population's latency summary. Times are reported with
// nearest-rank percentiles (see stats.Percentile); TPOT quantiles cover only
// multi-token requests.
type Latency struct {
	N                          int
	TTFTMean, TTFTp50, TTFTp99 units.Time
	TPOTp50, TPOTp99           units.Time
	E2Ep50, E2Ep99             units.Time
}

// Result is one run's aggregate outcome.
type Result struct {
	Arrived      int
	Completed    int
	QueuedAtEnd  int // still waiting when the run stopped (non-drain mode)
	ActiveAtEnd  int // still in the batch when the run stopped
	Steps        int64
	Prefills     int64
	DecodeTokens int64
	// End is the simulation end time: the last event's timestamp (at least
	// Horizon in non-drain mode).
	End units.Time
	// Throughput is completed requests per simulated second.
	Throughput float64
	// Overall summarizes every completed request; PerTenant[i] summarizes
	// tenant i's.
	Overall   Latency
	PerTenant []Latency
}

// buildResult aggregates the completed population.
func (s *Sim) buildResult(end units.Time) *Result {
	res := &Result{
		Arrived:      s.arrived,
		Completed:    len(s.completed),
		QueuedAtEnd:  s.queue.n,
		ActiveAtEnd:  len(s.active),
		Steps:        s.steps,
		Prefills:     s.prefills,
		DecodeTokens: s.decodeTokens,
		End:          end,
		PerTenant:    make([]Latency, len(s.cfg.Tenants)),
	}
	if end > 0 {
		res.Throughput = float64(res.Completed) / end.Seconds()
	}
	res.Overall = summarize(s.completed, -1)
	for i := range s.cfg.Tenants {
		res.PerTenant[i] = summarize(s.completed, i)
	}
	return res
}

// summarize computes the latency summary of completed requests belonging to
// tenant (or all of them when tenant < 0).
func summarize(completed []*Request, tenant int) Latency {
	var ttft, tpot, e2e []float64
	var ttftSum units.Time
	for _, r := range completed {
		if tenant >= 0 && r.Tenant != tenant {
			continue
		}
		ttft = append(ttft, float64(r.TTFT()))
		ttftSum += r.TTFT()
		e2e = append(e2e, float64(r.E2E()))
		if t, ok := r.TPOT(); ok {
			tpot = append(tpot, float64(t))
		}
	}
	l := Latency{N: len(ttft)}
	if l.N == 0 {
		return l
	}
	l.TTFTMean = ttftSum / units.Time(l.N)
	sort.Float64s(ttft)
	sort.Float64s(e2e)
	sort.Float64s(tpot)
	l.TTFTp50, l.TTFTp99 = pctTimes(ttft)
	l.E2Ep50, l.E2Ep99 = pctTimes(e2e)
	if len(tpot) > 0 {
		l.TPOTp50, l.TPOTp99 = pctTimes(tpot)
	}
	return l
}

// pctTimes returns the nearest-rank p50 and p99 of a sorted sample as times.
func pctTimes(sorted []float64) (p50, p99 units.Time) {
	a, _ := stats.PercentileSorted(sorted, 50)
	b, _ := stats.PercentileSorted(sorted, 99)
	return units.Time(a), units.Time(b)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
