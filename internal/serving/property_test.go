package serving

import (
	"testing"

	"t3sim/internal/check"
	"t3sim/internal/units"
)

// overloadConfig offers far more load than the cost model can serve, so the
// waiting queue stays deep for the whole run — the regime where fairness and
// occupancy properties are interesting.
func overloadConfig(seed uint64) Config {
	return Config{
		Tenants: []Tenant{
			{Name: "chat", PromptMin: 64, PromptMax: 512, OutputMin: 8, OutputMax: 64, Weight: 2},
			{Name: "batch", PromptMin: 128, PromptMax: 1024, OutputMin: 32, OutputMax: 128, Weight: 1},
		},
		QPS:                5000, // way past capacity for testCost()
		NumRequests:        400,
		MaxBatch:           8,
		MaxPrefillsPerStep: 2,
		Seed:               seed,
		Cost:               testCost(),
	}
}

// TestFIFOAdmissionFairness: admission is strictly FIFO, so under sustained
// overload no request is ever admitted before an earlier arrival, and nothing
// starves — every request completes in drain mode.
func TestFIFOAdmissionFairness(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		s, err := New(overloadConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run()
		if res.Completed != 400 {
			t.Fatalf("seed %d: starvation — only %d/400 completed", seed, res.Completed)
		}
		byID := make([]*Request, 400)
		for _, r := range s.completed {
			byID[r.ID] = r
		}
		for i := 1; i < len(byID); i++ {
			if byID[i].PrefillStart < byID[i-1].PrefillStart {
				t.Fatalf("seed %d: request %d admitted at %v before request %d at %v",
					seed, i, byID[i].PrefillStart, i-1, byID[i-1].PrefillStart)
			}
		}
	}
}

// TestBatchOccupancyBound: the batch never exceeds MaxBatch, witnessed both
// by the check.Bound law and by direct inspection at every step boundary.
func TestBatchOccupancyBound(t *testing.T) {
	cfg := overloadConfig(5)
	ck := check.New()
	cfg.Checker = ck
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if err := ck.Err(); err != nil {
		t.Fatal(err)
	}
	// The bound handle witnessed every step's occupancy; a violated cap would
	// have been recorded. Cross-check the cap was actually exercised: under
	// overload at least one request must have waited in the queue.
	full := false
	for _, r := range s.completed {
		if r.PrefillStart > r.Arrive {
			full = true
			break
		}
	}
	if !full {
		t.Error("overload never queued a request; occupancy bound untested")
	}
}

// TestTTFTMonotoneInQPS: for a fixed seed the request population is identical
// at every QPS (only arrival times rescale), so offering more load can only
// push time-to-first-token up.
func TestTTFTMonotoneInQPS(t *testing.T) {
	base := Config{
		Tenants:     oneTenant(),
		NumRequests: 250,
		MaxBatch:    8,
		Seed:        42,
		Cost:        testCost(),
	}
	var prevMean, prevP99 units.Time
	for i, qps := range []float64{5, 20, 80, 320, 1280, 5120} {
		cfg := base
		cfg.QPS = qps
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != base.NumRequests {
			t.Fatalf("qps %v: %d/%d completed", qps, res.Completed, base.NumRequests)
		}
		if i > 0 {
			if res.Overall.TTFTMean < prevMean {
				t.Errorf("mean TTFT dropped from %v to %v when QPS rose to %v", prevMean, res.Overall.TTFTMean, qps)
			}
			if res.Overall.TTFTp99 < prevP99 {
				t.Errorf("p99 TTFT dropped from %v to %v when QPS rose to %v", prevP99, res.Overall.TTFTp99, qps)
			}
		}
		prevMean, prevP99 = res.Overall.TTFTMean, res.Overall.TTFTp99
	}
}
