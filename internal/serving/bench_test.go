package serving

import (
	"testing"

	"t3sim/internal/units"
)

// steadyConfig is an underloaded open-ended workload: arrivals trickle in,
// the batch stays shallow, and the simulation reaches a periodic steady
// state — the regime the allocation pin measures.
func steadyConfig() Config {
	return Config{
		Tenants:     []Tenant{{Name: "t", PromptMin: 8, PromptMax: 8, OutputMin: 4, OutputMax: 4, Weight: 1}},
		QPS:         1000,
		NumRequests: 1 << 30, // effectively unbounded; the test stops the clock
		MaxBatch:    8,
		Seed:        9,
		Cost: linCost{
			perPromptTok: units.Microsecond,
			decodeBase:   10 * units.Microsecond,
			perSeq:       units.Microsecond,
		},
	}
}

// TestSteadyStateAllocFree pins the arrival/admission hot path at zero
// allocations: once the freelist, ring queue, batch slice and event heap have
// grown to their working sizes, simulating more requests allocates nothing.
func TestSteadyStateAllocFree(t *testing.T) {
	s, err := New(steadyConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.scheduleNextArrival()
	// Warm up: grow every backing array, then recycle the completed records
	// into the freelist.
	deadline := 100 * units.Millisecond
	s.eng.RunUntil(deadline)
	s.recycle()
	allocs := testing.AllocsPerRun(50, func() {
		deadline += 10 * units.Millisecond
		s.eng.RunUntil(deadline)
		s.recycle()
	})
	if allocs != 0 {
		t.Fatalf("steady-state serving allocates %.1f/10ms-window, want 0", allocs)
	}
	if s.arrived < 500 {
		t.Fatalf("only %d arrivals; the hot path was not exercised", s.arrived)
	}
}

// BenchmarkServe measures end-to-end simulation rate, reporting simulated
// requests per wall-clock second (the bench script's serving headline).
func BenchmarkServe(b *testing.B) {
	cfg := Config{
		Tenants: []Tenant{
			{Name: "chat", PromptMin: 64, PromptMax: 512, OutputMin: 16, OutputMax: 128, Weight: 3},
			{Name: "batch", PromptMin: 256, PromptMax: 1024, OutputMin: 64, OutputMax: 256, Weight: 1},
		},
		QPS:         200,
		NumRequests: 2000,
		MaxBatch:    16,
		Seed:        42,
		Cost:        testCost(),
	}
	b.ReportAllocs()
	total := 0
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Completed
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkArrivalAdmission isolates the hot path: simulated wall-time
// windows of the steady-state workload, no result aggregation.
func BenchmarkArrivalAdmission(b *testing.B) {
	s, err := New(steadyConfig())
	if err != nil {
		b.Fatal(err)
	}
	s.scheduleNextArrival()
	deadline := 100 * units.Millisecond
	s.eng.RunUntil(deadline) // warm up backing arrays
	s.recycle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deadline += 10 * units.Millisecond
		s.eng.RunUntil(deadline)
		s.recycle()
	}
	b.ReportMetric(float64(s.arrived)/b.Elapsed().Seconds(), "req/s")
}
