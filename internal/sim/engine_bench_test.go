package sim

import (
	"testing"

	"t3sim/internal/units"
)

// The engine benchmarks measure the two halves of the DES hot loop: pushing
// events into the calendar (BenchmarkEngineSchedule) and the full
// schedule+dispatch cycle (BenchmarkEngineRun). Run with
//
//	go test ./internal/sim -run='^$' -bench=BenchmarkEngine -benchmem
//
// EXPERIMENTS.md records the container/heap baseline and the value-based
// 4-ary heap numbers; the target is zero steady-state allocations per
// scheduled event.

// benchSpread de-correlates timestamps so the heap sees realistic sift work
// rather than append-only FIFO behaviour. It is a fixed LCG, not wall-clock
// randomness, so every run benchmarks the identical event sequence.
func benchSpread(i int) units.Time {
	return units.Time((uint64(i)*6364136223846793005 + 1442695040888963407) % 100000)
}

func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := Handler(func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(benchSpread(i), fn)
	}
	b.StopTimer()
	e.Run()
}

func BenchmarkEngineRun(b *testing.B) {
	// Steady-state schedule+drain cycles: after the first iteration the
	// queue's backing array is warm, so allocs/op is the per-event cost.
	const events = 4096
	e := NewEngine()
	fn := Handler(func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < events; j++ {
			e.At(base+benchSpread(j), fn)
		}
		e.Run()
	}
	b.StopTimer()
	if e.Processed() != uint64(b.N)*events {
		b.Fatalf("processed %d events, want %d", e.Processed(), uint64(b.N)*events)
	}
}

// BenchmarkEngineRunCascade models the self-rescheduling handler chains the
// timing models actually produce (a DRAM channel or link re-arming itself),
// keeping a small live calendar with constant churn.
func BenchmarkEngineRunCascade(b *testing.B) {
	const chains = 64
	e := NewEngine()
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			e.After(units.Time(1+remaining%97), tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for c := 0; c < chains; c++ {
		e.After(units.Time(c+1), tick)
	}
	e.Run()
}
