package sim

import (
	"math/rand"
	"testing"

	"t3sim/internal/check"
	"t3sim/internal/units"
)

// ---------------------------------------------------------------------------
// Appointment (null-message) synchronization
// ---------------------------------------------------------------------------

func TestParseSyncMode(t *testing.T) {
	cases := map[string]ClusterSyncMode{
		"auto": SyncAuto, "": SyncAuto,
		"windowed":    SyncWindowed,
		"appointment": SyncAppointment,
	}
	for s, want := range cases {
		got, err := ParseSyncMode(s)
		if err != nil || got != want {
			t.Errorf("ParseSyncMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseSyncMode("bogus"); err == nil {
		t.Error("ParseSyncMode(bogus) did not fail")
	}
	for _, m := range []ClusterSyncMode{SyncAuto, SyncWindowed, SyncAppointment} {
		if m.String() == "" {
			t.Errorf("mode %d has empty String()", m)
		}
	}
}

// torusTraffic drives a seeded pseudo-random workload over a rows×cols torus
// of attributed links (4 outbound links per device, heterogeneous latencies)
// under the given sync mode and worker count, returning the merged log and
// the run's stats. The log and every stat except Mode/NullMessages must be
// identical across modes and worker counts.
func torusTraffic(t *testing.T, mode ClusterSyncMode, workers int, seed int64) (string, ClusterStats) {
	t.Helper()
	const rows, cols = 4, 4
	const devs = rows * cols
	chk := check.New()
	cl := NewCluster(devs, 10)
	cl.AttachChecker(chk)
	cl.SetSyncMode(mode)
	log := &ringLog{perDev: make([][]string, devs)}
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	// Four outbound links per device in E/W/S/N order, latency varying by
	// direction and device so horizons are genuinely per-edge.
	boxes := make([][]*Mailbox, devs)
	peers := make([][]int, devs)
	lats := make([][]units.Time, devs)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			d := id(r, c)
			ns := []int{id(r, c+1), id(r, c-1), id(r+1, c), id(r-1, c)}
			for k, p := range ns {
				lat := units.Time(10 + 13*((d+k)%5))
				boxes[d] = append(boxes[d], cl.LinkMailbox(d, p, lat))
				peers[d] = append(peers[d], p)
				lats[d] = append(lats[d], lat)
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	var burst func(dev, depth, dir int) Handler
	burst = func(dev, depth, dir int) Handler {
		eng := cl.Engine(dev)
		return func() {
			log.record(dev, eng.Now())
			if depth <= 0 {
				return
			}
			// Local follow-up inside the horizon…
			eng.After(units.Time(1+depth%7), func() { log.record(dev, eng.Now()) })
			// …then a send to one torus neighbour at exactly the link
			// latency plus deterministic jitter.
			k := (depth + dir) % 4
			boxes[dev][k].Post(eng.Now()+lats[dev][k]+units.Time(depth%11),
				burst(peers[dev][k], depth-1, dir))
		}
	}
	// A minority of devices start active so runnable sets stay sparse —
	// the regime the appointment mode is built for.
	for d := 0; d < devs; d += 3 {
		cl.Engine(d).At(units.Time(rng.Intn(25)), burst(d, 28, d%4))
	}
	cl.Run(workers)
	if !chk.Ok() {
		t.Fatalf("mode=%v workers=%d: honest torus model flagged: %v", mode, workers, chk.Violations())
	}
	return log.merged(), cl.Stats()
}

// starTraffic is the same probe over a hub-and-spoke graph with a 6× slower
// hub uplink on half the leaves — strongly asymmetric per-edge latencies.
func starTraffic(t *testing.T, mode ClusterSyncMode, workers int, seed int64) (string, ClusterStats) {
	t.Helper()
	const leaves = 9
	const devs = leaves + 1 // device 0 is the hub
	chk := check.New()
	cl := NewCluster(devs, 15)
	cl.AttachChecker(chk)
	cl.SetSyncMode(mode)
	log := &ringLog{perDev: make([][]string, devs)}
	down := make([]*Mailbox, devs) // hub -> leaf
	up := make([]*Mailbox, devs)   // leaf -> hub
	lat := make([]units.Time, devs)
	for l := 1; l < devs; l++ {
		lat[l] = units.Time(15)
		if l%2 == 0 {
			lat[l] = 90 // slow uplink: intra-window width must differ per edge
		}
		down[l] = cl.LinkMailbox(0, l, lat[l])
		up[l] = cl.LinkMailbox(l, 0, lat[l])
	}
	rng := rand.New(rand.NewSource(seed))
	var bounce func(leaf, depth int) Handler
	bounce = func(leaf, depth int) Handler {
		eng := cl.Engine(0)
		return func() {
			log.record(0, eng.Now())
			if depth <= 0 {
				return
			}
			next := 1 + (leaf+depth)%leaves
			down[next].Post(eng.Now()+lat[next], func() {
				le := cl.Engine(next)
				log.record(next, le.Now())
				le.After(units.Time(2+depth%5), func() {
					up[next].Post(le.Now()+lat[next]+units.Time(depth%7), bounce(next, depth-1))
				})
			})
		}
	}
	cl.Engine(0).At(units.Time(rng.Intn(10)), bounce(0, 40))
	cl.Run(workers)
	if !chk.Ok() {
		t.Fatalf("mode=%v workers=%d: honest star model flagged: %v", mode, workers, chk.Violations())
	}
	return log.merged(), cl.Stats()
}

// TestClusterAppointmentMatchesWindowed is the cross-mode oracle: on every
// probe topology, forcing SyncAppointment must reproduce SyncWindowed's log
// byte-for-byte at workers 1/2/4, and every aggregate stat except Mode and
// NullMessages (which are mode-defined) must coincide — the two coordinators
// compute the same per-round least fixpoint.
func TestClusterAppointmentMatchesWindowed(t *testing.T) {
	probes := []struct {
		name string
		run  func(t *testing.T, mode ClusterSyncMode, workers int, seed int64) (string, ClusterStats)
	}{
		{"torus", torusTraffic},
		{"star", starTraffic},
	}
	normalize := func(st ClusterStats) ClusterStats {
		st.Mode = SyncAuto
		st.NullMessages = 0
		return st
	}
	for _, p := range probes {
		for seed := int64(1); seed <= 3; seed++ {
			wantLog, wantStats := p.run(t, SyncWindowed, 1, seed)
			if wantLog == "" {
				t.Fatalf("%s seed=%d: empty reference log", p.name, seed)
			}
			for _, mode := range []ClusterSyncMode{SyncWindowed, SyncAppointment} {
				for _, workers := range []int{1, 2, 4} {
					gotLog, gotStats := p.run(t, mode, workers, seed)
					if gotLog != wantLog {
						t.Errorf("%s seed=%d mode=%v workers=%d: log diverged from windowed/1",
							p.name, seed, mode, workers)
					}
					if gotStats.Mode != mode && mode != SyncAuto {
						t.Errorf("%s seed=%d: Stats().Mode = %v, want %v", p.name, seed, gotStats.Mode, mode)
					}
					if got, want := normalize(gotStats), normalize(wantStats); got != want {
						t.Errorf("%s seed=%d mode=%v workers=%d: stats diverged\n got: %+v\nwant: %+v",
							p.name, seed, mode, workers, got, want)
					}
				}
			}
		}
	}
}

// TestClusterSyncAutoSelection pins the density rule: sparse graphs (ring)
// resolve to appointment, dense graphs (all-to-all) and small clusters stay
// windowed.
func TestClusterSyncAutoSelection(t *testing.T) {
	run := func(devs int, wire func(cl *Cluster) []*Mailbox) ClusterSyncMode {
		cl := NewCluster(devs, 10)
		boxes := wire(cl)
		for d := 0; d < devs; d++ {
			d := d
			eng := cl.Engine(d)
			eng.At(units.Time(d), func() {
				boxes[d].Post(eng.Now()+10, func() {})
			})
		}
		cl.Run(1)
		return cl.Stats().Mode
	}
	ring := func(cl *Cluster) []*Mailbox {
		n := len(cl.Engines())
		boxes := make([]*Mailbox, n)
		for d := 0; d < n; d++ {
			boxes[d] = cl.LinkMailbox(d, (d+1)%n, 10)
		}
		return boxes
	}
	dense := func(cl *Cluster) []*Mailbox {
		n := len(cl.Engines())
		boxes := make([]*Mailbox, n)
		for d := 0; d < n; d++ {
			for p := 0; p < n; p++ {
				if p == d {
					continue
				}
				b := cl.LinkMailbox(d, p, 10)
				if boxes[d] == nil {
					boxes[d] = b
				}
			}
		}
		return boxes
	}
	if got := run(8, ring); got != SyncAppointment {
		t.Errorf("8-device ring resolved to %v, want appointment", got)
	}
	if got := run(8, dense); got != SyncWindowed {
		t.Errorf("8-device all-to-all resolved to %v, want windowed (density rule)", got)
	}
	if got := run(4, ring); got != SyncWindowed {
		t.Errorf("4-device ring resolved to %v, want windowed (size floor)", got)
	}
}

// TestClusterAppointmentDrainAllocs pins the appointment coordinator's
// steady-state allocation behaviour: promise slots, the affected set, the
// candidate list, the posted-box tracking and the blocked list are all
// preallocated, so rounds of drain + incremental relaxation + dispatch must
// not allocate. Counterpart of TestClusterDrainAllocs (which now pins the
// auto→appointment ring; here the mode is forced to make intent explicit).
func TestClusterAppointmentDrainAllocs(t *testing.T) {
	const devs = 8
	const hopsPerDev = 64
	cl := NewCluster(devs, 10)
	cl.SetSyncMode(SyncAppointment)
	boxes := make([]*Mailbox, devs)
	for d := 0; d < devs; d++ {
		boxes[d] = cl.LinkMailbox(d, (d+1)%devs, 10)
	}
	counts := make([]int, devs)
	handlers := make([]Handler, devs)
	for d := 0; d < devs; d++ {
		d := d
		eng := cl.Engine(d)
		handlers[d] = func() {
			if counts[d]--; counts[d] > 0 {
				boxes[d].Post(eng.Now()+10, handlers[(d+1)%devs])
			}
		}
	}
	seed := func() {
		var t0 units.Time
		for d := 0; d < devs; d++ {
			if now := cl.Engine(d).Now(); now > t0 {
				t0 = now
			}
		}
		for d := 0; d < devs; d++ {
			counts[d] = hopsPerDev
			cl.Engine(d).At(t0+units.Time(d+1), handlers[d])
		}
	}
	seed()
	cl.Run(1) // warm-up: grow every backing array once
	if cl.Stats().Mode != SyncAppointment {
		t.Fatalf("mode = %v, want appointment", cl.Stats().Mode)
	}
	if cl.Stats().NullMessages == 0 {
		t.Fatal("appointment run published no promises")
	}
	allocs := testing.AllocsPerRun(10, func() {
		seed()
		cl.Run(1)
	})
	if allocs > 0.5 {
		t.Errorf("steady-state appointment loop allocates %.2f allocs/run, want 0", allocs)
	}
}

// TestClusterPromiseLawViolationDetected proves the per-edge promise law is
// falsifiable: after the first round has published a promise on a link, a
// model that posts a delivery earlier than that promise must be flagged on
// the appointment rule — the receiver's horizon already trusted the promise.
func TestClusterPromiseLawViolationDetected(t *testing.T) {
	chk := check.New()
	cl := NewCluster(2, 10)
	cl.AttachChecker(chk)
	cl.SetSyncMode(SyncAppointment)
	box := cl.LinkMailbox(0, 1, 100)
	// Keep engine 1 alive across rounds so the lying delivery is drained.
	eng1 := cl.Engine(1)
	n := 30
	var tick Handler
	tick = func() {
		if n--; n > 0 {
			eng1.After(4, tick)
		}
	}
	eng1.At(0, tick)
	eng0 := cl.Engine(0)
	eng0.At(0, func() {
		// The promise on this edge is bound(0)+100 = 100; delivering at 5
		// lies about the link latency.
		box.Post(5, func() {})
	})
	cl.Run(1)
	found := false
	for _, v := range chk.Violations() {
		if v.Rule == "ordering/appointment" {
			found = true
		}
	}
	if !found {
		t.Fatalf("promise violation not detected; violations: %v", chk.Violations())
	}
}

// TestClusterEdgeStalls sanity-checks the per-edge stall attribution: on a
// two-device chain where the receiver is persistently blocked on its single
// slow inbound link, all stall time lands on that edge, and the aggregate
// matches ClusterStats.
func TestClusterEdgeStalls(t *testing.T) {
	for _, mode := range []ClusterSyncMode{SyncWindowed, SyncAppointment} {
		cl := NewCluster(2, 10)
		cl.SetSyncMode(mode)
		box := cl.LinkMailbox(0, 1, 50)
		eng0 := cl.Engine(0)
		n := 20
		var drive Handler
		drive = func() {
			box.Post(eng0.Now()+50, func() {})
			if n--; n > 0 {
				eng0.After(60, drive)
			}
		}
		eng0.At(0, drive)
		// Engine 1 has distant local work, so it repeatedly blocks on the
		// 0->1 link's promise before its own next event.
		cl.Engine(1).At(100000, func() {})
		cl.Run(1)
		st := cl.Stats()
		if st.StalledEngineWindows == 0 || st.StallTime == 0 {
			t.Fatalf("mode=%v: no stalls recorded: %+v", mode, st)
		}
		edges := cl.EdgeStalls()
		if len(edges) != 1 {
			t.Fatalf("mode=%v: EdgeStalls = %+v, want exactly the 0->1 edge", mode, edges)
		}
		e := edges[0]
		if e.Src != 0 || e.Dst != 1 {
			t.Errorf("mode=%v: stall attributed to edge %d->%d, want 0->1", mode, e.Src, e.Dst)
		}
		if e.StallWindows != st.StalledEngineWindows || e.StallTime != st.StallTime {
			t.Errorf("mode=%v: per-edge stalls (%d, %v) disagree with aggregate (%d, %v)",
				mode, e.StallWindows, e.StallTime, st.StalledEngineWindows, st.StallTime)
		}
	}
}

// TestClusterAppointmentStress hammers the promise-refresh path under
// maximal worker counts: a torus where activity migrates between sparse
// device subsets, so promises are refreshed, go quiescent (never), and are
// re-established across many rounds. Under -race this is the stress test
// the ISSUE names; determinism against the windowed reference rides along.
func TestClusterAppointmentStress(t *testing.T) {
	wantLog, _ := torusTraffic(t, SyncWindowed, 1, 99)
	for _, workers := range []int{8, 16} {
		gotLog, st := torusTraffic(t, SyncAppointment, workers, 99)
		if gotLog != wantLog {
			t.Errorf("workers=%d: appointment log diverged under stress", workers)
		}
		if st.NullMessages == 0 {
			t.Errorf("workers=%d: stress run refreshed no promises", workers)
		}
	}
}
