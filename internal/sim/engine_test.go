package sim

import (
	"math/rand"
	"sort"
	"testing"

	"t3sim/internal/units"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("end time = %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-time events ran out of insertion order: %v", order)
	}
}

func TestAfterAndClock(t *testing.T) {
	e := NewEngine()
	var at1, at2 units.Time
	e.After(100, func() {
		at1 = e.Now()
		e.After(50, func() { at2 = e.Now() })
	})
	e.Run()
	if at1 != 100 || at2 != 150 {
		t.Errorf("at1=%v at2=%v, want 100,150", at1, at2)
	}
	if e.Processed() != 2 {
		t.Errorf("Processed = %d, want 2", e.Processed())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
	if e.Now() != 20 {
		t.Errorf("Now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 3 || e.Now() != 30 {
		t.Errorf("after Run: ran=%d now=%v", ran, e.Now())
	}
}

func TestRunUntilDrainExactlyAtDeadline(t *testing.T) {
	// The documented postcondition: events at exactly the deadline run —
	// including ones scheduled at the deadline by handlers firing at the
	// deadline — Processed() counts them, and Now() equals the deadline.
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() {
		ran++
		e.At(20, func() { ran++ }) // same-time cascade at the deadline
	})
	e.At(21, func() { ran++ })
	end := e.RunUntil(20)
	if end != 20 || e.Now() != 20 {
		t.Errorf("clock = %v/%v, want 20 (clock-equals-deadline postcondition)", end, e.Now())
	}
	if ran != 3 {
		t.Errorf("ran = %d, want 3 (deadline event and its same-time cascade)", ran)
	}
	if e.Processed() != 3 {
		t.Errorf("Processed = %d, want 3", e.Processed())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1 (only the post-deadline event)", e.Pending())
	}
	e.Run()
	if ran != 4 || e.Processed() != 4 || e.Now() != 21 {
		t.Errorf("after Run: ran=%d processed=%d now=%v", ran, e.Processed(), e.Now())
	}
}

func TestProcessedVisibleInsideHandler(t *testing.T) {
	e := NewEngine()
	var during uint64
	e.At(5, func() { during = e.Processed() })
	e.Run()
	if during != 1 {
		t.Errorf("Processed inside handler = %d, want 1 (counts the running event)", during)
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Errorf("Now = %v, want 500", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative delay")
		}
	}()
	e.After(-1, func() {})
}

func TestNilHandlerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on nil handler")
		}
	}()
	e.At(1, nil)
}

func TestRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEngine()
	var times []units.Time
	for i := 0; i < 2000; i++ {
		at := units.Time(rng.Intn(10000))
		e.At(at, func() { times = append(times, e.Now()) })
	}
	e.Run()
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("time went backwards at %d: %v < %v", i, times[i], times[i-1])
		}
	}
	if len(times) != 2000 {
		t.Errorf("executed %d events, want 2000", len(times))
	}
}

func TestRandomizedInterleavedScheduling(t *testing.T) {
	// Exercises the heap under DES-realistic interleaving: handlers keep
	// scheduling new events while the queue drains, so push and pop mix
	// instead of the push-all-then-drain pattern of TestRandomizedOrdering.
	rng := rand.New(rand.NewSource(7))
	e := NewEngine()
	var times []units.Time
	var seed func(budget int) Handler
	seed = func(budget int) Handler {
		return func() {
			times = append(times, e.Now())
			for f := 0; f < budget; f++ {
				e.After(units.Time(rng.Intn(50)), seed(rng.Intn(budget)))
			}
		}
	}
	for i := 0; i < 64; i++ {
		e.At(units.Time(rng.Intn(1000)), seed(3))
	}
	e.Run()
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("time went backwards at %d: %v < %v", i, times[i], times[i-1])
		}
	}
	if uint64(len(times)) != e.Processed() {
		t.Errorf("observed %d events, Processed() = %d", len(times), e.Processed())
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after Run, want 0", e.Pending())
	}
}

func TestFence(t *testing.T) {
	fired := 0
	f := NewFence(3, func() { fired++ })
	f.Done()
	f.Done()
	if f.Fired() {
		t.Error("fence fired early")
	}
	f.Done()
	if fired != 1 || !f.Fired() {
		t.Errorf("fired=%d Fired=%v, want 1,true", fired, f.Fired())
	}
}

func TestFenceZero(t *testing.T) {
	fired := false
	NewFence(0, func() { fired = true })
	if !fired {
		t.Error("zero fence should fire immediately")
	}
}

func TestFenceAdd(t *testing.T) {
	fired := false
	f := NewFence(1, func() { fired = true })
	f.Add(1)
	f.Done()
	if fired {
		t.Error("fired before all completions")
	}
	if f.Remaining() != 1 {
		t.Errorf("Remaining = %d, want 1", f.Remaining())
	}
	f.Done()
	if !fired {
		t.Error("did not fire after all completions")
	}
}

func TestFenceMisuse(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative", func() { NewFence(-1, nil) })
	f := NewFence(1, nil)
	f.Done()
	mustPanic("over-complete", func() { f.Done() })
	mustPanic("add-after-fire", func() { f.Add(1) })
	f2 := NewFence(2, nil)
	mustPanic("negative-add", func() { f2.Add(-1) })
}
