// Package sim provides the discrete-event simulation kernel that every timed
// model in this repository (DRAM, interconnect, GPU pipelines, the T3
// tracker) runs on. It is a classic event-calendar design: callbacks are
// scheduled at absolute picosecond timestamps and executed in (time,
// insertion-order) order, which makes simulations fully deterministic.
//
// An Engine is strictly single-goroutine: all model code runs inside event
// handlers on the goroutine that calls Run/RunUntil, and an Engine must never
// be shared across goroutines. Concurrency lives one level up — independent
// simulations each own a private Engine and may run on separate goroutines
// (see internal/experiments.Evaluator.EvaluateAll).
package sim

import (
	"fmt"

	"t3sim/internal/check"
	"t3sim/internal/units"
)

// Handler is a callback executed when its event fires. The engine's clock
// already equals the event time when the handler runs.
type Handler func()

type event struct {
	at  units.Time
	seq uint64 // insertion order; breaks ties deterministically
	fn  Handler
	// fence, when fn is nil, is completed (Done) instead of calling a
	// handler. Carrying the fence in the event lets hot paths schedule a
	// deferred completion without allocating a method-value closure for
	// fence.Done on every request (see Engine.AfterFence).
	fence *Fence
}

// before reports whether e fires ahead of o under the deterministic
// (time, insertion-seq) ordering contract.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// The event calendar is a value-based quaternary (4-ary) min-heap stored
// directly in a slice: no per-event pointer allocation and no interface
// boxing on push/pop, so steady-state scheduling costs zero allocations
// (the backing array is reused across drain cycles). The 4-ary layout
// (children of i at 4i+1..4i+4) halves tree depth versus a binary heap,
// trading a wider sibling scan — two cache lines for 32-byte events —
// for fewer cache-missing levels on sift-down, the pop-side cost
// that dominates a DES dispatch loop.
const heapArity = 4

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use. Engines are not safe for concurrent use; all model code runs
// inside event handlers on one goroutine.
type Engine struct {
	now       units.Time
	seq       uint64
	queue     []event
	processed uint64
	mono      *check.Monotonic // event-time monotonicity witness (nil = off)
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// AttachChecker registers an invariant checker that witnesses every
// dispatched event's timestamp: the event clock must never run backwards,
// regardless of how the heap is mutated. A nil checker detaches (the dispatch
// loop then pays a single nil-handle branch per event).
func (e *Engine) AttachChecker(c *check.Checker) {
	e.mono = c.Monotonic("sim.engine")
}

// Now returns the current simulation time.
func (e *Engine) Now() units.Time { return e.now }

// Processed returns the number of events executed so far. The count is
// advanced before a handler runs, so inside a handler it includes the event
// currently executing; after Run or RunUntil returns it equals exactly the
// number of handlers that fired.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug.
func (e *Engine) At(t units.Time, fn Handler) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil handler")
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative delays panic.
func (e *Engine) After(d units.Time, fn Handler) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// AfterFence schedules one completion (Done) on f at d after the current
// time. It is equivalent to After(d, f.Done) — same position in the
// deterministic (time, insertion-seq) event order — but stores the fence
// pointer in the event itself, so no method-value closure is allocated.
// Negative delays and nil fences panic.
func (e *Engine) AfterFence(d units.Time, f *Fence) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	if f == nil {
		panic("sim: scheduling nil fence")
	}
	e.seq++
	e.push(event{at: e.now + d, seq: e.seq, fence: f})
}

// Run executes events until the queue is empty and returns the final clock
// value.
func (e *Engine) Run() units.Time {
	for len(e.queue) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, including events
// that handlers schedule at the deadline itself while draining.
//
// Postcondition: Now() == deadline exactly (even when the queue drains early
// or the last event fires exactly at the deadline), Processed() counts every
// handler that fired, and Pending() holds only events strictly after the
// deadline.
func (e *Engine) RunUntil(deadline units.Time) units.Time {
	if deadline < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", deadline, e.now))
	}
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.step()
	}
	e.now = deadline
	return e.now
}

// RunBefore executes events with timestamps strictly before deadline,
// including events that handlers schedule inside the window while draining,
// then advances the clock to the deadline. It is the conservative-window
// primitive of Cluster: after RunBefore(D) returns, every remaining event —
// and every event this engine can ever schedule from here on — fires at or
// after D, so a coordinator may safely inject cross-engine deliveries
// timestamped >= D before the next window.
//
// Postcondition: Now() == deadline, and Pending() holds only events at or
// after the deadline.
func (e *Engine) RunBefore(deadline units.Time) units.Time {
	if deadline < e.now {
		panic(fmt.Sprintf("sim: RunBefore(%v) before now %v", deadline, e.now))
	}
	for len(e.queue) > 0 && e.queue[0].at < deadline {
		e.step()
	}
	e.now = deadline
	return e.now
}

// NextAt returns the earliest pending event's timestamp, or false when the
// queue is empty. Cluster uses it to compute the global window horizon.
func (e *Engine) NextAt() (units.Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

func (e *Engine) step() {
	ev := e.pop()
	e.mono.Observe(ev.at)
	e.now = ev.at
	e.processed++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.fence.Done()
	}
}

// push inserts ev, sifting it up toward the root.
func (e *Engine) push(ev event) {
	q := append(e.queue, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !ev.before(q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
	e.queue = q
}

// pop removes and returns the earliest event, sifting the displaced last
// element down through the hole it leaves at the root.
func (e *Engine) pop() event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{} // drop the Handler reference so the GC can reclaim it
	if n > 0 {
		i := 0
		for {
			c := heapArity*i + 1
			if c >= n {
				break
			}
			// Pick the earliest of up to four siblings.
			min := c
			end := c + heapArity
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if q[j].before(q[min]) {
					min = j
				}
			}
			if !q[min].before(last) {
				break
			}
			q[i] = q[min]
			i = min
		}
		q[i] = last
	}
	e.queue = q[:n]
	return top
}
