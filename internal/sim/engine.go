// Package sim provides the discrete-event simulation kernel that every timed
// model in this repository (DRAM, interconnect, GPU pipelines, the T3
// tracker) runs on. It is a classic event-calendar design: callbacks are
// scheduled at absolute picosecond timestamps and executed in (time,
// insertion-order) order, which makes simulations fully deterministic.
package sim

import (
	"container/heap"
	"fmt"

	"t3sim/internal/units"
)

// Handler is a callback executed when its event fires. The engine's clock
// already equals the event time when the handler runs.
type Handler func()

type event struct {
	at  units.Time
	seq uint64 // insertion order; breaks ties deterministically
	fn  Handler
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use. Engines are not safe for concurrent use; all model code runs
// inside event handlers on one goroutine.
type Engine struct {
	now       units.Time
	seq       uint64
	queue     eventQueue
	processed uint64
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() units.Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug.
func (e *Engine) At(t units.Time, fn Handler) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil handler")
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative delays panic.
func (e *Engine) After(d units.Time, fn Handler) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Run executes events until the queue is empty and returns the final clock
// value.
func (e *Engine) Run() units.Time {
	for len(e.queue) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is advanced to the deadline if
// the queue drains or only later events remain.
func (e *Engine) RunUntil(deadline units.Time) units.Time {
	if deadline < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", deadline, e.now))
	}
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.step()
	}
	e.now = deadline
	return e.now
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.processed++
	ev.fn()
}
