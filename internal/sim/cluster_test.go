package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"t3sim/internal/check"
	"t3sim/internal/units"
)

func TestRunBefore(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(19, func() {
		ran++
		// Scheduled inside the window while draining: must still run.
		e.At(19, func() { ran++ })
	})
	e.At(20, func() { ran++ }) // exactly at the deadline: must NOT run
	e.At(30, func() { ran++ })
	end := e.RunBefore(20)
	if end != 20 || e.Now() != 20 {
		t.Errorf("Now = %v, want 20", e.Now())
	}
	if ran != 3 {
		t.Errorf("ran %d events before the deadline, want 3", ran)
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	// Clock advances to the deadline even when the queue drains early.
	e2 := NewEngine()
	if got := e2.RunBefore(55); got != 55 {
		t.Errorf("empty-queue RunBefore = %v, want 55", got)
	}
}

func TestRunBeforePastDeadlinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunBefore in the past did not panic")
		}
	}()
	e := NewEngine()
	e.At(5, func() {})
	e.RunBefore(10)
	e.RunBefore(3)
}

func TestNextAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Error("NextAt on empty queue reported an event")
	}
	e.At(30, func() {})
	e.At(10, func() {})
	if at, ok := e.NextAt(); !ok || at != 10 {
		t.Errorf("NextAt = %v,%v, want 10,true", at, ok)
	}
}

// ringModel builds the same token-passing ring either on one shared engine
// (the sequential reference) or across a cluster's per-device engines: each
// device holds the token for holdTime, then forwards it to the next device
// with linkLat delay, for a fixed number of laps. Every hop appends
// "(device,time)" to a per-device log; the merged log must be identical
// however the model is executed.
type ringLog struct {
	perDev [][]string
}

func (l *ringLog) record(dev int, at units.Time) {
	l.perDev[dev] = append(l.perDev[dev], fmt.Sprintf("d%d@%v", dev, at))
}

func (l *ringLog) merged() string {
	var all []string
	for _, d := range l.perDev {
		all = append(all, d...)
	}
	return strings.Join(all, " ")
}

const (
	ringDevs    = 4
	ringLinkLat = units.Time(35)
	ringHold    = units.Time(12)
	ringLaps    = 50
)

func ringReference() string {
	e := NewEngine()
	log := &ringLog{perDev: make([][]string, ringDevs)}
	hops := ringDevs * ringLaps
	var arrive func(dev, hop int) Handler
	arrive = func(dev, hop int) Handler {
		return func() {
			log.record(dev, e.Now())
			if hop >= hops {
				return
			}
			next := (dev + 1) % ringDevs
			e.At(e.Now()+ringHold+ringLinkLat, arrive(next, hop+1))
		}
	}
	e.At(0, arrive(0, 0))
	e.Run()
	return log.merged()
}

func ringOnCluster(t *testing.T, workers int, chk *check.Checker) string {
	t.Helper()
	cl := NewCluster(ringDevs, ringLinkLat)
	cl.AttachChecker(chk)
	log := &ringLog{perDev: make([][]string, ringDevs)}
	// One mailbox per forward link, registered in device order.
	boxes := make([]*Mailbox, ringDevs)
	for d := 0; d < ringDevs; d++ {
		boxes[d] = cl.Mailbox((d + 1) % ringDevs)
	}
	hops := ringDevs * ringLaps
	var arrive func(dev, hop int) Handler
	arrive = func(dev, hop int) Handler {
		eng := cl.Engine(dev)
		return func() {
			log.record(dev, eng.Now())
			if hop >= hops {
				return
			}
			next := (dev + 1) % ringDevs
			boxes[dev].Post(eng.Now()+ringHold+ringLinkLat, arrive(next, hop+1))
		}
	}
	cl.Engine(0).At(0, arrive(0, 0))
	cl.Run(workers)
	return log.merged()
}

func TestClusterMatchesSequentialReference(t *testing.T) {
	want := ringReference()
	for _, workers := range []int{0, 1, 2, ringDevs, ringDevs + 3} {
		chk := check.New()
		got := ringOnCluster(t, workers, chk)
		if got != want {
			t.Errorf("workers=%d: cluster log diverged from sequential reference\n got: %s\nwant: %s",
				workers, got, want)
		}
		if !chk.Ok() {
			t.Errorf("workers=%d: violations: %v", workers, chk.Violations())
		}
	}
}

// randomTraffic drives a cluster with a seeded pseudo-random workload —
// bursts of local events plus cross-device sends at and above the lookahead
// — and returns the merged log. The same seed must produce the same log at
// every worker count.
func randomTraffic(workers int, seed int64) string {
	const devs = 6
	const lookahead = units.Time(20)
	cl := NewCluster(devs, lookahead)
	log := &ringLog{perDev: make([][]string, devs)}
	boxes := make([]*Mailbox, devs)
	for d := 0; d < devs; d++ {
		boxes[d] = cl.Mailbox((d + 1) % devs)
	}
	rng := rand.New(rand.NewSource(seed))
	var burst func(dev, depth int) Handler
	burst = func(dev, depth int) Handler {
		eng := cl.Engine(dev)
		return func() {
			log.record(dev, eng.Now())
			if depth <= 0 {
				return
			}
			// Local follow-up inside the window…
			eng.After(units.Time(1+depth%7), func() { log.record(dev, eng.Now()) })
			// …and a cross-device send at exactly the lookahead bound
			// (the tightest legal delivery) or beyond.
			boxes[dev].Post(eng.Now()+lookahead+units.Time(depth%13), burst((dev+1)%devs, depth-1))
		}
	}
	for d := 0; d < devs; d++ {
		cl.Engine(d).At(units.Time(rng.Intn(40)), burst(d, 25))
	}
	cl.Run(workers)
	return log.merged()
}

func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		want := randomTraffic(1, seed)
		for _, workers := range []int{2, 3, 6} {
			if got := randomTraffic(workers, seed); got != want {
				t.Errorf("seed=%d workers=%d: log diverged from workers=1\n got: %s\nwant: %s",
					seed, workers, got, want)
			}
		}
	}
}

// TestClusterLookaheadViolationDetected proves the lookahead law is
// falsifiable: a model that posts a delivery closer than the lookahead —
// here, effectively instantaneous — must be flagged, because the receiving
// engine may already have run past the delivery time.
func TestClusterLookaheadViolationDetected(t *testing.T) {
	chk := check.New()
	cl := NewCluster(2, 10)
	cl.AttachChecker(chk)
	box := cl.Mailbox(1)
	cl.Engine(1).At(0, func() {}) // pull engine 1 into the first window
	cl.Engine(0).At(5, func() {
		box.Post(6, func() {}) // lies about the link latency: 6 < barrier
	})
	cl.Run(2)
	found := false
	for _, v := range chk.Violations() {
		if v.Rule == "ordering/lookahead" {
			found = true
		}
	}
	if !found {
		t.Fatalf("lookahead violation not detected; violations: %v", chk.Violations())
	}
}

// TestClusterStress hammers the window barrier and mailboxes with many
// engines, few events per window, and maximal worker count — the worst case
// for the coordinator. Run under -race this is the synchronization-layer
// stress test; the determinism assertion rides along for free.
func TestClusterStress(t *testing.T) {
	const devs = 16
	run := func(workers int) string {
		cl := NewCluster(devs, 5)
		log := &ringLog{perDev: make([][]string, devs)}
		boxes := make([]*Mailbox, devs)
		for d := 0; d < devs; d++ {
			boxes[d] = cl.Mailbox((d + 1) % devs)
		}
		var hop func(dev, n int) Handler
		hop = func(dev, n int) Handler {
			eng := cl.Engine(dev)
			return func() {
				log.record(dev, eng.Now())
				if n <= 0 {
					return
				}
				boxes[dev].Post(eng.Now()+5, hop((dev+1)%devs, n-1))
			}
		}
		for d := 0; d < devs; d++ {
			cl.Engine(d).At(units.Time(d), hop(d, 400))
		}
		cl.Run(workers)
		return log.merged()
	}
	want := run(1)
	for _, workers := range []int{2, 8, devs} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d diverged under stress", workers)
		}
	}
}

// TestClusterWindowLoopAllocs pins the serial window loop's steady-state
// allocation behaviour: draining W windows of pre-scheduled events must not
// allocate per event (the engine dispatch loop stays 0 allocs/event; the
// only allowed allocations are the one-time cluster setup and log growth,
// excluded here by scheduling no-op handlers).
func TestClusterWindowLoopAllocs(t *testing.T) {
	const devs = 4
	const events = 2048
	fn := Handler(func() {})
	cl := NewCluster(devs, 10)
	// Warm-up: grow every calendar's backing array once.
	seed := func() {
		for d := 0; d < devs; d++ {
			eng := cl.Engine(d)
			base := eng.Now()
			for j := 0; j < events; j++ {
				eng.At(base+benchSpread(j), fn)
			}
		}
	}
	seed()
	cl.Run(1)
	allocs := testing.AllocsPerRun(10, func() {
		seed()
		cl.Run(1)
	})
	// Budget: a handful of allocations per whole run (not per event) —
	// slack for the testing harness, none for the dispatch loop.
	if perEvent := allocs / (devs * events); perEvent > 0.01 {
		t.Errorf("window loop allocates %.3f allocs/event (%.0f per run), want ~0", perEvent, allocs)
	}
}

// ---------------------------------------------------------------------------
// Dynamic per-device lookahead
// ---------------------------------------------------------------------------

// linkRing wires devs engines into a ring of attributed LinkMailboxes with
// per-link latencies lat[d] (link d goes d -> (d+1)%devs), runs a token
// workload where every hop uses its own link's latency, and returns the
// merged log.
func linkRing(workers int, lats []units.Time, lookahead units.Time, hops int) string {
	devs := len(lats)
	cl := NewCluster(devs, lookahead)
	log := &ringLog{perDev: make([][]string, devs)}
	boxes := make([]*Mailbox, devs)
	for d := 0; d < devs; d++ {
		boxes[d] = cl.LinkMailbox(d, (d+1)%devs, lats[d])
	}
	var arrive func(dev, hop int) Handler
	arrive = func(dev, hop int) Handler {
		eng := cl.Engine(dev)
		return func() {
			log.record(dev, eng.Now())
			if hop >= hops {
				return
			}
			// Local work, then a send at exactly this link's latency — the
			// tightest delivery the per-link law admits.
			eng.After(3, func() { log.record(dev, eng.Now()) })
			boxes[dev].Post(eng.Now()+lats[dev], arrive((dev+1)%devs, hop+1))
		}
	}
	cl.Engine(0).At(0, arrive(0, 0))
	for d := 1; d < devs; d++ {
		// Background local-only churn so engines have heterogeneous bases.
		eng := cl.Engine(d)
		var tick func()
		n := 40 + 7*d
		tick = func() {
			log.record(d, eng.Now())
			if n--; n > 0 {
				eng.After(units.Time(5+d), tick)
			}
		}
		eng.At(units.Time(d), tick)
	}
	cl.Run(workers)
	return log.merged()
}

// TestClusterPerLinkHorizonsDeterministic drives a ring with strongly
// heterogeneous link latencies — where per-device horizons differ sharply
// from the global window — and requires the merged log to be identical at
// every worker count.
func TestClusterPerLinkHorizonsDeterministic(t *testing.T) {
	lats := []units.Time{20, 500, 45, 1000, 20, 170}
	want := linkRing(1, lats, 20, 120)
	if want == "" {
		t.Fatal("empty log from reference run")
	}
	for _, workers := range []int{2, 3, len(lats)} {
		if got := linkRing(workers, lats, 20, 120); got != want {
			t.Errorf("workers=%d: log diverged on heterogeneous-latency ring\n got: %s\nwant: %s",
				workers, got, want)
		}
	}
}

// TestClusterPerDeviceHorizonRunsAhead pins the point of dynamic lookahead:
// on a two-device topology where device 1's only inbound link is very slow,
// device 1 must advance far past the legacy global window (earliest event +
// cluster lookahead) in a single round. We detect that via the scheduler's
// own statistics: the whole run must need only a handful of rounds, where
// the global-window coordinator needed hundreds.
func TestClusterPerDeviceHorizonRunsAhead(t *testing.T) {
	const slowLat = units.Time(10000)
	const lookahead = units.Time(10)
	cl := NewCluster(2, lookahead)
	box := cl.LinkMailbox(0, 1, slowLat)
	// Device 1: a long chain of local events, 1 time unit apart.
	eng1 := cl.Engine(1)
	n := 5000
	var tick Handler
	tick = func() {
		if n--; n > 0 {
			eng1.After(1, tick)
		}
	}
	eng1.At(0, tick)
	// Device 0: periodic sends over the slow link.
	eng0 := cl.Engine(0)
	for i := 0; i < 5; i++ {
		at := units.Time(i * 100)
		eng0.At(at, func() { box.Post(eng0.Now()+slowLat, func() {}) })
	}
	cl.Run(1)
	st := cl.Stats()
	if st.Windows > 20 {
		t.Errorf("per-device horizons took %d rounds; a global window would need ~500, dynamic lookahead should need <20", st.Windows)
	}
	if st.AvgWindowWidth() < lookahead {
		t.Errorf("average window width %v below the global lookahead %v", st.AvgWindowWidth(), lookahead)
	}
}

// TestClusterLinkLawViolationDetected proves the per-link law is
// falsifiable: a model that posts a delivery closer than its link's
// registered latency must be flagged on the link's own rule, because the
// destination's horizon was computed trusting that latency.
func TestClusterLinkLawViolationDetected(t *testing.T) {
	chk := check.New()
	cl := NewCluster(2, 10)
	cl.AttachChecker(chk)
	box := cl.LinkMailbox(0, 1, 10)
	cl.Engine(1).At(0, func() {}) // pull engine 1 into the first round
	cl.Engine(0).At(5, func() {
		box.Post(6, func() {}) // lies about the link latency: 6 < 0 + 10? no — 6 < window start 0 + 10
	})
	cl.Run(2)
	found := false
	for _, v := range chk.Violations() {
		if v.Rule == "ordering/link-lookahead" {
			found = true
		}
	}
	if !found {
		t.Fatalf("per-link lookahead violation not detected; violations: %v", chk.Violations())
	}
}

// TestClusterLinkLawHonestModelClean is the property-test counterpart: a
// seeded random workload that always posts at or above each link's latency
// must produce zero violations and a worker-count-independent log, even with
// per-link latencies far above the cluster lookahead.
func TestClusterLinkLawHonestModelClean(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		run := func(workers int) (string, *check.Checker) {
			const devs = 5
			lats := []units.Time{20, 60, 20, 200, 35}
			chk := check.New()
			cl := NewCluster(devs, 20)
			cl.AttachChecker(chk)
			log := &ringLog{perDev: make([][]string, devs)}
			boxes := make([]*Mailbox, devs)
			for d := 0; d < devs; d++ {
				boxes[d] = cl.LinkMailbox(d, (d+1)%devs, lats[d])
			}
			rng := rand.New(rand.NewSource(seed))
			var burst func(dev, depth int) Handler
			burst = func(dev, depth int) Handler {
				eng := cl.Engine(dev)
				return func() {
					log.record(dev, eng.Now())
					if depth <= 0 {
						return
					}
					eng.After(units.Time(1+depth%5), func() { log.record(dev, eng.Now()) })
					boxes[dev].Post(eng.Now()+lats[dev]+units.Time(depth%17), burst((dev+1)%devs, depth-1))
				}
			}
			for d := 0; d < devs; d++ {
				cl.Engine(d).At(units.Time(rng.Intn(30)), burst(d, 30))
			}
			cl.Run(workers)
			return log.merged(), chk
		}
		want, chk := run(1)
		if !chk.Ok() {
			t.Fatalf("seed=%d: honest model flagged: %v", seed, chk.Violations())
		}
		for _, workers := range []int{2, 5} {
			got, chk := run(workers)
			if got != want {
				t.Errorf("seed=%d workers=%d: log diverged", seed, workers)
			}
			if !chk.Ok() {
				t.Errorf("seed=%d workers=%d: honest model flagged: %v", seed, workers, chk.Violations())
			}
		}
	}
}

// TestClusterDrainAllocs pins the coordination layer's steady-state
// allocation behaviour with live cross-engine mail: after warm-up, rounds of
// drain + horizon computation + dispatch must not allocate — mailbox backing
// arrays, the Dijkstra heap, the runnable set and the dirty list are all
// reused.
func TestClusterDrainAllocs(t *testing.T) {
	const devs = 8
	const hopsPerDev = 64
	cl := NewCluster(devs, 10)
	boxes := make([]*Mailbox, devs)
	for d := 0; d < devs; d++ {
		boxes[d] = cl.LinkMailbox(d, (d+1)%devs, 10)
	}
	// Handlers are preallocated once: each device forwards a fixed number of
	// tokens, re-arming itself across runs via the counts array.
	counts := make([]int, devs)
	handlers := make([]Handler, devs)
	for d := 0; d < devs; d++ {
		d := d
		eng := cl.Engine(d)
		handlers[d] = func() {
			if counts[d]--; counts[d] > 0 {
				boxes[d].Post(eng.Now()+10, handlers[(d+1)%devs])
			}
		}
	}
	// Seeding at a common base time makes every run an exact time-translate
	// of the previous one, so the steady state really is steady: identical
	// window structure, identical high-water marks, zero growth.
	seed := func() {
		var t0 units.Time
		for d := 0; d < devs; d++ {
			if now := cl.Engine(d).Now(); now > t0 {
				t0 = now
			}
		}
		for d := 0; d < devs; d++ {
			counts[d] = hopsPerDev
			cl.Engine(d).At(t0+units.Time(d+1), handlers[d])
		}
	}
	seed()
	cl.Run(1) // warm-up: grow every backing array once
	allocs := testing.AllocsPerRun(10, func() {
		seed()
		cl.Run(1)
	})
	if allocs > 0.5 {
		t.Errorf("steady-state window loop allocates %.2f allocs/run, want 0", allocs)
	}
}

// TestClusterPersistentWorkersStress hammers the condition-variable worker
// pool: many engines, many rounds, sparse runnable sets (so the wake clamp
// exercises partial signals), across repeated Runs reusing the pool state.
// Under -race this is the synchronization stress for the persistent-worker
// redesign; determinism rides along.
func TestClusterPersistentWorkersStress(t *testing.T) {
	const devs = 32
	run := func(workers int) string {
		cl := NewCluster(devs, 5)
		log := &ringLog{perDev: make([][]string, devs)}
		boxes := make([]*Mailbox, devs)
		for d := 0; d < devs; d++ {
			boxes[d] = cl.LinkMailbox(d, (d+3)%devs, units.Time(5+3*(d%4)))
		}
		var hop func(dev, n int) Handler
		hop = func(dev, n int) Handler {
			eng := cl.Engine(dev)
			return func() {
				log.record(dev, eng.Now())
				if n <= 0 {
					return
				}
				boxes[dev].Post(eng.Now()+units.Time(5+3*(dev%4)), hop((dev+3)%devs, n-1))
			}
		}
		// Only a few devices are active at a time: runnable sets stay small.
		for d := 0; d < devs; d += 11 {
			cl.Engine(d).At(units.Time(d), hop(d, 300))
		}
		cl.Run(workers)
		return log.merged()
	}
	want := run(1)
	for _, workers := range []int{2, 7, 16, devs} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d diverged under persistent-worker stress", workers)
		}
	}
}
