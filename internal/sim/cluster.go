package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"t3sim/internal/check"
	"t3sim/internal/units"
)

// never is the +infinity timestamp: the base time of an engine with an empty
// calendar, and the horizon of an engine no pending event can ever reach.
const never = units.Time(math.MaxInt64)

// Cluster coordinates one private Engine per device and advances them in
// bounded rounds — conservative (Chandy–Misra-style) parallel DES with
// null-message-style bounds recomputed each round instead of actual null
// messages.
//
// Dynamic per-device lookahead. Each round the coordinator computes, for
// every engine j, a lower bound B_j on the earliest time j can execute
// anything from the current state:
//
//	B_j = min( base_j, min over links s→j of (B_s + latency(s→j)) )
//
// where base_j is j's earliest pending event (never, if idle). This is a
// shortest-path relaxation over the link graph — computed with a multi-source
// Dijkstra seeded with the base times — and it must be transitive: a device
// whose direct neighbors are idle can still be reached by a pending event two
// hops away, so bounding by direct neighbors' base times alone would let it
// run past a future delivery. Engine i may then execute every event strictly
// before its horizon
//
//	H_i = min over links s→i of (B_s + latency(s→i))
//
// because any message a neighbor can still send departs no earlier than B_s
// and travels at least the link latency. A device whose neighbors are far in
// the future runs many global windows' worth of events in one round without
// synchronizing; a device with no inbound link at all (H = never) runs to
// completion. Mailboxes registered without a source (Mailbox, as opposed to
// LinkMailbox) admit posts from anywhere with only the cluster-wide lookahead
// guarantee, so they floor their destination's bound and horizon at
// min-over-all-engines(base) + lookahead — exactly the legacy global window.
//
// Progress: an engine holding the globally earliest event m is always
// runnable, because every B is at least m and every link latency is positive,
// so its horizon strictly exceeds m. Safety across rounds: H_i never
// decreases (bases only move forward between rounds), so RunBefore deadlines
// are monotone per engine.
//
// Determinism: cross-engine sends go through Mailboxes instead of Engine.At;
// the coordinator drains every mailbox at each round boundary —
// single-threaded, in mailbox registration order, (time, senderSeq)-sorted
// within a mailbox — so delivery order is a pure function of the model, never
// of goroutine scheduling or worker count. Engines remain strictly
// single-goroutine: within a round each runnable engine is driven by exactly
// one worker, and between rounds only the coordinator touches them.
type Cluster struct {
	lookahead units.Time
	engines   []*Engine
	boxes     []*Mailbox
	barrier   units.Time     // unattributed-mail floor of the last round (legacy global window)
	chk       *check.Checker // retained so late-registered mailboxes get link handles
	la        *check.Lookahead

	// Link topology, rebuilt lazily from boxes when Run starts.
	builtBoxes int
	in         [][]edge // per-engine inbound attributed links (peer = source)
	out        [][]edge // per-engine outbound attributed links (peer = destination)
	openInbox  []bool   // engine is the destination of an unattributed Mailbox

	// Per-round scratch, sized once and reused so steady-state rounds are
	// allocation-free.
	base     []units.Time // earliest pending event per engine (never = idle)
	baseTree minTree      // batched min reduction over base
	dirty    []bool       // base[i] may be stale (engine ran or received mail)
	dirtyIdx []int32
	bound    []units.Time // B_j of the current round
	horizons []units.Time // H_i of the current round
	heap     djHeap       // Dijkstra worklist
	runnable []int32      // engines with base < horizon this round
	prevNow  []units.Time // clock at round start, for window-width accounting

	stats ClusterStats

	// Persistent worker pool (workers > 1). Workers park on parCond between
	// rounds; the coordinator publishes a round under parMu and then waits on
	// idleCond until every worker is parked again and every claimed engine
	// has finished — the all-parked barrier that makes the shared scratch
	// slices safe to rebuild.
	parMu    sync.Mutex
	parCond  *sync.Cond
	idleCond *sync.Cond
	round    uint64
	parked   int
	done     int
	nworkers int
	stopping bool
	wg       sync.WaitGroup
	claim    atomic.Int64
	left     atomic.Int64
}

// edge is one attributed link endpoint adjacency entry.
type edge struct {
	peer int32
	lat  units.Time
}

// ClusterStats summarizes one Run's windowing behaviour: how many rounds the
// coordinator drove, how many engine-window executions those rounds issued
// (skipped engines don't count), and the total simulated time those
// executions covered. AvgWindowWidth is the lookahead-quality metric tracked
// across PRs: wider windows mean less synchronization per simulated second.
type ClusterStats struct {
	Windows       uint64     // coordinator rounds
	EngineWindows uint64     // per-engine window executions across all rounds
	Advance       units.Time // total simulated time advanced, summed over engines
}

// AvgWindowWidth returns the mean simulated time one engine advanced per
// window execution, or 0 for an empty run.
func (s ClusterStats) AvgWindowWidth() units.Time {
	if s.EngineWindows == 0 {
		return 0
	}
	return s.Advance / units.Time(s.EngineWindows)
}

// NewCluster returns a coordinator owning n fresh engines. The lookahead
// must be positive — a zero-latency link admits no conservative window, so
// callers with LinkLatency == 0 must fall back to a single shared engine.
func NewCluster(n int, lookahead units.Time) *Cluster {
	if n < 1 {
		panic(fmt.Sprintf("sim: cluster of %d engines", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	c := &Cluster{lookahead: lookahead, engines: make([]*Engine, n)}
	for i := range c.engines {
		c.engines[i] = NewEngine()
	}
	return c
}

// Engines returns the per-device engines, indexed by device.
func (c *Cluster) Engines() []*Engine { return c.engines }

// Engine returns the engine owned by device i.
func (c *Cluster) Engine(i int) *Engine { return c.engines[i] }

// Lookahead returns the cluster-wide minimum lookahead: the floor for every
// link latency, and the window width unattributed mailboxes fall back to.
func (c *Cluster) Lookahead() units.Time { return c.lookahead }

// Stats returns the windowing statistics accumulated by Run so far.
func (c *Cluster) Stats() ClusterStats { return c.stats }

// AttachChecker arms every engine's monotonicity witness plus the cluster's
// lookahead laws: the global-window law for unattributed mailboxes and the
// per-link law for attributed ones. A nil checker detaches.
func (c *Cluster) AttachChecker(chk *check.Checker) {
	c.chk = chk
	for _, e := range c.engines {
		e.AttachChecker(chk)
	}
	c.la = chk.Lookahead("sim.cluster")
	for _, b := range c.boxes {
		if b.src >= 0 {
			b.la = chk.Lookahead(fmt.Sprintf("sim.cluster.link%d-%d", b.src, b.dstIdx))
		}
	}
}

// mail is one cross-engine message: a handler to run on the destination
// engine at an absolute time, stamped with the sender's per-mailbox sequence
// number so same-timestamp messages keep their send order.
type mail struct {
	at  units.Time
	seq uint64
	fn  Handler
}

// Mailbox carries cross-engine messages toward one destination engine. A
// sender running inside a round calls Post instead of dst.At (which would
// race with the destination's worker); the coordinator drains the box at the
// next round boundary. Each mailbox is meant to serve a single logical sender
// (one ring link); the mutex exists so unrelated senders on other goroutines
// can post to *other* mailboxes concurrently while the race detector still
// sees a clean handoff to the coordinator.
type Mailbox struct {
	dst    *Engine
	dstIdx int32
	src    int32 // source engine index, or -1 for an unattributed mailbox
	srcEng *Engine
	lat    units.Time // registered minimum link latency (attributed only)

	winStart units.Time       // source clock at the previous drain
	la       *check.Lookahead // per-link law handle (attributed only)

	mu  sync.Mutex
	seq uint64
	in  []mail
}

// Mailbox registers and returns an unattributed mailbox delivering into
// device dst's engine: any goroutine may post to it, with only the
// cluster-wide lookahead guarantee. The destination therefore never advances
// past the legacy global window (earliest pending event anywhere +
// lookahead). Prefer LinkMailbox, which tells the scheduler which device
// posts and how much latency the link guarantees, so the destination can run
// ahead on its own per-link horizon. Registration order is drain order at
// each round, so callers must register mailboxes in a deterministic order at
// setup time.
func (c *Cluster) Mailbox(dst int) *Mailbox {
	b := &Mailbox{dst: c.engines[dst], dstIdx: int32(dst), src: -1}
	c.boxes = append(c.boxes, b)
	return b
}

// LinkMailbox registers and returns a mailbox for the directed link
// src → dst with the given minimum latency: every Post must come from code
// running on src's engine, timestamped at least minLatency after src's
// current time. In exchange the scheduler bounds dst by this link's law —
// B_src + minLatency — instead of the global window, which is what lets
// devices with distant neighbors run far ahead. minLatency below the cluster
// lookahead panics: the cluster-wide lookahead is defined as the minimum
// cross-engine latency, so a tighter link would falsify every unattributed
// bound already handed out.
func (c *Cluster) LinkMailbox(src, dst int, minLatency units.Time) *Mailbox {
	if src < 0 || src >= len(c.engines) || dst < 0 || dst >= len(c.engines) {
		panic(fmt.Sprintf("sim: link mailbox %d->%d outside cluster of %d", src, dst, len(c.engines)))
	}
	if src == dst {
		panic(fmt.Sprintf("sim: link mailbox %d->%d is a self-loop; use Engine.At for local events", src, dst))
	}
	if minLatency < c.lookahead {
		panic(fmt.Sprintf("sim: link latency %v below cluster lookahead %v", minLatency, c.lookahead))
	}
	b := &Mailbox{
		dst:    c.engines[dst],
		dstIdx: int32(dst),
		src:    int32(src),
		srcEng: c.engines[src],
		lat:    minLatency,
	}
	if c.chk != nil {
		b.la = c.chk.Lookahead(fmt.Sprintf("sim.cluster.link%d-%d", src, dst))
	}
	c.boxes = append(c.boxes, b)
	return b
}

// Post schedules fn on the destination engine at absolute time at. The
// message is held until the next round boundary; the conservative horizon
// guarantees at lands at or after the destination's clock.
func (b *Mailbox) Post(at units.Time, fn Handler) {
	if fn == nil {
		panic("sim: posting nil handler")
	}
	b.mu.Lock()
	b.seq++
	b.in = append(b.in, mail{at: at, seq: b.seq, fn: fn})
	b.mu.Unlock()
}

// sortMail orders messages by (time, sender seq) — insertion sort, since a
// round's worth of deliveries on one link is small and this keeps the drain
// path allocation-free.
func sortMail(ms []mail) {
	for i := 1; i < len(ms); i++ {
		m := ms[i]
		j := i - 1
		for j >= 0 && (ms[j].at > m.at || (ms[j].at == m.at && ms[j].seq > m.seq)) {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = m
	}
}

// drain moves every held message into its destination engine's calendar and
// rolls each attributed mailbox's posting window forward to its source's
// clock. Runs single-threaded at a round boundary: mailbox registration
// order, then (time, seq) within a mailbox, so delivery order is
// deterministic. The backing arrays are retained across drains, so a
// steady-state drain allocates nothing.
func (c *Cluster) drain() {
	for _, b := range c.boxes {
		b.mu.Lock()
		ms := b.in
		b.in = b.in[:0]
		b.mu.Unlock()
		attributed := b.src >= 0
		var start units.Time
		if attributed {
			// Everything in ms was posted while src ran from winStart; the
			// next batch is posted from src's current clock onward.
			start = b.winStart
			b.winStart = b.srcEng.Now()
		}
		if len(ms) == 0 {
			continue
		}
		sortMail(ms)
		for _, m := range ms {
			if attributed {
				b.la.ObserveLink(start, b.lat, m.at)
			} else {
				c.la.Observe(c.barrier, m.at)
			}
			at := m.at
			if at < b.dst.Now() {
				// Lookahead violated (already recorded): clamp so the run
				// can continue and surface every subsequent violation too.
				at = b.dst.Now()
			}
			b.dst.At(at, m.fn)
		}
		c.markDirty(b.dstIdx)
		// Zero the drained slots so the retained array doesn't pin handler
		// closures until the next time the box fills this far.
		for i := range ms {
			ms[i].fn = nil
		}
	}
}

// prepare sizes the per-round scratch state, rebuilds the link topology if
// mailboxes were registered since the last Run, and marks every base stale.
func (c *Cluster) prepare() {
	n := len(c.engines)
	if c.base == nil {
		c.base = make([]units.Time, n)
		c.bound = make([]units.Time, n)
		c.horizons = make([]units.Time, n)
		c.prevNow = make([]units.Time, n)
		c.dirty = make([]bool, n)
		c.dirtyIdx = make([]int32, 0, n)
		c.runnable = make([]int32, 0, n)
		c.baseTree = newMinTree(n)
		c.in = make([][]edge, n)
		c.out = make([][]edge, n)
		c.openInbox = make([]bool, n)
	}
	if c.builtBoxes != len(c.boxes) {
		for i := 0; i < n; i++ {
			c.in[i] = c.in[i][:0]
			c.out[i] = c.out[i][:0]
			c.openInbox[i] = false
		}
		for _, b := range c.boxes {
			if b.src < 0 {
				c.openInbox[b.dstIdx] = true
				continue
			}
			c.in[b.dstIdx] = append(c.in[b.dstIdx], edge{peer: b.src, lat: b.lat})
			c.out[b.src] = append(c.out[b.src], edge{peer: b.dstIdx, lat: b.lat})
		}
		c.builtBoxes = len(c.boxes)
	}
	for i := 0; i < n; i++ {
		c.markDirty(int32(i))
	}
}

// markDirty queues engine i for a base refresh at the next round.
func (c *Cluster) markDirty(i int32) {
	if !c.dirty[i] {
		c.dirty[i] = true
		c.dirtyIdx = append(c.dirtyIdx, i)
	}
}

// refreshBase re-reads NextAt for every engine that ran or received mail
// since the last round and pushes the new values through the min tree — the
// batched earliest-event reduction: engines that didn't move cost nothing.
func (c *Cluster) refreshBase() {
	for _, i := range c.dirtyIdx {
		c.dirty[i] = false
		at, ok := c.engines[i].NextAt()
		if !ok {
			at = never
		}
		c.base[i] = at
		c.baseTree.update(int(i), at)
	}
	c.dirtyIdx = c.dirtyIdx[:0]
}

// computeWindows derives this round's per-engine bounds B, horizons H, and
// the runnable set, given the globally earliest pending event baseMin.
//
// The bound pass is a multi-source Dijkstra: seed every engine with
// min(base, open-inbox floor) and relax through outbound links, so B_j ends
// at the earliest time any pending event anywhere can influence j. The
// horizon pass then takes, per engine, the minimum over inbound links of
// B_source + latency (floored by the open-inbox window), which is the first
// instant a not-yet-posted message could demand delivery.
func (c *Cluster) computeWindows(baseMin units.Time) {
	n := len(c.engines)
	open := baseMin + c.lookahead // unattributed floor; also this round's legacy barrier
	c.heap.reset()
	for i := 0; i < n; i++ {
		b := c.base[i]
		if c.openInbox[i] && open < b {
			b = open
		}
		c.bound[i] = b
		if b != never {
			c.heap.push(djItem{t: b, eng: int32(i)})
		}
	}
	for c.heap.len() > 0 {
		it := c.heap.pop()
		if it.t > c.bound[it.eng] {
			continue // stale entry superseded by a tighter bound
		}
		for _, e := range c.out[it.eng] {
			if nb := it.t + e.lat; nb < c.bound[e.peer] {
				c.bound[e.peer] = nb
				c.heap.push(djItem{t: nb, eng: e.peer})
			}
		}
	}
	c.runnable = c.runnable[:0]
	for i := 0; i < n; i++ {
		h := never
		for _, e := range c.in[i] {
			if b := c.bound[e.peer]; b != never && b+e.lat < h {
				h = b + e.lat
			}
		}
		if c.openInbox[i] && open < h {
			h = open
		}
		c.horizons[i] = h
		if c.base[i] < h {
			c.runnable = append(c.runnable, int32(i))
			c.prevNow[i] = c.engines[i].Now()
		}
	}
	c.barrier = open
}

// runEngine advances one runnable engine to its horizon — or, when no
// inbound link can ever reach it (horizon = never), to quiescence.
func (c *Cluster) runEngine(i int) {
	if h := c.horizons[i]; h == never {
		c.engines[i].Run()
	} else {
		c.engines[i].RunBefore(h)
	}
}

// accountRound records windowing statistics and marks every engine that ran
// as base-stale.
func (c *Cluster) accountRound() {
	c.stats.Windows++
	c.stats.EngineWindows += uint64(len(c.runnable))
	for _, i := range c.runnable {
		c.markDirty(i)
		c.stats.Advance += c.engines[i].Now() - c.prevNow[i]
	}
}

// horizon returns the furthest engine clock — the end of the last window the
// furthest engine executed. Models record completion times inside handlers;
// this value only bounds them.
func (c *Cluster) horizon() units.Time {
	var h units.Time
	for _, e := range c.engines {
		if e.Now() > h {
			h = e.Now()
		}
	}
	return h
}

// Run advances every engine to quiescence — no pending events, no held
// messages — using up to workers goroutines per round, and returns the
// furthest engine clock. workers <= 1 runs every round inline on the calling
// goroutine; either way the event order, and therefore the result, is
// identical: worker count only changes which goroutine drives an engine,
// never what the engine observes. Each round the effective parallelism is
// clamped to min(runnable engines, GOMAXPROCS), so idle workers stay parked
// instead of spinning on the round barrier and over-provisioned pools cost
// the same as right-sized ones.
func (c *Cluster) Run(workers int) units.Time {
	n := len(c.engines)
	if workers > n {
		workers = n
	}
	c.prepare()
	parallel := workers > 1
	if parallel {
		c.startWorkers(workers)
		defer c.stopWorkers()
	}
	for {
		c.drain()
		c.refreshBase()
		baseMin := c.baseTree.root()
		if baseMin == never {
			return c.horizon()
		}
		c.computeWindows(baseMin)
		if len(c.runnable) == 0 {
			// Unreachable: the engine holding baseMin always has a horizon
			// strictly beyond it (positive link latencies). Guard anyway so a
			// future invariant break fails loudly instead of spinning.
			panic("sim: cluster stalled with pending events")
		}
		if !parallel || len(c.runnable) == 1 {
			for _, i := range c.runnable {
				c.runEngine(int(i))
			}
		} else {
			c.dispatch()
		}
		c.accountRound()
	}
}

// startWorkers launches the persistent worker pool and blocks until every
// worker is parked, establishing the all-parked precondition dispatch relies
// on.
func (c *Cluster) startWorkers(workers int) {
	if c.parCond == nil {
		c.parCond = sync.NewCond(&c.parMu)
		c.idleCond = sync.NewCond(&c.parMu)
	}
	c.nworkers = workers
	c.stopping = false
	c.parked = 0
	c.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go c.workerLoop()
	}
	c.parMu.Lock()
	for c.parked != c.nworkers {
		c.idleCond.Wait()
	}
	c.parMu.Unlock()
}

// stopWorkers wakes every parked worker into the exit path and joins them.
func (c *Cluster) stopWorkers() {
	c.parMu.Lock()
	c.stopping = true
	c.parCond.Broadcast()
	c.parMu.Unlock()
	c.wg.Wait()
}

// workerLoop is one pool worker: park on parCond until the coordinator
// publishes a new round, claim runnable engines off the shared counter, and
// park again. A worker never touches an engine outside a claimed slot, and
// the coordinator never touches scratch state until every woken worker has
// re-entered Wait, so the only shared mutable state on the hot path is the
// two atomics.
func (c *Cluster) workerLoop() {
	defer c.wg.Done()
	c.parMu.Lock()
	c.parked++
	if c.parked == c.nworkers {
		c.idleCond.Signal()
	}
	seen := c.round
	for {
		for c.round == seen && !c.stopping {
			c.parCond.Wait()
		}
		if c.stopping {
			c.parMu.Unlock()
			return
		}
		seen = c.round
		c.parMu.Unlock()

		nr := int64(len(c.runnable))
		for {
			slot := c.claim.Add(1) - 1
			if slot >= nr {
				break
			}
			c.runEngine(int(c.runnable[slot]))
			c.left.Add(-1)
		}

		// Holding parMu from here until parCond.Wait releases it guarantees
		// the coordinator cannot observe this round's done count until this
		// worker is parked again with a fresh wait ticket.
		c.parMu.Lock()
		c.done++
		c.idleCond.Signal()
	}
}

// dispatch publishes the current runnable set to the pool, waking only as
// many workers as can do useful work — min(runnable, pool size, GOMAXPROCS);
// a wake beyond the processor count can never run concurrently, and the
// claim counter lets any awake worker drain every remaining slot — and waits
// until every woken worker has finished the round and re-parked. The
// completion predicate counts round completions (done) against the number of
// workers actually woken — not the parked count, which would be satisfied
// while a signaled worker is still on its way out of Wait and about to read
// the runnable set the coordinator is ready to overwrite.
func (c *Cluster) dispatch() {
	nr := len(c.runnable)
	c.claim.Store(0)
	c.left.Store(int64(nr))
	wake := nr
	if wake > c.nworkers {
		wake = c.nworkers
	}
	if p := runtime.GOMAXPROCS(0); wake > p {
		wake = p
	}
	c.parMu.Lock()
	c.done = 0
	c.round++
	if wake == c.nworkers {
		c.parCond.Broadcast()
	} else {
		for i := 0; i < wake; i++ {
			c.parCond.Signal()
		}
	}
	for c.done != wake || c.left.Load() != 0 {
		c.idleCond.Wait()
	}
	c.parMu.Unlock()
}

// minTree is a flat bottom-up segment tree over the per-engine base times:
// update is O(log n) along one root path, the global minimum is O(1) at the
// root. With only a few engines dirty per round this replaces the O(n) scan
// the old coordinator paid at every window.
type minTree struct {
	n    int
	node []units.Time // 1-based; node[1] is the root, leaves at node[size+i]
	size int
}

func newMinTree(n int) minTree {
	size := 1
	for size < n {
		size <<= 1
	}
	node := make([]units.Time, 2*size)
	for i := range node {
		node[i] = never
	}
	return minTree{n: n, node: node, size: size}
}

func (t *minTree) update(i int, v units.Time) {
	p := t.size + i
	if t.node[p] == v {
		return
	}
	t.node[p] = v
	for p >>= 1; p >= 1; p >>= 1 {
		m := t.node[2*p]
		if r := t.node[2*p+1]; r < m {
			m = r
		}
		if t.node[p] == m {
			break
		}
		t.node[p] = m
	}
}

func (t *minTree) root() units.Time { return t.node[1] }

// djItem is one Dijkstra worklist entry: a tentative bound for an engine.
type djItem struct {
	t   units.Time
	eng int32
}

// djHeap is a value-based binary min-heap with lazy deletion; the backing
// array is retained across rounds.
type djHeap struct {
	a []djItem
}

func (h *djHeap) reset()   { h.a = h.a[:0] }
func (h *djHeap) len() int { return len(h.a) }

func (h *djHeap) push(it djItem) {
	a := append(h.a, it)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].t <= it.t {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = it
	h.a = a
}

func (h *djHeap) pop() djItem {
	a := h.a
	top := a[0]
	n := len(a) - 1
	last := a[n]
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if c+1 < n && a[c+1].t < a[c].t {
				c++
			}
			if a[c].t >= last.t {
				break
			}
			a[i] = a[c]
			i = c
		}
		a[i] = last
	}
	h.a = a[:n]
	return top
}
