package sim

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"t3sim/internal/check"
	"t3sim/internal/units"
)

// never is the +infinity timestamp: the base time of an engine with an empty
// calendar, and the horizon of an engine no pending event can ever reach.
const never = units.Time(math.MaxInt64)

// ClusterSyncMode selects how the cluster coordinator synchronizes the
// per-device engines between rounds. Both modes compute the exact same
// per-round bounds, horizons and runnable sets — results are byte-identical
// across modes at every worker count; the knob trades coordinator overhead
// only.
type ClusterSyncMode uint8

const (
	// SyncAuto (the zero value) picks the mode from the registered link
	// graph's edge density when Run starts: appointment for sparse graphs
	// of at least 8 engines (directed edges <= engines*(engines-1)/3),
	// windowed otherwise. Dense graphs — a fully connected switch — touch
	// nearly every edge every round anyway, so the windowed recompute is
	// already proportional to the affected region and the appointment
	// bookkeeping would only add constants.
	SyncAuto ClusterSyncMode = iota
	// SyncWindowed recomputes every per-engine bound and horizon from
	// scratch each round with a full multi-source Dijkstra over the link
	// graph, and drains every registered mailbox at every round boundary.
	SyncWindowed
	// SyncAppointment maintains the same fixpoint incrementally via
	// per-edge appointments (null messages): each engine publishes, per
	// outbound link, a promise — the earliest time it can still deliver
	// into that link — refreshed only when its bound moves; a receiver's
	// horizon is the minimum promise over its inbound edges only. Rounds
	// drain only mailboxes that were actually posted to and relax only the
	// engines whose inputs changed, so coordinator cost tracks neighbour
	// activity instead of graph size.
	SyncAppointment
)

// String renders the mode as its CLI spelling.
func (m ClusterSyncMode) String() string {
	switch m {
	case SyncAuto:
		return "auto"
	case SyncWindowed:
		return "windowed"
	case SyncAppointment:
		return "appointment"
	}
	return fmt.Sprintf("ClusterSyncMode(%d)", int(m))
}

// ParseSyncMode parses the CLI spelling of a sync mode: auto | windowed |
// appointment.
func ParseSyncMode(s string) (ClusterSyncMode, error) {
	switch s {
	case "auto", "":
		return SyncAuto, nil
	case "windowed":
		return SyncWindowed, nil
	case "appointment":
		return SyncAppointment, nil
	}
	return SyncAuto, fmt.Errorf("sim: unknown sync mode %q (auto|windowed|appointment)", s)
}

// Cluster coordinates one private Engine per device and advances them in
// bounded rounds — conservative (Chandy–Misra-style) parallel DES.
//
// Dynamic per-device lookahead. Each round the coordinator computes, for
// every engine j, a lower bound B_j on the earliest time j can execute
// anything from the current state:
//
//	B_j = min( base_j, min over links s→j of (B_s + latency(s→j)) )
//
// where base_j is j's earliest pending event (never, if idle). This is a
// shortest-path relaxation over the link graph, and it must be transitive: a
// device whose direct neighbors are idle can still be reached by a pending
// event two hops away. Engine i may then execute every event strictly before
// its horizon
//
//	H_i = min over links s→i of (B_s + latency(s→i))
//
// because any message a neighbor can still send departs no earlier than B_s
// and travels at least the link latency. A device whose neighbors are far in
// the future runs many global windows' worth of events in one round without
// synchronizing; a device with no inbound link at all (H = never) runs to
// completion. Mailboxes registered without a source (Mailbox, as opposed to
// LinkMailbox) admit posts from anywhere with only the cluster-wide lookahead
// guarantee, so they floor their destination's bound and horizon at
// min-over-all-engines(base) + lookahead — exactly the legacy global window.
//
// Two synchronization modes compute that fixpoint (ClusterSyncMode):
// SyncWindowed re-derives every bound and horizon from scratch each round;
// SyncAppointment maintains them incrementally through per-edge promises
// B_s + latency (null messages), re-relaxing only the support-closure of the
// engines whose base moved and draining only the mailboxes actually posted
// to. Because both modes converge on the identical least fixpoint, the
// rounds, horizons, runnable sets and therefore the simulation results are
// byte-identical between modes.
//
// Progress: an engine holding the globally earliest event m is always
// runnable, because every B is at least m and every link latency is positive,
// so its horizon strictly exceeds m. Safety across rounds: H_i never
// decreases (bases only move forward between rounds), so RunBefore deadlines
// are monotone per engine.
//
// Determinism: cross-engine sends go through Mailboxes instead of Engine.At;
// the coordinator drains mailboxes at each round boundary — single-threaded,
// in mailbox registration order, (time, senderSeq)-sorted within a mailbox —
// so delivery order is a pure function of the model, never of goroutine
// scheduling or worker count. (Appointment mode skips empty mailboxes, which
// cannot change what is delivered; the drained subset is itself ordered by
// registration index.) Engines remain strictly single-goroutine: within a
// round each runnable engine is driven by exactly one worker, and between
// rounds only the coordinator touches them.
type Cluster struct {
	lookahead units.Time
	engines   []*Engine
	boxes     []*Mailbox
	barrier   units.Time     // unattributed-mail floor of the last round (legacy global window)
	chk       *check.Checker // retained so late-registered mailboxes get link handles
	la        *check.Lookahead

	mode       ClusterSyncMode // requested via SetSyncMode (zero = auto)
	resolved   ClusterSyncMode // windowed or appointment, fixed by prepare
	trackPosts bool            // appointment mode: mailboxes note first post per round

	// Link topology, rebuilt lazily from boxes when Run starts. Each
	// attributed mailbox is one directed edge, identified by a dense edge id
	// (eid) in mailbox registration order.
	builtBoxes int
	nEdges     int
	in         [][]edge // per-engine inbound attributed links (peer = source)
	out        [][]edge // per-engine outbound attributed links (peer = destination)
	openInbox  []bool   // engine is the destination of an unattributed Mailbox
	openNodes  []int32  // the engines with openInbox set
	edgeSrc    []int32  // per-eid endpoints, for diagnostics
	edgeDst    []int32

	// Per-round scratch, sized once and reused so steady-state rounds are
	// allocation-free.
	base     []units.Time // earliest pending event per engine (never = idle)
	baseTree minTree      // batched min reduction over base
	dirty    []bool       // base[i] may be stale (engine ran or received mail)
	dirtyIdx []int32
	bound    []units.Time // B_j of the current round
	horizons []units.Time // H_i of the current round (open floor applied)
	hsup     []int32      // inbound eid defining H_i; -2 open floor, -1 none
	heap     djHeap       // Dijkstra worklist
	runnable []int32      // engines with base < horizon this round
	prevNow  []units.Time // clock at round start, for window-width accounting

	// Appointment-mode state: per-edge promises and the support bookkeeping
	// that keeps the incremental fixpoint equal to the windowed one. All
	// preallocated (no per-round maps).
	prom     []units.Time // per-eid promise: bound[src] + lat (never if idle)
	lastPub  []units.Time // bound value last published to out promises (-1 = never published)
	sup      []int32      // eid supporting bound[i]; -1 own base, -2 open floor
	linkH    []units.Time // min over inbound promises (no open floor)
	linkHSup []int32      // inbound eid at that minimum; -1 none
	lastOpen units.Time   // open floor of the previous round (-1 = none yet)
	changed  []int32      // engines whose base value moved this round
	aMark    []bool       // affected set: bound must be re-derived
	aList    []int32
	candMark []bool // runnable-status re-evaluation candidates
	candList []int32
	// Receivers whose inbound-promise minimum weakened mid-pass: their
	// horizon is recomputed exactly once after the Dijkstra settle, so a
	// dense node pays O(indegree) per round instead of O(indegree) per
	// republish.
	hDirty     []bool
	hDirtyList []int32

	// Posted-mailbox tracking (appointment mode): per source engine, the
	// boxes it posted to since the last drain — single-writer per slice,
	// read by the coordinator after the round barrier.
	postedBy   [][]int32
	openMu     sync.Mutex
	openPosted []int32 // unattributed boxes posted to (any goroutine)
	drainList  []int32
	firstDrain bool

	// Stall accounting (both modes): engines pending but not runnable, and
	// the inbound edge whose promise pins them.
	blockedMark     []bool
	blockedPos      []int32
	blockedList     []int32
	edgeStallRounds []uint64
	edgeStallTime   []units.Time

	stats ClusterStats

	// Persistent worker pool (workers > 1). Workers park on parCond between
	// rounds; the coordinator publishes a round under parMu and then waits on
	// idleCond until every worker is parked again and every claimed engine
	// has finished — the all-parked barrier that makes the shared scratch
	// slices safe to rebuild.
	parMu    sync.Mutex
	parCond  *sync.Cond
	idleCond *sync.Cond
	round    uint64
	parked   int
	done     int
	nworkers int
	stopping bool
	wg       sync.WaitGroup
	claim    atomic.Int64
	left     atomic.Int64
}

// edge is one attributed link endpoint adjacency entry.
type edge struct {
	peer int32
	eid  int32 // dense edge id, indexing prom / edgeStall*
	lat  units.Time
}

// ClusterStats summarizes one Run's windowing behaviour: how many rounds the
// coordinator drove, how many engine-window executions those rounds issued
// (skipped engines don't count), and the total simulated time those
// executions covered. AvgWindowWidth is the lookahead-quality metric tracked
// across PRs: wider windows mean less synchronization per simulated second.
//
// Every field except Mode and NullMessages is identical across sync modes
// (the two modes run the same rounds); every field is identical across
// worker counts.
type ClusterStats struct {
	Mode          ClusterSyncMode // mode the last Run resolved to
	Windows       uint64          // coordinator rounds
	EngineWindows uint64          // per-engine window executions across all rounds
	Advance       units.Time      // total simulated time advanced, summed over engines
	// NullMessages counts per-edge promise refreshes — the appointment
	// protocol's null-message traffic. Zero in windowed mode, which keeps
	// no promises.
	NullMessages uint64
	// StalledEngineWindows counts engine-rounds spent blocked: an engine
	// with pending events whose horizon had not yet passed its next event.
	StalledEngineWindows uint64
	// StallTime sums, over those blocked engine-rounds, the gap between the
	// engine's next pending event and the horizon its limiting inbound edge
	// admitted. A ranking metric for how hard synchronization gated
	// progress — not an additive wall-clock quantity.
	StallTime units.Time
}

// AvgWindowWidth returns the mean simulated time one engine advanced per
// window execution, or 0 for an empty run.
func (s ClusterStats) AvgWindowWidth() units.Time {
	if s.EngineWindows == 0 {
		return 0
	}
	return s.Advance / units.Time(s.EngineWindows)
}

// EdgeStall reports one directed link's stall account: how many blocked
// engine-rounds it was the limiting inbound edge for, and the summed
// base-minus-horizon gap over those rounds. Which edge gets the blame on an
// exact promise tie is mode-dependent (the aggregate ClusterStats are not).
type EdgeStall struct {
	Src, Dst     int
	StallWindows uint64
	StallTime    units.Time
}

// EdgeStalls returns the per-edge stall accounts accumulated by Run so far,
// in canonical edge (mailbox registration) order, omitting edges that never
// stalled anyone. Diagnostic: allocates, call it after Run.
func (c *Cluster) EdgeStalls() []EdgeStall {
	var out []EdgeStall
	for eid := 0; eid < c.nEdges; eid++ {
		if c.edgeStallRounds[eid] == 0 {
			continue
		}
		out = append(out, EdgeStall{
			Src:          int(c.edgeSrc[eid]),
			Dst:          int(c.edgeDst[eid]),
			StallWindows: c.edgeStallRounds[eid],
			StallTime:    c.edgeStallTime[eid],
		})
	}
	return out
}

// NewCluster returns a coordinator owning n fresh engines. The lookahead
// must be positive — a zero-latency link admits no conservative window, so
// callers with LinkLatency == 0 must fall back to a single shared engine.
func NewCluster(n int, lookahead units.Time) *Cluster {
	if n < 1 {
		panic(fmt.Sprintf("sim: cluster of %d engines", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	c := &Cluster{lookahead: lookahead, engines: make([]*Engine, n)}
	for i := range c.engines {
		c.engines[i] = NewEngine()
	}
	return c
}

// Engines returns the per-device engines, indexed by device.
func (c *Cluster) Engines() []*Engine { return c.engines }

// Engine returns the engine owned by device i.
func (c *Cluster) Engine(i int) *Engine { return c.engines[i] }

// Lookahead returns the cluster-wide minimum lookahead: the floor for every
// link latency, and the window width unattributed mailboxes fall back to.
func (c *Cluster) Lookahead() units.Time { return c.lookahead }

// Stats returns the windowing statistics accumulated by Run so far.
func (c *Cluster) Stats() ClusterStats { return c.stats }

// SetSyncMode selects the coordinator's synchronization strategy for the
// next Run. The zero value (SyncAuto) resolves from the registered link
// graph's edge density when Run starts; the resolved mode is reported in
// Stats().Mode. Call before Run, not during it. Results are byte-identical
// in every mode.
func (c *Cluster) SetSyncMode(m ClusterSyncMode) { c.mode = m }

// AttachChecker arms every engine's monotonicity witness plus the cluster's
// lookahead laws: the global-window law for unattributed mailboxes and the
// per-link law for attributed ones. A nil checker detaches.
func (c *Cluster) AttachChecker(chk *check.Checker) {
	c.chk = chk
	for _, e := range c.engines {
		e.AttachChecker(chk)
	}
	c.la = chk.Lookahead("sim.cluster")
	for _, b := range c.boxes {
		if b.src >= 0 {
			b.la = chk.Lookahead(fmt.Sprintf("sim.cluster.link%d-%d", b.src, b.dstIdx))
		}
	}
}

// mail is one cross-engine message: a handler to run on the destination
// engine at an absolute time, stamped with the sender's per-mailbox sequence
// number so same-timestamp messages keep their send order.
type mail struct {
	at  units.Time
	seq uint64
	fn  Handler
}

// Mailbox carries cross-engine messages toward one destination engine. A
// sender running inside a round calls Post instead of dst.At (which would
// race with the destination's worker); the coordinator drains the box at the
// next round boundary. Each mailbox is meant to serve a single logical sender
// (one ring link); the mutex exists so unrelated senders on other goroutines
// can post to *other* mailboxes concurrently while the race detector still
// sees a clean handoff to the coordinator.
type Mailbox struct {
	cl     *Cluster
	dst    *Engine
	dstIdx int32
	bidx   int32 // index in cl.boxes: the canonical drain order
	src    int32 // source engine index, or -1 for an unattributed mailbox
	srcEng *Engine
	eid    int32      // edge id (attributed only; -1 before prepare)
	lat    units.Time // registered minimum link latency (attributed only)

	winStart units.Time       // source clock at the previous drain
	la       *check.Lookahead // per-link law handle (attributed only)

	mu     sync.Mutex
	posted bool // has undrained mail (tracked in appointment mode)
	seq    uint64
	in     []mail
}

// Mailbox registers and returns an unattributed mailbox delivering into
// device dst's engine: any goroutine may post to it, with only the
// cluster-wide lookahead guarantee. The destination therefore never advances
// past the legacy global window (earliest pending event anywhere +
// lookahead). Prefer LinkMailbox, which tells the scheduler which device
// posts and how much latency the link guarantees, so the destination can run
// ahead on its own per-link horizon. Registration order is drain order at
// each round, so callers must register mailboxes in a deterministic order at
// setup time.
func (c *Cluster) Mailbox(dst int) *Mailbox {
	b := &Mailbox{cl: c, dst: c.engines[dst], dstIdx: int32(dst), bidx: int32(len(c.boxes)), src: -1, eid: -1}
	c.boxes = append(c.boxes, b)
	return b
}

// LinkMailbox registers and returns a mailbox for the directed link
// src → dst with the given minimum latency: every Post must come from code
// running on src's engine, timestamped at least minLatency after src's
// current time. In exchange the scheduler bounds dst by this link's law —
// B_src + minLatency — instead of the global window, which is what lets
// devices with distant neighbors run far ahead. minLatency below the cluster
// lookahead panics: the cluster-wide lookahead is defined as the minimum
// cross-engine latency, so a tighter link would falsify every unattributed
// bound already handed out.
func (c *Cluster) LinkMailbox(src, dst int, minLatency units.Time) *Mailbox {
	if src < 0 || src >= len(c.engines) || dst < 0 || dst >= len(c.engines) {
		panic(fmt.Sprintf("sim: link mailbox %d->%d outside cluster of %d", src, dst, len(c.engines)))
	}
	if src == dst {
		panic(fmt.Sprintf("sim: link mailbox %d->%d is a self-loop; use Engine.At for local events", src, dst))
	}
	if minLatency < c.lookahead {
		panic(fmt.Sprintf("sim: link latency %v below cluster lookahead %v", minLatency, c.lookahead))
	}
	b := &Mailbox{
		cl:     c,
		dst:    c.engines[dst],
		dstIdx: int32(dst),
		bidx:   int32(len(c.boxes)),
		src:    int32(src),
		srcEng: c.engines[src],
		eid:    -1,
		lat:    minLatency,
	}
	if c.chk != nil {
		b.la = c.chk.Lookahead(fmt.Sprintf("sim.cluster.link%d-%d", src, dst))
	}
	c.boxes = append(c.boxes, b)
	return b
}

// Post schedules fn on the destination engine at absolute time at. The
// message is held until the next round boundary; the conservative horizon
// guarantees at lands at or after the destination's clock.
func (b *Mailbox) Post(at units.Time, fn Handler) {
	if fn == nil {
		panic("sim: posting nil handler")
	}
	b.mu.Lock()
	b.seq++
	b.in = append(b.in, mail{at: at, seq: b.seq, fn: fn})
	first := !b.posted
	b.posted = true
	b.mu.Unlock()
	if first && b.cl.trackPosts {
		b.cl.notePosted(b)
	}
}

// notePosted records that b holds mail since the last drain. Attributed
// boxes are only ever posted from code running on their source engine, so
// the per-source list is single-writer within a round; unattributed boxes
// admit posts from anywhere and go through a mutex.
func (c *Cluster) notePosted(b *Mailbox) {
	if b.src >= 0 {
		if int(b.src) < len(c.postedBy) {
			c.postedBy[b.src] = append(c.postedBy[b.src], b.bidx)
		}
		return
	}
	c.openMu.Lock()
	c.openPosted = append(c.openPosted, b.bidx)
	c.openMu.Unlock()
}

// sortMail orders messages by (time, sender seq) — insertion sort, since a
// round's worth of deliveries on one link is small and this keeps the drain
// path allocation-free.
func sortMail(ms []mail) {
	for i := 1; i < len(ms); i++ {
		m := ms[i]
		j := i - 1
		for j >= 0 && (ms[j].at > m.at || (ms[j].at == m.at && ms[j].seq > m.seq)) {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = m
	}
}

// drain moves held messages into their destination engines' calendars at a
// round boundary. Windowed mode sweeps every registered mailbox; appointment
// mode visits only the boxes posted to since the last drain (collected from
// the engines that ran — the only possible posters — plus the unattributed
// list), sorted back into registration order so the delivery order stays the
// deterministic subset of the windowed sweep. The first drain of a Run
// always sweeps everything: setup code may have posted before tracking was
// armed.
func (c *Cluster) drain() {
	if c.trackPosts && !c.firstDrain {
		c.drainList = c.drainList[:0]
		for _, i := range c.runnable { // last round's runnable: the only engines that ran
			pb := c.postedBy[i]
			if len(pb) == 0 {
				continue
			}
			c.drainList = append(c.drainList, pb...)
			c.postedBy[i] = pb[:0]
		}
		c.openMu.Lock()
		c.drainList = append(c.drainList, c.openPosted...)
		c.openPosted = c.openPosted[:0]
		c.openMu.Unlock()
		if len(c.drainList) == 0 {
			return
		}
		slices.Sort(c.drainList)
		for _, bi := range c.drainList {
			c.drainBox(c.boxes[bi])
		}
		return
	}
	for _, b := range c.boxes {
		c.drainBox(b)
	}
	if c.trackPosts {
		c.firstDrain = false
		for i := range c.postedBy {
			c.postedBy[i] = c.postedBy[i][:0]
		}
		c.openMu.Lock()
		c.openPosted = c.openPosted[:0]
		c.openMu.Unlock()
	}
}

// drainBox empties one mailbox into its destination engine: (time, seq)
// sorted, lookahead laws observed, late deliveries clamped. The backing
// array is retained, so a steady-state drain allocates nothing.
func (c *Cluster) drainBox(b *Mailbox) {
	b.mu.Lock()
	ms := b.in
	b.in = b.in[:0]
	b.posted = false
	b.mu.Unlock()
	attributed := b.src >= 0
	var start units.Time
	if attributed {
		// Everything in ms was posted while src ran from winStart; the
		// next batch is posted from src's current clock onward.
		start = b.winStart
		b.winStart = b.srcEng.Now()
	}
	if len(ms) == 0 {
		return
	}
	sortMail(ms)
	// In appointment mode the receiver's last horizon was derived from this
	// edge's promise as of the previous relax — exactly c.prom[b.eid] right
	// now, since relaxation runs after the drain. A delivery before it means
	// the sender broke its appointment.
	appt := attributed && c.trackPosts && !c.firstDrain
	var promised units.Time
	if appt {
		promised = c.prom[b.eid]
	}
	for _, m := range ms {
		if attributed {
			b.la.ObserveLink(start, b.lat, m.at)
			if appt {
				b.la.ObservePromise(promised, m.at)
			}
		} else {
			c.la.Observe(c.barrier, m.at)
		}
		at := m.at
		if at < b.dst.Now() {
			// Lookahead violated (already recorded): clamp so the run
			// can continue and surface every subsequent violation too.
			at = b.dst.Now()
		}
		b.dst.At(at, m.fn)
	}
	c.markDirty(b.dstIdx)
	// Zero the drained slots so the retained array doesn't pin handler
	// closures until the next time the box fills this far.
	for i := range ms {
		ms[i].fn = nil
	}
}

// prepare sizes the per-round scratch state, rebuilds the link topology if
// mailboxes were registered since the last Run, resolves the sync mode, and
// marks every base stale.
func (c *Cluster) prepare() {
	n := len(c.engines)
	if c.base == nil {
		c.base = make([]units.Time, n)
		c.bound = make([]units.Time, n)
		c.horizons = make([]units.Time, n)
		c.hsup = make([]int32, n)
		c.prevNow = make([]units.Time, n)
		c.dirty = make([]bool, n)
		c.dirtyIdx = make([]int32, 0, n)
		c.runnable = make([]int32, 0, n)
		c.baseTree = newMinTree(n)
		c.in = make([][]edge, n)
		c.out = make([][]edge, n)
		c.openInbox = make([]bool, n)
		c.sup = make([]int32, n)
		c.linkH = make([]units.Time, n)
		c.linkHSup = make([]int32, n)
		c.lastPub = make([]units.Time, n)
		c.changed = make([]int32, 0, n)
		c.aMark = make([]bool, n)
		c.aList = make([]int32, 0, n)
		c.candMark = make([]bool, n)
		c.candList = make([]int32, 0, n)
		c.hDirty = make([]bool, n)
		c.hDirtyList = make([]int32, 0, n)
		c.blockedMark = make([]bool, n)
		c.blockedPos = make([]int32, n)
		c.blockedList = make([]int32, 0, n)
		c.postedBy = make([][]int32, n)
	}
	if c.builtBoxes != len(c.boxes) {
		for i := 0; i < n; i++ {
			c.in[i] = c.in[i][:0]
			c.out[i] = c.out[i][:0]
			c.openInbox[i] = false
		}
		c.openNodes = c.openNodes[:0]
		c.edgeSrc = c.edgeSrc[:0]
		c.edgeDst = c.edgeDst[:0]
		eid := int32(0)
		for _, b := range c.boxes {
			if b.src < 0 {
				if !c.openInbox[b.dstIdx] {
					c.openInbox[b.dstIdx] = true
					c.openNodes = append(c.openNodes, b.dstIdx)
				}
				continue
			}
			b.eid = eid
			c.in[b.dstIdx] = append(c.in[b.dstIdx], edge{peer: b.src, eid: eid, lat: b.lat})
			c.out[b.src] = append(c.out[b.src], edge{peer: b.dstIdx, eid: eid, lat: b.lat})
			c.edgeSrc = append(c.edgeSrc, b.src)
			c.edgeDst = append(c.edgeDst, b.dstIdx)
			eid++
		}
		c.nEdges = int(eid)
		c.prom = make([]units.Time, c.nEdges)
		c.edgeStallRounds = make([]uint64, c.nEdges)
		c.edgeStallTime = make([]units.Time, c.nEdges)
		c.drainList = make([]int32, 0, len(c.boxes))
		for i := 0; i < n; i++ {
			if cap(c.postedBy[i]) < len(c.out[i]) {
				c.postedBy[i] = make([]int32, 0, len(c.out[i]))
			}
		}
		c.builtBoxes = len(c.boxes)
	}
	c.resolved = c.mode
	if c.resolved == SyncAuto {
		if n >= 8 && 3*c.nEdges <= n*(n-1) {
			c.resolved = SyncAppointment
		} else {
			c.resolved = SyncWindowed
		}
	}
	c.trackPosts = c.resolved == SyncAppointment
	c.stats.Mode = c.resolved
	// Reset the incremental state: every engine re-seeds on the first round
	// (base forced to an impossible value so refreshBase flags it changed),
	// every promise is vacuous until first published, and the posted/blocked
	// tracking starts empty.
	c.firstDrain = true
	c.lastOpen = -1
	c.changed = c.changed[:0]
	for _, i := range c.aList {
		c.aMark[i] = false
	}
	c.aList = c.aList[:0]
	for _, i := range c.candList {
		c.candMark[i] = false
	}
	c.candList = c.candList[:0]
	for _, i := range c.hDirtyList {
		c.hDirty[i] = false
	}
	c.hDirtyList = c.hDirtyList[:0]
	for _, i := range c.blockedList {
		c.blockedMark[i] = false
	}
	c.blockedList = c.blockedList[:0]
	for i := range c.prom {
		c.prom[i] = 0
	}
	for i := 0; i < n; i++ {
		c.base[i] = -1
		c.lastPub[i] = -1
		c.sup[i] = -1
		c.linkH[i] = never
		c.linkHSup[i] = -1
		c.hsup[i] = -1
		c.markDirty(int32(i))
	}
}

// markDirty queues engine i for a base refresh at the next round.
func (c *Cluster) markDirty(i int32) {
	if !c.dirty[i] {
		c.dirty[i] = true
		c.dirtyIdx = append(c.dirtyIdx, i)
	}
}

// refreshBase re-reads NextAt for every engine that ran or received mail
// since the last round and pushes the new values through the min tree — the
// batched earliest-event reduction: engines that didn't move cost nothing.
// Engines whose base actually moved are recorded for the appointment mode's
// incremental relaxation.
func (c *Cluster) refreshBase() {
	for _, i := range c.dirtyIdx {
		c.dirty[i] = false
		at, ok := c.engines[i].NextAt()
		if !ok {
			at = never
		}
		if at != c.base[i] {
			c.base[i] = at
			c.baseTree.update(int(i), at)
			if c.trackPosts {
				c.changed = append(c.changed, i)
			}
		}
	}
	c.dirtyIdx = c.dirtyIdx[:0]
}

// computeWindows derives this round's per-engine bounds B, horizons H, and
// the runnable set from scratch (SyncWindowed), given the globally earliest
// pending event baseMin.
//
// The bound pass is a multi-source Dijkstra: seed every engine with
// min(base, open-inbox floor) and relax through outbound links, so B_j ends
// at the earliest time any pending event anywhere can influence j. The
// horizon pass then takes, per engine, the minimum over inbound links of
// B_source + latency (floored by the open-inbox window), which is the first
// instant a not-yet-posted message could demand delivery.
func (c *Cluster) computeWindows(baseMin units.Time) {
	n := len(c.engines)
	open := baseMin + c.lookahead // unattributed floor; also this round's legacy barrier
	c.heap.reset()
	for i := 0; i < n; i++ {
		b := c.base[i]
		if c.openInbox[i] && open < b {
			b = open
		}
		c.bound[i] = b
		if b != never {
			c.heap.push(djItem{t: b, eng: int32(i)})
		}
	}
	for c.heap.len() > 0 {
		it := c.heap.pop()
		if it.t > c.bound[it.eng] {
			continue // stale entry superseded by a tighter bound
		}
		for _, e := range c.out[it.eng] {
			if nb := it.t + e.lat; nb < c.bound[e.peer] {
				c.bound[e.peer] = nb
				c.heap.push(djItem{t: nb, eng: e.peer})
			}
		}
	}
	c.runnable = c.runnable[:0]
	for i := 0; i < n; i++ {
		h := never
		hs := int32(-1)
		for _, e := range c.in[i] {
			if b := c.bound[e.peer]; b != never && b+e.lat < h {
				h = b + e.lat
				hs = e.eid
			}
		}
		if c.openInbox[i] && open < h {
			h, hs = open, -2
		}
		c.horizons[i] = h
		c.hsup[i] = hs
		if c.base[i] < h {
			c.runnable = append(c.runnable, int32(i))
			c.prevNow[i] = c.engines[i].Now()
			c.setBlocked(int32(i), false)
		} else {
			c.setBlocked(int32(i), c.base[i] != never && h != never)
		}
	}
	c.barrier = open
}

// addAffected puts engine i into the affected set: its bound must be
// re-derived this round. Affected engines are runnable-candidates too.
func (c *Cluster) addAffected(i int32) {
	if !c.aMark[i] {
		c.aMark[i] = true
		c.aList = append(c.aList, i)
		c.addCand(i)
	}
}

// addCand queues engine i for runnable-status re-evaluation this round.
func (c *Cluster) addCand(i int32) {
	if !c.candMark[i] {
		c.candMark[i] = true
		c.candList = append(c.candList, i)
	}
}

// markHorizonDirty schedules engine j's inbound-promise minimum for one
// exact recompute after the settle pass. While dirty, linkH[j] is stale and
// no O(1) patches are applied; the deferred recompute reads the final
// promises, so the end-of-round horizon is identical to eager maintenance
// but a dense node pays O(indegree) once instead of per republish.
func (c *Cluster) markHorizonDirty(j int32) {
	if !c.hDirty[j] {
		c.hDirty[j] = true
		c.hDirtyList = append(c.hDirtyList, j)
	}
}

// recomputeLinkHorizon re-derives engine j's inbound-promise minimum after
// its supporting promise weakened — the one O(indegree) fallback of the
// otherwise O(1) horizon maintenance.
func (c *Cluster) recomputeLinkHorizon(j int32) {
	h, hs := never, int32(-1)
	for _, e := range c.in[j] {
		if p := c.prom[e.eid]; p < h {
			h, hs = p, e.eid
		}
	}
	c.linkH[j] = h
	c.linkHSup[j] = hs
	c.addCand(j)
}

// settle finalizes engine i's bound during the incremental relaxation: if
// the bound moved since last published, refresh the promise on every
// outbound edge (one null message each) and maintain the receivers'
// horizons; always attempt to relax the receivers' bounds, because an
// affected receiver may have been seeded without this (unchanged) edge.
func (c *Cluster) settle(i int32) {
	nb := c.bound[i]
	pub := nb != c.lastPub[i]
	if pub {
		c.lastPub[i] = nb
	}
	for _, e := range c.out[i] {
		p := nb + e.lat
		if pub && c.prom[e.eid] != p {
			c.prom[e.eid] = p
			c.stats.NullMessages++
			j := e.peer
			if c.hDirty[j] {
				// already scheduled for an exact end-of-pass recompute
			} else if p < c.linkH[j] {
				c.linkH[j] = p
				c.linkHSup[j] = e.eid
				c.addCand(j)
			} else if c.linkHSup[j] == e.eid && p > c.linkH[j] {
				c.markHorizonDirty(j)
			}
		}
		if p < c.bound[e.peer] {
			c.bound[e.peer] = p
			c.sup[e.peer] = e.eid
			c.heap.push(djItem{t: p, eng: e.peer})
		}
	}
}

// settleNever publishes the idle promise (never) on every outbound edge of
// an engine whose bound rose to never — it was seeded unreachable and
// nothing relaxed it back down.
func (c *Cluster) settleNever(i int32) {
	if c.lastPub[i] == never {
		return
	}
	c.lastPub[i] = never
	for _, e := range c.out[i] {
		if c.prom[e.eid] == never {
			continue
		}
		c.prom[e.eid] = never
		c.stats.NullMessages++
		j := e.peer
		if !c.hDirty[j] && c.linkHSup[j] == e.eid {
			c.markHorizonDirty(j)
		}
	}
}

// computeWindowsAppointment maintains the same bounds, horizons and runnable
// set as computeWindows, incrementally (SyncAppointment).
//
// The affected set A is the support closure of the engines whose base moved
// (plus every open-inbox engine when the global floor moved): any engine
// whose stored bound is supported — directly or transitively — by a member
// of A may need a new value; everyone else's bound can only decrease, which
// plain relaxation handles. A is re-seeded from its own bases and the
// promises of unaffected neighbours, then a Dijkstra pass settles the
// region: each settled engine whose bound moved republishes its outbound
// promises (the null messages) and patches the receivers' horizons in O(1)
// per edge; a horizon whose supporting promise weakened is marked dirty and
// recomputed exactly once after the pass, so the per-round horizon cost is
// bounded by O(total indegree). Runnable status is then re-evaluated only for
// engines whose base or horizon changed — which provably covers every
// engine whose status could have flipped, because runnable engines always
// run and so always land in the next round's affected set.
func (c *Cluster) computeWindowsAppointment(baseMin units.Time) {
	open := baseMin + c.lookahead
	for _, i := range c.changed {
		c.addAffected(i)
	}
	if len(c.openNodes) > 0 && open != c.lastOpen {
		for _, i := range c.openNodes {
			c.addAffected(i)
		}
	}
	c.lastOpen = open
	c.changed = c.changed[:0]
	// Support closure: pull in every engine whose bound rests on an
	// affected engine's (possibly raised) bound. Once the whole cluster is
	// affected the closure can add nothing — stop scanning.
	n := len(c.engines)
	for k := 0; k < len(c.aList) && len(c.aList) < n; k++ {
		i := c.aList[k]
		for _, e := range c.out[i] {
			if !c.aMark[e.peer] && c.sup[e.peer] == e.eid {
				c.addAffected(e.peer)
			}
		}
	}
	// Re-seed the affected region from first principles: own base, the open
	// floor, and promises from *unaffected* sources (whose bounds are
	// final). Affected sources re-relax their edges when they settle; when
	// everything is affected there are no unaffected sources, so the inbound
	// promise scan is skipped wholesale.
	allAffected := len(c.aList) == n
	c.heap.reset()
	for _, i := range c.aList {
		s, sp := c.base[i], int32(-1)
		if c.openInbox[i] && open < s {
			s, sp = open, -2
		}
		if !allAffected {
			for _, e := range c.in[i] {
				if !c.aMark[e.peer] {
					if p := c.prom[e.eid]; p < s {
						s, sp = p, e.eid
					}
				}
			}
		}
		c.bound[i] = s
		c.sup[i] = sp
		if s != never {
			c.heap.push(djItem{t: s, eng: i})
		}
	}
	for c.heap.len() > 0 {
		it := c.heap.pop()
		if it.t > c.bound[it.eng] {
			continue // stale entry superseded by a tighter bound
		}
		c.settle(it.eng)
	}
	// Affected engines that stayed unreachable never entered the heap, but
	// their outbound promises may still say otherwise from an earlier round.
	for _, i := range c.aList {
		if c.bound[i] == never {
			c.settleNever(i)
		}
	}
	for _, j := range c.hDirtyList {
		c.hDirty[j] = false
		c.recomputeLinkHorizon(j)
	}
	c.hDirtyList = c.hDirtyList[:0]
	c.barrier = open
	// Re-evaluate exactly the engines whose base or horizon moved, in index
	// order (matching the windowed full scan).
	slices.Sort(c.candList)
	c.runnable = c.runnable[:0]
	for _, i := range c.candList {
		c.candMark[i] = false
		h, hs := c.linkH[i], c.linkHSup[i]
		if c.openInbox[i] && open < h {
			h, hs = open, -2
		}
		c.horizons[i] = h
		c.hsup[i] = hs
		if c.base[i] < h {
			c.runnable = append(c.runnable, i)
			c.prevNow[i] = c.engines[i].Now()
			c.setBlocked(i, false)
		} else {
			c.setBlocked(i, c.base[i] != never && h != never)
		}
	}
	c.candList = c.candList[:0]
	for _, i := range c.aList {
		c.aMark[i] = false
	}
	c.aList = c.aList[:0]
}

// setBlocked maintains the blocked-engine set: engines with pending events
// that this round's horizon refused to release.
func (c *Cluster) setBlocked(i int32, blocked bool) {
	if blocked == c.blockedMark[i] {
		return
	}
	c.blockedMark[i] = blocked
	if blocked {
		c.blockedPos[i] = int32(len(c.blockedList))
		c.blockedList = append(c.blockedList, i)
		return
	}
	p := c.blockedPos[i]
	last := c.blockedList[len(c.blockedList)-1]
	c.blockedList[p] = last
	c.blockedPos[last] = p
	c.blockedList = c.blockedList[:len(c.blockedList)-1]
}

// runEngine advances one runnable engine to its horizon — or, when no
// inbound link can ever reach it (horizon = never), to quiescence.
func (c *Cluster) runEngine(i int) {
	if h := c.horizons[i]; h == never {
		c.engines[i].Run()
	} else {
		c.engines[i].RunBefore(h)
	}
}

// accountRound records windowing and stall statistics and marks every
// engine that ran as base-stale.
func (c *Cluster) accountRound() {
	c.stats.Windows++
	c.stats.EngineWindows += uint64(len(c.runnable))
	for _, i := range c.runnable {
		c.markDirty(i)
		c.stats.Advance += c.engines[i].Now() - c.prevNow[i]
	}
	for _, i := range c.blockedList {
		gap := c.base[i] - c.horizons[i]
		c.stats.StalledEngineWindows++
		c.stats.StallTime += gap
		if eid := c.hsup[i]; eid >= 0 {
			c.edgeStallRounds[eid]++
			c.edgeStallTime[eid] += gap
		}
	}
}

// horizon returns the furthest engine clock — the end of the last window the
// furthest engine executed. Models record completion times inside handlers;
// this value only bounds them.
func (c *Cluster) horizon() units.Time {
	var h units.Time
	for _, e := range c.engines {
		if e.Now() > h {
			h = e.Now()
		}
	}
	return h
}

// Run advances every engine to quiescence — no pending events, no held
// messages — using up to workers goroutines per round, and returns the
// furthest engine clock. workers <= 1 runs every round inline on the calling
// goroutine; either way the event order, and therefore the result, is
// identical: worker count only changes which goroutine drives an engine,
// never what the engine observes. Each round the effective parallelism is
// clamped to min(runnable engines, GOMAXPROCS), so idle workers stay parked
// instead of spinning on the round barrier and over-provisioned pools cost
// the same as right-sized ones.
func (c *Cluster) Run(workers int) units.Time {
	n := len(c.engines)
	if workers > n {
		workers = n
	}
	c.prepare()
	parallel := workers > 1
	if parallel {
		c.startWorkers(workers)
		defer c.stopWorkers()
	}
	appointment := c.resolved == SyncAppointment
	for {
		c.drain()
		c.refreshBase()
		baseMin := c.baseTree.root()
		if baseMin == never {
			return c.horizon()
		}
		if appointment {
			c.computeWindowsAppointment(baseMin)
		} else {
			c.computeWindows(baseMin)
		}
		if len(c.runnable) == 0 {
			// Unreachable: the engine holding baseMin always has a horizon
			// strictly beyond it (positive link latencies). Guard anyway so a
			// future invariant break fails loudly instead of spinning.
			panic("sim: cluster stalled with pending events")
		}
		if !parallel || len(c.runnable) == 1 {
			for _, i := range c.runnable {
				c.runEngine(int(i))
			}
		} else {
			c.dispatch()
		}
		c.accountRound()
	}
}

// startWorkers launches the persistent worker pool and blocks until every
// worker is parked, establishing the all-parked precondition dispatch relies
// on.
func (c *Cluster) startWorkers(workers int) {
	if c.parCond == nil {
		c.parCond = sync.NewCond(&c.parMu)
		c.idleCond = sync.NewCond(&c.parMu)
	}
	c.nworkers = workers
	c.stopping = false
	c.parked = 0
	c.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go c.workerLoop()
	}
	c.parMu.Lock()
	for c.parked != c.nworkers {
		c.idleCond.Wait()
	}
	c.parMu.Unlock()
}

// stopWorkers wakes every parked worker into the exit path and joins them.
func (c *Cluster) stopWorkers() {
	c.parMu.Lock()
	c.stopping = true
	c.parCond.Broadcast()
	c.parMu.Unlock()
	c.wg.Wait()
}

// workerLoop is one pool worker: park on parCond until the coordinator
// publishes a new round, claim runnable engines off the shared counter, and
// park again. A worker never touches an engine outside a claimed slot, and
// the coordinator never touches scratch state until every woken worker has
// re-entered Wait, so the only shared mutable state on the hot path is the
// two atomics.
func (c *Cluster) workerLoop() {
	defer c.wg.Done()
	c.parMu.Lock()
	c.parked++
	if c.parked == c.nworkers {
		c.idleCond.Signal()
	}
	seen := c.round
	for {
		for c.round == seen && !c.stopping {
			c.parCond.Wait()
		}
		if c.stopping {
			c.parMu.Unlock()
			return
		}
		seen = c.round
		c.parMu.Unlock()

		nr := int64(len(c.runnable))
		for {
			slot := c.claim.Add(1) - 1
			if slot >= nr {
				break
			}
			c.runEngine(int(c.runnable[slot]))
			c.left.Add(-1)
		}

		// Holding parMu from here until parCond.Wait releases it guarantees
		// the coordinator cannot observe this round's done count until this
		// worker is parked again with a fresh wait ticket.
		c.parMu.Lock()
		c.done++
		c.idleCond.Signal()
	}
}

// dispatch publishes the current runnable set to the pool, waking only as
// many workers as can do useful work — min(runnable, pool size, GOMAXPROCS);
// a wake beyond the processor count can never run concurrently, and the
// claim counter lets any awake worker drain every remaining slot — and waits
// until every woken worker has finished the round and re-parked. The
// completion predicate counts round completions (done) against the number of
// workers actually woken — not the parked count, which would be satisfied
// while a signaled worker is still on its way out of Wait and about to read
// the runnable set the coordinator is ready to overwrite.
func (c *Cluster) dispatch() {
	nr := len(c.runnable)
	c.claim.Store(0)
	c.left.Store(int64(nr))
	wake := nr
	if wake > c.nworkers {
		wake = c.nworkers
	}
	if p := runtime.GOMAXPROCS(0); wake > p {
		wake = p
	}
	c.parMu.Lock()
	c.done = 0
	c.round++
	if wake == c.nworkers {
		c.parCond.Broadcast()
	} else {
		for i := 0; i < wake; i++ {
			c.parCond.Signal()
		}
	}
	for c.done != wake || c.left.Load() != 0 {
		c.idleCond.Wait()
	}
	c.parMu.Unlock()
}

// minTree is a flat bottom-up segment tree over the per-engine base times:
// update is O(log n) along one root path, the global minimum is O(1) at the
// root. With only a few engines dirty per round this replaces the O(n) scan
// the old coordinator paid at every window.
type minTree struct {
	n    int
	node []units.Time // 1-based; node[1] is the root, leaves at node[size+i]
	size int
}

func newMinTree(n int) minTree {
	size := 1
	for size < n {
		size <<= 1
	}
	node := make([]units.Time, 2*size)
	for i := range node {
		node[i] = never
	}
	return minTree{n: n, node: node, size: size}
}

func (t *minTree) update(i int, v units.Time) {
	p := t.size + i
	if t.node[p] == v {
		return
	}
	t.node[p] = v
	for p >>= 1; p >= 1; p >>= 1 {
		m := t.node[2*p]
		if r := t.node[2*p+1]; r < m {
			m = r
		}
		if t.node[p] == m {
			break
		}
		t.node[p] = m
	}
}

func (t *minTree) root() units.Time { return t.node[1] }

// djItem is one Dijkstra worklist entry: a tentative bound for an engine.
type djItem struct {
	t   units.Time
	eng int32
}

// djHeap is a value-based binary min-heap with lazy deletion; the backing
// array is retained across rounds.
type djHeap struct {
	a []djItem
}

func (h *djHeap) reset()   { h.a = h.a[:0] }
func (h *djHeap) len() int { return len(h.a) }

func (h *djHeap) push(it djItem) {
	a := append(h.a, it)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].t <= it.t {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = it
	h.a = a
}

func (h *djHeap) pop() djItem {
	a := h.a
	top := a[0]
	n := len(a) - 1
	last := a[n]
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if c+1 < n && a[c+1].t < a[c].t {
				c++
			}
			if a[c].t >= last.t {
				break
			}
			a[i] = a[c]
			i = c
		}
		a[i] = last
	}
	h.a = a[:n]
	return top
}
