package sim

import (
	"fmt"
	"sync"

	"t3sim/internal/check"
	"t3sim/internal/units"
)

// Cluster coordinates one private Engine per device and advances them in
// bounded time windows — conservative (Chandy–Misra-style) parallel DES with
// a barrier window instead of null messages. The window width is the
// cluster's lookahead: the minimum latency of any cross-engine interaction,
// which in this repository is the ring link latency, since ring deliveries
// are the only way one device's simulation affects another's.
//
// The synchronization argument: let m be the earliest pending event across
// all engines at a barrier. Every engine may safely execute events strictly
// before D = m + lookahead, because any cross-engine message sent inside the
// window is sent at some t >= m and cannot be delivered before t + lookahead
// >= D. Cross-engine sends go through Mailboxes instead of Engine.At; the
// coordinator drains every mailbox at each barrier — single-threaded, in
// mailbox registration order, (time, senderSeq)-sorted within a mailbox — so
// delivery order is a pure function of the model, never of goroutine
// scheduling, and results are identical at every worker count.
//
// Engines remain strictly single-goroutine: within a window each engine is
// driven by exactly one worker, and between windows only the coordinator
// touches them.
type Cluster struct {
	lookahead units.Time
	engines   []*Engine
	boxes     []*Mailbox
	barrier   units.Time // deadline of the last completed window
	la        *check.Lookahead
}

// NewCluster returns a coordinator owning n fresh engines. The lookahead
// must be positive — a zero-latency link admits no conservative window, so
// callers with LinkLatency == 0 must fall back to a single shared engine.
func NewCluster(n int, lookahead units.Time) *Cluster {
	if n < 1 {
		panic(fmt.Sprintf("sim: cluster of %d engines", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	c := &Cluster{lookahead: lookahead, engines: make([]*Engine, n)}
	for i := range c.engines {
		c.engines[i] = NewEngine()
	}
	return c
}

// Engines returns the per-device engines, indexed by device.
func (c *Cluster) Engines() []*Engine { return c.engines }

// Engine returns the engine owned by device i.
func (c *Cluster) Engine(i int) *Engine { return c.engines[i] }

// Lookahead returns the conservative window width.
func (c *Cluster) Lookahead() units.Time { return c.lookahead }

// AttachChecker arms every engine's monotonicity witness plus the cluster's
// lookahead-violation law: a drained message timestamped inside the window
// that just ran proves the synchronization layer let an engine race ahead of
// a delivery it should have seen. A nil checker detaches.
func (c *Cluster) AttachChecker(chk *check.Checker) {
	for _, e := range c.engines {
		e.AttachChecker(chk)
	}
	c.la = chk.Lookahead("sim.cluster")
}

// mail is one cross-engine message: a handler to run on the destination
// engine at an absolute time, stamped with the sender's per-mailbox sequence
// number so same-timestamp messages keep their send order.
type mail struct {
	at  units.Time
	seq uint64
	fn  Handler
}

// Mailbox carries cross-engine messages toward one destination engine. A
// sender running inside a window calls Post instead of dst.At (which would
// race with the destination's worker); the coordinator drains the box at the
// next barrier. Each mailbox is meant to serve a single logical sender (one
// ring link); the mutex exists so unrelated senders on other goroutines can
// post to *other* mailboxes concurrently while the race detector still sees
// a clean handoff to the coordinator.
type Mailbox struct {
	dst *Engine
	mu  sync.Mutex
	seq uint64
	in  []mail
}

// Mailbox registers and returns a new mailbox delivering into device dst's
// engine. Registration order is drain order at each barrier, so callers must
// register mailboxes in a deterministic order at setup time.
func (c *Cluster) Mailbox(dst int) *Mailbox {
	b := &Mailbox{dst: c.engines[dst]}
	c.boxes = append(c.boxes, b)
	return b
}

// Post schedules fn on the destination engine at absolute time at. The
// message is held until the next window barrier; the conservative window
// guarantees at lands at or after that barrier.
func (b *Mailbox) Post(at units.Time, fn Handler) {
	if fn == nil {
		panic("sim: posting nil handler")
	}
	b.mu.Lock()
	b.seq++
	b.in = append(b.in, mail{at: at, seq: b.seq, fn: fn})
	b.mu.Unlock()
}

// sortMail orders messages by (time, sender seq) — insertion sort, since a
// window's worth of deliveries on one link is small and this keeps the drain
// path allocation-free.
func sortMail(ms []mail) {
	for i := 1; i < len(ms); i++ {
		m := ms[i]
		j := i - 1
		for j >= 0 && (ms[j].at > m.at || (ms[j].at == m.at && ms[j].seq > m.seq)) {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = m
	}
}

// drain moves every held message into its destination engine's calendar.
// Runs single-threaded at a barrier: mailbox registration order, then
// (time, seq) within a mailbox, so delivery order is deterministic.
func (c *Cluster) drain() {
	for _, b := range c.boxes {
		b.mu.Lock()
		ms := b.in
		b.in = b.in[:0]
		b.mu.Unlock()
		sortMail(ms)
		for _, m := range ms {
			c.la.Observe(c.barrier, m.at)
			at := m.at
			if at < b.dst.Now() {
				// Lookahead violated (already recorded): clamp so the run
				// can continue and surface every subsequent violation too.
				at = b.dst.Now()
			}
			b.dst.At(at, m.fn)
		}
	}
}

// minNext returns the earliest pending event time across all engines, or
// false when every calendar is empty.
func (c *Cluster) minNext() (units.Time, bool) {
	var min units.Time
	any := false
	for _, e := range c.engines {
		if at, ok := e.NextAt(); ok && (!any || at < min) {
			min, any = at, true
		}
	}
	return min, any
}

// horizon returns the furthest engine clock — the final barrier deadline.
// Note this is the end of the last conservative window, not the timestamp of
// the last event; models record completion times inside handlers.
func (c *Cluster) horizon() units.Time {
	var h units.Time
	for _, e := range c.engines {
		if e.Now() > h {
			h = e.Now()
		}
	}
	return h
}

// Run advances every engine to quiescence — no pending events, no held
// messages — using up to workers goroutines per window, and returns the
// final window deadline. workers <= 1 runs every window inline on the
// calling goroutine; either way the event order, and therefore the result,
// is identical: worker count only changes which goroutine drives an engine,
// never what the engine observes.
func (c *Cluster) Run(workers int) units.Time {
	n := len(c.engines)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for {
			c.drain()
			min, ok := c.minNext()
			if !ok {
				return c.horizon()
			}
			d := min + c.lookahead
			for _, e := range c.engines {
				e.RunBefore(d)
			}
			c.barrier = d
		}
	}

	// Persistent worker pool: worker w owns the static engine stride
	// w, w+workers, w+2·workers, … for the whole run, so an engine is only
	// ever driven by one goroutine. Each round broadcasts the window
	// deadline; the WaitGroup barrier orders every in-window Mailbox.Post
	// before the coordinator's drain.
	var wg sync.WaitGroup
	rounds := make([]chan units.Time, workers)
	for w := range rounds {
		rounds[w] = make(chan units.Time, 1)
		go func(w int) {
			for d := range rounds[w] {
				for i := w; i < n; i += workers {
					c.engines[i].RunBefore(d)
				}
				wg.Done()
			}
		}(w)
	}
	defer func() {
		for _, ch := range rounds {
			close(ch)
		}
	}()

	for {
		c.drain()
		min, ok := c.minNext()
		if !ok {
			return c.horizon()
		}
		d := min + c.lookahead
		wg.Add(workers)
		for _, ch := range rounds {
			ch <- d
		}
		wg.Wait()
		c.barrier = d
	}
}
