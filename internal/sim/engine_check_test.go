package sim

import (
	"strings"
	"testing"

	"t3sim/internal/check"
	"t3sim/internal/units"
)

// TestEngineCheckerCleanRun pins that a healthy dispatch sequence records no
// violations.
func TestEngineCheckerCleanRun(t *testing.T) {
	c := check.New()
	e := NewEngine()
	e.AttachChecker(c)
	for i := 0; i < 100; i++ {
		d := (i * 37) % 50
		e.At(units.Time(d), func() {})
	}
	e.Run()
	if err := c.Err(); err != nil {
		t.Fatalf("clean run reported violations: %v", err)
	}
}

// TestEngineCheckerCatchesHeapCorruption is the engine's ordering law made
// falsifiable: we corrupt the event calendar behind the heap's back (white
// box — this cannot happen through the public API, which panics on
// past-scheduling) and assert the monotonicity witness flags the backwards
// dispatch instead of letting the simulation silently reorder.
func TestEngineCheckerCatchesHeapCorruption(t *testing.T) {
	c := check.New()
	e := NewEngine()
	e.AttachChecker(c)
	e.At(10, func() {})
	e.At(20, func() {})
	// Swap the heap entries so the t=20 event dispatches first and the
	// clock then jumps back to t=10.
	e.queue[0], e.queue[1] = e.queue[1], e.queue[0]
	func() {
		defer func() { recover() }() // At() may panic once now has advanced past a pending event
		e.Run()
	}()
	if c.Ok() {
		t.Fatal("checker missed a time-reversed dispatch")
	}
	vs := c.Violations()
	if vs[0].Rule != "ordering/monotonic" {
		t.Fatalf("rule = %q, want ordering/monotonic", vs[0].Rule)
	}
	if vs[0].Path != "sim.engine" {
		t.Fatalf("path = %q, want sim.engine", vs[0].Path)
	}
	if !strings.Contains(vs[0].String(), "backwards") {
		t.Fatalf("violation message %q does not mention backwards time", vs[0])
	}
}
