package sim

// Fence fires a completion callback once a pre-declared number of operations
// have finished. It is the simulation analogue of sync.WaitGroup and is used
// for "stage done when all its reads/writes/packets completed" conditions.
//
// A Fence is created with Expect > 0; each Done decrements the outstanding
// count and the callback runs (once, synchronously) when it reaches zero.
type Fence struct {
	remaining int
	fired     bool
	onDone    Handler
}

// NewFence returns a fence expecting n completions. If n is zero the callback
// fires immediately on the first Arm call (or at creation if armed).
func NewFence(n int, onDone Handler) *Fence {
	if n < 0 {
		panic("sim: fence with negative count")
	}
	f := &Fence{remaining: n, onDone: onDone}
	if n == 0 {
		f.fire()
	}
	return f
}

// Add increases the number of expected completions. Adding to an already
// fired fence panics: completions must be declared before the fence drains.
func (f *Fence) Add(n int) {
	if n < 0 {
		panic("sim: fence Add with negative count")
	}
	if f.fired {
		panic("sim: Add on fired fence")
	}
	f.remaining += n
}

// Done records one completion.
func (f *Fence) Done() {
	if f.fired {
		panic("sim: Done on fired fence")
	}
	f.remaining--
	if f.remaining == 0 {
		f.fire()
	}
	if f.remaining < 0 {
		panic("sim: fence over-completed")
	}
}

// Reset rearms a fired fence to expect n more completions, reusing the
// callback installed at construction. It exists so object pools can recycle
// a fence (and the single closure allocated for its callback) across
// transfers instead of allocating a fresh pair per use. Resetting a fence
// that has not fired panics: outstanding completions would be silently
// merged into the new round.
func (f *Fence) Reset(n int) {
	if n <= 0 {
		panic("sim: fence Reset with non-positive count")
	}
	if !f.fired {
		panic("sim: Reset on unfired fence")
	}
	f.fired = false
	f.remaining = n
}

// Remaining returns the outstanding completion count.
func (f *Fence) Remaining() int { return f.remaining }

// Fired reports whether the fence has already triggered its callback.
func (f *Fence) Fired() bool { return f.fired }

func (f *Fence) fire() {
	f.fired = true
	if f.onDone != nil {
		f.onDone()
	}
}
