package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	g, err := Geomean([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-2) > 1e-12 {
		t.Errorf("Geomean(1,4) = %v, want 2", g)
	}
	if _, err := Geomean(nil); err != ErrEmpty {
		t.Errorf("Geomean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Geomean([]float64{1, -1}); err == nil {
		t.Error("Geomean with negative value: want error")
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := MustGeomean(xs)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if m, _ := Mean(xs); m != 2 {
		t.Errorf("Mean = %v, want 2", m)
	}
	if m, _ := Min(xs); m != 1 {
		t.Errorf("Min = %v, want 1", m)
	}
	if m, _ := Max(xs); m != 3 {
		t.Errorf("Max = %v, want 3", m)
	}
	for _, f := range []func([]float64) (float64, error){Mean, Min, Max} {
		if _, err := f(nil); err != ErrEmpty {
			t.Errorf("empty input err = %v, want ErrEmpty", err)
		}
	}
}

func TestRelError(t *testing.T) {
	if e := RelError(110, 100); math.Abs(e-0.1) > 1e-12 {
		t.Errorf("RelError = %v, want 0.1", e)
	}
	if e := RelError(0, 0); e != 0 {
		t.Errorf("RelError(0,0) = %v, want 0", e)
	}
	if e := RelError(1, 0); !math.IsInf(e, 1) {
		t.Errorf("RelError(1,0) = %v, want +Inf", e)
	}
}

func TestGeomeanRelError(t *testing.T) {
	got := []float64{110, 95}
	want := []float64{100, 100}
	g, err := GeomeanRelError(got, want)
	if err != nil {
		t.Fatal(err)
	}
	wantG := math.Sqrt(0.1 * 0.05)
	if math.Abs(g-wantG) > 1e-12 {
		t.Errorf("GeomeanRelError = %v, want %v", g, wantG)
	}
	if _, err := GeomeanRelError([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	// Exact matches do not blow up the geomean.
	if _, err := GeomeanRelError([]float64{1, 2}, []float64{1, 2}); err != nil {
		t.Errorf("exact match: %v", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3} // unsorted on purpose
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {10, 1}, {20, 1}, {21, 2}, {50, 3}, {80, 4}, {99, 5}, {100, 5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("p%.0f: %v", c.p, err)
		}
		if got != c.want {
			t.Errorf("Percentile(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// The input must not be mutated.
	if xs[0] != 5 || xs[4] != 3 {
		t.Error("Percentile mutated its input")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty input err = %v, want ErrEmpty", err)
	}
	for _, bad := range []float64{-1, 101, math.NaN()} {
		if _, err := Percentile(xs, bad); err == nil {
			t.Errorf("Percentile(p=%v): want error", bad)
		}
	}
	// Single element: every percentile is that element.
	for _, p := range []float64{0, 50, 100} {
		if got, _ := Percentile([]float64{7}, p); got != 7 {
			t.Errorf("Percentile([7], %v) = %v", p, got)
		}
	}
}

func TestPercentileSortedMatchesAndAllocs(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	for p := 0.0; p <= 100; p += 0.5 {
		a, _ := Percentile(sorted, p)
		b, _ := PercentileSorted(sorted, p)
		if a != b {
			t.Fatalf("p=%v: Percentile %v != PercentileSorted %v", p, a, b)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := PercentileSorted(sorted, 99); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PercentileSorted allocates: %v allocs/run", allocs)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(2, 1); s != 2 {
		t.Errorf("Speedup = %v, want 2", s)
	}
	if s := Speedup(1, 0); !math.IsInf(s, 1) {
		t.Errorf("Speedup(1,0) = %v, want +Inf", s)
	}
}
