// Package stats provides the small set of summary statistics used when
// reporting experiment results: geometric means (the paper reports geomean
// speedups), relative errors, and min/max helpers.
package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by aggregations over empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Geomean returns the geometric mean of xs. All values must be positive.
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geomean of non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// MustGeomean is Geomean for inputs known to be valid; it panics on error.
func MustGeomean(xs []float64) float64 {
	g, err := Geomean(xs)
	if err != nil {
		panic(err)
	}
	return g
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// RelError returns |got-want| / |want|. It is used to validate the
// discrete-event simulator against analytic references (paper Figure 14).
func RelError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// GeomeanRelError returns the geometric mean of per-point relative errors,
// mapping exact matches (error 0) to a 1e-12 floor so the geomean is defined.
func GeomeanRelError(got, want []float64) (float64, error) {
	if len(got) != len(want) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(got) == 0 {
		return 0, ErrEmpty
	}
	errs := make([]float64, len(got))
	for i := range got {
		e := RelError(got[i], want[i])
		if e < 1e-12 {
			e = 1e-12
		}
		errs[i] = e
	}
	return Geomean(errs)
}

// Speedup returns base/new, the conventional speedup of new over base.
func Speedup(base, new float64) float64 {
	if new <= 0 {
		return math.Inf(1)
	}
	return base / new
}
