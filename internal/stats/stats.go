// Package stats provides the small set of summary statistics used when
// reporting experiment results: geometric means (the paper reports geomean
// speedups), relative errors, and min/max helpers.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations over empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Geomean returns the geometric mean of xs. All values must be positive.
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geomean of non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// MustGeomean is Geomean for inputs known to be valid; it panics on error.
func MustGeomean(xs []float64) float64 {
	g, err := Geomean(xs)
	if err != nil {
		panic(err)
	}
	return g
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using the
// nearest-rank method on a sorted copy: the smallest element with at least
// ceil(p/100 * n) elements at or below it (p = 0 returns the minimum). The
// nearest-rank definition is exact and interpolation-free, so percentile
// reports are bit-stable — a property the serving golden snapshots pin.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile over already-sorted data; it allocates
// nothing. The input must be in ascending order.
func PercentileSorted(sorted []float64, p float64) (float64, error) {
	n := len(sorted)
	if n == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1], nil
}

// RelError returns |got-want| / |want|. It is used to validate the
// discrete-event simulator against analytic references (paper Figure 14).
func RelError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// GeomeanRelError returns the geometric mean of per-point relative errors,
// mapping exact matches (error 0) to a 1e-12 floor so the geomean is defined.
func GeomeanRelError(got, want []float64) (float64, error) {
	if len(got) != len(want) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(got) == 0 {
		return 0, ErrEmpty
	}
	errs := make([]float64, len(got))
	for i := range got {
		e := RelError(got[i], want[i])
		if e < 1e-12 {
			e = 1e-12
		}
		errs[i] = e
	}
	return Geomean(errs)
}

// Speedup returns base/new, the conventional speedup of new over base.
func Speedup(base, new float64) float64 {
	if new <= 0 {
		return math.Inf(1)
	}
	return base / new
}
