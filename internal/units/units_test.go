package units

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := (2 * Millisecond).Millis(); got != 2 {
		t.Errorf("Millis = %v, want 2", got)
	}
	if got := (1500 * Nanosecond).Micros(); got != 1.5 {
		t.Errorf("Micros = %v, want 1.5", got)
	}
	if got := FromSeconds(1e-9); got != Nanosecond {
		t.Errorf("FromSeconds(1e-9) = %v, want 1ns", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ps"},
		{2 * Nanosecond, "2.000ns"},
		{3 * Microsecond, "3.000us"},
		{4 * Millisecond, "4.000ms"},
		{5 * Second, "5.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{100, "100B"},
		{2 * KiB, "2.00KiB"},
		{3 * MiB, "3.00MiB"},
		{4 * GiB, "4.00GiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	// 150 GB/s moving 150 GB takes one second.
	bw := 150 * GBps
	if got := bw.TransferTime(150 * 1e9); got != Second {
		t.Errorf("TransferTime = %v, want 1s", got)
	}
	if got := bw.TransferTime(0); got != 0 {
		t.Errorf("TransferTime(0) = %v, want 0", got)
	}
	// A single byte still takes at least one picosecond.
	if got := (1 * TBps).TransferTime(1); got < 1 {
		t.Errorf("TransferTime(1B) = %v, want >= 1ps", got)
	}
}

func TestTransferTimeMonotonic(t *testing.T) {
	bw := 75 * GBps
	f := func(a, b uint32) bool {
		x, y := Bytes(a), Bytes(b)
		if x > y {
			x, y = y, x
		}
		return bw.TransferTime(x) <= bw.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrequency(t *testing.T) {
	if got := (1 * GHz).Period(); got != Nanosecond {
		t.Errorf("Period(1GHz) = %v, want 1ns", got)
	}
	if got := (1.4 * GHz).Cycles(14); got != 10*Nanosecond {
		t.Errorf("Cycles(14 @1.4GHz) = %v, want 10ns", got)
	}
	// Cycles rounds up: one cycle at 1.4 GHz is 715 ps (714.28... rounded up).
	if got := (1.4 * GHz).Cycles(1); got != 715*Picosecond {
		t.Errorf("Cycles(1 @1.4GHz) = %v, want 715ps", got)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("TransferTime", func() { Bandwidth(0).TransferTime(1) })
	mustPanic("Period", func() { Frequency(0).Period() })
	mustPanic("Cycles", func() { Frequency(-1).Cycles(1) })
	mustPanic("CeilDiv", func() { CeilDiv(1, 0) })
}

func TestNegativeRendering(t *testing.T) {
	if got := Time(-2 * Millisecond).String(); got != "-2.000ms" {
		t.Errorf("negative time = %q", got)
	}
	if got := Bytes(-3 * MiB).String(); got != "-3.00MiB" {
		t.Errorf("negative bytes = %q", got)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	d := 1500 * Microsecond
	if got := FromSeconds(d.Seconds()); got != d {
		t.Errorf("round trip = %v, want %v", got, d)
	}
}

func TestBandwidthString(t *testing.T) {
	if got := (75 * GBps).String(); got != "75.0GB/s" {
		t.Errorf("bandwidth = %q", got)
	}
}

func TestFrequencyString(t *testing.T) {
	if got := (1.4 * GHz).String(); got != "1.40GHz" {
		t.Errorf("frequency = %q", got)
	}
}
