// Package units provides the shared physical quantities used throughout the
// simulator: time (picoseconds), data sizes (bytes), bandwidths, and clock
// frequencies. Keeping a single integral time base avoids cross-package
// rounding drift when mixing clock domains (the GPU core runs at 1.4 GHz,
// HBM at 1 GHz, and link latencies are quoted in nanoseconds).
package units

import (
	"fmt"
	"math"
)

// Time is a simulation timestamp or duration in picoseconds. A signed 64-bit
// picosecond counter covers about 106 days of simulated time, far beyond any
// experiment in this repository.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the duration with an auto-selected unit.
func (t Time) String() string {
	abs := t
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case abs >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case abs >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case abs >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// FromSeconds converts floating-point seconds to a Time, rounding to the
// nearest picosecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// Bytes is a data size in bytes.
type Bytes int64

// Common sizes.
const (
	Byte Bytes = 1
	KiB  Bytes = 1024
	MiB  Bytes = 1024 * KiB
	GiB  Bytes = 1024 * MiB
)

// MiBf converts b to floating-point mebibytes.
func (b Bytes) MiBf() float64 { return float64(b) / float64(MiB) }

// String renders the size with an auto-selected binary unit.
func (b Bytes) String() string {
	abs := b
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= GiB:
		return fmt.Sprintf("%.2fGiB", float64(b)/float64(GiB))
	case abs >= MiB:
		return fmt.Sprintf("%.2fMiB", float64(b)/float64(MiB))
	case abs >= KiB:
		return fmt.Sprintf("%.2fKiB", float64(b)/float64(KiB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// Bandwidth is a transfer rate in bytes per second. Vendor-quoted rates use
// decimal units, so GBps is 1e9 bytes per second.
type Bandwidth float64

// Common rates.
const (
	BytePerSecond Bandwidth = 1
	GBps          Bandwidth = 1e9
	TBps          Bandwidth = 1e12
)

// TransferTime returns the time to move n bytes at rate bw, rounded up to a
// whole picosecond so that a nonzero transfer never takes zero time.
func (bw Bandwidth) TransferTime(n Bytes) Time {
	if n <= 0 {
		return 0
	}
	if bw <= 0 {
		panic("units: TransferTime with non-positive bandwidth")
	}
	ps := float64(n) / float64(bw) * float64(Second)
	// Tolerate float rounding: without this, an exact result like 1024000 ps
	// can land at 1024000.0000000001 and ceil up a spurious picosecond.
	if r := math.Round(ps); math.Abs(ps-r) < 1e-3 {
		return Time(r)
	}
	return Time(math.Ceil(ps))
}

// String renders the bandwidth in GB/s.
func (bw Bandwidth) String() string { return fmt.Sprintf("%.1fGB/s", float64(bw)/float64(GBps)) }

// Frequency is a clock rate in hertz.
type Frequency float64

// Common clock rates.
const (
	Hz  Frequency = 1
	MHz Frequency = 1e6
	GHz Frequency = 1e9
)

// Period returns the duration of one clock cycle, rounded to the nearest
// picosecond.
func (f Frequency) Period() Time {
	if f <= 0 {
		panic("units: Period of non-positive frequency")
	}
	return Time(math.Round(float64(Second) / float64(f)))
}

// Cycles converts a cycle count at frequency f to a duration.
func (f Frequency) Cycles(n float64) Time {
	if f <= 0 {
		panic("units: Cycles of non-positive frequency")
	}
	return Time(math.Ceil(n * float64(Second) / float64(f)))
}

// String renders the frequency in GHz.
func (f Frequency) String() string { return fmt.Sprintf("%.2fGHz", float64(f)/float64(GHz)) }

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("units: CeilDiv with non-positive divisor")
	}
	return (a + b - 1) / b
}
