package transformer

import (
	"fmt"

	"t3sim/internal/collective"
	"t3sim/internal/gemm"
	"t3sim/internal/gpu"
	"t3sim/internal/interconnect"
	"t3sim/internal/units"
)

// Phase selects the execution mode for iteration breakdowns.
type Phase int

// Phases.
const (
	// Training is one mixed-precision training iteration (forward +
	// backprop).
	Training Phase = iota
	// PromptInference is the prompt-processing phase of inference (forward
	// only), the communication-heavy inference phase the paper evaluates.
	PromptInference
	// TokenGeneration is the auto-regressive decode phase (§7.3): one token
	// per sequence per step, GEMV-shaped weight-streaming operators and
	// small, latency-bound all-reduces.
	TokenGeneration
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Training:
		return "training"
	case PromptInference:
		return "prompt-inference"
	case TokenGeneration:
		return "token-generation"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// HW bundles the hardware parameters the analytical operator model needs.
type HW struct {
	GPU  gpu.Config
	Link interconnect.Config
	// MemBandwidth is the HBM aggregate rate for memory-bound operators.
	MemBandwidth units.Bandwidth
	// CollectiveCUs and PerCUMemBandwidth parameterize standalone collective
	// kernels (they get the whole GPU in the sequential baseline).
	CollectiveCUs     int
	PerCUMemBandwidth units.Bandwidth
}

// DefaultHW mirrors Table 1.
func DefaultHW() HW {
	return HW{
		GPU:               gpu.DefaultConfig(),
		Link:              interconnect.DefaultConfig(),
		MemBandwidth:      1 * units.TBps,
		CollectiveCUs:     80,
		PerCUMemBandwidth: 16 * units.GBps,
	}
}

// gemmTime estimates one GEMM's isolated duration: the max of its MAC time
// at the launch's efficiency and its DRAM streaming floor.
func (hw HW) gemmTime(s gemm.Shape) (units.Time, error) {
	g, err := gemm.NewGrid(s, gemm.DefaultTiling())
	if err != nil {
		return 0, err
	}
	eff := gemm.Efficiency(g)
	compute := units.FromSeconds(float64(s.FLOPs()) / (hw.GPU.PeakFlops() * eff))
	mem := hw.MemBandwidth.TransferTime(s.InputBytes() + s.OutputBytes())
	if mem > compute {
		return mem, nil
	}
	return compute, nil
}

// elementwiseTime estimates a memory-bound elementwise pass over n bytes.
func (hw HW) elementwiseTime(n units.Bytes) units.Time {
	return hw.MemBandwidth.TransferTime(n)
}

// collectiveOpts builds the analytic collective options for a given size.
func (hw HW) collectiveOpts(bytes units.Bytes, tp int) collective.AnalyticOptions {
	return collective.AnalyticOptions{
		Devices:           tp,
		TotalBytes:        bytes,
		Link:              hw.Link,
		MemBandwidth:      hw.MemBandwidth,
		CUs:               hw.CollectiveCUs,
		PerCUMemBandwidth: hw.PerCUMemBandwidth,
	}
}

// SubTimes is the baseline timing of one GEMM→AR sub-layer: the producer
// GEMM, the reduce-scatter, and the all-gather.
type SubTimes struct {
	GEMM units.Time
	RS   units.Time
	AG   units.Time
}

// Total returns the serialized sub-layer time.
func (s SubTimes) Total() units.Time { return s.GEMM + s.RS + s.AG }

// IterationModel is the analytical breakdown of one iteration, per layer.
// It backs Figures 4 and 19: the sliced GEMM→AR sub-layers are listed
// individually (they are what T3 accelerates); everything else — non-sliced
// GEMMs, attention math, softmax/dropout, layernorms, residuals — is Other.
type IterationModel struct {
	Model Model
	TP    int
	Phase Phase
	// Tokens is the token count one step processes. NewIterationModel sets it
	// to PhaseTokens(phase, model); NewIterationModelTokens lets callers pin
	// it directly (the serving simulator prices prefills of arbitrary prompt
	// lengths and decode steps of arbitrary batch sizes this way).
	Tokens int
	// Sub holds per-layer baseline times for each AR-feeding sub-layer
	// active in this phase.
	Sub map[SubLayerKind]SubTimes
	// Other is the per-layer time of everything else.
	Other units.Time
}

// ActiveSubLayers returns the AR-feeding sub-layers of a phase: all four in
// training, the two forward ones for inference phases.
func ActiveSubLayers(p Phase) []SubLayerKind {
	if p == PromptInference || p == TokenGeneration {
		return []SubLayerKind{OutProj, FC2}
	}
	return AllSubLayers
}

// PhaseTokens returns the token count one step of the phase processes: the
// full prompt for training/prompt inference, one token per sequence for
// auto-regressive generation.
func PhaseTokens(p Phase, m Model) int {
	if p == TokenGeneration {
		return m.Batch
	}
	return m.Tokens()
}

// NewIterationModel builds the breakdown for a model/TP/phase on hw, with
// the phase's conventional token count (the full prompt for training/prompt
// inference, one token per sequence for generation).
func NewIterationModel(m Model, tp int, phase Phase, hw HW) (*IterationModel, error) {
	return NewIterationModelTokens(m, tp, phase, hw, PhaseTokens(phase, m))
}

// NewIterationModelTokens builds the breakdown for a step processing an
// explicit token count, decoupled from the model's configured sequence
// geometry. A prefill over a 384-token prompt is PromptInference with
// tokens=384; a decode step over a 12-sequence batch is TokenGeneration with
// tokens=12.
func NewIterationModelTokens(m Model, tp int, phase Phase, hw HW, tokens int) (*IterationModel, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if tokens <= 0 {
		return nil, fmt.Errorf("transformer: non-positive token count %d", tokens)
	}
	it := &IterationModel{Model: m, TP: tp, Phase: phase, Tokens: tokens, Sub: map[SubLayerKind]SubTimes{}}

	// AR-feeding sub-layers.
	for _, kind := range ActiveSubLayers(phase) {
		sl, err := SubLayerGEMMTokens(m, kind, tp, tokens)
		if err != nil {
			return nil, err
		}
		gt, err := hw.gemmTime(sl.Grid.Shape)
		if err != nil {
			return nil, err
		}
		rs, err := collective.AnalyticRingReduceScatterTime(hw.collectiveOpts(sl.ARBytes, tp))
		if err != nil {
			return nil, err
		}
		ag, err := collective.AnalyticRingAllGatherTime(hw.collectiveOpts(sl.ARBytes, tp))
		if err != nil {
			return nil, err
		}
		it.Sub[kind] = SubTimes{GEMM: gt, RS: rs, AG: ag}
	}

	other, err := it.otherTime(hw)
	if err != nil {
		return nil, err
	}
	it.Other = other
	return it, nil
}

// otherTime estimates the per-layer time outside the AR sub-layers.
func (it *IterationModel) otherTime(hw HW) (units.Time, error) {
	m, tp := it.Model, it.TP
	tokens := it.Tokens
	e := units.Bytes(2)

	var total units.Time
	add := func(t units.Time, err error) error {
		if err != nil {
			return err
		}
		total += t
		return nil
	}

	// Forward non-AR GEMMs.
	// QKV input projection (column-parallel: no AR).
	if err := add(hw.gemmTime(gemm.Shape{M: tokens, N: 3 * m.Hidden / tp, K: m.Hidden, ElemBytes: 2, TransB: true})); err != nil {
		return 0, err
	}
	// Attention score and context batched GEMMs (sliced across heads).
	if err := add(hw.gemmTime(gemm.Shape{M: tokens, N: m.SeqLen, K: maxInt(m.Hidden/tp, 1), ElemBytes: 2})); err != nil {
		return 0, err
	}
	if err := add(hw.gemmTime(gemm.Shape{M: tokens, N: maxInt(m.Hidden/tp, 1), K: m.SeqLen, ElemBytes: 2})); err != nil {
		return 0, err
	}
	// FC-1 (column-parallel: no AR).
	if err := add(hw.gemmTime(gemm.Shape{M: tokens, N: m.FFMult * m.Hidden / tp, K: m.Hidden, ElemBytes: 2, TransB: true})); err != nil {
		return 0, err
	}

	// Elementwise forward work (no FlashAttention in the paper's MLPerf
	// baseline, §6.3): softmax+mask+dropout over the attention matrix, GeLU
	// over FC-1's output, two residual+layernorm passes over activations.
	heads := maxInt(m.Hidden/64/tp, 1)
	// Attention-matrix footprint: rows-per-sequence × SeqLen per head. For
	// training/prompt, rows = SeqLen (so Batch·heads·SeqLen²); for token
	// generation, one row per sequence against the KV cache.
	attnBytes := units.Bytes(int64(heads)*int64(tokens)*int64(m.SeqLen)) * e
	total += hw.elementwiseTime(6 * attnBytes)
	geluBytes := units.Bytes(int64(tokens)*int64(m.FFMult*m.Hidden/tp)) * e
	total += hw.elementwiseTime(2 * geluBytes)
	actBytes := units.Bytes(int64(tokens)*int64(m.Hidden)) * e
	total += hw.elementwiseTime(8 * actBytes)

	if it.Phase != Training {
		return total, nil
	}

	// Backprop: weight-gradient GEMMs for all four projections plus
	// input-gradient GEMMs for the non-AR ones, approximated as 2x the
	// forward GEMM work (dX and dW per GEMM), and elementwise gradients
	// roughly mirroring the forward passes.
	total *= 2
	// The AR sub-layers' weight-gradient GEMMs (dW) are not AR producers and
	// belong to Other as well: one dW per OP/FC-2 ≈ their forward GEMM time.
	for _, kind := range []SubLayerKind{OutProj, FC2} {
		sl, err := SubLayerGEMMTokens(it.Model, kind, tp, tokens)
		if err != nil {
			return 0, err
		}
		t, err := hw.gemmTime(sl.Grid.Shape)
		if err != nil {
			return 0, err
		}
		total += t
	}
	return total, nil
}

// LayerTotal returns the per-layer baseline (sequential) time.
func (it *IterationModel) LayerTotal() units.Time {
	t := it.Other
	for _, s := range it.Sub {
		t += s.Total()
	}
	return t
}

// Total returns the full-iteration baseline time.
func (it *IterationModel) Total() units.Time {
	return it.LayerTotal() * units.Time(it.Model.Layers)
}

// CommFraction returns the fraction of iteration time spent in the sliced
// GEMM→AR sub-layers' communication (RS+AG) — Figure 4's stacked series.
func (it *IterationModel) CommFraction() float64 {
	var comm units.Time
	for _, s := range it.Sub {
		comm += s.RS + s.AG
	}
	return float64(comm) / float64(it.LayerTotal())
}

// SlicedFraction returns the fraction of time in sliced GEMM→AR sub-layers
// (GEMM + RS + AG), the full height of Figure 4's highlighted stack.
func (it *IterationModel) SlicedFraction() float64 {
	var s units.Time
	for _, sub := range it.Sub {
		s += sub.Total()
	}
	return float64(s) / float64(it.LayerTotal())
}

// WithSubLayerTimes returns the iteration time when each AR sub-layer's
// GEMM+RS portion is replaced by the given fused time (AG stays serialized,
// as in the paper's T3 configuration §5.3). Missing kinds keep baseline.
func (it *IterationModel) WithSubLayerTimes(fused map[SubLayerKind]units.Time) units.Time {
	layer := it.Other
	for kind, s := range it.Sub {
		if f, ok := fused[kind]; ok {
			layer += f + s.AG
		} else {
			layer += s.Total()
		}
	}
	return layer * units.Time(it.Model.Layers)
}

// Speedup returns baseline/new for this iteration model given fused
// sub-layer times.
func (it *IterationModel) Speedup(fused map[SubLayerKind]units.Time) float64 {
	return float64(it.Total()) / float64(it.WithSubLayerTimes(fused))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
