package transformer

import (
	"testing"

	"t3sim/internal/units"
)

func TestModelZoo(t *testing.T) {
	for _, m := range append(append([]Model{}, Models...), FuturisticModels...) {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	// Parameter counts should land near the published sizes.
	cases := []struct {
		name string
		want float64 // billions
		tol  float64
	}{
		{"GPT-3", 175, 0.15},
		{"PALM", 530, 0.15},
		{"MT-NLG", 540, 0.15},
		{"T-NLG", 17, 0.25},
	}
	for _, c := range cases {
		m, err := ModelByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(m.Params()) / 1e9
		if got < c.want*(1-c.tol) || got > c.want*(1+c.tol) {
			t.Errorf("%s params = %.0fB, want ~%.0fB", c.name, got, c.want)
		}
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Error("unknown model: expected error")
	}
}

func TestTokens(t *testing.T) {
	mega, _ := ModelByName("Mega-GPT-2")
	if mega.Tokens() != 16*1024 {
		t.Errorf("Mega-GPT-2 tokens = %d, want 16K", mega.Tokens())
	}
	tnlg, _ := ModelByName("T-NLG")
	if tnlg.Tokens() != 8*1024 {
		t.Errorf("T-NLG tokens = %d, want 8K", tnlg.Tokens())
	}
}

func TestSubLayerGEMMShapes(t *testing.T) {
	m, _ := ModelByName("T-NLG")
	tp := 8
	cases := []struct {
		kind  SubLayerKind
		wantK int
		trans bool
	}{
		{OutProj, m.Hidden / tp, true},
		{FC2, 4 * m.Hidden / tp, true},
		{FC1Bwd, 4 * m.Hidden / tp, false},
		{InProjBwd, 3 * m.Hidden / tp, false},
	}
	for _, c := range cases {
		sl, err := SubLayerGEMM(m, c.kind, tp)
		if err != nil {
			t.Fatal(err)
		}
		s := sl.Grid.Shape
		if s.M != m.Tokens() || s.N != m.Hidden {
			t.Errorf("%v: output %dx%d, want %dx%d", c.kind, s.M, s.N, m.Tokens(), m.Hidden)
		}
		if s.K != c.wantK {
			t.Errorf("%v: K = %d, want %d", c.kind, s.K, c.wantK)
		}
		if s.TransB != c.trans {
			t.Errorf("%v: TransB = %v", c.kind, s.TransB)
		}
		// The AR moves the full [tokens x H] activation.
		want := units.Bytes(int64(m.Tokens())*int64(m.Hidden)) * 2
		if sl.ARBytes != want {
			t.Errorf("%v: ARBytes = %v, want %v", c.kind, sl.ARBytes, want)
		}
	}
}

func TestSubLayerGEMMErrors(t *testing.T) {
	m, _ := ModelByName("T-NLG")
	if _, err := SubLayerGEMM(m, OutProj, 0); err == nil {
		t.Error("TP=0: expected error")
	}
	if _, err := SubLayerGEMM(Model{}, OutProj, 8); err == nil {
		t.Error("invalid model: expected error")
	}
	if _, err := SubLayerGEMM(m, SubLayerKind(99), 8); err == nil {
		t.Error("unknown kind: expected error")
	}
}

func TestIterationBreakdownFractions(t *testing.T) {
	hw := DefaultHW()
	// The paper reports Mega-GPT-2 and T-NLG spend up to 34%/43% of time on
	// communication and up to ~47% in the sliced sub-layers overall
	// (Figure 4). The analytical model should land in that regime.
	for _, name := range []string{"Mega-GPT-2", "T-NLG"} {
		m, _ := ModelByName(name)
		for _, tp := range m.TPDegrees {
			for _, phase := range []Phase{Training, PromptInference} {
				it, err := NewIterationModel(m, tp, phase, hw)
				if err != nil {
					t.Fatal(err)
				}
				comm := it.CommFraction()
				sliced := it.SlicedFraction()
				if comm < 0.08 || comm > 0.55 {
					t.Errorf("%s TP=%d %v: comm fraction %.2f out of plausible range", name, tp, phase, comm)
				}
				if sliced <= comm || sliced > 0.85 {
					t.Errorf("%s TP=%d %v: sliced fraction %.2f vs comm %.2f", name, tp, phase, sliced, comm)
				}
				// Inference (no backprop) is more communication-heavy.
				if phase == PromptInference {
					tr, _ := NewIterationModel(m, tp, Training, hw)
					if it.CommFraction() <= tr.CommFraction() {
						t.Errorf("%s TP=%d: inference comm %.3f not above training %.3f",
							name, tp, it.CommFraction(), tr.CommFraction())
					}
				}
			}
		}
	}
}

func TestIterationSpeedupWithFusedTimes(t *testing.T) {
	hw := DefaultHW()
	m, _ := ModelByName("T-NLG")
	it, err := NewIterationModel(m, 8, Training, hw)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect overlap: fused time = max(GEMM, RS) per sub-layer.
	fused := map[SubLayerKind]units.Time{}
	for kind, s := range it.Sub {
		f := s.GEMM
		if s.RS > f {
			f = s.RS
		}
		fused[kind] = f
	}
	sp := it.Speedup(fused)
	if sp <= 1.0 || sp > 1.3 {
		t.Errorf("ideal-overlap end-to-end speedup = %.3f, want (1.0, 1.3]", sp)
	}
	// No fused times → no speedup.
	if got := it.Speedup(nil); got != 1.0 {
		t.Errorf("empty fused speedup = %v, want 1", got)
	}
	// Fused cannot beat removing RS entirely.
	free := map[SubLayerKind]units.Time{}
	for kind, s := range it.Sub {
		free[kind] = s.GEMM
	}
	if it.Speedup(free) < sp {
		t.Error("free RS should bound ideal overlap")
	}
}

func TestCommGrowsWithTP(t *testing.T) {
	hw := DefaultHW()
	m, _ := ModelByName("T-NLG")
	it8, _ := NewIterationModel(m, 8, Training, hw)
	it16, _ := NewIterationModel(m, 16, Training, hw)
	// Slicing shrinks GEMMs but ARs stay the same size: the communication
	// fraction grows with TP (the paper's motivation, §2.4).
	if it16.CommFraction() <= it8.CommFraction() {
		t.Errorf("comm fraction TP16 %.3f not above TP8 %.3f", it16.CommFraction(), it8.CommFraction())
	}
}

func TestPhaseAndKindStrings(t *testing.T) {
	if Training.String() != "training" || PromptInference.String() != "prompt-inference" {
		t.Error("phase strings wrong")
	}
	if OutProj.String() != "OP-fwd" || FC2.String() != "FC2-fwd" ||
		FC1Bwd.String() != "FC1-bwd" || InProjBwd.String() != "IP-bwd" {
		t.Error("kind strings wrong")
	}
	if Phase(9).String() == "" || SubLayerKind(9).String() == "" {
		t.Error("unknown values should render")
	}
}

func TestActiveSubLayers(t *testing.T) {
	if n := len(ActiveSubLayers(Training)); n != 4 {
		t.Errorf("training sub-layers = %d, want 4", n)
	}
	if n := len(ActiveSubLayers(PromptInference)); n != 2 {
		t.Errorf("inference sub-layers = %d, want 2", n)
	}
}

func TestTokenGenerationPhase(t *testing.T) {
	hw := DefaultHW()
	m, _ := ModelByName("T-NLG")
	it, err := NewIterationModel(m, 8, TokenGeneration, hw)
	if err != nil {
		t.Fatal(err)
	}
	// Generation processes one token per sequence.
	if got := PhaseTokens(TokenGeneration, m); got != m.Batch {
		t.Errorf("PhaseTokens = %d, want %d", got, m.Batch)
	}
	if got := PhaseTokens(Training, m); got != m.Tokens() {
		t.Errorf("training PhaseTokens = %d, want %d", got, m.Tokens())
	}
	// Only the two forward AR sub-layers are active.
	if len(it.Sub) != 2 {
		t.Errorf("generation sub-layers = %d, want 2", len(it.Sub))
	}
	// A decode step is orders of magnitude shorter than a prompt iteration.
	prompt, _ := NewIterationModel(m, 8, PromptInference, hw)
	if it.LayerTotal()*50 > prompt.LayerTotal() {
		t.Errorf("decode layer %v not ≪ prompt layer %v", it.LayerTotal(), prompt.LayerTotal())
	}
	// Decode all-reduces are latency-bound: far smaller than the sub-layer.
	for kind, s := range it.Sub {
		if s.RS >= s.GEMM {
			t.Errorf("%v: decode RS %v not below GEMV %v", kind, s.RS, s.GEMM)
		}
	}
	if TokenGeneration.String() != "token-generation" {
		t.Error("phase string wrong")
	}
}

func TestSubLayerGEMMTokensValidation(t *testing.T) {
	m, _ := ModelByName("T-NLG")
	if _, err := SubLayerGEMMTokens(m, FC2, 8, 0); err == nil {
		t.Error("zero tokens: expected error")
	}
	sl, err := SubLayerGEMMTokens(m, FC2, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sl.Grid.Shape.M != 64 {
		t.Errorf("M = %d, want 64", sl.Grid.Shape.M)
	}
	// The AR moves tokens x H regardless.
	if sl.ARBytes != 64*4256*2 {
		t.Errorf("ARBytes = %v", sl.ARBytes)
	}
}
