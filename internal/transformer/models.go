// Package transformer models the paper's workloads: the Table 2 model zoo,
// the tensor-parallel sub-layer GEMMs that need an all-reduce (§2.4), and
// the operator-level iteration breakdown behind Figures 4 and 19. The
// breakdown follows the paper's own methodology (§5.1.2): operator times are
// derived analytically from the hyperparameters and the hardware model
// rather than measured on a testbed.
package transformer

import (
	"fmt"

	"t3sim/internal/gemm"
	"t3sim/internal/units"
)

// Model is one Transformer configuration from Table 2.
type Model struct {
	Name string
	// Hidden is the model dimension H.
	Hidden int
	// Layers is the encoder/decoder block count L.
	Layers int
	// SeqLen is the input sequence length.
	SeqLen int
	// Batch is the per-iteration batch size.
	Batch int
	// TPDegrees are the tensor-parallel slicings the paper evaluates.
	TPDegrees []int
	// FFMult is the feed-forward expansion (4 for all studied models).
	FFMult int
}

// Tokens returns the token count per iteration (sequence length × batch).
func (m Model) Tokens() int { return m.SeqLen * m.Batch }

// Params returns the approximate parameter count: the standard
// 12·L·H² Transformer estimate (attention 4H² + FFN 8H² per layer).
func (m Model) Params() int64 {
	h := int64(m.Hidden)
	return 12 * int64(m.Layers) * h * h
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.Hidden <= 0 || m.Layers <= 0 || m.SeqLen <= 0 || m.Batch <= 0 {
		return fmt.Errorf("transformer: non-positive dimension in %s", m.Name)
	}
	if m.FFMult <= 0 {
		return fmt.Errorf("transformer: FFMult = %d in %s", m.FFMult, m.Name)
	}
	if len(m.TPDegrees) == 0 {
		return fmt.Errorf("transformer: no TP degrees for %s", m.Name)
	}
	return nil
}

// Models is the Table 2 zoo. Hyperparameters and token counts follow the
// paper: Mega-GPT-2 and T-NLG use 16K and 8K tokens with TP of 8 and 16;
// the ~0.5T-parameter models use 2K tokens at TP 32.
var Models = []Model{
	{Name: "Mega-GPT-2", Hidden: 3072, Layers: 74, SeqLen: 1024, Batch: 16, TPDegrees: []int{8, 16}, FFMult: 4},
	{Name: "T-NLG", Hidden: 4256, Layers: 78, SeqLen: 1024, Batch: 8, TPDegrees: []int{8, 16}, FFMult: 4},
	{Name: "GPT-3", Hidden: 12288, Layers: 96, SeqLen: 1024, Batch: 2, TPDegrees: []int{32}, FFMult: 4},
	{Name: "PALM", Hidden: 18432, Layers: 118, SeqLen: 1024, Batch: 2, TPDegrees: []int{32}, FFMult: 4},
	{Name: "MT-NLG", Hidden: 20480, Layers: 105, SeqLen: 1024, Batch: 2, TPDegrees: []int{32}, FFMult: 4},
}

// FuturisticModels are the 1T and 10T configurations of Figure 4's right
// side, sliced 64 ways.
var FuturisticModels = []Model{
	{Name: "1T", Hidden: 25600, Layers: 128, SeqLen: 1024, Batch: 2, TPDegrees: []int{64}, FFMult: 4},
	{Name: "10T", Hidden: 64000, Layers: 205, SeqLen: 1024, Batch: 2, TPDegrees: []int{64}, FFMult: 4},
}

// ModelByName finds a model in Models or FuturisticModels.
func ModelByName(name string) (Model, error) {
	for _, m := range Models {
		if m.Name == name {
			return m, nil
		}
	}
	for _, m := range FuturisticModels {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("transformer: unknown model %q", name)
}

// SubLayerKind enumerates the tensor-sliced sub-layers whose GEMM feeds an
// all-reduce (Figure 15): the attention output projection and FC-2 in the
// forward pass, and the input-gradient GEMMs of FC-1 and the input
// projection in backprop.
type SubLayerKind int

// Sub-layers requiring an all-reduce.
const (
	// OutProj is the attention output projection (forward).
	OutProj SubLayerKind = iota
	// FC2 is the second feed-forward GEMM (forward).
	FC2
	// FC1Bwd is FC-1's input-gradient GEMM (backprop).
	FC1Bwd
	// InProjBwd is the QKV input projection's input-gradient GEMM (backprop).
	InProjBwd
)

// String implements fmt.Stringer.
func (k SubLayerKind) String() string {
	switch k {
	case OutProj:
		return "OP-fwd"
	case FC2:
		return "FC2-fwd"
	case FC1Bwd:
		return "FC1-bwd"
	case InProjBwd:
		return "IP-bwd"
	default:
		return fmt.Sprintf("SubLayerKind(%d)", int(k))
	}
}

// AllSubLayers lists the four AR-feeding sub-layers in Figure 15's order.
var AllSubLayers = []SubLayerKind{OutProj, FC2, FC1Bwd, InProjBwd}

// SubLayer describes one tensor-sliced GEMM→all-reduce pair.
type SubLayer struct {
	Model Model
	Kind  SubLayerKind
	TP    int
	// Grid is the K-sliced producer GEMM.
	Grid gemm.Grid
	// ARBytes is the all-reduced activation size (tokens × hidden × 2B).
	ARBytes units.Bytes
}

// SubLayerGEMM returns the sliced GEMM→AR pair for a model sub-layer at a TP
// degree. All four produce a [tokens × H] output requiring an all-reduce;
// they differ in the sliced K dimension:
//
//	OP:  K = H/TP        (attention heads sliced)
//	FC2: K = FFMult·H/TP (row-parallel FC-2)
//	FC1-bwd: K = FFMult·H/TP (dX = dY · W1ᵀ)
//	IP-bwd:  K = 3H/TP       (dX of the fused QKV projection)
//
// Forward GEMMs read transposed weights; backward GEMMs do not (§5.2).
func SubLayerGEMM(m Model, kind SubLayerKind, tp int) (SubLayer, error) {
	if err := m.Validate(); err != nil {
		return SubLayer{}, err
	}
	return SubLayerGEMMTokens(m, kind, tp, m.Tokens())
}

// SubLayerGEMMTokens is SubLayerGEMM with an explicit token count (M): the
// auto-regressive generation phase processes one token per sequence (§7.3),
// turning these GEMMs into batched GEMVs.
func SubLayerGEMMTokens(m Model, kind SubLayerKind, tp, tokens int) (SubLayer, error) {
	if err := m.Validate(); err != nil {
		return SubLayer{}, err
	}
	if tokens <= 0 {
		return SubLayer{}, fmt.Errorf("transformer: tokens = %d", tokens)
	}
	if tp <= 0 {
		return SubLayer{}, fmt.Errorf("transformer: TP = %d", tp)
	}
	var fullK int
	transB := false
	switch kind {
	case OutProj:
		fullK = m.Hidden
		transB = true
	case FC2:
		fullK = m.FFMult * m.Hidden
		transB = true
	case FC1Bwd:
		fullK = m.FFMult * m.Hidden
	case InProjBwd:
		fullK = 3 * m.Hidden
	default:
		return SubLayer{}, fmt.Errorf("transformer: unknown sub-layer %v", kind)
	}
	shape := gemm.Shape{
		M:         tokens,
		N:         m.Hidden,
		K:         fullK,
		ElemBytes: 2,
		TransB:    transB,
	}
	sliced, err := shape.SliceK(tp)
	if err != nil {
		return SubLayer{}, err
	}
	grid, err := gemm.NewGrid(sliced, gemm.DefaultTiling())
	if err != nil {
		return SubLayer{}, err
	}
	return SubLayer{
		Model:   m,
		Kind:    kind,
		TP:      tp,
		Grid:    grid,
		ARBytes: shape.OutputBytes(),
	}, nil
}
