// Package metrics is the simulator's unified observability subsystem: a
// typed counter/gauge registry with hierarchical names
// ("memory.chan0.comm.read_bytes", "t3core.tracker.triggers") and a
// span/event timeline recorder driven by sim.Engine time, exportable as
// Chrome trace-event JSON that ui.perfetto.dev loads directly.
//
// Every timing model (memory, gpu, interconnect, collective, t3core)
// registers its instruments through the shared Sink interface threaded
// through the model configs. A nil sink costs nothing: registration is
// skipped entirely, and all instrument handles (*Counter, *Gauge,
// *TimeSeries, *Track) are nil-safe — every method on a nil handle is a
// single branch and zero allocations, so uninstrumented simulations keep
// their exact timing behaviour and allocation profile (guarded by
// TestNilHandlesAllocateNothing and BenchmarkNilHandles).
//
// Concurrency: a Registry may be shared by concurrent simulations (the
// evaluator's worker pool records into one registry under -j). Instrument
// creation is mutex-guarded and Counter/Gauge updates are atomic. A Track
// and a TimeSeries are single-writer: each belongs to one simulation
// goroutine — scope per run (Sink.Scope) to keep writers disjoint. Exports
// must happen after the recording simulations finish.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"t3sim/internal/units"
)

// Sink is the registration surface models see. It is implemented by
// *Registry (the root) and by the scopes it derives. Model code must accept
// a nil Sink and skip registration; the handles it would have obtained are
// nil-safe, so hot paths never need the nil-sink distinction.
type Sink interface {
	// Counter returns (creating if needed) the counter with this name.
	Counter(name string) *Counter
	// Gauge returns (creating if needed) the gauge with this name.
	Gauge(name string) *Gauge
	// Series returns (creating if needed) the time-bucketed accumulator
	// with this name. The width of an existing series is not changed.
	Series(name string, width units.Time) *TimeSeries
	// Track returns a timeline track (a Perfetto "thread") for span and
	// instant events. It returns nil — a valid, inert track — when the
	// registry's timeline is disabled.
	Track(name string) *Track
	// Scope derives a sink whose instrument names are prefixed with
	// "name/" and whose tracks live in their own timeline process. Use one
	// scope per simulation run so concurrent runs stay disjoint and the
	// exported trace groups each run's tracks together.
	Scope(name string) Sink
}

// Counter is a monotonically adjusted int64 instrument. The zero value is
// ready to use; a nil *Counter discards updates. Updates are atomic, so a
// counter may be shared across goroutines.
type Counter struct {
	v atomic.Int64
}

// Add adds n to the counter. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds 1. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value int64 instrument with a high-water helper. A nil
// *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n (which may be negative) to the gauge — occupancy instruments
// track deltas this way, +1 on enqueue and -1 on dequeue. No-op on a nil
// gauge.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// SetMax raises the gauge to v if v is larger (high-water mark). No-op on a
// nil gauge.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// TimeSeries accumulates int64 samples into fixed-width time buckets —
// the primitive behind DRAM-traffic timelines (Figure 17). It is
// single-writer: one recording goroutine per series. A nil *TimeSeries
// discards samples.
type TimeSeries struct {
	width   units.Time
	buckets []int64
}

// NewTimeSeries returns a standalone series (not attached to a registry)
// with the given bucket width.
func NewTimeSeries(width units.Time) (*TimeSeries, error) {
	if width <= 0 {
		return nil, fmt.Errorf("metrics: series bucket width = %v, must be positive", width)
	}
	return &TimeSeries{width: width}, nil
}

// Add accumulates n into the bucket containing time at, zero-filling any
// gap. No-op on a nil series; negative times panic (model bug).
func (s *TimeSeries) Add(at units.Time, n int64) {
	if s == nil {
		return
	}
	if at < 0 {
		panic(fmt.Sprintf("metrics: series sample at negative time %v", at))
	}
	idx := int(at / s.width)
	for len(s.buckets) <= idx {
		s.buckets = append(s.buckets, 0)
	}
	s.buckets[idx] += n
}

// Width returns the bucket width (0 for nil).
func (s *TimeSeries) Width() units.Time {
	if s == nil {
		return 0
	}
	return s.width
}

// Len returns the number of buckets recorded so far (0 for nil).
func (s *TimeSeries) Len() int {
	if s == nil {
		return 0
	}
	return len(s.buckets)
}

// BucketValue returns bucket i's accumulated value; out-of-range buckets
// (including any index on a nil series) are 0.
func (s *TimeSeries) BucketValue(i int) int64 {
	if s == nil || i < 0 || i >= len(s.buckets) {
		return 0
	}
	return s.buckets[i]
}

// timeline event phases (Chrome trace-event "ph" values).
const (
	phaseSpan    = 'X'
	phaseInstant = 'i'
)

// tevent is one recorded timeline event.
type tevent struct {
	name  string
	start units.Time
	dur   units.Time // spans only
	phase byte
}

// Track is one timeline lane (a Perfetto thread): an ordered sequence of
// spans and instant events recorded by a single goroutine. A nil *Track
// discards events, so models record unconditionally.
type Track struct {
	name   string
	events []tevent
}

// Span records a complete event covering [start, end]. Inverted spans
// panic (model bug). No-op on a nil track.
func (t *Track) Span(name string, start, end units.Time) {
	if t == nil {
		return
	}
	if end < start {
		panic(fmt.Sprintf("metrics: span %q ends %v before start %v", name, end, start))
	}
	t.events = append(t.events, tevent{name: name, start: start, dur: end - start, phase: phaseSpan})
}

// Instant records a point event at time at. No-op on a nil track.
func (t *Track) Instant(name string, at units.Time) {
	if t == nil {
		return
	}
	t.events = append(t.events, tevent{name: name, start: at, phase: phaseInstant})
}

// Events returns how many events the track holds (0 for nil).
func (t *Track) Events() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// process groups the tracks of one scope — one Perfetto process.
type process struct {
	name   string
	tracks []*Track
	byName map[string]*Track
}

// Registry is the root Sink: it owns every registered instrument and the
// timeline, and renders both exports. Create one per CLI invocation (or
// per test) and thread it — or scopes derived from it — into model
// configs.
type Registry struct {
	mu       sync.Mutex
	timeline bool
	counters map[string]*Counter
	gauges   map[string]*Gauge
	series   map[string]*TimeSeries
	procs    map[string]*process
	procList []*process
}

// NewRegistry returns an empty registry with the timeline disabled (Track
// returns nil tracks until EnableTimeline is called).
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		series:   map[string]*TimeSeries{},
		procs:    map[string]*process{},
	}
}

// EnableTimeline turns on span/instant recording. Call it before handing
// the registry to models; tracks requested while disabled stay nil.
func (r *Registry) EnableTimeline() {
	r.mu.Lock()
	r.timeline = true
	r.mu.Unlock()
}

// TimelineEnabled reports whether the timeline records events.
func (r *Registry) TimelineEnabled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.timeline
}

// Counter implements Sink.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge implements Sink.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Series implements Sink. The first registration fixes the bucket width;
// later calls with a different width return the existing series unchanged.
func (r *Registry) Series(name string, width units.Time) *TimeSeries {
	if width <= 0 {
		panic(fmt.Sprintf("metrics: series %q bucket width = %v, must be positive", name, width))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &TimeSeries{width: width}
		r.series[name] = s
	}
	return s
}

// Track implements Sink: a track in the root ("" / "t3sim") process.
func (r *Registry) Track(name string) *Track { return r.trackIn("", name) }

// Scope implements Sink.
func (r *Registry) Scope(name string) Sink { return &scope{r: r, name: name} }

// trackIn returns (creating if needed) the named track of the named
// process. Returns nil while the timeline is disabled.
func (r *Registry) trackIn(proc, name string) *Track {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.timeline {
		return nil
	}
	p, ok := r.procs[proc]
	if !ok {
		p = &process{name: proc, byName: map[string]*Track{}}
		r.procs[proc] = p
		r.procList = append(r.procList, p)
	}
	t, ok := p.byName[name]
	if !ok {
		t = &Track{name: name}
		p.byName[name] = t
		p.tracks = append(p.tracks, t)
	}
	return t
}

// CounterValue returns a registered counter's value (0 if absent) — a
// test/report convenience.
func (r *Registry) CounterValue(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name].Value()
}

// GaugeValue returns a registered gauge's value (0 if absent).
func (r *Registry) GaugeValue(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name].Value()
}

// CounterNames returns every registered counter name, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TrackNames returns "process/track" identifiers of every timeline track,
// sorted.
func (r *Registry) TrackNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for _, p := range r.procList {
		for _, t := range p.tracks {
			if p.name == "" {
				names = append(names, t.name)
				continue
			}
			names = append(names, p.name+"/"+t.name)
		}
	}
	sort.Strings(names)
	return names
}

// scope is a name-prefixed view of a registry whose tracks live in a
// dedicated timeline process.
type scope struct {
	r    *Registry
	name string
}

func (s *scope) Counter(name string) *Counter { return s.r.Counter(s.name + "/" + name) }
func (s *scope) Gauge(name string) *Gauge     { return s.r.Gauge(s.name + "/" + name) }
func (s *scope) Series(name string, width units.Time) *TimeSeries {
	return s.r.Series(s.name+"/"+name, width)
}
func (s *scope) Track(name string) *Track { return s.r.trackIn(s.name, name) }
func (s *scope) Scope(name string) Sink   { return &scope{r: s.r, name: s.name + "/" + name} }
