package metrics

import (
	"strings"
	"testing"

	"t3sim/internal/units"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("memory.comm.read_bytes")
	c.Add(10)
	c.Inc()
	if got := c.Value(); got != 11 {
		t.Errorf("counter = %d, want 11", got)
	}
	if r.Counter("memory.comm.read_bytes") != c {
		t.Error("same name should return the same counter")
	}
	if got := r.CounterValue("memory.comm.read_bytes"); got != 11 {
		t.Errorf("CounterValue = %d, want 11", got)
	}
	if got := r.CounterValue("absent"); got != 0 {
		t.Errorf("absent CounterValue = %d, want 0", got)
	}

	g := r.Gauge("t3core.tracker.max_live")
	g.Set(5)
	g.SetMax(3) // lower: ignored
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Errorf("gauge = %d, want 9", got)
	}
	g.Add(3)
	g.Add(-5)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge after Add = %d, want 7", got)
	}
}

func TestNilHandlesAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var s *TimeSeries
	var tr *Track
	c.Add(5)
	c.Inc()
	g.Set(1)
	g.SetMax(2)
	g.Add(4)
	s.Add(units.Microsecond, 3)
	tr.Span("x", 0, 10)
	tr.Instant("y", 5)
	if c.Value() != 0 || g.Value() != 0 || s.Len() != 0 || s.Width() != 0 ||
		s.BucketValue(0) != 0 || tr.Events() != 0 {
		t.Error("nil handles must read as zero")
	}
}

// TestNilHandlesAllocateNothing is the nil-sink fast-path guard: every
// hot-path instrument operation on nil handles must be allocation-free, so
// uninstrumented simulations keep their exact allocation profile.
func TestNilHandlesAllocateNothing(t *testing.T) {
	var c *Counter
	var g *Gauge
	var s *TimeSeries
	var tr *Track
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.Inc()
		g.Set(1)
		g.SetMax(2)
		g.Add(-1)
		s.Add(0, 1)
		tr.Span("span", 0, 1)
		tr.Instant("instant", 0)
	})
	if allocs != 0 {
		t.Errorf("nil-handle ops allocate %.1f/op, want 0", allocs)
	}
}

func TestTimeSeriesBucketing(t *testing.T) {
	s, err := NewTimeSeries(units.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTimeSeries(0); err == nil {
		t.Error("zero width: expected error")
	}
	s.Add(100*units.Nanosecond, 10)
	s.Add(900*units.Nanosecond, 20)
	s.Add(2500*units.Nanosecond, 40)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.BucketValue(0) != 30 || s.BucketValue(1) != 0 || s.BucketValue(2) != 40 {
		t.Errorf("buckets = %d,%d,%d", s.BucketValue(0), s.BucketValue(1), s.BucketValue(2))
	}
	if s.BucketValue(-1) != 0 || s.BucketValue(99) != 0 {
		t.Error("out-of-range buckets must read 0")
	}
	if s.Width() != units.Microsecond {
		t.Errorf("Width = %v", s.Width())
	}
}

func TestScopePrefixing(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("fused/T-NLG")
	sc.Counter("memory.read_bytes").Add(7)
	if got := r.CounterValue("fused/T-NLG/memory.read_bytes"); got != 7 {
		t.Errorf("scoped counter = %d, want 7", got)
	}
	inner := sc.Scope("dev0")
	inner.Gauge("depth").Set(3)
	if got := r.GaugeValue("fused/T-NLG/dev0/depth"); got != 3 {
		t.Errorf("nested scoped gauge = %d, want 3", got)
	}
	sc.Series("traffic", units.Microsecond).Add(0, 1)
	if _, ok := r.series["fused/T-NLG/traffic"]; !ok {
		t.Error("scoped series not registered under the prefixed name")
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	r := NewRegistry()
	if tr := r.Track("gpu"); tr != nil {
		t.Error("Track must be nil while the timeline is disabled")
	}
	if r.TimelineEnabled() {
		t.Error("timeline enabled before EnableTimeline")
	}
	r.EnableTimeline()
	if tr := r.Track("gpu"); tr == nil {
		t.Error("Track must be live after EnableTimeline")
	}
}

func TestTrackRecording(t *testing.T) {
	r := NewRegistry()
	r.EnableTimeline()
	tr := r.Scope("run").Track("gpu")
	tr.Span("stage0.compute", 10, 30)
	tr.Instant("gemm-done", 30)
	if tr.Events() != 2 {
		t.Errorf("events = %d, want 2", tr.Events())
	}
	if got := r.Scope("run").Track("gpu"); got != tr {
		t.Error("same scope+track name must return the same track")
	}
	names := r.TrackNames()
	if len(names) != 1 || names[0] != "run/gpu" {
		t.Errorf("TrackNames = %v", names)
	}
}

func TestSpanPanicsOnInvertedRange(t *testing.T) {
	r := NewRegistry()
	r.EnableTimeline()
	tr := r.Track("x")
	defer func() {
		if recover() == nil {
			t.Error("inverted span should panic")
		}
	}()
	tr.Span("bad", 10, 5)
}

func TestWriteMetricsStableAndSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.second").Add(2)
	r.Counter("a.first").Add(1)
	r.Gauge("g").Set(-4)
	r.Series("s", 2*units.Nanosecond).Add(5*units.Nanosecond, 9)

	var one, two strings.Builder
	if err := r.WriteMetrics(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteMetrics(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("WriteMetrics not deterministic")
	}
	out := one.String()
	if strings.Index(out, "a.first") > strings.Index(out, "b.second") {
		t.Error("counters not sorted by name")
	}
	want := `{
  "counters": {
    "a.first": 1,
    "b.second": 2
  },
  "gauges": {
    "g": -4
  },
  "series": {
    "s": {"bucket_ps": 2000, "values": [0, 0, 9]}
  }
}
`
	if out != want {
		t.Errorf("WriteMetrics output:\n%s\nwant:\n%s", out, want)
	}
}
