package metrics

import (
	"testing"

	"t3sim/internal/units"
)

// BenchmarkNilHandles measures the uninstrumented fast path: every model
// hot-path touches its instrument handles unconditionally, so with no sink
// attached these nil-receiver calls are the entire metrics overhead. Run
// with -benchmem: the report must show 0 B/op, 0 allocs/op.
func BenchmarkNilHandles(b *testing.B) {
	var c *Counter
	var tr *Track
	var s *TimeSeries
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		tr.Span("span", 0, 1)
		s.Add(0, 1)
	}
}

// BenchmarkLiveCounter is the attached-mode counterpoint: one atomic add.
func BenchmarkLiveCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkLiveSpan measures timeline span recording (attached mode).
func BenchmarkLiveSpan(b *testing.B) {
	r := NewRegistry()
	r.EnableTimeline()
	tr := r.Track("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span("span", units.Time(i), units.Time(i+1))
	}
}
