package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"testing"

	"t3sim/internal/units"
)

// Fuzzing the exporters: whatever instrument names and simulated times the
// models record — hostile strings, negative or extreme timestamps — the two
// export formats must stay machine-valid. WriteMetrics/WriteTrace output is
// consumed by Perfetto and downstream tooling, where "almost JSON" fails in
// ways a unit test with friendly inputs never sees. FuzzWriteTrace found the
// psToMicros negative-remainder bug ("0.-00001") this package now guards
// against.

// traceDoc mirrors the Chrome trace-event JSON the exporter writes.
type traceDoc struct {
	TraceEvents []struct {
		Ph   string      `json:"ph"`
		Pid  int         `json:"pid"`
		Tid  int         `json:"tid"`
		Ts   json.Number `json:"ts"`
		Dur  json.Number `json:"dur"`
		Name string      `json:"name"`
	} `json:"traceEvents"`
}

// decodeTrace parses an exported trace strictly (UseNumber keeps timestamp
// literals verbatim so malformed numbers fail the decode, not a float cast).
func decodeTrace(t *testing.T, raw []byte) traceDoc {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var doc traceDoc
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	return doc
}

func FuzzWriteTrace(f *testing.F) {
	f.Add("run", "track", "span", int64(0), int64(1000), int64(500))
	f.Add("", "t", "", int64(-1), int64(0), int64(-1))                           // negative epoch, the psToMicros bug
	f.Add("a/b\"c", "t\n", "n\\", int64(math.MinInt64), int64(5), int64(7))      // hostile names, extreme magnitude
	f.Add("s", "t", "x", int64(math.MaxInt64-1), int64(math.MaxInt64), int64(3)) // saturating end
	f.Fuzz(func(t *testing.T, scope, track, name string, start, dur, instant int64) {
		reg := NewRegistry()
		reg.EnableTimeline()
		tr := reg.Scope(scope).Track(track)
		end := start
		if dur > 0 {
			if end > math.MaxInt64-dur {
				end = math.MaxInt64
			} else {
				end = start + dur
			}
		}
		tr.Span(name, units.Time(start), units.Time(end))
		tr.Instant(name, units.Time(instant))

		var buf bytes.Buffer
		if err := reg.WriteTrace(&buf); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		doc := decodeTrace(t, buf.Bytes())

		// Structural validity: every event has a known phase and a positive
		// pid; complete events carry a parseable timestamp pair with a
		// non-negative duration; instants carry a parseable timestamp.
		spans, instants := 0, 0
		for _, e := range doc.TraceEvents {
			switch e.Ph {
			case "M":
				// metadata (process/thread names)
			case "X":
				spans++
				if _, err := strconv.ParseFloat(e.Ts.String(), 64); err != nil {
					t.Errorf("span ts %q: %v", e.Ts, err)
				}
				d, err := strconv.ParseFloat(e.Dur.String(), 64)
				if err != nil {
					t.Errorf("span dur %q: %v", e.Dur, err)
				} else if d < 0 {
					t.Errorf("span duration %v negative", d)
				}
			case "i":
				instants++
				if _, err := strconv.ParseFloat(e.Ts.String(), 64); err != nil {
					t.Errorf("instant ts %q: %v", e.Ts, err)
				}
			default:
				t.Errorf("unknown trace phase %q", e.Ph)
			}
			if e.Pid < 1 {
				t.Errorf("event with pid %d", e.Pid)
			}
		}
		// Matched recording: exactly the one span and one instant we wrote.
		if spans != 1 || instants != 1 {
			t.Errorf("got %d spans and %d instants, recorded 1+1", spans, instants)
		}
	})
}

// jsonKey maps an instrument name to the key it will carry in the exported
// JSON document: encoding/json replaces invalid UTF-8 with U+FFFD, so a name
// like "\x96" round-trips as "�" (found by FuzzWriteMetrics).
func jsonKey(t *testing.T, name string) string {
	t.Helper()
	var out string
	if err := json.Unmarshal(jsonString(name), &out); err != nil {
		t.Fatalf("name %q does not encode to a JSON string: %v", name, err)
	}
	return out
}

func FuzzWriteMetrics(f *testing.F) {
	f.Add("memory.chan0.read_bytes", int64(1), int64(2), int64(1000), int64(0), int64(5))
	f.Add("", int64(-7), int64(math.MinInt64), int64(0), int64(-3), int64(0))
	f.Add("quote\"brace}\x00newline\n", int64(math.MaxInt64), int64(-1), int64(-5), int64(1<<40), int64(-9))
	f.Add("\x96", int64(1), int64(-60), int64(1075), int64(-188), int64(5)) // invalid UTF-8 exports as U+FFFD
	f.Fuzz(func(t *testing.T, name string, cv, gv, width, at, sv int64) {
		reg := NewRegistry()
		reg.Counter(name).Add(cv)
		reg.Scope(name).Gauge(name).Set(gv)
		if width <= 0 {
			width = 1
		}
		if at < 0 { // negative sample times panic by contract; keep in-domain
			at = 0
		}
		// Bound the series length: buckets are allocated up to at/width, so an
		// extreme timestamp over a tiny width would allocate billions. Clamp
		// the bucket index, not the raw time (safe from overflow: when the
		// clamp applies, width < at/4096 ≤ MaxInt64/4096).
		const maxBuckets = 1 << 12
		if at/width >= maxBuckets {
			at = (maxBuckets - 1) * width
		}
		reg.Series(name, units.Time(width)).Add(units.Time(at), sv)

		var buf bytes.Buffer
		if err := reg.WriteMetrics(&buf); err != nil {
			t.Fatalf("WriteMetrics: %v", err)
		}
		var doc struct {
			Counters map[string]int64 `json:"counters"`
			Gauges   map[string]int64 `json:"gauges"`
			Series   map[string]struct {
				BucketPS int64   `json:"bucket_ps"`
				Values   []int64 `json:"values"`
			} `json:"series"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("metrics export is not valid JSON: %v\n%s", err, buf.Bytes())
		}
		key := jsonKey(t, name)
		if got := doc.Counters[key]; got != cv {
			t.Errorf("counter %q round-tripped to %d, want %d", key, got, cv)
		}
		scoped := jsonKey(t, name+"/"+name)
		if got := doc.Gauges[scoped]; got != gv {
			t.Errorf("gauge %q round-tripped to %d, want %d", scoped, got, gv)
		}
		s, ok := doc.Series[key]
		if !ok {
			t.Fatalf("series %q missing from export", key)
		}
		if s.BucketPS != width {
			t.Errorf("series width round-tripped to %d, want %d", s.BucketPS, width)
		}
		idx := int(at / width)
		if idx >= len(s.Values) || s.Values[idx] != sv {
			t.Errorf("series bucket %d missing value %d in %v", idx, sv, s.Values)
		}
	})
}

// TestTraceNegativeTimeValidJSON pins the psToMicros regression outside the
// fuzz corpus: a span starting before the epoch must still export as valid
// JSON with a correctly signed timestamp.
func TestTraceNegativeTimeValidJSON(t *testing.T) {
	reg := NewRegistry()
	reg.EnableTimeline()
	tr := reg.Scope("run").Track("t")
	tr.Span("early", units.Time(-1_500_000), units.Time(-499_999)) // -1.5us .. ~-0.5us
	tr.Instant("mark", units.Time(-1))

	var buf bytes.Buffer
	if err := reg.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	doc := decodeTrace(t, buf.Bytes())
	var sawSpan, sawInstant bool
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			sawSpan = true
			if e.Ts.String() != "-1.500000" {
				t.Errorf("span ts = %s, want -1.500000", e.Ts)
			}
			if e.Dur.String() != "1.000001" {
				t.Errorf("span dur = %s, want 1.000001", e.Dur)
			}
		case "i":
			sawInstant = true
			if e.Ts.String() != "-0.000001" {
				t.Errorf("instant ts = %s, want -0.000001", e.Ts)
			}
		}
	}
	if !sawSpan || !sawInstant {
		t.Fatalf("span/instant missing from trace: %s", buf.Bytes())
	}
}
