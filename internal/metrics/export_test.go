package metrics

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"t3sim/internal/units"
)

// TestWriteTraceGolden pins the Perfetto exporter's exact byte output:
// stable field ordering, exact picosecond→microsecond timestamp
// formatting, process/track metadata. ui.perfetto.dev and chrome://tracing
// both parse this shape.
func TestWriteTraceGolden(t *testing.T) {
	r := NewRegistry()
	r.EnableTimeline()

	// Registered deliberately out of name order: export sorts processes.
	run := r.Scope("run/fc2")
	gpu := run.Track("gpu")
	gpu.Span("stage0.compute", 0, 1500*units.Nanosecond)
	gpu.Span("stage1.compute", 1500*units.Nanosecond, 2*units.Microsecond)
	mem := run.Track("memory")
	mem.Instant("mca-window-end", 42*units.Picosecond)
	base := r.Scope("baseline")
	base.Track("gpu").Span("kernel", 0, units.Millisecond)
	r.Track("root").Instant("start", 0)

	var got strings.Builder
	if err := r.WriteTrace(&got); err != nil {
		t.Fatal(err)
	}
	want := `{"displayTimeUnit": "ns", "traceEvents": [
{"ph": "M", "pid": 1, "name": "process_name", "args": {"name": "t3sim"}},
{"ph": "M", "pid": 1, "name": "process_sort_index", "args": {"sort_index": 1}},
{"ph": "M", "pid": 1, "tid": 1, "name": "thread_name", "args": {"name": "root"}},
{"ph": "i", "pid": 1, "tid": 1, "ts": 0.000000, "s": "t", "name": "start"},
{"ph": "M", "pid": 2, "name": "process_name", "args": {"name": "baseline"}},
{"ph": "M", "pid": 2, "name": "process_sort_index", "args": {"sort_index": 2}},
{"ph": "M", "pid": 2, "tid": 1, "name": "thread_name", "args": {"name": "gpu"}},
{"ph": "X", "pid": 2, "tid": 1, "ts": 0.000000, "dur": 1000.000000, "name": "kernel"},
{"ph": "M", "pid": 3, "name": "process_name", "args": {"name": "run/fc2"}},
{"ph": "M", "pid": 3, "name": "process_sort_index", "args": {"sort_index": 3}},
{"ph": "M", "pid": 3, "tid": 1, "name": "thread_name", "args": {"name": "gpu"}},
{"ph": "X", "pid": 3, "tid": 1, "ts": 0.000000, "dur": 1.500000, "name": "stage0.compute"},
{"ph": "X", "pid": 3, "tid": 1, "ts": 1.500000, "dur": 0.500000, "name": "stage1.compute"},
{"ph": "M", "pid": 3, "tid": 2, "name": "thread_name", "args": {"name": "memory"}},
{"ph": "i", "pid": 3, "tid": 2, "ts": 0.000042, "s": "t", "name": "mca-window-end"}
]}
`
	if got.String() != want {
		t.Errorf("trace output:\n%s\nwant:\n%s", got.String(), want)
	}

	// The golden bytes must also be valid JSON with the documented shape.
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(got.String()), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" || len(doc.TraceEvents) != 15 {
		t.Errorf("parsed %d events, displayTimeUnit %q", len(doc.TraceEvents), doc.DisplayTimeUnit)
	}
}

// TestTraceDeterministicUnderConcurrency is the "-j" determinism guard:
// scopes recorded from racing goroutines in scrambled order must export
// byte-identically to a serial recording, because the exporter sorts
// processes by name and renumbers pids/tids.
func TestTraceDeterministicUnderConcurrency(t *testing.T) {
	record := func(sink Sink, run int) {
		sc := sink.Scope(fmt.Sprintf("case%02d", run))
		tr := sc.Track("gpu")
		m := sc.Track("memory")
		for i := 0; i < 10; i++ {
			at := units.Time(run*1000 + i*10)
			tr.Span(fmt.Sprintf("stage%d", i), at, at+5)
			m.Instant("issue", at+1)
		}
		sc.Counter("bytes").Add(int64(run))
	}

	serial := NewRegistry()
	serial.EnableTimeline()
	for run := 0; run < 16; run++ {
		record(serial, run)
	}

	concurrent := NewRegistry()
	concurrent.EnableTimeline()
	order := rand.New(rand.NewSource(1)).Perm(16)
	var wg sync.WaitGroup
	for _, run := range order {
		wg.Add(1)
		go func(run int) {
			defer wg.Done()
			record(concurrent, run)
		}(run)
	}
	wg.Wait()

	var a, b strings.Builder
	if err := serial.WriteTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := concurrent.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("trace export differs between serial and concurrent recording")
	}

	var am, bm strings.Builder
	if err := serial.WriteMetrics(&am); err != nil {
		t.Fatal(err)
	}
	if err := concurrent.WriteMetrics(&bm); err != nil {
		t.Fatal(err)
	}
	if am.String() != bm.String() {
		t.Error("metrics export differs between serial and concurrent recording")
	}
}

func TestPsToMicros(t *testing.T) {
	cases := []struct {
		in   units.Time
		want string
	}{
		{0, "0.000000"},
		{1, "0.000001"},
		{units.Microsecond, "1.000000"},
		{units.Microsecond + 1, "1.000001"},
		{units.Second, "1000000.000000"},
		{123456789, "123.456789"},
	}
	for _, c := range cases {
		if got := psToMicros(c.in); got != c.want {
			t.Errorf("psToMicros(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}
