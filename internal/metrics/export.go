package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"t3sim/internal/units"
)

// Export formats. Both writers produce deterministic bytes: instruments
// are sorted by name, timeline processes are sorted by scope name and
// renumbered at export time, and within a process tracks and events keep
// their (single-goroutine, hence deterministic) recording order — so the
// output is byte-identical no matter how many worker goroutines recorded
// concurrently (-j).

// WriteMetrics renders every registered counter, gauge and time series as
// a stable JSON document:
//
//	{
//	  "counters": {"memory.comm.read_bytes": 123, ...},
//	  "gauges":   {"t3core.tracker.max_live": 42, ...},
//	  "series":   {"memory.traffic.comm_read": {"bucket_ps": 1000, "values": [..]}, ...}
//	}
func (r *Registry) WriteMetrics(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)

	bw.WriteString("{\n  \"counters\": {")
	writeKV(bw, sortedKeys(r.counters), func(k string) string {
		return fmt.Sprintf("%d", r.counters[k].Value())
	})
	bw.WriteString("},\n  \"gauges\": {")
	writeKV(bw, sortedKeys(r.gauges), func(k string) string {
		return fmt.Sprintf("%d", r.gauges[k].Value())
	})
	bw.WriteString("},\n  \"series\": {")
	writeKV(bw, sortedKeys(r.series), func(k string) string {
		s := r.series[k]
		buf := fmt.Sprintf("{\"bucket_ps\": %d, \"values\": [", int64(s.width))
		for i, v := range s.buckets {
			if i > 0 {
				buf += ", "
			}
			buf += fmt.Sprintf("%d", v)
		}
		return buf + "]}"
	})
	bw.WriteString("}\n}\n")
	return bw.Flush()
}

// writeKV renders sorted "key": value pairs with stable layout.
func writeKV(bw *bufio.Writer, keys []string, value func(string) string) {
	for i, k := range keys {
		if i > 0 {
			bw.WriteString(",")
		}
		bw.WriteString("\n    ")
		bw.Write(jsonString(k))
		bw.WriteString(": ")
		bw.WriteString(value(k))
	}
	if len(keys) > 0 {
		bw.WriteString("\n  ")
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteTrace renders the timeline in the Chrome trace-event JSON format
// Perfetto loads (catapult "JSON Array Format" wrapped in an object).
// Scopes become processes, tracks become threads, spans become complete
// ("X") events and instants become thread-scoped instant ("i") events.
// Timestamps are microseconds with picosecond precision. Open the file at
// ui.perfetto.dev (or chrome://tracing).
func (r *Registry) WriteTrace(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	procs := make([]*process, len(r.procList))
	copy(procs, r.procList)
	sort.Slice(procs, func(i, j int) bool { return procs[i].name < procs[j].name })

	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	for pi, p := range procs {
		pid := pi + 1
		pname := p.name
		if pname == "" {
			pname = "t3sim"
		}
		emit(fmt.Sprintf("{\"ph\": \"M\", \"pid\": %d, \"name\": \"process_name\", \"args\": {\"name\": %s}}",
			pid, jsonString(pname)))
		emit(fmt.Sprintf("{\"ph\": \"M\", \"pid\": %d, \"name\": \"process_sort_index\", \"args\": {\"sort_index\": %d}}",
			pid, pid))
		for ti, t := range p.tracks {
			tid := ti + 1
			emit(fmt.Sprintf("{\"ph\": \"M\", \"pid\": %d, \"tid\": %d, \"name\": \"thread_name\", \"args\": {\"name\": %s}}",
				pid, tid, jsonString(t.name)))
			for _, e := range t.events {
				switch e.phase {
				case phaseSpan:
					emit(fmt.Sprintf("{\"ph\": \"X\", \"pid\": %d, \"tid\": %d, \"ts\": %s, \"dur\": %s, \"name\": %s}",
						pid, tid, psToMicros(e.start), psToMicros(e.dur), jsonString(e.name)))
				case phaseInstant:
					emit(fmt.Sprintf("{\"ph\": \"i\", \"pid\": %d, \"tid\": %d, \"ts\": %s, \"s\": \"t\", \"name\": %s}",
						pid, tid, psToMicros(e.start), jsonString(e.name)))
				}
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// psToMicros formats a picosecond quantity as decimal microseconds without
// any floating-point rounding: integer microseconds, then the six-digit
// sub-microsecond remainder (1 ps = 0.000001 µs). Negative times (a span
// recorded before the engine epoch) carry the sign on the whole literal —
// naively formatting the remainder would emit "0.-00001", which is not a
// JSON number (caught by FuzzWriteTrace).
func psToMicros(t units.Time) string {
	const psPerMicro = uint64(units.Microsecond)
	ps := int64(t)
	mag := uint64(ps)
	sign := ""
	if ps < 0 {
		mag = -mag // two's complement magnitude; exact even for MinInt64
		sign = "-"
	}
	return fmt.Sprintf("%s%d.%06d", sign, mag/psPerMicro, mag%psPerMicro)
}

// jsonString renders s as a JSON string literal. encoding/json string
// escaping is deterministic.
func jsonString(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		panic(err)
	}
	return b
}
