package gemm

import (
	"fmt"

	"t3sim/internal/units"
)

// Tiling describes how a tiled GEMM kernel blocks its output: each WG
// produces a TileM×TileN block of C, split among WFPerWG wavefronts that
// each produce a complete WF sub-tile. The paper's tracker assumes exactly
// this structure ("each WF/WG generates a complete tile of data", §4.2.1),
// matching the tiled kernels in rocBLAS/cuBLAS/CUTLASS.
type Tiling struct {
	TileM, TileN int
	WFPerWG      int
	// SplitK is the K-dimension work split: SplitK WGs cooperate on one
	// output tile, each producing a partial tile that must be reduced
	// (§7.7). 1 means the standard data-parallel-over-output tiling.
	SplitK int
}

// DefaultTiling matches the 128×128 macro-tile, 4-wavefront kernels the
// evaluated BLAS libraries pick for large Transformer GEMMs.
func DefaultTiling() Tiling {
	return Tiling{TileM: 128, TileN: 128, WFPerWG: 4, SplitK: 1}
}

// Validate reports whether the tiling is usable.
func (t Tiling) Validate() error {
	if t.TileM <= 0 || t.TileN <= 0 {
		return fmt.Errorf("gemm: non-positive tile in %+v", t)
	}
	if t.WFPerWG <= 0 || t.WFPerWG > 8 {
		// The tracker tags WFs with 3 bits (§4.2.1), so at most 8 per WG.
		return fmt.Errorf("gemm: WFPerWG = %d, must be in 1..8", t.WFPerWG)
	}
	if t.SplitK <= 0 {
		return fmt.Errorf("gemm: SplitK = %d, must be positive", t.SplitK)
	}
	return nil
}

// Grid is the launch geometry of a Shape under a Tiling.
type Grid struct {
	Shape  Shape
	Tiling Tiling

	WGsM, WGsN int // WG grid covering the output
	NumWGs     int // total WGs (including the SplitK factor)
	WFTileM    int // rows of one WF's sub-tile
	WFTileN    int // cols of one WF's sub-tile
}

// NewGrid derives the launch geometry. The WF sub-tile split is along M
// (each WF owns TileM/WFPerWG rows of the WG tile), the common layout for
// the modeled kernels; when TileM is not divisible the last WF's tile is
// smaller, which the byte accounting below rounds against the caller.
func NewGrid(s Shape, t Tiling) (Grid, error) {
	if err := s.Validate(); err != nil {
		return Grid{}, err
	}
	if err := t.Validate(); err != nil {
		return Grid{}, err
	}
	g := Grid{Shape: s, Tiling: t}
	g.WGsM = int(units.CeilDiv(int64(s.M), int64(t.TileM)))
	g.WGsN = int(units.CeilDiv(int64(s.N), int64(t.TileN)))
	g.NumWGs = g.WGsM * g.WGsN * t.SplitK
	g.WFTileM = int(units.CeilDiv(int64(t.TileM), int64(t.WFPerWG)))
	g.WFTileN = t.TileN
	return g, nil
}

// NumWFs returns the total wavefront count of the launch.
func (g Grid) NumWFs() int { return g.NumWGs * g.Tiling.WFPerWG }

// WFTileBytes returns the output bytes one wavefront is responsible for: the
// quantum the T3 tracker counts against. The paper's driver computes it as
// (M·N)/#WF (§4.2.1), which equals the geometric WF sub-tile for exact
// launches and apportions boundary raggedness evenly otherwise. Split-K WGs
// share tiles, so the division uses the WF count of one K-slice.
func (g Grid) WFTileBytes() units.Bytes {
	wfsPerSlice := int64(g.NumWFs()) / int64(g.Tiling.SplitK)
	elems := int64(g.Shape.M) * int64(g.Shape.N)
	return units.Bytes(elems/wfsPerSlice) * g.Shape.ElemBytes
}

// WGTileBytes returns the output bytes one workgroup produces.
func (g Grid) WGTileBytes() units.Bytes {
	return units.Bytes(int64(g.Tiling.TileM)*int64(g.Tiling.TileN)) * g.Shape.ElemBytes
}

// UpdatesPerElement returns how many times each output element is written
// for this launch geometry: 1 for standard tilings, SplitK for split-K
// kernels where each of the SplitK partial tiles updates the element (§7.7).
func (g Grid) UpdatesPerElement() int { return g.Tiling.SplitK }

// WGInputBytes returns the operand bytes one WG streams to produce its tile:
// a TileM×K panel of A plus a K×TileN panel of B (K already divided across
// the SplitK WGs sharing the tile).
func (g Grid) WGInputBytes() units.Bytes {
	k := int64(units.CeilDiv(int64(g.Shape.K), int64(g.Tiling.SplitK)))
	a := int64(g.Tiling.TileM) * k
	b := k * int64(g.Tiling.TileN)
	return units.Bytes(a+b) * g.Shape.ElemBytes
}

// WGFLOPs returns the MAC work of one WG.
func (g Grid) WGFLOPs() int64 {
	k := units.CeilDiv(int64(g.Shape.K), int64(g.Tiling.SplitK))
	return 2 * int64(g.Tiling.TileM) * int64(g.Tiling.TileN) * k
}

// Stages returns how many full waves of WGs the launch needs when at most
// concurrentWGs can be resident at once, and the WG count of each stage.
// Every stage but possibly the last is full (§2.5).
func (g Grid) Stages(concurrentWGs int) []int {
	if concurrentWGs <= 0 {
		panic("gemm: Stages with non-positive concurrency")
	}
	n := g.NumWGs
	var stages []int
	for n > 0 {
		w := concurrentWGs
		if n < w {
			w = n
		}
		stages = append(stages, w)
		n -= w
	}
	return stages
}
