// Package gemm models the structure of tiled GPU GEMM kernels at the level
// T3 depends on (§2.5, §4.2 of the paper): a C[M×N] = A[M×K]·B[K×N] kernel
// is blocked into workgroup (WG) output tiles, each WG's tile is divided
// among its wavefronts (WFs), and the WG grid executes in "stages" (waves)
// bounded by how many WGs the compute units can hold concurrently.
//
// Tensor parallelism slices the K (dot-product) dimension: compute per WG
// shrinks but the output size, WG count and WG stages are unchanged — the
// observation T3's fine-grained overlap is built on.
package gemm

import (
	"fmt"

	"t3sim/internal/units"
)

// Shape describes one GEMM: C[M×N] += A[M×K] · B[K×N].
type Shape struct {
	M, N, K int
	// ElemBytes is the element size (2 for the paper's FP16 runs).
	ElemBytes units.Bytes
	// TransA/TransB mark transposed operands as seen by the kernel. Forward
	// Transformer GEMMs read transposed weights, backward ones do not
	// (§5.2); transposed layouts stride awkwardly and cost some efficiency.
	TransA, TransB bool
}

// Validate reports whether the shape is usable.
func (s Shape) Validate() error {
	if s.M <= 0 || s.N <= 0 || s.K <= 0 {
		return fmt.Errorf("gemm: non-positive dimension in %v", s)
	}
	if s.ElemBytes <= 0 {
		return fmt.Errorf("gemm: non-positive element size in %v", s)
	}
	return nil
}

// String renders the shape compactly.
func (s Shape) String() string {
	ta, tb := "N", "N"
	if s.TransA {
		ta = "T"
	}
	if s.TransB {
		tb = "T"
	}
	return fmt.Sprintf("GEMM[%dx%dx%d %s%s e%d]", s.M, s.N, s.K, ta, tb, int64(s.ElemBytes))
}

// FLOPs returns the multiply-accumulate work, counting one MAC as two ops.
func (s Shape) FLOPs() int64 { return 2 * int64(s.M) * int64(s.N) * int64(s.K) }

// OutputBytes returns the size of C.
func (s Shape) OutputBytes() units.Bytes {
	return units.Bytes(int64(s.M)*int64(s.N)) * s.ElemBytes
}

// ABytes returns the size of operand A.
func (s Shape) ABytes() units.Bytes {
	return units.Bytes(int64(s.M)*int64(s.K)) * s.ElemBytes
}

// BBytes returns the size of operand B.
func (s Shape) BBytes() units.Bytes {
	return units.Bytes(int64(s.K)*int64(s.N)) * s.ElemBytes
}

// InputBytes returns the combined operand footprint.
func (s Shape) InputBytes() units.Bytes { return s.ABytes() + s.BBytes() }

// SliceK returns the tensor-parallel slice of s across tp devices: K is
// divided (rounded up so no work is lost), M, N and the output are unchanged.
// This is the row-parallel slicing whose partial outputs need an all-reduce
// (§2.4).
func (s Shape) SliceK(tp int) (Shape, error) {
	if tp <= 0 {
		return Shape{}, fmt.Errorf("gemm: SliceK degree %d, must be positive", tp)
	}
	if tp > s.K {
		return Shape{}, fmt.Errorf("gemm: SliceK degree %d exceeds K=%d", tp, s.K)
	}
	out := s
	out.K = int(units.CeilDiv(int64(s.K), int64(tp)))
	return out, nil
}

// SliceN returns the column-parallel slice of s across tp devices: each
// device computes a complete N/tp shard of the output (rounded up). Shards
// need no reduction; gathering them is the all-gather fusion target of
// §7.1/§7.2.
func (s Shape) SliceN(tp int) (Shape, error) {
	if tp <= 0 {
		return Shape{}, fmt.Errorf("gemm: SliceN degree %d, must be positive", tp)
	}
	if tp > s.N {
		return Shape{}, fmt.Errorf("gemm: SliceN degree %d exceeds N=%d", tp, s.N)
	}
	out := s
	out.N = int(units.CeilDiv(int64(s.N), int64(tp)))
	return out, nil
}
