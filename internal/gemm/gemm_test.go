package gemm

import (
	"testing"
	"testing/quick"

	"t3sim/internal/units"
)

func shape(m, n, k int) Shape { return Shape{M: m, N: n, K: k, ElemBytes: 2} }

func TestShapeBasics(t *testing.T) {
	s := shape(1024, 512, 256)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.FLOPs(); got != 2*1024*512*256 {
		t.Errorf("FLOPs = %d", got)
	}
	if got := s.OutputBytes(); got != 1024*512*2 {
		t.Errorf("OutputBytes = %v", got)
	}
	if got := s.ABytes(); got != 1024*256*2 {
		t.Errorf("ABytes = %v", got)
	}
	if got := s.BBytes(); got != 256*512*2 {
		t.Errorf("BBytes = %v", got)
	}
	if got := s.InputBytes(); got != s.ABytes()+s.BBytes() {
		t.Errorf("InputBytes = %v", got)
	}
}

func TestShapeValidate(t *testing.T) {
	bad := []Shape{
		{M: 0, N: 1, K: 1, ElemBytes: 2},
		{M: 1, N: -1, K: 1, ElemBytes: 2},
		{M: 1, N: 1, K: 0, ElemBytes: 2},
		{M: 1, N: 1, K: 1, ElemBytes: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error for %v", i, s)
		}
	}
}

func TestShapeString(t *testing.T) {
	s := Shape{M: 8, N: 4, K: 2, ElemBytes: 2, TransB: true}
	if got := s.String(); got != "GEMM[8x4x2 NT e2]" {
		t.Errorf("String = %q", got)
	}
}

func TestSliceK(t *testing.T) {
	s := shape(100, 100, 1000)
	sl, err := s.SliceK(8)
	if err != nil {
		t.Fatal(err)
	}
	if sl.K != 125 || sl.M != 100 || sl.N != 100 {
		t.Errorf("SliceK = %v", sl)
	}
	// Output size is invariant under slicing — the T3 premise.
	if sl.OutputBytes() != s.OutputBytes() {
		t.Error("slicing changed output size")
	}
	if _, err := s.SliceK(0); err == nil {
		t.Error("SliceK(0): expected error")
	}
	if _, err := s.SliceK(2000); err == nil {
		t.Error("SliceK > K: expected error")
	}
	// Rounding never loses work.
	sl7, _ := s.SliceK(7)
	if sl7.K*7 < 1000 {
		t.Errorf("SliceK(7) lost work: K=%d", sl7.K)
	}
}

func TestGridGeometry(t *testing.T) {
	g, err := NewGrid(shape(1024, 512, 256), DefaultTiling())
	if err != nil {
		t.Fatal(err)
	}
	if g.WGsM != 8 || g.WGsN != 4 || g.NumWGs != 32 {
		t.Errorf("grid = %dx%d (%d WGs)", g.WGsM, g.WGsN, g.NumWGs)
	}
	if g.NumWFs() != 128 {
		t.Errorf("NumWFs = %d", g.NumWFs())
	}
	if g.WFTileM != 32 || g.WFTileN != 128 {
		t.Errorf("WF tile = %dx%d", g.WFTileM, g.WFTileN)
	}
	if g.WFTileBytes() != 32*128*2 {
		t.Errorf("WFTileBytes = %v", g.WFTileBytes())
	}
	if g.WGTileBytes() != 128*128*2 {
		t.Errorf("WGTileBytes = %v", g.WGTileBytes())
	}
	if g.UpdatesPerElement() != 1 {
		t.Errorf("UpdatesPerElement = %d", g.UpdatesPerElement())
	}
}

func TestGridRoundsUpPartialTiles(t *testing.T) {
	g, err := NewGrid(shape(130, 129, 64), DefaultTiling())
	if err != nil {
		t.Fatal(err)
	}
	if g.WGsM != 2 || g.WGsN != 2 || g.NumWGs != 4 {
		t.Errorf("grid = %dx%d (%d)", g.WGsM, g.WGsN, g.NumWGs)
	}
}

func TestGridWFCoverageInvariant(t *testing.T) {
	// The driver's wf_tile_size = (M·N)/#WF apportions the output across
	// WFs: the sum is never above the output and undershoots by less than
	// one element per WF (pure floor-division slack).
	f := func(m, n, k uint8) bool {
		s := shape(int(m)+1, int(n)+1, int(k)+1)
		g, err := NewGrid(s, DefaultTiling())
		if err != nil {
			return false
		}
		covered := units.Bytes(g.NumWFs()) * g.WFTileBytes() / units.Bytes(g.Tiling.SplitK)
		slack := units.Bytes(g.NumWFs()) * s.ElemBytes
		return covered <= s.OutputBytes() && covered+slack > s.OutputBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitK(t *testing.T) {
	til := DefaultTiling()
	til.SplitK = 4
	g, err := NewGrid(shape(256, 256, 4096), til)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := NewGrid(shape(256, 256, 4096), DefaultTiling())
	if g.NumWGs != 4*base.NumWGs {
		t.Errorf("split-K WGs = %d, want %d", g.NumWGs, 4*base.NumWGs)
	}
	if g.UpdatesPerElement() != 4 {
		t.Errorf("UpdatesPerElement = %d, want 4", g.UpdatesPerElement())
	}
	// Each split-K WG streams 1/4 of the K panel and does 1/4 of the FLOPs.
	if g.WGFLOPs() != base.WGFLOPs()/4 {
		t.Errorf("split-K WGFLOPs = %d, want %d", g.WGFLOPs(), base.WGFLOPs()/4)
	}
	if g.WGInputBytes() != base.WGInputBytes()/4 {
		t.Errorf("split-K WGInputBytes = %v, want %v", g.WGInputBytes(), base.WGInputBytes()/4)
	}
}

func TestStages(t *testing.T) {
	g, _ := NewGrid(shape(1024, 1024, 128), DefaultTiling()) // 64 WGs
	st := g.Stages(20)
	if len(st) != 4 {
		t.Fatalf("stages = %v, want 4 waves", st)
	}
	want := []int{20, 20, 20, 4}
	total := 0
	for i, w := range st {
		if w != want[i] {
			t.Errorf("stage %d = %d, want %d", i, w, want[i])
		}
		total += w
	}
	if total != g.NumWGs {
		t.Errorf("stage sum = %d, want %d", total, g.NumWGs)
	}
}

func TestStagesPanics(t *testing.T) {
	g, _ := NewGrid(shape(128, 128, 128), DefaultTiling())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.Stages(0)
}

func TestTilingValidate(t *testing.T) {
	bad := []Tiling{
		{TileM: 0, TileN: 128, WFPerWG: 4, SplitK: 1},
		{TileM: 128, TileN: 0, WFPerWG: 4, SplitK: 1},
		{TileM: 128, TileN: 128, WFPerWG: 0, SplitK: 1},
		{TileM: 128, TileN: 128, WFPerWG: 9, SplitK: 1}, // 3-bit wf_id limit
		{TileM: 128, TileN: 128, WFPerWG: 4, SplitK: 0},
	}
	for i, til := range bad {
		if err := til.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if err := DefaultTiling().Validate(); err != nil {
		t.Errorf("DefaultTiling invalid: %v", err)
	}
}

func TestEfficiencyShape(t *testing.T) {
	mk := func(k int, transB bool) float64 {
		s := shape(4096, 4096, k)
		s.TransB = transB
		g, err := NewGrid(s, DefaultTiling())
		if err != nil {
			t.Fatal(err)
		}
		return Efficiency(g)
	}
	// Longer K is more efficient.
	if mk(256, false) >= mk(2048, false) {
		t.Error("efficiency should grow with K")
	}
	// Transposed operands cost something.
	if mk(2048, true) >= mk(2048, false) {
		t.Error("transposed B should cost efficiency")
	}
	// In a sane range.
	for _, k := range []int{64, 256, 1024, 4096} {
		e := mk(k, false)
		if e <= 0.05 || e > 1 {
			t.Errorf("Efficiency(K=%d) = %v, out of range", k, e)
		}
	}
	// Large-K dense GEMMs land in the calibrated 50-60% zone.
	if e := mk(2048, false); e < 0.45 || e > 0.75 {
		t.Errorf("Efficiency(K=2048) = %v, want 0.45..0.75", e)
	}
}

func TestEfficiencyPartialTilePenalty(t *testing.T) {
	full, _ := NewGrid(shape(1024, 1024, 1024), DefaultTiling())
	ragged, _ := NewGrid(shape(1024+1, 1024, 1024), DefaultTiling())
	if Efficiency(ragged) >= Efficiency(full) {
		t.Error("ragged grid should be less efficient")
	}
}

func TestSliceN(t *testing.T) {
	s := shape(100, 1000, 100)
	sl, err := s.SliceN(8)
	if err != nil {
		t.Fatal(err)
	}
	if sl.N != 125 || sl.M != 100 || sl.K != 100 {
		t.Errorf("SliceN = %v", sl)
	}
	// Column-parallel shards shrink the output (no reduction needed).
	if sl.OutputBytes() >= s.OutputBytes() {
		t.Error("shard output not smaller")
	}
	if _, err := s.SliceN(0); err == nil {
		t.Error("SliceN(0): expected error")
	}
	if _, err := s.SliceN(2000); err == nil {
		t.Error("SliceN > N: expected error")
	}
	// Rounding never loses columns.
	sl7, _ := s.SliceN(7)
	if sl7.N*7 < 1000 {
		t.Errorf("SliceN(7) lost columns: N=%d", sl7.N)
	}
}
