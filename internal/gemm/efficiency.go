package gemm

// Efficiency estimates the fraction of peak MAC throughput a tiled kernel
// sustains for a given launch. It captures the three first-order effects the
// paper's GEMM selection exhibits (§5.2, §6.1):
//
//   - K-dimension reuse: short-K GEMMs (the result of tensor-parallel
//     slicing) re-load operands more often per MAC and run further from
//     peak, which is why higher TP degrees make the GEMM side cheaper
//     relative to the collective;
//   - transposed operands stride awkwardly through memory and lose a few
//     percent (forward-pass Transformer GEMMs read transposed weights);
//   - partial boundary tiles waste lanes when M or N is not a multiple of
//     the tile.
//
// The constants were calibrated so that large Transformer GEMMs land at
// 50-60% of peak and K≈256 slices at 30-40%, matching the effective
// throughputs behind the paper's Figure 15 runtime distributions.
func Efficiency(g Grid) float64 {
	const (
		base  = 0.62
		kHalf = 160.0 // K at which reuse efficiency reaches half of base
	)
	k := float64(g.Shape.K) / float64(g.Tiling.SplitK)
	eff := base * k / (k + kHalf)

	if g.Shape.TransA {
		eff *= 0.97
	}
	if g.Shape.TransB {
		eff *= 0.97
	}

	covered := float64(g.WGsM) * float64(g.Tiling.TileM) *
		float64(g.WGsN) * float64(g.Tiling.TileN)
	useful := float64(g.Shape.M) * float64(g.Shape.N)
	eff *= useful / covered

	if eff <= 0 {
		panic("gemm: non-positive efficiency")
	}
	return eff
}
