package collective

import (
	"math/rand"
	"testing"
	"testing/quick"

	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// timedHarness builds a ring + per-device controllers for property tests.
func timedHarness(devices int) (*sim.Engine, Options, error) {
	eng := sim.NewEngine()
	ring, err := interconnect.NewRing(eng, devices, interconnect.DefaultConfig())
	if err != nil {
		return nil, Options{}, err
	}
	devs := make([]*Device, devices)
	for i := range devs {
		mc, err := memory.NewController(eng, memory.DefaultConfig(), memory.ComputeFirst{})
		if err != nil {
			return nil, Options{}, err
		}
		devs[i] = &Device{ID: i, Mem: mc}
	}
	return eng, Options{
		Ring:              ring,
		Devices:           devs,
		BlockBytes:        32 * units.KiB,
		CUs:               80,
		PerCUMemBandwidth: 16 * units.GBps,
		Stream:            memory.StreamComm,
	}, nil
}

// TestPropertyTimedRSAlwaysCompletes: for random device counts and sizes,
// the timed reduce-scatter always drains with exact traffic accounting on
// evenly divisible sizes.
func TestPropertyTimedRSAlwaysCompletes(t *testing.T) {
	f := func(devRaw uint8, sizeRaw uint16, nmc bool) bool {
		devices := int(devRaw)%7 + 2
		size := units.Bytes(int(sizeRaw)%512+devices) * units.Bytes(devices) * units.KiB
		eng, o, err := timedHarness(devices)
		if err != nil {
			return false
		}
		o.TotalBytes = size
		o.NMC = nmc
		done := false
		if err := StartRingReduceScatter(eng, o, func() { done = true }); err != nil {
			return false
		}
		eng.Run()
		if !done {
			return false
		}
		chunk := size / units.Bytes(devices)
		n := units.Bytes(devices)
		for _, d := range o.Devices {
			r := d.Mem.Counters().KindBytes(memory.Read)
			if nmc {
				if r != chunk*(n-1) {
					return false
				}
				if u := d.Mem.Counters().KindBytes(memory.Update); u != chunk*(n-1) {
					return false
				}
			} else {
				if r != chunk*(2*(n-1)-1+2) {
					return false
				}
				if w := d.Mem.Counters().KindBytes(memory.Write); w != chunk*n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTimedRSMonotoneInSize: more bytes never finish faster.
func TestPropertyTimedRSMonotoneInSize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	run := func(size units.Bytes) units.Time {
		eng, o, err := timedHarness(4)
		if err != nil {
			t.Fatal(err)
		}
		o.TotalBytes = size
		var done units.Time
		if err := StartRingReduceScatter(eng, o, func() { done = eng.Now() }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return done
	}
	prevSize := units.Bytes(0)
	var prevTime units.Time
	for i := 0; i < 6; i++ {
		size := prevSize + units.Bytes(rng.Intn(8)+1)*units.MiB
		tm := run(size)
		if prevSize > 0 && tm <= prevTime {
			t.Fatalf("size %v (%v) not slower than %v (%v)", size, tm, prevSize, prevTime)
		}
		prevSize, prevTime = size, tm
	}
}

// TestPropertyAGNeverSlowerThanRS: all-gather does strictly less work than
// reduce-scatter for the same geometry (no reduction reads, no final RMW).
func TestPropertyAGNeverSlowerThanRS(t *testing.T) {
	for _, devices := range []int{2, 4, 8} {
		for _, size := range []units.Bytes{8 * units.MiB, 24 * units.MiB} {
			engRS, oRS, err := timedHarness(devices)
			if err != nil {
				t.Fatal(err)
			}
			oRS.TotalBytes = size
			var rsT units.Time
			if err := StartRingReduceScatter(engRS, oRS, func() { rsT = engRS.Now() }); err != nil {
				t.Fatal(err)
			}
			engRS.Run()

			engAG, oAG, err := timedHarness(devices)
			if err != nil {
				t.Fatal(err)
			}
			oAG.TotalBytes = size
			var agT units.Time
			if err := StartRingAllGather(engAG, oAG, func() { agT = engAG.Now() }); err != nil {
				t.Fatal(err)
			}
			engAG.Run()

			if agT > rsT {
				t.Errorf("n=%d size=%v: AG %v slower than RS %v", devices, size, agT, rsT)
			}
		}
	}
}
