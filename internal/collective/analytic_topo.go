package collective

import (
	"fmt"
	"sort"

	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// AnalyticTopoTime predicts the completion time of (algorithm × op) over a
// topology with a chunk-granularity recurrence: per round, every op's
// arrival is bounded by wire serialization along its route, the sender's CU
// touch rate, and an optional receiver-side fold; each device then pays its
// round's aggregate HBM service before starting the next round. On a
// symmetric ring schedule this collapses exactly to the AnalyticRing* closed
// forms.
//
// The wire term treats each link as an independent work-conserving server
// (every byte routed through a link is serialized there, but hops do not
// wait on each other), which makes this a strict lower bound of the DES —
// the block-granularity store-and-forward engine can only add pipelining
// ramp and rounding on top. AnalyticTopoUpperTime is the matching upper
// bound; on single-hop routes the two coincide and the prediction is exact.
func AnalyticTopoTime(algo Algorithm, op Op, spec interconnect.TopoSpec, o AnalyticOptions) (units.Time, error) {
	return analyticTopo(algo, op, spec, o, false)
}

// AnalyticTopoUpperTime is the pessimistic twin of AnalyticTopoTime: each
// multi-hop transfer fully store-and-forwards chunk by chunk (hop r+1 starts
// only after hop r finishes serializing), which dominates the DES's
// block-pipelined forwarding. The differential battery brackets the DES
// between the two: lower ≤ DES ≤ upper + counted per-block slack.
func AnalyticTopoUpperTime(algo Algorithm, op Op, spec interconnect.TopoSpec, o AnalyticOptions) (units.Time, error) {
	return analyticTopo(algo, op, spec, o, true)
}

// AnalyticTopoTimeBounds returns the [lower, upper] envelope for one cell.
func AnalyticTopoTimeBounds(algo Algorithm, op Op, spec interconnect.TopoSpec, o AnalyticOptions) (lo, hi units.Time, err error) {
	if lo, err = analyticTopo(algo, op, spec, o, false); err != nil {
		return 0, 0, err
	}
	if hi, err = analyticTopo(algo, op, spec, o, true); err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

func analyticTopo(algo Algorithm, op Op, spec interconnect.TopoSpec, o AnalyticOptions, chained bool) (units.Time, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	switch {
	case o.TotalBytes <= 0:
		return 0, fmt.Errorf("collective: TotalBytes = %v", o.TotalBytes)
	case o.MemBandwidth <= 0:
		return 0, fmt.Errorf("collective: MemBandwidth = %v", o.MemBandwidth)
	case o.CUs <= 0:
		return 0, fmt.Errorf("collective: CUs = %d", o.CUs)
	case o.PerCUMemBandwidth <= 0:
		return 0, fmt.Errorf("collective: PerCUMemBandwidth = %v", o.PerCUMemBandwidth)
	case o.Devices != 0 && o.Devices != spec.Devices:
		return 0, fmt.Errorf("collective: %d devices for %d-device topology", o.Devices, spec.Devices)
	}
	n := spec.Devices
	sched, err := buildSchedule(algo, op, n, o.TotalBytes, o.NMC)
	if err != nil {
		return 0, err
	}
	// The routes come from the same deterministic next-hop table the DES
	// uses — routing is part of the topology's spec, not of either model.
	topo, err := spec.Build(sim.NewEngine())
	if err != nil {
		return 0, err
	}

	cuRate := o.cuRate()
	devReady := make([]units.Time, n)
	cuFree := make([]units.Time, n)
	arrive := make([]units.Time, n)
	memB := make([]units.Bytes, n)
	linkBusy := make(map[*interconnect.Link]units.Time, topo.NumLinks())

	ops := make([]sendOp, 0, 64)
	for _, round := range sched.rounds {
		copy(arrive, devReady)
		for d := range memB {
			memB[d] = 0
		}
		// Serve each link's round traffic in release order (devReady is
		// frozen until the round closes, so this is well-defined). For the
		// lower bound this is load-bearing: a work-conserving server is only
		// a valid bound if it never idles a link in front of released work.
		ops = append(ops[:0], round...)
		sort.SliceStable(ops, func(i, j int) bool {
			return devReady[ops[i].src] < devReady[ops[j].src]
		})
		for _, sop := range ops {
			base := devReady[sop.src]
			if sop.dst == sop.src {
				// Local merge kernel: 2 reads + 1 write.
				cu := maxTime(cuFree[sop.src], base) + cuRate.TransferTime(3*sop.bytes)
				cuFree[sop.src] = cu
				memB[sop.src] += 3 * sop.bytes
				if cu > arrive[sop.src] {
					arrive[sop.src] = cu
				}
				continue
			}
			touches := units.Bytes(sop.srcReads + 1)
			cu := maxTime(cuFree[sop.src], base) + cuRate.TransferTime(touches*sop.bytes)
			cuFree[sop.src] = cu
			memB[sop.src] += units.Bytes(sop.srcReads) * sop.bytes

			// Wire along the route. Every hop serializes the chunk no
			// earlier than the op's release and the link's busy-until, and
			// latency accumulates per hop. The two modes differ in how hops
			// couple: the lower bound treats links as independent
			// work-conserving servers (the DES's block pipelining can only
			// be slower), while the upper bound store-and-forwards the whole
			// chunk — hop r+1 waits for hop r to finish — which the DES's
			// per-block forwarding can only beat.
			st := base
			var maxEnd, lat units.Time
			cur := sop.src
			for cur != sop.dst {
				hop := topo.NextHop(cur, sop.dst)
				l := topo.Link(cur, hop)
				cfg := l.Config()
				hs := base
				if chained {
					hs = st
				}
				if b := linkBusy[l]; b > hs {
					hs = b
				}
				end := hs + cfg.LinkBandwidth.TransferTime(sop.bytes)
				linkBusy[l] = end
				if end > maxEnd {
					maxEnd = end
				}
				if chained {
					st = end
				}
				lat += cfg.LinkLatency
				cur = hop
			}
			wireDone := maxEnd + lat
			done := maxTime(wireDone, cu)

			// Receiver side: staging service, plus the eager fold kernel.
			// The fold cannot start before the first block lands (lower
			// bound: release plus route latency) and cannot end after the
			// whole chunk has both arrived and been folded (upper bound).
			if sop.reduce && o.NMC {
				memB[sop.dst] += 2 * sop.bytes // op-and-store update at 2x service
			} else {
				memB[sop.dst] += sop.bytes
			}
			if sop.fold && sop.reduce && !o.NMC {
				foldStart := base + lat
				if chained {
					foldStart = wireDone
				}
				fold := maxTime(cuFree[sop.dst], foldStart) + cuRate.TransferTime(3*sop.bytes)
				cuFree[sop.dst] = fold
				memB[sop.dst] += 3 * sop.bytes
				if fold > done {
					done = fold
				}
			}
			if done > arrive[sop.dst] {
				arrive[sop.dst] = done
			}
		}
		// Round close: each device pays its round's aggregate HBM service.
		// The lower bound overlaps it perfectly with the wire/CU critical
		// path (max); the upper bound serializes it after (sum) — the DES's
		// arbitration lands in between.
		for d := 0; d < n; d++ {
			memT := o.MemBandwidth.TransferTime(memB[d])
			if chained {
				devReady[d] = maxTime(arrive[d], devReady[d]) + memT
			} else {
				devReady[d] = maxTime(arrive[d], devReady[d]+memT)
			}
		}
	}

	var total units.Time
	for _, t := range devReady {
		if t > total {
			total = t
		}
	}
	return total, nil
}

// AnalyticTopoReduceScatterTime predicts a topology reduce-scatter.
func AnalyticTopoReduceScatterTime(algo Algorithm, spec interconnect.TopoSpec, o AnalyticOptions) (units.Time, error) {
	return AnalyticTopoTime(algo, ReduceScatterOp, spec, o)
}

// AnalyticTopoAllGatherTime predicts a topology all-gather.
func AnalyticTopoAllGatherTime(algo Algorithm, spec interconnect.TopoSpec, o AnalyticOptions) (units.Time, error) {
	return AnalyticTopoTime(algo, AllGatherOp, spec, o)
}

// AnalyticTopoAllReduceTime predicts a topology all-reduce.
func AnalyticTopoAllReduceTime(algo Algorithm, spec interconnect.TopoSpec, o AnalyticOptions) (units.Time, error) {
	return AnalyticTopoTime(algo, AllReduceOp, spec, o)
}

// CandidateAlgorithms lists the algorithms valid on a topology: every
// algorithm routes over every graph, but halving-doubling needs a
// power-of-two device count.
func CandidateAlgorithms(spec interconnect.TopoSpec) []Algorithm {
	out := []Algorithm{AlgoRing, AlgoTree, AlgoDirect}
	if n := spec.Devices; n >= 2 && n&(n-1) == 0 {
		out = append(out, AlgoHalvingDoubling)
	}
	return out
}

// SelectAlgorithm picks the collective algorithm for an all-reduce of the
// given size on the given topology — the Tessera-style size/topology policy
// table (§3.1), realized as an argmin over the candidates' analytic times
// under the Table 1 device parameters. Large messages land on the
// bandwidth-optimal ring, mid sizes on trees or halving-doubling where the
// graph gives them cheap routes, and tiny messages on direct sends.
func SelectAlgorithm(bytes units.Bytes, spec interconnect.TopoSpec) (Algorithm, error) {
	return SelectAlgorithmWith(AllReduceOp, spec, AnalyticOptions{
		TotalBytes:        bytes,
		MemBandwidth:      memory.DefaultConfig().TotalBandwidth,
		CUs:               80, // Table 1 collective-kernel CU share
		PerCUMemBandwidth: 16 * units.GBps,
	})
}

// SelectAlgorithmWith picks the cheapest candidate algorithm for op under
// explicit analytic parameters. Ties break toward the earlier Algorithm
// value, so the choice is deterministic.
func SelectAlgorithmWith(op Op, spec interconnect.TopoSpec, o AnalyticOptions) (Algorithm, error) {
	best := AlgoRing
	var bestTime units.Time
	found := false
	for _, algo := range CandidateAlgorithms(spec) {
		t, err := AnalyticTopoTime(algo, op, spec, o)
		if err != nil {
			return 0, err
		}
		if !found || t < bestTime {
			best, bestTime, found = algo, t, true
		}
	}
	return best, nil
}
