package collective

import (
	"math"
	"testing"
)

// fuzzData decodes a byte stream into a per-device data set: the first byte
// picks the device count, the second the per-device length, and the rest
// fills values.
func fuzzData(data []byte) [][]float32 {
	if len(data) < 2 {
		return nil
	}
	n := int(data[0])%7 + 2
	length := int(data[1])%64 + 1
	out := make([][]float32, n)
	idx := 2
	for d := range out {
		arr := make([]float32, length)
		for i := range arr {
			if idx < len(data) {
				arr[i] = float32(int(data[idx])-128) / 4
				idx++
			} else {
				arr[i] = float32((d*31 + i) % 17)
			}
		}
		out[d] = arr
	}
	return out
}

// FuzzRingAllReduce checks that the ring all-reduce matches the serial
// reference for arbitrary inputs.
func FuzzRingAllReduce(f *testing.F) {
	f.Add([]byte{2, 4, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{7, 63})
	f.Add([]byte{0, 0, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		devs := fuzzData(data)
		if devs == nil {
			return
		}
		ref, err := ReferenceAllReduce(devs)
		if err != nil {
			t.Fatal(err)
		}
		if err := RingAllReduce(devs); err != nil {
			t.Fatal(err)
		}
		for d := range devs {
			for i := range devs[d] {
				if math.Abs(float64(devs[d][i]-ref[i])) > 1e-2 {
					t.Fatalf("device %d elem %d = %v, want %v", d, i, devs[d][i], ref[i])
				}
			}
		}
	})
}

// FuzzRingReduceScatterOwnership checks the reduce-scatter postcondition for
// arbitrary inputs.
func FuzzRingReduceScatterOwnership(f *testing.F) {
	f.Add([]byte{3, 10, 9, 8, 7})
	f.Add([]byte{4, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		devs := fuzzData(data)
		if devs == nil {
			return
		}
		ref, err := ReferenceAllReduce(devs)
		if err != nil {
			t.Fatal(err)
		}
		n := len(devs)
		if err := RingReduceScatter(devs); err != nil {
			t.Fatal(err)
		}
		bounds := ChunkBounds(len(ref), n)
		for d := 0; d < n; d++ {
			b := bounds[OwnedChunk(d, n)]
			for i := b[0]; i < b[1]; i++ {
				if math.Abs(float64(devs[d][i]-ref[i])) > 1e-2 {
					t.Fatalf("device %d elem %d wrong", d, i)
				}
			}
		}
	})
}
