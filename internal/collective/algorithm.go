package collective

import (
	"fmt"

	"t3sim/internal/units"
)

// Algorithm selects the collective schedule — which device sends what to
// whom in which round. Every algorithm runs on every topology (multi-hop
// sends store-and-forward through the graph); which one is fastest depends
// on message size and topology, which is what SelectAlgorithm encodes.
type Algorithm int

const (
	// AlgoRing is the bandwidth-optimal N−1-round rotation (§2.3) — the
	// paper's single collective, generalized to route over any graph.
	AlgoRing Algorithm = iota
	// AlgoTree is the binomial tree: reduce-to-root + scatter (or gather +
	// broadcast), ~2·log2(N) rounds moving large per-round volumes —
	// latency-lean, bandwidth-heavy.
	AlgoTree
	// AlgoHalvingDoubling is recursive halving (reduce-scatter) and
	// doubling (all-gather): log2(N) rounds of pairwise exchanges with
	// geometrically shrinking volume; power-of-two device counts only.
	AlgoHalvingDoubling
	// AlgoDirect sends every chunk straight to its final owner in one
	// round — minimal latency, maximal fan-out; the tiny-message policy.
	AlgoDirect
)

// String names the algorithm the way the CLIs and tables spell it.
func (a Algorithm) String() string {
	switch a {
	case AlgoRing:
		return "ring"
	case AlgoTree:
		return "tree"
	case AlgoHalvingDoubling:
		return "halving-doubling"
	case AlgoDirect:
		return "direct"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Op selects which collective operation a schedule performs.
type Op int

const (
	ReduceScatterOp Op = iota
	AllGatherOp
	AllReduceOp
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case ReduceScatterOp:
		return "reduce-scatter"
	case AllGatherOp:
		return "all-gather"
	case AllReduceOp:
		return "all-reduce"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// sendOp is one scheduled transfer. dst == src is a local merge kernel (the
// ring's final read-modify-write): 2 reads + 1 write over bytes, no wire.
type sendOp struct {
	src, dst int
	bytes    units.Bytes
	// srcReads is how many memory reads the sender issues per block before
	// the wire (1 = fresh local data; 2 = local + staged copy to reduce,
	// the ring's deferred-fold convention). Local merge kernels ignore it.
	srcReads int
	// reduce marks the transfer as a reduction contribution: under NMC the
	// receiver stages it as an op-and-store Update instead of a Write.
	reduce bool
	// fold makes a non-NMC receiver run a fold kernel (2 reads + 1 write)
	// after staging, combining the arrival into its local accumulator —
	// the eager-fold convention tree/halving-doubling/direct use.
	fold bool
}

// schedule is a round-ordered send plan. Within a round every op may run
// concurrently; a device begins round r+1 only after all round-r ops
// destined to it have landed (and folded). The builder already applied the
// NMC collapse: under NMC senders always read once (partials accumulate in
// memory), receivers stage reductions as Updates, and merge/fold work
// disappears.
type schedule struct {
	n      int
	nmc    bool
	rounds [][]sendOp
}

// buildSchedule constructs the (algorithm × op) plan for n devices moving
// total bytes.
func buildSchedule(algo Algorithm, op Op, n int, total units.Bytes, nmc bool) (*schedule, error) {
	if n < 2 {
		return nil, fmt.Errorf("collective: schedule needs >= 2 devices, got %d", n)
	}
	if total <= 0 {
		return nil, fmt.Errorf("collective: TotalBytes = %v", total)
	}
	if algo == AlgoHalvingDoubling && n&(n-1) != 0 {
		return nil, fmt.Errorf("collective: halving-doubling needs a power-of-two device count, got %d", n)
	}
	s := &schedule{n: n, nmc: nmc}
	chunks := chunkSizes(total, n)
	switch algo {
	case AlgoRing:
		switch op {
		case ReduceScatterOp:
			s.ringReduceScatter(chunks)
		case AllGatherOp:
			s.ringAllGather(chunks, identOwner)
		case AllReduceOp:
			s.ringReduceScatter(chunks)
			s.ringAllGather(chunks, func(d, n int) int { return OwnedChunk(d, n) })
		}
	case AlgoTree:
		switch op {
		case ReduceScatterOp:
			s.treeReduce(total)
			s.treeScatter(chunks)
		case AllGatherOp:
			s.treeGather(chunks)
			s.treeBroadcast(total)
		case AllReduceOp:
			s.treeReduce(total)
			s.treeBroadcast(total)
		}
	case AlgoHalvingDoubling:
		switch op {
		case ReduceScatterOp:
			s.hdHalving(chunks)
		case AllGatherOp:
			s.hdDoubling(chunks)
		case AllReduceOp:
			s.hdHalving(chunks)
			s.hdDoubling(chunks)
		}
	case AlgoDirect:
		switch op {
		case ReduceScatterOp:
			s.directReduceScatter(chunks)
		case AllGatherOp:
			s.directAllGather(chunks)
		case AllReduceOp:
			s.directReduceScatter(chunks)
			s.directAllGather(chunks)
		}
	default:
		return nil, fmt.Errorf("collective: unknown algorithm %v", algo)
	}
	return s, nil
}

// identOwner is the standalone all-gather ownership convention: device d
// starts with chunk d.
func identOwner(d, n int) int { return d }

// chunkRange sums chunks [a, b).
func chunkRange(chunks []units.Bytes, a, b int) units.Bytes {
	var total units.Bytes
	for i := a; i < b; i++ {
		total += chunks[i]
	}
	return total
}

// ringReduceScatter is the §2.3 rotation: N−1 rounds of neighbor sends with
// the deferred-fold convention (senders re-read the staged copy), then one
// local merge round over the owned chunk (eliminated by NMC).
func (s *schedule) ringReduceScatter(chunks []units.Bytes) {
	n := s.n
	for r := 0; r < n-1; r++ {
		var ops []sendOp
		for d := 0; d < n; d++ {
			reads := 2
			if r == 0 || s.nmc {
				reads = 1
			}
			ops = append(ops, sendOp{src: d, dst: (d + 1) % n,
				bytes: chunks[mod(d-1-r, n)], srcReads: reads, reduce: true})
		}
		s.rounds = append(s.rounds, ops)
	}
	if !s.nmc {
		var merge []sendOp
		for d := 0; d < n; d++ {
			merge = append(merge, sendOp{src: d, dst: d, bytes: chunks[OwnedChunk(d, n)], reduce: true})
		}
		s.rounds = append(s.rounds, merge)
	}
}

// ringAllGather is the same rotation without reductions; owner gives the
// chunk each device starts from (identity standalone, the reduce-scatter
// ownership inside an all-reduce).
func (s *schedule) ringAllGather(chunks []units.Bytes, owner func(d, n int) int) {
	n := s.n
	for r := 0; r < n-1; r++ {
		var ops []sendOp
		for d := 0; d < n; d++ {
			ops = append(ops, sendOp{src: d, dst: (d + 1) % n,
				bytes: chunks[mod(owner(d, n)-r, n)], srcReads: 1})
		}
		s.rounds = append(s.rounds, ops)
	}
}

// treeReduce folds every device's full vector to root 0 along a binomial
// tree: round r pairs devices 2^r apart, receivers eagerly fold.
func (s *schedule) treeReduce(total units.Bytes) {
	for dist := 1; dist < s.n; dist *= 2 {
		var ops []sendOp
		for src := dist; src < s.n; src += 2 * dist {
			ops = append(ops, sendOp{src: src, dst: src - dist,
				bytes: total, srcReads: 1, reduce: true, fold: true})
		}
		s.rounds = append(s.rounds, ops)
	}
}

// treeScatter distributes the reduced chunks from root 0: each round halves
// the subtree, handing the upper half-range to its new owner.
func (s *schedule) treeScatter(chunks []units.Bytes) {
	for dist := topDist(s.n); dist >= 1; dist /= 2 {
		var ops []sendOp
		for src := 0; src < s.n; src += 2 * dist {
			if peer := src + dist; peer < s.n {
				hi := src + 2*dist
				if hi > s.n {
					hi = s.n
				}
				ops = append(ops, sendOp{src: src, dst: peer,
					bytes: chunkRange(chunks, peer, hi), srcReads: 1})
			}
		}
		s.rounds = append(s.rounds, ops)
	}
}

// treeGather concentrates the per-device chunks at root 0 (the mirror of
// treeScatter).
func (s *schedule) treeGather(chunks []units.Bytes) {
	for dist := 1; dist < s.n; dist *= 2 {
		var ops []sendOp
		for src := dist; src < s.n; src += 2 * dist {
			hi := src + dist
			if hi > s.n {
				hi = s.n
			}
			ops = append(ops, sendOp{src: src, dst: src - dist,
				bytes: chunkRange(chunks, src, hi), srcReads: 1})
		}
		s.rounds = append(s.rounds, ops)
	}
}

// treeBroadcast pushes the full vector from root 0 down the binomial tree.
func (s *schedule) treeBroadcast(total units.Bytes) {
	for dist := topDist(s.n); dist >= 1; dist /= 2 {
		var ops []sendOp
		for src := 0; src < s.n; src += 2 * dist {
			if peer := src + dist; peer < s.n {
				ops = append(ops, sendOp{src: src, dst: peer, bytes: total, srcReads: 1})
			}
		}
		s.rounds = append(s.rounds, ops)
	}
}

// topDist is the largest power of two strictly below n — the first scatter
// and broadcast stride.
func topDist(n int) int {
	d := 1
	for d*2 < n {
		d *= 2
	}
	return d
}

// hdHalving is the recursive-halving reduce-scatter: log2(N) rounds of
// pairwise exchanges; each device keeps the half-range matching its own
// address bit and folds the arriving half, ending with chunk d.
func (s *schedule) hdHalving(chunks []units.Bytes) {
	n := s.n
	lo := make([]int, n)
	hi := make([]int, n)
	for d := range hi {
		hi[d] = n
	}
	for m := n / 2; m >= 1; m /= 2 {
		var ops []sendOp
		for d := 0; d < n; d++ {
			mid := (lo[d] + hi[d]) / 2
			if d&m == 0 {
				ops = append(ops, sendOp{src: d, dst: d ^ m,
					bytes: chunkRange(chunks, mid, hi[d]), srcReads: 1, reduce: true, fold: true})
			} else {
				ops = append(ops, sendOp{src: d, dst: d ^ m,
					bytes: chunkRange(chunks, lo[d], mid), srcReads: 1, reduce: true, fold: true})
			}
		}
		for d := 0; d < n; d++ {
			mid := (lo[d] + hi[d]) / 2
			if d&m == 0 {
				hi[d] = mid
			} else {
				lo[d] = mid
			}
		}
		s.rounds = append(s.rounds, ops)
	}
}

// hdDoubling is the recursive-doubling all-gather: the halving exchange in
// reverse, with copies instead of reductions.
func (s *schedule) hdDoubling(chunks []units.Bytes) {
	n := s.n
	lo := make([]int, n)
	hi := make([]int, n)
	for d := range lo {
		lo[d] = d
		hi[d] = d + 1
	}
	for m := 1; m < n; m *= 2 {
		var ops []sendOp
		for d := 0; d < n; d++ {
			ops = append(ops, sendOp{src: d, dst: d ^ m,
				bytes: chunkRange(chunks, lo[d], hi[d]), srcReads: 1})
		}
		for d := 0; d < n; d++ {
			p := d ^ m
			if lo[p] < lo[d] {
				lo[d] = lo[p]
			}
			if hi[p] > hi[d] {
				hi[d] = hi[p]
			}
		}
		s.rounds = append(s.rounds, ops)
	}
}

// directReduceScatter sends chunk p straight to device p from everyone in a
// single round; receivers eagerly fold each arrival.
func (s *schedule) directReduceScatter(chunks []units.Bytes) {
	var ops []sendOp
	for d := 0; d < s.n; d++ {
		for p := 0; p < s.n; p++ {
			if p != d {
				ops = append(ops, sendOp{src: d, dst: p,
					bytes: chunks[p], srcReads: 1, reduce: true, fold: true})
			}
		}
	}
	s.rounds = append(s.rounds, ops)
}

// directAllGather sends device d's chunk straight to every peer in a single
// round.
func (s *schedule) directAllGather(chunks []units.Bytes) {
	var ops []sendOp
	for d := 0; d < s.n; d++ {
		for p := 0; p < s.n; p++ {
			if p != d {
				ops = append(ops, sendOp{src: d, dst: p, bytes: chunks[d], srcReads: 1})
			}
		}
	}
	s.rounds = append(s.rounds, ops)
}

// ScheduleStats reports the shape of an (algorithm × op) schedule — round
// count, total wire ops, and total pipeline blocks — for callers that build
// counted error allowances (the differential battery charges the DES's
// per-block store-and-forward and rounding overheads per round and per
// block).
func ScheduleStats(algo Algorithm, op Op, n int, total, block units.Bytes, nmc bool) (rounds, wireOps, blocks int, err error) {
	s, err := buildSchedule(algo, op, n, total, nmc)
	if err != nil {
		return 0, 0, 0, err
	}
	rounds = len(s.rounds)
	for _, round := range s.rounds {
		for _, sop := range round {
			if sop.src == sop.dst {
				continue
			}
			wireOps++
			blocks += len(splitBlocks(sop.bytes, block))
		}
	}
	return rounds, wireOps, blocks, nil
}

// incomingBlocks counts the pipeline blocks device d must stage (or merge)
// in round r.
func (s *schedule) incomingBlocks(d, r int, blockBytes units.Bytes) int {
	total := 0
	for _, op := range s.rounds[r] {
		if op.dst == d {
			total += len(splitBlocks(op.bytes, blockBytes))
		}
	}
	return total
}

// expectedIncomingBytes sums the wire bytes the schedule delivers to device
// d over the whole run — the per-device conservation bound a mis-routed
// chunk violates.
func (s *schedule) expectedIncomingBytes(d int) int64 {
	var total int64
	for _, round := range s.rounds {
		for _, op := range round {
			if op.dst == d && op.src != d {
				total += int64(op.bytes)
			}
		}
	}
	return total
}
