package collective

import (
	"testing"

	"t3sim/internal/check"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// clusterHarness builds a cluster, a cluster ring and per-device memory
// controllers, mirroring harness() but with every device on its own engine.
func clusterHarness(t *testing.T, devices int) (*sim.Cluster, Options) {
	t.Helper()
	cfg := interconnect.DefaultConfig()
	cl := sim.NewCluster(devices, cfg.LinkLatency)
	ring, err := interconnect.NewClusterRing(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]*Device, devices)
	for i := range devs {
		mc, err := memory.NewController(cl.Engine(i), memory.DefaultConfig(), memory.ComputeFirst{})
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = &Device{ID: i, Mem: mc}
	}
	return cl, Options{
		Ring:              ring,
		Devices:           devs,
		TotalBytes:        16 * units.MiB,
		BlockBytes:        32 * units.KiB,
		CUs:               80,
		PerCUMemBandwidth: 16 * units.GBps,
		Stream:            memory.StreamComm,
	}
}

// TestClusterCollectiveMatchesSharedEngine requires the timed ring
// collectives to produce identical completion times and per-link byte
// accounting whether all devices share one engine or each owns a private
// cluster engine — at every worker count.
func TestClusterCollectiveMatchesSharedEngine(t *testing.T) {
	for _, devices := range []int{2, 4, 8} {
		for _, nmc := range []bool{false, true} {
			for _, reduce := range []bool{true, false} {
				if nmc && !reduce {
					continue // NMC only changes reduce-scatter
				}
				eng, so := harness(t, devices)
				so.NMC = nmc
				var want units.Time
				if reduce {
					want = runRS(t, eng, so)
				} else {
					want = runAG(t, eng, so)
				}

				for _, workers := range []int{1, 2, devices} {
					cl, co := clusterHarness(t, devices)
					co.NMC = nmc
					chk := check.New()
					co.Check = chk
					var cr *ClusterRun
					var err error
					if reduce {
						cr, err = StartClusterRingReduceScatter(cl, co)
					} else {
						cr, err = StartClusterRingAllGather(cl, co)
					}
					if err != nil {
						t.Fatal(err)
					}
					cl.Run(workers)
					cr.Finish()
					if got := cr.Done(); got != want {
						t.Errorf("devices=%d nmc=%v reduce=%v workers=%d: done %v, want %v",
							devices, nmc, reduce, workers, got, want)
					}
					for i := 0; i < devices; i++ {
						gotB := co.Ring.ForwardLink(i).SentBytes()
						wantB := so.Ring.ForwardLink(i).SentBytes()
						if gotB != wantB {
							t.Errorf("devices=%d nmc=%v reduce=%v workers=%d: link %d sent %v, want %v",
								devices, nmc, reduce, workers, i, gotB, wantB)
						}
					}
					if !chk.Ok() {
						t.Errorf("devices=%d nmc=%v reduce=%v workers=%d: violations: %v",
							devices, nmc, reduce, workers, chk.Violations())
					}
				}
			}
		}
	}
}

// TestClusterCollectivePerDeviceTimesDeterministic pins per-device
// completion times across worker counts (not just the max).
func TestClusterCollectivePerDeviceTimesDeterministic(t *testing.T) {
	const devices = 4
	run := func(workers int) []units.Time {
		cl, co := clusterHarness(t, devices)
		cr, err := StartClusterRingReduceScatter(cl, co)
		if err != nil {
			t.Fatal(err)
		}
		cl.Run(workers)
		out := make([]units.Time, devices)
		for d := range out {
			out[d] = cr.DeviceDone(d)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, devices} {
		got := run(workers)
		for d := range got {
			if got[d] != want[d] {
				t.Errorf("workers=%d: device %d done at %v, want %v", workers, d, got[d], want[d])
			}
		}
	}
	for d, at := range want {
		if at == 0 {
			t.Errorf("device %d never completed", d)
		}
	}
}
