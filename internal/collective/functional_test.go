package collective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeData builds n device arrays of the given length with deterministic
// pseudo-random contents.
func makeData(n, length int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float32, n)
	for d := range data {
		arr := make([]float32, length)
		for i := range arr {
			arr[i] = float32(rng.Intn(2000)-1000) / 16 // exact in float32
		}
		data[d] = arr
	}
	return data
}

func clone(data [][]float32) [][]float32 {
	out := make([][]float32, len(data))
	for i, d := range data {
		c := make([]float32, len(d))
		copy(c, d)
		out[i] = c
	}
	return out
}

func almostEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-3 {
			return false
		}
	}
	return true
}

func TestChunkBounds(t *testing.T) {
	b := ChunkBounds(10, 4)
	want := [][2]int{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("chunk %d = %v, want %v", i, b[i], want[i])
		}
	}
	// Bounds always tile the array.
	f := func(n uint16, parts uint8) bool {
		p := int(parts)%16 + 1
		bounds := ChunkBounds(int(n), p)
		if len(bounds) != p {
			return false
		}
		prev := 0
		for _, bd := range bounds {
			if bd[0] != prev || bd[1] < bd[0] {
				return false
			}
			prev = bd[1]
		}
		return prev == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChunkBoundsPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { ChunkBounds(4, 0) },
		func() { ChunkBounds(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRingReduceScatterOwnedChunks(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8, 16} {
		data := makeData(n, 103, int64(n))
		ref, err := ReferenceAllReduce(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := RingReduceScatter(data); err != nil {
			t.Fatal(err)
		}
		bounds := ChunkBounds(103, n)
		for d := 0; d < n; d++ {
			b := bounds[OwnedChunk(d, n)]
			if !almostEqual(data[d][b[0]:b[1]], ref[b[0]:b[1]]) {
				t.Errorf("n=%d device %d owned chunk wrong", n, d)
			}
		}
	}
}

func TestRingAllReduceMatchesReference(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		for _, length := range []int{1, 7, 64, 1000} {
			data := makeData(n, length, int64(n*1000+length))
			ref, _ := ReferenceAllReduce(data)
			if err := RingAllReduce(data); err != nil {
				t.Fatal(err)
			}
			for d := 0; d < n; d++ {
				if !almostEqual(data[d], ref) {
					t.Errorf("n=%d len=%d device %d mismatch", n, length, d)
				}
			}
		}
	}
}

func TestRingAllReduceProperty(t *testing.T) {
	f := func(nRaw, lenRaw uint8, seed int64) bool {
		n := int(nRaw)%7 + 2
		length := int(lenRaw) + 1
		data := makeData(n, length, seed)
		ref, _ := ReferenceAllReduce(data)
		if err := RingAllReduce(data); err != nil {
			return false
		}
		for d := 0; d < n; d++ {
			if !almostEqual(data[d], ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDirectReduceScatterMatchesRing(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		length := 96
		a := makeData(n, length, 7)
		b := clone(a)
		if err := RingReduceScatter(a); err != nil {
			t.Fatal(err)
		}
		if err := DirectReduceScatter(b); err != nil {
			t.Fatal(err)
		}
		bounds := ChunkBounds(length, n)
		for d := 0; d < n; d++ {
			bd := bounds[OwnedChunk(d, n)]
			if !almostEqual(a[d][bd[0]:bd[1]], b[d][bd[0]:bd[1]]) {
				t.Errorf("n=%d device %d: direct != ring", n, d)
			}
		}
	}
}

func TestHalvingDoublingMatchesReference(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		for _, length := range []int{16, 33, 128, 1001} {
			data := makeData(n, length, int64(n+length))
			ref, _ := ReferenceAllReduce(data)
			if err := HalvingDoublingAllReduce(data); err != nil {
				t.Fatal(err)
			}
			for d := 0; d < n; d++ {
				if !almostEqual(data[d], ref) {
					t.Fatalf("n=%d len=%d device %d mismatch", n, length, d)
				}
			}
		}
	}
}

func TestHalvingDoublingRejectsNonPowerOfTwo(t *testing.T) {
	data := makeData(3, 8, 1)
	if err := HalvingDoublingAllReduce(data); err == nil {
		t.Error("expected error for 3 devices")
	}
}

func TestAllToAll(t *testing.T) {
	n, length := 4, 8
	data := make([][]float32, n)
	for d := range data {
		arr := make([]float32, length)
		for i := range arr {
			arr[i] = float32(d*100 + i)
		}
		data[d] = arr
	}
	if err := AllToAll(data); err != nil {
		t.Fatal(err)
	}
	bounds := ChunkBounds(length, n)
	for d := 0; d < n; d++ {
		for j := 0; j < n; j++ {
			b := bounds[j]
			for i := b[0]; i < b[1]; i++ {
				// data[d] chunk j came from device j's chunk d.
				want := float32(j*100 + bounds[d][0] + (i - b[0]))
				if data[d][i] != want {
					t.Fatalf("device %d elem %d = %v, want %v", d, i, data[d][i], want)
				}
			}
		}
	}
}

func TestAllToAllRejectsRaggedChunks(t *testing.T) {
	data := makeData(4, 10, 1) // 10 % 4 != 0
	if err := AllToAll(data); err == nil {
		t.Error("expected error for indivisible length")
	}
}

func TestValidateDataErrors(t *testing.T) {
	if err := RingReduceScatter([][]float32{{1}}); err == nil {
		t.Error("single device: expected error")
	}
	if err := RingAllGather([][]float32{{1, 2}, {1}}); err == nil {
		t.Error("ragged devices: expected error")
	}
	if _, err := ReferenceAllReduce(nil); err == nil {
		t.Error("nil data: expected error")
	}
}

func TestRingAllGatherSpreadsOwnedChunks(t *testing.T) {
	n, length := 4, 16
	data := make([][]float32, n)
	bounds := ChunkBounds(length, n)
	for d := range data {
		arr := make([]float32, length)
		b := bounds[OwnedChunk(d, n)]
		for i := b[0]; i < b[1]; i++ {
			arr[i] = float32(100 + i)
		}
		data[d] = arr
	}
	if err := RingAllGather(data); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < n; d++ {
		for i := 0; i < length; i++ {
			if data[d][i] != float32(100+i) {
				t.Fatalf("device %d elem %d = %v, want %v", d, i, data[d][i], float32(100+i))
			}
		}
	}
}

func TestOwnedChunk(t *testing.T) {
	if OwnedChunk(3, 4) != 3 || OwnedChunk(0, 4) != 0 {
		t.Error("OwnedChunk wrong")
	}
}
