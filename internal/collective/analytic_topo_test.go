package collective

import (
	"testing"

	"t3sim/internal/interconnect"
	"t3sim/internal/units"
)

func topoAnalyticOpts(total units.Bytes) AnalyticOptions {
	return AnalyticOptions{
		TotalBytes:        total,
		MemBandwidth:      1 * units.TBps,
		CUs:               80,
		PerCUMemBandwidth: 16 * units.GBps,
	}
}

// TestAnalyticTopoRingCollapsesToClosedForm pins the generalized recurrence
// to its ancestor: on a symmetric ring with a divisible size it must
// reproduce the AnalyticRing* closed forms exactly.
func TestAnalyticTopoRingCollapsesToClosedForm(t *testing.T) {
	cfg := interconnect.DefaultConfig()
	for _, devices := range []int{2, 4, 8} {
		for _, nmc := range []bool{false, true} {
			spec := interconnect.RingTopo(devices, cfg)
			o := topoAnalyticOpts(32 * units.MiB)
			o.Link = cfg
			o.Devices = devices
			o.NMC = nmc

			rs, err := AnalyticTopoReduceScatterTime(AlgoRing, spec, o)
			if err != nil {
				t.Fatal(err)
			}
			wantRS, err := AnalyticRingReduceScatterTime(o)
			if err != nil {
				t.Fatal(err)
			}
			if rs != wantRS {
				t.Errorf("n=%d nmc=%v: topo RS %v != closed form %v", devices, nmc, rs, wantRS)
			}

			if nmc {
				continue
			}
			ag, err := AnalyticTopoAllGatherTime(AlgoRing, spec, o)
			if err != nil {
				t.Fatal(err)
			}
			wantAG, err := AnalyticRingAllGatherTime(o)
			if err != nil {
				t.Fatal(err)
			}
			if ag != wantAG {
				t.Errorf("n=%d: topo AG %v != closed form %v", devices, ag, wantAG)
			}
		}
	}
}

// TestTopoTimeMonotoneInBytes is the metamorphic law: more bytes never
// finish sooner, on any topology with any algorithm.
func TestTopoTimeMonotoneInBytes(t *testing.T) {
	sizes := []units.Bytes{
		64 * units.KiB, 512 * units.KiB, 1*units.MiB + 4096, 4 * units.MiB, 32 * units.MiB,
	}
	for _, spec := range testSpecs() {
		for _, algo := range CandidateAlgorithms(spec) {
			var prev units.Time
			for _, size := range sizes {
				o := topoAnalyticOpts(size)
				got, err := AnalyticTopoAllReduceTime(algo, spec, o)
				if err != nil {
					t.Fatal(err)
				}
				if got < prev {
					t.Errorf("%v/%v: time %v at %v beats %v at smaller size", spec.Kind, algo, got, size, prev)
				}
				prev = got
			}
		}
	}
}

// TestTopoTimeMonotoneInLatency is the second metamorphic law: slower links
// never make a collective finish sooner.
func TestTopoTimeMonotoneInLatency(t *testing.T) {
	latencies := []units.Time{0, 100 * units.Nanosecond, 500 * units.Nanosecond, 5 * units.Microsecond}
	base := interconnect.DefaultConfig()
	for _, kind := range []func(interconnect.Config) interconnect.TopoSpec{
		func(c interconnect.Config) interconnect.TopoSpec { return interconnect.RingTopo(8, c) },
		func(c interconnect.Config) interconnect.TopoSpec { return interconnect.TorusTopo(2, 4, c) },
		func(c interconnect.Config) interconnect.TopoSpec { return interconnect.SwitchTopo(8, c) },
		func(c interconnect.Config) interconnect.TopoSpec {
			inter := c
			inter.LinkBandwidth = 25 * units.GBps
			inter.LinkLatency = 4 * c.LinkLatency
			if inter.LinkLatency == 0 {
				inter.LinkLatency = c.LinkLatency
			}
			return interconnect.HierarchicalTopo(2, 4, c, inter)
		},
	} {
		spec0 := kind(base)
		for _, algo := range CandidateAlgorithms(spec0) {
			var prev units.Time
			for i, lat := range latencies {
				cfg := base
				cfg.LinkLatency = lat
				spec := kind(cfg)
				got, err := AnalyticTopoAllReduceTime(algo, spec, topoAnalyticOpts(4*units.MiB))
				if err != nil {
					t.Fatal(err)
				}
				if got < prev {
					t.Errorf("%v/%v: time %v at latency %v beats %v at lower latency",
						spec.Kind, algo, got, lat, prev)
				}
				prev = got
				_ = i
			}
		}
	}
}

// TestHalvingDoublingBeatsRingOnSwitch pins the algorithmic motivation: on a
// fully connected switch with many devices, log-round halving-doubling
// all-reduce is no slower than the (N−1)-round ring.
func TestHalvingDoublingBeatsRingOnSwitch(t *testing.T) {
	spec := interconnect.SwitchTopo(16, interconnect.DefaultConfig())
	for _, size := range []units.Bytes{1 * units.MiB, 4 * units.MiB, 16 * units.MiB} {
		o := topoAnalyticOpts(size)
		hd, err := AnalyticTopoAllReduceTime(AlgoHalvingDoubling, spec, o)
		if err != nil {
			t.Fatal(err)
		}
		ring, err := AnalyticTopoAllReduceTime(AlgoRing, spec, o)
		if err != nil {
			t.Fatal(err)
		}
		if hd > ring {
			t.Errorf("size %v: halving-doubling %v slower than ring %v on a 16-way switch", size, hd, ring)
		}
	}
}

// TestSelectAlgorithmOptimality is the policy property: the selected
// algorithm's analytic time is never more than 1.05× the best candidate's.
func TestSelectAlgorithmOptimality(t *testing.T) {
	sizes := []units.Bytes{16 * units.KiB, 256 * units.KiB, 2 * units.MiB, 32 * units.MiB, 256 * units.MiB}
	for _, spec := range testSpecs() {
		for _, size := range sizes {
			sel, err := SelectAlgorithm(size, spec)
			if err != nil {
				t.Fatal(err)
			}
			o := topoAnalyticOpts(size)
			selTime, err := AnalyticTopoAllReduceTime(sel, spec, o)
			if err != nil {
				t.Fatal(err)
			}
			best := selTime
			bestAlgo := sel
			for _, algo := range CandidateAlgorithms(spec) {
				tm, err := AnalyticTopoAllReduceTime(algo, spec, o)
				if err != nil {
					t.Fatal(err)
				}
				if tm < best {
					best, bestAlgo = tm, algo
				}
			}
			if float64(selTime) > 1.05*float64(best) {
				t.Errorf("%v @ %v: selected %v (%v) is >1.05x best %v (%v)",
					spec.Kind, size, sel, selTime, bestAlgo, best)
			}
		}
	}
}

// TestSelectAlgorithmSizeRegimes sanity-checks the Tessera-style policy
// shape on a switch: tiny messages do not pick the ring, huge messages do
// not pick direct broadcast-everything.
func TestSelectAlgorithmSizeRegimes(t *testing.T) {
	spec := interconnect.SwitchTopo(8, interconnect.DefaultConfig())
	tiny, err := SelectAlgorithm(4*units.KiB, spec)
	if err != nil {
		t.Fatal(err)
	}
	if tiny == AlgoRing {
		t.Errorf("4 KiB on a switch selected the ring; want a latency-lean algorithm")
	}
	huge, err := SelectAlgorithm(512*units.MiB, spec)
	if err != nil {
		t.Fatal(err)
	}
	if huge == AlgoTree {
		t.Errorf("512 MiB selected the full-vector tree; want a bandwidth-optimal algorithm")
	}
}

// TestCandidateAlgorithms pins the validity table.
func TestCandidateAlgorithms(t *testing.T) {
	cfg := interconnect.DefaultConfig()
	if got := CandidateAlgorithms(interconnect.RingTopo(8, cfg)); len(got) != 4 {
		t.Errorf("pow2 ring candidates = %v, want 4 incl. halving-doubling", got)
	}
	for _, algo := range CandidateAlgorithms(interconnect.RingTopo(6, cfg)) {
		if algo == AlgoHalvingDoubling {
			t.Error("halving-doubling offered for 6 devices")
		}
	}
	if _, err := buildSchedule(AlgoHalvingDoubling, AllReduceOp, 6, units.MiB, false); err == nil {
		t.Error("halving-doubling schedule for 6 devices did not error")
	}
}

// TestScheduleMovesExpectedBytes cross-checks schedules against exact
// per-device delivery laws, with a deliberately indivisible size so chunk
// rounding is exercised. A bandwidth-optimal all-gather delivers every chunk
// but the one device d already owns; a direct reduce-scatter delivers one
// partial of chunk d from each peer; the ring rotation delivers every chunk
// except the forward neighbor's starting chunk.
func TestScheduleMovesExpectedBytes(t *testing.T) {
	const total = 1*units.MiB + 12345
	for _, n := range []int{2, 4, 8} {
		chunks := chunkSizes(total, n)
		for _, algo := range []Algorithm{AlgoRing, AlgoHalvingDoubling, AlgoDirect} {
			sched, err := buildSchedule(algo, AllGatherOp, n, total, false)
			if err != nil {
				t.Fatal(err)
			}
			for d := 0; d < n; d++ {
				want := int64(total - chunks[d])
				if got := sched.expectedIncomingBytes(d); got != want {
					t.Errorf("%v AG n=%d dev %d: schedule delivers %d wire bytes, want %d",
						algo, n, d, got, want)
				}
			}
		}
		for d := 0; d < n; d++ {
			direct, err := buildSchedule(AlgoDirect, ReduceScatterOp, n, total, true)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := direct.expectedIncomingBytes(d), int64(n-1)*int64(chunks[d]); got != want {
				t.Errorf("direct RS n=%d dev %d: %d wire bytes, want %d", n, d, got, want)
			}
			ring, err := buildSchedule(AlgoRing, ReduceScatterOp, n, total, true)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := ring.expectedIncomingBytes(d), int64(total-chunks[mod(d-1, n)]); got != want {
				t.Errorf("ring RS n=%d dev %d: %d wire bytes, want %d", n, d, got, want)
			}
		}
	}
}
