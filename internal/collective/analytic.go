package collective

import (
	"fmt"

	"t3sim/internal/interconnect"
	"t3sim/internal/units"
)

// AnalyticOptions parameterizes the closed-form ring-collective cost model.
// It plays the role of the paper's 4×MI210 hardware measurements (Figure 14):
// an independent reference the discrete-event simulator is validated against.
type AnalyticOptions struct {
	Devices           int
	TotalBytes        units.Bytes
	Link              interconnect.Config
	MemBandwidth      units.Bandwidth // aggregate HBM bandwidth
	CUs               int
	PerCUMemBandwidth units.Bandwidth
	NMC               bool
}

// Validate reports whether the options are usable.
func (o AnalyticOptions) Validate() error {
	switch {
	case o.Devices < 2:
		return fmt.Errorf("collective: analytic model needs >= 2 devices, got %d", o.Devices)
	case o.TotalBytes <= 0:
		return fmt.Errorf("collective: TotalBytes = %v", o.TotalBytes)
	case o.MemBandwidth <= 0:
		return fmt.Errorf("collective: MemBandwidth = %v", o.MemBandwidth)
	case o.CUs <= 0:
		return fmt.Errorf("collective: CUs = %d", o.CUs)
	case o.PerCUMemBandwidth <= 0:
		return fmt.Errorf("collective: PerCUMemBandwidth = %v", o.PerCUMemBandwidth)
	}
	return o.Link.Validate()
}

func (o AnalyticOptions) cuRate() units.Bandwidth {
	return units.Bandwidth(float64(o.PerCUMemBandwidth) * float64(o.CUs))
}

// AnalyticRingReduceScatterTime predicts the ring reduce-scatter completion
// time: N−1 bulk-synchronous steps, each bounded by link serialization, the
// kernel's CU-side touch rate, or HBM service, plus the final
// read-modify-write kernel that NMC eliminates.
func AnalyticRingReduceScatterTime(o AnalyticOptions) (units.Time, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	n := o.Devices
	chunk := units.Bytes(int64(o.TotalBytes) / int64(n))

	// Steady-state step: sender reads 2 copies (1 with NMC), stores across
	// the link, receiver stages 1 copy (an NMC update costs double service).
	cuTouches := units.Bytes(3)
	memBytes := 3 * chunk
	if o.NMC {
		cuTouches = 2
		memBytes = 3 * chunk // 1 read + 1 update at 2x service
	}
	step := maxTime(
		o.Link.LinkBandwidth.TransferTime(chunk)+o.Link.LinkLatency,
		o.cuRate().TransferTime(cuTouches*chunk),
		o.MemBandwidth.TransferTime(memBytes),
	)
	total := units.Time(int64(n-1)) * step

	if !o.NMC {
		// Final kernel: 2 reads + 1 write over the owned chunk.
		final := maxTime(
			o.cuRate().TransferTime(3*chunk),
			o.MemBandwidth.TransferTime(3*chunk),
		)
		total += final
	}
	return total, nil
}

// AnalyticRingAllGatherTime predicts the ring all-gather completion time:
// the same rotation with one read and one store per hop and no reduction.
func AnalyticRingAllGatherTime(o AnalyticOptions) (units.Time, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	n := o.Devices
	chunk := units.Bytes(int64(o.TotalBytes) / int64(n))
	step := maxTime(
		o.Link.LinkBandwidth.TransferTime(chunk)+o.Link.LinkLatency,
		o.cuRate().TransferTime(2*chunk),
		o.MemBandwidth.TransferTime(2*chunk),
	)
	return units.Time(int64(n-1)) * step, nil
}

// AnalyticRingAllReduceTime is reduce-scatter followed by all-gather.
func AnalyticRingAllReduceTime(o AnalyticOptions) (units.Time, error) {
	rs, err := AnalyticRingReduceScatterTime(o)
	if err != nil {
		return 0, err
	}
	ag, err := AnalyticRingAllGatherTime(o)
	if err != nil {
		return 0, err
	}
	return rs + ag, nil
}

func maxTime(ts ...units.Time) units.Time {
	m := ts[0]
	for _, t := range ts[1:] {
		if t > m {
			m = t
		}
	}
	return m
}
