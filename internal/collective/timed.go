package collective

import (
	"fmt"

	"t3sim/internal/check"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// Device bundles the per-GPU resources a timed collective touches.
type Device struct {
	ID  int
	Mem *memory.Controller
}

// Options parameterizes a timed collective run.
type Options struct {
	Ring    *interconnect.Ring
	Devices []*Device
	// TotalBytes is the full array size being reduced/gathered.
	TotalBytes units.Bytes
	// BlockBytes is the software pipelining granularity within one step: the
	// unit at which data moves through read → reduce → send → receive-write.
	BlockBytes units.Bytes
	// CUs is how many compute units the collective kernel occupies; with
	// fewer CUs the kernel sustains less memory throughput, which is the
	// §3.2.1 contention effect.
	CUs int
	// PerCUMemBandwidth is the memory throughput one CU sustains.
	PerCUMemBandwidth units.Bandwidth
	// NMC reduces incoming traffic in DRAM (op-and-store updates) instead of
	// on the CUs, eliminating the reduction reads and the final step's
	// read-modify-write (§4.3, Figure 10).
	NMC bool
	// Stream selects the memory-controller stream the kernel's accesses use.
	Stream memory.Stream
	// Metrics, if non-nil, receives a "collective" timeline track with one
	// span per pipelined block (reads through wire delivery), staging
	// instants at step boundaries, and block/byte counters. Nil costs
	// nothing.
	Metrics metrics.Sink
	// Check, if non-nil, attaches the conservation witness: every byte
	// handed to a ring link must be staged at the receiver, and the books
	// must balance when the collective completes. Nil costs nothing.
	Check *check.Checker
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	switch {
	case o.Ring == nil:
		return fmt.Errorf("collective: nil ring")
	case len(o.Devices) != o.Ring.Devices():
		return fmt.Errorf("collective: %d devices for %d-way ring", len(o.Devices), o.Ring.Devices())
	case o.TotalBytes <= 0:
		return fmt.Errorf("collective: TotalBytes = %v", o.TotalBytes)
	case o.BlockBytes <= 0:
		return fmt.Errorf("collective: BlockBytes = %v", o.BlockBytes)
	case o.CUs <= 0:
		return fmt.Errorf("collective: CUs = %d", o.CUs)
	case o.PerCUMemBandwidth <= 0:
		return fmt.Errorf("collective: PerCUMemBandwidth = %v", o.PerCUMemBandwidth)
	}
	for i, d := range o.Devices {
		if d == nil || d.Mem == nil {
			return fmt.Errorf("collective: device %d missing memory controller", i)
		}
	}
	return nil
}

// cuRate returns the kernel's sustainable CU-side memory touch rate.
func (o Options) cuRate() units.Bandwidth {
	return units.Bandwidth(float64(o.PerCUMemBandwidth) * float64(o.CUs))
}

// chunkSizes splits total into n chunks, mirroring ChunkBounds over bytes.
func chunkSizes(total units.Bytes, n int) []units.Bytes {
	bounds := ChunkBounds(int(total), n)
	out := make([]units.Bytes, n)
	for i, b := range bounds {
		out[i] = units.Bytes(b[1] - b[0])
	}
	return out
}

// splitBlocks splits a chunk into pipeline blocks of at most blockBytes.
func splitBlocks(c, blockBytes units.Bytes) []units.Bytes {
	var out []units.Bytes
	for c > 0 {
		b := blockBytes
		if c < b {
			b = c
		}
		out = append(out, b)
		c -= b
	}
	return out
}

// run tracks one in-flight timed collective. The baseline collective
// executes each ring step as its own kernel, exactly like the paper's
// simulated baseline (§5.1.1, Figure 13): blocks pipeline freely within a
// step, but a device starts step s+1 only after all of step s's incoming
// data has been staged in its memory (the kernel boundary).
type run struct {
	eng      *sim.Engine
	o        Options
	n        int
	reduce   bool          // reduce-scatter (true) or all-gather (false)
	chunks   []units.Bytes // chunk size per chunk index
	cuFree   []units.Time  // per-device CU pacer
	arrivals map[[2]int]*sim.Fence
	done     *sim.Fence

	mtrack     *metrics.Track   // "collective" timeline (nil-safe)
	mBlocks    *metrics.Counter // pipelined blocks pushed over the wire
	mLinkBytes *metrics.Counter // bytes handed to ring links

	ledger *check.Ledger // wire-byte conservation witness (nil-safe)
}

func newRun(eng *sim.Engine, o Options, reduce bool, onDone sim.Handler) (*run, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	r := &run{eng: eng, o: o, n: o.Ring.Devices(), reduce: reduce}
	r.chunks = chunkSizes(o.TotalBytes, r.n)
	r.cuFree = make([]units.Time, r.n)
	if o.Check.Enabled() {
		r.ledger = o.Check.Ledger("collective.ring")
		inner := onDone
		onDone = func() {
			r.ledger.Close(eng.Now())
			if inner != nil {
				inner()
			}
		}
	}
	r.done = sim.NewFence(r.n, onDone) // one completion per device
	if m := o.Metrics; m != nil {
		r.mtrack = m.Track("collective")
		r.mBlocks = m.Counter("collective.blocks_sent")
		r.mLinkBytes = m.Counter("collective.link_bytes")
	}

	// Arrival fences for every (device, step) are registered up front: a
	// fast neighbor may deliver step s+1 blocks while this device is still
	// staging step s.
	r.arrivals = make(map[[2]int]*sim.Fence)
	for d := 0; d < r.n; d++ {
		for s := 0; s < r.n-1; s++ {
			d, s := d, s
			inBlocks := len(splitBlocks(r.chunks[r.outChunk(d, s+1)], o.BlockBytes))
			r.arrivals[[2]int{d, s}] = sim.NewFence(inBlocks, func() {
				if r.mtrack != nil {
					r.mtrack.Instant(fmt.Sprintf("dev%d.step%d.staged", d, s), eng.Now())
				}
				if s < r.n-2 {
					r.sendStep(d, s+1)
					return
				}
				r.finish(d)
			})
		}
	}
	return r, nil
}

// outChunk returns the chunk device d sends at step s.
func (r *run) outChunk(d, s int) int {
	if r.reduce {
		// Reduce-scatter rotation: chunk c starts at device c+1 (§2.3).
		return mod(d-1-s, r.n)
	}
	// All-gather: device d starts by sending its owned chunk.
	return mod(d-s, r.n)
}

// pace reserves CU time for touching n bytes `touches` times and returns the
// completion time of the reservation.
func (r *run) pace(d int, touches int, n units.Bytes) units.Time {
	now := r.eng.Now()
	if r.cuFree[d] < now {
		r.cuFree[d] = now
	}
	r.cuFree[d] += r.o.cuRate().TransferTime(units.Bytes(touches) * n)
	return r.cuFree[d]
}

// start kicks off step 0 on every device.
func (r *run) start() {
	for d := 0; d < r.n; d++ {
		r.sendStep(d, 0)
	}
}

// sendStep sends every block of device d's step-s outgoing chunk. The step
// boundary (next kernel) is the arrival fence registered in newRun.
func (r *run) sendStep(d, s int) {
	for _, b := range splitBlocks(r.chunks[r.outChunk(d, s)], r.o.BlockBytes) {
		r.send(d, s, b)
	}
}

// send moves one block of device d's step-s outgoing chunk: read inputs,
// reduce on the CUs (reduce-scatter only), push over the forward link, and
// stage at the receiver.
func (r *run) send(d, s int, block units.Bytes) {
	o := r.o
	mem := o.Devices[d].Mem
	reads, touches := 1, 2 // 1 read + 1 remote store (all-gather / NMC / step 0)
	if r.reduce && s > 0 && !o.NMC {
		reads, touches = 2, 3 // + staged copy read and the reduce
	}
	start := r.eng.Now()
	fence := sim.NewFence(reads, func() {
		at := r.pace(d, touches, block)
		r.eng.At(at, func() {
			link := o.Ring.ForwardLink(d)
			r.ledger.Add(int64(block))
			link.Send(block, func() {
				r.mBlocks.Inc()
				r.mLinkBytes.Add(int64(block))
				if r.mtrack != nil {
					r.mtrack.Span(fmt.Sprintf("dev%d.step%d.block", d, s), start, r.eng.Now())
				}
				r.receive(o.Ring.Next(d), s, block)
			})
		})
	})
	for i := 0; i < reads; i++ {
		mem.Transfer(memory.Read, o.Stream, block, memory.Tag{}, fence.Done)
	}
}

// receive stages an arriving block in device d's memory and credits the
// step's arrival fence.
func (r *run) receive(d, s int, block units.Bytes) {
	o := r.o
	kind := memory.Write
	if r.reduce && o.NMC {
		kind = memory.Update
	}
	o.Devices[d].Mem.Transfer(kind, o.Stream, block, memory.Tag{}, func() {
		r.ledger.Sub(r.eng.Now(), int64(block))
		r.arrivals[[2]int{d, s}].Done()
	})
}

// finish runs after device d's last arrival: reduce-scatter merges the fully
// rotated chunk with the local copy in one last kernel (2 reads + 1 write,
// the read-modify-write NMC eliminates); all-gather is already done.
func (r *run) finish(d int) {
	if !r.reduce || r.o.NMC {
		r.done.Done()
		return
	}
	o := r.o
	mem := o.Devices[d].Mem
	blocks := splitBlocks(r.chunks[OwnedChunk(d, r.n)], o.BlockBytes)
	final := sim.NewFence(len(blocks), r.done.Done)
	for _, b := range blocks {
		block := b
		reads := sim.NewFence(2, func() {
			at := r.pace(d, 3, block)
			r.eng.At(at, func() {
				mem.Transfer(memory.Write, o.Stream, block, memory.Tag{}, final.Done)
			})
		})
		mem.Transfer(memory.Read, o.Stream, block, memory.Tag{}, reads.Done)
		mem.Transfer(memory.Read, o.Stream, block, memory.Tag{}, reads.Done)
	}
}

// StartRingReduceScatter schedules a timed ring reduce-scatter on eng and
// runs onDone when every device has finished its final reduction. The caller
// drives the engine.
func StartRingReduceScatter(eng *sim.Engine, o Options, onDone sim.Handler) error {
	r, err := newRun(eng, o, true, onDone)
	if err != nil {
		return err
	}
	r.start()
	return nil
}

// StartRingAllGather schedules a timed ring all-gather on eng: the same
// rotation as reduce-scatter without reductions.
func StartRingAllGather(eng *sim.Engine, o Options, onDone sim.Handler) error {
	r, err := newRun(eng, o, false, onDone)
	if err != nil {
		return err
	}
	r.start()
	return nil
}
