package collective

import (
	"fmt"

	"t3sim/internal/check"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// Device bundles the per-GPU resources a timed collective touches.
type Device struct {
	ID  int
	Mem *memory.Controller
}

// Options parameterizes a timed collective run.
type Options struct {
	Ring    *interconnect.Ring
	Devices []*Device
	// TotalBytes is the full array size being reduced/gathered.
	TotalBytes units.Bytes
	// BlockBytes is the software pipelining granularity within one step: the
	// unit at which data moves through read → reduce → send → receive-write.
	BlockBytes units.Bytes
	// CUs is how many compute units the collective kernel occupies; with
	// fewer CUs the kernel sustains less memory throughput, which is the
	// §3.2.1 contention effect.
	CUs int
	// PerCUMemBandwidth is the memory throughput one CU sustains.
	PerCUMemBandwidth units.Bandwidth
	// NMC reduces incoming traffic in DRAM (op-and-store updates) instead of
	// on the CUs, eliminating the reduction reads and the final step's
	// read-modify-write (§4.3, Figure 10).
	NMC bool
	// Stream selects the memory-controller stream the kernel's accesses use.
	Stream memory.Stream
	// Metrics, if non-nil, receives a "collective" timeline track with one
	// span per pipelined block (reads through wire delivery), staging
	// instants at step boundaries, and block/byte counters. Nil costs
	// nothing.
	Metrics metrics.Sink
	// Check, if non-nil, attaches the conservation witness: every byte
	// handed to a ring link must be staged at the receiver, and the books
	// must balance when the collective completes. Nil costs nothing.
	Check *check.Checker
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	switch {
	case o.Ring == nil:
		return fmt.Errorf("collective: nil ring")
	case len(o.Devices) != o.Ring.Devices():
		return fmt.Errorf("collective: %d devices for %d-way ring", len(o.Devices), o.Ring.Devices())
	case o.TotalBytes <= 0:
		return fmt.Errorf("collective: TotalBytes = %v", o.TotalBytes)
	case o.BlockBytes <= 0:
		return fmt.Errorf("collective: BlockBytes = %v", o.BlockBytes)
	case o.CUs <= 0:
		return fmt.Errorf("collective: CUs = %d", o.CUs)
	case o.PerCUMemBandwidth <= 0:
		return fmt.Errorf("collective: PerCUMemBandwidth = %v", o.PerCUMemBandwidth)
	}
	for i, d := range o.Devices {
		if d == nil || d.Mem == nil {
			return fmt.Errorf("collective: device %d missing memory controller", i)
		}
	}
	return nil
}

// cuRate returns the kernel's sustainable CU-side memory touch rate.
func (o Options) cuRate() units.Bandwidth {
	return units.Bandwidth(float64(o.PerCUMemBandwidth) * float64(o.CUs))
}

// chunkSizes splits total into n chunks, mirroring ChunkBounds over bytes.
func chunkSizes(total units.Bytes, n int) []units.Bytes {
	bounds := ChunkBounds(int(total), n)
	out := make([]units.Bytes, n)
	for i, b := range bounds {
		out[i] = units.Bytes(b[1] - b[0])
	}
	return out
}

// splitBlocks splits a chunk into pipeline blocks of at most blockBytes.
func splitBlocks(c, blockBytes units.Bytes) []units.Bytes {
	var out []units.Bytes
	for c > 0 {
		b := blockBytes
		if c < b {
			b = c
		}
		out = append(out, b)
		c -= b
	}
	return out
}

// run tracks one in-flight timed collective. The baseline collective
// executes each ring step as its own kernel, exactly like the paper's
// simulated baseline (§5.1.1, Figure 13): blocks pipeline freely within a
// step, but a device starts step s+1 only after all of step s's incoming
// data has been staged in its memory (the kernel boundary).
type run struct {
	eng    *sim.Engine   // shared-engine mode; nil in cluster mode
	engs   []*sim.Engine // cluster mode: device d's private engine; nil otherwise
	o      Options
	n      int
	reduce bool          // reduce-scatter (true) or all-gather (false)
	chunks []units.Bytes // chunk size per chunk index
	cuFree []units.Time  // per-device CU pacer (single-writer: device d's engine)

	arrivals   map[[2]int]*sim.Fence // read-only after setup; Done only on d's engine
	done       *sim.Fence            // shared-engine mode completion
	deviceDone func(d int)           // cluster mode: invoked on device d's engine

	mtrack     *metrics.Track   // shared-engine "collective" timeline (nil-safe)
	mtracks    []*metrics.Track // cluster mode: per-device timelines (nil-safe)
	mBlocks    *metrics.Counter // pipelined blocks pushed over the wire (atomic)
	mLinkBytes *metrics.Counter // bytes handed to ring links (atomic)

	ledger  *check.Ledger      // shared-engine wire-byte conservation witness
	cells   []*check.CrossCell // cluster mode: per-device conservation accounts
	xledger *check.CrossLedger // cluster mode: closed by ClusterRun.Finish
}

// engOf returns the engine device d's handlers run on.
func (r *run) engOf(d int) *sim.Engine {
	if r.engs != nil {
		return r.engs[d]
	}
	return r.eng
}

// trackOf returns the timeline track device d's spans and instants go to —
// the single shared track on one engine, device d's private track on a
// cluster (timeline recorders are single-writer).
func (r *run) trackOf(d int) *metrics.Track {
	if r.mtracks != nil {
		return r.mtracks[d]
	}
	return r.mtrack
}

// wireAdd / wireSub credit the conservation books for bytes injected by /
// delivered to device d. On a cluster each device owns a private CrossCell
// so no two goroutines share a counter.
func (r *run) wireAdd(d int, n int64) {
	if r.cells != nil {
		r.cells[d].Add(n)
		return
	}
	r.ledger.Add(n)
}

func (r *run) wireSub(d int, n int64) {
	if r.cells != nil {
		r.cells[d].Sub(n)
		return
	}
	r.ledger.Sub(r.engOf(d).Now(), n)
}

func newRun(eng *sim.Engine, engs []*sim.Engine, o Options, reduce bool, onDone sim.Handler) (*run, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	r := &run{eng: eng, engs: engs, o: o, n: o.Ring.Devices(), reduce: reduce}
	r.chunks = chunkSizes(o.TotalBytes, r.n)
	r.cuFree = make([]units.Time, r.n)
	if engs == nil {
		if o.Check.Enabled() {
			r.ledger = o.Check.Ledger("collective.ring")
			inner := onDone
			onDone = func() {
				r.ledger.Close(eng.Now())
				if inner != nil {
					inner()
				}
			}
		}
		r.done = sim.NewFence(r.n, onDone) // one completion per device
	} else if o.Check.Enabled() {
		// Cluster mode: each device owns a private conservation account;
		// the books are summed by ClusterRun.Finish after Cluster.Run's
		// final barrier has ordered every cell write before the read.
		x := o.Check.CrossLedger("collective.ring")
		r.cells = make([]*check.CrossCell, r.n)
		for d := range r.cells {
			r.cells[d] = x.Cell()
		}
		r.xledger = x
	}
	if m := o.Metrics; m != nil {
		if engs != nil {
			r.mtracks = make([]*metrics.Track, r.n)
			for d := range r.mtracks {
				r.mtracks[d] = m.Track(fmt.Sprintf("collective.dev%d", d))
			}
		} else {
			r.mtrack = m.Track("collective")
		}
		r.mBlocks = m.Counter("collective.blocks_sent")
		r.mLinkBytes = m.Counter("collective.link_bytes")
	}

	// Arrival fences for every (device, step) are registered up front: a
	// fast neighbor may deliver step s+1 blocks while this device is still
	// staging step s.
	r.arrivals = make(map[[2]int]*sim.Fence)
	for d := 0; d < r.n; d++ {
		for s := 0; s < r.n-1; s++ {
			d, s := d, s
			inBlocks := len(splitBlocks(r.chunks[r.outChunk(d, s+1)], o.BlockBytes))
			r.arrivals[[2]int{d, s}] = sim.NewFence(inBlocks, func() {
				if tr := r.trackOf(d); tr != nil {
					tr.Instant(fmt.Sprintf("dev%d.step%d.staged", d, s), r.engOf(d).Now())
				}
				if s < r.n-2 {
					r.sendStep(d, s+1)
					return
				}
				r.finish(d)
			})
		}
	}
	return r, nil
}

// horizon returns the furthest device clock (cluster mode).
func (r *run) horizon() units.Time {
	var h units.Time
	for _, e := range r.engs {
		if e.Now() > h {
			h = e.Now()
		}
	}
	return h
}

// outChunk returns the chunk device d sends at step s.
func (r *run) outChunk(d, s int) int {
	if r.reduce {
		// Reduce-scatter rotation: chunk c starts at device c+1 (§2.3).
		return mod(d-1-s, r.n)
	}
	// All-gather: device d starts by sending its owned chunk.
	return mod(d-s, r.n)
}

// pace reserves CU time for touching n bytes `touches` times and returns the
// completion time of the reservation.
func (r *run) pace(d int, touches int, n units.Bytes) units.Time {
	now := r.engOf(d).Now()
	if r.cuFree[d] < now {
		r.cuFree[d] = now
	}
	r.cuFree[d] += r.o.cuRate().TransferTime(units.Bytes(touches) * n)
	return r.cuFree[d]
}

// start kicks off step 0 on every device.
func (r *run) start() {
	for d := 0; d < r.n; d++ {
		r.sendStep(d, 0)
	}
}

// sendStep sends every block of device d's step-s outgoing chunk. The step
// boundary (next kernel) is the arrival fence registered in newRun.
func (r *run) sendStep(d, s int) {
	for _, b := range splitBlocks(r.chunks[r.outChunk(d, s)], r.o.BlockBytes) {
		r.send(d, s, b)
	}
}

// send moves one block of device d's step-s outgoing chunk: read inputs,
// reduce on the CUs (reduce-scatter only), push over the forward link, and
// stage at the receiver.
func (r *run) send(d, s int, block units.Bytes) {
	o := r.o
	mem := o.Devices[d].Mem
	reads, touches := 1, 2 // 1 read + 1 remote store (all-gather / NMC / step 0)
	if r.reduce && s > 0 && !o.NMC {
		reads, touches = 2, 3 // + staged copy read and the reduce
	}
	start := r.engOf(d).Now()
	rcv := o.Ring.Next(d)
	fence := sim.NewFence(reads, func() {
		at := r.pace(d, touches, block)
		r.engOf(d).At(at, func() {
			link := o.Ring.ForwardLink(d)
			r.wireAdd(d, int64(block))
			link.Send(block, func() {
				// On a cluster this callback runs on the receiving device's
				// engine, so the span lands on the receiver's track.
				r.mBlocks.Inc()
				r.mLinkBytes.Add(int64(block))
				if tr := r.trackOf(rcv); tr != nil {
					tr.Span(fmt.Sprintf("dev%d.step%d.block", d, s), start, r.engOf(rcv).Now())
				}
				r.receive(rcv, s, block)
			})
		})
	})
	for i := 0; i < reads; i++ {
		mem.Transfer(memory.Read, o.Stream, block, memory.Tag{}, fence.Done)
	}
}

// receive stages an arriving block in device d's memory and credits the
// step's arrival fence.
func (r *run) receive(d, s int, block units.Bytes) {
	o := r.o
	kind := memory.Write
	if r.reduce && o.NMC {
		kind = memory.Update
	}
	o.Devices[d].Mem.Transfer(kind, o.Stream, block, memory.Tag{}, func() {
		r.wireSub(d, int64(block))
		r.arrivals[[2]int{d, s}].Done()
	})
}

// finish runs after device d's last arrival: reduce-scatter merges the fully
// rotated chunk with the local copy in one last kernel (2 reads + 1 write,
// the read-modify-write NMC eliminates); all-gather is already done.
func (r *run) finish(d int) {
	if !r.reduce || r.o.NMC {
		r.complete(d)
		return
	}
	o := r.o
	mem := o.Devices[d].Mem
	blocks := splitBlocks(r.chunks[OwnedChunk(d, r.n)], o.BlockBytes)
	final := sim.NewFence(len(blocks), func() { r.complete(d) })
	for _, b := range blocks {
		block := b
		reads := sim.NewFence(2, func() {
			at := r.pace(d, 3, block)
			r.engOf(d).At(at, func() {
				mem.Transfer(memory.Write, o.Stream, block, memory.Tag{}, final.Done)
			})
		})
		mem.Transfer(memory.Read, o.Stream, block, memory.Tag{}, reads.Done)
		mem.Transfer(memory.Read, o.Stream, block, memory.Tag{}, reads.Done)
	}
}

// complete records device d's completion: one credit on the shared fence, or
// the per-device callback on a cluster (still on device d's engine).
func (r *run) complete(d int) {
	if r.deviceDone != nil {
		r.deviceDone(d)
		return
	}
	r.done.Done()
}

// StartRingReduceScatter schedules a timed ring reduce-scatter on eng and
// runs onDone when every device has finished its final reduction. The caller
// drives the engine.
func StartRingReduceScatter(eng *sim.Engine, o Options, onDone sim.Handler) error {
	r, err := newRun(eng, nil, o, true, onDone)
	if err != nil {
		return err
	}
	r.start()
	return nil
}

// StartRingAllGather schedules a timed ring all-gather on eng: the same
// rotation as reduce-scatter without reductions.
func StartRingAllGather(eng *sim.Engine, o Options, onDone sim.Handler) error {
	r, err := newRun(eng, nil, o, false, onDone)
	if err != nil {
		return err
	}
	r.start()
	return nil
}

// ClusterRun is a timed collective scheduled across the per-device engines
// of a sim.Cluster (o.Ring must be an interconnect.NewClusterRing on the
// same cluster, and o.Devices' memory controllers must live on their
// device's engine). Drive it with Cluster.Run, then call Finish.
type ClusterRun struct {
	r      *run
	doneAt []units.Time // per-device completion time; valid after Cluster.Run
}

func startCluster(cl *sim.Cluster, o Options, reduce bool) (*ClusterRun, error) {
	engs := cl.Engines()
	if o.Ring != nil && o.Ring.Devices() != len(engs) {
		return nil, fmt.Errorf("collective: %d-way ring on %d-engine cluster",
			o.Ring.Devices(), len(engs))
	}
	r, err := newRun(nil, engs, o, reduce, nil)
	if err != nil {
		return nil, err
	}
	cr := &ClusterRun{r: r, doneAt: make([]units.Time, r.n)}
	// Per-device completion runs on device d's engine: a plain slice store
	// is safe because d is the only writer of its cell and Cluster.Run's
	// barrier orders it before the caller reads DeviceDone.
	r.deviceDone = func(d int) { cr.doneAt[d] = r.engOf(d).Now() }
	r.start()
	return cr, nil
}

// StartClusterRingReduceScatter schedules a timed ring reduce-scatter across
// the cluster's engines. The result is identical to StartRingReduceScatter
// on a single shared engine at every worker count.
func StartClusterRingReduceScatter(cl *sim.Cluster, o Options) (*ClusterRun, error) {
	return startCluster(cl, o, true)
}

// StartClusterRingAllGather schedules a timed ring all-gather across the
// cluster's engines.
func StartClusterRingAllGather(cl *sim.Cluster, o Options) (*ClusterRun, error) {
	return startCluster(cl, o, false)
}

// DeviceDone returns device d's completion time. Valid after Cluster.Run
// has returned.
func (cr *ClusterRun) DeviceDone(d int) units.Time { return cr.doneAt[d] }

// Done returns the overall completion time — the latest device completion.
func (cr *ClusterRun) Done() units.Time {
	var t units.Time
	for _, at := range cr.doneAt {
		if at > t {
			t = at
		}
	}
	return t
}

// Finish closes the cross-engine conservation books. Call it once, after
// Cluster.Run has returned.
func (cr *ClusterRun) Finish() {
	cr.r.xledger.Close(cr.r.horizon())
}
