package collective

import (
	"fmt"
	"strings"
	"testing"

	"t3sim/internal/check"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// testSpecs returns one spec per topology kind, all on 8 devices so every
// algorithm (including halving-doubling) is a candidate everywhere.
func testSpecs() []interconnect.TopoSpec {
	cfg := interconnect.DefaultConfig()
	inter := cfg
	inter.LinkBandwidth = 25 * units.GBps
	inter.LinkLatency = 2 * units.Microsecond
	return []interconnect.TopoSpec{
		interconnect.RingTopo(8, cfg),
		interconnect.TorusTopo(2, 4, cfg),
		interconnect.SwitchTopo(8, cfg),
		interconnect.HierarchicalTopo(2, 4, cfg, inter),
	}
}

// topoHarness builds a shared-engine topology and per-device memory
// controllers.
func topoHarness(t *testing.T, spec interconnect.TopoSpec) (*sim.Engine, TopoOptions) {
	t.Helper()
	eng := sim.NewEngine()
	topo, err := spec.Build(eng)
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]*Device, spec.Devices)
	for i := range devs {
		mc, err := memory.NewController(eng, memory.DefaultConfig(), memory.ComputeFirst{})
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = &Device{ID: i, Mem: mc}
	}
	return eng, TopoOptions{
		Topo:              topo,
		Devices:           devs,
		TotalBytes:        8 * units.MiB,
		BlockBytes:        32 * units.KiB,
		CUs:               80,
		PerCUMemBandwidth: 16 * units.GBps,
		Stream:            memory.StreamComm,
	}
}

// clusterTopoHarness is topoHarness with every device on its own cluster
// engine; lookahead is the spec's minimum link latency.
func clusterTopoHarness(t *testing.T, spec interconnect.TopoSpec) (*sim.Cluster, TopoOptions) {
	t.Helper()
	cl := sim.NewCluster(spec.Devices, spec.MinLinkLatency())
	topo, err := spec.BuildCluster(cl)
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]*Device, spec.Devices)
	for i := range devs {
		mc, err := memory.NewController(cl.Engine(i), memory.DefaultConfig(), memory.ComputeFirst{})
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = &Device{ID: i, Mem: mc}
	}
	return cl, TopoOptions{
		Topo:              topo,
		Devices:           devs,
		TotalBytes:        8 * units.MiB,
		BlockBytes:        32 * units.KiB,
		CUs:               80,
		PerCUMemBandwidth: 16 * units.GBps,
		Stream:            memory.StreamComm,
	}
}

func runTopo(t *testing.T, eng *sim.Engine, algo Algorithm, op Op, o TopoOptions) units.Time {
	t.Helper()
	var done units.Time
	if err := StartTopoCollective(eng, algo, op, o, func() { done = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if done == 0 {
		t.Fatalf("%v %v never completed", algo, op)
	}
	return done
}

// TestTopoRingMatchesLegacyRing pins the generalized engine to its ancestor:
// the ring algorithm on a ring topology reproduces the legacy timed ring
// collective exactly — same rotation, same deferred-fold reads, same final
// merge kernel.
func TestTopoRingMatchesLegacyRing(t *testing.T) {
	cfg := interconnect.DefaultConfig()
	for _, devices := range []int{2, 4, 8} {
		for _, tc := range []struct {
			name string
			op   Op
			nmc  bool
		}{
			{"rs", ReduceScatterOp, false},
			{"rs-nmc", ReduceScatterOp, true},
			{"ag", AllGatherOp, false},
		} {
			eng, lo := harness(t, devices)
			lo.NMC = tc.nmc
			var legacy units.Time
			if tc.op == ReduceScatterOp {
				legacy = runRS(t, eng, lo)
			} else {
				legacy = runAG(t, eng, lo)
			}

			teng, to := topoHarness(t, interconnect.RingTopo(devices, cfg))
			to.TotalBytes = lo.TotalBytes
			to.NMC = tc.nmc
			got := runTopo(t, teng, AlgoRing, tc.op, to)
			if got != legacy {
				t.Errorf("n=%d %s: topo ring %v != legacy ring %v", devices, tc.name, got, legacy)
			}
		}
	}
}

// TestTopoCollectiveClusterMatchesShared requires every (topology ×
// algorithm × op) cell to complete at identical times whether the devices
// share one engine or each owns a cluster engine — at every worker count.
func TestTopoCollectiveClusterMatchesShared(t *testing.T) {
	for _, spec := range testSpecs() {
		for _, algo := range CandidateAlgorithms(spec) {
			for _, op := range []Op{ReduceScatterOp, AllGatherOp, AllReduceOp} {
				spec, algo, op := spec, algo, op
				t.Run(fmt.Sprintf("%v/%v/%v", spec.Kind, algo, op), func(t *testing.T) {
					t.Parallel()
					eng, so := topoHarness(t, spec)
					want := runTopo(t, eng, algo, op, so)
					wantDev := make([]units.Time, spec.Devices)

					for _, workers := range []int{1, 2, 4} {
						cl, co := clusterTopoHarness(t, spec)
						chk := check.New()
						co.Check = chk
						cr, err := StartClusterTopoCollective(cl, algo, op, co)
						if err != nil {
							t.Fatal(err)
						}
						cl.Run(workers)
						cr.Finish()
						if got := cr.Done(); got != want {
							t.Errorf("workers=%d: done %v, want %v", workers, got, want)
						}
						for d := 0; d < spec.Devices; d++ {
							if workers == 1 {
								wantDev[d] = cr.DeviceDone(d)
							} else if got := cr.DeviceDone(d); got != wantDev[d] {
								t.Errorf("workers=%d: device %d done %v, want %v", workers, d, got, wantDev[d])
							}
						}
						if gotB, wantB := co.Topo.SentBytes(), so.Topo.SentBytes(); gotB != wantB {
							t.Errorf("workers=%d: wire bytes %v, want %v", workers, gotB, wantB)
						}
						if !chk.Ok() {
							t.Errorf("workers=%d: violations: %v", workers, chk.Violations())
						}
					}
				})
			}
		}
	}
}

// TestTopoCollectiveConservationLaws runs the heterogeneous two-level
// topology with the full checker attached — per-link lookahead laws on every
// mailbox (intra- and inter-node latencies), the cross-engine wire ledger,
// and the per-device incoming bounds — and demands a clean bill.
func TestTopoCollectiveConservationLaws(t *testing.T) {
	cfg := interconnect.DefaultConfig()
	inter := cfg
	inter.LinkBandwidth = 25 * units.GBps
	inter.LinkLatency = 2 * units.Microsecond
	spec := interconnect.HierarchicalTopo(2, 4, cfg, inter)
	for _, algo := range CandidateAlgorithms(spec) {
		cl, co := clusterTopoHarness(t, spec)
		chk := check.New()
		for _, e := range cl.Engines() {
			e.AttachChecker(chk)
		}
		co.Check = chk
		co.Topo.AttachChecker(chk)
		cr, err := StartClusterTopoCollective(cl, algo, AllReduceOp, co)
		if err != nil {
			t.Fatal(err)
		}
		cl.Run(2)
		cr.Finish()
		if cr.Done() == 0 {
			t.Fatalf("%v: never completed", algo)
		}
		if !chk.Ok() {
			t.Errorf("%v: violations: %v", algo, chk.Violations())
		}
	}
}

// TestTopoMisroutedChunkTripsBound falsifies the per-device conservation
// law: redirect one scheduled transfer to the wrong device after the
// expectations are registered and the victim's incoming-bytes bound must
// trip.
func TestTopoMisroutedChunkTripsBound(t *testing.T) {
	spec := interconnect.SwitchTopo(4, interconnect.DefaultConfig())
	eng, o := topoHarness(t, spec)
	chk := check.New()
	o.Check = chk
	r, err := newGraphRun(eng, nil, AlgoDirect, AllGatherOp, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Device 0's chunk was promised to device 1; deliver it to device 2
	// instead. Device 2 now stages more wire bytes than the schedule owes it.
	ops := r.sched.rounds[0]
	for i, op := range ops {
		if op.src == 0 && op.dst == 1 {
			ops[i].dst = 2
		}
	}
	r.start()
	eng.Run()
	if chk.Ok() {
		t.Fatal("mis-routed chunk staged without tripping the incoming bound")
	}
	found := false
	for _, v := range chk.Violations() {
		if strings.Contains(v.String(), "collective.topo.dev2.incoming") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a dev2 incoming-bound violation, got %v", chk.Violations())
	}
}
