package collective

import (
	"testing"

	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// harness builds an engine, ring and per-device memory controllers.
func harness(t *testing.T, devices int) (*sim.Engine, Options) {
	t.Helper()
	eng := sim.NewEngine()
	ring, err := interconnect.NewRing(eng, devices, interconnect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]*Device, devices)
	for i := range devs {
		mc, err := memory.NewController(eng, memory.DefaultConfig(), memory.ComputeFirst{})
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = &Device{ID: i, Mem: mc}
	}
	return eng, Options{
		Ring:              ring,
		Devices:           devs,
		TotalBytes:        16 * units.MiB,
		BlockBytes:        32 * units.KiB,
		CUs:               80,
		PerCUMemBandwidth: 16 * units.GBps,
		Stream:            memory.StreamComm,
	}
}

func runRS(t *testing.T, eng *sim.Engine, o Options) units.Time {
	t.Helper()
	var done units.Time
	fired := false
	if err := StartRingReduceScatter(eng, o, func() { done = eng.Now(); fired = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !fired {
		t.Fatal("reduce-scatter never completed")
	}
	return done
}

func runAG(t *testing.T, eng *sim.Engine, o Options) units.Time {
	t.Helper()
	var done units.Time
	fired := false
	if err := StartRingAllGather(eng, o, func() { done = eng.Now(); fired = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !fired {
		t.Fatal("all-gather never completed")
	}
	return done
}

func analyticOpts(o Options) AnalyticOptions {
	return AnalyticOptions{
		Devices:           o.Ring.Devices(),
		TotalBytes:        o.TotalBytes,
		Link:              o.Ring.Config(),
		MemBandwidth:      o.Devices[0].Mem.Config().TotalBandwidth,
		CUs:               o.CUs,
		PerCUMemBandwidth: o.PerCUMemBandwidth,
		NMC:               o.NMC,
	}
}

func TestOptionsValidate(t *testing.T) {
	_, o := harness(t, 4)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Options){
		func(o *Options) { o.Ring = nil },
		func(o *Options) { o.Devices = o.Devices[:2] },
		func(o *Options) { o.TotalBytes = 0 },
		func(o *Options) { o.BlockBytes = 0 },
		func(o *Options) { o.CUs = 0 },
		func(o *Options) { o.PerCUMemBandwidth = 0 },
		func(o *Options) { o.Devices[0] = nil },
	}
	for i, mutate := range bad {
		_, o := harness(t, 4)
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRSMatchesAnalyticLinkBound(t *testing.T) {
	// With plentiful CUs the run is link-bound; the DES must land close to
	// the analytic model (the paper's Figure 14 validation, 6% error).
	for _, n := range []int{2, 4, 8} {
		eng, o := harness(t, n)
		got := runRS(t, eng, o)
		want, err := AnalyticRingReduceScatterTime(analyticOpts(o))
		if err != nil {
			t.Fatal(err)
		}
		rel := float64(got-want) / float64(want)
		if rel < -0.10 || rel > 0.10 {
			t.Errorf("n=%d: DES %v vs analytic %v (%.1f%%)", n, got, want, rel*100)
		}
	}
}

func TestAGMatchesAnalytic(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		eng, o := harness(t, n)
		got := runAG(t, eng, o)
		want, err := AnalyticRingAllGatherTime(analyticOpts(o))
		if err != nil {
			t.Fatal(err)
		}
		rel := float64(got-want) / float64(want)
		if rel < -0.10 || rel > 0.10 {
			t.Errorf("n=%d: DES %v vs analytic %v (%.1f%%)", n, got, want, rel*100)
		}
	}
}

func TestRSScalesWithSize(t *testing.T) {
	eng1, o1 := harness(t, 4)
	o1.TotalBytes = 8 * units.MiB
	t1 := runRS(t, eng1, o1)
	eng2, o2 := harness(t, 4)
	o2.TotalBytes = 32 * units.MiB
	t2 := runRS(t, eng2, o2)
	ratio := float64(t2) / float64(t1)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("4x size gave %.2fx time, want ~4x", ratio)
	}
}

func TestRSSlowsWithFewCUs(t *testing.T) {
	// The §3.2.1 effect: starving the collective kernel of CUs slows it.
	eng80, o80 := harness(t, 8)
	o80.CUs = 80
	t80 := runRS(t, eng80, o80)

	eng8, o8 := harness(t, 8)
	o8.CUs = 8
	t8 := runRS(t, eng8, o8)

	slowdown := float64(t8) / float64(t80)
	// The paper reports ~41% geomean slowdown for AR at 8 CUs; RS alone is
	// the reduction-heavy half, so expect a substantial hit.
	if slowdown < 1.2 {
		t.Errorf("8-CU slowdown = %.2fx, want > 1.2x", slowdown)
	}
	// And 16 CUs should be much closer to full speed (paper: ~7%).
	eng16, o16 := harness(t, 8)
	o16.CUs = 16
	t16 := runRS(t, eng16, o16)
	if s := float64(t16) / float64(t80); s > 1.15 {
		t.Errorf("16-CU slowdown = %.2fx, want <= 1.15x", s)
	}
}

func TestNMCReducesTrafficAndFinalStep(t *testing.T) {
	engB, oB := harness(t, 4)
	tBase := runRS(t, engB, oB)
	var baseReads units.Bytes
	for _, d := range oB.Devices {
		baseReads += d.Mem.Counters().KindBytes(memory.Read)
	}

	engN, oN := harness(t, 4)
	oN.NMC = true
	tNMC := runRS(t, engN, oN)
	var nmcReads, nmcUpdates units.Bytes
	for _, d := range oN.Devices {
		nmcReads += d.Mem.Counters().KindBytes(memory.Read)
		nmcUpdates += d.Mem.Counters().KindBytes(memory.Update)
	}

	if tNMC >= tBase {
		t.Errorf("NMC RS (%v) not faster than baseline (%v)", tNMC, tBase)
	}
	// Baseline reads per device: (2(N-1)-1+2) chunks; NMC: (N-1) chunks.
	// For N=4 that is 7/3 = 2.33x fewer reads.
	ratio := float64(baseReads) / float64(nmcReads)
	if ratio < 2.0 || ratio > 2.7 {
		t.Errorf("read reduction = %.2fx, want ~2.33x", ratio)
	}
	if nmcUpdates == 0 {
		t.Error("NMC run produced no update traffic")
	}
}

func TestRSTrafficAccounting(t *testing.T) {
	// Exact byte accounting for the baseline (Figure 10a): per device with
	// equal chunks, reads = (2(N-1)-1+2)*chunk, writes = (N-1+1)*chunk.
	n := 4
	eng, o := harness(t, n)
	o.TotalBytes = 8 * units.MiB // divisible by 4
	runRS(t, eng, o)
	chunk := o.TotalBytes / units.Bytes(n)
	wantReads := units.Bytes(2*(n-1)-1+2) * chunk
	wantWrites := units.Bytes(n-1+1) * chunk
	for i, d := range o.Devices {
		r := d.Mem.Counters().KindBytes(memory.Read)
		w := d.Mem.Counters().KindBytes(memory.Write)
		if r != wantReads {
			t.Errorf("device %d reads = %v, want %v", i, r, wantReads)
		}
		if w != wantWrites {
			t.Errorf("device %d writes = %v, want %v", i, w, wantWrites)
		}
	}
}

func TestAGTrafficAccounting(t *testing.T) {
	n := 4
	eng, o := harness(t, n)
	o.TotalBytes = 8 * units.MiB
	runAG(t, eng, o)
	chunk := o.TotalBytes / units.Bytes(n)
	want := units.Bytes(n-1) * chunk
	for i, d := range o.Devices {
		r := d.Mem.Counters().KindBytes(memory.Read)
		w := d.Mem.Counters().KindBytes(memory.Write)
		if r != want || w != want {
			t.Errorf("device %d r=%v w=%v, want %v each", i, r, w, want)
		}
	}
}

func TestRSBandwidthAsymptote(t *testing.T) {
	// For large link-bound arrays, RS time approaches
	// (N-1)/N * total / linkBW.
	eng, o := harness(t, 8)
	o.TotalBytes = 64 * units.MiB
	got := runRS(t, eng, o)
	ideal := o.Ring.Config().LinkBandwidth.TransferTime(o.TotalBytes * 7 / 8)
	rel := float64(got-ideal) / float64(ideal)
	if rel < 0 || rel > 0.15 {
		t.Errorf("RS %v vs wire lower bound %v (%.1f%% over)", got, ideal, rel*100)
	}
}

func TestUnequalChunksStillComplete(t *testing.T) {
	eng, o := harness(t, 3)
	o.TotalBytes = 10*units.MiB + 1 // not divisible by 3
	if tm := runRS(t, eng, o); tm <= 0 {
		t.Error("non-positive completion time")
	}
}

func TestAnalyticValidation(t *testing.T) {
	_, o := harness(t, 4)
	a := analyticOpts(o)
	bad := []func(*AnalyticOptions){
		func(a *AnalyticOptions) { a.Devices = 1 },
		func(a *AnalyticOptions) { a.TotalBytes = 0 },
		func(a *AnalyticOptions) { a.MemBandwidth = 0 },
		func(a *AnalyticOptions) { a.CUs = 0 },
		func(a *AnalyticOptions) { a.PerCUMemBandwidth = 0 },
		func(a *AnalyticOptions) { a.Link = interconnect.Config{} },
	}
	for i, mutate := range bad {
		aa := a
		mutate(&aa)
		if _, err := AnalyticRingReduceScatterTime(aa); err == nil {
			t.Errorf("RS case %d: expected error", i)
		}
		if _, err := AnalyticRingAllGatherTime(aa); err == nil {
			t.Errorf("AG case %d: expected error", i)
		}
		if _, err := AnalyticRingAllReduceTime(aa); err == nil {
			t.Errorf("AR case %d: expected error", i)
		}
	}
	ar, err := AnalyticRingAllReduceTime(a)
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := AnalyticRingReduceScatterTime(a)
	ag, _ := AnalyticRingAllGatherTime(a)
	if ar != rs+ag {
		t.Error("AR != RS + AG")
	}
}
