package collective

import (
	"testing"

	"t3sim/internal/check"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// fuzzSpec decodes a topology from three bytes: kind, then shape
// parameters. Every decoded spec is valid by construction.
func fuzzSpec(kind, a, b byte) interconnect.TopoSpec {
	cfg := interconnect.DefaultConfig()
	switch kind % 4 {
	case 0:
		return interconnect.RingTopo(2+int(a)%7, cfg)
	case 1:
		return interconnect.TorusTopo(2+int(a)%2, 2+int(b)%3, cfg)
	case 2:
		return interconnect.SwitchTopo(2+int(a)%7, cfg)
	default:
		inter := cfg
		inter.LinkBandwidth = 25 * units.GBps
		inter.LinkLatency = 2 * units.Microsecond
		return interconnect.HierarchicalTopo(2+int(a)%2, 1+int(b)%4, cfg, inter)
	}
}

// FuzzTopoCollectiveConservation fuzzes (topology, N, algorithm, op, size,
// block split, worker count) through the timed cluster engine and holds it
// to the conservation oracle: the cross-engine wire ledger must balance,
// every device must stage exactly the wire bytes its schedule owes it —
// right bytes, right device, exactly once — and every device must finish.
func FuzzTopoCollectiveConservation(f *testing.F) {
	// Torus and tree-on-ring shapes seed the corpus (the multi-hop routes);
	// the rest of the tuple picks algorithm/op/size/workers.
	f.Add(byte(1), byte(0), byte(1), byte(1), byte(2), byte(9), byte(1), byte(2))
	f.Add(byte(0), byte(3), byte(0), byte(1), byte(0), byte(16), byte(0), byte(1))
	f.Add(byte(2), byte(6), byte(0), byte(3), byte(2), byte(33), byte(2), byte(3))
	f.Add(byte(3), byte(1), byte(2), byte(0), byte(1), byte(7), byte(1), byte(2))
	f.Fuzz(func(t *testing.T, kind, a, b, algoSel, opSel, sizeSel, blockSel, workerSel byte) {
		spec := fuzzSpec(kind, a, b)
		cands := CandidateAlgorithms(spec)
		algo := cands[int(algoSel)%len(cands)]
		op := Op(int(opSel) % 3)
		nmc := opSel&4 != 0

		cl := sim.NewCluster(spec.Devices, spec.MinLinkLatency())
		topo, err := spec.BuildCluster(cl)
		if err != nil {
			t.Fatal(err)
		}
		chk := check.New()
		devs := make([]*Device, spec.Devices)
		for i := range devs {
			mc, err := memory.NewController(cl.Engine(i), memory.DefaultConfig(), memory.ComputeFirst{})
			if err != nil {
				t.Fatal(err)
			}
			devs[i] = &Device{ID: i, Mem: mc}
		}
		o := TopoOptions{
			Topo:              topo,
			Devices:           devs,
			TotalBytes:        16*units.KiB + units.Bytes(sizeSel)*3*units.KiB + units.Bytes(a),
			BlockBytes:        4*units.KiB + units.Bytes(blockSel)*units.KiB,
			CUs:               80,
			PerCUMemBandwidth: 16 * units.GBps,
			NMC:               nmc,
			Stream:            memory.StreamComm,
			Check:             chk,
		}
		cr, err := StartClusterTopoCollective(cl, algo, op, o)
		if err != nil {
			t.Fatal(err)
		}
		cl.Run(1 + int(workerSel)%3)
		cr.Finish()
		for d := 0; d < spec.Devices; d++ {
			if cr.DeviceDone(d) == 0 {
				t.Fatalf("%v/%v/%v: device %d never completed", spec.Kind, algo, op, d)
			}
			if got, want := cr.r.staged[d], cr.r.sched.expectedIncomingBytes(d); got != want {
				t.Errorf("%v/%v/%v: device %d staged %d wire bytes, want exactly %d",
					spec.Kind, algo, op, d, got, want)
			}
		}
		if !chk.Ok() {
			t.Errorf("%v/%v/%v: violations: %v", spec.Kind, algo, op, chk.Violations())
		}
	})
}
