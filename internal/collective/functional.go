// Package collective implements the collectives the paper targets, in two
// layers:
//
//   - functional implementations that move real float32 data between
//     per-device slices, used as the semantic reference the timed and fused
//     (T3) datapaths must match exactly;
//   - timed implementations that drive the discrete-event simulator with the
//     memory and link traffic of the baseline GPU kernels (§2.3, Figure 10a).
//
// The ring algorithms follow §2.3: reduce-scatter runs N−1 steps over
// N-chunked arrays with each device forwarding a partially reduced chunk to
// its next neighbor; all-gather is the same rotation without reduction;
// all-reduce is reduce-scatter followed by all-gather.
package collective

import (
	"fmt"
)

// ChunkBounds splits an array of length n into parts contiguous chunks,
// balancing sizes so every chunk has ⌊n/parts⌋ or ⌈n/parts⌉ elements. The
// returned slice has parts entries of [start, end) bounds.
func ChunkBounds(n, parts int) [][2]int {
	if parts <= 0 {
		panic("collective: non-positive chunk count")
	}
	if n < 0 {
		panic("collective: negative length")
	}
	bounds := make([][2]int, parts)
	base := n / parts
	rem := n % parts
	start := 0
	for i := 0; i < parts; i++ {
		sz := base
		if i < rem {
			sz++
		}
		bounds[i] = [2]int{start, start + sz}
		start += sz
	}
	return bounds
}

// OwnedChunk returns the chunk index device d owns after a ring
// reduce-scatter over n devices with forward rotation: chunk c starts at
// device c+1 and ends, fully reduced, at device c.
func OwnedChunk(d, n int) int { return d % n }

// validateData checks a per-device data set: >= 2 devices, equal lengths.
func validateData(data [][]float32) (devices, length int, err error) {
	if len(data) < 2 {
		return 0, 0, fmt.Errorf("collective: need >= 2 devices, got %d", len(data))
	}
	length = len(data[0])
	for i, d := range data {
		if len(d) != length {
			return 0, 0, fmt.Errorf("collective: device %d has %d elements, want %d", i, len(d), length)
		}
	}
	return len(data), length, nil
}

// ReferenceAllReduce returns the element-wise sum across devices, the value
// every device must hold after an all-reduce.
func ReferenceAllReduce(data [][]float32) ([]float32, error) {
	_, length, err := validateData(data)
	if err != nil {
		return nil, err
	}
	sum := make([]float32, length)
	for _, d := range data {
		for i, v := range d {
			sum[i] += v
		}
	}
	return sum, nil
}

// RingReduceScatter performs an in-place ring reduce-scatter: after it
// returns, device d's chunk OwnedChunk(d, N) region holds the full
// element-wise sum. Other regions hold whatever partial sums the rotation
// left behind, as on real hardware.
//
// The implementation mirrors the hardware schedule exactly: at step s,
// device d sends its current copy of chunk (d−1−s) mod N to device d+1,
// which reduces it into its local copy.
func RingReduceScatter(data [][]float32) error {
	n, length, err := validateData(data)
	if err != nil {
		return err
	}
	bounds := ChunkBounds(length, n)
	for s := 0; s < n-1; s++ {
		// All sends of a step happen "simultaneously": snapshot outgoing
		// chunks before applying any reduction.
		msgs := make([][]float32, n)
		for d := 0; d < n; d++ {
			c := mod(d-1-s, n)
			b := bounds[c]
			msg := make([]float32, b[1]-b[0])
			copy(msg, data[d][b[0]:b[1]])
			msgs[d] = msg
		}
		for d := 0; d < n; d++ {
			src := mod(d-1, n)
			c := mod(d-2-s, n) // chunk the neighbor sent
			b := bounds[c]
			local := data[d][b[0]:b[1]]
			for i, v := range msgs[src] {
				local[i] += v
			}
		}
	}
	return nil
}

// RingAllGather performs an in-place ring all-gather assuming device d's
// chunk OwnedChunk(d, N) region is authoritative (the reduce-scatter
// postcondition): after it returns, every device holds every owned chunk.
func RingAllGather(data [][]float32) error {
	n, length, err := validateData(data)
	if err != nil {
		return err
	}
	bounds := ChunkBounds(length, n)
	for s := 0; s < n-1; s++ {
		msgs := make([][]float32, n)
		for d := 0; d < n; d++ {
			c := mod(d-s, n)
			b := bounds[c]
			msg := make([]float32, b[1]-b[0])
			copy(msg, data[d][b[0]:b[1]])
			msgs[d] = msg
		}
		for d := 0; d < n; d++ {
			src := mod(d-1, n)
			c := mod(d-1-s, n)
			b := bounds[c]
			copy(data[d][b[0]:b[1]], msgs[src])
		}
	}
	return nil
}

// RingAllReduce performs reduce-scatter followed by all-gather: afterwards
// every device holds the full element-wise sum.
func RingAllReduce(data [][]float32) error {
	if err := RingReduceScatter(data); err != nil {
		return err
	}
	return RingAllGather(data)
}

// DirectReduceScatter performs the fully-connected-topology reduce-scatter
// of §7.1: every device scatters each chunk directly to its owner over a
// dedicated link, and owners reduce incoming copies. One logical step.
func DirectReduceScatter(data [][]float32) error {
	n, length, err := validateData(data)
	if err != nil {
		return err
	}
	bounds := ChunkBounds(length, n)
	// Snapshot all remote contributions first: the scatter is concurrent.
	msgs := make([][][]float32, n) // msgs[owner][src]
	for owner := 0; owner < n; owner++ {
		msgs[owner] = make([][]float32, n)
		b := bounds[OwnedChunk(owner, n)]
		for src := 0; src < n; src++ {
			if src == owner {
				continue
			}
			m := make([]float32, b[1]-b[0])
			copy(m, data[src][b[0]:b[1]])
			msgs[owner][src] = m
		}
	}
	for owner := 0; owner < n; owner++ {
		b := bounds[OwnedChunk(owner, n)]
		local := data[owner][b[0]:b[1]]
		for src := 0; src < n; src++ {
			if src == owner {
				continue
			}
			for i, v := range msgs[owner][src] {
				local[i] += v
			}
		}
	}
	return nil
}

// AllToAll exchanges chunk j of every device to device j: afterwards device
// d's chunk j region holds what device j's chunk d region held.
func AllToAll(data [][]float32) error {
	n, length, err := validateData(data)
	if err != nil {
		return err
	}
	bounds := ChunkBounds(length, n)
	// Equal-size chunks are required for a well-defined exchange.
	for i := 1; i < n; i++ {
		if bounds[i][1]-bounds[i][0] != bounds[0][1]-bounds[0][0] {
			return fmt.Errorf("collective: all-to-all needs length %d divisible by %d devices", length, n)
		}
	}
	snapshot := make([][]float32, n)
	for d := range data {
		s := make([]float32, length)
		copy(s, data[d])
		snapshot[d] = s
	}
	for d := 0; d < n; d++ {
		for j := 0; j < n; j++ {
			b := bounds[j]
			copy(data[d][b[0]:b[1]], snapshot[j][bounds[d][0]:bounds[d][1]])
		}
	}
	return nil
}

// HalvingDoublingAllReduce performs a recursive-halving reduce-scatter
// followed by recursive-doubling all-gather. The device count must be a
// power of two. It is included as an alternative all-reduce algorithm to
// cross-check the ring implementation against.
func HalvingDoublingAllReduce(data [][]float32) error {
	n, length, err := validateData(data)
	if err != nil {
		return err
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("collective: halving-doubling needs power-of-two devices, got %d", n)
	}
	// own[d] is the [start,end) window device d is still responsible for.
	own := make([][2]int, n)
	for d := range own {
		own[d] = [2]int{0, length}
	}
	// Reduce-scatter by recursive halving.
	for dist := n / 2; dist >= 1; dist /= 2 {
		msgs := make([][]float32, n)
		half := make([][2]int, n)
		keepLow := make([]bool, n)
		for d := 0; d < n; d++ {
			lo, hi := own[d][0], own[d][1]
			mid := lo + (hi-lo)/2
			peer := d ^ dist
			// The lower-indexed partner keeps the low half.
			keepLow[d] = d < peer
			var sendLo, sendHi int
			if keepLow[d] {
				sendLo, sendHi = mid, hi
				half[d] = [2]int{lo, mid}
			} else {
				sendLo, sendHi = lo, mid
				half[d] = [2]int{mid, hi}
			}
			m := make([]float32, sendHi-sendLo)
			copy(m, data[d][sendLo:sendHi])
			msgs[d] = m
		}
		for d := 0; d < n; d++ {
			peer := d ^ dist
			b := half[d]
			local := data[d][b[0]:b[1]]
			for i, v := range msgs[peer] {
				local[i] += v
			}
			own[d] = half[d]
		}
	}
	// All-gather by recursive doubling, retracing the halving in reverse.
	for dist := 1; dist <= n/2; dist *= 2 {
		msgs := make([][]float32, n)
		ownSnap := make([][2]int, n)
		copy(ownSnap, own)
		for d := 0; d < n; d++ {
			b := ownSnap[d]
			m := make([]float32, b[1]-b[0])
			copy(m, data[d][b[0]:b[1]])
			msgs[d] = m
		}
		for d := 0; d < n; d++ {
			peer := d ^ dist
			pb := ownSnap[peer]
			copy(data[d][pb[0]:pb[1]], msgs[peer])
			// Merge the windows: they are adjacent halves.
			lo, hi := ownSnap[d][0], ownSnap[d][1]
			if pb[0] < lo {
				lo = pb[0]
			}
			if pb[1] > hi {
				hi = pb[1]
			}
			own[d] = [2]int{lo, hi}
		}
	}
	return nil
}

func mod(a, n int) int { return ((a % n) + n) % n }
