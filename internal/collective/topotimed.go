package collective

import (
	"fmt"

	"t3sim/internal/check"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// TopoOptions parameterizes a timed collective over an arbitrary topology
// graph. It mirrors Options with the ring replaced by an
// interconnect.Topology; multi-hop sends store-and-forward block by block
// through the graph's deterministic routes.
type TopoOptions struct {
	Topo    *interconnect.Topology
	Devices []*Device
	// TotalBytes is the full array size being reduced/gathered.
	TotalBytes units.Bytes
	// BlockBytes is the software pipelining granularity (see Options).
	BlockBytes units.Bytes
	// CUs and PerCUMemBandwidth set the kernel's CU-side touch rate.
	CUs               int
	PerCUMemBandwidth units.Bandwidth
	// NMC stages reduction arrivals as in-DRAM updates and eliminates fold
	// and merge kernels (§4.3).
	NMC bool
	// Stream selects the memory-controller stream the kernel's accesses use.
	Stream memory.Stream
	// Metrics, if non-nil, receives the same "collective" track, staging
	// instants, and block/byte counters the ring run emits. Nil costs
	// nothing.
	Metrics metrics.Sink
	// Check, if non-nil, attaches the graph conservation witness: a wire
	// ledger over all links plus a per-device incoming-bytes bound that a
	// mis-routed chunk violates. Nil costs nothing.
	Check *check.Checker
}

// Validate reports whether the options are usable.
func (o TopoOptions) Validate() error {
	switch {
	case o.Topo == nil:
		return fmt.Errorf("collective: nil topology")
	case len(o.Devices) != o.Topo.Devices():
		return fmt.Errorf("collective: %d devices for %d-device topology", len(o.Devices), o.Topo.Devices())
	case o.TotalBytes <= 0:
		return fmt.Errorf("collective: TotalBytes = %v", o.TotalBytes)
	case o.BlockBytes <= 0:
		return fmt.Errorf("collective: BlockBytes = %v", o.BlockBytes)
	case o.CUs <= 0:
		return fmt.Errorf("collective: CUs = %d", o.CUs)
	case o.PerCUMemBandwidth <= 0:
		return fmt.Errorf("collective: PerCUMemBandwidth = %v", o.PerCUMemBandwidth)
	}
	for i, d := range o.Devices {
		if d == nil || d.Mem == nil {
			return fmt.Errorf("collective: device %d missing memory controller", i)
		}
	}
	return nil
}

func (o TopoOptions) cuRate() units.Bandwidth {
	return units.Bandwidth(float64(o.PerCUMemBandwidth) * float64(o.CUs))
}

// graphRun tracks one in-flight timed collective over a topology graph. Like
// the ring run, blocks pipeline freely within a round but a device begins
// round r+1 only after every round-r op destined to it has been staged (and,
// for eager-fold algorithms, folded) — the kernel boundary. Unlike the ring,
// a round may deliver nothing to a device (tree leaves, finished halving
// partners); such devices advance immediately.
type graphRun struct {
	eng    *sim.Engine   // shared-engine mode; nil in cluster mode
	engs   []*sim.Engine // cluster mode: device d's private engine; nil otherwise
	o      TopoOptions
	n      int
	sched  *schedule
	cuFree []units.Time // per-device CU pacer (single-writer: device d's engine)

	// cursor[d] is the next round device d will issue; advanced only on d's
	// engine. fences[d][r] gates round r+1 (nil when round r delivers
	// nothing to d); registered up front because a fast peer may deliver
	// round-r+1 blocks while d is still staging round r.
	cursor []int
	fences [][]*sim.Fence

	done       *sim.Fence  // shared-engine mode completion
	deviceDone func(d int) // cluster mode: invoked on device d's engine

	mtrack     *metrics.Track
	mtracks    []*metrics.Track
	mBlocks    *metrics.Counter
	mLinkBytes *metrics.Counter

	ledger  *check.Ledger
	cells   []*check.CrossCell
	xledger *check.CrossLedger
	// bounds[d] caps the wire bytes staged at device d by the schedule's
	// expectation; staged[d] is the running total (single-writer: d's
	// engine). A chunk delivered to the wrong device pushes that device
	// past its bound.
	bounds []*check.Bound
	staged []int64
}

func (r *graphRun) engOf(d int) *sim.Engine {
	if r.engs != nil {
		return r.engs[d]
	}
	return r.eng
}

func (r *graphRun) trackOf(d int) *metrics.Track {
	if r.mtracks != nil {
		return r.mtracks[d]
	}
	return r.mtrack
}

func (r *graphRun) wireAdd(d int, n int64) {
	if r.cells != nil {
		r.cells[d].Add(n)
		return
	}
	r.ledger.Add(n)
}

func (r *graphRun) wireSub(d int, n int64) {
	if r.cells != nil {
		r.cells[d].Sub(n)
		return
	}
	r.ledger.Sub(r.engOf(d).Now(), n)
}

func (r *graphRun) horizon() units.Time {
	var h units.Time
	for _, e := range r.engs {
		if e.Now() > h {
			h = e.Now()
		}
	}
	return h
}

func newGraphRun(eng *sim.Engine, engs []*sim.Engine, algo Algorithm, op Op, o TopoOptions, onDone sim.Handler) (*graphRun, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	n := o.Topo.Devices()
	sched, err := buildSchedule(algo, op, n, o.TotalBytes, o.NMC)
	if err != nil {
		return nil, err
	}
	r := &graphRun{eng: eng, engs: engs, o: o, n: n, sched: sched}
	r.cuFree = make([]units.Time, n)
	r.cursor = make([]int, n)
	if engs == nil {
		if o.Check.Enabled() {
			r.ledger = o.Check.Ledger("collective.topo")
			inner := onDone
			onDone = func() {
				r.ledger.Close(eng.Now())
				if inner != nil {
					inner()
				}
			}
		}
		r.done = sim.NewFence(n, onDone)
	} else if o.Check.Enabled() {
		x := o.Check.CrossLedger("collective.topo")
		r.cells = make([]*check.CrossCell, n)
		for d := range r.cells {
			r.cells[d] = x.Cell()
		}
		r.xledger = x
	}
	if o.Check.Enabled() {
		r.bounds = make([]*check.Bound, n)
		r.staged = make([]int64, n)
		for d := range r.bounds {
			r.bounds[d] = o.Check.Bound(
				fmt.Sprintf("collective.topo.dev%d.incoming", d),
				sched.expectedIncomingBytes(d))
		}
	}
	if m := o.Metrics; m != nil {
		if engs != nil {
			r.mtracks = make([]*metrics.Track, n)
			for d := range r.mtracks {
				r.mtracks[d] = m.Track(fmt.Sprintf("collective.dev%d", d))
			}
		} else {
			r.mtrack = m.Track("collective")
		}
		r.mBlocks = m.Counter("collective.blocks_sent")
		r.mLinkBytes = m.Counter("collective.link_bytes")
	}

	r.fences = make([][]*sim.Fence, n)
	for d := 0; d < n; d++ {
		r.fences[d] = make([]*sim.Fence, len(sched.rounds))
		for rd := range sched.rounds {
			in := sched.incomingBlocks(d, rd, o.BlockBytes)
			if in == 0 {
				continue
			}
			d, rd := d, rd
			r.fences[d][rd] = sim.NewFence(in, func() {
				if tr := r.trackOf(d); tr != nil {
					tr.Instant(fmt.Sprintf("dev%d.round%d.staged", d, rd), r.engOf(d).Now())
				}
				if r.cursor[d] == rd+1 {
					r.advance(d)
				}
			})
		}
	}
	return r, nil
}

// start kicks off round 0 on every device.
func (r *graphRun) start() {
	for d := 0; d < r.n; d++ {
		r.advance(d)
	}
}

// advance issues device d's rounds until it must wait for arrivals or runs
// out of schedule. Runs on d's engine (or during setup, before the engines
// start); resumed by the round fence callback.
func (r *graphRun) advance(d int) {
	for {
		rd := r.cursor[d]
		if rd == len(r.sched.rounds) {
			r.complete(d)
			return
		}
		r.issueRound(d, rd)
		r.cursor[d] = rd + 1
		if f := r.fences[d][rd]; f != nil && !f.Fired() {
			return
		}
	}
}

// issueRound launches every round-rd op device d sources, block by block.
func (r *graphRun) issueRound(d, rd int) {
	for _, op := range r.sched.rounds[rd] {
		if op.src != d {
			continue
		}
		for _, b := range splitBlocks(op.bytes, r.o.BlockBytes) {
			if op.dst == d {
				r.merge(d, rd, b)
			} else {
				r.send(rd, op, b)
			}
		}
	}
}

// pace reserves CU time on device d for touching n bytes `touches` times.
func (r *graphRun) pace(d int, touches int, n units.Bytes) units.Time {
	now := r.engOf(d).Now()
	if r.cuFree[d] < now {
		r.cuFree[d] = now
	}
	r.cuFree[d] += r.o.cuRate().TransferTime(units.Bytes(touches) * n)
	return r.cuFree[d]
}

// send moves one block of a wire op: read the sender's inputs, pace the
// kernel, route through the topology (store-and-forward per hop), and stage
// at the destination.
func (r *graphRun) send(rd int, op sendOp, block units.Bytes) {
	o := r.o
	mem := o.Devices[op.src].Mem
	start := r.engOf(op.src).Now()
	fence := sim.NewFence(op.srcReads, func() {
		at := r.pace(op.src, op.srcReads+1, block)
		r.engOf(op.src).At(at, func() {
			r.wireAdd(op.src, int64(block))
			o.Topo.Send(op.src, op.dst, block, func() {
				// On a cluster this runs on the destination's engine.
				r.mBlocks.Inc()
				r.mLinkBytes.Add(int64(block))
				if tr := r.trackOf(op.dst); tr != nil {
					tr.Span(fmt.Sprintf("dev%d.round%d.block", op.src, rd), start, r.engOf(op.dst).Now())
				}
				r.stage(rd, op, block)
			})
		})
	})
	for i := 0; i < op.srcReads; i++ {
		mem.Transfer(memory.Read, o.Stream, block, memory.Tag{}, fence.Done)
	}
}

// stage lands one delivered block in the destination's memory — a plain
// write, or an op-and-store update when NMC absorbs the reduction — then
// folds it if the schedule asks, and credits the round fence.
func (r *graphRun) stage(rd int, op sendOp, block units.Bytes) {
	o := r.o
	d := op.dst
	kind := memory.Write
	if op.reduce && o.NMC {
		kind = memory.Update
	}
	o.Devices[d].Mem.Transfer(kind, o.Stream, block, memory.Tag{}, func() {
		r.wireSub(d, int64(block))
		if r.bounds != nil {
			r.staged[d] += int64(block)
			r.bounds[d].Observe(r.engOf(d).Now(), r.staged[d])
		}
		if op.fold && op.reduce && !o.NMC {
			r.fold(d, rd, block)
			return
		}
		r.credit(d, rd)
	})
}

// fold combines a staged reduction block into device d's local accumulator:
// 2 reads + 1 write on the CUs, the eager counterpart of the ring's final
// read-modify-write.
func (r *graphRun) fold(d, rd int, block units.Bytes) {
	o := r.o
	mem := o.Devices[d].Mem
	reads := sim.NewFence(2, func() {
		at := r.pace(d, 3, block)
		r.engOf(d).At(at, func() {
			mem.Transfer(memory.Write, o.Stream, block, memory.Tag{}, func() { r.credit(d, rd) })
		})
	})
	mem.Transfer(memory.Read, o.Stream, block, memory.Tag{}, reads.Done)
	mem.Transfer(memory.Read, o.Stream, block, memory.Tag{}, reads.Done)
}

// merge runs one block of a local merge kernel (the ring schedule's final
// read-modify-write): 2 reads + 1 write, crediting the round's own fence.
func (r *graphRun) merge(d, rd int, block units.Bytes) {
	o := r.o
	mem := o.Devices[d].Mem
	reads := sim.NewFence(2, func() {
		at := r.pace(d, 3, block)
		r.engOf(d).At(at, func() {
			mem.Transfer(memory.Write, o.Stream, block, memory.Tag{}, func() { r.credit(d, rd) })
		})
	})
	mem.Transfer(memory.Read, o.Stream, block, memory.Tag{}, reads.Done)
	mem.Transfer(memory.Read, o.Stream, block, memory.Tag{}, reads.Done)
}

// credit marks one round-rd block landed at device d. A block the schedule
// never promised — a mis-route — finds its fence fired or missing; the
// per-device incoming bound already reported it, so the credit is dropped
// rather than corrupting the fence.
func (r *graphRun) credit(d, rd int) {
	if f := r.fences[d][rd]; f != nil && !f.Fired() {
		f.Done()
	}
}

func (r *graphRun) complete(d int) {
	if r.deviceDone != nil {
		r.deviceDone(d)
		return
	}
	r.done.Done()
}

// StartTopoCollective schedules a timed collective with the given algorithm
// and operation over o.Topo on eng, running onDone when every device has
// finished. The caller drives the engine.
func StartTopoCollective(eng *sim.Engine, algo Algorithm, op Op, o TopoOptions, onDone sim.Handler) error {
	r, err := newGraphRun(eng, nil, algo, op, o, onDone)
	if err != nil {
		return err
	}
	r.start()
	return nil
}

// TopoClusterRun is a timed topology collective scheduled across the
// per-device engines of a sim.Cluster (o.Topo must be built with
// BuildCluster on the same cluster). Drive it with Cluster.Run, then call
// Finish.
type TopoClusterRun struct {
	r      *graphRun
	doneAt []units.Time
}

// StartClusterTopoCollective schedules a timed collective across the
// cluster's engines. The result is identical to StartTopoCollective on a
// single shared engine at every worker count.
func StartClusterTopoCollective(cl *sim.Cluster, algo Algorithm, op Op, o TopoOptions) (*TopoClusterRun, error) {
	engs := cl.Engines()
	if o.Topo != nil && o.Topo.Devices() != len(engs) {
		return nil, fmt.Errorf("collective: %d-device topology on %d-engine cluster",
			o.Topo.Devices(), len(engs))
	}
	r, err := newGraphRun(nil, engs, algo, op, o, nil)
	if err != nil {
		return nil, err
	}
	cr := &TopoClusterRun{r: r, doneAt: make([]units.Time, r.n)}
	r.deviceDone = func(d int) { cr.doneAt[d] = r.engOf(d).Now() }
	r.start()
	return cr, nil
}

// DeviceDone returns device d's completion time. Valid after Cluster.Run.
func (cr *TopoClusterRun) DeviceDone(d int) units.Time { return cr.doneAt[d] }

// Done returns the overall completion time — the latest device completion.
func (cr *TopoClusterRun) Done() units.Time {
	var t units.Time
	for _, at := range cr.doneAt {
		if at > t {
			t = at
		}
	}
	return t
}

// Finish closes the cross-engine conservation books. Call it once, after
// Cluster.Run has returned.
func (cr *TopoClusterRun) Finish() {
	cr.r.xledger.Close(cr.r.horizon())
}
