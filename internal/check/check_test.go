package check

import (
	"strings"
	"testing"

	"t3sim/internal/units"
)

func TestCleanRunHasNoViolations(t *testing.T) {
	c := New()
	m := c.Monotonic("engine")
	m.Observe(0)
	m.Observe(5)
	m.Observe(5) // equal times are fine (tie-broken by insertion order)
	l := c.Ledger("ring")
	l.Add(100)
	l.Sub(3, 60)
	l.Sub(7, 40)
	l.Close(9)
	o := c.Once("dma")
	o.Mark(1, 7)
	o.Mark(2, 8)
	w := c.NonOverlap("chan0")
	w.Window(0, 10)
	w.Window(10, 12)
	b := c.Bound("tracker", 4)
	b.Observe(5, 4)

	if !c.Ok() {
		t.Fatalf("clean run recorded violations: %v", c.Violations())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err = %v, want nil", err)
	}
	if o.Count() != 2 {
		t.Errorf("Once.Count = %d, want 2", o.Count())
	}
	if l.Outstanding() != 0 {
		t.Errorf("Ledger.Outstanding = %d, want 0", l.Outstanding())
	}
}

func TestViolationsCarryTimePathRule(t *testing.T) {
	c := New()
	c.Monotonic("eng").Observe(9)
	m := c.Monotonic("eng2")
	m.Observe(9)
	m.Observe(4)

	l := c.Ledger("ring")
	l.Sub(2, 10) // over-delivery: nothing injected
	l.Add(5)
	l.Close(20) // imbalance: 5 in, 10 out... already over; Close flags too

	o := c.Once("dma")
	o.Mark(1, 3)
	o.Mark(6, 3)

	w := c.NonOverlap("chan")
	w.Window(0, 10)
	w.Window(5, 8)  // overlap
	w.Window(12, 4) // inverted

	b := c.Bound("trk", 2)
	b.Observe(15, 3)

	vs := c.Violations()
	wantRules := map[string]bool{
		"ordering/monotonic":         false,
		"conservation/over-delivery": false,
		"conservation/balance":       false,
		"conservation/duplicate":     false,
		"ordering/overlap":           false,
		"ordering/inverted-window":   false,
		"bound/exceeded":             false,
	}
	for _, v := range vs {
		if v.Path == "" {
			t.Errorf("violation with empty path: %v", v)
		}
		if _, ok := wantRules[v.Rule]; ok {
			wantRules[v.Rule] = true
		}
	}
	for rule, seen := range wantRules {
		if !seen {
			t.Errorf("no violation recorded for rule %q; have %v", rule, vs)
		}
	}
	// Sorted by detection time.
	for i := 1; i < len(vs); i++ {
		if vs[i].At < vs[i-1].At {
			t.Fatalf("violations not time-sorted: %v", vs)
		}
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "violation") {
		t.Errorf("Err = %v, want violation summary", err)
	}
	// The violation string carries all four fields.
	s := vs[0].String()
	for _, part := range []string{"t=", vs[0].Path, vs[0].Rule} {
		if !strings.Contains(s, part) {
			t.Errorf("String() = %q missing %q", s, part)
		}
	}
}

// TestStrictCheckerFailsFast pins the fail-fast mode: the first violation
// panics at the breaking event instead of being collected.
func TestStrictCheckerFailsFast(t *testing.T) {
	c := NewStrict()
	m := c.Monotonic("eng")
	m.Observe(10)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("strict checker did not panic on violation")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "ordering/monotonic") {
			t.Fatalf("panic = %v, want ordering/monotonic violation", r)
		}
	}()
	m.Observe(3)
}

// TestNilCheckerAllocatesNothing is the zero-cost contract: every handle
// obtained from a nil checker is nil, and every method on a nil handle (or
// the nil checker itself) performs zero allocations. This is what lets the
// hot paths of the engine, the memory channels and the fused runners call
// the checker unconditionally.
func TestNilCheckerAllocatesNothing(t *testing.T) {
	var c *Checker
	if c.Enabled() {
		t.Fatal("nil checker reports enabled")
	}
	m := c.Monotonic("x")
	l := c.Ledger("x")
	o := c.Once("x")
	w := c.NonOverlap("x")
	b := c.Bound("x", 1)
	la := c.Lookahead("x")
	x := c.CrossLedger("x")
	cell := x.Cell()
	if m != nil || l != nil || o != nil || w != nil || b != nil || la != nil || x != nil || cell != nil {
		t.Fatal("nil checker returned non-nil handles")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Observe(1)
		l.Add(1)
		l.Sub(1, 1)
		l.Close(2)
		o.Mark(1, 1)
		w.Window(1, 2)
		b.Observe(1, 2)
		la.Observe(10, 5)
		la.ObserveLink(10, 5, 20)
		cell.Add(1)
		cell.Sub(1)
		x.Close(3)
		c.Violationf(1, "x", "y", "%d", 1)
		_ = c.Ok()
		_ = c.Err()
		_ = c.Violations()
		_ = l.Outstanding()
		_ = o.Count()
	})
	if allocs != 0 {
		t.Fatalf("nil checker allocated %v times per run, want 0", allocs)
	}
}

func TestLookaheadLaw(t *testing.T) {
	c := New()
	la := c.Lookahead("cluster")
	la.Observe(100, 100) // delivery exactly at the barrier is legal
	la.Observe(100, 250)
	if !c.Ok() {
		t.Fatalf("legal deliveries flagged: %v", c.Violations())
	}
	la.Observe(100, 99) // inside the completed window: violation
	vs := c.Violations()
	if len(vs) != 1 || vs[0].Rule != "ordering/lookahead" || vs[0].At != 99 {
		t.Fatalf("violations = %v, want one ordering/lookahead at t=99", vs)
	}
}

// TestLookaheadLinkLawPerEdge exercises the graph form of the lookahead law:
// on an arbitrary topology each edge carries its own minimum latency, so the
// same handle must accept a delivery that respects one edge's latency and
// reject one that undercuts another's.
func TestLookaheadLinkLawPerEdge(t *testing.T) {
	c := New()
	la := c.Lookahead("cluster")
	la.ObserveLink(100, 5, 105)  // fast intra-node edge, exactly at the bound
	la.ObserveLink(100, 50, 200) // slow inter-node edge, comfortably beyond
	if !c.Ok() {
		t.Fatalf("legal per-edge deliveries flagged: %v", c.Violations())
	}
	la.ObserveLink(100, 50, 149) // arrives faster than the edge's registered latency
	vs := c.Violations()
	if len(vs) != 1 || vs[0].Rule != "ordering/link-lookahead" || vs[0].At != 149 {
		t.Fatalf("violations = %v, want one ordering/link-lookahead at t=149", vs)
	}
}

func TestCrossLedgerBalancedAndFalsifiable(t *testing.T) {
	c := New()
	x := c.CrossLedger("ring")
	a, b := x.Cell(), x.Cell()
	// Balanced books across cells: a injects what b receives and vice versa.
	a.Add(100)
	b.Sub(60)
	b.Sub(40)
	b.Add(7)
	a.Sub(7)
	x.Close(50)
	if !c.Ok() {
		t.Fatalf("balanced cross-ledger flagged: %v", c.Violations())
	}
	// Falsifiability: drop a delivery and Close must object.
	c2 := New()
	x2 := c2.CrossLedger("ring")
	s, r := x2.Cell(), x2.Cell()
	s.Add(10)
	r.Sub(9) // one unit lost in flight
	x2.Close(99)
	vs := c2.Violations()
	if len(vs) != 1 || vs[0].Rule != "conservation/cross-balance" {
		t.Fatalf("violations = %v, want one conservation/cross-balance", vs)
	}
}

// TestEnabledHandlesAllocateNothingOnCleanPath pins that an enabled checker
// stays allocation-free as long as no violation occurs (violation formatting
// is allowed to allocate).
func TestEnabledHandlesAllocateNothingOnCleanPath(t *testing.T) {
	c := New()
	m := c.Monotonic("x")
	l := c.Ledger("x")
	w := c.NonOverlap("x")
	b := c.Bound("x", 1<<40)
	var at units.Time
	allocs := testing.AllocsPerRun(1000, func() {
		at++
		m.Observe(at)
		l.Add(1)
		l.Sub(at, 1)
		w.Window(at, at)
		b.Observe(at, 1)
	})
	if allocs != 0 {
		t.Fatalf("clean enabled path allocated %v times per run, want 0", allocs)
	}
	if !c.Ok() {
		t.Fatalf("unexpected violations: %v", c.Violations())
	}
}
