package check

import (
	"testing"
)

func TestRequestsConservation(t *testing.T) {
	c := New()
	rq := c.Requests("serving")
	for i := 0; i < 5; i++ {
		rq.Arrive()
	}
	rq.Complete(10)
	rq.Complete(20)
	rq.Close(30, 2, 1) // 5 arrived = 2 completed + 2 waiting + 1 active
	if !c.Ok() {
		t.Fatalf("balanced request books flagged: %v", c.Violations())
	}

	// Falsifiability 1: completing a request that never arrived.
	c2 := New()
	rq2 := c2.Requests("serving")
	rq2.Arrive()
	rq2.Complete(1)
	rq2.Complete(2) // second completion of a single arrival
	vs := c2.Violations()
	if len(vs) != 1 || vs[0].Rule != "conservation/over-completion" || vs[0].At != 2 {
		t.Fatalf("violations = %v, want one conservation/over-completion at t=2", vs)
	}

	// Falsifiability 2: a request lost in flight (arrived, never accounted).
	c3 := New()
	rq3 := c3.Requests("serving")
	rq3.Arrive()
	rq3.Arrive()
	rq3.Complete(5)
	rq3.Close(9, 0, 0) // one request vanished
	vs = c3.Violations()
	if len(vs) != 1 || vs[0].Rule != "conservation/request-balance" {
		t.Fatalf("violations = %v, want one conservation/request-balance", vs)
	}
}

func TestMilestonesOrdering(t *testing.T) {
	c := New()
	ms := c.Milestones("serving")
	ms.Observe(0, 10, 10, 15, 15) // equal adjacent milestones are legal
	ms.Observe(1, 0, 5, 9, 100)
	if !c.Ok() {
		t.Fatalf("ordered milestones flagged: %v", c.Violations())
	}
	// Each inversion is caught.
	ms.Observe(2, 10, 9, 20, 30) // prefill before arrival
	ms.Observe(3, 0, 10, 9, 30)  // first token before prefill
	ms.Observe(4, 0, 10, 20, 19) // done before first token
	vs := c.Violations()
	if len(vs) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(vs), vs)
	}
	for _, v := range vs {
		if v.Rule != "ordering/milestones" {
			t.Errorf("rule = %q, want ordering/milestones", v.Rule)
		}
	}
}

// TestServingHandlesNilAllocFree extends the nil-checker zero-cost contract
// to the serving laws: nil handles, zero allocations.
func TestServingHandlesNilAllocFree(t *testing.T) {
	var c *Checker
	rq := c.Requests("x")
	ms := c.Milestones("x")
	if rq != nil || ms != nil {
		t.Fatal("nil checker returned non-nil serving handles")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		rq.Arrive()
		rq.Complete(1)
		rq.Close(2, 0, 0)
		ms.Observe(0, 1, 2, 3, 4)
	})
	if allocs != 0 {
		t.Fatalf("nil serving handles allocated %v times per run, want 0", allocs)
	}
}

// TestServingHandlesCleanPathAllocFree pins that enabled serving handles stay
// allocation-free while the laws hold.
func TestServingHandlesCleanPathAllocFree(t *testing.T) {
	c := New()
	rq := c.Requests("x")
	ms := c.Milestones("x")
	allocs := testing.AllocsPerRun(1000, func() {
		rq.Arrive()
		rq.Complete(1)
		ms.Observe(0, 1, 2, 3, 4)
	})
	if allocs != 0 {
		t.Fatalf("clean serving path allocated %v times per run, want 0", allocs)
	}
	if !c.Ok() {
		t.Fatalf("unexpected violations: %v", c.Violations())
	}
}
