// Package check is the simulator's invariant checker: a second, independent
// witness of the laws every timing model must uphold — conservation (bytes
// injected into the ring equal bytes delivered, the tracker drains to zero
// live entries, each DMA fires exactly once per tile), ordering (engine event
// times are monotone, a memory channel's service windows never overlap,
// fused-runner spans nest), and bounds (tracker occupancy stays within
// sets×ways, link busy time never exceeds wall time).
//
// It is threaded through the model configs exactly like metrics.Sink: a nil
// *Checker costs nothing. Handle constructors on a nil checker return nil
// handles, and every method on a nil handle is a single branch with zero
// allocations, so unchecked simulations keep their exact timing behaviour
// and allocation profile (guarded by TestNilCheckerAllocatesNothing and the
// fused-runner integration tests in internal/t3core).
//
// A violation records the simulation time it was detected at, the model path
// that raised it ("t3core.tracker", "memory.chan7.service"), a rule
// identifier ("conservation/drain"), and a message. The default checker
// collects violations for end-of-run reporting (Err, Violations); a strict
// checker panics on the first violation so a failing invariant stops the
// simulation at the exact event that broke it.
//
// Concurrency: one Checker may be shared by concurrent simulations (the
// evaluator's worker pool threads a single checker through every run under
// -j). Recording a violation is mutex-guarded; handles are single-writer —
// each belongs to one model instance inside one single-goroutine simulation.
package check

import (
	"fmt"
	"sort"
	"sync"

	"t3sim/internal/units"
)

// Rule categories. Concrete rules are "<category>/<name>", e.g.
// "conservation/ring-delivery" — Violation.Rule keeps the full string.
const (
	RuleConservation = "conservation"
	RuleOrdering     = "ordering"
	RuleBound        = "bound"
)

// Violation is one detected invariant breach.
type Violation struct {
	// At is the simulation time the breach was detected at.
	At units.Time
	// Path names the model instance that raised it, e.g. "t3core.tracker".
	Path string
	// Rule identifies the broken law, e.g. "conservation/drain".
	Rule string
	// Msg is the human-readable detail.
	Msg string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("t=%v %s: %s: %s", v.At, v.Path, v.Rule, v.Msg)
}

// Checker collects invariant violations. A nil *Checker is the disabled
// checker: every method no-ops and every handle constructor returns a nil
// (inert) handle.
type Checker struct {
	strict bool

	mu         sync.Mutex
	violations []Violation
}

// New returns a checker that records violations for end-of-run inspection
// via Err and Violations.
func New() *Checker { return &Checker{} }

// NewStrict returns a fail-fast checker: the first violation panics with the
// violation's String, stopping the simulation at the breaking event.
func NewStrict() *Checker { return &Checker{strict: true} }

// Enabled reports whether the checker records anything. Model code uses it
// to skip end-of-run bookkeeping whose inputs are not free to compute.
func (c *Checker) Enabled() bool { return c != nil }

// Violationf records a violation at sim-time at against the model path and
// rule. No-op on a nil checker; a strict checker panics instead of recording.
func (c *Checker) Violationf(at units.Time, path, rule, format string, args ...any) {
	if c == nil {
		return
	}
	v := Violation{At: at, Path: path, Rule: rule, Msg: fmt.Sprintf(format, args...)}
	if c.strict {
		panic("check: " + v.String())
	}
	c.mu.Lock()
	c.violations = append(c.violations, v)
	c.mu.Unlock()
}

// Ok reports whether no violations have been recorded (true for nil).
func (c *Checker) Ok() bool {
	if c == nil {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.violations) == 0
}

// Violations returns every recorded violation, sorted by (time, path, rule,
// message) so reports are deterministic even when concurrent simulations
// shared the checker. Nil checkers return nil.
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return out
}

// Err returns nil when no violations were recorded, else an error quoting
// the first (earliest) violation and the total count.
func (c *Checker) Err() error {
	vs := c.Violations()
	if len(vs) == 0 {
		return nil
	}
	if len(vs) == 1 {
		return fmt.Errorf("check: 1 violation: %s", vs[0])
	}
	return fmt.Errorf("check: %d violations, first: %s", len(vs), vs[0])
}

// Monotonic verifies a time sequence never decreases — the engine's event
// clock, a link serializer's busy horizon. A nil *Monotonic discards
// observations.
type Monotonic struct {
	c    *Checker
	path string
	last units.Time
	any  bool
}

// Monotonic returns a handle for the model path (nil on a nil checker).
func (c *Checker) Monotonic(path string) *Monotonic {
	if c == nil {
		return nil
	}
	return &Monotonic{c: c, path: path}
}

// Observe checks at against the previous observation.
func (m *Monotonic) Observe(at units.Time) {
	if m == nil {
		return
	}
	if m.any && at < m.last {
		m.c.Violationf(at, m.path, RuleOrdering+"/monotonic",
			"time went backwards: %v after %v", at, m.last)
		return
	}
	m.last = at
	m.any = true
}

// Ledger verifies a conservation law: everything injected (Add) is
// eventually delivered (Sub), deliveries never outrun injections, and the
// books balance at Close. A nil *Ledger discards updates.
type Ledger struct {
	c       *Checker
	path    string
	in, out int64
}

// Ledger returns a handle for the model path (nil on a nil checker).
func (c *Checker) Ledger(path string) *Ledger {
	if c == nil {
		return nil
	}
	return &Ledger{c: c, path: path}
}

// Add records n units injected.
func (l *Ledger) Add(n int64) {
	if l == nil {
		return
	}
	l.in += n
}

// Sub records n units delivered at sim-time at; delivering more than was
// injected is a violation.
func (l *Ledger) Sub(at units.Time, n int64) {
	if l == nil {
		return
	}
	l.out += n
	if l.out > l.in {
		l.c.Violationf(at, l.path, RuleConservation+"/over-delivery",
			"delivered %d of %d injected", l.out, l.in)
	}
}

// Close asserts the books balance at end of run.
func (l *Ledger) Close(at units.Time) {
	if l == nil {
		return
	}
	if l.in != l.out {
		l.c.Violationf(at, l.path, RuleConservation+"/balance",
			"injected %d but delivered %d (%d outstanding)", l.in, l.out, l.in-l.out)
	}
}

// Outstanding returns injected minus delivered (0 for nil).
func (l *Ledger) Outstanding() int64 {
	if l == nil {
		return 0
	}
	return l.in - l.out
}

// Lookahead verifies the conservative parallel-DES window guarantee: a
// cross-engine message drained at a window barrier must never be timestamped
// inside the window that just ran — deliveries always land at or after the
// barrier, because every send inside a window of width L (the link latency)
// serializes for a non-negative time and then travels for exactly L. A
// message arriving earlier means an engine already executed events the
// message should have interleaved with, i.e. the synchronization layer lost
// determinism. A nil *Lookahead discards observations.
type Lookahead struct {
	c    *Checker
	path string
}

// Lookahead returns a handle for the model path (nil on a nil checker).
func (c *Checker) Lookahead(path string) *Lookahead {
	if c == nil {
		return nil
	}
	return &Lookahead{c: c, path: path}
}

// Observe checks one drained message: deliverAt is its delivery timestamp,
// barrier the window boundary it was drained at. deliverAt < barrier is a
// violation of the lookahead guarantee.
func (la *Lookahead) Observe(barrier, deliverAt units.Time) {
	if la == nil {
		return
	}
	if deliverAt < barrier {
		la.c.Violationf(deliverAt, la.path, RuleOrdering+"/lookahead",
			"message delivered at %v inside the window ending at %v", deliverAt, barrier)
	}
}

// ObserveLink checks one drained message against its link's law — the
// per-link refinement of the window guarantee that dynamic per-device
// lookahead rests on. The message was posted no earlier than windowStart (the
// sending engine's clock when its current posting window opened, i.e. at the
// previous drain) and must travel at least minLatency (the latency the link
// registered with the cluster), so a delivery timestamped before
// windowStart+minLatency proves the model lied about the link's latency: the
// per-device horizons derived from that latency could have let the receiver
// run past the delivery.
func (la *Lookahead) ObserveLink(windowStart, minLatency, deliverAt units.Time) {
	if la == nil {
		return
	}
	if deliverAt < windowStart+minLatency {
		la.c.Violationf(deliverAt, la.path, RuleOrdering+"/link-lookahead",
			"message delivered at %v but the link admits nothing before %v (window start %v + link latency %v)",
			deliverAt, windowStart+minLatency, windowStart, minLatency)
	}
}

// ObservePromise checks one drained message against its edge's appointment:
// the per-edge promise (bound of the sending engine plus the link latency)
// the scheduler published before the receiver's last window. The receiver's
// horizon was derived from exactly this value, so a delivery timestamped
// before it proves the sender broke its appointment — the receiver may
// already have executed events the message should have interleaved with.
func (la *Lookahead) ObservePromise(promised, deliverAt units.Time) {
	if la == nil {
		return
	}
	if deliverAt < promised {
		la.c.Violationf(deliverAt, la.path, RuleOrdering+"/appointment",
			"message delivered at %v but the link promised nothing before %v", deliverAt, promised)
	}
}

// CrossLedger verifies a conservation law that spans engines running on
// different goroutines — ring bytes injected by every sender equal bytes
// staged by every receiver. Unlike Ledger (a single-writer running balance),
// a CrossLedger hands each participant a private CrossCell: cells are
// single-writer on their owner's goroutine during the run, and the books are
// summed only at Close, after the cluster barrier has already ordered every
// cell write before the coordinator's read. A nil *CrossLedger returns nil
// (inert) cells.
type CrossLedger struct {
	c     *Checker
	path  string
	mu    sync.Mutex
	cells []*CrossCell
}

// CrossCell is one participant's private conservation account.
type CrossCell struct {
	in, out int64
}

// CrossLedger returns a handle for the model path (nil on a nil checker).
func (c *Checker) CrossLedger(path string) *CrossLedger {
	if c == nil {
		return nil
	}
	return &CrossLedger{c: c, path: path}
}

// Cell registers and returns a new private account. Call it at setup, before
// the owning goroutine starts. Nil ledgers return nil cells.
func (x *CrossLedger) Cell() *CrossCell {
	if x == nil {
		return nil
	}
	cell := &CrossCell{}
	x.mu.Lock()
	x.cells = append(x.cells, cell)
	x.mu.Unlock()
	return cell
}

// Add records n units injected by this cell's owner.
func (cc *CrossCell) Add(n int64) {
	if cc == nil {
		return
	}
	cc.in += n
}

// Sub records n units delivered to this cell's owner.
func (cc *CrossCell) Sub(n int64) {
	if cc == nil {
		return
	}
	cc.out += n
}

// Close sums every cell and asserts the global books balance at end of run.
// Call it only after the owning goroutines have stopped (e.g. after
// Cluster.Run returns).
func (x *CrossLedger) Close(at units.Time) {
	if x == nil {
		return
	}
	x.mu.Lock()
	var in, out int64
	for _, cell := range x.cells {
		in += cell.in
		out += cell.out
	}
	x.mu.Unlock()
	if in != out {
		x.c.Violationf(at, x.path, RuleConservation+"/cross-balance",
			"injected %d but delivered %d across %d cells (%d outstanding)",
			in, out, len(x.cells), in-out)
	}
}

// Once verifies an exactly-once law per integer key — one triggered DMA per
// tile. A nil *Once discards marks.
type Once struct {
	c    *Checker
	path string
	seen map[int]struct{}
}

// Once returns a handle for the model path (nil on a nil checker).
func (c *Checker) Once(path string) *Once {
	if c == nil {
		return nil
	}
	return &Once{c: c, path: path}
}

// Mark records key's occurrence at sim-time at; a repeat is a violation.
func (o *Once) Mark(at units.Time, key int) {
	if o == nil {
		return
	}
	if o.seen == nil {
		o.seen = make(map[int]struct{})
	}
	if _, dup := o.seen[key]; dup {
		o.c.Violationf(at, o.path, RuleConservation+"/duplicate",
			"key %d occurred twice", key)
		return
	}
	o.seen[key] = struct{}{}
}

// Count returns how many distinct keys were marked (0 for nil).
func (o *Once) Count() int {
	if o == nil {
		return 0
	}
	return len(o.seen)
}

// NonOverlap verifies a serially-reused resource's busy windows never
// overlap and never run backwards — one memory channel's service stage, one
// link's serializer. A nil *NonOverlap discards windows.
type NonOverlap struct {
	c    *Checker
	path string
	busy units.Time
}

// NonOverlap returns a handle for the model path (nil on a nil checker).
func (c *Checker) NonOverlap(path string) *NonOverlap {
	if c == nil {
		return nil
	}
	return &NonOverlap{c: c, path: path}
}

// Window records one busy window [start, end]. Inverted windows and windows
// starting before the previous one ended are violations.
func (w *NonOverlap) Window(start, end units.Time) {
	if w == nil {
		return
	}
	if end < start {
		w.c.Violationf(start, w.path, RuleOrdering+"/inverted-window",
			"window ends %v before it starts %v", end, start)
		return
	}
	if start < w.busy {
		w.c.Violationf(start, w.path, RuleOrdering+"/overlap",
			"window starts %v while busy until %v", start, w.busy)
	}
	if end > w.busy {
		w.busy = end
	}
}

// Bound verifies an occupancy never exceeds a fixed limit — tracker live
// entries against sets×ways, a DRAM queue against its depth. A nil *Bound
// discards observations.
type Bound struct {
	c     *Checker
	path  string
	limit int64
}

// Bound returns a handle enforcing limit for the model path (nil on a nil
// checker).
func (c *Checker) Bound(path string, limit int64) *Bound {
	if c == nil {
		return nil
	}
	return &Bound{c: c, path: path, limit: limit}
}

// Observe checks v against the limit at sim-time at.
func (b *Bound) Observe(at units.Time, v int64) {
	if b == nil {
		return
	}
	if v > b.limit {
		b.c.Violationf(at, b.path, RuleBound+"/exceeded",
			"occupancy %d exceeds limit %d", v, b.limit)
	}
}
