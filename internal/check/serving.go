package check

import "t3sim/internal/units"

// Requests verifies the serving simulator's request-conservation law: every
// request that arrives is, at close, accounted for exactly once — completed,
// still waiting in the admission queue, or still active in the decode batch.
// Completions never outrun arrivals. A nil *Requests discards updates.
type Requests struct {
	c        *Checker
	path     string
	arrived  int64
	finished int64
}

// Requests returns a handle for the model path (nil on a nil checker).
func (c *Checker) Requests(path string) *Requests {
	if c == nil {
		return nil
	}
	return &Requests{c: c, path: path}
}

// Arrive records one request entering the system.
func (rq *Requests) Arrive() {
	if rq == nil {
		return
	}
	rq.arrived++
}

// Complete records one request finishing at sim-time at; finishing more
// requests than arrived is a violation.
func (rq *Requests) Complete(at units.Time) {
	if rq == nil {
		return
	}
	rq.finished++
	if rq.finished > rq.arrived {
		rq.c.Violationf(at, rq.path, RuleConservation+"/over-completion",
			"completed %d of %d arrived", rq.finished, rq.arrived)
	}
}

// Close asserts the books balance at end of run: arrivals equal completions
// plus the requests still waiting in the queue plus those still in the batch.
func (rq *Requests) Close(at units.Time, waiting, active int64) {
	if rq == nil {
		return
	}
	if rq.arrived != rq.finished+waiting+active {
		rq.c.Violationf(at, rq.path, RuleConservation+"/request-balance",
			"%d arrived but %d completed + %d waiting + %d active",
			rq.arrived, rq.finished, waiting, active)
	}
}

// Milestones verifies per-request milestone monotonicity: a request's
// lifecycle timestamps must satisfy arrive ≤ prefill-start ≤ first-token ≤
// done. A nil *Milestones discards observations.
type Milestones struct {
	c    *Checker
	path string
}

// Milestones returns a handle for the model path (nil on a nil checker).
func (c *Checker) Milestones(path string) *Milestones {
	if c == nil {
		return nil
	}
	return &Milestones{c: c, path: path}
}

// Observe checks one completed request's lifecycle. id labels the request in
// the violation message.
func (ms *Milestones) Observe(id int, arrive, prefillStart, firstToken, done units.Time) {
	if ms == nil {
		return
	}
	switch {
	case prefillStart < arrive:
		ms.c.Violationf(done, ms.path, RuleOrdering+"/milestones",
			"request %d: prefill start %v before arrival %v", id, prefillStart, arrive)
	case firstToken < prefillStart:
		ms.c.Violationf(done, ms.path, RuleOrdering+"/milestones",
			"request %d: first token %v before prefill start %v", id, firstToken, prefillStart)
	case done < firstToken:
		ms.c.Violationf(done, ms.path, RuleOrdering+"/milestones",
			"request %d: done %v before first token %v", id, done, firstToken)
	}
}
