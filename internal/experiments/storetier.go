package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"reflect"
	"sync"

	"t3sim/internal/memory"
	"t3sim/internal/store"
	"t3sim/internal/t3core"
)

// This file derives the code-identity version string that gates the
// persistent result store. Two builds share cache entries only when both
// components agree:
//
//   - the build identity (VCS revision via runtime/debug.ReadBuildInfo, so
//     editing any source and rebuilding invalidates the cache wholesale;
//     test binaries fall back to a deterministic constant), and
//   - a structural fingerprint of every persisted result type and every
//     hashed option type, walked by reflection. This is the safety net for
//     builds the VCS stamp cannot tell apart (dirty worktrees, `go test`
//     binaries): if a result struct gains, loses or retypes a field, gob
//     would happily decode an old payload into the new struct and zero-fill
//     the difference — the fingerprint changes instead, and every stale
//     entry becomes invisible.
//
// Nothing here is hand-bumped; both components are derived from the binary.

// storedTypes are the result types the persistent tier encodes (one per
// MemoCache key space) plus the option types whose reflection walk defines
// the canonical keys. Order matters only for fingerprint stability within
// one build.
var storedTypes = []reflect.Type{
	reflect.TypeOf(t3core.FusedResult{}),
	reflect.TypeOf(t3core.MultiDeviceResult{}),
	reflect.TypeOf(SublayerResult{}),
	reflect.TypeOf(CoarseOverlapResult{}),
	reflect.TypeOf(LayerValidationResult{}),
	reflect.TypeOf(Fig6Result{}),
	reflect.TypeOf(Fig14Result{}),
	reflect.TypeOf(TopoSweepResult{}),
	reflect.TypeOf(t3core.FusedOptions{}),
	reflect.TypeOf(memory.Config{}),
	reflect.TypeOf(Setup{}),
}

var storeVersionOnce = sync.OnceValue(func() string {
	h := sha256.New()
	seen := map[reflect.Type]bool{}
	for _, t := range storedTypes {
		writeTypeSignature(h, t, seen)
	}
	schema := hex.EncodeToString(h.Sum(nil))[:16]
	return store.BuildIdentity() + "/" + schema
})

// StoreVersion returns this build's store version string: build identity
// plus result/option schema fingerprint.
func StoreVersion() string {
	return storeVersionOnce()
}

// writeTypeSignature folds a type's structure — kind, name, and for structs
// every exported field's name and type, recursively — into h.
func writeTypeSignature(h hash.Hash, t reflect.Type, seen map[reflect.Type]bool) {
	io.WriteString(h, t.String())
	io.WriteString(h, "|")
	io.WriteString(h, t.Kind().String())
	io.WriteString(h, ";")
	if seen[t] {
		return
	}
	seen[t] = true
	switch t.Kind() {
	case reflect.Struct:
		fmt.Fprintf(h, "{%d:", t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			io.WriteString(h, f.Name)
			io.WriteString(h, "=")
			writeTypeSignature(h, f.Type, seen)
		}
		io.WriteString(h, "}")
	case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Map, reflect.Chan:
		if t.Kind() == reflect.Map {
			writeTypeSignature(h, t.Key(), seen)
		}
		if t.Kind() == reflect.Array {
			fmt.Fprintf(h, "[%d]", t.Len())
		}
		writeTypeSignature(h, t.Elem(), seen)
	}
}

// OpenStore opens dir as a persistent result store under this build's
// version. Attach the result to a MemoCache via AttachStore.
func OpenStore(dir string, mode store.Mode) (*store.Store, error) {
	return store.Open(dir, store.Options{Version: StoreVersion(), Mode: mode})
}

// ParseStoreMode parses the CLIs' -cache-mode value: "rw" (read-write),
// "ro" (read-only) or "off" (ignore the cache directory entirely).
func ParseStoreMode(s string) (mode store.Mode, off bool, err error) {
	switch s {
	case "rw":
		return store.ReadWrite, false, nil
	case "ro":
		return store.ReadOnly, false, nil
	case "off":
		return 0, true, nil
	}
	return 0, false, fmt.Errorf("cache mode %q: want rw, ro or off", s)
}
