package experiments

import (
	"fmt"

	"t3sim/internal/collective"
	"t3sim/internal/metrics"
	"t3sim/internal/serving"
	"t3sim/internal/t3core"
	"t3sim/internal/transformer"
	"t3sim/internal/units"
)

// The serving experiments answer the deployment question the paper stops
// short of: how much request-serving capacity does T3's fused overlap buy at
// a fixed tail-latency SLO? They drive internal/serving's continuous-batching
// simulator with step costs priced from the iteration model, where each AR
// sub-layer's GEMM+RS portion is scaled by the fused-over-sequential ratio
// the DES fused runners measure — the same methodology Figure 19 and the
// generation study use, here applied per prompt-length and batch-size bucket.

// Serving workload defaults. The golden snapshots pin every value; the
// ServeQPS/ServeSLO setup fields (CLI -qps/-slo) override the sweep ladder
// and the SLO without touching the workload shape.
const (
	serveModel       = "Mega-GPT-2"
	serveTP          = 8
	serveNumRequests = 200
	serveMaxBatch    = 16
	serveMaxPrefills = 4
	serveSeed        = 42
	serveTenantsQPS  = 12 // fixed operating point of the per-tenant study
)

// serveDefaultQPS is the sweep ladder (requests/s) when Setup.ServeQPS is
// unset, bracketing the TP-8 Mega-GPT-2 capacity knee.
var serveDefaultQPS = []float64{4, 8, 12, 16, 20, 24}

// serveDefaultSLO is the p99 TTFT service-level objective when
// Setup.ServeSLO is unset. 400ms sits right at the TP-8 Mega-GPT-2 capacity
// knee, where the schemes separate: the baseline's p99 TTFT blows through it
// one QPS rung before T3's does.
const serveDefaultSLO = 400 * units.Millisecond

// serveTenantMix is the two-tenant workload: an interactive chat stream
// (short prompts, short outputs, 3x the traffic) and a batch-analytics
// stream (long prompts, long outputs).
func serveTenantMix() []serving.Tenant {
	return []serving.Tenant{
		{Name: "chat", PromptMin: 128, PromptMax: 512, OutputMin: 16, OutputMax: 64, Weight: 3},
		{Name: "batch", PromptMin: 256, PromptMax: 1024, OutputMin: 32, OutputMax: 128, Weight: 1},
	}
}

// servePromptBuckets are the power-of-two prompt-length quantization points
// covering the tenant mix; serveBatchBuckets cover batch sizes up to
// serveMaxBatch. Costs are looked up at the next bucket at or above the
// actual value (rounding work up, never down).
var (
	servePromptBuckets = []int{128, 256, 512, 1024}
	serveBatchBuckets  = []int{1, 2, 4, 8, 16}
)

// ServeCost is a bucketed serving.CostModel: step times precomputed per
// prompt-length/batch-size bucket, so the serving hot loop prices steps with
// two slice scans and zero allocations.
type ServeCost struct {
	promptBuckets []int
	prefill       []units.Time
	batchBuckets  []int
	decode        []units.Time
}

// Prefill implements serving.CostModel.
func (c *ServeCost) Prefill(promptTokens int) units.Time {
	return lookupBucket(c.promptBuckets, c.prefill, promptTokens)
}

// DecodeStep implements serving.CostModel.
func (c *ServeCost) DecodeStep(batch int) units.Time {
	return lookupBucket(c.batchBuckets, c.decode, batch)
}

// lookupBucket returns the cost of the first bucket at or above v (the last
// bucket for anything larger).
func lookupBucket(buckets []int, costs []units.Time, v int) units.Time {
	for i, b := range buckets {
		if v <= b {
			return costs[i]
		}
	}
	return costs[len(costs)-1]
}

// BuildServeCost prices every bucket for one model/TP, with (t3 = true) or
// without T3's fused GEMM→RS overlap. T3 pricing runs one DES fused run per
// (sub-layer, bucket) through the memo cache, so repeated builds across QPS
// points, schemes and catalogue entries simulate each shape once.
func BuildServeCost(ev *Evaluator, m transformer.Model, tp int, t3 bool) (*ServeCost, error) {
	cost := &ServeCost{promptBuckets: servePromptBuckets, batchBuckets: serveBatchBuckets}
	for _, p := range servePromptBuckets {
		t, err := serveStepTime(ev, m, tp, transformer.PromptInference, p, t3)
		if err != nil {
			return nil, err
		}
		cost.prefill = append(cost.prefill, t)
	}
	for _, b := range serveBatchBuckets {
		t, err := serveStepTime(ev, m, tp, transformer.TokenGeneration, b, t3)
		if err != nil {
			return nil, err
		}
		cost.decode = append(cost.decode, t)
	}
	return cost, nil
}

// serveStepTime prices one step processing `tokens` tokens in the phase:
// baseline is the analytic iteration total; T3 replaces each AR sub-layer's
// GEMM+RS with the DES-measured fused time (scaled through the
// fused/sequential ratio, exactly like Figure 19 and §7.3).
func serveStepTime(ev *Evaluator, m transformer.Model, tp int, phase transformer.Phase, tokens int, t3 bool) (units.Time, error) {
	it, err := transformer.NewIterationModelTokens(m, tp, phase, ev.Setup.HW(), tokens)
	if err != nil {
		return 0, err
	}
	if !t3 {
		return it.Total(), nil
	}
	fused := map[transformer.SubLayerKind]units.Time{}
	for kind, sub := range it.Sub {
		ratio, err := serveFusedRatio(ev, m, kind, tp, tokens)
		if err != nil {
			return 0, err
		}
		fused[kind] = units.Time(float64(sub.GEMM+sub.RS) * ratio)
	}
	return it.WithSubLayerTimes(fused), nil
}

// serveFusedRatio measures fused/(GEMM+RS) for one sub-layer shape via the
// DES: the isolated producer GEMM, the analytic ring reduce-scatter, and the
// T3-MCA fused run (memoized).
func serveFusedRatio(ev *Evaluator, m transformer.Model, kind transformer.SubLayerKind, tp, tokens int) (float64, error) {
	s := ev.Setup
	sl, err := transformer.SubLayerGEMMTokens(m, kind, tp, tokens)
	if err != nil {
		return 0, err
	}
	gemm, _, err := ev.isolatedGEMM(sl, false, nil)
	if err != nil {
		return 0, err
	}
	rs, err := collective.AnalyticRingReduceScatterTime(collective.AnalyticOptions{
		Devices:           tp,
		TotalBytes:        sl.ARBytes,
		Link:              s.Link,
		MemBandwidth:      s.Memory.TotalBandwidth,
		CUs:               s.CollectiveCUs,
		PerCUMemBandwidth: s.PerCUMemBandwidth,
	})
	if err != nil {
		return 0, err
	}
	fusedRun, err := memoFusedRS(s.Memo, t3core.FusedOptions{
		GPU:         s.GPU,
		Memory:      s.Memory,
		Link:        s.Link,
		Tracker:     s.Tracker,
		Devices:     tp,
		Grid:        sl.Grid,
		Collective:  t3core.RingReduceScatter,
		Arbitration: t3core.ArbMCA,
		Check:       s.Check,
	})
	if err != nil {
		return 0, err
	}
	return float64(fusedRun.Done) / float64(gemm+rs), nil
}

// serveConfig assembles the serving.Config shared by both experiments.
func serveConfig(s Setup, qps float64, cost *ServeCost, scopeName string) serving.Config {
	var sink metrics.Sink
	if s.Metrics != nil {
		sink = s.Metrics.Scope(scopeName)
	}
	return serving.Config{
		Tenants:            serveTenantMix(),
		QPS:                qps,
		NumRequests:        serveNumRequests,
		MaxBatch:           serveMaxBatch,
		MaxPrefillsPerStep: serveMaxPrefills,
		Seed:               serveSeed,
		Cost:               cost,
		Metrics:            sink,
		Checker:            s.Check,
	}
}

// serveQPSLadder resolves the sweep ladder (Setup override or default).
func serveQPSLadder(s Setup) []float64 {
	if len(s.ServeQPS) > 0 {
		return s.ServeQPS
	}
	return serveDefaultQPS
}

// serveSLO resolves the p99 TTFT objective (Setup override or default).
func serveSLO(s Setup) units.Time {
	if s.ServeSLO > 0 {
		return s.ServeSLO
	}
	return serveDefaultSLO
}

// ServeSweepRow is one (scheme, offered QPS) operating point.
type ServeSweepRow struct {
	Scheme     string
	QPS        float64
	Throughput float64 // completed requests per simulated second
	TTFTp50    units.Time
	TTFTp99    units.Time
	TPOTp50    units.Time
	TPOTp99    units.Time
	E2Ep99     units.Time
	SLOMet     bool
}

// ServeSweepResult is the serving capacity study: throughput and latency
// percentiles across the QPS ladder, T3 overlap off vs on, and the maximum
// QPS each scheme sustains under the p99 TTFT SLO.
type ServeSweepResult struct {
	Model string
	TP    int
	SLO   units.Time
	Rows  []ServeSweepRow
	// BaselineCapacity / T3Capacity are the highest swept QPS meeting the
	// SLO (0 = none).
	BaselineCapacity float64
	T3Capacity       float64
}

// ServeSweep runs the serving capacity sweep.
func ServeSweep(ev *Evaluator) (*ServeSweepResult, error) {
	m, err := transformer.ModelByName(serveModel)
	if err != nil {
		return nil, err
	}
	s := ev.Setup
	res := &ServeSweepResult{Model: m.Name, TP: serveTP, SLO: serveSLO(s)}
	for _, scheme := range []struct {
		name string
		t3   bool
	}{{"baseline", false}, {"T3-MCA", true}} {
		cost, err := BuildServeCost(ev, m, serveTP, scheme.t3)
		if err != nil {
			return nil, err
		}
		for _, qps := range serveQPSLadder(s) {
			scope := fmt.Sprintf("serve-sweep/%s/qps-%g", scheme.name, qps)
			out, err := serving.Run(serveConfig(s, qps, cost, scope))
			if err != nil {
				return nil, err
			}
			row := ServeSweepRow{
				Scheme:     scheme.name,
				QPS:        qps,
				Throughput: out.Throughput,
				TTFTp50:    out.Overall.TTFTp50,
				TTFTp99:    out.Overall.TTFTp99,
				TPOTp50:    out.Overall.TPOTp50,
				TPOTp99:    out.Overall.TPOTp99,
				E2Ep99:     out.Overall.E2Ep99,
				SLOMet:     out.Overall.TTFTp99 <= res.SLO,
			}
			res.Rows = append(res.Rows, row)
			if row.SLOMet {
				if scheme.t3 {
					if qps > res.T3Capacity {
						res.T3Capacity = qps
					}
				} else if qps > res.BaselineCapacity {
					res.BaselineCapacity = qps
				}
			}
		}
	}
	return res, nil
}

// Render formats the sweep.
func (r *ServeSweepResult) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Serving capacity sweep: %s TP-%d, continuous batching, p99 TTFT SLO %v", r.Model, r.TP, r.SLO),
		Header: []string{"scheme", "QPS", "tput/s", "TTFT p50", "TTFT p99", "TPOT p50", "TPOT p99", "E2E p99", "SLO"},
	}
	for _, row := range r.Rows {
		slo := "miss"
		if row.SLOMet {
			slo = "ok"
		}
		t.AddRow(row.Scheme, fmt.Sprintf("%g", row.QPS), fmt.Sprintf("%.2f", row.Throughput),
			row.TTFTp50.String(), row.TTFTp99.String(),
			row.TPOTp50.String(), row.TPOTp99.String(), row.E2Ep99.String(), slo)
	}
	t.AddFooter("max QPS under SLO: baseline %g, T3-MCA %g", r.BaselineCapacity, r.T3Capacity)
	if r.BaselineCapacity > 0 && r.T3Capacity > r.BaselineCapacity {
		t.AddFooter("T3 overlap serves %.0f%% more offered load at the same p99 TTFT objective",
			100*(r.T3Capacity-r.BaselineCapacity)/r.BaselineCapacity)
	}
	return t.String()
}

// ServeTenantRow is one (scheme, tenant) latency summary at the fixed
// operating point.
type ServeTenantRow struct {
	Scheme  string
	Tenant  string
	N       int
	TTFTp50 units.Time
	TTFTp99 units.Time
	TPOTp50 units.Time
	TPOTp99 units.Time
	E2Ep50  units.Time
	E2Ep99  units.Time
}

// ServeTenantsResult is the per-tenant fairness study at one operating
// point: the same multi-tenant mix with and without T3 overlap.
type ServeTenantsResult struct {
	Model string
	TP    int
	QPS   float64
	Rows  []ServeTenantRow
}

// ServeTenants runs the per-tenant study.
func ServeTenants(ev *Evaluator) (*ServeTenantsResult, error) {
	m, err := transformer.ModelByName(serveModel)
	if err != nil {
		return nil, err
	}
	s := ev.Setup
	res := &ServeTenantsResult{Model: m.Name, TP: serveTP, QPS: serveTenantsQPS}
	tenants := serveTenantMix()
	for _, scheme := range []struct {
		name string
		t3   bool
	}{{"baseline", false}, {"T3-MCA", true}} {
		cost, err := BuildServeCost(ev, m, serveTP, scheme.t3)
		if err != nil {
			return nil, err
		}
		scope := fmt.Sprintf("serve-tenants/%s", scheme.name)
		out, err := serving.Run(serveConfig(s, res.QPS, cost, scope))
		if err != nil {
			return nil, err
		}
		for i, lat := range out.PerTenant {
			res.Rows = append(res.Rows, ServeTenantRow{
				Scheme: scheme.name, Tenant: tenants[i].Name, N: lat.N,
				TTFTp50: lat.TTFTp50, TTFTp99: lat.TTFTp99,
				TPOTp50: lat.TPOTp50, TPOTp99: lat.TPOTp99,
				E2Ep50: lat.E2Ep50, E2Ep99: lat.E2Ep99,
			})
		}
	}
	return res, nil
}

// Render formats the per-tenant study.
func (r *ServeTenantsResult) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Per-tenant serving latency: %s TP-%d at %g QPS", r.Model, r.TP, r.QPS),
		Header: []string{"scheme", "tenant", "N", "TTFT p50", "TTFT p99", "TPOT p50", "TPOT p99", "E2E p50", "E2E p99"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Scheme, row.Tenant, fmt.Sprintf("%d", row.N),
			row.TTFTp50.String(), row.TTFTp99.String(),
			row.TPOTp50.String(), row.TPOTp99.String(),
			row.E2Ep50.String(), row.E2Ep99.String())
	}
	t.AddFooter("FIFO continuous batching shares one decode batch across tenants; the batch")
	t.AddFooter("tenant's longer prompts and outputs dominate its own latency, not its neighbors'")
	return t.String()
}
