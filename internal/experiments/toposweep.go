package experiments

import (
	"fmt"

	"t3sim/internal/collective"
	"t3sim/internal/gemm"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/t3core"
	"t3sim/internal/units"
)

// The topology sweep (ROADMAP item 1): the same collective schedules and the
// same tracker-triggered fused datapath, run over interconnect graphs other
// than the Table 1 ring. Three questions, three sections:
//
//  1. which collective algorithm does the size/topology policy (Tessera
//     §3.1 style, realized as an analytic argmin) pick where;
//  2. does the timed graph DES agree with the analytic envelope on every
//     (topology × algorithm) all-reduce cell;
//  3. does tracker-triggered overlap still win when the fused
//     GEMM→reduce-scatter's neighbor sends are routed over a torus, a
//     switch, or a two-level hierarchy instead of the ring.

// interNodeLink derives the hierarchy's inter-node link from the intra-node
// base: a third of the bandwidth, four times the latency.
func interNodeLink(link interconnect.Config) interconnect.Config {
	inter := link
	inter.LinkBandwidth = link.LinkBandwidth / 3
	inter.LinkLatency = 4 * link.LinkLatency
	if inter.LinkLatency == 0 {
		inter.LinkLatency = link.LinkLatency
	}
	return inter
}

// TopoSpecFor builds the named topology family over n devices from the base
// link: ring | torus | switch | hier. The torus uses the squarest
// factorization of n; the hierarchy splits the devices into two nodes with
// interNodeLink leader links.
func TopoSpecFor(kind string, n int, link interconnect.Config) (interconnect.TopoSpec, error) {
	switch kind {
	case "ring":
		return interconnect.RingTopo(n, link), nil
	case "torus":
		rows := 0
		for r := 2; r*r <= n; r++ {
			if n%r == 0 {
				rows = r
			}
		}
		if rows == 0 {
			return interconnect.TopoSpec{}, fmt.Errorf("experiments: no 2D torus over %d devices (need a composite count)", n)
		}
		return interconnect.TorusTopo(rows, n/rows, link), nil
	case "switch":
		return interconnect.SwitchTopo(n, link), nil
	case "hier":
		if n < 4 || n%2 != 0 {
			return interconnect.TopoSpec{}, fmt.Errorf("experiments: hierarchical topology needs an even device count >= 4, got %d", n)
		}
		return interconnect.HierarchicalTopo(2, n/2, link, interNodeLink(link)), nil
	default:
		return interconnect.TopoSpec{}, fmt.Errorf("experiments: unknown topology %q (ring|torus|switch|hier)", kind)
	}
}

// DefaultTopoSpecs is the sweep's topology ladder at the Table 1 TP degree:
// an 8-ring, a 2x4 torus, an 8-way switch, and a 2x4 hierarchy.
func DefaultTopoSpecs(link interconnect.Config) []interconnect.TopoSpec {
	var out []interconnect.TopoSpec
	for _, kind := range []string{"ring", "torus", "switch", "hier"} {
		spec, err := TopoSpecFor(kind, 8, link)
		if err != nil {
			panic(err) // unreachable: 8 devices fit every family
		}
		out = append(out, spec)
	}
	return out
}

// topoName renders a spec as the sweep labels it, e.g. "torus-2x4".
func topoName(spec interconnect.TopoSpec) string {
	switch spec.Kind {
	case interconnect.TopoTorus:
		return fmt.Sprintf("%v-%dx%d", spec.Kind, spec.Rows, spec.Cols)
	case interconnect.TopoHierarchical:
		return fmt.Sprintf("%v-%dx%d", spec.Kind, spec.Nodes, spec.PerNode)
	default:
		return fmt.Sprintf("%v-%d", spec.Kind, spec.Devices)
	}
}

// TopoSelectRow is one (topology, message size, candidate algorithm) cell of
// the auto-selection table.
type TopoSelectRow struct {
	Topo string
	Size units.Bytes
	Algo string
	// Predicted is the analytic all-reduce time (the selection metric).
	Predicted units.Time
	// Selected marks the argmin row SelectAlgorithm picks.
	Selected bool
}

// TopoTimedRow is one (topology, algorithm) all-reduce cell of the DES
// cross-check.
type TopoTimedRow struct {
	Topo string
	Algo string
	// DES is the timed graph engine's completion.
	DES units.Time
	// AnalyticLo / AnalyticHi bracket the DES (work-conserving lower bound,
	// store-and-forward upper bound).
	AnalyticLo, AnalyticHi units.Time
	// Selected marks the algorithm the policy picks at this size.
	Selected bool
}

// TopoFusedRow is one topology's explicit multi-device fused
// GEMM→reduce-scatter run.
type TopoFusedRow struct {
	Topo string
	// GEMMDone is the latest producer completion; Done the latest device's
	// collective completion.
	GEMMDone, Done units.Time
	// Serial is the unoverlapped reference: the GEMM followed by a
	// standalone timed ring reduce-scatter on the same topology.
	Serial units.Time
	// Speedup is Serial / Done — > 1 means the fused overlap still wins.
	Speedup float64
	// Skew is the cross-device completion spread.
	Skew units.Time
	// LinkBytes counts every traversed link once (transit hops included).
	LinkBytes units.Bytes
	// TrackerMaxLive is the largest per-device tracker high-water mark.
	TrackerMaxLive int
}

// TopoSweepResult bundles the three sections.
type TopoSweepResult struct {
	Selection []TopoSelectRow
	Timed     []TopoTimedRow
	Fused     []TopoFusedRow
}

// topoSweepSizes is the auto-selection ladder: latency-bound to
// bandwidth-bound.
var topoSweepSizes = []units.Bytes{64 * units.KiB, 1 * units.MiB, 16 * units.MiB, 256 * units.MiB}

// topoTimedSize is the DES cross-check's all-reduce size.
const topoTimedSize = 8 * units.MiB

// topoAnalytic builds the analytic options for one message size on the
// sweep's machine.
func topoAnalytic(setup Setup, size units.Bytes, nmc bool) collective.AnalyticOptions {
	return collective.AnalyticOptions{
		TotalBytes:        size,
		MemBandwidth:      setup.Memory.TotalBandwidth,
		CUs:               setup.CollectiveCUs,
		PerCUMemBandwidth: setup.PerCUMemBandwidth,
		NMC:               nmc,
	}
}

// timedTopoCollective runs one timed graph collective to completion.
// workers == 0 uses a single shared engine; workers > 0 simulates each
// device on its own cluster engine (byte-identical at every count).
func timedTopoCollective(setup Setup, spec interconnect.TopoSpec, algo collective.Algorithm,
	op collective.Op, size units.Bytes, nmc bool, workers int, sink metrics.Sink) (units.Time, error) {
	opts := collective.TopoOptions{
		TotalBytes:        size,
		BlockBytes:        setup.BlockBytes,
		CUs:               setup.CollectiveCUs,
		PerCUMemBandwidth: setup.PerCUMemBandwidth,
		NMC:               nmc,
		Stream:            memory.StreamComm,
		Metrics:           sink,
		Check:             setup.Check,
	}
	memCfg := setup.Memory
	if setup.Check != nil && memCfg.Check == nil {
		memCfg.Check = setup.Check
	}
	buildDevs := func(engOf func(int) *sim.Engine) error {
		devs := make([]*collective.Device, spec.Devices)
		for i := range devs {
			mc, err := memory.NewController(engOf(i), memCfg, memory.ComputeFirst{})
			if err != nil {
				return err
			}
			devs[i] = &collective.Device{ID: i, Mem: mc}
		}
		opts.Devices = devs
		return nil
	}
	if workers <= 0 {
		eng := sim.NewEngine()
		eng.AttachChecker(setup.Check)
		topo, err := spec.Build(eng)
		if err != nil {
			return 0, err
		}
		topo.AttachChecker(setup.Check)
		opts.Topo = topo
		if err := buildDevs(func(int) *sim.Engine { return eng }); err != nil {
			return 0, err
		}
		var done units.Time
		if err := collective.StartTopoCollective(eng, algo, op, opts, func() { done = eng.Now() }); err != nil {
			return 0, err
		}
		eng.Run()
		return done, nil
	}
	cl := sim.NewCluster(spec.Devices, spec.MinLinkLatency())
	cl.SetSyncMode(setup.SyncMode)
	for _, e := range cl.Engines() {
		e.AttachChecker(setup.Check)
	}
	topo, err := spec.BuildCluster(cl)
	if err != nil {
		return 0, err
	}
	topo.AttachChecker(setup.Check)
	opts.Topo = topo
	if err := buildDevs(cl.Engine); err != nil {
		return 0, err
	}
	cr, err := collective.StartClusterTopoCollective(cl, algo, op, opts)
	if err != nil {
		return 0, err
	}
	cl.Run(workers)
	cr.Finish()
	return cr.Done(), nil
}

// TopoSweep runs the topology sweep. A non-zero setup.Topo restricts every
// section to that single graph; the default sweeps DefaultTopoSpecs.
func TopoSweep(setup Setup) (*TopoSweepResult, error) {
	if err := setup.Validate(); err != nil {
		return nil, err
	}
	var tab *memoTable[TopoSweepResult]
	if setup.Memo != nil {
		tab = &setup.Memo.topo
	}
	return memoExperiment(tab, setup, func() (*TopoSweepResult, error) {
		return topoSweep(setup)
	})
}

func topoSweep(setup Setup) (*TopoSweepResult, error) {
	specs := DefaultTopoSpecs(setup.Link)
	if !setup.Topo.IsZero() {
		specs = []interconnect.TopoSpec{setup.Topo}
	}
	res := &TopoSweepResult{}

	// Section 1: algorithm auto-selection across the size ladder.
	for _, spec := range specs {
		for _, size := range topoSweepSizes {
			o := topoAnalytic(setup, size, false)
			chosen, err := collective.SelectAlgorithmWith(collective.AllReduceOp, spec, o)
			if err != nil {
				return nil, err
			}
			for _, algo := range collective.CandidateAlgorithms(spec) {
				t, err := collective.AnalyticTopoAllReduceTime(algo, spec, o)
				if err != nil {
					return nil, err
				}
				res.Selection = append(res.Selection, TopoSelectRow{
					Topo: topoName(spec), Size: size, Algo: algo.String(),
					Predicted: t, Selected: algo == chosen,
				})
			}
		}
	}

	// Section 2: timed DES vs the analytic envelope at one mid size.
	for _, spec := range specs {
		o := topoAnalytic(setup, topoTimedSize, false)
		chosen, err := collective.SelectAlgorithmWith(collective.AllReduceOp, spec, o)
		if err != nil {
			return nil, err
		}
		for _, algo := range collective.CandidateAlgorithms(spec) {
			var sink metrics.Sink
			if setup.Metrics != nil {
				sink = setup.Metrics.Scope(fmt.Sprintf("topo-sweep/%s-%s", topoName(spec), algo))
			}
			des, err := timedTopoCollective(setup, spec, algo, collective.AllReduceOp,
				topoTimedSize, false, setup.MultiDeviceWorkers, sink)
			if err != nil {
				return nil, err
			}
			lo, hi, err := collective.AnalyticTopoTimeBounds(algo, collective.AllReduceOp, spec, o)
			if err != nil {
				return nil, err
			}
			res.Timed = append(res.Timed, TopoTimedRow{
				Topo: topoName(spec), Algo: algo.String(),
				DES: des, AnalyticLo: lo, AnalyticHi: hi, Selected: algo == chosen,
			})
		}
	}

	// Section 3: the fused GEMM→reduce-scatter, explicitly multi-device,
	// with its neighbor sends routed over each graph.
	grid, err := topoSweepGrid()
	if err != nil {
		return nil, err
	}
	for _, spec := range specs {
		opts := t3core.FusedOptions{
			GPU:         setup.GPU,
			Memory:      setup.Memory,
			Link:        spec.Link,
			Topo:        spec,
			Tracker:     setup.Tracker,
			Devices:     spec.Devices,
			Grid:        grid,
			Collective:  t3core.RingReduceScatter,
			Arbitration: t3core.ArbMCA,
			Check:       setup.Check,
			ParWorkers:  setup.MultiDeviceWorkers,
			SyncMode:    setup.SyncMode,
		}
		if setup.Metrics != nil {
			opts.Metrics = setup.Metrics.Scope("topo-sweep/fused-" + topoName(spec))
		}
		multi, err := t3core.RunFusedGEMMRSMultiDevice(opts)
		if err != nil {
			return nil, err
		}
		gemmDone := maxTimes(multi.GEMMDone)
		// Unoverlapped reference: the producer, then a standalone timed ring
		// reduce-scatter of the whole output over the same graph (NMC
		// updates, like the fused datapath applies).
		rs, err := timedTopoCollective(setup, spec, collective.AlgoRing, collective.ReduceScatterOp,
			grid.Shape.OutputBytes(), true, setup.MultiDeviceWorkers, nil)
		if err != nil {
			return nil, err
		}
		serial := gemmDone + rs
		res.Fused = append(res.Fused, TopoFusedRow{
			Topo:           topoName(spec),
			GEMMDone:       gemmDone,
			Done:           multi.Done,
			Serial:         serial,
			Speedup:        float64(serial) / float64(multi.Done),
			Skew:           multi.Skew(),
			LinkBytes:      multi.LinkBytes,
			TrackerMaxLive: multi.TrackerMaxLive,
		})
	}
	return res, nil
}

// topoSweepGrid is the fused section's producer: a 2048x2048 FP16 output
// with the sliced K of a TP-8 sub-layer, small enough that four explicit
// 8-device runs stay quick.
func topoSweepGrid() (gemm.Grid, error) {
	return gemm.NewGrid(gemm.Shape{M: 2048, N: 2048, K: 512, ElemBytes: 2}, gemm.DefaultTiling())
}

// maxTimes returns the latest completion in ts.
func maxTimes(ts []units.Time) units.Time {
	var m units.Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// Render formats the sweep the way EXPERIMENTS.md reports it.
func (r *TopoSweepResult) Render() string {
	sel := &Table{
		Title:  "Topology sweep: collective algorithm auto-selection (analytic argmin, all-reduce)",
		Header: []string{"topology", "size", "algorithm", "predicted", "selected"},
	}
	for _, row := range r.Selection {
		mark := ""
		if row.Selected {
			mark = "*"
		}
		sel.AddRow(row.Topo, row.Size.String(), row.Algo, row.Predicted.String(), mark)
	}
	timed := &Table{
		Title:  fmt.Sprintf("Timed graph DES vs analytic envelope (%v all-reduce)", topoTimedSize),
		Header: []string{"topology", "algorithm", "DES", "analytic lo", "analytic hi", "selected"},
	}
	for _, row := range r.Timed {
		mark := ""
		if row.Selected {
			mark = "*"
		}
		timed.AddRow(row.Topo, row.Algo, row.DES.String(),
			row.AnalyticLo.String(), row.AnalyticHi.String(), mark)
	}
	fused := &Table{
		Title:  "Fused GEMM→reduce-scatter, explicit multi-device, ring schedule routed over each graph",
		Header: []string{"topology", "gemm", "done", "serial ref", "speedup", "skew", "link MiB", "tracker high-water"},
	}
	for _, row := range r.Fused {
		fused.AddRow(row.Topo, row.GEMMDone.String(), row.Done.String(), row.Serial.String(),
			fmt.Sprintf("%.2fx", row.Speedup), row.Skew.String(),
			fmt.Sprintf("%.1f", row.LinkBytes.MiBf()), fmt.Sprintf("%d", row.TrackerMaxLive))
	}
	fused.AddFooter("speedup = (gemm + standalone ring reduce-scatter on the same graph) / fused done; > 1.00x means tracker-triggered overlap still wins off-ring")
	return sel.String() + "\n" + timed.String() + "\n" + fused.String()
}
