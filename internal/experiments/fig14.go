package experiments

import (
	"fmt"

	"t3sim/internal/collective"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/stats"
	"t3sim/internal/units"
)

// Fig14Row is one point of the reduce-scatter validation sweep.
type Fig14Row struct {
	Bytes units.Bytes
	// Simulated is the discrete-event multi-GPU simulation.
	Simulated units.Time
	// Reference is the independent analytic cost model, standing in for the
	// paper's 4×MI210 hardware measurements.
	Reference units.Time
	RelError  float64
}

// Fig14Result is the Figure 13/14 reproduction: the multi-GPU reduce-scatter
// simulation validated against an independent reference across 6–192 MB.
type Fig14Result struct {
	Devices    int
	Rows       []Fig14Row
	GeomeanErr float64
}

// Fig14 validates the timed ring reduce-scatter on 4 devices against the
// analytic reference across the paper's 6–192 MB range.
func Fig14(setup Setup) (*Fig14Result, error) {
	if err := setup.Validate(); err != nil {
		return nil, err
	}
	var tab *memoTable[Fig14Result]
	if setup.Memo != nil {
		tab = &setup.Memo.fig14
	}
	return memoExperiment(tab, setup, func() (*Fig14Result, error) {
		return fig14(setup)
	})
}

func fig14(setup Setup) (*Fig14Result, error) {
	const devices = 4
	res := &Fig14Result{Devices: devices}
	var sims, refs []float64
	for _, mib := range []int64{6, 12, 24, 48, 96, 192} {
		size := units.Bytes(mib) * units.MiB
		simT, err := runTimedRS(setup, devices, size)
		if err != nil {
			return nil, err
		}
		ref, err := collective.AnalyticRingReduceScatterTime(collective.AnalyticOptions{
			Devices:           devices,
			TotalBytes:        size,
			Link:              setup.Link,
			MemBandwidth:      setup.Memory.TotalBandwidth,
			CUs:               setup.CollectiveCUs,
			PerCUMemBandwidth: setup.PerCUMemBandwidth,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig14Row{
			Bytes:     size,
			Simulated: simT,
			Reference: ref,
			RelError:  stats.RelError(float64(simT), float64(ref)),
		})
		sims = append(sims, float64(simT))
		refs = append(refs, float64(ref))
	}
	g, err := stats.GeomeanRelError(sims, refs)
	if err != nil {
		return nil, err
	}
	res.GeomeanErr = g
	return res, nil
}

// runTimedRS runs one timed multi-GPU reduce-scatter to completion.
func runTimedRS(setup Setup, devices int, size units.Bytes) (units.Time, error) {
	eng := sim.NewEngine()
	eng.AttachChecker(setup.Check)
	// One scope per sweep point keeps the N memory systems' counters and the
	// collective track distinct across sizes.
	var sink metrics.Sink
	if m := setup.Metrics; m != nil {
		sink = m.Scope(fmt.Sprintf("fig14/rs-%s", size))
	}
	ring, err := interconnect.NewRing(eng, devices, setup.Link)
	if err != nil {
		return 0, err
	}
	if sink != nil {
		ring.AttachMetrics(sink)
	}
	devs := make([]*collective.Device, devices)
	for i := range devs {
		memCfg := setup.Memory
		if sink != nil {
			memCfg.Metrics = sink.Scope(fmt.Sprintf("dev%d", i))
		}
		memCfg.Check = setup.Check
		mc, err := memory.NewController(eng, memCfg, memory.ComputeFirst{})
		if err != nil {
			return 0, err
		}
		devs[i] = &collective.Device{ID: i, Mem: mc}
	}
	var done units.Time
	err = collective.StartRingReduceScatter(eng, collective.Options{
		Ring:              ring,
		Devices:           devs,
		TotalBytes:        size,
		BlockBytes:        setup.BlockBytes,
		CUs:               setup.CollectiveCUs,
		PerCUMemBandwidth: setup.PerCUMemBandwidth,
		Stream:            memory.StreamComm,
		Metrics:           sink,
		Check:             setup.Check,
	}, func() { done = eng.Now() })
	if err != nil {
		return 0, err
	}
	eng.Run()
	if done == 0 {
		return 0, fmt.Errorf("experiments: reduce-scatter never completed")
	}
	return done, nil
}

// Render formats the validation like the paper's scatter plot.
func (r *Fig14Result) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Figure 14: %d-GPU reduce-scatter simulation validation", r.Devices),
		Header: []string{"size", "simulated", "reference", "error"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Bytes.String(), row.Simulated.String(), row.Reference.String(),
			fmt.Sprintf("%.1f%%", 100*row.RelError))
	}
	t.AddFooter("geomean error = %.1f%% (paper: 6%% vs 4xMI210 hardware)", 100*r.GeomeanErr)
	return t.String()
}
