package experiments

import (
	"fmt"

	"t3sim/internal/memory"
	"t3sim/internal/t3core"
	"t3sim/internal/transformer"
	"t3sim/internal/units"
)

// This file holds the ablation studies DESIGN.md calls out: they probe the
// design choices the paper fixes (arbitration policy and thresholds §4.5,
// NMC cost assumptions §4.3/§7.4, DMA block granularity §4.2.2) and the
// §7.8 slower-link regime.

// ablationCase returns the default ablation workload: T-NLG FC-2 at TP 8, a
// large memory-pressured sub-layer where contention effects are visible.
func ablationCase() (SubCase, error) {
	m, err := transformer.ModelByName("T-NLG")
	if err != nil {
		return SubCase{}, err
	}
	return SubCase{Model: m, Kind: transformer.FC2, TP: 8}, nil
}

// fusedOptionsFor builds the fused-run options for a case on a setup.
func fusedOptionsFor(s Setup, c SubCase) (t3core.FusedOptions, transformer.SubLayer, error) {
	sl, err := transformer.SubLayerGEMM(c.Model, c.Kind, c.TP)
	if err != nil {
		return t3core.FusedOptions{}, transformer.SubLayer{}, err
	}
	return t3core.FusedOptions{
		GPU:        s.GPU,
		Memory:     s.Memory,
		Link:       s.Link,
		Tracker:    s.Tracker,
		Devices:    c.TP,
		Grid:       sl.Grid,
		Collective: t3core.RingReduceScatter,
		Check:      s.Check,
	}, sl, nil
}

// AblationArbRow is one arbitration policy's outcome.
type AblationArbRow struct {
	Policy string
	// Done is the fused completion; Speedup is over the sequential baseline.
	Done    units.Time
	Speedup float64
	// Threshold is the effective MCA occupancy limit (0 = not MCA).
	Threshold int
}

// AblationArbResult sweeps the §4.5 design space: compute-first,
// round-robin, the dynamic MCA, and every fixed threshold.
type AblationArbResult struct {
	Case SubCase
	Rows []AblationArbRow
}

// AblationArbitration runs the arbitration-policy sweep.
func AblationArbitration(ev *Evaluator) (*AblationArbResult, error) {
	c, err := ablationCase()
	if err != nil {
		return nil, err
	}
	base, err := ev.Evaluate(c)
	if err != nil {
		return nil, err
	}
	res := &AblationArbResult{Case: c}
	add := func(policy string, opts t3core.FusedOptions) error {
		run, err := memoFusedRS(ev.Setup.Memo, opts)
		if err != nil {
			return err
		}
		done := run.Done + base.AG
		res.Rows = append(res.Rows, AblationArbRow{
			Policy:    policy,
			Done:      done,
			Speedup:   float64(base.Sequential) / float64(done),
			Threshold: run.MCAThreshold,
		})
		return nil
	}

	for _, pol := range []struct {
		name string
		arb  t3core.Arbitration
	}{
		{"compute-first", t3core.ArbComputeFirst},
		{"round-robin (T3)", t3core.ArbRoundRobin},
		{"MCA dynamic (T3-MCA)", t3core.ArbMCA},
	} {
		opts, _, err := fusedOptionsFor(ev.Setup, c)
		if err != nil {
			return nil, err
		}
		opts.Arbitration = pol.arb
		if err := add(pol.name, opts); err != nil {
			return nil, err
		}
	}
	for _, th := range []int{5, 10, 30, -1} {
		opts, _, err := fusedOptionsFor(ev.Setup, c)
		if err != nil {
			return nil, err
		}
		mca := memory.NewMCA(memory.DefaultMCAConfig())
		mca.SetThreshold(th)
		opts.Arbitration = t3core.ArbMCA
		opts.CustomArbiter = mca
		label := fmt.Sprintf("MCA fixed %d", th)
		if th < 0 {
			label = "MCA no-limit"
		}
		if err := add(label, opts); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Render formats the sweep.
func (r *AblationArbResult) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: MC arbitration policy, %s", r.Case),
		Header: []string{"policy", "fused+AG", "speedup", "threshold"},
	}
	for _, row := range r.Rows {
		th := "-"
		if row.Threshold != 0 {
			th = fmt.Sprintf("%d", row.Threshold)
		}
		t.AddRow(row.Policy, row.Done.String(), fmt.Sprintf("%.3fx", row.Speedup), th)
	}
	t.AddFooter("paper §4.5/§6.1.3: dynamic MCA picks the threshold per kernel memory intensity;")
	t.AddFooter("fixed thresholds over- or under-throttle communication for some kernels")
	return t.String()
}

// AblationNMCRow is one NMC cost point.
type AblationNMCRow struct {
	UpdateFactor float64
	Done         units.Time
	Speedup      float64
}

// AblationNMCResult sweeps the near-memory op-and-store cost: 1.0x models
// free in-DRAM reduction, 2.0x the paper's CCDWL assumption, and larger
// factors approximate slower substrates such as the §7.4 system-wide
// atomics fallback.
type AblationNMCResult struct {
	Case SubCase
	Rows []AblationNMCRow
}

// AblationNMCCost runs the NMC cost sweep.
func AblationNMCCost(ev *Evaluator) (*AblationNMCResult, error) {
	c, err := ablationCase()
	if err != nil {
		return nil, err
	}
	base, err := ev.Evaluate(c)
	if err != nil {
		return nil, err
	}
	res := &AblationNMCResult{Case: c}
	for _, factor := range []float64{1.0, 2.0, 4.0, 8.0} {
		opts, _, err := fusedOptionsFor(ev.Setup, c)
		if err != nil {
			return nil, err
		}
		opts.Memory.UpdateFactor = factor
		opts.Arbitration = t3core.ArbMCA
		run, err := memoFusedRS(ev.Setup.Memo, opts)
		if err != nil {
			return nil, err
		}
		done := run.Done + base.AG
		res.Rows = append(res.Rows, AblationNMCRow{
			UpdateFactor: factor,
			Done:         done,
			Speedup:      float64(base.Sequential) / float64(done),
		})
	}
	return res, nil
}

// Render formats the sweep.
func (r *AblationNMCResult) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: NMC op-and-store cost, %s", r.Case),
		Header: []string{"update cost (x write)", "fused+AG", "speedup"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.1fx", row.UpdateFactor), row.Done.String(),
			fmt.Sprintf("%.3fx", row.Speedup))
	}
	t.AddFooter("paper §7.4: T3 tolerates slower reduction substrates (system-wide atomics)")
	t.AddFooter("without significant loss — speedups should degrade gracefully")
	return t.String()
}

// AblationDMARow is one DMA block granularity point.
type AblationDMARow struct {
	TilesPerBlock int
	Done          units.Time
	Speedup       float64
}

// AblationDMAResult sweeps the §4.2.2 DMA block granularity.
type AblationDMAResult struct {
	Case SubCase
	Rows []AblationDMARow
}

// AblationDMABlock runs the DMA granularity sweep.
func AblationDMABlock(ev *Evaluator) (*AblationDMAResult, error) {
	c, err := ablationCase()
	if err != nil {
		return nil, err
	}
	base, err := ev.Evaluate(c)
	if err != nil {
		return nil, err
	}
	res := &AblationDMAResult{Case: c}
	for _, k := range []int{1, 2, 4, 8, 16} {
		opts, _, err := fusedOptionsFor(ev.Setup, c)
		if err != nil {
			return nil, err
		}
		opts.Arbitration = t3core.ArbMCA
		opts.DMATilesPerBlock = k
		run, err := memoFusedRS(ev.Setup.Memo, opts)
		if err != nil {
			return nil, err
		}
		done := run.Done + base.AG
		res.Rows = append(res.Rows, AblationDMARow{
			TilesPerBlock: k,
			Done:          done,
			Speedup:       float64(base.Sequential) / float64(done),
		})
	}
	return res, nil
}

// Render formats the sweep.
func (r *AblationDMAResult) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: DMA block granularity, %s", r.Case),
		Header: []string{"wf-tiles per DMA", "fused+AG", "speedup"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.TilesPerBlock), row.Done.String(),
			fmt.Sprintf("%.3fx", row.Speedup))
	}
	t.AddFooter("paper §4.2.2: DMA blocks >= tracker granularity; larger blocks batch the")
	t.AddFooter("communication into burstier, higher-utilization transfers")
	return t.String()
}

// AblationLinkRow is one link-bandwidth point.
type AblationLinkRow struct {
	LinkBandwidth units.Bandwidth
	GEMM          units.Time
	RS            units.Time
	FusedDone     units.Time
	Speedup       float64
	// ExposedComm is the communication left on the critical path.
	ExposedComm units.Time
}

// AblationLinkResult sweeps per-direction link bandwidth down into the
// §7.8 multi-node regime, where communication dominates and fine-grained
// overlap can only hide the GEMM's worth of it.
type AblationLinkResult struct {
	Case SubCase
	Rows []AblationLinkRow
}

// AblationLinkBandwidth runs the link sweep.
func AblationLinkBandwidth(ev *Evaluator) (*AblationLinkResult, error) {
	c, err := ablationCase()
	if err != nil {
		return nil, err
	}
	res := &AblationLinkResult{Case: c}
	for _, bw := range []units.Bandwidth{300 * units.GBps, 150 * units.GBps,
		75 * units.GBps, 37.5 * units.GBps, 18.75 * units.GBps} {
		s := ev.Setup
		s.Link.LinkBandwidth = bw
		sub, err := NewEvaluator(s)
		if err != nil {
			return nil, err
		}
		r, err := sub.Evaluate(c)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationLinkRow{
			LinkBandwidth: bw,
			GEMM:          r.GEMM,
			RS:            r.RS,
			FusedDone:     r.T3MCA - r.AG,
			Speedup:       r.SpeedupT3MCA(),
			ExposedComm:   maxTime(0, (r.T3MCA-r.AG)-r.GEMM),
		})
	}
	return res, nil
}

// Render formats the sweep.
func (r *AblationLinkResult) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: link bandwidth (multi-node regime, §7.8), %s", r.Case),
		Header: []string{"per-dir link", "GEMM", "RS", "fused GEMM-RS", "exposed comm", "speedup"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.LinkBandwidth.String(), row.GEMM.String(), row.RS.String(),
			row.FusedDone.String(), row.ExposedComm.String(),
			fmt.Sprintf("%.3fx", row.Speedup))
	}
	t.AddFooter("paper §7.8: once the GEMM is fully overlapped, remaining communication is")
	t.AddFooter("exposed — T3 still hides the GEMM's worth of it on slow links")
	return t.String()
}
