package experiments

import (
	"strings"
	"testing"
)

func TestLayerValidation(t *testing.T) {
	res, err := LayerValidation(DefaultSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d, want 11 operators", len(res.Rows))
	}
	// The two modeling layers must agree: the DES adds read-phase
	// serialization and stage quantization the closed-form model folds into
	// its efficiency constant, so GEMMs may run somewhat slower in the DES;
	// memory-bound operators and collectives must agree tightly.
	for _, row := range res.Rows {
		switch {
		case strings.Contains(row.Name, "all-reduce"),
			strings.Contains(row.Name, "softmax"),
			strings.Contains(row.Name, "GeLU"),
			strings.Contains(row.Name, "residual"):
			if row.RelError > 0.02 {
				t.Errorf("%s: %.1f%% error, want <= 2%%", row.Name, 100*row.RelError)
			}
		default: // GEMMs
			if row.RelError > 0.40 {
				t.Errorf("%s: %.1f%% error, want <= 40%%", row.Name, 100*row.RelError)
			}
		}
	}
	if res.TotalRelError > 0.15 {
		t.Errorf("layer total error %.1f%%, want <= 15%%", 100*res.TotalRelError)
	}
	if !strings.Contains(res.Render(), "Layer validation") {
		t.Error("render missing title")
	}
}
