package experiments

import (
	"fmt"

	"t3sim/internal/collective"
	"t3sim/internal/stats"
	"t3sim/internal/transformer"
	"t3sim/internal/units"
)

// Fig6Split is one CU partition of the §3.2.1 study: the GEMM gets A CUs and
// the all-reduce kernel gets B CUs.
type Fig6Split struct {
	GEMMCUs int
	ARCUs   int
}

// String renders "72-8" style labels; the ideal split renders "ideal".
func (s Fig6Split) String() string {
	if s.ARCUs == 0 {
		return "ideal"
	}
	return fmt.Sprintf("%d-%d", s.GEMMCUs, s.ARCUs)
}

// Fig6Row is one (layer, split) bar group of Figure 6.
type Fig6Row struct {
	Case  SubCase
	Split Fig6Split
	// GEMM and AR are the isolated times under the split.
	GEMM units.Time
	AR   units.Time
	// GEMMSlowdown / ARSlowdown are relative to full-GPU isolated runs.
	GEMMSlowdown float64
	ARSlowdown   float64
	// PotentialSpeedup is (GEMM80 + AR80) / max(GEMM_A, AR_B): what
	// overlapping in software with this CU split could achieve at best.
	PotentialSpeedup float64
}

// Fig6Result is the Figure 6 reproduction.
type Fig6Result struct {
	Rows []Fig6Row
	// GeomeanSpeedup per split label.
	GeomeanSpeedup map[string]float64
}

// Fig6 reproduces the compute-sharing study: Mega-GPT-2 and T-NLG Attn (OP)
// and FC-2 sub-layers at TP=8, with the GPU's 80 CUs split between the GEMM
// and a software-overlapped all-reduce.
func Fig6(ev *Evaluator) (*Fig6Result, error) {
	var tab *memoTable[Fig6Result]
	if ev.Setup.Memo != nil {
		tab = &ev.Setup.Memo.fig6
	}
	return memoExperiment(tab, ev.Setup, func() (*Fig6Result, error) {
		return fig6(ev)
	})
}

func fig6(ev *Evaluator) (*Fig6Result, error) {
	splits := []Fig6Split{{80, 0}, {72, 8}, {64, 16}}
	res := &Fig6Result{GeomeanSpeedup: map[string]float64{}}
	speedups := map[string][]float64{}

	var cases []SubCase
	for _, name := range []string{"Mega-GPT-2", "T-NLG"} {
		m, err := transformer.ModelByName(name)
		if err != nil {
			return nil, err
		}
		for _, kind := range []transformer.SubLayerKind{transformer.OutProj, transformer.FC2} {
			cases = append(cases, SubCase{Model: m, Kind: kind, TP: 8})
		}
	}

	for _, c := range cases {
		sl, err := transformer.SubLayerGEMM(c.Model, c.Kind, c.TP)
		if err != nil {
			return nil, err
		}
		g80, _, err := ev.isolatedGEMMOnCUs(sl, false, 80, nil)
		if err != nil {
			return nil, err
		}
		ar80, err := ev.analyticAR(sl.ARBytes, c.TP, 80)
		if err != nil {
			return nil, err
		}
		for _, split := range splits {
			row := Fig6Row{Case: c, Split: split}
			if split.ARCUs == 0 {
				// Ideal: GEMM keeps the whole GPU and the AR is free.
				row.GEMM, row.AR = g80, ar80
				row.GEMMSlowdown, row.ARSlowdown = 1, 1
				row.PotentialSpeedup = float64(g80+ar80) / float64(maxTime(g80, ar80))
			} else {
				g, _, err := ev.isolatedGEMMOnCUs(sl, false, split.GEMMCUs, nil)
				if err != nil {
					return nil, err
				}
				ar, err := ev.analyticAR(sl.ARBytes, c.TP, split.ARCUs)
				if err != nil {
					return nil, err
				}
				row.GEMM, row.AR = g, ar
				row.GEMMSlowdown = float64(g) / float64(g80)
				row.ARSlowdown = float64(ar) / float64(ar80)
				row.PotentialSpeedup = float64(g80+ar80) / float64(maxTime(g, ar))
			}
			res.Rows = append(res.Rows, row)
			speedups[split.String()] = append(speedups[split.String()], row.PotentialSpeedup)
		}
	}
	for label, xs := range speedups {
		g, err := stats.Geomean(xs)
		if err != nil {
			return nil, err
		}
		res.GeomeanSpeedup[label] = g
	}
	return res, nil
}

// analyticAR returns the ring all-reduce time on the given CU allocation.
func (e *Evaluator) analyticAR(bytes units.Bytes, tp, cus int) (units.Time, error) {
	s := e.Setup
	return collective.AnalyticRingAllReduceTime(collective.AnalyticOptions{
		Devices:           tp,
		TotalBytes:        bytes,
		Link:              s.Link,
		MemBandwidth:      s.Memory.TotalBandwidth,
		CUs:               cus,
		PerCUMemBandwidth: s.PerCUMemBandwidth,
	})
}

// Render formats the study.
func (r *Fig6Result) Render() string {
	t := &Table{
		Title:  "Figure 6: CU sharing between GEMM and software-overlapped AR (TP=8)",
		Header: []string{"layer", "split", "GEMM", "AR", "GEMM slow", "AR slow", "potential speedup"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Case.String(), row.Split.String(),
			row.GEMM.String(), row.AR.String(),
			fmt.Sprintf("%.2fx", row.GEMMSlowdown),
			fmt.Sprintf("%.2fx", row.ARSlowdown),
			fmt.Sprintf("%.2fx", row.PotentialSpeedup))
	}
	for _, label := range []string{"ideal", "72-8", "64-16"} {
		if g, ok := r.GeomeanSpeedup[label]; ok {
			t.AddFooter("geomean potential speedup %-6s = %.2fx", label, g)
		}
	}
	t.AddFooter("paper: ideal 1.67x geomean; 72-8 falls to 1.18x; 64-16 reaches 1.49x")
	return t.String()
}
