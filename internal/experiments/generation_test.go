package experiments

import (
	"strings"
	"testing"
)

func TestGenerationPhase(t *testing.T) {
	res, err := Generation(evaluator(t))
	if err != nil {
		t.Fatal(err)
	}
	// 2 models x 2 TP degrees x 2 sub-layers.
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	if len(res.EndToEnd) != 4 {
		t.Fatalf("end-to-end rows = %d, want 4", len(res.EndToEnd))
	}
	for _, row := range res.Rows {
		// Decode all-reduces are latency-bound and tiny relative to the
		// weight-streaming GEMV (§7.3).
		if row.RS >= row.GEMV {
			t.Errorf("%s/%v TP%d: RS %v not below GEMV %v", row.Model, row.Kind, row.TP, row.RS, row.GEMV)
		}
		// Single-stage GEMVs give the stage-granular model no production to
		// overlap, so fusing is near break-even: it must not lose more than
		// the small NMC/chain overheads (see EXPERIMENTS.md §7.3 note).
		if row.Speedup < 0.95 || row.Speedup > 1.1 {
			t.Errorf("%s/%v TP%d: speedup %.3f outside break-even band", row.Model, row.Kind, row.TP, row.Speedup)
		}
	}
	// Higher TP slices the weights further: per-token GEMV time must drop —
	// the aggregate-memory-bandwidth argument of §7.3.
	for _, model := range []string{"Mega-GPT-2", "T-NLG"} {
		var tp8, tp16 GenerationRow
		for _, row := range res.Rows {
			if row.Model == model && row.Kind.String() == "FC2-fwd" {
				if row.TP == 8 {
					tp8 = row
				} else {
					tp16 = row
				}
			}
		}
		if tp16.GEMV >= tp8.GEMV {
			t.Errorf("%s: FC2 GEMV at TP16 (%v) not below TP8 (%v)", model, tp16.GEMV, tp8.GEMV)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Generation phase") || !strings.Contains(out, "decode-step") {
		t.Error("render incomplete")
	}
}
