// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver returns typed rows and can render the same
// series the paper plots; cmd/t3sim and the root bench suite are thin
// wrappers around these drivers.
package experiments

import (
	"fmt"

	"t3sim/internal/check"
	"t3sim/internal/gpu"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/t3core"
	"t3sim/internal/transformer"
	"t3sim/internal/units"
)

// Setup bundles the machine configuration every experiment runs on
// (Table 1 plus the derived throughput constants).
type Setup struct {
	GPU     gpu.Config
	Memory  memory.Config
	Link    interconnect.Config
	Tracker t3core.TrackerConfig
	// Topo, when non-zero, restricts the topology sweep (the topo-sweep
	// catalogue entry) to this single interconnect graph instead of its
	// default ring/torus/switch/hier ladder, and is threaded into the
	// sweep's fused multi-device runs. The paper experiments model the
	// Table 1 ring and ignore it. CLI flag -topo.
	Topo interconnect.TopoSpec
	// BlockBytes is the timed collectives' software pipelining granularity.
	BlockBytes units.Bytes
	// CollectiveCUs is the CU allocation of standalone collective kernels.
	CollectiveCUs int
	// PerCUMemBandwidth bounds a kernel's CU-side memory throughput.
	PerCUMemBandwidth units.Bandwidth
	// Metrics, if non-nil, receives every experiment simulation's
	// instruments, each run under its own scope (e.g. "fused-t3/<case>",
	// "fig17/baseline"), so a single registry collects a whole experiment
	// sweep deterministically at any -j. Nil costs nothing.
	Metrics metrics.Sink
	// Check, if non-nil, is threaded into every simulation an experiment
	// runs (fused runners, timed collectives, isolated kernels), collecting
	// invariant violations across the whole sweep; a single checker is safe
	// to share at any -j. Nil costs nothing.
	Check *check.Checker
	// MultiDeviceWorkers selects the execution strategy for explicit
	// multi-device simulations (the mirror validation's N-device runs):
	// 0 simulates all devices on one shared engine; any positive value
	// runs each device on its own conservative-parallel cluster engine
	// with up to that many goroutines. Output is byte-identical at every
	// value — the knob trades wall-clock time only — so it is excluded
	// from the memo key and safe to flip per invocation (-par on the
	// CLIs).
	MultiDeviceWorkers int
	// SyncMode selects the cluster coordinator's synchronization strategy
	// for parallel multi-device simulations (MultiDeviceWorkers > 0):
	// windowed rounds, appointment (null-message) rounds, or automatic
	// selection from topology edge density (the zero default). Output is
	// byte-identical in every mode — like MultiDeviceWorkers it trades
	// wall-clock time only, is excluded from the memo key, and is safe to
	// flip per invocation (-sync on the CLIs).
	SyncMode sim.ClusterSyncMode
	// ServeQPS, when non-empty, overrides the serving sweep's offered-load
	// ladder (requests/s); empty uses the built-in default. CLI flag -qps.
	ServeQPS []float64
	// ServeSLO, when positive, overrides the serving sweep's p99 TTFT
	// service-level objective; zero uses the built-in default. CLI flag -slo.
	ServeSLO units.Time
	// Memo, if non-nil, is the process-wide content-addressed result cache:
	// sub-layer evaluations and single-GPU fused runs are keyed by a
	// canonical hash of every timing-relevant option (see memo.go), so
	// identical simulations across catalogue entries — and across derived
	// setups that copy this Setup, like the ablation link sweep — run once.
	// NewRunner installs one automatically; leave nil to force every run to
	// simulate. Cached results are shared: treat them as immutable.
	Memo *MemoCache
}

// DefaultSetup mirrors Table 1. The tracker keeps the paper's 256 sets but
// allows 64 ways instead of 8: with communication-bound sub-layers (e.g.
// Mega-GPT-2's OP), tiles whose local updates finished wait whole phases for
// their incoming DMA updates, and the live-entry high-water mark exceeds the
// paper's 2048-slot budget — a sizing finding this reproduction surfaces
// (recorded per run in SublayerResult.TrackerMaxLive and EXPERIMENTS.md).
func DefaultSetup() Setup {
	tracker := t3core.DefaultTrackerConfig()
	tracker.Ways = 64
	return Setup{
		GPU:               gpu.DefaultConfig(),
		Memory:            memory.DefaultConfig(),
		Link:              interconnect.DefaultConfig(),
		Tracker:           tracker,
		BlockBytes:        32 * units.KiB,
		CollectiveCUs:     80,
		PerCUMemBandwidth: 16 * units.GBps,
	}
}

// Validate reports whether the setup is usable.
func (s Setup) Validate() error {
	if err := s.GPU.Validate(); err != nil {
		return err
	}
	if err := s.Memory.Validate(); err != nil {
		return err
	}
	if err := s.Link.Validate(); err != nil {
		return err
	}
	if err := s.Tracker.Validate(); err != nil {
		return err
	}
	if !s.Topo.IsZero() {
		if err := s.Topo.Validate(); err != nil {
			return err
		}
	}
	if s.BlockBytes <= 0 {
		return fmt.Errorf("experiments: BlockBytes = %v", s.BlockBytes)
	}
	if s.CollectiveCUs <= 0 || s.CollectiveCUs > s.GPU.CUs {
		return fmt.Errorf("experiments: CollectiveCUs = %d", s.CollectiveCUs)
	}
	if s.PerCUMemBandwidth <= 0 {
		return fmt.Errorf("experiments: PerCUMemBandwidth = %v", s.PerCUMemBandwidth)
	}
	return nil
}

// HW converts the setup into the transformer package's hardware bundle.
func (s Setup) HW() transformer.HW {
	return transformer.HW{
		GPU:               s.GPU,
		Link:              s.Link,
		MemBandwidth:      s.Memory.TotalBandwidth,
		CollectiveCUs:     s.CollectiveCUs,
		PerCUMemBandwidth: s.PerCUMemBandwidth,
	}
}

// SubCase names one evaluated sub-layer: (model, sub-layer kind, TP degree).
type SubCase struct {
	Model transformer.Model
	Kind  transformer.SubLayerKind
	TP    int
}

// String renders "Model/kind/TP-n".
func (c SubCase) String() string {
	return fmt.Sprintf("%s/%v/TP-%d", c.Model.Name, c.Kind, c.TP)
}

// SmallModelCases returns the Figure 15/16/18 case list: all four AR
// sub-layers of Mega-GPT-2 and T-NLG at TP 8 and 16.
func SmallModelCases() []SubCase {
	var cases []SubCase
	for _, name := range []string{"Mega-GPT-2", "T-NLG"} {
		m, err := transformer.ModelByName(name)
		if err != nil {
			panic(err)
		}
		for _, tp := range m.TPDegrees {
			for _, kind := range transformer.AllSubLayers {
				cases = append(cases, SubCase{Model: m, Kind: kind, TP: tp})
			}
		}
	}
	return cases
}

// LargeModelCases returns the §6.4 case list: GPT-3, PALM and MT-NLG at
// TP 32, all four AR sub-layers.
func LargeModelCases() []SubCase {
	var cases []SubCase
	for _, name := range []string{"GPT-3", "PALM", "MT-NLG"} {
		m, err := transformer.ModelByName(name)
		if err != nil {
			panic(err)
		}
		for _, kind := range transformer.AllSubLayers {
			cases = append(cases, SubCase{Model: m, Kind: kind, TP: 32})
		}
	}
	return cases
}
