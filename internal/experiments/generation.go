package experiments

import (
	"fmt"

	"t3sim/internal/collective"
	"t3sim/internal/t3core"
	"t3sim/internal/transformer"
	"t3sim/internal/units"
)

// GenerationRow is one sub-layer of the §7.3 study: the auto-regressive
// decode phase's GEMV-shaped producer and its small, latency-bound
// all-reduce.
type GenerationRow struct {
	Model string
	TP    int
	Kind  transformer.SubLayerKind
	// GEMV is the weight-streaming producer time; RS/AG the collective.
	GEMV units.Time
	RS   units.Time
	AG   units.Time
	// Fused is the T3-MCA fused GEMV→RS completion (plus AG).
	Fused   units.Time
	Speedup float64
}

// GenerationResult is the §7.3 reproduction.
type GenerationResult struct {
	Rows []GenerationRow
	// EndToEnd estimates the per-token decode speedup per (model, TP).
	EndToEnd []Fig19Row
}

// Generation evaluates the token-generation phase: per-token batched GEMVs
// with tensor parallelism providing aggregate memory bandwidth, and T3
// overlapping the resulting small all-reduces (§7.3).
func Generation(ev *Evaluator) (*GenerationResult, error) {
	s := ev.Setup
	hw := s.HW()
	res := &GenerationResult{}
	for _, name := range []string{"Mega-GPT-2", "T-NLG"} {
		m, err := transformer.ModelByName(name)
		if err != nil {
			return nil, err
		}
		if err := res.addModel(ev, hw, m); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// addModel evaluates every TP degree of one model: higher TP slices the
// weights further, so per-token GEMV time drops with the aggregate memory
// bandwidth TP provides — the §7.3 motivation for decode-phase TP.
func (res *GenerationResult) addModel(ev *Evaluator, hw transformer.HW, m transformer.Model) error {
	s := ev.Setup
	for _, tp := range m.TPDegrees {
		tokens := transformer.PhaseTokens(transformer.TokenGeneration, m)
		ratios := map[transformer.SubLayerKind]float64{}
		for _, kind := range transformer.ActiveSubLayers(transformer.TokenGeneration) {
			sl, err := transformer.SubLayerGEMMTokens(m, kind, tp, tokens)
			if err != nil {
				return err
			}
			gemv, _, err := ev.isolatedGEMM(sl, false, nil)
			if err != nil {
				return err
			}
			colOpts := collective.AnalyticOptions{
				Devices:           tp,
				TotalBytes:        sl.ARBytes,
				Link:              s.Link,
				MemBandwidth:      s.Memory.TotalBandwidth,
				CUs:               s.CollectiveCUs,
				PerCUMemBandwidth: s.PerCUMemBandwidth,
			}
			rs, err := collective.AnalyticRingReduceScatterTime(colOpts)
			if err != nil {
				return err
			}
			ag, err := collective.AnalyticRingAllGatherTime(colOpts)
			if err != nil {
				return err
			}
			fusedRun, err := memoFusedRS(s.Memo, t3core.FusedOptions{
				GPU:         s.GPU,
				Memory:      s.Memory,
				Link:        s.Link,
				Tracker:     s.Tracker,
				Devices:     tp,
				Grid:        sl.Grid,
				Collective:  t3core.RingReduceScatter,
				Arbitration: t3core.ArbMCA,
				Check:       s.Check,
			})
			if err != nil {
				return err
			}
			seq := gemv + rs + ag
			fused := fusedRun.Done + ag
			res.Rows = append(res.Rows, GenerationRow{
				Model: m.Name, TP: tp, Kind: kind,
				GEMV: gemv, RS: rs, AG: ag,
				Fused:   fused,
				Speedup: float64(seq) / float64(fused),
			})
			ratios[kind] = float64(fusedRun.Done) / float64(gemv+rs)
		}
		// End-to-end decode-step estimate via the iteration model.
		it, err := transformer.NewIterationModel(m, tp, transformer.TokenGeneration, hw)
		if err != nil {
			return err
		}
		fused := map[transformer.SubLayerKind]units.Time{}
		for kind, sub := range it.Sub {
			fused[kind] = units.Time(float64(sub.GEMM+sub.RS) * ratios[kind])
		}
		res.EndToEnd = append(res.EndToEnd, Fig19Row{
			Model: m.Name, TP: tp, Phase: transformer.TokenGeneration,
			T3MCA: it.Speedup(fused),
			T3:    it.Speedup(fused),
		})
	}
	return nil
}

// Render formats the study.
func (r *GenerationResult) Render() string {
	t := &Table{
		Title:  "Generation phase (§7.3): per-token GEMVs with small all-reduces",
		Header: []string{"sub-layer", "GEMV", "RS", "AG", "fused+AG", "speedup"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%s/%v/TP-%d", row.Model, row.Kind, row.TP),
			row.GEMV.String(), row.RS.String(), row.AG.String(),
			row.Fused.String(), fmt.Sprintf("%.3fx", row.Speedup))
	}
	for _, e := range r.EndToEnd {
		t.AddFooter("%s TP-%d decode-step speedup: %.3fx", e.Model, e.TP, e.T3MCA)
	}
	t.AddFooter("paper §7.3: decode-phase all-reduces are small and latency-bound but can")
	t.AddFooter("still be overlapped with the weight-streaming GEMV executions")
	return t.String()
}
