package experiments

import (
	"fmt"
	"testing"

	"t3sim/internal/check"
	"t3sim/internal/collective"
	"t3sim/internal/interconnect"
	"t3sim/internal/memory"
	"t3sim/internal/sim"
	"t3sim/internal/units"
)

// The topology differential battery: the graph timed engine
// (internal/collective/topotimed.go) versus the chunk-recurrence analytic
// model (internal/collective/analytic_topo.go) over every (topology ×
// algorithm) cell, in both the tolerance regime (Table 1 machine) and the
// exact-link-bound regime the ring sweep pioneered — plus byte-identity of
// the cluster runs against the shared engine at every worker count.

// topoDiffSpecs returns the four 8-device topologies the battery sweeps —
// the same ladder the topo-sweep experiment runs — so every algorithm
// (including halving-doubling) is a candidate on each.
func topoDiffSpecs(link interconnect.Config) []interconnect.TopoSpec {
	return DefaultTopoSpecs(link)
}

// topoDiameter is the worst-case route length on a built topology.
func topoDiameter(t *testing.T, spec interconnect.TopoSpec) int {
	t.Helper()
	topo, err := spec.Build(sim.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	diam := 0
	for s := 0; s < spec.Devices; s++ {
		for d := 0; d < spec.Devices; d++ {
			if s != d && topo.Hops(s, d) > diam {
				diam = topo.Hops(s, d)
			}
		}
	}
	return diam
}

// runTimedTopoCollective runs one timed graph collective to completion with
// the invariant checker attached. workers == 0 uses a single shared engine;
// workers > 0 builds a cluster and runs it at that parallelism.
func runTimedTopoCollective(t *testing.T, setup Setup, spec interconnect.TopoSpec,
	algo collective.Algorithm, op collective.Op, size units.Bytes, nmc bool, workers int) units.Time {
	t.Helper()
	checker := check.New()
	buildDevs := func(engOf func(int) *sim.Engine) []*collective.Device {
		devs := make([]*collective.Device, spec.Devices)
		for i := range devs {
			memCfg := setup.Memory
			memCfg.Check = checker
			mc, err := memory.NewController(engOf(i), memCfg, memory.ComputeFirst{})
			if err != nil {
				t.Fatal(err)
			}
			devs[i] = &collective.Device{ID: i, Mem: mc}
		}
		return devs
	}
	opts := collective.TopoOptions{
		TotalBytes:        size,
		BlockBytes:        setup.BlockBytes,
		CUs:               setup.CollectiveCUs,
		PerCUMemBandwidth: setup.PerCUMemBandwidth,
		NMC:               nmc,
		Stream:            memory.StreamComm,
		Check:             checker,
	}
	var done units.Time
	if workers == 0 {
		eng := sim.NewEngine()
		eng.AttachChecker(checker)
		topo, err := spec.Build(eng)
		if err != nil {
			t.Fatal(err)
		}
		opts.Topo = topo
		opts.Devices = buildDevs(func(int) *sim.Engine { return eng })
		if err := collective.StartTopoCollective(eng, algo, op, opts, func() { done = eng.Now() }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	} else {
		cl := sim.NewCluster(spec.Devices, spec.MinLinkLatency())
		for _, e := range cl.Engines() {
			e.AttachChecker(checker)
		}
		topo, err := spec.BuildCluster(cl)
		if err != nil {
			t.Fatal(err)
		}
		opts.Topo = topo
		opts.Devices = buildDevs(cl.Engine)
		cr, err := collective.StartClusterTopoCollective(cl, algo, op, opts)
		if err != nil {
			t.Fatal(err)
		}
		cl.Run(workers)
		cr.Finish()
		done = cr.Done()
	}
	if done == 0 {
		t.Fatalf("%v/%v/%v never completed", spec.Kind, algo, op)
	}
	for _, v := range checker.Violations() {
		t.Errorf("invariant violation: %s", v)
	}
	return done
}

func topoAnalyticOpts(setup Setup, size units.Bytes, nmc bool) collective.AnalyticOptions {
	return collective.AnalyticOptions{
		TotalBytes:        size,
		MemBandwidth:      setup.Memory.TotalBandwidth,
		CUs:               setup.CollectiveCUs,
		PerCUMemBandwidth: setup.PerCUMemBandwidth,
		NMC:               nmc,
	}
}

// topoStepSlack bounds the fixed per-round costs the chunk recurrence only
// partially charges, generalizing differentialStepSlack to multi-hop routes:
// each round's critical path may store-and-forward a trailing block across
// up to diam links (a block's wire time plus the link latency per hop) and
// wait out a DRAM read before the next round's kernel.
func topoStepSlack(setup Setup, spec interconnect.TopoSpec, diam int) units.Time {
	perHop := spec.Link.LinkLatency + spec.Link.LinkBandwidth.TransferTime(setup.BlockBytes)
	if i := spec.InterLink; i.LinkBandwidth > 0 {
		interHop := i.LinkLatency + i.LinkBandwidth.TransferTime(setup.BlockBytes)
		if interHop > perHop {
			perHop = interHop
		}
	}
	return units.Time(diam)*perHop + setup.Memory.ReadLatency
}

// TestDifferentialTopoCollectives sweeps every (topology × algorithm) cell
// over sizes and ops on the Table 1 machine: the shared-engine DES must
// match the analytic recurrence within tolerance, and the cluster runs must
// be byte-identical to the shared engine at workers 1, 2 and 4.
func TestDifferentialTopoCollectives(t *testing.T) {
	setup := DefaultSetup()
	for _, spec := range topoDiffSpecs(setup.Link) {
		diam := topoDiameter(t, spec)
		for _, algo := range collective.CandidateAlgorithms(spec) {
			for _, tc := range []struct {
				op   collective.Op
				size units.Bytes
				nmc  bool
			}{
				{collective.AllReduceOp, 2 * units.MiB, false},
				{collective.AllReduceOp, 32 * units.MiB, false},
				{collective.ReduceScatterOp, 8*units.MiB + 4096, false},
				{collective.ReduceScatterOp, 8 * units.MiB, true},
				{collective.AllGatherOp, 8 * units.MiB, false},
			} {
				spec, algo, tc := spec, algo, tc
				name := fmt.Sprintf("%v/%v/%v/%v", spec.Kind, algo, tc.op, tc.size)
				if tc.nmc {
					name += "/nmc"
				}
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					simT := runTimedTopoCollective(t, setup, spec, algo, tc.op, tc.size, tc.nmc, 0)
					lo, hi, err := collective.AnalyticTopoTimeBounds(algo, tc.op, spec, topoAnalyticOpts(setup, tc.size, tc.nmc))
					if err != nil {
						t.Fatal(err)
					}
					rounds, _, _, err := collective.ScheduleStats(algo, tc.op, spec.Devices, tc.size, setup.BlockBytes, tc.nmc)
					if err != nil {
						t.Fatal(err)
					}
					// The DES must land inside the [lower, upper] analytic
					// envelope, up to tolerance; on single-hop topologies the
					// envelope collapses to a point and this is the same
					// check the ring battery runs.
					var diff units.Time
					switch {
					case simT < lo:
						diff = lo - simT
					case simT > hi:
						diff = simT - hi
					}
					rel := float64(diff) / float64(lo)
					allow := units.Time(rounds) * topoStepSlack(setup, spec, diam)
					if rel > differentialTolerance && diff > allow {
						t.Errorf("DES %v outside analytic envelope [%v, %v] by %v (%.2f%%), exceeds both %.0f%% and the %v fixed-cost allowance",
							simT, lo, hi, diff, 100*rel, 100*differentialTolerance, allow)
					}

					// Cluster byte-identity at every worker count, on the
					// smaller size to keep the battery fast.
					if tc.size <= 8*units.MiB {
						for _, workers := range []int{1, 2, 4} {
							if got := runTimedTopoCollective(t, setup, spec, algo, tc.op, tc.size, tc.nmc, workers); got != simT {
								t.Errorf("cluster workers=%d: done %v, want shared-engine %v", workers, got, simT)
							}
						}
					}
				})
			}
		}
	}
}

// TestDifferentialTopoLinkBoundExact pins the exact regime on every cell:
// with zero link latency and memory/CU throughput inflated three orders of
// magnitude, wire serialization is the only real cost. The work-conserving
// lower bound may never be beaten by the DES, the store-and-forward upper
// bound may only be exceeded by counted costs — a trailing block's
// store-and-forward per hop per round, plus per-block feed reads and
// picosecond rounding across at most diam hops — and on single-hop
// topologies the two bounds coincide, so the DES is pinned exactly there.
func TestDifferentialTopoLinkBoundExact(t *testing.T) {
	setup := DefaultSetup()
	setup.Link.LinkLatency = 0
	setup.Memory.TotalBandwidth = 4096 * units.TBps
	setup.Memory.ReadLatency = 0
	setup.PerCUMemBandwidth = 64 * units.TBps
	const perBlockSlack = 32 // picoseconds, see TestDifferentialLinkBoundExact
	for _, spec := range topoDiffSpecs(setup.Link) {
		diam := topoDiameter(t, spec)
		for _, algo := range collective.CandidateAlgorithms(spec) {
			for _, op := range []collective.Op{collective.ReduceScatterOp, collective.AllReduceOp} {
				spec, algo, op := spec, algo, op
				t.Run(fmt.Sprintf("%v/%v/%v", spec.Kind, algo, op), func(t *testing.T) {
					t.Parallel()
					const size = 4 * units.MiB
					simT := runTimedTopoCollective(t, setup, spec, algo, op, size, true, 0)
					lo, hi, err := collective.AnalyticTopoTimeBounds(algo, op, spec, topoAnalyticOpts(setup, size, true))
					if err != nil {
						t.Fatal(err)
					}
					if simT < lo {
						t.Errorf("DES %v beats the work-conserving wire lower bound %v: the link model is undercharging", simT, lo)
					}
					rounds, _, blocks, err := collective.ScheduleStats(algo, op, spec.Devices, size, setup.BlockBytes, true)
					if err != nil {
						t.Fatal(err)
					}
					// Counted slack runs over the slowest link a route can
					// cross (the hierarchy's inter-node links are slower than
					// spec.Link).
					blockT := spec.Link.LinkBandwidth.TransferTime(setup.BlockBytes)
					if i := spec.InterLink; i.LinkBandwidth > 0 {
						if t2 := i.LinkBandwidth.TransferTime(setup.BlockBytes); t2 > blockT {
							blockT = t2
						}
					}
					slack := units.Time(rounds*diam)*blockT + units.Time(blocks*diam)*perBlockSlack
					if simT > hi+slack {
						t.Errorf("link-bound DES %v exceeds the store-and-forward upper bound %v by %v (allowed %v)",
							simT, hi, simT-hi, slack)
					}
				})
			}
		}
	}
}
