package experiments

import (
	"reflect"
	"sync"
	"testing"

	"t3sim/internal/transformer"
)

// Stress test for the Evaluator's memo + singleflight path. Many goroutines
// race Evaluate and EvaluateAll over a small, overlapping case set; the
// onEvaluate hook counts how many times each case actually simulates. The
// contract under test — run with -race in CI — is exactly-once simulation per
// distinct case and bit-identical results for every waiter, no matter how the
// callers interleave.

// stressModel is deliberately tiny so each real evaluation is milliseconds:
// the test's work is in the interleaving, not the simulation.
var stressModel = transformer.Model{
	Name:      "stress-tiny",
	Hidden:    1024,
	Layers:    2,
	SeqLen:    128,
	Batch:     2,
	TPDegrees: []int{2},
	FFMult:    4,
}

func TestEvaluatorSingleflightStress(t *testing.T) {
	ev, err := NewEvaluator(DefaultSetup())
	if err != nil {
		t.Fatal(err)
	}

	var (
		countMu sync.Mutex
		counts  = map[string]int{}
	)
	ev.onEvaluate = func(c SubCase) {
		countMu.Lock()
		counts[c.String()]++
		countMu.Unlock()
	}

	var cases []SubCase
	for _, kind := range transformer.AllSubLayers {
		cases = append(cases, SubCase{Model: stressModel, Kind: kind, TP: 2})
	}
	// Duplicate entries in one EvaluateAll batch must also collapse.
	batch := append(append([]SubCase{}, cases...), cases...)

	const goroutines = 16
	results := make([][]SublayerResult, goroutines)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start // line everyone up so the singleflight window actually contends
			if g%2 == 0 {
				rs, err := ev.EvaluateAll(batch)
				if err != nil {
					t.Error(err)
					return
				}
				results[g] = rs[:len(cases)]
				return
			}
			rs := make([]SublayerResult, len(cases))
			for i, c := range cases {
				r, err := ev.Evaluate(c)
				if err != nil {
					t.Error(err)
					return
				}
				rs[i] = r
			}
			results[g] = rs
		}()
	}
	close(start)
	wg.Wait()

	// Exactly-once: every distinct case simulated once, nothing unexpected.
	countMu.Lock()
	defer countMu.Unlock()
	if len(counts) != len(cases) {
		t.Errorf("simulated %d distinct cases, want %d: %v", len(counts), len(cases), counts)
	}
	for _, c := range cases {
		if n := counts[c.String()]; n != 1 {
			t.Errorf("case %s simulated %d times, want exactly once", c, n)
		}
	}

	// Every waiter saw the same bits, whichever goroutine's run they joined.
	ref := results[0]
	if ref == nil {
		t.Fatal("no reference results")
	}
	for g, rs := range results {
		if rs == nil {
			continue // goroutine already reported its error
		}
		for i := range rs {
			if !reflect.DeepEqual(rs[i], ref[i]) {
				t.Errorf("goroutine %d case %s: result diverges from reference", g, cases[i])
			}
		}
	}
}
