package experiments

import (
	"fmt"

	"t3sim/internal/gemm"
	"t3sim/internal/stats"
	"t3sim/internal/t3core"
	"t3sim/internal/units"
)

// multi64Devices is the device count of the scale experiment: the Fig-20
// regime ROADMAP item 3 asks for, far beyond the 2–16 devices the mirror
// validation sweeps.
const multi64Devices = 64

// multi64Grid returns the producer GEMM of the 64-device run: 1024 wavefront
// tiles, sixteen per device chunk — a real ring workload at scale, yet small
// enough that the explicit run stays affordable in the golden suite even
// fully sequential.
func multi64Grid() (gemm.Grid, error) {
	return gemm.NewGrid(gemm.Shape{M: 2048, N: 2048, K: 512, ElemBytes: 2}, gemm.DefaultTiling())
}

// Multi64Result is the 64-device explicit fused GEMM→reduce-scatter run.
// Every reported number is a pure function of the model — identical at every
// worker count — so the golden snapshot pins byte-identity of the parallel
// scheduler at scale. Scheduler-side windowing statistics deliberately do not
// appear here; the benchmark harness reports them instead.
type Multi64Result struct {
	Devices int
	Grid    gemm.Grid

	// GEMM and collective completion spreads across the 64 devices.
	GEMMFirst, GEMMLast             units.Time
	CollectiveFirst, CollectiveLast units.Time
	Done                            units.Time
	Skew                            units.Time

	// Mirror methodology cross-check at scale.
	Mirror   units.Time
	RelError float64

	LinkBytes      units.Bytes
	DRAMBytes      units.Bytes
	TrackerMaxLive int
}

// Multi64 runs the 64-device explicit simulation (honouring the setup's
// MultiDeviceWorkers) and the single-GPU mirror of the same configuration,
// validating the §5.1.1 methodology in the Fig-20 scale regime.
func Multi64(setup Setup) (*Multi64Result, error) {
	if err := setup.Validate(); err != nil {
		return nil, err
	}
	grid, err := multi64Grid()
	if err != nil {
		return nil, err
	}
	opts := t3core.FusedOptions{
		GPU:         setup.GPU,
		Memory:      setup.Memory,
		Link:        setup.Link,
		Tracker:     setup.Tracker,
		Devices:     multi64Devices,
		Grid:        grid,
		Collective:  t3core.RingReduceScatter,
		Arbitration: t3core.ArbRoundRobin,
		Check:       setup.Check,
	}
	mirror, err := memoFusedRS(setup.Memo, opts)
	if err != nil {
		return nil, err
	}
	opts.ParWorkers = setup.MultiDeviceWorkers
	opts.SyncMode = setup.SyncMode
	multi, err := memoFusedMulti(setup.Memo, opts)
	if err != nil {
		return nil, err
	}
	res := &Multi64Result{
		Devices:        multi64Devices,
		Grid:           grid,
		Done:           multi.Done,
		Skew:           multi.Skew(),
		Mirror:         mirror.CollectiveDone,
		RelError:       stats.RelError(float64(mirror.CollectiveDone), float64(multi.Done)),
		LinkBytes:      multi.LinkBytes,
		DRAMBytes:      multi.DRAM.TotalBytes(),
		TrackerMaxLive: multi.TrackerMaxLive,
	}
	res.GEMMFirst, res.GEMMLast = timeSpread(multi.GEMMDone)
	res.CollectiveFirst, res.CollectiveLast = timeSpread(multi.CollectiveDone)
	return res, nil
}

// timeSpread returns the earliest and latest entry of a completion vector.
func timeSpread(ts []units.Time) (lo, hi units.Time) {
	if len(ts) == 0 {
		return 0, 0
	}
	lo, hi = ts[0], ts[0]
	for _, t := range ts[1:] {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return lo, hi
}

// Render formats the scale run.
func (r *Multi64Result) Render() string {
	t := &Table{
		Title:  "64-device explicit fused GEMM+reduce-scatter (Fig-20 scale regime, ROADMAP item 3)",
		Header: []string{"metric", "value"},
	}
	t.AddRow("devices", fmt.Sprintf("%d", r.Devices))
	t.AddRow("grid", fmt.Sprintf("M=%d N=%d K=%d (fp16)", r.Grid.Shape.M, r.Grid.Shape.N, r.Grid.Shape.K))
	t.AddRow("gemm done (first/last)", fmt.Sprintf("%v / %v", r.GEMMFirst, r.GEMMLast))
	t.AddRow("collective done (first/last)", fmt.Sprintf("%v / %v", r.CollectiveFirst, r.CollectiveLast))
	t.AddRow("done (incl. drain)", r.Done.String())
	t.AddRow("device skew", r.Skew.String())
	t.AddRow("mirror collective done", r.Mirror.String())
	t.AddRow("mirror error", fmt.Sprintf("%.2f%%", 100*r.RelError))
	t.AddRow("ring traffic", r.LinkBytes.String())
	t.AddRow("DRAM traffic (all devices)", r.DRAMBytes.String())
	t.AddRow("tracker max live", fmt.Sprintf("%d", r.TrackerMaxLive))
	t.AddFooter("explicit 64-device run; result is byte-identical at every -par worker count")
	return t.String()
}
