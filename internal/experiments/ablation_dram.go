package experiments

import (
	"fmt"

	"t3sim/internal/memory"
	"t3sim/internal/t3core"
	"t3sim/internal/units"
)

// AblationDRAMRow is one DRAM-model fidelity point.
type AblationDRAMRow struct {
	Model string
	// GEMMDone/Done are the fused run's completions under this model.
	GEMMDone units.Time
	Done     units.Time
	Speedup  float64
}

// AblationDRAMResult compares the calibrated flat service model against the
// bank-group-level timing model (Table 1's CCDL/CCDWL/bank-group detail).
// The flat model charges every NMC update 2× write service; the detailed
// model shows group interleaving hiding most of CCDWL — so the flat model is
// the conservative choice for T3's headline numbers.
type AblationDRAMResult struct {
	Case SubCase
	Rows []AblationDRAMRow
}

// AblationDRAMModel runs the fused T3-MCA case under both DRAM models.
func AblationDRAMModel(ev *Evaluator) (*AblationDRAMResult, error) {
	c, err := ablationCase()
	if err != nil {
		return nil, err
	}
	base, err := ev.Evaluate(c)
	if err != nil {
		return nil, err
	}
	res := &AblationDRAMResult{Case: c}
	configs := []struct {
		name  string
		banks *memory.BankConfig
	}{
		{"flat (bytes/bandwidth, updates 2x)", nil},
		{"bank-group (CCDL/CCDWL, row buffers)", func() *memory.BankConfig {
			b := memory.DefaultBankConfig()
			return &b
		}()},
	}
	for _, cfg := range configs {
		opts, _, err := fusedOptionsFor(ev.Setup, c)
		if err != nil {
			return nil, err
		}
		opts.Arbitration = t3core.ArbMCA
		opts.Memory.Banks = cfg.banks
		run, err := memoFusedRS(ev.Setup.Memo, opts)
		if err != nil {
			return nil, err
		}
		done := run.Done + base.AG
		res.Rows = append(res.Rows, AblationDRAMRow{
			Model:    cfg.name,
			GEMMDone: run.GEMMDone,
			Done:     done,
			Speedup:  float64(base.Sequential) / float64(done),
		})
	}
	return res, nil
}

// Render formats the comparison.
func (r *AblationDRAMResult) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: DRAM timing model fidelity, %s", r.Case),
		Header: []string{"model", "GEMM done", "fused+AG", "speedup"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Model, row.GEMMDone.String(), row.Done.String(),
			fmt.Sprintf("%.3fx", row.Speedup))
	}
	t.AddFooter("the bank-group model interleaves CCDWL across groups, so NMC updates cost")
	t.AddFooter("near write speed; the flat model's uniform 2x is the conservative bound")
	return t.String()
}

// AblationPipelineRow is one GEMM-schedule point.
type AblationPipelineRow struct {
	Schedule string
	GEMM     units.Time
	Done     units.Time
	Speedup  float64
}

// AblationPipelineResult compares the producer's stage schedules: the
// conservative read-then-compute pipeline (whose traffic shape matches
// Figure 17a) against operand-prefetching double buffering, in isolation
// and inside the fused T3-MCA run.
type AblationPipelineResult struct {
	Case SubCase
	Rows []AblationPipelineRow
}

// AblationGEMMPipeline runs the schedule comparison.
func AblationGEMMPipeline(ev *Evaluator) (*AblationPipelineResult, error) {
	c, err := ablationCase()
	if err != nil {
		return nil, err
	}
	base, err := ev.Evaluate(c)
	if err != nil {
		return nil, err
	}
	res := &AblationPipelineResult{Case: c}
	for _, db := range []bool{false, true} {
		opts, _, err := fusedOptionsFor(ev.Setup, c)
		if err != nil {
			return nil, err
		}
		opts.Arbitration = t3core.ArbMCA
		opts.DoubleBufferedGEMM = db
		run, err := memoFusedRS(ev.Setup.Memo, opts)
		if err != nil {
			return nil, err
		}
		name := "read-then-compute"
		if db {
			name = "double-buffered"
		}
		done := run.Done + base.AG
		res.Rows = append(res.Rows, AblationPipelineRow{
			Schedule: name,
			GEMM:     run.GEMMDone,
			Done:     done,
			Speedup:  float64(base.Sequential) / float64(done),
		})
	}
	return res, nil
}

// Render formats the comparison.
func (r *AblationPipelineResult) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: producer stage schedule, %s", r.Case),
		Header: []string{"schedule", "GEMM done", "fused+AG", "speedup"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Schedule, row.GEMM.String(), row.Done.String(),
			fmt.Sprintf("%.3fx", row.Speedup))
	}
	t.AddFooter("double buffering hides operand reads behind MACs, shortening the producer;")
	t.AddFooter("T3's overlap benefit persists under either schedule")
	return t.String()
}
