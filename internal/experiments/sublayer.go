package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"t3sim/internal/collective"
	"t3sim/internal/gpu"
	"t3sim/internal/memory"
	"t3sim/internal/metrics"
	"t3sim/internal/sim"
	"t3sim/internal/t3core"
	"t3sim/internal/transformer"
	"t3sim/internal/units"
)

// DRAMBreakdown itemizes a configuration's per-device DRAM traffic the way
// Figure 18 stacks it.
type DRAMBreakdown struct {
	GEMMReads  units.Bytes
	GEMMWrites units.Bytes // plain writes or NMC updates
	RSReads    units.Bytes
	RSWrites   units.Bytes // staging writes or NMC updates
	AGReads    units.Bytes
	AGWrites   units.Bytes
}

// Total sums the breakdown.
func (b DRAMBreakdown) Total() units.Bytes {
	return b.GEMMReads + b.GEMMWrites + b.RSReads + b.RSWrites + b.AGReads + b.AGWrites
}

// SublayerResult is everything the sub-layer figures need for one case.
type SublayerResult struct {
	Case SubCase

	// Baseline isolated times.
	GEMM  units.Time
	RS    units.Time
	RSNMC units.Time
	AG    units.Time

	// Scheme completion times for GEMM→RS→AG (§5.3 configurations).
	Sequential   units.Time
	T3           units.Time
	T3MCA        units.Time
	IdealOverlap units.Time
	IdealRSNMC   units.Time

	// Figure 18 traffic.
	BaselineDRAM DRAMBreakdown
	T3DRAM       DRAMBreakdown

	// Fused-run diagnostics.
	TrackerMaxLive int
	MCAThreshold   int
}

// SpeedupT3 returns Sequential/T3.
func (r SublayerResult) SpeedupT3() float64 { return float64(r.Sequential) / float64(r.T3) }

// SpeedupT3MCA returns Sequential/T3MCA.
func (r SublayerResult) SpeedupT3MCA() float64 { return float64(r.Sequential) / float64(r.T3MCA) }

// SpeedupIdeal returns Sequential/IdealOverlap.
func (r SublayerResult) SpeedupIdeal() float64 {
	return float64(r.Sequential) / float64(r.IdealOverlap)
}

// SpeedupIdealNMC returns Sequential/IdealRSNMC.
func (r SublayerResult) SpeedupIdealNMC() float64 {
	return float64(r.Sequential) / float64(r.IdealRSNMC)
}

// DataMovementReduction returns 1 − T3bytes/baselineBytes.
func (r SublayerResult) DataMovementReduction() float64 {
	return 1 - float64(r.T3DRAM.Total())/float64(r.BaselineDRAM.Total())
}

// Evaluator runs and memoizes sub-layer evaluations so Figures 15–19 share
// one set of simulations. It is safe for concurrent use: the memo cache is
// mutex-guarded and concurrent Evaluate calls for the same case are
// deduplicated (singleflight), so each case is simulated exactly once no
// matter how many experiments race for it. Every simulation owns a private
// sim.Engine, so results are bit-identical regardless of scheduling.
type Evaluator struct {
	Setup Setup

	// Parallelism bounds the worker goroutines EvaluateAll spawns and, when
	// set to 1, also forces the per-case scheme simulations to run
	// back-to-back on one goroutine (the fully serial baseline that -j 1
	// exposes for profiling). Zero means GOMAXPROCS. Mutating it while
	// evaluations are in flight is not supported.
	Parallelism int

	mu       sync.Mutex
	cache    map[string]SublayerResult
	inflight map[string]*evalCall

	// onEvaluate, when non-nil, runs at the start of every actual (neither
	// memoized nor deduplicated) evaluation. Tests use it to count how many
	// times a case really simulates.
	onEvaluate func(SubCase)
}

// evalCall is one in-flight evaluation waiters block on.
type evalCall struct {
	done chan struct{}
	res  SublayerResult
	err  error
}

// NewEvaluator returns an evaluator for the setup.
func NewEvaluator(s Setup) (*Evaluator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Evaluator{
		Setup:    s,
		cache:    map[string]SublayerResult{},
		inflight: map[string]*evalCall{},
	}, nil
}

// workers resolves the effective worker count.
func (e *Evaluator) workers() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Evaluate runs (or returns the cached) full scheme comparison for one case.
// If another goroutine is already evaluating the same case, Evaluate waits
// for that run instead of duplicating it.
func (e *Evaluator) Evaluate(c SubCase) (SublayerResult, error) {
	key := c.String()
	e.mu.Lock()
	if r, ok := e.cache[key]; ok {
		e.mu.Unlock()
		return r, nil
	}
	if call, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		<-call.done
		return call.res, call.err
	}
	call := &evalCall{done: make(chan struct{})}
	e.inflight[key] = call
	e.mu.Unlock()

	r, err := e.evaluate(c)
	if err != nil {
		err = fmt.Errorf("%s: %w", key, err)
	}
	call.res, call.err = r, err

	e.mu.Lock()
	if err == nil {
		e.cache[key] = r
	}
	// Errors are not cached: later callers retry rather than inherit a
	// stale failure.
	delete(e.inflight, key)
	e.mu.Unlock()
	close(call.done)
	return r, err
}

// EvaluateAll evaluates every case on a bounded worker pool and returns the
// results in input order. Memoization and singleflight are shared with
// Evaluate, so cases already simulated are free and duplicate entries in
// cases are simulated once. On failure the error of the lowest-index failing
// case is returned, so sequential and parallel runs report identically.
func (e *Evaluator) EvaluateAll(cases []SubCase) ([]SublayerResult, error) {
	results := make([]SublayerResult, len(cases))
	errs := make([]error, len(cases))
	workers := e.workers()
	if workers > len(cases) {
		workers = len(cases)
	}
	if workers <= 1 {
		for i, c := range cases {
			r, err := e.Evaluate(c)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = e.Evaluate(cases[i])
			}
		}()
	}
	for i := range cases {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func (e *Evaluator) evaluate(c SubCase) (SublayerResult, error) {
	s := e.Setup
	sl, err := transformer.SubLayerGEMM(c.Model, c.Kind, c.TP)
	if err != nil {
		return SublayerResult{}, err
	}
	fusedOpts := t3core.FusedOptions{
		GPU:         s.GPU,
		Memory:      s.Memory,
		Link:        s.Link,
		Tracker:     s.Tracker,
		Devices:     c.TP,
		Grid:        sl.Grid,
		Collective:  t3core.RingReduceScatter,
		Arbitration: t3core.ArbRoundRobin,
		Check:       s.Check,
	}
	// Content-addressed memoization across evaluators: two cases whose
	// timing-relevant options hash identically (e.g. the ablation link
	// sweep's derived evaluator at the default bandwidth) share one set of
	// simulations. Metrics runs are never served from cache — their whole
	// value is the recording.
	if m := s.Memo; m != nil && s.Metrics == nil {
		if key, ok, diskOK := sublayerKey(fusedOpts, sl.ARBytes, s.CollectiveCUs, s.PerCUMemBandwidth); ok {
			r, err := m.memoSublayer(key, diskOK, func() (SublayerResult, error) {
				return e.simulate(c, sl, fusedOpts)
			})
			if err == nil {
				r.Case = c // a hit may come from an identical twin case
			}
			return r, err
		}
	}
	return e.simulate(c, sl, fusedOpts)
}

// simulate runs the full scheme comparison for one case, unconditionally.
func (e *Evaluator) simulate(c SubCase, sl transformer.SubLayer, fusedOpts t3core.FusedOptions) (SublayerResult, error) {
	if e.onEvaluate != nil {
		e.onEvaluate(c)
	}
	s := e.Setup
	res := SublayerResult{Case: c}

	// The three discrete-event simulations of one case — isolated baseline
	// GEMM, fused T3 (round-robin arbitration), fused T3-MCA — are fully
	// independent: each owns a private sim.Engine, so they can run on
	// separate goroutines with bit-identical results. With Parallelism == 1
	// they run back-to-back on this goroutine instead.
	mcaOpts := fusedOpts
	mcaOpts.Arbitration = t3core.ArbMCA

	// Each simulation gets its own scope named only by case and scheme;
	// combined with the memo cache (each case simulated exactly once) this
	// keeps the registry's process set independent of worker scheduling.
	var gemmSink metrics.Sink
	if m := s.Metrics; m != nil {
		key := c.String()
		gemmSink = m.Scope("gemm/" + key)
		fusedOpts.Metrics = m.Scope("fused-t3/" + key)
		mcaOpts.Metrics = m.Scope("fused-t3-mca/" + key)
	}

	var (
		gemmTime  units.Time
		gemmReads units.Bytes
		gemmErr   error
		t3res     t3core.FusedResult
		t3err     error
		mcaRes    t3core.FusedResult
		mcaErr    error
	)
	// The fused runs go through the fused-level memo so ablations replaying
	// an identical configuration (or vice versa) reuse them; with metrics
	// attached the scoped sinks make the options uncacheable automatically.
	runGEMM := func() { gemmTime, gemmReads, gemmErr = e.isolatedGEMM(sl, false, gemmSink) }
	runT3 := func() { t3res, t3err = memoFusedRS(s.Memo, fusedOpts) }
	runMCA := func() { mcaRes, mcaErr = memoFusedRS(s.Memo, mcaOpts) }
	if e.workers() == 1 {
		runGEMM()
		runT3()
		runMCA()
	} else {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); runT3() }()
		go func() { defer wg.Done(); runMCA() }()
		runGEMM()
		wg.Wait()
	}
	// Fixed error precedence keeps parallel and serial failures identical.
	for _, err := range []error{gemmErr, t3err, mcaErr} {
		if err != nil {
			return SublayerResult{}, err
		}
	}
	res.GEMM = gemmTime

	// Baseline collectives from the validated analytic model (Figure 14).
	var err error
	colOpts := collective.AnalyticOptions{
		Devices:           c.TP,
		TotalBytes:        sl.ARBytes,
		Link:              s.Link,
		MemBandwidth:      s.Memory.TotalBandwidth,
		CUs:               s.CollectiveCUs,
		PerCUMemBandwidth: s.PerCUMemBandwidth,
	}
	if res.RS, err = collective.AnalyticRingReduceScatterTime(colOpts); err != nil {
		return SublayerResult{}, err
	}
	nmcOpts := colOpts
	nmcOpts.NMC = true
	if res.RSNMC, err = collective.AnalyticRingReduceScatterTime(nmcOpts); err != nil {
		return SublayerResult{}, err
	}
	if res.AG, err = collective.AnalyticRingAllGatherTime(colOpts); err != nil {
		return SublayerResult{}, err
	}

	res.Sequential = res.GEMM + res.RS + res.AG
	res.IdealOverlap = maxTime(res.GEMM, res.RS) + res.AG
	res.IdealRSNMC = maxTime(res.GEMM, res.RSNMC) + res.AG

	res.T3 = t3res.Done + res.AG
	res.TrackerMaxLive = t3res.TrackerMaxLive
	res.T3MCA = mcaRes.Done + res.AG
	res.MCAThreshold = mcaRes.MCAThreshold

	// Figure 18 traffic accounting.
	out := sl.ARBytes
	chunk := units.Bytes(int64(out) / int64(c.TP))
	n := units.Bytes(int64(c.TP))
	res.BaselineDRAM = DRAMBreakdown{
		GEMMReads:  gemmReads,
		GEMMWrites: out,
		// Ring-RS per device (Figure 10a): 2(N−1)−1 rotation reads plus the
		// final reduction's 2 reads; N−1 staging writes plus the final write.
		RSReads:  chunk * (2*(n-1) - 1 + 2),
		RSWrites: chunk * n,
		AGReads:  chunk * (n - 1),
		AGWrites: chunk * (n - 1),
	}
	res.T3DRAM = DRAMBreakdown{
		GEMMReads:  mcaRes.DRAM.Bytes[memory.Read][memory.StreamCompute],
		GEMMWrites: mcaRes.DRAM.Bytes[memory.Update][memory.StreamCompute],
		RSReads:    mcaRes.DRAM.Bytes[memory.Read][memory.StreamComm],
		RSWrites:   mcaRes.DRAM.Bytes[memory.Update][memory.StreamComm],
		AGReads:    chunk * (n - 1),
		AGWrites:   chunk * (n - 1),
	}
	return res, nil
}

// isolatedGEMM runs the baseline GEMM alone and returns its duration and
// DRAM read bytes. m (may be nil) collects the run's instruments.
func (e *Evaluator) isolatedGEMM(sl transformer.SubLayer, bypassLLC bool, m metrics.Sink) (units.Time, units.Bytes, error) {
	return e.isolatedGEMMOnCUs(sl, bypassLLC, 0, m)
}

func (e *Evaluator) isolatedGEMMOnCUs(sl transformer.SubLayer, bypassLLC bool, cus int, m metrics.Sink) (units.Time, units.Bytes, error) {
	s := e.Setup
	eng := sim.NewEngine()
	eng.AttachChecker(s.Check)
	memCfg := s.Memory
	memCfg.Metrics = m
	memCfg.Check = s.Check
	mc, err := memory.NewController(eng, memCfg, memory.ComputeFirst{})
	if err != nil {
		return 0, 0, err
	}
	k := &gpu.GEMMKernel{
		Eng:               eng,
		Mem:               mc,
		GPU:               s.GPU,
		Grid:              sl.Grid,
		CUs:               cus,
		OutputBypassesLLC: bypassLLC,
		Metrics:           m,
	}
	if err := k.Start(nil); err != nil {
		return 0, 0, err
	}
	eng.Run()
	return k.Finished(), mc.Counters().KindBytes(memory.Read), nil
}

func maxTime(ts ...units.Time) units.Time {
	m := ts[0]
	for _, t := range ts[1:] {
		if t > m {
			m = t
		}
	}
	return m
}
