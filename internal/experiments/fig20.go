package experiments

import (
	"fmt"

	"t3sim/internal/transformer"
)

// Fig20Row compares T3-MCA's benefit on today's GPU vs the GPU-2X-CU
// configuration (double the CUs, same memory and network, §7.5).
type Fig20Row struct {
	Case SubCase
	// Speedup1x / Speedup2x are T3-MCA speedups over sequential on each
	// hardware generation.
	Speedup1x float64
	Speedup2x float64
}

// Fig20Result is the Figure 20 reproduction.
type Fig20Result struct {
	Rows []Fig20Row
}

// Fig20 evaluates the future-hardware study on the OP and FC-2 sub-layers of
// the five Table 2 models (at their largest TP degree). It shares ev1's
// cached evaluations for the 1x hardware and builds the 2x-CU twin itself.
func Fig20(ev1 *Evaluator) (*Fig20Result, error) {
	setup2x := ev1.Setup
	setup2x.GPU.CUs = 2 * ev1.Setup.GPU.CUs
	ev2, err := NewEvaluator(setup2x)
	if err != nil {
		return nil, err
	}

	// ev2 is private to this driver, so its parallelism mirrors ev1's.
	ev2.Parallelism = ev1.Parallelism

	var cases []SubCase
	for _, name := range []string{"Mega-GPT-2", "T-NLG", "GPT-3", "PALM", "MT-NLG"} {
		m, err := transformer.ModelByName(name)
		if err != nil {
			return nil, err
		}
		tp := m.TPDegrees[len(m.TPDegrees)-1]
		for _, kind := range []transformer.SubLayerKind{transformer.OutProj, transformer.FC2} {
			cases = append(cases, SubCase{Model: m, Kind: kind, TP: tp})
		}
	}
	rows1, err := ev1.EvaluateAll(cases)
	if err != nil {
		return nil, err
	}
	rows2, err := ev2.EvaluateAll(cases)
	if err != nil {
		return nil, err
	}

	res := &Fig20Result{}
	for i, c := range cases {
		res.Rows = append(res.Rows, Fig20Row{
			Case:      c,
			Speedup1x: rows1[i].SpeedupT3MCA(),
			Speedup2x: rows2[i].SpeedupT3MCA(),
		})
	}
	return res, nil
}

// Render formats the comparison.
func (r *Fig20Result) Render() string {
	t := &Table{
		Title:  "Figure 20: T3-MCA on future hardware with 2x compute (GPU-2X-CU)",
		Header: []string{"sub-layer", "T3-MCA @1x CUs", "T3-MCA @2x CUs"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Case.String(),
			fmt.Sprintf("%.2fx", row.Speedup1x),
			fmt.Sprintf("%.2fx", row.Speedup2x))
	}
	t.AddFooter("paper: FC-2 (compute-dominated) benefits more with 2x CUs;")
	t.AddFooter("OP (balanced) benefits less as faster compute exposes communication")
	return t.String()
}
