package experiments

import (
	"fmt"

	"t3sim/internal/gemm"
	"t3sim/internal/interconnect"
	"t3sim/internal/t3core"
	"t3sim/internal/units"
)

// multi256Devices is the device count of the 256-device scale experiment —
// the ROADMAP item 3 target regime the appointment synchronization is built
// for: device counts where a global round barrier spends more time
// coordinating than simulating.
const multi256Devices = 256

// multi256Grid returns the producer GEMM of the 256-device run: the same
// 1024-tile grid as multi64, now four tiles per device chunk — per-device
// work shrinks while the coordination graph grows 4–250× (ring vs
// hierarchy), which is exactly the stress the sync-mode comparison needs.
func multi256Grid() (gemm.Grid, error) {
	return gemm.NewGrid(gemm.Shape{M: 2048, N: 2048, K: 512, ElemBytes: 2}, gemm.DefaultTiling())
}

// Multi256Specs returns the topology ladder of the 256-device run: the
// bidirectional ring, a 16x16 torus, and a 4-node hierarchy of 64-device
// full-mesh nodes joined by 3x-slower leader links.
func Multi256Specs(link interconnect.Config) []interconnect.TopoSpec {
	return []interconnect.TopoSpec{
		interconnect.RingTopo(multi256Devices, link),
		interconnect.TorusTopo(16, 16, link),
		interconnect.HierarchicalTopo(4, 64, link, interNodeLink(link)),
	}
}

// Multi256Row is one topology variant of the 256-device explicit run. Like
// Multi64Result, every field is a pure function of the model — identical at
// every worker count and in both sync modes — so the golden snapshot pins
// byte-identity of the appointment coordinator at scale. There is no mirror
// cross-check: the single-GPU mirror methodology is ring-only.
type Multi256Row struct {
	Topo string

	GEMMFirst, GEMMLast             units.Time
	CollectiveFirst, CollectiveLast units.Time
	Done                            units.Time
	Skew                            units.Time

	LinkBytes      units.Bytes
	DRAMBytes      units.Bytes
	TrackerMaxLive int
}

// Multi256Result is the 256-device explicit fused GEMM→reduce-scatter run
// across the topology ladder.
type Multi256Result struct {
	Devices int
	Grid    gemm.Grid
	Rows    []Multi256Row
}

// Multi256 runs the 256-device explicit simulation over every topology
// variant, honouring the setup's MultiDeviceWorkers and SyncMode.
func Multi256(setup Setup) (*Multi256Result, error) {
	if err := setup.Validate(); err != nil {
		return nil, err
	}
	grid, err := multi256Grid()
	if err != nil {
		return nil, err
	}
	res := &Multi256Result{Devices: multi256Devices, Grid: grid}
	for _, spec := range Multi256Specs(setup.Link) {
		opts := t3core.FusedOptions{
			GPU:         setup.GPU,
			Memory:      setup.Memory,
			Link:        spec.Link,
			Topo:        spec,
			Tracker:     setup.Tracker,
			Devices:     spec.Devices,
			Grid:        grid,
			Collective:  t3core.RingReduceScatter,
			Arbitration: t3core.ArbRoundRobin,
			Check:       setup.Check,
			ParWorkers:  setup.MultiDeviceWorkers,
			SyncMode:    setup.SyncMode,
		}
		if setup.Metrics != nil {
			opts.Metrics = setup.Metrics.Scope("multi256/" + topoName(spec))
		}
		multi, err := memoFusedMulti(setup.Memo, opts)
		if err != nil {
			return nil, fmt.Errorf("multi256 %s: %w", topoName(spec), err)
		}
		row := Multi256Row{
			Topo:           topoName(spec),
			Done:           multi.Done,
			Skew:           multi.Skew(),
			LinkBytes:      multi.LinkBytes,
			DRAMBytes:      multi.DRAM.TotalBytes(),
			TrackerMaxLive: multi.TrackerMaxLive,
		}
		row.GEMMFirst, row.GEMMLast = timeSpread(multi.GEMMDone)
		row.CollectiveFirst, row.CollectiveLast = timeSpread(multi.CollectiveDone)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the 256-device scale run.
func (r *Multi256Result) Render() string {
	t := &Table{
		Title: fmt.Sprintf("256-device explicit fused GEMM+reduce-scatter (M=%d N=%d K=%d fp16; ROADMAP item 3)",
			r.Grid.Shape.M, r.Grid.Shape.N, r.Grid.Shape.K),
		Header: []string{"topo", "gemm first/last", "collective first/last", "done", "skew", "link traffic", "DRAM traffic", "tracker max live"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Topo,
			fmt.Sprintf("%v / %v", row.GEMMFirst, row.GEMMLast),
			fmt.Sprintf("%v / %v", row.CollectiveFirst, row.CollectiveLast),
			row.Done.String(),
			row.Skew.String(),
			row.LinkBytes.String(),
			row.DRAMBytes.String(),
			fmt.Sprintf("%d", row.TrackerMaxLive))
	}
	t.AddFooter("explicit 256-device runs; results are byte-identical at every -par worker count and in both -sync modes")
	return t.String()
}
